// Command gridrm-agents runs a simulated Grid site: a cluster of hosts with
// evolving load/memory/disk/network state, observable through five native
// agents (per-host SNMP, site-wide Ganglia, NWS, NetLogger and SCMS).
//
// The endpoint manifest is printed as JSON (and optionally written to a
// file) so gridrm-gateway can register every agent as a data source:
//
//	gridrm-agents -site siteA -hosts 8 -manifest /tmp/siteA.json
//	gridrm-gateway -manifest /tmp/siteA.json -listen :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridrm/internal/sitekit"
)

func main() {
	var (
		site     = flag.String("site", "site", "site name")
		hosts    = flag.Int("hosts", 8, "number of simulated hosts")
		seed     = flag.Int64("seed", 1, "simulator seed")
		tick     = flag.Duration("tick", time.Second, "simulation step interval")
		alarm    = flag.Float64("load-alarm", 4.0, "1-minute load alarm threshold")
		manifest = flag.String("manifest", "", "also write the endpoint manifest to this file")
	)
	flag.Parse()

	s, err := sitekit.Start(sitekit.Options{
		Name: *site, Hosts: *hosts, Seed: *seed, LoadAlarm: *alarm,
	})
	if err != nil {
		log.Fatalf("gridrm-agents: %v", err)
	}
	defer s.Close()

	m := s.Manifest()
	data, err := sitekit.MarshalManifest(m)
	if err != nil {
		log.Fatalf("gridrm-agents: %v", err)
	}
	fmt.Println(string(data))
	if *manifest != "" {
		if err := os.WriteFile(*manifest, data, 0o644); err != nil {
			log.Fatalf("gridrm-agents: writing manifest: %v", err)
		}
		log.Printf("manifest written to %s", *manifest)
	}

	s.StartTicker(*tick)
	log.Printf("site %s running: %d hosts, %d SNMP agents, stepping every %v",
		m.Site, len(m.Hosts), len(m.SNMP), *tick)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
