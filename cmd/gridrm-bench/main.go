// Command gridrm-bench regenerates the per-experiment tables of DESIGN.md's
// index (E1–E10), each reproducing a figure or performance claim from the
// GridRM paper on the simulated substrate.
//
//	gridrm-bench -exp all
//	gridrm-bench -exp e4          # driver granularity / caching policies
//	gridrm-bench -exp e6 -quick   # reduced sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gridrm/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run: all, or comma-separated IDs ("+strings.Join(bench.IDs(), ",")+")")
		quick = flag.Bool("quick", false, "reduced parameter sweeps")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("%-5s %s\n", e.ID, e.Anchor)
		}
		return
	}

	if *exp == "all" {
		if err := bench.RunAll(os.Stdout, *quick); err != nil {
			log.Fatalf("gridrm-bench: %v", err)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		if err := bench.Run(os.Stdout, strings.TrimSpace(id), *quick); err != nil {
			log.Fatalf("gridrm-bench: %v", err)
		}
	}
}
