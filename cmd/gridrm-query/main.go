// Command gridrm-query is the GridRM command-line client: it issues SQL
// queries against a gateway's servlet interface and renders the
// consolidated ResultSet, and exposes the management operations of the
// paper's JSP interface (tree view, sources, drivers, events, status).
//
//	gridrm-query -gateway http://127.0.0.1:8080 \
//	    -sql "SELECT HostName, LoadLast1Min FROM Processor ORDER BY LoadLast1Min DESC"
//	gridrm-query -gateway http://127.0.0.1:8080 -tree
//	gridrm-query -gateway http://127.0.0.1:8080 -site siteB -sql "SELECT * FROM Memory"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/security"
	"gridrm/internal/web"
)

func main() {
	var (
		gateway = flag.String("gateway", "http://127.0.0.1:8080", "gateway base URL")
		sql     = flag.String("sql", "", "SQL query to execute")
		site    = flag.String("site", "", "remote site to query via the Global layer")
		mode    = flag.String("mode", "cached", "query mode: cached, real-time, historical")
		sources = flag.String("sources", "", "comma-separated source URLs to restrict to")
		user    = flag.String("user", "cli", "principal name")
		roles   = flag.String("roles", "operator", "comma-separated principal roles")
		tree    = flag.Bool("tree", false, "show the cached tree view")
		status  = flag.Bool("status", false, "show gateway status counters")
		events  = flag.Bool("events", false, "show recent events")
		listSrc = flag.Bool("list-sources", false, "list registered data sources")
		listDrv = flag.Bool("list-drivers", false, "list drivers")
		sites   = flag.Bool("sites", false, "list reachable sites")
		poll    = flag.String("poll", "", "source URL to poll in real time (requires -group)")
		group   = flag.String("group", "", "GLUE group for -poll")
		timeout = flag.Duration("timeout", 0, "overall query deadline (0 = gateway default)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	principal := security.Principal{Name: *user}
	if *roles != "" {
		principal.Roles = strings.Split(*roles, ",")
	}
	client := &web.Client{BaseURL: *gateway, Principal: principal}

	switch {
	case *tree:
		nodes, err := client.TreeContext(ctx)
		fail(err)
		for _, n := range nodes {
			health := "ok"
			if n.Source.LastError != "" {
				health = "FAILED: " + n.Source.LastError
			}
			fmt.Printf("%s  [%s]  driver=%s\n", n.Source.URL, health, n.Source.LastDriver)
			for _, e := range n.Cached {
				fmt.Printf("    %-40s rows=%-4d age=%s\n", e.SQL, e.Rows, e.Age.Round(time.Millisecond))
			}
		}
	case *status:
		st, err := client.StatusContext(ctx)
		fail(err)
		fmt.Printf("site %s\n", st.Site)
		fmt.Printf("  queries=%d errors=%d harvests=%d harvest-errors=%d cache-served=%d coalesced=%d routed=%d denied=%d\n",
			st.Gateway.Queries, st.Gateway.QueryErrors, st.Gateway.Harvests,
			st.Gateway.HarvestErrors, st.Gateway.CacheServed, st.Gateway.Coalesced,
			st.Gateway.Routed, st.Gateway.Denied)
		fmt.Printf("  resilience: timeouts=%d retries=%d breaker-opens=%d breaker-skipped=%d\n",
			st.Gateway.Timeouts, st.Gateway.Retries, st.Gateway.BreakerOpens, st.Gateway.BreakerSkipped)
		fmt.Printf("  degradation: stale-serves=%d history-fallbacks=%d driver-panics=%d\n",
			st.Gateway.StaleServes, st.Gateway.HistoryFallbacks, st.Gateway.DriverPanics)
		fmt.Printf("  probes: attempted=%d failed=%d skipped=%d transitions=%d\n",
			st.Probes.Probes, st.Probes.Failures, st.Probes.Skipped, st.Probes.Transitions)
		for _, h := range st.Health {
			note := ""
			if h.LastError != "" {
				note = " last-error=" + h.LastError
			}
			fmt.Printf("  health %-48s %-9s failures=%-3d probed=%s%s\n",
				h.URL, h.State, h.ConsecutiveFailures, h.LastProbe.Format(time.RFC3339), note)
		}
		fmt.Printf("  pool: hits=%d misses=%d opens=%d idle=%d\n",
			st.Pool.Hits, st.Pool.Misses, st.Pool.Opens, st.Pool.Idle)
		fmt.Printf("  driver manager: scans=%d probes=%d cache-hits=%d failovers=%d\n",
			st.Drivers.Scans, st.Drivers.ScanProbes, st.Drivers.CacheHits, st.Drivers.Failovers)
		fmt.Printf("  events: published=%d delivered=%d alerts=%d\n",
			st.Events.Published, st.Events.Delivered, st.Events.Alerts)
		if st.Admission != nil {
			fmt.Printf("  admission: max-inflight=%d max-queue=%d inflight=%d queued=%d admitted=%d shed=%d\n",
				st.Admission.MaxInFlight, st.Admission.MaxQueue, st.Admission.InFlight,
				st.Admission.Queued, st.Admission.Admitted, st.Admission.Shed)
		}
		for _, stage := range st.Stages {
			avg := time.Duration(0)
			if stage.Count > 0 {
				avg = time.Duration(stage.Sum / float64(stage.Count) * float64(time.Second))
			}
			fmt.Printf("  stage %-12s count=%-8d avg=%s\n", stage.Label, stage.Count, avg.Round(time.Microsecond))
		}
	case *events:
		evs, err := client.EventsContext(ctx, event.Filter{}, time.Time{})
		fail(err)
		for _, ev := range evs {
			fmt.Printf("%s  %-8s %-24s host=%-16s value=%.2f  %s\n",
				ev.Time.Format(time.RFC3339), ev.Severity, ev.Name, ev.Host, ev.Value, ev.Detail)
		}
	case *listSrc:
		srcs, err := client.SourcesContext(ctx)
		fail(err)
		for _, s := range srcs {
			fmt.Printf("%-48s driver=%-16s breaker=%-9s %s\n", s.URL, s.LastDriver, s.Breaker, s.Description)
		}
	case *listDrv:
		drvs, err := client.DriversContext(ctx)
		fail(err)
		for _, d := range drvs {
			state := "available"
			if d.Active {
				state = "active"
			}
			fmt.Printf("%-18s %-10s v%-8s groups=%s\n", d.Name, state, d.Version, strings.Join(d.Groups, ","))
		}
	case *sites:
		ss, err := client.SitesContext(ctx)
		fail(err)
		for _, s := range ss {
			fmt.Println(s)
		}
	case *poll != "":
		if *group == "" {
			log.Fatal("gridrm-query: -poll requires -group")
		}
		resp, err := client.PollContext(ctx, *poll, *group)
		fail(err)
		printResponse(resp)
	case *sql != "":
		m, err := web.ParseMode(*mode)
		fail(err)
		req := core.Request{SQL: *sql, Site: *site, Mode: m}
		if *sources != "" {
			req.Sources = strings.Split(*sources, ",")
		}
		resp, err := client.QueryContext(ctx, req)
		fail(err)
		printResponse(resp)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printResponse(resp *core.Response) {
	fmt.Printf("-- site=%s mode=%s elapsed=%s rows=%d\n",
		resp.Site, resp.Mode, resp.Elapsed.Round(time.Microsecond), resp.ResultSet.Len())
	fmt.Print(resp.ResultSet.String())
	for _, s := range resp.Sources {
		note := "fresh"
		if s.Cached {
			note = "cached"
		}
		if s.Err != "" {
			note = "ERROR: " + s.Err
		}
		if s.Degraded != "" {
			note = fmt.Sprintf("DEGRADED(%s age=%s): %s",
				s.Degraded, s.Age.Round(time.Millisecond), s.Err)
		}
		fmt.Printf("## %-48s driver=%-16s rows=%-4d %s\n", s.Source, s.Driver, s.Rows, note)
	}
}

func fail(err error) {
	if err != nil {
		log.Fatalf("gridrm-query: %v", err)
	}
}
