// Command gridrm-query is the GridRM command-line client: it issues SQL
// queries against a gateway's servlet interface and renders the
// consolidated ResultSet, and exposes the management operations of the
// paper's JSP interface (tree view, sources, drivers, events, status).
//
//	gridrm-query -gateway http://127.0.0.1:8080 \
//	    -sql "SELECT HostName, LoadLast1Min FROM Processor ORDER BY LoadLast1Min DESC"
//	gridrm-query -gateway http://127.0.0.1:8080 -tree
//	gridrm-query -gateway http://127.0.0.1:8080 -site siteB -sql "SELECT * FROM Memory"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/security"
	"gridrm/internal/trace"
	"gridrm/internal/web"
)

func main() {
	var (
		gateway = flag.String("gateway", "http://127.0.0.1:8080", "gateway base URL")
		sql     = flag.String("sql", "", "SQL query to execute")
		site    = flag.String("site", "", "remote site to query via the Global layer")
		mode    = flag.String("mode", "cached", "query mode: cached, real-time, historical")
		sources = flag.String("sources", "", "comma-separated source URLs to restrict to")
		user    = flag.String("user", "cli", "principal name")
		roles   = flag.String("roles", "operator", "comma-separated principal roles")
		tree    = flag.Bool("tree", false, "show the cached tree view")
		status  = flag.Bool("status", false, "show gateway status counters")
		events  = flag.Bool("events", false, "show recent events")
		listSrc = flag.Bool("list-sources", false, "list registered data sources")
		listDrv = flag.Bool("list-drivers", false, "list drivers")
		sites   = flag.Bool("sites", false, "list reachable sites")
		follow  = flag.Bool("follow", false, "continuous query: stream rows matching -sql as they are harvested")
		fromSeq = flag.Uint64("from", 0, "with -follow, resume after this sequence number")
		poll    = flag.String("poll", "", "source URL to poll in real time (requires -group)")
		group   = flag.String("group", "", "GLUE group for -poll")
		timeout = flag.Duration("timeout", 0, "overall query deadline (0 = gateway default)")
		doTrace = flag.Bool("trace", false, "force-trace the query and print its span tree")
		traceID = flag.String("trace-id", "", "fetch and print a stored trace by ID")
		listTrc = flag.Bool("traces", false, "list recent traces stored on the gateway")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	principal := security.Principal{Name: *user}
	if *roles != "" {
		principal.Roles = strings.Split(*roles, ",")
	}
	client := &web.Client{BaseURL: *gateway, Principal: principal}

	switch {
	case *traceID != "":
		td, err := client.Trace(ctx, *traceID)
		fail(err)
		printTrace(td)
	case *listTrc:
		sums, err := client.Traces(ctx)
		fail(err)
		for _, s := range sums {
			fmt.Printf("%s  %-8s site=%-10s spans=%-3d %s  %s\n",
				s.TraceID, s.Duration.Round(time.Microsecond), s.Site, s.Spans,
				s.Start.Format(time.RFC3339), s.SQL)
		}
	case *tree:
		nodes, err := client.Tree(ctx)
		fail(err)
		for _, n := range nodes {
			health := "ok"
			if n.Source.LastError != "" {
				health = "FAILED: " + n.Source.LastError
			}
			fmt.Printf("%s  [%s]  driver=%s\n", n.Source.URL, health, n.Source.LastDriver)
			for _, e := range n.Cached {
				fmt.Printf("    %-40s rows=%-4d age=%s\n", e.SQL, e.Rows, e.Age.Round(time.Millisecond))
			}
		}
	case *status:
		st, err := client.Status(ctx)
		fail(err)
		fmt.Printf("site %s\n", st.Site)
		fmt.Printf("  queries=%d errors=%d harvests=%d harvest-errors=%d cache-served=%d coalesced=%d routed=%d denied=%d\n",
			st.Gateway.Queries, st.Gateway.QueryErrors, st.Gateway.Harvests,
			st.Gateway.HarvestErrors, st.Gateway.CacheServed, st.Gateway.Coalesced,
			st.Gateway.Routed, st.Gateway.Denied)
		fmt.Printf("  resilience: timeouts=%d retries=%d breaker-opens=%d breaker-skipped=%d\n",
			st.Gateway.Timeouts, st.Gateway.Retries, st.Gateway.BreakerOpens, st.Gateway.BreakerSkipped)
		fmt.Printf("  degradation: stale-serves=%d history-fallbacks=%d driver-panics=%d\n",
			st.Gateway.StaleServes, st.Gateway.HistoryFallbacks, st.Gateway.DriverPanics)
		fmt.Printf("  plan cache: hits=%d misses=%d\n",
			st.Gateway.PlanCacheHits, st.Gateway.PlanCacheMisses)
		fmt.Printf("  push: published=%d dropped=%d evictions=%d subscribers=%d sinks=%d\n",
			st.Push.Published, st.Push.Dropped, st.Push.Evicted,
			st.Push.Subscribers, st.Push.Sinks)
		for _, sk := range st.Sinks {
			fmt.Printf("  sink %-32s delivered=%-6d dropped=%-4d retries=%-4d breaker=%s\n",
				sk.Name, sk.Delivered, sk.Dropped, sk.Retries, sk.BreakerState)
		}
		fmt.Printf("  history: keys=%d samples=%d pruned=%d\n",
			st.History.Keys, st.History.Samples, st.History.Pruned)
		if d := st.History.Durability; d != nil {
			fmt.Printf("  durability: state=%s dir=%s wal-appends=%d fsyncs=%d replayed=%d corrupt=%d\n",
				d.State, d.Dir, d.WALAppends, d.Fsyncs, d.ReplayedRecords, d.CorruptRecords)
			fmt.Printf("  durability: checkpoints=%d checkpoint-errors=%d wal-errors=%d reattaches=%d segments=%d dropped=%d disk-bytes=%d\n",
				d.Checkpoints, d.CheckpointErrors, d.WALErrors, d.Reattaches,
				d.WALSegments, d.SegmentsDropped, d.DiskBytes)
		}
		fmt.Printf("  probes: attempted=%d failed=%d skipped=%d transitions=%d\n",
			st.Probes.Probes, st.Probes.Failures, st.Probes.Skipped, st.Probes.Transitions)
		for _, h := range st.Health {
			note := ""
			if h.LastError != "" {
				note = " last-error=" + h.LastError
			}
			fmt.Printf("  health %-48s %-9s failures=%-3d probed=%s%s\n",
				h.URL, h.State, h.ConsecutiveFailures, h.LastProbe.Format(time.RFC3339), note)
		}
		fmt.Printf("  pool: hits=%d misses=%d opens=%d idle=%d\n",
			st.Pool.Hits, st.Pool.Misses, st.Pool.Opens, st.Pool.Idle)
		fmt.Printf("  driver manager: scans=%d probes=%d cache-hits=%d failovers=%d\n",
			st.Drivers.Scans, st.Drivers.ScanProbes, st.Drivers.CacheHits, st.Drivers.Failovers)
		fmt.Printf("  events: published=%d delivered=%d alerts=%d\n",
			st.Events.Published, st.Events.Delivered, st.Events.Alerts)
		if st.Admission != nil {
			fmt.Printf("  admission: max-inflight=%d max-queue=%d inflight=%d queued=%d admitted=%d shed=%d\n",
				st.Admission.MaxInFlight, st.Admission.MaxQueue, st.Admission.InFlight,
				st.Admission.Queued, st.Admission.Admitted, st.Admission.Shed)
		}
		for _, stage := range st.Stages {
			avg := time.Duration(0)
			if stage.Count > 0 {
				avg = time.Duration(stage.Sum / float64(stage.Count) * float64(time.Second))
			}
			fmt.Printf("  stage %-12s count=%-8d avg=%s\n", stage.Label, stage.Count, avg.Round(time.Microsecond))
		}
		fmt.Printf("  traces: started=%d stored=%d evicted=%d slow-queries=%d dropped-spans=%d\n",
			st.Traces.Started, st.Traces.Stored, st.Traces.Evicted,
			st.Traces.SlowQueries, st.Traces.DroppedSpans)
		for _, sq := range st.Slow {
			note := ""
			if sq.Err != "" {
				note = "  ERROR: " + sq.Err
			}
			if sq.TraceID != "" {
				note += "  trace=" + sq.TraceID
			}
			fmt.Printf("  slow %s %-10s %-9s %s%s\n", sq.Time.Format(time.RFC3339),
				sq.Site, sq.Elapsed.Round(time.Microsecond), sq.SQL, note)
		}
	case *events:
		evs, err := client.Events(ctx, event.Filter{}, time.Time{})
		fail(err)
		for _, ev := range evs {
			fmt.Printf("%s  %-8s %-24s host=%-16s value=%.2f  %s\n",
				ev.Time.Format(time.RFC3339), ev.Severity, ev.Name, ev.Host, ev.Value, ev.Detail)
		}
	case *listSrc:
		srcs, err := client.Sources(ctx)
		fail(err)
		for _, s := range srcs {
			fmt.Printf("%-48s driver=%-16s breaker=%-9s %s\n", s.URL, s.LastDriver, s.Breaker, s.Description)
		}
	case *listDrv:
		drvs, err := client.Drivers(ctx)
		fail(err)
		for _, d := range drvs {
			state := "available"
			if d.Active {
				state = "active"
			}
			fmt.Printf("%-18s %-10s v%-8s groups=%s\n", d.Name, state, d.Version, strings.Join(d.Groups, ","))
		}
	case *sites:
		ss, err := client.Sites(ctx)
		fail(err)
		for _, s := range ss {
			fmt.Println(s)
		}
	case *poll != "":
		if *group == "" {
			log.Fatal("gridrm-query: -poll requires -group")
		}
		resp, err := client.Poll(ctx, *poll, *group)
		fail(err)
		printResponse(resp)
	case *follow:
		if *sql == "" {
			log.Fatal("gridrm-query: -follow requires -sql")
		}
		followQuery(ctx, client, *sql, *sources, *fromSeq)
	case *sql != "":
		m, err := web.ParseMode(*mode)
		fail(err)
		req := core.QueryOptions{SQL: *sql, Site: *site, Mode: m}
		if *sources != "" {
			req.Sources = strings.Split(*sources, ",")
		}
		if *doTrace {
			req.Trace = trace.DecideOn
		}
		resp, err := client.Query(ctx, req)
		fail(err)
		printResponse(resp)
		if *doTrace {
			if resp.TraceID == "" {
				fmt.Println("-- no trace recorded (gateway sampling off?)")
				return
			}
			td, err := client.Trace(ctx, resp.TraceID)
			fail(err)
			printTrace(td)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// followQuery streams a continuous query to stdout, reconnecting with
// sequence-number resume when the stream drops. It returns when ctx ends
// (deadline or interrupt) or the subscription is rejected outright.
func followQuery(ctx context.Context, client *web.Client, sql, sources string, from uint64) {
	req := core.QueryOptions{SQL: sql, FromSeq: from}
	if sources != "" {
		req.Sources = strings.Split(sources, ",")
	}
	for {
		sub, err := client.SubscribeContext(ctx, web.SubscribeConfig{Query: req})
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Fatalf("gridrm-query: %v", err)
		}
	stream:
		for {
			select {
			case m := <-sub.C():
				cells := make([]string, len(m.Columns))
				for i, col := range m.Columns {
					cells[i] = fmt.Sprintf("%s=%v", col, m.Row[i])
				}
				fmt.Printf("%s  seq=%-8d %s %s  %s\n",
					m.Time.Format(time.RFC3339), m.Seq, m.Source, m.Group,
					strings.Join(cells, " "))
			case <-sub.Done():
				break stream
			}
		}
		if ctx.Err() != nil {
			return
		}
		if err := sub.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "gridrm-query: stream ended: %v (resuming from seq %d)\n",
				err, sub.LastSeq())
		}
		if d := sub.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "gridrm-query: %d rows lost to backpressure\n", d)
		}
		req.FromSeq = sub.LastSeq()
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return
		}
	}
}

func printResponse(resp *core.Response) {
	fmt.Printf("-- site=%s mode=%s elapsed=%s rows=%d\n",
		resp.Site, resp.Mode, resp.Elapsed.Round(time.Microsecond), resp.ResultSet.Len())
	fmt.Print(resp.ResultSet.String())
	for _, s := range resp.Sources {
		note := "fresh"
		if s.Cached {
			note = "cached"
		}
		if s.Err != "" {
			note = "ERROR: " + s.Err
		}
		if s.Degraded != "" {
			note = fmt.Sprintf("DEGRADED(%s age=%s): %s",
				s.Degraded, s.Age.Round(time.Millisecond), s.Err)
		}
		fmt.Printf("## %-48s driver=%-16s rows=%-4d %s\n", s.Source, s.Driver, s.Rows, note)
	}
}

// printTrace renders the span tree with one indented line per span, e.g.
//
//	-- trace 9f2c... (11 spans)
//	query 14.2ms site=siteA sql="SELECT ..."
//	  parse 12µs
//	  fanout 13.9ms sites=2
//	    site 13.8ms site=siteB
//	      remote-query 13.7ms endpoint=http://...
//	        query 9.1ms site=siteB [remote]
func printTrace(td *trace.TraceData) {
	fmt.Printf("-- trace %s (%d spans)\n", td.TraceID, td.Spans)
	var walk func(n *trace.Node, depth int)
	walk = func(n *trace.Node, depth int) {
		line := strings.Repeat("  ", depth) + n.Name + " " +
			n.Duration.Round(time.Microsecond).String()
		if n.Site != "" {
			line += " site=" + n.Site
		}
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf(" %s=%q", k, n.Attrs[k])
		}
		if n.Err != "" {
			line += " ERROR=" + fmt.Sprintf("%q", n.Err)
		}
		if n.Remote {
			line += " [remote]"
		}
		fmt.Println(line)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, root := range td.Roots {
		walk(root, 0)
	}
}

func fail(err error) {
	if err != nil {
		log.Fatalf("gridrm-query: %v", err)
	}
}
