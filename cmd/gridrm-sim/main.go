// Command gridrm-sim runs scenario-driven fleet simulations against the
// real gateway/federation stack and emits a JSON performance report.
//
//	gridrm-sim run scenarios/baseline.yaml [-seed N] [-duration D] [-o out.json] [-v]
//	gridrm-sim validate scenarios/*.yaml
//
// run executes one scenario: the fleet comes up in-process, the client load
// and fault events play out, and the report JSON goes to stdout (or -o).
// The human summary goes to stderr. Exit status: 0 on pass, 1 when an
// assertion fails, 2 on usage or execution errors.
//
// validate parses and schema-checks scenarios without running them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gridrm/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(runCmd(os.Args[2:]))
	case "validate":
		os.Exit(validateCmd(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gridrm-sim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  gridrm-sim run <scenario.yaml> [-seed N] [-duration D] [-o report.json] [-v]
  gridrm-sim validate <scenario.yaml>...

run executes the scenario and writes the JSON report to stdout (or -o).
Exit status: 0 pass, 1 assertion failure, 2 error.
`)
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	seed := fs.Int64("seed", 0, "override the scenario's seed")
	duration := fs.Duration("duration", 0, "override the load duration (event times scale)")
	out := fs.String("o", "", "write the JSON report here instead of stdout")
	verbose := fs.Bool("v", false, "log fleet and event progress to stderr")
	// Accept the scenario path before or after the flags.
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if file == "" {
		file = fs.Arg(0)
	}
	if file == "" || fs.NArg() > 1 {
		usage()
		return 2
	}
	sc, err := sim.LoadScenario(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridrm-sim: %v\n", err)
		return 2
	}
	opts := sim.RunOptions{Seed: *seed, Duration: *duration}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05.000"),
				fmt.Sprintf(format, args...))
		}
	}
	report, err := sim.Run(sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridrm-sim: %v\n", err)
		return 2
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridrm-sim: %v\n", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	if err := report.WriteJSON(dst); err != nil {
		fmt.Fprintf(os.Stderr, "gridrm-sim: %v\n", err)
		return 2
	}
	fmt.Fprint(os.Stderr, report.Summary())
	if !report.Passed {
		return 1
	}
	return 0
}

func validateCmd(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	bad := 0
	for _, file := range args {
		sc, err := sim.LoadScenario(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "INVALID %s: %v\n", file, err)
			bad++
			continue
		}
		fmt.Fprintf(os.Stderr, "ok %s: %d sites, %d clients, %d events, %d assertions\n",
			file, len(sc.SiteNames()), sc.Load.Clients, len(sc.Events), len(sc.Assertions))
	}
	if bad > 0 {
		return 2
	}
	return 0
}
