// Command gridrm-gateway runs a GridRM gateway: the local layer (drivers,
// connection pool, query cache, historical store, event manager, security)
// behind the HTTP servlet interface, optionally joined to a GMA directory
// for the Global layer.
//
//	gridrm-gateway -manifest /tmp/siteA.json -listen 127.0.0.1:8080 \
//	    -host-directory
//	gridrm-gateway -manifest /tmp/siteB.json -listen 127.0.0.1:8081 \
//	    -directory http://127.0.0.1:8080 -directory http://127.0.0.1:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/drivers/faultdrv"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/repub"
	"gridrm/internal/router"
	"gridrm/internal/sitekit"
	"gridrm/internal/trace"
	"gridrm/internal/tsdb"
	"gridrm/internal/web"
)

// multiFlag collects a repeatable string flag (-directory may be given once
// per replica).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty value")
	}
	*m = append(*m, v)
	return nil
}

func main() {
	var directories multiFlag
	flag.Var(&directories, "directory",
		"GMA directory base URL to register with (repeat for replicas)")
	var sinkHTTP multiFlag
	flag.Var(&sinkHTTP, "sink-http",
		"URL to POST pushed metric batches to (repeatable; each gets its own queue and breaker)")
	var (
		name     = flag.String("name", "", "gateway site name (default: manifest's site)")
		listen   = flag.String("listen", "127.0.0.1:8080", "servlet listen address")
		manifest = flag.String("manifest", "", "agent manifest file from gridrm-agents")
		dynamic  = flag.Bool("dynamic", false, "omit driver preferences; locate drivers dynamically")
		hostDir  = flag.Bool("host-directory", false, "also host the GMA directory at /gma/")
		refresh  = flag.Duration("refresh", 30*time.Second, "GMA registration refresh interval")

		role         = flag.String("role", "site", "directory role: site (serve a manifest's agents) or republisher (mirror a shard of sites and answer region queries)")
		repubRefresh = flag.Duration("repub-refresh", 2*time.Second, "republisher directory poll / rebalance cadence")
		repubScrape  = flag.Duration("repub-scrape", 5*time.Second, "republisher re-scrape cadence for sites without a live subscription")
		ringVNodes   = flag.Int("ring-vnodes", 0, "virtual nodes per republisher on the ownership ring (0 = default; all members must agree)")

		harvestTimeout = flag.Duration("harvest-timeout", 0, "per-source harvest timeout (0 = default, negative = off)")
		queryTimeout   = flag.Duration("query-timeout", 0, "whole-request deadline when the caller sets none (0 = default, negative = off)")
		retries        = flag.Int("retries", 0, "per-source harvest retries after the first failure")
		retryBackoff   = flag.Duration("retry-backoff", 0, "initial retry backoff (0 = default)")
		breakerTrips   = flag.Int("breaker-threshold", 0, "consecutive failures that open a source's circuit breaker (0 = default, negative = off)")
		breakerCool    = flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before a half-open probe (0 = default)")
		dirTimeout     = flag.Duration("directory-timeout", 0, "GMA directory HTTP timeout (0 = default)")
		maxHarvests    = flag.Int("max-concurrent-harvests", 0, "bound on concurrent driver harvests (0 = unbounded)")
		noCoalesce     = flag.Bool("no-coalesce", false, "disable single-flight harvest coalescing")
		staleGrace     = flag.Duration("stale-grace", 0, "how long expired cache entries remain servable as degraded results (0 = default 2m, negative = off)")
		probeInterval  = flag.Duration("probe-interval", 15*time.Second, "background source health probe period (0 = off)")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight queries on SIGTERM")

		lookupTTL     = flag.Duration("lookup-ttl", 15*time.Second, "how long directory lookups are cached by the router (negative = off)")
		remoteRetries = flag.Int("remote-retries", 1, "additional attempts for a failed remote-gateway query")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge a straggling remote query after this long (0 = off)")
		maxInFlight   = flag.Int("max-inflight", 0, "max concurrent /query+/poll requests before shedding with 429 (0 = unbounded)")
		maxQueue      = flag.Int("max-queue", 0, "requests allowed to wait for an admission slot beyond -max-inflight")

		faultErrEvery   = flag.Int("fault-error-every", 0, "chaos: fail every nth driver query (0 = off)")
		faultPanicEvery = flag.Int("fault-panic-every", 0, "chaos: panic on every nth driver query (0 = off)")
		faultLatency    = flag.Duration("fault-latency", 0, "chaos: added per-query driver latency")

		historyDir      = flag.String("history-dir", "", "directory for crash-safe history persistence (WAL + checkpoints; empty = in-memory only)")
		historyFsync    = flag.String("history-fsync", "interval", "history WAL fsync policy: always, interval or off")
		historyCkptIntv = flag.Duration("history-checkpoint-interval", 0, "history checkpoint period (0 = default 1m, negative = only at shutdown)")
		historyMaxDisk  = flag.Int64("history-max-disk-bytes", 0, "history disk budget in bytes; oldest WAL segments dropped first (0 = unlimited)")

		subQueue = flag.Int("subscribe-queue", 0, "per-subscriber continuous-query buffer (0 = default 256)")
		subStall = flag.Duration("subscribe-stall", 0, "evict a subscriber whose queue stays full this long (0 = default 10s, negative = never)")
		sinkFile = flag.String("sink-file", "", "append every pushed metric as a JSON line to this file")

		traceSample  = flag.Float64("trace-sample", 0, "fraction of queries to trace, 0-1 (0 = default 1.0, negative = off)")
		slowlogThold = flag.Duration("slowlog-threshold", 0, "queries slower than this enter the slow-query log (0 = default 500ms, negative = off)")
		pprofEnable  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	)
	flag.Parse()

	fed := sitekit.FederationOptions{
		Role:            *role,
		RefreshInterval: *repubRefresh,
		ScrapeInterval:  *repubScrape,
		VNodes:          *ringVNodes,
	}
	if *role == "republisher" {
		runRepublisher(*name, *listen, *hostDir, *refresh, *dirTimeout, directories, fed)
		return
	}
	if *role != "site" {
		log.Fatalf("gridrm-gateway: -role must be site or republisher (got %q)", *role)
	}
	if *manifest == "" {
		log.Fatal("gridrm-gateway: -manifest is required")
	}
	if !tsdb.ValidFsync(*historyFsync) {
		log.Fatalf("gridrm-gateway: -history-fsync must be %q, %q or %q (got %q)",
			tsdb.FsyncAlways, tsdb.FsyncInterval, tsdb.FsyncOff, *historyFsync)
	}
	data, err := os.ReadFile(*manifest)
	if err != nil {
		log.Fatalf("gridrm-gateway: %v", err)
	}
	m, err := sitekit.ParseManifest(data)
	if err != nil {
		log.Fatalf("gridrm-gateway: %v", err)
	}
	if *name != "" {
		m.Site = *name
	}

	var faults *faultdrv.Faults
	if *faultErrEvery > 0 || *faultPanicEvery > 0 || *faultLatency > 0 {
		faults = faultdrv.NewFaults()
		faults.SetErrorEvery(*faultErrEvery)
		faults.SetPanicEveryQuery(*faultPanicEvery)
		faults.SetQueryLatency(*faultLatency)
		log.Printf("chaos: fault injection armed (error-every=%d panic-every=%d latency=%s)",
			*faultErrEvery, *faultPanicEvery, *faultLatency)
	}

	gw, err := sitekit.NewGateway(m, sitekit.Options{
		Name: m.Site,
		Timeouts: sitekit.TimeoutOptions{
			Harvest: *harvestTimeout,
			Query:   *queryTimeout,
		},
		History: sitekit.HistoryOptions{
			Dir:                *historyDir,
			Fsync:              *historyFsync,
			CheckpointInterval: *historyCkptIntv,
			MaxDiskBytes:       *historyMaxDisk,
		},
		Push: sitekit.PushOptions{
			Queue: *subQueue,
			Stall: *subStall,
		},
		Federation:            fed,
		Retry:                 core.RetryOptions{Attempts: *retries, Backoff: *retryBackoff},
		Breaker:               core.BreakerOptions{Threshold: *breakerTrips, Cooldown: *breakerCool},
		MaxConcurrentHarvests: *maxHarvests,
		DisableCoalescing:     *noCoalesce,
		StaleGrace:            *staleGrace,
		ProbeInterval:         *probeInterval,
		Faults:                faults,
		Trace: trace.Options{
			Sample:        *traceSample,
			SlowThreshold: *slowlogThold,
		},
	}, *dynamic)
	if err != nil {
		log.Fatalf("gridrm-gateway: %v", err)
	}
	defer gw.Close()

	for _, url := range sinkHTTP {
		if err := gw.PushRouter().AddSink(&router.HTTPSink{URL: url}, router.SinkOptions{}); err != nil {
			log.Fatalf("gridrm-gateway: sink %s: %v", url, err)
		}
		log.Printf("push: HTTP sink registered for %s", url)
	}
	if *sinkFile != "" {
		fs, err := router.NewFileSink(*sinkFile)
		if err != nil {
			log.Fatalf("gridrm-gateway: %v", err)
		}
		if err := gw.PushRouter().AddSink(fs, router.SinkOptions{}); err != nil {
			log.Fatalf("gridrm-gateway: sink %s: %v", *sinkFile, err)
		}
		log.Printf("push: file sink appending to %s", *sinkFile)
	}

	var dirHandler http.Handler
	var localDir *gma.Directory
	if *hostDir {
		localDir = gma.NewDirectory(3**refresh, nil)
		dirHandler = localDir.Handler()
	}
	server := web.NewServer(gw, nil, dirHandler)
	server.SetAdmissionLimits(*maxInFlight, *maxQueue)
	if *pprofEnable {
		server.EnablePprof()
		log.Printf("pprof: profiling endpoints mounted at /debug/pprof/")
	}

	endpoint := "http://" + *listen

	// Assemble the directory: the locally hosted one plus every -directory
	// replica, federated behind a MultiDirectory when there is more than one
	// so registration fans out and lookups fail over.
	var replicas []gma.DirectoryService
	if localDir != nil {
		replicas = append(replicas, localDir)
	}
	for _, base := range directories {
		replicas = append(replicas, &gma.DirectoryClient{BaseURL: base, Timeout: *dirTimeout})
	}
	var dir gma.DirectoryService
	switch len(replicas) {
	case 0:
	case 1:
		dir = replicas[0]
	default:
		dir = gma.NewMultiDirectory(replicas...)
	}

	var reg *gma.Registrar
	if dir != nil {
		fedRouter := gma.NewResilientRouter(dir, web.RemoteQueryContext, m.Site, gma.Config{
			LookupTTL:     *lookupTTL,
			RetryAttempts: *remoteRetries,
			HedgeAfter:    *hedgeAfter,
			RingVNodes:    *ringVNodes,
		})
		fedRouter.RegisterMetrics(gw.Metrics())
		gw.SetGlobalRouter(fedRouter)
		server.SetSiteLister(fedRouter.Sites)
		reg = gma.NewRegistrar(dir, gma.Registration{
			Name: m.Site, Endpoint: endpoint, Groups: glue.GroupNames(),
		}, *refresh)
		// Directory reachability surfaces on the event bus (an Alert when
		// registration starts failing, a Status on recovery) and as a gauge.
		reg.SetStateListener(func(reachable bool, err error) {
			if reachable {
				gw.Events().Publish(event.Event{
					Source: "gma", Name: "directory-reachable",
					Severity: event.SeverityStatus, Time: time.Now(),
					Detail: "directory registration succeeded",
				})
				log.Printf("gma: directory reachable, producer registered")
				return
			}
			gw.Events().Publish(event.Event{
				Source: "gma", Name: "directory-unreachable",
				Severity: event.SeverityAlert, Time: time.Now(),
				Detail: err.Error(),
			})
			log.Printf("gma: directory unreachable, retrying in background: %v", err)
		})
		gw.Metrics().GaugeFunc("gridrm_directory_reachable",
			"1 when the last directory registration succeeded.",
			func() float64 {
				if reg.Registered() {
					return 1
				}
				return 0
			})
		// Start fails only on invalid configuration; a directory outage is
		// retried in the background so the gateway still serves local queries.
		if err := reg.Start(); err != nil {
			log.Fatalf("gridrm-gateway: GMA registration: %v", err)
		}
		defer reg.Stop()
	}

	httpServer := &http.Server{Addr: *listen, Handler: server}
	go func() {
		log.Printf("gateway %s serving on %s (sources: %d, drivers: %d)",
			m.Site, endpoint, len(gw.Sources()), len(gw.Drivers()))
		if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("gridrm-gateway: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Ordered graceful shutdown: deregister from the GMA directory first so
	// peers stop routing here, then let the HTTP server finish in-flight
	// requests, then drain the gateway itself (prober, queries, events,
	// pool) — all bounded by the drain timeout.
	log.Printf("shutting down: draining for up to %s", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if reg != nil {
		reg.Stop()
	}
	if err := httpServer.Shutdown(ctx); err != nil {
		log.Printf("gridrm-gateway: http shutdown: %v", err)
	}
	if err := gw.Shutdown(ctx); err != nil {
		log.Printf("gridrm-gateway: gateway shutdown: %v", err)
	}
}

// runRepublisher runs the gateway in republisher mode: no local agents or
// drivers — just the shard-maintenance loops over the directory and the
// region-query servlet.
//
//	gridrm-gateway -role=republisher -name repub-a -listen 127.0.0.1:8090 \
//	    -directory http://127.0.0.1:8080
func runRepublisher(name, listen string, hostDir bool, refresh, dirTimeout time.Duration,
	directories []string, fed sitekit.FederationOptions) {
	if name == "" {
		log.Fatal("gridrm-gateway: republisher mode requires -name")
	}
	var localDir *gma.Directory
	var replicas []gma.DirectoryService
	if hostDir {
		localDir = gma.NewDirectory(3*refresh, nil)
		replicas = append(replicas, localDir)
	}
	for _, base := range directories {
		replicas = append(replicas, &gma.DirectoryClient{BaseURL: base, Timeout: dirTimeout})
	}
	var dir gma.DirectoryService
	switch len(replicas) {
	case 0:
		log.Fatal("gridrm-gateway: republisher mode requires -directory (or -host-directory)")
	case 1:
		dir = replicas[0]
	default:
		dir = gma.NewMultiDirectory(replicas...)
	}

	endpoint := "http://" + listen
	g, err := repub.New(repub.Options{
		Name:            name,
		Endpoint:        endpoint,
		Directory:       dir,
		RefreshInterval: fed.RefreshInterval,
		ScrapeInterval:  fed.ScrapeInterval,
		VNodes:          fed.VNodes,
	})
	if err != nil {
		log.Fatalf("gridrm-gateway: %v", err)
	}
	if err := g.Start(context.Background()); err != nil {
		log.Fatalf("gridrm-gateway: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", g.Handler())
	if localDir != nil {
		mux.Handle("/gma/", localDir.Handler())
	}
	httpServer := &http.Server{Addr: listen, Handler: mux}
	go func() {
		log.Printf("republisher %s serving on %s (owns %d sites)", name, endpoint, len(g.Owns()))
		if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("gridrm-gateway: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful drain: deregister first so entry gateways replan onto the
	// surviving republishers, then close the servlet.
	log.Printf("republisher %s shutting down", name)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	g.Stop(ctx)
	if err := httpServer.Shutdown(ctx); err != nil {
		log.Printf("gridrm-gateway: http shutdown: %v", err)
	}
}
