package gridrm_test

import (
	"fmt"
	"testing"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/sqlparse"
)

// buildSiteRows builds one "site"'s raw Processor snapshot: rows hosts,
// spread over groups distinct models.
func buildSiteRows(b *testing.B, site, rows, groups int) *resultset.ResultSet {
	b.Helper()
	g := glue.MustLookup(glue.GroupProcessor)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	rb := resultset.NewBuilder(meta)
	for i := 0; i < rows; i++ {
		row := make([]any, len(g.Fields))
		row[g.FieldIndex("HostName")] = fmt.Sprintf("s%02d-n%04d", site, i)
		row[g.FieldIndex("Model")] = fmt.Sprintf("model-%d", i%groups)
		row[g.FieldIndex("CPUCount")] = int64(4)
		row[g.FieldIndex("LoadLast1Min")] = float64(i%16) / 2
		rb.Append(row...)
	}
	rs, err := rb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkApplyToResultSetAggregate measures aggregate query shapes on a
// single snapshot — the driver-boundary cost of GROUP BY.
func BenchmarkApplyToResultSetAggregate(b *testing.B) {
	rs := buildSiteRows(b, 0, 64, 8)
	for _, bc := range []struct{ name, sql string }{
		{"global-count", "SELECT count(*) FROM Processor"},
		{"global-avg", "SELECT avg(LoadLast1Min) FROM Processor"},
		{"group-by-avg", "SELECT Model, avg(LoadLast1Min) FROM Processor GROUP BY Model"},
		{"group-by-multi", "SELECT Model, count(*), min(LoadLast1Min), max(LoadLast1Min), sum(CPUCount) FROM Processor GROUP BY Model"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			q, err := sqlparse.Parse(bc.sql)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sqlparse.ApplyToResultSet(q, rs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregatePushdown is the tentpole comparison: what the entry
// gateway does per federated aggregate query. raw-merge is the old path —
// every site ships all its rows, the entry gateway merges them and
// aggregates. partial-merge is the pushdown path — each site ships only
// its partial-aggregate rows and the entry gateway merges and finalizes
// those. Site-side work is excluded from both: it happens at the remote
// sites in parallel. Target: ≥10x fewer allocations and lower ns/op for
// partial-merge.
func BenchmarkAggregatePushdown(b *testing.B) {
	const sites, rows, groups = 8, 512, 8
	q, err := sqlparse.Parse("SELECT Model, count(*), avg(LoadLast1Min), max(LoadLast1Min) FROM Processor GROUP BY Model")
	if err != nil {
		b.Fatal(err)
	}

	siteRows := make([]*resultset.ResultSet, sites)
	for s := range siteRows {
		siteRows[s] = buildSiteRows(b, s, rows, groups)
	}
	// Per-site partial results, precomputed once — in production each
	// remote site computes its own.
	pq := q.PartialQuery()
	partials := make([]*resultset.ResultSet, sites)
	for s := range partials {
		p, err := sqlparse.ApplyToResultSet(pq, siteRows[s])
		if err != nil {
			b.Fatal(err)
		}
		partials[s] = p
	}

	b.Run("raw-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := resultset.New(siteRows[0].Metadata())
			for _, rs := range siteRows {
				if err := merged.Merge(rs); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sqlparse.ApplyToResultSet(q, merged); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partial-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := resultset.New(partials[0].Metadata())
			for _, rs := range partials {
				if err := merged.Merge(rs); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sqlparse.FinalizeAggregate(q, merged); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCache compares a cold parse per query with the LRU plan
// cache hit path.
func BenchmarkPlanCache(b *testing.B) {
	const sql = "SELECT Model, avg(LoadLast1Min) FROM Processor WHERE LoadLast1Min > 2.5 GROUP BY Model ORDER BY avg(LoadLast1Min) DESC LIMIT 10"
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sqlparse.Parse(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := sqlparse.NewPlanCache(64)
		if _, err := c.Parse(sql); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Parse(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}
