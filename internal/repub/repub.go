package repub

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/resultset"
	"gridrm/internal/router"
	"gridrm/internal/sqlparse"
	"gridrm/internal/web"
)

// SubscribeFunc opens a continuous query against a child site. The
// republisher prefers this feed — rows arrive as they are harvested — and
// falls back to periodic scrapes when it is absent or refused.
type SubscribeFunc func(ctx context.Context, site, sql string) (*router.Subscription, error)

// QueryFunc runs one query against a child site, for scrapes and the
// scrape fallback. The default resolves the site through the directory and
// uses the servlet interface (web.RemoteQueryContext).
type QueryFunc func(ctx context.Context, site string, req core.QueryOptions) (*core.Response, error)

// Options configures a republisher gateway.
type Options struct {
	// Name is the republisher's directory name (required).
	Name string
	// Endpoint is the advertised base URL of Handler (required when the
	// republisher registers itself).
	Endpoint string
	// Directory is the registry shared with the sites (required).
	Directory gma.DirectoryService
	// Groups lists the GLUE groups to mirror; default: every group the
	// schema knows.
	Groups []string
	// Subscribe, when set, feeds the view by continuous query.
	Subscribe SubscribeFunc
	// Query overrides how sites are scraped (tests, in-process wiring).
	Query QueryFunc
	// RefreshInterval is the directory poll / rebalance cadence
	// (default 2s).
	RefreshInterval time.Duration
	// ScrapeInterval is the re-scrape cadence for sites without a live
	// subscription (default 5s).
	ScrapeInterval time.Duration
	// VNodes is the consistent-hash ring's virtual-node count per
	// republisher (default gma.DefaultVNodes). Every republisher in a
	// deployment must agree on it.
	VNodes int
	// Clock is a time source for tests.
	Clock func() time.Time
}

// Stats is a snapshot of the republisher's counters.
type Stats struct {
	// RegionQueries counts queries answered from the merged region view.
	RegionQueries int64 `json:"regionQueries"`
	// SiteQueries counts queries answered for one owned site.
	SiteQueries int64 `json:"siteQueries"`
	// NotOwned counts queries refused because the site is not owned.
	NotOwned int64 `json:"notOwned"`
	// Scrapes and ScrapeErrors count child-site scrape attempts.
	Scrapes      int64 `json:"scrapes"`
	ScrapeErrors int64 `json:"scrapeErrors"`
	// LiveRows counts rows applied from subscriptions.
	LiveRows int64 `json:"liveRows"`
	// Subscriptions counts successfully established subscription
	// sessions; SubscribeFallbacks counts sessions that fell back to
	// scraping.
	Subscriptions      int64 `json:"subscriptions"`
	SubscribeFallbacks int64 `json:"subscribeFallbacks"`
	// Rebalances counts refresh cycles that changed the owned-site set.
	Rebalances int64 `json:"rebalances"`
	// RefreshErrors counts directory refresh failures.
	RefreshErrors int64 `json:"refreshErrors"`
	// StoredRows is the current row count across every view.
	StoredRows int `json:"storedRows"`
}

// Gateway is a running republisher: it watches the directory, owns its
// shard of the consistent-hash ring, mirrors the owned sites' rows, and
// answers region and per-site queries from the merged view.
type Gateway struct {
	opts  Options
	store *Store

	mu      sync.Mutex
	owns    []string
	workers map[string]*siteWorker
	started bool
	cancel  context.CancelFunc
	runCtx  context.Context
	wg      sync.WaitGroup

	regionQueries      atomic.Int64
	siteQueries        atomic.Int64
	notOwned           atomic.Int64
	scrapes            atomic.Int64
	scrapeErrors       atomic.Int64
	liveRows           atomic.Int64
	subscriptions      atomic.Int64
	subscribeFallbacks atomic.Int64
	rebalances         atomic.Int64
	refreshErrors      atomic.Int64
}

type siteWorker struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a republisher gateway. Start launches its loops.
func New(opts Options) (*Gateway, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("repub: Options.Name is required")
	}
	if opts.Directory == nil {
		return nil, fmt.Errorf("repub: Options.Directory is required")
	}
	if opts.RefreshInterval <= 0 {
		opts.RefreshInterval = 2 * time.Second
	}
	if opts.ScrapeInterval <= 0 {
		opts.ScrapeInterval = 5 * time.Second
	}
	if opts.VNodes <= 0 {
		opts.VNodes = gma.DefaultVNodes
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if len(opts.Groups) == 0 {
		opts.Groups = glue.GroupNames()
	}
	g := &Gateway{
		opts:    opts,
		store:   NewStore(),
		workers: make(map[string]*siteWorker),
	}
	if g.opts.Query == nil {
		g.opts.Query = g.directoryQuery
	}
	return g, nil
}

// Name returns the republisher's directory name.
func (g *Gateway) Name() string { return g.opts.Name }

// Owns snapshots the currently owned sites, sorted.
func (g *Gateway) Owns() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.owns...)
}

// Stats snapshots the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		RegionQueries:      g.regionQueries.Load(),
		SiteQueries:        g.siteQueries.Load(),
		NotOwned:           g.notOwned.Load(),
		Scrapes:            g.scrapes.Load(),
		ScrapeErrors:       g.scrapeErrors.Load(),
		LiveRows:           g.liveRows.Load(),
		Subscriptions:      g.subscriptions.Load(),
		SubscribeFallbacks: g.subscribeFallbacks.Load(),
		Rebalances:         g.rebalances.Load(),
		RefreshErrors:      g.refreshErrors.Load(),
		StoredRows:         g.store.Rows(),
	}
}

// Start begins the refresh loop: poll the directory, rebuild the ring,
// reconcile site workers, and keep the republisher's own registration
// (role, Owns) current. An immediate first refresh runs before Start
// returns, so tests and single-shot tools see a settled ownership set.
func (g *Gateway) Start(ctx context.Context) error {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return fmt.Errorf("repub: %s already started", g.opts.Name)
	}
	g.started = true
	g.runCtx, g.cancel = context.WithCancel(ctx)
	g.mu.Unlock()
	if err := g.Refresh(g.runCtx); err != nil {
		g.refreshErrors.Add(1)
	}
	g.wg.Add(1)
	go g.refreshLoop()
	return nil
}

// Stop halts the loops, stops every site worker, and withdraws the
// republisher's registration so entry gateways replan without it.
func (g *Gateway) Stop(ctx context.Context) {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	cancel := g.cancel
	workers := g.workers
	g.workers = make(map[string]*siteWorker)
	g.owns = nil
	g.mu.Unlock()
	cancel()
	for _, w := range workers {
		<-w.done
	}
	g.wg.Wait()
	if cd, ok := g.opts.Directory.(gma.ContextDeregisterer); ok {
		_ = cd.DeregisterContext(ctx, g.opts.Name)
	} else {
		_ = g.opts.Directory.Deregister(g.opts.Name)
	}
}

// Halt stops the loops and workers WITHOUT deregistering — the crash
// path. The stale registration stays in the directory, which is exactly
// the failure the entry gateway's fall-through and the router's breakers
// must absorb; the chaos harness uses this to kill a republisher.
func (g *Gateway) Halt() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.started = false
	cancel := g.cancel
	workers := g.workers
	g.workers = make(map[string]*siteWorker)
	g.mu.Unlock()
	cancel()
	for _, w := range workers {
		<-w.done
	}
	g.wg.Wait()
}

func (g *Gateway) refreshLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.opts.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-g.runCtx.Done():
			return
		case <-t.C:
			if err := g.Refresh(g.runCtx); err != nil {
				g.refreshErrors.Add(1)
			}
		}
	}
}

// Refresh runs one directory cycle synchronously: list the members, build
// the ring over every registered republisher (self included), recompute
// the owned shard, reconcile workers, and (re)register self with the
// current Owns. Exported so tests and the simulator can force a
// deterministic rebalance.
func (g *Gateway) Refresh(ctx context.Context) error {
	var regs []gma.Registration
	var err error
	if cl, ok := g.opts.Directory.(gma.ContextLister); ok {
		regs, err = cl.ListContext(ctx)
	} else {
		regs, err = g.opts.Directory.List()
	}
	if err != nil {
		return err
	}
	var republishers, sites []string
	self := false
	for _, r := range regs {
		switch r.Role {
		case gma.RoleRepublisher:
			republishers = append(republishers, r.Name)
			if r.Name == g.opts.Name {
				self = true
			}
		case gma.RoleSite:
			sites = append(sites, r.Name)
		}
	}
	if !self {
		republishers = append(republishers, g.opts.Name)
	}
	ring := gma.NewRing(republishers, g.opts.VNodes)
	var owns []string
	for _, site := range sites {
		if ring.Owner(site) == g.opts.Name {
			owns = append(owns, site)
		}
	}
	sort.Strings(owns)

	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return nil
	}
	changed := !equalStrings(owns, g.owns)
	g.owns = owns
	var stopped []*siteWorker
	ownSet := make(map[string]bool, len(owns))
	for _, s := range owns {
		ownSet[s] = true
	}
	for site, w := range g.workers {
		if !ownSet[site] {
			w.cancel()
			stopped = append(stopped, w)
			delete(g.workers, site)
			g.store.RemoveSite(site)
		}
	}
	for _, site := range owns {
		if _, ok := g.workers[site]; !ok {
			wctx, cancel := context.WithCancel(g.runCtx)
			w := &siteWorker{cancel: cancel, done: make(chan struct{})}
			g.workers[site] = w
			go g.runSite(wctx, site, w.done)
		}
	}
	g.mu.Unlock()
	for _, w := range stopped {
		<-w.done
	}
	if changed {
		g.rebalances.Add(1)
	}
	return g.register(ctx, owns)
}

// register advertises (or re-advertises) the republisher with its current
// shard. Owns changes do not bump Generation — the entry router rebuilds
// its ring from membership, not Owns — but a changed Endpoint does, which
// is what invalidates routed lookups after a republisher moves.
func (g *Gateway) register(ctx context.Context, owns []string) error {
	if g.opts.Endpoint == "" {
		return nil
	}
	reg := gma.Registration{
		Name:     g.opts.Name,
		Endpoint: g.opts.Endpoint,
		Role:     gma.RoleRepublisher,
		Groups:   g.opts.Groups,
		Owns:     owns,
	}
	if cr, ok := g.opts.Directory.(gma.ContextRegistrar); ok {
		return cr.RegisterContext(ctx, reg)
	}
	return g.opts.Directory.Register(reg)
}

// runSite mirrors one owned site until ctx ends: scrape a full snapshot,
// then hold a subscription session (when wired) or re-scrape on a timer.
func (g *Gateway) runSite(ctx context.Context, site string, done chan struct{}) {
	defer close(done)
	for {
		if ctx.Err() != nil {
			return
		}
		g.scrapeSite(ctx, site)
		if g.opts.Subscribe != nil && g.consumeSubscriptions(ctx, site) {
			// The session ended (site restart, eviction): loop around to
			// re-scrape and re-subscribe.
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(g.opts.ScrapeInterval):
		}
	}
}

// scrapeSite pulls a full snapshot of every mirrored group from the site.
func (g *Gateway) scrapeSite(ctx context.Context, site string) {
	for _, group := range g.opts.Groups {
		sctx, cancel := context.WithTimeout(ctx, g.opts.ScrapeInterval)
		resp, err := g.opts.Query(sctx, site, core.QueryOptions{
			SQL:  "SELECT * FROM " + group,
			Site: site,
		})
		cancel()
		g.scrapes.Add(1)
		if err != nil {
			g.scrapeErrors.Add(1)
			continue
		}
		g.store.SetSnapshot(site, group, resp.ResultSet, g.opts.Clock())
	}
}

// consumeSubscriptions opens one continuous query per mirrored group and
// feeds the store until any subscription ends or ctx is cancelled. It
// returns false when the session could not be established (caller falls
// back to the scrape timer) and true when an established session ended.
func (g *Gateway) consumeSubscriptions(ctx context.Context, site string) bool {
	subs := make([]*router.Subscription, 0, len(g.opts.Groups))
	for _, group := range g.opts.Groups {
		sub, err := g.opts.Subscribe(ctx, site, "SELECT * FROM "+group)
		if err != nil {
			for _, s := range subs {
				s.Close()
			}
			g.subscribeFallbacks.Add(1)
			return false
		}
		subs = append(subs, sub)
	}
	g.subscriptions.Add(1)
	// One goroutine per feed; the session ends when the first feed does.
	ended := make(chan struct{}, len(subs))
	var wg sync.WaitGroup
	for _, sub := range subs {
		wg.Add(1)
		go func(sub *router.Subscription) {
			defer wg.Done()
			for {
				select {
				case m := <-sub.C():
					g.store.Upsert(site, m.Group, m.Source, m.Columns, m.Row, m.Time)
					g.liveRows.Add(1)
				case <-sub.Done():
					ended <- struct{}{}
					return
				case <-ctx.Done():
					ended <- struct{}{}
					return
				}
			}
		}(sub)
	}
	<-ended
	for _, s := range subs {
		s.Close()
	}
	wg.Wait()
	return ctx.Err() == nil
}

// directoryQuery is the default QueryFunc: resolve the site's endpoint in
// the directory and query its servlet interface.
func (g *Gateway) directoryQuery(ctx context.Context, site string, req core.QueryOptions) (*core.Response, error) {
	var (
		reg gma.Registration
		ok  bool
		err error
	)
	if cd, isCtx := g.opts.Directory.(gma.ContextDirectory); isCtx {
		reg, ok, err = cd.LookupContext(ctx, site)
	} else {
		reg, ok, err = g.opts.Directory.Lookup(site)
	}
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("repub: site %q not in directory", site)
	}
	return web.RemoteQueryContext(ctx, reg.Endpoint, req)
}

// QueryContext answers a query from the merged view. Scope comes from
// req.Site: the republisher's own name (or empty, or the all-sites
// wildcard) selects the whole region — every owned site — while an owned
// site's name selects just that slice. A site this republisher does not
// own is an error, which is the signal the entry gateway uses to degrade
// to direct legs after a rebalance. Historical queries are refused: the
// view holds latest rows only, and the refusal routes the query to the
// site's own history store.
func (g *Gateway) QueryContext(ctx context.Context, req core.QueryOptions) (*core.Response, error) {
	start := g.opts.Clock()
	if req.Mode == core.ModeHistorical {
		return nil, fmt.Errorf("repub: historical queries are answered by sites, not republishers")
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	if _, ok := glue.Lookup(q.Table); !ok {
		return nil, fmt.Errorf("repub: unknown GLUE group %q", q.Table)
	}
	var sites []string
	switch req.Site {
	case "", g.opts.Name, core.AllSites:
		sites = g.Owns()
		if len(req.Region) > 0 {
			// The caller pinned the region: answer exactly those sites, and
			// refuse when the shard has drifted from the caller's plan — a
			// wrong-coverage answer would silently double- or under-count.
			owned := make(map[string]bool, len(sites))
			for _, s := range sites {
				owned[s] = true
			}
			for _, s := range req.Region {
				if !owned[s] {
					g.notOwned.Add(1)
					return nil, fmt.Errorf("repub: %s does not own site %q", g.opts.Name, s)
				}
			}
			sites = req.Region
		}
		g.regionQueries.Add(1)
	default:
		if !g.ownsSite(req.Site) {
			g.notOwned.Add(1)
			return nil, fmt.Errorf("repub: %s does not own site %q", g.opts.Name, req.Site)
		}
		sites = []string{req.Site}
		g.siteQueries.Add(1)
	}
	rs, fresh, ok := g.store.Merged(q.Table, sites)
	if !ok {
		group, _ := glue.Lookup(q.Table)
		meta, err := resultset.MetadataForGroup(group, nil)
		if err != nil {
			return nil, err
		}
		rs = resultset.New(meta)
	}
	out, err := sqlparse.ApplyToResultSet(q, rs)
	if err != nil {
		return nil, err
	}
	statuses := make([]core.SourceStatus, 0, len(fresh))
	for _, f := range fresh {
		statuses = append(statuses, core.SourceStatus{
			Source:      "repub-view:" + f.Site,
			Cached:      !f.Live,
			HarvestedAt: f.At,
			Rows:        f.Rows,
		})
	}
	return &core.Response{
		Site:      g.opts.Name,
		SQL:       q.String(),
		Mode:      req.Mode,
		ResultSet: out,
		Sources:   statuses,
		Elapsed:   g.opts.Clock().Sub(start),
	}, nil
}

func (g *Gateway) ownsSite(site string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range g.owns {
		if s == site {
			return true
		}
	}
	return false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
