// Package repub implements GridRM's republisher gateway: an intermediate
// node in the hierarchical federation that subscribes to a shard of child
// sites (falling back to periodic scrapes), maintains a merged
// near-real-time view of their rows, and answers region-level queries
// locally. An all-sites query at the entry gateway then fans out to the
// republishers — a tree of partial aggregates — instead of to every site,
// which is R-GMA's republisher design applied to GridRM's servlet layer.
package repub

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

// Store holds a republisher's merged view: for every (site, group) it
// keeps the latest row per source. Rows arrive two ways — whole-table
// snapshots from a scrape, and single rows pushed by a subscription — and
// the two never mix within a group: the first live row after a snapshot
// clears the snapshot, because once the push feed is up every active
// source republishes within one harvest period and the live set converges
// to full coverage without the risk of double-counting stale snapshot rows
// in aggregates.
type Store struct {
	mu    sync.RWMutex
	sites map[string]map[string]*groupView // site → group → view
}

// groupView is one (site, group) slice of the merged view.
type groupView struct {
	meta *resultset.Metadata
	live bool // rows come from the subscription, not a snapshot
	rows map[string]storedRow
	at   time.Time // newest update
}

type storedRow struct {
	row []any
	at  time.Time
}

// NewStore returns an empty view store.
func NewStore() *Store {
	return &Store{sites: make(map[string]map[string]*groupView)}
}

func (s *Store) view(site, group string) *groupView {
	groups, ok := s.sites[site]
	if !ok {
		groups = make(map[string]*groupView)
		s.sites[site] = groups
	}
	gv, ok := groups[group]
	if !ok {
		gv = &groupView{rows: make(map[string]storedRow)}
		groups[group] = gv
	}
	return gv
}

// SetSnapshot replaces the (site, group) view with a scraped full-table
// result. The view leaves live mode: the snapshot is now authoritative.
func (s *Store) SetSnapshot(site, group string, rs *resultset.ResultSet, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gv := s.view(site, group)
	gv.meta = rs.Metadata()
	gv.live = false
	gv.rows = make(map[string]storedRow, rs.Len())
	for i := 0; i < rs.Len(); i++ {
		gv.rows["#"+strconv.Itoa(i)] = storedRow{row: rs.RowAt(i), at: at}
	}
	gv.at = at
}

// Upsert stores one subscription-pushed row, keyed by its source, mapping
// the pushed columns onto the group's full column set. The first live row
// after a snapshot clears the snapshot (see Store). Rows for groups the
// GLUE schema does not know are dropped.
func (s *Store) Upsert(site, group, source string, cols []string, row []any, at time.Time) {
	g, ok := glue.Lookup(group)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gv := s.view(site, group)
	if gv.meta == nil || gv.meta.ColumnCount() != len(g.Fields) {
		meta, err := resultset.MetadataForGroup(g, nil)
		if err != nil {
			return
		}
		gv.meta = meta
	}
	if !gv.live {
		gv.live = true
		gv.rows = make(map[string]storedRow, len(gv.rows))
	}
	full := make([]any, gv.meta.ColumnCount())
	for i := 0; i < gv.meta.ColumnCount(); i++ {
		name := gv.meta.Column(i).Name
		for j, c := range cols {
			if j < len(row) && strings.EqualFold(c, name) {
				full[i] = row[j]
				break
			}
		}
	}
	gv.rows[source] = storedRow{row: full, at: at}
	if at.After(gv.at) {
		gv.at = at
	}
}

// RemoveSite drops every view for a site the republisher no longer owns,
// so region answers stop including rows the new owner is now serving.
func (s *Store) RemoveSite(site string) {
	s.mu.Lock()
	delete(s.sites, site)
	s.mu.Unlock()
}

// SiteFreshness reports per-site row counts and newest update times for
// the given group, for query source statuses and /status.
type SiteFreshness struct {
	Site string    `json:"site"`
	Rows int       `json:"rows"`
	Live bool      `json:"live"`
	At   time.Time `json:"at"`
}

// Merged builds one ResultSet holding the latest rows of every listed site
// for the group, plus per-site freshness. Sites with no view yet simply
// contribute nothing (freshness reports zero rows). ok is false when no
// site has metadata for the group — the caller falls back to the GLUE
// schema for an empty answer.
func (s *Store) Merged(group string, sites []string) (*resultset.ResultSet, []SiteFreshness, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out *resultset.ResultSet
	fresh := make([]SiteFreshness, 0, len(sites))
	for _, site := range sites {
		sf := SiteFreshness{Site: site}
		if gv, ok := s.sites[site][group]; ok && gv.meta != nil {
			if out == nil {
				out = resultset.New(gv.meta)
			}
			b := resultset.NewBuilder(gv.meta)
			for _, sr := range gv.rows {
				b.Append(sr.row...)
			}
			if rs, err := b.Build(); err == nil {
				if err := out.Merge(rs); err == nil {
					sf.Rows = rs.Len()
				}
			}
			sf.Live = gv.live
			sf.At = gv.at
		}
		fresh = append(fresh, sf)
	}
	return out, fresh, out != nil
}

// Rows counts the stored rows across every view, for /status.
func (s *Store) Rows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, groups := range s.sites {
		for _, gv := range groups {
			n += len(gv.rows)
		}
	}
	return n
}
