package repub

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/resultset"
	"gridrm/internal/router"
	"gridrm/internal/web"
)

// procRows builds a Processor ResultSet with one row per (host, load).
func procRows(t *testing.T, rows ...[2]any) *resultset.ResultSet {
	t.Helper()
	g, ok := glue.Lookup(glue.GroupProcessor)
	if !ok {
		t.Fatal("Processor group missing")
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := resultset.NewBuilder(meta)
	for _, r := range rows {
		row := make([]any, meta.ColumnCount())
		row[meta.ColumnIndex("HostName")] = r[0]
		row[meta.ColumnIndex("LoadLast1Min")] = r[1]
		b.Append(row...)
	}
	rs, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestStoreSnapshotThenLiveTransition(t *testing.T) {
	s := NewStore()
	now := time.Now()
	s.SetSnapshot("A", glue.GroupProcessor, procRows(t, [2]any{"h1", 1.0}, [2]any{"h2", 2.0}), now)
	rs, fresh, ok := s.Merged(glue.GroupProcessor, []string{"A"})
	if !ok || rs.Len() != 2 || fresh[0].Live {
		t.Fatalf("snapshot view: ok=%v len=%d fresh=%+v", ok, rs.Len(), fresh)
	}
	// The first live row clears the snapshot: no double counting.
	cols := []string{"HostName", "LoadLast1Min"}
	s.Upsert("A", glue.GroupProcessor, "src1", cols, []any{"h1", 5.0}, now.Add(time.Second))
	rs, fresh, ok = s.Merged(glue.GroupProcessor, []string{"A"})
	if !ok || rs.Len() != 1 || !fresh[0].Live {
		t.Fatalf("live view: ok=%v len=%d fresh=%+v", ok, rs.Len(), fresh)
	}
	load, err := rs.GetFloat("LoadLast1Min")
	rs.Next()
	if load, err = rs.GetFloat("LoadLast1Min"); err != nil || load != 5.0 {
		t.Fatalf("live row load = %v, %v", load, err)
	}
	// Later rows upsert by source: same source replaces, new source adds.
	s.Upsert("A", glue.GroupProcessor, "src1", cols, []any{"h1", 6.0}, now)
	s.Upsert("A", glue.GroupProcessor, "src2", cols, []any{"h2", 7.0}, now)
	rs, _, _ = s.Merged(glue.GroupProcessor, []string{"A"})
	if rs.Len() != 2 {
		t.Fatalf("after upserts len = %d, want 2", rs.Len())
	}
	s.RemoveSite("A")
	if _, _, ok := s.Merged(glue.GroupProcessor, []string{"A"}); ok {
		t.Fatal("removed site still answers")
	}
}

// fakeSites registers n role-site records and returns a Query hook that
// serves a distinct Processor row per site.
func fakeSites(t *testing.T, dir *gma.Directory, n int) (sites []string, query QueryFunc, calls *atomic.Int64) {
	t.Helper()
	calls = &atomic.Int64{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("site-%d", i)
		sites = append(sites, name)
		if err := dir.Register(gma.Registration{Name: name, Endpoint: "http://" + name}); err != nil {
			t.Fatal(err)
		}
	}
	query = func(ctx context.Context, site string, req core.QueryOptions) (*core.Response, error) {
		calls.Add(1)
		if !strings.Contains(req.SQL, glue.GroupProcessor) {
			return &core.Response{ResultSet: procRows(t)}, nil
		}
		return &core.Response{ResultSet: procRows(t, [2]any{"host-" + site, float64(len(site))})}, nil
	}
	return sites, query, calls
}

func TestGatewayScrapesAndAnswersRegionQueries(t *testing.T) {
	dir := gma.NewDirectory(0, nil)
	sites, query, _ := fakeSites(t, dir, 3)
	g, err := New(Options{
		Name: "repub-0", Endpoint: "http://repub-0", Directory: dir,
		Groups: []string{glue.GroupProcessor}, Query: query,
		RefreshInterval: time.Hour, ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Stop(context.Background())
	if owns := g.Owns(); len(owns) != len(sites) {
		t.Fatalf("sole republisher owns %v, want all of %v", owns, sites)
	}
	// Self-registration carries the role and the shard.
	reg, ok, _ := dir.Lookup("repub-0")
	if !ok || reg.Role != gma.RoleRepublisher || len(reg.Owns) != 3 {
		t.Fatalf("self-registration = %+v, %v", reg, ok)
	}
	waitFor(t, "scrapes", func() bool { return g.store.Rows() == 3 })

	// Region query (Site == republisher name): merged rows of every site.
	resp, err := g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "repub-0",
	})
	if err != nil || resp.ResultSet.Len() != 3 {
		t.Fatalf("region query = %v, %v", resp, err)
	}
	if resp.Site != "repub-0" || len(resp.Sources) != 3 {
		t.Fatalf("region response meta = %+v", resp)
	}
	// Aggregates work over the merged region view (the entry gateway
	// sends the partial-aggregate rewrite through this same path).
	resp, err = g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT count(*) FROM Processor",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.ResultSet.Next()
	if n, err := resp.ResultSet.GetInt("count(*)"); err != nil || n != 3 {
		t.Fatalf("region count = %d, %v", n, err)
	}

	// Owned-site query answers just that slice.
	resp, err = g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "site-1",
	})
	if err != nil || resp.ResultSet.Len() != 1 {
		t.Fatalf("site query = %v, %v", resp, err)
	}
	// Unowned site and historical mode are refused (entry falls through).
	if _, err := g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "elsewhere",
	}); err == nil {
		t.Fatal("unowned site did not error")
	}
	if _, err := g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Mode: core.ModeHistorical,
	}); err == nil {
		t.Fatal("historical query did not error")
	}
	st := g.Stats()
	if st.RegionQueries != 2 || st.SiteQueries != 1 || st.NotOwned != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGatewayRebalanceOnMembershipChange(t *testing.T) {
	dir := gma.NewDirectory(0, nil)
	sites, query, _ := fakeSites(t, dir, 8)
	g, err := New(Options{
		Name: "repub-0", Endpoint: "http://repub-0", Directory: dir,
		Groups: []string{glue.GroupProcessor}, Query: query,
		RefreshInterval: time.Hour, ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Stop(context.Background())
	if len(g.Owns()) != 8 {
		t.Fatalf("sole republisher owns %v", g.Owns())
	}
	// A second republisher joins: this one must shed the sites the ring
	// now places elsewhere, and drop their views.
	if err := dir.Register(gma.Registration{
		Name: "repub-1", Endpoint: "http://repub-1", Role: gma.RoleRepublisher,
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	owns := g.Owns()
	if len(owns) == 0 || len(owns) == len(sites) {
		t.Fatalf("after join owns %d of %d sites, want a strict subset", len(owns), len(sites))
	}
	if g.Stats().Rebalances == 0 {
		t.Fatal("rebalance not counted")
	}
	ring := gma.NewRing([]string{"repub-0", "repub-1"}, gma.DefaultVNodes)
	for _, s := range owns {
		if ring.Owner(s) != "repub-0" {
			t.Fatalf("owns %s which the ring places at %s", s, ring.Owner(s))
		}
	}
	// Shed sites are refused and their rows are gone from the view.
	var shed string
	ownSet := map[string]bool{}
	for _, s := range owns {
		ownSet[s] = true
	}
	for _, s := range sites {
		if !ownSet[s] {
			shed = s
			break
		}
	}
	if _, err := g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: shed,
	}); err == nil {
		t.Fatalf("shed site %s still answered", shed)
	}
}

func TestGatewaySubscriptionFeedsView(t *testing.T) {
	dir := gma.NewDirectory(0, nil)
	_, query, _ := fakeSites(t, dir, 1)
	push := router.New(router.Options{})
	subscribe := func(ctx context.Context, site, sql string) (*router.Subscription, error) {
		return push.Subscribe(router.SubscribeOptions{Name: site + ": " + sql})
	}
	g, err := New(Options{
		Name: "repub-0", Endpoint: "http://repub-0", Directory: dir,
		Groups: []string{glue.GroupProcessor}, Query: query, Subscribe: subscribe,
		RefreshInterval: time.Hour, ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Stop(context.Background())
	waitFor(t, "subscription", func() bool { return g.Stats().Subscriptions == 1 })
	rs := procRows(t, [2]any{"pushed-host", 9.0})
	rows := make([][]any, rs.Len())
	for i := range rows {
		rows[i] = rs.RowAt(i)
	}
	waitFor(t, "live row", func() bool {
		push.Publish("src1", glue.GroupProcessor, rs.Metadata().ColumnNames(), rows, time.Now())
		return g.Stats().LiveRows > 0
	})
	waitFor(t, "live view", func() bool {
		resp, err := g.QueryContext(context.Background(), core.QueryOptions{
			SQL: "SELECT HostName FROM Processor WHERE HostName = 'pushed-host'",
		})
		return err == nil && resp.ResultSet.Len() == 1
	})
}

func TestHandlerSpeaksServletWireProtocol(t *testing.T) {
	dir := gma.NewDirectory(0, nil)
	_, query, _ := fakeSites(t, dir, 2)
	g, err := New(Options{
		Name: "repub-0", Endpoint: "http://repub-0", Directory: dir,
		Groups: []string{glue.GroupProcessor}, Query: query,
		RefreshInterval: time.Hour, ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Stop(context.Background())
	waitFor(t, "scrapes", func() bool { return g.store.Rows() == 2 })
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	// The same client call the resilient router makes against a site.
	resp, err := web.RemoteQueryContext(context.Background(), srv.URL, core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "repub-0",
	})
	if err != nil || resp.ResultSet.Len() != 2 {
		t.Fatalf("wire query = %v, %v", resp, err)
	}
	// Errors surface as HTTP errors the client maps to Go errors.
	if _, err := web.RemoteQueryContext(context.Background(), srv.URL, core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "not-owned",
	}); err == nil {
		t.Fatal("unowned wire query did not error")
	}
}

// A caller that pins the region (the entry gateway's fan-out legs) gets
// exactly those sites — never the republisher's full shard, which may also
// mirror the caller's own site — and a refusal when the shard drifted.
func TestRegionPinnedToCallerCoverage(t *testing.T) {
	dir := gma.NewDirectory(0, nil)
	sites, query, _ := fakeSites(t, dir, 3)
	g, err := New(Options{
		Name: "repub-0", Endpoint: "http://repub-0", Directory: dir,
		Groups: []string{glue.GroupProcessor}, Query: query,
		RefreshInterval: time.Hour, ScrapeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Stop(context.Background())
	waitFor(t, "scrapes", func() bool { return g.store.Rows() == len(sites) })

	resp, err := g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "repub-0",
		Region: sites[:2],
	})
	if err != nil || resp.ResultSet.Len() != 2 {
		t.Fatalf("pinned region query = %v, %v (want 2 rows)", resp, err)
	}
	if _, err := g.QueryContext(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Site: "repub-0",
		Region: []string{sites[0], "site-not-owned"},
	}); err == nil {
		t.Fatal("drifted region coverage did not refuse")
	}
}
