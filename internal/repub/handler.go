package repub

import (
	"encoding/json"
	"net/http"
	"strings"

	"gridrm/internal/security"
	"gridrm/internal/web"
)

// maxQueryBody bounds POST /query bodies, mirroring the site servlet.
const maxQueryBody = 1 << 20

// Handler exposes the republisher over the same wire protocol as a site
// gateway's servlet interface: POST /query speaks web.WireRequest /
// web.WireResponse, so web.RemoteQueryContext — and therefore the entry
// gateway's resilient router — works against a republisher unchanged.
// GET /status serves the ownership set and counters.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", g.handleQuery)
	mux.HandleFunc("/status", g.handleStatus)
	return mux
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var wr web.WireRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&wr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := wr.ToCoreRequest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.Principal = principalFrom(r)
	resp, err := g.QueryContext(r.Context(), req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(web.EncodeResponse(resp))
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Name  string   `json:"name"`
		Owns  []string `json:"owns"`
		Stats Stats    `json:"stats"`
	}{Name: g.opts.Name, Owns: g.Owns(), Stats: g.Stats()})
}

// principalFrom reads the caller's identity headers, the same ones the
// site servlet reads and web.Client sends.
func principalFrom(r *http.Request) security.Principal {
	p := security.Principal{
		Name: r.Header.Get(web.HeaderUser),
		Site: r.Header.Get(web.HeaderSite),
	}
	if roles := r.Header.Get(web.HeaderRoles); roles != "" {
		for _, role := range strings.Split(roles, ",") {
			if role = strings.TrimSpace(role); role != "" {
				p.Roles = append(p.Roles, role)
			}
		}
	}
	return p
}
