package schema

import (
	"testing"

	"gridrm/internal/glue"
)

func validSchema() *DriverSchema {
	return &DriverSchema{
		Driver: "jdbc-test",
		Groups: map[string]*GroupMapping{
			glue.GroupProcessor: {
				Group: glue.GroupProcessor,
				Fields: []FieldMapping{
					{GLUEField: "HostName", Native: "sysName"},
					{GLUEField: "LoadLast1Min", Native: "laLoad.1"},
				},
			},
		},
	}
}

func TestRegisterAndLookup(t *testing.T) {
	m := NewManager()
	if err := m.Register(validSchema()); err != nil {
		t.Fatal(err)
	}
	ds, gen, ok := m.Lookup("jdbc-test")
	if !ok || ds.Driver != "jdbc-test" || gen != 1 {
		t.Fatalf("Lookup = %v, %d, %v", ds, gen, ok)
	}
	if !m.Valid("jdbc-test", gen) {
		t.Error("fresh generation invalid")
	}
	// Re-registering bumps generation.
	if err := m.Register(validSchema()); err != nil {
		t.Fatal(err)
	}
	if m.Valid("jdbc-test", gen) {
		t.Error("old generation still valid after re-register")
	}
	if m.Lookups() < 1 {
		t.Error("lookups not counted")
	}
	if got := m.Drivers(); len(got) != 1 || got[0] != "jdbc-test" {
		t.Errorf("Drivers = %v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	m := NewManager()
	if err := m.Register(nil); err == nil {
		t.Error("nil schema accepted")
	}
	if err := m.Register(&DriverSchema{}); err == nil {
		t.Error("unnamed schema accepted")
	}
	bad := validSchema()
	bad.Groups["Nope"] = &GroupMapping{Group: "Nope"}
	if err := m.Register(bad); err == nil {
		t.Error("unknown group accepted")
	}
	bad = validSchema()
	bad.Groups[glue.GroupProcessor].Fields = append(bad.Groups[glue.GroupProcessor].Fields,
		FieldMapping{GLUEField: "Bogus", Native: "x"})
	if err := m.Register(bad); err == nil {
		t.Error("unknown field accepted")
	}
	bad = validSchema()
	bad.Groups[glue.GroupProcessor].Fields = append(bad.Groups[glue.GroupProcessor].Fields,
		FieldMapping{GLUEField: "HostName", Native: "again"})
	if err := m.Register(bad); err == nil {
		t.Error("duplicate field accepted")
	}
	bad = validSchema()
	bad.Groups[glue.GroupProcessor].Fields[0].Native = ""
	if err := m.Register(bad); err == nil {
		t.Error("empty native name accepted")
	}
	bad = validSchema()
	bad.Groups[glue.GroupMemory] = &GroupMapping{Group: glue.GroupProcessor}
	if err := m.Register(bad); err == nil {
		t.Error("mismatched group key accepted")
	}
}

func TestDeregister(t *testing.T) {
	m := NewManager()
	_ = m.Register(validSchema())
	_, gen, _ := m.Lookup("jdbc-test")
	m.Deregister("jdbc-test")
	if _, _, ok := m.Lookup("jdbc-test"); ok {
		t.Error("deregistered schema still present")
	}
	if m.Valid("jdbc-test", gen) {
		t.Error("generation valid after deregister")
	}
}

func TestGroupNamesAndCoverage(t *testing.T) {
	ds := validSchema()
	ds.Groups[glue.GroupMemory] = &GroupMapping{Group: glue.GroupMemory,
		Fields: []FieldMapping{{GLUEField: "RAMSize", Native: "mem_total"}}}
	names := ds.GroupNames()
	if len(names) != 2 || names[0] != glue.GroupMemory || names[1] != glue.GroupProcessor {
		t.Errorf("GroupNames = %v", names)
	}
	mapped, total := ds.Coverage(glue.GroupProcessor)
	if mapped != 2 || total != len(glue.MustLookup(glue.GroupProcessor).Fields) {
		t.Errorf("Coverage = %d/%d", mapped, total)
	}
	mapped, total = ds.Coverage(glue.GroupDisk)
	if mapped != 0 {
		t.Errorf("unmapped group coverage = %d/%d", mapped, total)
	}
	if m, tot := ds.Coverage("Nope"); m != 0 || tot != 0 {
		t.Errorf("unknown group coverage = %d/%d", m, tot)
	}
}

func TestBuildRow(t *testing.T) {
	g := glue.MustLookup(glue.GroupProcessor)
	gm := &GroupMapping{Group: g.Name, Fields: []FieldMapping{
		{GLUEField: "HostName", Native: "name"},
		{GLUEField: "LoadLast1Min", Native: "load"},
		{GLUEField: "CPUCount", Native: "ncpu"},
	}}
	values := map[string]any{"name": "n1", "load": 1.5}
	row, err := BuildRow(g, gm, func(native string) (any, bool) {
		v, ok := values[native]
		return v, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if row[g.FieldIndex("HostName")] != "n1" {
		t.Error("mapped string missing")
	}
	if row[g.FieldIndex("LoadLast1Min")] != 1.5 {
		t.Error("mapped float missing")
	}
	// ncpu mapped but unavailable → NULL; Model unmapped → NULL.
	if row[g.FieldIndex("CPUCount")] != nil || row[g.FieldIndex("Model")] != nil {
		t.Error("NULL rule violated")
	}
	if err := glue.ValidateRow(g, row); err != nil {
		t.Errorf("built row invalid: %v", err)
	}
}

func TestBuildRowTypeMismatch(t *testing.T) {
	g := glue.MustLookup(glue.GroupProcessor)
	gm := &GroupMapping{Group: g.Name, Fields: []FieldMapping{
		{GLUEField: "LoadLast1Min", Native: "load"},
	}}
	_, err := BuildRow(g, gm, func(string) (any, bool) { return "not a float", true })
	if err == nil {
		t.Error("mistyped native value accepted")
	}
}

func TestMappedLookup(t *testing.T) {
	gm := &GroupMapping{Group: glue.GroupProcessor, Fields: []FieldMapping{
		{GLUEField: "HostName", Native: "sysName"},
	}}
	if n, ok := gm.Mapped("HostName"); !ok || n != "sysName" {
		t.Errorf("Mapped = %q, %v", n, ok)
	}
	if _, ok := gm.Mapped("Model"); ok {
		t.Error("unmapped field reported mapped")
	}
}
