// Package schema implements the GridRM SchemaManager (paper §3.1.4): the
// registry of mapping and translation metadata that tells each data-source
// driver how its native values realise the GLUE naming schema.
//
// Each driver registers a DriverSchema — per GLUE group, the list of GLUE
// fields it can supply and the native identifier (OID, metric name, ULM
// event, status key ...) each one comes from. Statements ask the manager
// for the mapping when a connection is created and cache it; the manager
// keeps a generation counter per driver so cached mappings can be
// revalidated cheaply before use, reproducing Fig 5's "schema is cached
// when the connection is created; Statement checks cache consistency
// before using schema instance".
//
// The translation rule of §3.1.4 is enforced by BuildRow: any GLUE field a
// driver has not mapped, or whose native value the agent cannot supply,
// comes back NULL — "indicating a translation was either not possible or
// currently not implemented".
package schema

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gridrm/internal/glue"
)

// FieldMapping binds one GLUE field to the native datum that realises it.
type FieldMapping struct {
	// GLUEField is the field name within the group.
	GLUEField string
	// Native identifies the value in the source's own vocabulary
	// (an OID, a gmond metric name, a ULM event, ...).
	Native string
	// Note optionally documents unit or semantic conversion applied.
	Note string
}

// GroupMapping is a driver's realisation of one GLUE group.
type GroupMapping struct {
	// Group is the GLUE group name.
	Group string
	// Fields lists the mapped fields; unmapped fields are NULL.
	Fields []FieldMapping
}

// Mapped returns the native identifier for a GLUE field, if mapped.
func (gm *GroupMapping) Mapped(field string) (string, bool) {
	for _, f := range gm.Fields {
		if f.GLUEField == field {
			return f.Native, true
		}
	}
	return "", false
}

// DriverSchema is everything the SchemaManager knows about one driver's
// GLUE implementation.
type DriverSchema struct {
	// Driver is the driver's registration name.
	Driver string
	// Groups maps GLUE group name → mapping.
	Groups map[string]*GroupMapping
}

// GroupNames returns the GLUE groups the driver implements, sorted.
func (ds *DriverSchema) GroupNames() []string {
	names := make([]string, 0, len(ds.Groups))
	for n := range ds.Groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Coverage reports how many of a group's GLUE fields the driver maps.
func (ds *DriverSchema) Coverage(group string) (mapped, total int) {
	g, ok := glue.Lookup(group)
	if !ok {
		return 0, 0
	}
	total = len(g.Fields)
	if gm, ok := ds.Groups[group]; ok {
		mapped = len(gm.Fields)
	}
	return mapped, total
}

// Manager is the SchemaManager.
type Manager struct {
	mu      sync.RWMutex
	schemas map[string]*DriverSchema
	gens    map[string]int64
	lookups atomic.Int64
}

// NewManager returns an empty SchemaManager.
func NewManager() *Manager {
	return &Manager{schemas: make(map[string]*DriverSchema), gens: make(map[string]int64)}
}

// Register installs (or replaces) a driver's schema after validating every
// group and field against the GLUE definition. Re-registering bumps the
// driver's generation, invalidating cached lookups.
func (m *Manager) Register(ds *DriverSchema) error {
	if ds == nil || ds.Driver == "" {
		return fmt.Errorf("schema: driver schema must name its driver")
	}
	for name, gm := range ds.Groups {
		g, ok := glue.Lookup(name)
		if !ok {
			return fmt.Errorf("schema: driver %s maps unknown group %q", ds.Driver, name)
		}
		if gm.Group != name {
			return fmt.Errorf("schema: driver %s: group key %q names mapping %q", ds.Driver, name, gm.Group)
		}
		seen := make(map[string]bool, len(gm.Fields))
		for _, f := range gm.Fields {
			if _, ok := g.Field(f.GLUEField); !ok {
				return fmt.Errorf("schema: driver %s group %s maps unknown field %q", ds.Driver, name, f.GLUEField)
			}
			if seen[f.GLUEField] {
				return fmt.Errorf("schema: driver %s group %s maps field %q twice", ds.Driver, name, f.GLUEField)
			}
			seen[f.GLUEField] = true
			if f.Native == "" {
				return fmt.Errorf("schema: driver %s group %s field %q has empty native name", ds.Driver, name, f.GLUEField)
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schemas[ds.Driver] = ds
	m.gens[ds.Driver]++
	return nil
}

// Deregister removes a driver's schema.
func (m *Manager) Deregister(driver string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.schemas, driver)
	m.gens[driver]++
}

// Lookup returns a driver's schema and its current generation. Connections
// cache both and revalidate with Valid.
func (m *Manager) Lookup(driver string) (*DriverSchema, int64, bool) {
	m.lookups.Add(1)
	m.mu.RLock()
	defer m.mu.RUnlock()
	ds, ok := m.schemas[driver]
	return ds, m.gens[driver], ok
}

// Valid reports whether a cached generation is still current for a driver.
func (m *Manager) Valid(driver string, gen int64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.gens[driver] == gen
}

// Lookups returns how many schema lookups have been served (benchmark
// support: a working connection-level schema cache keeps this low).
func (m *Manager) Lookups() int64 { return m.lookups.Load() }

// Drivers returns the names of drivers with registered schemas, sorted.
func (m *Manager) Drivers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.schemas))
	for n := range m.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildRow materialises one GLUE row (canonical field order) for group g
// under mapping gm, pulling native values through get. Unmapped fields and
// fields whose native value is unavailable become NULL; a native value of
// the wrong dynamic type is an error (the driver's translation is broken,
// not the data missing).
func BuildRow(g *glue.Group, gm *GroupMapping, get func(native string) (any, bool)) ([]any, error) {
	row := make([]any, len(g.Fields))
	for i, f := range g.Fields {
		native, ok := gm.Mapped(f.Name)
		if !ok {
			continue // translation not implemented → NULL
		}
		v, ok := get(native)
		if !ok {
			continue // value unavailable → NULL
		}
		if err := glue.CheckValue(f, v); err != nil {
			return nil, fmt.Errorf("schema: native %q: %w", native, err)
		}
		row[i] = v
	}
	return row, nil
}
