package core

import (
	"fmt"
	"sort"

	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

// metricWatch publishes one GLUE field of every harvested row as a Usage
// event — the right-hand side of the paper's Fig 3, where harvested data
// flows into the Notification Manager so threshold rules can raise
// "Threshold exceeded. Alert transmitted" without any separate polling
// loop: monitoring piggybacks on the queries clients already run.
type metricWatch struct {
	group     *glue.Group
	fieldIdx  int
	fieldName string
	hostIdx   int
}

// WatchMetric asks the gateway to publish `group.field` as a Usage event
// (named "<Group>.<Field>", host taken from the group's first string key
// field) for every row of every successful harvest of that group. Combine
// with Events().AddRule to turn harvests into alerts.
func (g *Gateway) WatchMetric(group, field string) error {
	gg, ok := glue.Lookup(group)
	if !ok {
		return fmt.Errorf("core: unknown group %q", group)
	}
	f, ok := gg.Field(field)
	if !ok {
		return fmt.Errorf("core: group %s has no field %q", group, field)
	}
	if f.Kind != glue.Int && f.Kind != glue.Float {
		return fmt.Errorf("core: field %s.%s is %s; only numeric fields can be watched",
			group, field, f.Kind)
	}
	hostIdx := -1
	for i, kf := range gg.Fields {
		if kf.Key && kf.Kind == glue.String {
			hostIdx = i
			break
		}
	}
	if hostIdx < 0 {
		return fmt.Errorf("core: group %s has no string key field to attribute events to", group)
	}
	w := metricWatch{
		group:     gg,
		fieldIdx:  gg.FieldIndex(f.Name),
		fieldName: f.Name,
		hostIdx:   hostIdx,
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, existing := range g.watches[gg.Name] {
		if existing.fieldName == w.fieldName {
			return fmt.Errorf("core: %s.%s already watched", group, field)
		}
	}
	if g.watches == nil {
		g.watches = make(map[string][]metricWatch)
	}
	g.watches[gg.Name] = append(g.watches[gg.Name], w)
	return nil
}

// WatchedMetrics lists active watches as "Group.Field" strings.
func (g *Gateway) WatchedMetrics() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for group, ws := range g.watches {
		for _, w := range ws {
			out = append(out, group+"."+w.fieldName)
		}
	}
	sort.Strings(out)
	return out
}

// publishHarvestMetrics emits watched fields of a freshly harvested
// ResultSet as Usage events.
func (g *Gateway) publishHarvestMetrics(url string, group *glue.Group, rs *resultset.ResultSet) {
	g.mu.RLock()
	watches := g.watches[group.Name]
	g.mu.RUnlock()
	if len(watches) == 0 {
		return
	}
	now := g.clock()
	for i := 0; i < rs.Len(); i++ {
		row := rs.RowAt(i)
		for _, w := range watches {
			v := row[w.fieldIdx]
			if v == nil {
				continue // NULL: the source cannot supply this field
			}
			var value float64
			switch x := v.(type) {
			case int64:
				value = float64(x)
			case float64:
				value = x
			default:
				continue
			}
			host, _ := row[w.hostIdx].(string)
			g.events.Publish(event.Event{
				Source:   url,
				Host:     host,
				Name:     group.Name + "." + w.fieldName,
				Severity: event.SeverityUsage,
				Value:    value,
				Time:     now,
			})
		}
	}
}
