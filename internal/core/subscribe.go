package core

import (
	"context"
	"fmt"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/router"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
	"gridrm/internal/trace"
)

// Subscribe registers a continuous query (R-GMA's third query class): the
// SQL predicate is parsed once, and every row later produced by harvests
// or polls of the queried group is matched against it and pushed to the
// returned subscription. The subscription ends when ctx is cancelled, when
// Close is called on it, when the router evicts it for stalling, or at
// gateway shutdown — select on Done alongside C.
//
// The push path shares Publish's backpressure contract: the subscription's
// queue is bounded, overflow drops oldest with accounting, and a consumer
// that never drains is evicted rather than allowed to wedge the harvest
// path. opts.FromSeq resumes delivery after a reconnect; if the replay
// ring no longer reaches back that far the subscription reports Gapped.
func (g *Gateway) Subscribe(ctx context.Context, opts QueryOptions) (*router.Subscription, error) {
	g.mu.RLock()
	closed := g.closed
	g.mu.RUnlock()
	if closed {
		return nil, ErrGatewayClosed
	}
	if opts.Site != "" && opts.Site != g.name {
		return nil, fmt.Errorf("core: continuous queries are local; site %q not supported", opts.Site)
	}
	if opts.Mode == ModeHistorical {
		return nil, fmt.Errorf("core: continuous queries cannot be historical")
	}
	if g.coarse.Check(opts.Principal, security.OpQueryRealTime) != security.Allow {
		g.denied.Add(1)
		return nil, &PermissionError{Principal: opts.Principal.Name, What: string(security.OpQueryRealTime)}
	}
	q, err := g.plans.Parse(opts.SQL)
	if err != nil {
		return nil, err
	}
	if q.Aggregate() || len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("core: continuous queries cannot aggregate; subscribe to raw rows and aggregate client-side")
	}
	group, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("core: unknown GLUE group %q", q.Table)
	}
	// Validate the projection (and pin its indices) against the group now,
	// so a typo'd column fails at Subscribe rather than silently matching
	// nothing later.
	if !q.Star() {
		if _, err := resultset.MetadataForGroup(group, q.Columns); err != nil {
			return nil, err
		}
	}
	match := g.buildMatch(opts, q, group)
	sub, err := g.push.Subscribe(router.SubscribeOptions{
		Name:    subscriberLabel(opts),
		Match:   match,
		FromSeq: opts.FromSeq,
	})
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Close()
			case <-sub.Done():
			}
		}()
	}
	return sub, nil
}

// subscriberLabel names a subscription for the management view.
func subscriberLabel(opts QueryOptions) string {
	who := opts.Principal.Name
	if who == "" {
		who = "anonymous"
	}
	sql := opts.SQL
	if len(sql) > 64 {
		sql = sql[:64] + "..."
	}
	return who + ": " + sql
}

// buildMatch compiles a parsed continuous query into the router's match
// closure. It runs on the publish path for every harvested row, so it does
// index lookups and a WHERE eval — no allocation beyond the projected row.
func (g *Gateway) buildMatch(opts QueryOptions, q *sqlparse.Query, group *glue.Group) func(router.Metric) (router.Metric, bool) {
	var sources map[string]bool
	if len(opts.Sources) > 0 {
		sources = make(map[string]bool, len(opts.Sources))
		for _, s := range opts.Sources {
			sources[s] = true
		}
	}
	principal := opts.Principal
	where := q.Where
	projected := append([]string(nil), q.Columns...)
	return func(m router.Metric) (router.Metric, bool) {
		if m.Group != group.Name {
			return router.Metric{}, false
		}
		if sources != nil && !sources[m.Source] {
			return router.Metric{}, false
		}
		// Fine-grained security is enforced per metric, like the query
		// path's per-source check: a subscriber only sees rows from
		// (source, group) pairs its principal may read.
		if g.fine.Check(principal, m.Source, m.Group) != security.Allow {
			return router.Metric{}, false
		}
		if where != nil {
			resolve := func(col string) (any, bool) {
				idx := columnIndex(m.Columns, col)
				if idx < 0 {
					return nil, false
				}
				return m.Row[idx], true
			}
			ok, err := sqlparse.Eval(where, resolve)
			if err != nil || !ok {
				return router.Metric{}, false
			}
		}
		if len(projected) > 0 {
			row := make([]any, len(projected))
			for i, col := range projected {
				if idx := columnIndex(m.Columns, col); idx >= 0 {
					row[i] = m.Row[idx]
				}
			}
			m.Columns = projected
			m.Row = row
		}
		return m, true
	}
}

// columnIndex finds col in cols case-insensitively (GLUE column names are
// matched the way the query engine matches them).
func columnIndex(cols []string, col string) int {
	for i, c := range cols {
		if equalFold(c, col) {
			return i
		}
	}
	return -1
}

// equalFold is a cheap ASCII case-insensitive compare (column names are
// ASCII identifiers).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// PushRouter returns the metric router behind continuous queries, for sink
// registration and the management view.
func (g *Gateway) PushRouter() *router.Router { return g.push }

// publishRows fans a fresh harvest's rows into the push router. It is a
// no-op when nothing subscribes (Idle is one atomic load), and it never
// blocks: the router's queues are bounded with drop-oldest overflow, so a
// stuck subscriber costs the harvest path nothing but this fan-out loop.
func (g *Gateway) publishRows(ctx context.Context, url string, group *glue.Group, rs *resultset.ResultSet) {
	if g.push.Idle() || rs.Len() == 0 {
		return
	}
	start := g.clock()
	_, span := trace.StartSpan(ctx, "dispatch")
	rows := make([][]any, rs.Len())
	for i := range rows {
		rows[i] = rs.RowAt(i)
	}
	n := g.push.Publish(url, group.Name, rs.Metadata().ColumnNames(), rows, start)
	if span != nil {
		span.SetAttr("rows", fmt.Sprintf("%d", n))
	}
	span.End()
	g.observeStage(StageDispatch, start)
}
