package core

import (
	"os"
	"testing"
	"time"

	"gridrm/internal/event"
	"gridrm/internal/tsdb"
)

// TestDurableHistorySurvivesGatewayCrash is the end-to-end recovery
// property: a gateway with a durable history dir harvests, crashes without
// any graceful shutdown, and the replacement gateway on the same dir serves
// the pre-crash sample through the degradation ladder's history tier.
func TestDurableHistorySurvivesGatewayCrash(t *testing.T) {
	dir := t.TempDir()
	durable := tsdb.Options{Dir: dir, Fsync: tsdb.FsyncAlways, CheckpointInterval: -1}

	fx := newDegradeFixture(t, Config{StaleGrace: -1, Durable: durable})
	if s := fx.query(t, ModeCached); s.Err != "" || s.Rows != 1 {
		t.Fatalf("priming query status %+v", s)
	}
	st := fx.g.DurableHistory().Stats()
	if st.State != "durable" || st.WALAppends == 0 {
		t.Fatalf("durable stats before crash: %+v", st)
	}
	fx.g.DurableHistory().CrashClose() // kill -9, not a drain
	fx.g.Close()

	fx2 := newDegradeFixture(t, Config{StaleGrace: -1, Durable: durable})
	fx2.drv.fail.Store(true) // sources still down after the restart
	*fx2.now = fx2.now.Add(30 * time.Second)

	s := fx2.query(t, ModeCached)
	if s.Degraded != DegradedHistory {
		t.Fatalf("Degraded = %q, want %q (status %+v)", s.Degraded, DegradedHistory, s)
	}
	if s.Rows != 1 || s.Age != 30*time.Second {
		t.Errorf("restored fallback rows=%d age=%s", s.Rows, s.Age)
	}
	hs := fx2.g.HistoryStatus()
	if hs.Durability == nil || hs.Durability.ReplayedRecords == 0 {
		t.Fatalf("HistoryStatus durability = %+v", hs.Durability)
	}
	if hs.Keys == 0 || hs.Samples == 0 {
		t.Errorf("HistoryStatus keys=%d samples=%d", hs.Keys, hs.Samples)
	}
}

// TestDurableUnsetIsPlainMemoryStore: without a history dir the gateway is
// byte-identical to the in-memory configuration — no durable store, no
// durability block in the status report.
func TestDurableUnsetIsPlainMemoryStore(t *testing.T) {
	fx := newDegradeFixture(t, Config{StaleGrace: -1})
	fx.query(t, ModeCached)
	if fx.g.DurableHistory() != nil {
		t.Fatal("DurableHistory set without a history dir")
	}
	hs := fx.g.HistoryStatus()
	if hs.Durability != nil {
		t.Fatalf("durability block without a history dir: %+v", hs.Durability)
	}
	if hs.Keys == 0 || hs.Samples == 0 {
		t.Errorf("history gauges empty: %+v", hs)
	}
}

// TestDurableAlertsBecomeEvents: durability alerts surface on the gateway's
// event bus under the history-durability name.
func TestDurableAlertsBecomeEvents(t *testing.T) {
	// Point the store at an unusable path (a file where the dir should be).
	base := t.TempDir()
	blocked := base + "/blocked"
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	durable := tsdb.Options{
		Dir: blocked + "/history", Fsync: tsdb.FsyncAlways,
		CheckpointInterval: -1, ReattachBackoff: time.Hour,
	}
	fx := newDegradeFixture(t, Config{StaleGrace: -1, Durable: durable})
	deadline := time.Now().Add(2 * time.Second)
	for {
		evs := fx.g.Events().History(event.Filter{Name: tsdb.AlertKind}, time.Time{})
		if len(evs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %s event published", tsdb.AlertKind)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The gateway still works memory-only.
	if s := fx.query(t, ModeCached); s.Err != "" || s.Rows != 1 {
		t.Fatalf("memory-only query status %+v", s)
	}
}
