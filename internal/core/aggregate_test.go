package core

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// captureRouter wraps multiRouter, recording the SQL of every remote
// request and the row count of every remote response.
type captureRouter struct {
	multiRouter
	mu       sync.Mutex
	sqls     []string
	respRows []int
}

func (r *captureRouter) RemoteQuery(site string, req QueryOptions) (*Response, error) {
	resp, err := r.multiRouter.RemoteQuery(site, req)
	r.mu.Lock()
	r.sqls = append(r.sqls, req.SQL)
	if resp != nil {
		r.respRows = append(r.respRows, resp.ResultSet.Len())
	}
	r.mu.Unlock()
	return resp, err
}

// buildAggVO wires a heterogeneous two-site VO: siteA has hosts a1, a2
// (load 1.0) and b1 (load 5.0); siteZ has z1, z2 (load 9.0).
func buildAggVO(t *testing.T) (*fixture, *captureRouter) {
	t.Helper()
	f := newFixture(t)
	remote := New(Config{Name: "siteZ"})
	t.Cleanup(remote.Close)
	zdrv := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"z1", "z2"}, load: 9.0}
	if err := remote.RegisterDriver(zdrv, zdrv.schema()); err != nil {
		t.Fatal(err)
	}
	if err := remote.AddSource(SourceConfig{URL: "gridrm:mem://z:1"}); err != nil {
		t.Fatal(err)
	}
	router := &captureRouter{multiRouter: multiRouter{gateways: map[string]*Gateway{"siteZ": remote}}}
	f.g.SetGlobalRouter(router)
	return f, router
}

// TestAllSitesAggregatePushdown is the acceptance check: a federated
// GROUP BY avg matches client-side aggregation of the raw rows, while the
// wire carried only partial aggregates.
func TestAllSitesAggregatePushdown(t *testing.T) {
	f, router := buildAggVO(t)

	// Client-side reference: fetch every raw row and aggregate by hand.
	raw, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName, LoadLast1Min FROM Processor",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	var sum, min, max float64
	for raw.ResultSet.Next() {
		v, _ := raw.ResultSet.GetFloat("LoadLast1Min")
		if n == 0 || v < min {
			min = v
		}
		if n == 0 || v > max {
			max = v
		}
		sum += v
		n++
	}

	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT count(*), avg(LoadLast1Min), min(LoadLast1Min), max(LoadLast1Min), sum(LoadLast1Min) FROM Processor",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 1 {
		t.Fatalf("rows = %d, want 1", resp.ResultSet.Len())
	}
	resp.ResultSet.Next()
	if got, _ := resp.ResultSet.GetInt("count(*)"); got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
	if got, _ := resp.ResultSet.GetFloat("avg(LoadLast1Min)"); math.Abs(got-sum/float64(n)) > 1e-9 {
		t.Errorf("avg = %v, want %v", got, sum/float64(n))
	}
	if got, _ := resp.ResultSet.GetFloat("min(LoadLast1Min)"); got != min {
		t.Errorf("min = %v, want %v", got, min)
	}
	if got, _ := resp.ResultSet.GetFloat("max(LoadLast1Min)"); got != max {
		t.Errorf("max = %v, want %v", got, max)
	}
	if got, _ := resp.ResultSet.GetFloat("sum(LoadLast1Min)"); math.Abs(got-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, sum)
	}

	// The remote site must have been asked for the partial rewrite and
	// must have answered with one partial row, not its two raw rows.
	var aggSQL string
	router.mu.Lock()
	for _, sql := range router.sqls {
		if strings.Contains(sql, "sum(") {
			aggSQL = sql
		}
	}
	rows := append([]int(nil), router.respRows...)
	router.mu.Unlock()
	if aggSQL == "" {
		t.Fatalf("no partial-aggregate SQL crossed the router: %v", router.sqls)
	}
	for _, frag := range []string{"sum(LoadLast1Min)", "count(LoadLast1Min)", "count(*)"} {
		if !strings.Contains(aggSQL, frag) {
			t.Errorf("partial SQL %q missing %q", aggSQL, frag)
		}
	}
	if strings.Contains(aggSQL, "avg(") {
		t.Errorf("partial SQL %q still contains avg — it must ship sum+count", aggSQL)
	}
	// respRows: raw fan-out leg returned 2 rows, aggregate leg 1.
	found := false
	for _, r := range rows {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("remote aggregate leg response rows = %v, want a 1-row partial", rows)
	}
}

// TestAllSitesGroupByAcrossSites groups by a column whose values span
// sites, so per-group partials from different sites must merge.
func TestAllSitesGroupByAcrossSites(t *testing.T) {
	f, _ := buildAggVO(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		// Every host reports Model NULL in the fixtures, so the whole VO
		// collapses into one NULL group — proving partial groups from
		// different sites merge rather than duplicate.
		SQL:  "SELECT Model, count(*), avg(LoadLast1Min) FROM Processor GROUP BY Model",
		Site: AllSites,
		Mode: ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 1 {
		t.Fatalf("groups = %d, want 1 merged NULL group", resp.ResultSet.Len())
	}
	resp.ResultSet.Next()
	if n, _ := resp.ResultSet.GetInt("count(*)"); n != 5 {
		t.Errorf("count = %d, want 5", n)
	}
	// (1+1+5+9+9)/5 = 5.0
	if avg, _ := resp.ResultSet.GetFloat("avg(LoadLast1Min)"); math.Abs(avg-5.0) > 1e-9 {
		t.Errorf("avg = %v, want 5.0", avg)
	}
}

// TestAllSitesAggregateOrderLimit: ORDER BY/LIMIT over aggregate output
// apply at the entry gateway, after finalization.
func TestAllSitesAggregateOrderLimit(t *testing.T) {
	f, _ := buildAggVO(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName, max(LoadLast1Min) FROM Processor GROUP BY HostName ORDER BY max(LoadLast1Min) DESC LIMIT 2",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 2 {
		t.Fatalf("rows = %d", resp.ResultSet.Len())
	}
	for resp.ResultSet.Next() {
		h, _ := resp.ResultSet.GetString("HostName")
		if !strings.HasPrefix(h, "z") {
			t.Errorf("global top-2 max load includes %q, want siteZ hosts", h)
		}
	}
}

// TestAllSitesAggregateSurvivesSiteFailure: a dead site degrades the
// aggregate to the answering sites, mirroring raw-row behaviour.
func TestAllSitesAggregateSurvivesSiteFailure(t *testing.T) {
	f, router := buildAggVO(t)
	for _, gw := range router.gateways {
		gw.Close() // siteZ gone
	}
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT count(*), sum(LoadLast1Min) FROM Processor",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.ResultSet.Next()
	if n, _ := resp.ResultSet.GetInt("count(*)"); n != 3 {
		t.Errorf("count = %d, want siteA's 3", n)
	}
	if s, _ := resp.ResultSet.GetFloat("sum(LoadLast1Min)"); s != 7.0 {
		t.Errorf("sum = %v, want 7.0", s)
	}
}

// TestSingleSiteAggregate: a plain (non-federated) aggregate runs at the
// site's consolidate stage over the harvested snapshot.
func TestSingleSiteAggregate(t *testing.T) {
	f := newFixture(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName, avg(LoadLast1Min) FROM Processor GROUP BY HostName ORDER BY HostName",
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 3 {
		t.Fatalf("groups = %d", resp.ResultSet.Len())
	}
	resp.ResultSet.Next()
	if h, _ := resp.ResultSet.GetString("HostName"); h != "a1" {
		t.Errorf("first group = %q", h)
	}
}

// TestPlanCacheCounters: repeating a query must hit the plan cache, and the
// counters must show in Stats.
func TestPlanCacheCounters(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 3; i++ {
		if _, err := f.g.QueryContext(context.Background(), QueryOptions{
			Principal: f.admin,
			SQL:       "SELECT HostName FROM Processor",
			Mode:      ModeRealTime,
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := f.g.Stats()
	if st.PlanCacheMisses == 0 {
		t.Error("no plan cache misses recorded")
	}
	if st.PlanCacheHits < 2 {
		t.Errorf("plan cache hits = %d, want >= 2", st.PlanCacheHits)
	}
}
