package core

import (
	"context"
	"reflect"
	"testing"

	"gridrm/internal/glue"
)

// normalizeResponse zeroes the fields two calls legitimately disagree on —
// processing time and trace identity — leaving everything a caller acts on:
// rows, per-source outcomes, site, mode, canonical SQL.
func normalizeResponse(r *Response) *Response {
	c := *r
	c.Elapsed = 0
	c.TraceID = ""
	c.Trace = nil
	return &c
}

// TestQueryShimMatchesQueryContext proves the deprecated context-free Query
// shim is behaviourally identical to QueryContext: same rows, same source
// statuses, same errors, in every mode. The fixture clock is frozen so even
// harvest timestamps must agree.
func TestQueryShimMatchesQueryContext(t *testing.T) {
	f := newFixture(t)
	// Prime cache and history so cached/historical modes have data and both
	// calls of a pair observe identical gateway state.
	f.query(t, "SELECT * FROM Processor", ModeRealTime)

	for _, tc := range []struct {
		name string
		mode Mode
	}{
		{"cached", ModeCached},
		{"real-time", ModeRealTime},
		{"historical", ModeHistorical},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := Request{Principal: f.admin, SQL: "SELECT * FROM Processor", Mode: tc.mode}
			a, errA := f.g.Query(req)
			b, errB := f.g.QueryContext(context.Background(), req)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("error mismatch: shim %v, context %v", errA, errB)
			}
			if errA != nil && errA.Error() != errB.Error() {
				t.Fatalf("error text mismatch: %q vs %q", errA, errB)
			}
			if errA != nil {
				return
			}
			if !reflect.DeepEqual(normalizeResponse(a), normalizeResponse(b)) {
				t.Errorf("responses differ\n shim: %+v\n ctx:  %+v", a, b)
			}
		})
	}
}

// TestQueryShimMatchesQueryContextOnErrors checks the shims also agree when
// the query is rejected — a denied principal and a malformed table.
func TestQueryShimMatchesQueryContextOnErrors(t *testing.T) {
	f := newFixture(t)
	for _, req := range []Request{
		{Principal: f.admin, SQL: "SELECT * FROM NoSuchTable", Mode: ModeCached},
		{SQL: "SELECT * FROM Processor", Mode: ModeCached}, // anonymous principal
	} {
		a, errA := f.g.Query(req)
		b, errB := f.g.QueryContext(context.Background(), req)
		if (errA == nil) != (errB == nil) || (a == nil) != (b == nil) {
			t.Fatalf("divergence for %+v: shim (%v, %v), context (%v, %v)", req, a, errA, b, errB)
		}
		if errA != nil && errA.Error() != errB.Error() {
			t.Errorf("error text mismatch for %+v: %q vs %q", req, errA, errB)
		}
	}
}

// TestPollShimMatchesPollContext proves the deprecated Poll shim matches
// PollContext for both a served group and a rejected one.
func TestPollShimMatchesPollContext(t *testing.T) {
	f := newFixture(t)
	a, errA := f.g.Poll(f.admin, f.urlA, glue.GroupProcessor)
	b, errB := f.g.PollContext(context.Background(), f.admin, f.urlA, glue.GroupProcessor)
	if errA != nil || errB != nil {
		t.Fatalf("poll errs: shim %v, context %v", errA, errB)
	}
	if !reflect.DeepEqual(normalizeResponse(a), normalizeResponse(b)) {
		t.Errorf("poll responses differ\n shim: %+v\n ctx:  %+v", a, b)
	}

	_, errA = f.g.Poll(f.admin, f.urlA, "NoSuchGroup")
	_, errB = f.g.PollContext(context.Background(), f.admin, f.urlA, "NoSuchGroup")
	if errA == nil || errB == nil || errA.Error() != errB.Error() {
		t.Errorf("poll error mismatch: %v vs %v", errA, errB)
	}
}

// TestRequestAliasIsQueryOptions pins the compatibility contract: Request is
// a true type alias, so values flow between old and new signatures with no
// conversion and reflect to the same type.
func TestRequestAliasIsQueryOptions(t *testing.T) {
	r := Request{SQL: "SELECT * FROM Processor"}
	var q QueryOptions = r
	if reflect.TypeOf(r) != reflect.TypeOf(q) {
		t.Fatalf("Request and QueryOptions are distinct types: %v vs %v",
			reflect.TypeOf(r), reflect.TypeOf(q))
	}
	if q.SQL != r.SQL {
		t.Error("alias value did not carry through")
	}
}
