package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
	"gridrm/internal/trace"
)

// Mode selects how a query is satisfied.
type Mode int

const (
	// ModeCached (the default) serves per-source results from the query
	// cache when fresh, harvesting only on miss — the paper's tree-view
	// behaviour that "limits resource intrusion" (§4).
	ModeCached Mode = iota
	// ModeRealTime forces a fresh harvest from every target source (the
	// explicit poll of Fig 9).
	ModeRealTime
	// ModeHistorical answers from the gateway's internal historical
	// store; results carry SourceURL and SampledAt provenance columns.
	ModeHistorical
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeCached:
		return "cached"
	case ModeRealTime:
		return "real-time"
	case ModeHistorical:
		return "historical"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// QueryOptions is a client query as received by the Abstract Client
// Interface Layer — the network addresses of the data sources plus the SQL
// to execute (paper §3.2.2) — and the per-request execution knobs. It is
// the one entry point Gateway.QueryContext consumes; every other query
// helper (Query, Poll, the wire codecs) builds one of these.
type QueryOptions struct {
	// Principal identifies the client for the security layers.
	Principal security.Principal
	// SQL is the query, e.g. "SELECT * FROM Processor WHERE
	// LoadLast1Min > 2".
	SQL string
	// Site targets a remote gateway; empty or the local name means
	// local, and AllSites ("*") fans the query out to the local site and
	// every site reachable through the Global layer, consolidating the
	// answers (§3.1.1: the RequestManager coordinates retrieval from
	// "not only local resources, but also resources controlled by remote
	// GridRM Gateways").
	Site string
	// Sources restricts the query to these registered source URLs;
	// empty means every registered source whose driver maps the group.
	Sources []string
	// Region restricts a republisher region query (Site = the republisher's
	// name) to exactly these sites. The entry gateway pins each region leg
	// of an all-sites fan-out to the sites the leg covers, so a republisher
	// that also mirrors the entry's own site never double-counts it, and a
	// republisher whose shard drifted from the plan refuses rather than
	// answering with the wrong coverage. Site gateways ignore it.
	Region []string
	// Mode selects cached, real-time or historical execution.
	Mode Mode
	// Since/Until bound historical queries (zero = unbounded).
	Since, Until time.Time
	// Timeout bounds this request, overriding the gateway's default
	// QueryTimeout (zero keeps the default behaviour; the caller's context
	// deadline still applies either way).
	Timeout time.Duration
	// Trace selects this query's tracing: DecideSample (the default)
	// follows the gateway's sample rate, DecideOn forces a trace,
	// DecideOff suppresses one.
	Trace trace.Decision
	// FromSeq resumes a continuous query (Subscribe) after a reconnect:
	// rows still held in the push router's replay ring with sequence
	// numbers above FromSeq are replayed before live delivery begins.
	// Ignored by QueryContext.
	FromSeq uint64
}

// SourceStatus reports the per-source outcome of a query.
//
// Partial-result contract: a live query never fails outright because some
// of its sources failed, timed out, or were skipped by an open breaker —
// the consolidated ResultSet carries every row that arrived in time, and
// each straggler or failure is reported here with a non-empty Err
// ("timed out" for deadline expiry, "circuit open" for breaker skips).
type SourceStatus struct {
	// Source is the data-source URL.
	Source string
	// Driver is the driver that served it (when known).
	Driver string
	// Cached reports whether the result came from the query cache.
	Cached bool
	// HarvestedAt is when the rows were actually collected.
	HarvestedAt time.Time
	// Rows is how many rows the source contributed before filtering.
	Rows int
	// Err is the failure, if the source could not be queried. A degraded
	// result keeps the underlying failure here alongside its rows.
	Err string
	// Degraded marks rows served from a degradation tier after the live
	// path failed: DegradedStaleCache or DegradedHistory. Empty for
	// normal (fresh or fresh-cached) results.
	Degraded string
	// Age is how old the rows were when served, for degraded results.
	Age time.Duration
}

// Straggler and breaker markers used in SourceStatus.Err.
const (
	// ErrTimedOut marks a source or site abandoned at a deadline.
	ErrTimedOut = "timed out"
	// ErrCircuitOpen marks a harvest skipped by an open circuit breaker.
	ErrCircuitOpen = "circuit open"
)

// Degradation tiers reported in SourceStatus.Degraded.
const (
	// DegradedStaleCache marks rows from an expired-but-within-grace
	// query-cache entry.
	DegradedStaleCache = "stale-cache"
	// DegradedHistory marks rows from the latest historical-store sample.
	DegradedHistory = "history"
)

// Response is the consolidated result of a query.
type Response struct {
	// Site is the gateway that answered.
	Site string
	// SQL is the canonicalised query text.
	SQL string
	// Mode echoes the execution mode.
	Mode Mode
	// ResultSet is the consolidated, filtered result.
	ResultSet *resultset.ResultSet
	// Sources reports per-source outcomes (empty for historical
	// queries).
	Sources []SourceStatus
	// Elapsed is the gateway-side processing time.
	Elapsed time.Duration
	// TraceID identifies the query's trace when it was sampled; fetch the
	// span tree from the tracer (or GET /traces/<id>).
	TraceID string
	// Trace carries the finished spans this gateway recorded when it
	// served a propagated remote trace, so the calling gateway can stitch
	// them under its own span tree. Empty for locally rooted queries —
	// those are read from the trace store instead.
	Trace []trace.SpanData
}

// AllSites is the Request.Site wildcard for virtual-organisation-wide
// queries.
const AllSites = "*"

// PermissionError reports a security denial.
type PermissionError struct {
	// Principal is the denied client.
	Principal string
	// What describes the denied action.
	What string
}

// Error implements the error interface.
func (e *PermissionError) Error() string {
	return fmt.Sprintf("core: permission denied for %q: %s", e.Principal, e.What)
}

// harvestSQL is the canonical per-source query the gateway executes: the
// full GLUE group. Client WHERE/ORDER/LIMIT/projection are applied over the
// consolidated rows, so every client query on a group shares one cache
// entry and one history record per source.
func harvestSQL(group string) string { return "SELECT * FROM " + group }

// QueryContext executes a query — the RequestManager path of Fig 3: SQL
// comes in, a consolidated ResultSet comes out. The request is bounded by
// ctx; when opts.Timeout is set it is applied on top, and when neither
// carries a deadline the gateway's QueryTimeout (if enabled) is. On expiry,
// live queries return partial results: rows from the sources that answered
// in time, with the stragglers marked ErrTimedOut in their SourceStatus.
//
// When the query is sampled for tracing (opts.Trace, the gateway's sample
// rate, or a propagated remote trace context), the whole pipeline — parse,
// cache lookup, harvest, pool checkout, driver execute, consolidation,
// remote fan-out — is recorded as a span tree and the Response carries its
// TraceID. Queries slower than the tracer's threshold additionally land in
// the slow-query log, sampled or not.
func (g *Gateway) QueryContext(ctx context.Context, opts QueryOptions) (*Response, error) {
	if err := g.beginQuery(); err != nil {
		g.queryErrors.Add(1)
		return nil, err
	}
	defer g.endQuery()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	} else if _, hasDeadline := ctx.Deadline(); !hasDeadline && g.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.queryTimeout)
		defer cancel()
	}
	ctx, span := g.startQuerySpan(ctx, opts)
	start := g.clock()
	resp, err := g.query(ctx, opts, start)
	elapsed := g.clock().Sub(start)
	span.SetError(err)
	span.End()
	if !isSubQuery(ctx) {
		slow := trace.SlowQuery{
			Time:    start,
			Site:    g.name,
			SQL:     opts.SQL,
			Mode:    opts.Mode.String(),
			Elapsed: elapsed,
			TraceID: span.TraceID(),
		}
		if err != nil {
			slow.Err = err.Error()
		}
		g.tracer.ObserveQuery(slow)
	}
	if err != nil {
		g.queryErrors.Add(1)
		return nil, err
	}
	resp.Elapsed = elapsed
	if span.IsRoot() {
		resp.TraceID = span.TraceID()
		if span.ParentID() != "" {
			// This gateway served a leg of a remote gateway's trace: ship
			// the finished spans back so the caller can stitch them under
			// its own tree.
			resp.Trace = span.Collected()
		}
	}
	return resp, nil
}

// startQuerySpan begins this query's span: a child "query" span when the
// context already carries one (the local leg of an all-sites fan-out), the
// trace root otherwise — continuing a propagated remote trace when the
// context carries one.
func (g *Gateway) startQuerySpan(ctx context.Context, opts QueryOptions) (context.Context, *trace.Span) {
	var span *trace.Span
	if trace.SpanFromContext(ctx) != nil {
		ctx, span = trace.StartSpan(ctx, "query")
	} else {
		ctx, span = g.tracer.StartTrace(ctx, "query", g.name, opts.Trace)
	}
	if span != nil {
		span.SetAttr("sql", opts.SQL)
		span.SetAttr("mode", opts.Mode.String())
		if opts.Site != "" {
			span.SetAttr("target", opts.Site)
		}
	}
	return ctx, span
}

// subQueryKey marks the contexts of an all-sites fan-out's local legs, so
// only the consolidated parent query lands in the slow-query log.
type subQueryKey struct{}

func markSubQuery(ctx context.Context) context.Context {
	return context.WithValue(ctx, subQueryKey{}, true)
}

func isSubQuery(ctx context.Context) bool {
	marked, _ := ctx.Value(subQueryKey{}).(bool)
	return marked
}

func (g *Gateway) query(ctx context.Context, req QueryOptions, start time.Time) (*Response, error) {
	g.queries.Add(1)

	if req.Site == AllSites {
		return g.queryAllSites(ctx, req, start)
	}

	// Remote site: coarse check, then route through the Global layer.
	if req.Site != "" && req.Site != g.name {
		if g.coarse.Check(req.Principal, security.OpGlobalQuery) != security.Allow {
			g.denied.Add(1)
			return nil, &PermissionError{Principal: req.Principal.Name, What: "global query"}
		}
		g.mu.RLock()
		router := g.router
		g.mu.RUnlock()
		if router == nil {
			return nil, fmt.Errorf("core: no global layer configured for remote site %q", req.Site)
		}
		g.routed.Add(1)
		if cr, ok := router.(ContextRouter); ok {
			return cr.RemoteQueryContext(ctx, req.Site, req)
		}
		return router.RemoteQuery(req.Site, req)
	}

	op := security.OpQueryRealTime
	if req.Mode == ModeHistorical {
		op = security.OpQueryHistory
	}
	if g.coarse.Check(req.Principal, op) != security.Allow {
		g.denied.Add(1)
		return nil, &PermissionError{Principal: req.Principal.Name, What: string(op)}
	}

	parseStart := g.clock()
	_, psp := trace.StartSpan(ctx, "parse")
	q, err := g.plans.Parse(req.SQL)
	psp.SetError(err)
	psp.End()
	g.observeStage(StageParse, parseStart)
	if err != nil {
		return nil, err
	}
	group, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("core: unknown GLUE group %q", q.Table)
	}

	if req.Mode == ModeHistorical {
		return g.queryHistorical(ctx, req, q, group)
	}
	return g.queryLive(ctx, req, q, group)
}

func (g *Gateway) queryHistorical(ctx context.Context, req QueryOptions, q *sqlparse.Query, group *glue.Group) (*Response, error) {
	source := ""
	if len(req.Sources) == 1 {
		source = req.Sources[0]
	} else if len(req.Sources) > 1 {
		return nil, fmt.Errorf("core: historical queries accept at most one source filter")
	}
	if source != "" {
		if g.fine.Check(req.Principal, source, group.Name) != security.Allow {
			g.denied.Add(1)
			return nil, &PermissionError{Principal: req.Principal.Name, What: "history of " + source}
		}
	}
	_, hsp := trace.StartSpan(ctx, "history-query")
	rs, err := g.history.Query(group.Name, source, req.Since, req.Until)
	hsp.SetError(err)
	hsp.End()
	if err != nil {
		return nil, err
	}
	out, err := sqlparse.ApplyToResultSet(q, rs)
	if err != nil {
		return nil, err
	}
	return &Response{Site: g.name, SQL: q.String(), Mode: req.Mode, ResultSet: out}, nil
}

func (g *Gateway) queryLive(ctx context.Context, req QueryOptions, q *sqlparse.Query, group *glue.Group) (*Response, error) {
	targets, err := g.targetSources(req, group)
	if err != nil {
		return nil, err
	}

	// Fan out one goroutine per source; results come back over a buffered
	// channel so a straggler that finishes after the deadline writes into
	// the channel's buffer, never into shared state we are reading.
	type sourceResult struct {
		i      int
		status SourceStatus
		rs     *resultset.ResultSet
	}
	ch := make(chan sourceResult, len(targets))
	for i, url := range targets {
		go func(i int, url string) {
			st, rs := g.querySource(ctx, req, url, group)
			ch <- sourceResult{i: i, status: st, rs: rs}
		}(i, url)
	}

	statuses := make([]SourceStatus, len(targets))
	results := make([]*resultset.ResultSet, len(targets))
	answered := make([]bool, len(targets))
	remaining := len(targets)
collect:
	for remaining > 0 {
		select {
		case r := <-ch:
			statuses[r.i], results[r.i] = r.status, r.rs
			answered[r.i] = true
			remaining--
		case <-ctx.Done():
			// Deadline: return what we have; stragglers are marked timed
			// out. Their goroutines unwind promptly (their harvest context
			// is a child of ctx) and land in the channel buffer.
			for i := range targets {
				if !answered[i] {
					g.timeouts.Add(1)
					statuses[i] = SourceStatus{Source: targets[i], Err: ErrTimedOut}
				}
			}
			break collect
		}
	}

	consolidateStart := g.clock()
	_, csp := trace.StartSpan(ctx, "consolidate")
	meta, err := resultset.MetadataForGroup(group, nil)
	if err != nil {
		csp.SetError(err)
		csp.End()
		return nil, err
	}
	merged := resultset.New(meta)
	for i, rs := range results {
		if rs == nil {
			continue
		}
		if err := merged.Merge(rs); err != nil {
			// A driver produced a non-canonical shape; report it against
			// the source rather than failing the whole consolidation.
			statuses[i].Err = err.Error()
		}
	}
	out, err := sqlparse.ApplyToResultSet(q, merged)
	csp.SetError(err)
	csp.End()
	g.observeStage(StageConsolidate, consolidateStart)
	if err != nil {
		return nil, err
	}
	return &Response{
		Site:      g.name,
		SQL:       q.String(),
		Mode:      req.Mode,
		ResultSet: out,
		Sources:   statuses,
	}, nil
}

// targetSources resolves which registered sources a query should touch.
func (g *Gateway) targetSources(req QueryOptions, group *glue.Group) ([]string, error) {
	if len(req.Sources) > 0 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		for _, url := range req.Sources {
			if _, ok := g.sources[url]; !ok {
				return nil, fmt.Errorf("core: source %s not registered", url)
			}
		}
		return append([]string(nil), req.Sources...), nil
	}
	g.mu.RLock()
	urls := make([]string, 0, len(g.sources))
	for url := range g.sources {
		urls = append(urls, url)
	}
	g.mu.RUnlock()
	sort.Strings(urls)
	var targets []string
	for _, url := range urls {
		if g.supportsGroup(url, group.Name) {
			targets = append(targets, url)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: no registered source supports group %s", group.Name)
	}
	return targets, nil
}

// supportsGroup reports whether some driver usable for url maps the group.
// The last-good driver and static preferences are consulted first; failing
// that, any registered driver accepting the URL counts.
func (g *Gateway) supportsGroup(url, group string) bool {
	check := func(driverName string) bool {
		ds, _, ok := g.schemas.Lookup(driverName)
		if !ok {
			return false
		}
		_, has := ds.Groups[group]
		return has
	}
	if name, ok := g.drivers.CachedDriver(url); ok {
		return check(name)
	}
	if prefs := g.drivers.Preferences(url); len(prefs) > 0 {
		for _, name := range prefs {
			if check(name) {
				return true
			}
		}
		return false
	}
	for _, name := range g.drivers.Drivers() {
		d, ok := g.drivers.Driver(name)
		if !ok || !d.AcceptsURL(url) {
			continue
		}
		if check(name) {
			return true
		}
	}
	return false
}

// querySource obtains one source's full-group rows, from cache or by
// harvest, honouring the FGSL, the circuit breaker and the per-source
// harvest timeout.
func (g *Gateway) querySource(ctx context.Context, req QueryOptions, url string, group *glue.Group) (SourceStatus, *resultset.ResultSet) {
	status := SourceStatus{Source: url}
	ctx, ssp := trace.StartSpan(ctx, "source")
	if ssp != nil {
		ssp.SetAttr("url", url)
		defer func() {
			if status.Err != "" {
				ssp.SetError(errors.New(status.Err))
			}
			if status.Cached {
				ssp.SetAttr("cached", "true")
			}
			if status.Degraded != "" {
				ssp.SetAttr("degraded", status.Degraded)
			}
			ssp.End()
		}()
	}
	switch g.fine.Check(req.Principal, url, group.Name) {
	case security.Allow:
	case security.Defer:
		// This gateway owns the resource, so there is nobody further to
		// defer to; refuse, naming the rule outcome.
		g.denied.Add(1)
		status.Err = "permission deferred but source is local: denied"
		return status, nil
	default:
		g.denied.Add(1)
		status.Err = "permission denied"
		return status, nil
	}

	hsql := harvestSQL(group.Name)
	if req.Mode == ModeCached {
		lookupStart := g.clock()
		_, lsp := trace.StartSpan(ctx, "cache-lookup")
		rs, at, ok := g.cache.Get(url, hsql)
		if ok {
			lsp.SetAttr("hit", "true")
		}
		lsp.End()
		g.observeStage(StageCache, lookupStart)
		if ok {
			g.cacheServed.Add(1)
			status.Cached = true
			status.HarvestedAt = at
			status.Rows = rs.Len()
			if info, ok := g.Source(url); ok {
				status.Driver = info.LastDriver
			}
			return status, rs
		}
	}

	if br := g.breaker(url); br != nil && !br.Allow(g.clock()) {
		g.breakerSkipped.Add(1)
		status.Err = ErrCircuitOpen
		return status, g.degradedResult(req.Mode, url, hsql, group, &status)
	}

	hctx, hsp := trace.StartSpan(ctx, "harvest")
	res, shared := g.sharedHarvest(hctx, url, group, hsql)
	if shared {
		g.coalesced.Add(1)
		hsp.SetAttr("coalesced", "true")
	}
	hsp.SetError(res.err)
	hsp.End()
	if res.err != nil {
		if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
			status.Err = ErrTimedOut
		} else {
			status.Err = res.err.Error()
		}
		return status, g.degradedResult(req.Mode, url, hsql, group, &status)
	}
	status.Driver = res.driverName
	status.HarvestedAt = res.at
	status.Rows = res.rs.Len()
	return status, res.rs
}

// degradedResult is the tail of the degradation ladder (fresh cache →
// coalesced/fresh harvest → stale cache → history → unavailable): after a
// harvest failed, timed out or was breaker-skipped, it tries an
// expired-but-within-grace query-cache entry, then the latest
// historical-store sample. Only cached-mode queries degrade — an explicit
// real-time poll promised fresh rows and must fail honestly, and
// historical queries never reach here. status keeps the underlying failure
// in Err while Degraded and Age annotate where the rows came from and how
// old they are. Returns nil when every tier is dry ("unavailable").
func (g *Gateway) degradedResult(mode Mode, url, hsql string, group *glue.Group, status *SourceStatus) *resultset.ResultSet {
	if mode != ModeCached {
		return nil
	}
	fill := func(tier string, at time.Time, rows int) {
		status.Degraded = tier
		status.HarvestedAt = at
		status.Age = g.clock().Sub(at)
		status.Rows = rows
		if info, ok := g.Source(url); ok && status.Driver == "" {
			status.Driver = info.LastDriver
		}
	}
	if rs, at, ok := g.cache.GetStale(url, hsql); ok {
		g.staleServes.Add(1)
		fill(DegradedStaleCache, at, rs.Len())
		return rs
	}
	if rs, at, ok := g.history.Latest(url, group.Name); ok {
		g.historyFallbacks.Add(1)
		fill(DegradedHistory, at, rs.Len())
		return rs
	}
	return nil
}

// sharedHarvest obtains one source's full-group rows by harvest. Unless
// coalescing is disabled, concurrent harvests for the same (source URL,
// canonical harvest SQL) share one driver call through the single-flight
// group; followers get a clone of the leader's rows and report shared=true.
func (g *Gateway) sharedHarvest(ctx context.Context, url string, group *glue.Group, hsql string) (flightResult, bool) {
	if !g.coalesce {
		return g.harvestLeader(ctx, url, group, hsql), false
	}
	return g.flights.do(ctx, url+"\x00"+hsql, func() flightResult {
		return g.harvestLeader(ctx, url, group, hsql)
	})
}

// harvestLeader performs a real driver harvest with all its bookkeeping:
// concurrency slot, retries, stats, breaker and health notes, cache fill,
// history record and watched-metric events. All bookkeeping lives here, on
// the leader, so followers of a coalesced harvest never double count — and
// the cache is filled before the flight completes, so a caller arriving
// after the flight sees the cached rows rather than starting a new harvest.
func (g *Gateway) harvestLeader(ctx context.Context, url string, group *glue.Group, hsql string) flightResult {
	if err := g.acquireHarvestSlot(ctx); err != nil {
		return flightResult{err: err}
	}
	defer g.releaseHarvestSlot()
	g.inflightHarvests.Add(1)
	defer g.inflightHarvests.Add(-1)
	start := g.clock()
	rs, driverName, err := g.harvestWithRetry(ctx, url, hsql)
	g.observeStage(StageHarvest, start)
	now := g.clock()
	if err != nil {
		g.harvestErrors.Add(1)
		g.noteFailure(url, err, now)
		// The request-level deadline is counted by queryLive's straggler
		// sweep; only count per-source harvest timeouts here.
		if (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) && ctx.Err() == nil {
			g.timeouts.Add(1)
		}
		return flightResult{driverName: driverName, at: now, err: err}
	}
	g.harvests.Add(1)
	g.noteSuccess(url, driverName, now)
	g.cache.Put(url, hsql, rs)
	if g.recordHistory {
		if g.durable != nil {
			// Journal-through: the sample lands in memory and the WAL
			// before the harvest returns; a WAL fault degrades the store
			// to memory-only without failing the harvest.
			_ = g.durable.Record(url, group.Name, rs, now)
		} else {
			_ = g.history.Record(url, group.Name, rs, now)
		}
	}
	g.publishHarvestMetrics(url, group, rs)
	g.publishRows(ctx, url, group, rs)
	return flightResult{rs: rs, driverName: driverName, at: now}
}

// harvestWithRetry runs harvest attempts under the gateway's retry policy.
// Each attempt gets a fresh HarvestTimeout budget; backoff waits and
// further attempts stop as soon as the request context expires.
func (g *Gateway) harvestWithRetry(ctx context.Context, url, hsql string) (*resultset.ResultSet, string, error) {
	backoff := g.retry.Backoff
	var rs *resultset.ResultSet
	var driverName string
	var err error
	for attempt := 0; ; attempt++ {
		rs, driverName, err = g.harvest(ctx, url, hsql)
		if err == nil || attempt >= g.retry.Attempts || ctx.Err() != nil {
			return rs, driverName, err
		}
		g.retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, driverName, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > g.retry.MaxBackoff {
			backoff = g.retry.MaxBackoff
		}
	}
}

// harvest runs the canonical full-group query against one source through
// the ConnectionManager (Fig 3's real-time path), bounded by the
// per-source HarvestTimeout on top of the request context. After a
// timeout the connection is discarded, never released: a non-context
// driver may still be using it in the shim goroutine.
func (g *Gateway) harvest(ctx context.Context, url, hsql string) (*resultset.ResultSet, string, error) {
	g.mu.RLock()
	src, ok := g.sources[url]
	var props driver.Properties
	if ok {
		props = src.Props
	}
	g.mu.RUnlock()
	if !ok {
		return nil, "", fmt.Errorf("core: source %s not registered", url)
	}
	if g.harvestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.harvestTimeout)
		defer cancel()
	}
	conn, err := g.pool.GetContext(ctx, url, props)
	if err != nil {
		return nil, "", err
	}
	driverName := conn.Driver()
	_, dsp := trace.StartSpan(ctx, "driver-execute")
	dsp.SetAttr("driver", driverName)
	stmt, err := driver.SafeCreateStatement(conn)
	if err != nil {
		dsp.SetError(err)
		dsp.End()
		conn.Discard()
		return nil, driverName, err
	}
	rs, err := driver.QueryContext(ctx, stmt, hsql)
	_ = driver.SafeClose(stmt)
	dsp.SetError(err)
	dsp.End()
	if err != nil {
		conn.Discard()
		return nil, driverName, err
	}
	conn.Release()
	rs.Source = url
	return rs, driverName, nil
}

// PollContext forces a real-time refresh of one source for one GLUE group
// and returns its rows — the explicit poll behind Fig 9's refresh icon. It
// is a shim over QueryContext.
func (g *Gateway) PollContext(ctx context.Context, principal security.Principal, url, group string) (*Response, error) {
	return g.QueryContext(ctx, QueryOptions{
		Principal: principal,
		SQL:       harvestSQL(group),
		Sources:   []string{url},
		Mode:      ModeRealTime,
	})
}
