// Package core implements the GridRM Gateway's local layer (paper §3): the
// RequestManager that coordinates SQL queries across data sources and
// consolidates results, wired to the ConnectionManager (internal/pool), the
// GridRMDriverManager (internal/driver), the SchemaManager
// (internal/schema), the query cache (internal/qcache), the historical
// store (internal/history), the Event Manager (internal/event) and the two
// security layers (internal/security).
//
// A Gateway provides an access point to the resource data within its local
// control; requests for remote resource data are routed to the Global layer
// through a GlobalRouter (implemented by internal/gma), reproducing Fig 1.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/event"
	"gridrm/internal/health"
	"gridrm/internal/history"
	"gridrm/internal/metrics"
	"gridrm/internal/pool"
	"gridrm/internal/qcache"
	"gridrm/internal/router"
	"gridrm/internal/schema"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
	"gridrm/internal/trace"
	"gridrm/internal/tsdb"
)

// Config configures a Gateway.
type Config struct {
	// Name is the gateway's site name ("Site A" in Fig 1).
	Name string
	// Pool configures the ConnectionManager.
	Pool pool.Options
	// Cache configures the query cache.
	Cache qcache.Options
	// History configures the historical store.
	History history.Options
	// Durable configures crash-safe persistence for the historical store.
	// With Durable.Dir empty (the default) history stays purely in-memory,
	// byte-identical to the pre-durability behaviour. With a directory set,
	// every recorded harvest is journaled to a WAL, checkpointed
	// periodically, and restored on the next start — so the degradation
	// ladder's history tier survives gateway restarts.
	Durable tsdb.Options
	// HistoryPruneInterval is the period of the background history
	// retention sweep (default 1m; negative disables the loop, retention
	// then only runs on the write path).
	HistoryPruneInterval time.Duration
	// Events configures the Event Manager.
	Events event.Options
	// RecordHistory stores every real-time harvest in the historical
	// store (default true; set DisableHistory to turn off).
	DisableHistory bool
	// Coarse is the CGSL policy (open by default).
	Coarse *security.CoarsePolicy
	// Fine is the FGSL policy (open by default).
	Fine *security.FinePolicy
	// HarvestTimeout bounds each per-source harvest attempt — connect,
	// statement and query together (default 10s; negative disables).
	HarvestTimeout time.Duration
	// QueryTimeout is the deadline applied to a whole request when the
	// caller's context carries none (default 30s; negative disables).
	// When it expires, live queries return partial results with the
	// stragglers marked "timed out" in SourceStatus.
	QueryTimeout time.Duration
	// Retry configures per-source harvest retries with backoff.
	Retry RetryOptions
	// Breaker configures the per-source circuit breaker.
	Breaker BreakerOptions
	// MaxConcurrentHarvests bounds how many driver harvests may run at
	// once across all requests — queryLive and all-sites fan-out legs
	// alike (default 0: unbounded, today's behaviour). Queries waiting
	// for a slot still honour their own deadline.
	MaxConcurrentHarvests int
	// DisableCoalescing turns off single-flight harvest coalescing, so
	// every cache-missing query dials the driver itself. For benchmarks
	// and ablations; coalescing is on by default.
	DisableCoalescing bool
	// StaleGrace is how long past its TTL an expired query-cache entry
	// remains servable as a degraded result when a harvest fails, times
	// out or is breaker-skipped (default 2m; negative disables the
	// stale-cache degradation tier). It also sets Cache.StaleGrace unless
	// that is set explicitly.
	StaleGrace time.Duration
	// Probe configures the background source health prober. With
	// Probe.Interval zero (the default) no background loop runs — tests
	// and operators can still sweep via Prober().ProbeAll.
	Probe health.Options
	// Trace configures the distributed tracer and slow-query log (trace
	// store capacity, sample rate, slow threshold). Trace.Clock defaults
	// to the gateway clock.
	Trace trace.Options
	// PlanCacheSize bounds the LRU cache of parsed query plans (default
	// 512 entries; negative disables the cache).
	PlanCacheSize int
	// Push configures the metric router behind continuous queries
	// (Subscribe): per-subscriber queue bound, replay ring size for
	// Last-Event-ID resume, and the slow-consumer eviction stall.
	Push router.Options
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

// RetryOptions configures per-source harvest retries. Retries only happen
// while the request deadline allows; each attempt gets a fresh
// HarvestTimeout budget.
type RetryOptions struct {
	// Attempts is how many additional harvest attempts a failed source
	// gets (default 0: fail fast, matching the seed behaviour).
	Attempts int
	// Backoff is the wait before the first retry, doubled per attempt
	// (default 50ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
}

func (o RetryOptions) fill() RetryOptions {
	if o.Attempts < 0 {
		o.Attempts = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	return o
}

const (
	defaultHarvestTimeout       = 10 * time.Second
	defaultQueryTimeout         = 30 * time.Second
	defaultStaleGrace           = 2 * time.Minute
	defaultPlanCacheSize        = 512
	defaultHistoryPruneInterval = time.Minute
)

// ErrGatewayClosed is returned for queries issued after Shutdown or Close.
var ErrGatewayClosed = errors.New("core: gateway is shut down")

// SourceConfig registers one data source with the gateway.
type SourceConfig struct {
	// URL is the GridRM data-source URL.
	URL string
	// Props are passed to the driver on connect (community strings,
	// timeouts, cache TTLs ...).
	Props driver.Properties
	// Drivers optionally lists driver names to use in prioritised order
	// (paper Fig 8); empty means dynamic selection.
	Drivers []string
	// Description is free text for the management view.
	Description string
}

// SourceInfo describes a registered data source and its health, backing
// the management tree view (paper Fig 9: poll-failure and alert icons).
type SourceInfo struct {
	SourceConfig
	// LastDriver is the driver that last served the source.
	LastDriver string
	// LastSuccess is when a harvest last succeeded.
	LastSuccess time.Time
	// LastError is the most recent harvest failure ("" when healthy).
	LastError string
	// LastErrorAt is when LastError happened.
	LastErrorAt time.Time
	// Breaker is the source's circuit-breaker state: "closed", "open" or
	// "half-open" (populated on read for the management view).
	Breaker string
	// Health is the prober's classification ("healthy", "degraded",
	// "down"), empty until the source has been probed.
	Health string
	// LastProbe is when the health prober last actually probed the source.
	LastProbe time.Time
	// ProbeFailures counts consecutive probe failures.
	ProbeFailures int
}

// DriverInfo describes a registered driver for the management view.
type DriverInfo struct {
	// Name is the driver's registration name.
	Name string
	// Version is the driver's self-reported version, if any.
	Version string
	// Groups lists the GLUE groups the driver's schema maps.
	Groups []string
}

// Stats counts gateway activity.
type Stats struct {
	// Queries counts Query calls accepted.
	Queries int64
	// QueryErrors counts Query calls that failed outright.
	QueryErrors int64
	// Harvests counts per-source real-time harvests performed.
	Harvests int64
	// HarvestErrors counts harvests that failed.
	HarvestErrors int64
	// CacheServed counts per-source results served from the query cache.
	CacheServed int64
	// Coalesced counts cache-missing queries that shared another query's
	// in-flight harvest instead of dialing the driver themselves.
	Coalesced int64
	// Routed counts queries forwarded to remote gateways.
	Routed int64
	// Denied counts security denials (coarse or fine).
	Denied int64
	// Timeouts counts harvests and fan-out legs abandoned at a deadline.
	Timeouts int64
	// Retries counts harvest retry attempts performed.
	Retries int64
	// BreakerSkipped counts harvests skipped because a breaker was open.
	BreakerSkipped int64
	// BreakerOpens counts closed-to-open breaker transitions.
	BreakerOpens int64
	// StaleServes counts degraded results served from an
	// expired-but-within-grace query-cache entry.
	StaleServes int64
	// HistoryFallbacks counts degraded results served from the latest
	// historical-store sample.
	HistoryFallbacks int64
	// DriverPanics counts driver panics contained at a call boundary and
	// converted into errors.
	DriverPanics int64
	// PlanCacheHits counts query parses served from the plan cache.
	PlanCacheHits int64
	// PlanCacheMisses counts query parses that had to run the parser.
	PlanCacheMisses int64
	// RowsPublished counts harvested rows fanned into the push router.
	RowsPublished int64
	// RowsDropped counts rows dropped from subscriber queues (bounded-
	// queue overflow or eviction) — the push pipeline's accounted loss.
	RowsDropped int64
	// SubscriberEvictions counts subscribers evicted for stalling past
	// the router's stall threshold.
	SubscriberEvictions int64
	// SinkDelivered counts rows delivered to registered sinks.
	SinkDelivered int64
	// SinkDropped counts rows dropped at sink queues, open breakers, or
	// exhausted retries.
	SinkDropped int64
	// SinkBreakerOpens counts per-sink breaker closed-to-open
	// transitions.
	SinkBreakerOpens int64
	// EventsDropped counts Event Manager drops (bounded fast buffer plus
	// per-listener queue overflow).
	EventsDropped int64
	// Fanouts counts all-sites fan-out queries executed.
	Fanouts int64
	// FanoutLegs counts the remote legs those fan-outs dispatched (region
	// legs count once, however many sites they cover) — FanoutLegs/Fanouts
	// is the entry gateway's fan-out degree, which republishers keep at
	// the republisher count rather than the site count.
	FanoutLegs int64
}

// GlobalRouter forwards queries for remote sites; internal/gma provides the
// GMA-based implementation.
type GlobalRouter interface {
	// RemoteQuery executes req at the gateway owning site and returns
	// its response.
	RemoteQuery(site string, req QueryOptions) (*Response, error)
	// Sites lists the remote sites the router can reach.
	Sites() []string
}

// ContextRouter is optionally implemented by GlobalRouters that honour
// context deadlines and cancellation; the gateway prefers it over
// RemoteQuery when present, so all-sites fan-outs can abandon a hung site
// at the request deadline.
type ContextRouter interface {
	// RemoteQueryContext behaves like GlobalRouter.RemoteQuery bounded by
	// ctx.
	RemoteQueryContext(ctx context.Context, site string, req QueryOptions) (*Response, error)
}

// Gateway is a GridRM gateway's local layer.
type Gateway struct {
	name    string
	clock   func() time.Time
	drivers *driver.Manager
	schemas *schema.Manager
	pool    *pool.Manager
	cache   *qcache.Cache
	history *history.Store
	durable *tsdb.Store // nil when Durable.Dir is unset
	events  *event.Manager
	coarse  *security.CoarsePolicy
	fine    *security.FinePolicy

	recordHistory  bool
	harvestTimeout time.Duration
	queryTimeout   time.Duration
	retry          RetryOptions
	breakerOpts    BreakerOptions

	coalesce   bool
	flights    *flightGroup
	harvestSem chan struct{} // nil = unbounded

	registry  *metrics.Registry
	stageHist *metrics.HistogramVec
	prober    *health.Prober
	tracer    *trace.Tracer
	plans     *sqlparse.PlanCache
	push      *router.Router // continuous-query fan-out (distinct from the federation router)

	pruneStop chan struct{} // nil when the prune loop is disabled
	pruneDone chan struct{}

	mu       sync.RWMutex
	sources  map[string]*SourceInfo
	breakers map[string]*breaker
	watches  map[string][]metricWatch
	router   GlobalRouter
	closed   bool
	inflight sync.WaitGroup // queries in flight; Add only under mu while !closed

	queries, queryErrors, harvests     atomic.Int64
	harvestErrors, cacheServed, routed atomic.Int64
	denied                             atomic.Int64
	timeouts, retries                  atomic.Int64
	breakerSkipped, breakerOpens       atomic.Int64
	coalesced, inflightHarvests        atomic.Int64
	staleServes, historyFallbacks      atomic.Int64
	driverPanics, historyPrunes        atomic.Int64
	fanouts, fanoutLegs                atomic.Int64
}

// New creates a Gateway.
func New(cfg Config) *Gateway {
	if cfg.Name == "" {
		cfg.Name = "gateway"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Coarse == nil {
		cfg.Coarse = security.OpenCoarsePolicy()
	}
	if cfg.Fine == nil {
		cfg.Fine = security.OpenFinePolicy()
	}
	if cfg.Cache.Clock == nil {
		cfg.Cache.Clock = cfg.Clock
	}
	if cfg.History.Clock == nil {
		cfg.History.Clock = cfg.Clock
	}
	if cfg.Pool.Clock == nil {
		cfg.Pool.Clock = cfg.Clock
	}
	if cfg.HarvestTimeout == 0 {
		cfg.HarvestTimeout = defaultHarvestTimeout
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = defaultQueryTimeout
	}
	if cfg.StaleGrace == 0 {
		cfg.StaleGrace = defaultStaleGrace
	}
	if cfg.StaleGrace < 0 {
		cfg.StaleGrace = 0
	}
	if cfg.Cache.StaleGrace == 0 {
		cfg.Cache.StaleGrace = cfg.StaleGrace
	}
	if cfg.Probe.Clock == nil {
		cfg.Probe.Clock = cfg.Clock
	}
	if cfg.Trace.Clock == nil {
		cfg.Trace.Clock = cfg.Clock
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = defaultPlanCacheSize
	}
	if cfg.Push.Clock == nil {
		cfg.Push.Clock = cfg.Clock
	}
	reg := metrics.NewRegistry()
	if cfg.Pool.DialObserver == nil {
		dialHist := reg.Histogram("gridrm_pool_dial_seconds",
			"Latency of driver connection dials performed by the pool.", nil)
		cfg.Pool.DialObserver = dialHist.Observe
	}
	dm := driver.NewManager()
	g := &Gateway{
		name:           cfg.Name,
		clock:          cfg.Clock,
		drivers:        dm,
		schemas:        schema.NewManager(),
		pool:           pool.New(dm, cfg.Pool),
		cache:          qcache.New(cfg.Cache),
		history:        history.New(cfg.History),
		events:         event.NewManager(cfg.Events),
		coarse:         cfg.Coarse,
		fine:           cfg.Fine,
		recordHistory:  !cfg.DisableHistory,
		harvestTimeout: cfg.HarvestTimeout,
		queryTimeout:   cfg.QueryTimeout,
		retry:          cfg.Retry.fill(),
		breakerOpts:    cfg.Breaker.Fill(),
		coalesce:       !cfg.DisableCoalescing,
		flights:        newFlightGroup(),
		tracer:         trace.New(cfg.Trace),
		plans:          sqlparse.NewPlanCache(cfg.PlanCacheSize),
		push:           router.New(cfg.Push),
		registry:       reg,
		sources:        make(map[string]*SourceInfo),
		breakers:       make(map[string]*breaker),
	}
	if cfg.MaxConcurrentHarvests > 0 {
		g.harvestSem = make(chan struct{}, cfg.MaxConcurrentHarvests)
	}
	if cfg.Durable.Dir != "" {
		if cfg.Durable.Clock == nil {
			cfg.Durable.Clock = cfg.Clock
		}
		if cfg.Durable.Alert == nil {
			cfg.Durable.Alert = g.durabilityEvent(event.SeverityAlert)
		}
		if cfg.Durable.Status == nil {
			cfg.Durable.Status = g.durabilityEvent(event.SeverityStatus)
		}
		// Open restores checkpoint + WAL tail into g.history before New
		// returns, so the first degraded query already has pre-restart
		// samples to fall back on.
		g.durable = tsdb.Open(cfg.Durable, g.history)
	}
	g.prober = health.New(g, cfg.Probe, g.onHealthTransition)
	g.registerMetrics()
	g.prober.Start()
	if cfg.HistoryPruneInterval == 0 {
		cfg.HistoryPruneInterval = defaultHistoryPruneInterval
	}
	if cfg.HistoryPruneInterval > 0 {
		g.pruneStop = make(chan struct{})
		g.pruneDone = make(chan struct{})
		go g.pruneLoop(cfg.HistoryPruneInterval)
	}
	return g
}

// durabilityEvent adapts the tsdb alert/status callbacks to the Event
// Manager.
func (g *Gateway) durabilityEvent(severity string) func(kind, detail string) {
	return func(kind, detail string) {
		g.events.Publish(event.Event{
			Source:   "gateway:" + g.name,
			Name:     kind,
			Severity: severity,
			Time:     g.clock(),
			Detail:   detail,
		})
	}
}

// pruneLoop sweeps history retention so idle keys are released even when no
// writes arrive (satellite of the durable-history work: Prune used to run
// only on demand).
func (g *Gateway) pruneLoop(interval time.Duration) {
	defer close(g.pruneDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.pruneStop:
			return
		case <-ticker.C:
			g.historyPrunes.Add(int64(g.history.Prune()))
		}
	}
}

// Query-stage labels of the gridrm_query_stage_seconds histogram.
const (
	StageParse       = "parse"
	StageCache       = "cache"
	StageHarvest     = "harvest"
	StageConsolidate = "consolidate"
	StageFanout      = "fanout"
	StageDispatch    = "dispatch"
)

// registerMetrics wires the gateway's counters, the pool, the cache, the
// breaker and the event dispatcher into the metrics registry, and creates
// the per-stage query latency histogram.
func (g *Gateway) registerMetrics() {
	r := g.registry
	g.stageHist = r.HistogramVec("gridrm_query_stage_seconds",
		"Latency of query pipeline stages (parse, cache, harvest, consolidate, fanout, dispatch).",
		"stage", nil)
	r.CounterFunc("gridrm_queries_total", "Query calls accepted.", g.queries.Load)
	r.CounterFunc("gridrm_query_errors_total", "Query calls that failed outright.", g.queryErrors.Load)
	r.CounterFunc("gridrm_harvests_total", "Per-source real-time harvests performed.", g.harvests.Load)
	r.CounterFunc("gridrm_harvest_errors_total", "Harvests that failed.", g.harvestErrors.Load)
	r.CounterFunc("gridrm_cache_served_total", "Per-source results served from the query cache.", g.cacheServed.Load)
	r.CounterFunc("gridrm_coalesced_total", "Cache-missing queries that shared another query's in-flight harvest.", g.coalesced.Load)
	r.CounterFunc("gridrm_routed_total", "Queries forwarded to remote gateways.", g.routed.Load)
	r.CounterFunc("gridrm_denied_total", "Security denials (coarse or fine).", g.denied.Load)
	r.CounterFunc("gridrm_timeouts_total", "Harvests and fan-out legs abandoned at a deadline.", g.timeouts.Load)
	r.CounterFunc("gridrm_retries_total", "Harvest retry attempts performed.", g.retries.Load)
	r.CounterFunc("gridrm_breaker_opens_total", "Closed-to-open circuit breaker transitions.", g.breakerOpens.Load)
	r.CounterFunc("gridrm_breaker_skipped_total", "Harvests skipped because a breaker was open.", g.breakerSkipped.Load)
	r.CounterFunc("gridrm_stale_serves_total", "Degraded results served from an expired-within-grace cache entry.", g.staleServes.Load)
	r.CounterFunc("gridrm_history_fallbacks_total", "Degraded results served from the latest historical sample.", g.historyFallbacks.Load)
	r.CounterFunc("gridrm_degraded_serves_total", "Degraded results served (stale cache + history fallback).",
		func() int64 { return g.staleServes.Load() + g.historyFallbacks.Load() })
	r.CounterFunc("gridrm_driver_panics_total", "Driver panics contained at a call boundary.", g.driverPanics.Load)
	r.CounterFunc("gridrm_probes_total", "Health probes attempted.", func() int64 { return g.prober.Stats().Probes })
	r.CounterFunc("gridrm_probe_failures_total", "Health probes that failed.", func() int64 { return g.prober.Stats().Failures })
	r.GaugeFunc("gridrm_sources_healthy", "Sources the prober currently classifies healthy.", g.healthGauge(health.StateHealthy))
	r.GaugeFunc("gridrm_sources_degraded", "Sources the prober currently classifies degraded.", g.healthGauge(health.StateDegraded))
	r.GaugeFunc("gridrm_sources_down", "Sources the prober currently classifies down.", g.healthGauge(health.StateDown))
	r.GaugeFunc("gridrm_inflight_harvests", "Driver harvests currently executing.",
		func() float64 { return float64(g.inflightHarvests.Load()) })
	r.CounterFunc("gridrm_qcache_hits_total", "Query cache hits.", func() int64 { return g.cache.Stats().Hits })
	r.CounterFunc("gridrm_qcache_misses_total", "Query cache misses.", func() int64 { return g.cache.Stats().Misses })
	r.CounterFunc("gridrm_qcache_stale_total", "Query cache entries dropped as expired.", func() int64 { return g.cache.Stats().Stale })
	r.CounterFunc("gridrm_qcache_evictions_total", "Query cache capacity evictions.", func() int64 { return g.cache.Stats().Evictions })
	r.GaugeFunc("gridrm_qcache_entries", "Query cache entries held (fresh or not yet collected).",
		func() float64 { return float64(g.cache.Len()) })
	r.CounterFunc("gridrm_pool_dials_total", "Connections opened via the DriverManager.", func() int64 { return g.pool.Stats().Opens })
	r.CounterFunc("gridrm_pool_idle_hits_total", "Pool Gets satisfied from an idle connection.", func() int64 { return g.pool.Stats().Hits })
	r.CounterFunc("gridrm_pool_ping_failures_total", "Pooled connections discarded as stale.", func() int64 { return g.pool.Stats().PingFailures })
	r.GaugeFunc("gridrm_pool_idle_connections", "Idle pooled connections.",
		func() float64 { return float64(g.pool.IdleCount()) })
	r.GaugeFunc("gridrm_event_queue_depth", "Events waiting in the dispatcher's fast buffer.",
		func() float64 { return float64(g.events.QueueDepth()) })
	r.CounterFunc("gridrm_events_published_total", "Events accepted by the Event Manager.", func() int64 { return g.events.Stats().Published })
	r.CounterFunc("gridrm_events_dispatched_total", "Events fully processed by the dispatcher.", func() int64 { return g.events.Stats().Dispatched })
	r.CounterFunc("gridrm_event_alerts_total", "Threshold alerts synthesised.", func() int64 { return g.events.Stats().Alerts })
	r.CounterFunc("gridrm_events_dropped_total", "Events discarded by the Event Manager (bounded fast buffer + listener queues).",
		func() int64 { ev := g.events.Stats(); return ev.Dropped + ev.ListenerDropped })
	r.CounterFunc("gridrm_event_listener_dropped_total", "Deliveries discarded at full per-listener queues.",
		func() int64 { return g.events.Stats().ListenerDropped })
	r.CounterFunc("gridrm_rows_published_total", "Harvested rows fanned into the push router.",
		func() int64 { return g.push.Stats().Published })
	r.CounterFunc("gridrm_rows_enqueued_total", "Per-subscriber row enqueues by the push router.",
		func() int64 { return g.push.Stats().Enqueued })
	r.CounterFunc("gridrm_rows_dropped_total", "Rows dropped from subscriber queues (overflow or eviction).",
		func() int64 { return g.push.Stats().Dropped })
	r.CounterFunc("gridrm_subscriber_evictions_total", "Subscribers evicted for stalling.",
		func() int64 { return g.push.Stats().Evicted })
	r.GaugeFunc("gridrm_subscribers", "Continuous-query subscribers currently registered.",
		func() float64 { return float64(g.push.Stats().Subscribers) })
	r.CounterFunc("gridrm_sink_delivered_total", "Rows delivered to registered sinks.",
		func() int64 { return g.push.Stats().SinkDelivered })
	r.CounterFunc("gridrm_sink_dropped_total", "Rows dropped at sink queues, open breakers or exhausted retries.",
		func() int64 { return g.push.Stats().SinkDropped })
	r.CounterFunc("gridrm_sink_retries_total", "Sink delivery retries performed.",
		func() int64 { return g.push.Stats().SinkRetries })
	r.CounterFunc("gridrm_sink_errors_total", "Sink batches that exhausted their retries.",
		func() int64 { return g.push.Stats().SinkErrors })
	r.CounterFunc("gridrm_sink_breaker_opens_total", "Per-sink breaker closed-to-open transitions.",
		func() int64 { return g.push.Stats().SinkBreakerOpens })
	r.CounterFunc("gridrm_traces_started_total", "Sampled query traces begun.", func() int64 { return g.tracer.Stats().Started })
	r.CounterFunc("gridrm_traces_stored_total", "Query traces published to the trace store.", func() int64 { return g.tracer.Stats().Stored })
	r.CounterFunc("gridrm_traces_evicted_total", "Query traces evicted from the trace store.", func() int64 { return g.tracer.Stats().Evicted })
	r.CounterFunc("gridrm_slow_queries_total", "Queries recorded in the slow-query log.", func() int64 { return g.tracer.Stats().SlowQueries })
	r.CounterFunc("gridrm_trace_spans_dropped_total", "Spans discarded by the per-trace cap.", func() int64 { return g.tracer.Stats().DroppedSpans })
	r.CounterFunc("gridrm_plan_cache_hits_total", "Query parses served from the plan cache.",
		func() int64 { return int64(g.plans.Stats().Hits) })
	r.CounterFunc("gridrm_plan_cache_misses_total", "Query parses that ran the parser.",
		func() int64 { return int64(g.plans.Stats().Misses) })
	r.CounterFunc("gridrm_plan_cache_evictions_total", "Parsed plans evicted by the LRU cap.",
		func() int64 { return int64(g.plans.Stats().Evictions) })
	r.GaugeFunc("gridrm_plan_cache_entries", "Parsed plans currently cached.",
		func() float64 { return float64(g.plans.Stats().Entries) })
	r.GaugeFunc("gridrm_history_keys", "Distinct (source, group) keys holding history samples.",
		func() float64 { return float64(g.history.Keys()) })
	r.GaugeFunc("gridrm_history_samples", "History samples retained across all keys.",
		func() float64 { return float64(g.history.TotalSamples()) })
	r.CounterFunc("gridrm_history_pruned_total", "History samples dropped by the retention sweep.", g.historyPrunes.Load)
	if g.durable != nil {
		r.CounterFunc("gridrm_history_wal_appends_total", "History records journaled to the WAL.",
			func() int64 { return g.durable.Stats().WALAppends })
		r.CounterFunc("gridrm_history_fsyncs_total", "WAL fsync calls performed.",
			func() int64 { return g.durable.Stats().Fsyncs })
		r.CounterFunc("gridrm_history_replayed_records_total", "History records restored from checkpoint + WAL at startup.",
			func() int64 { return g.durable.Stats().ReplayedRecords })
		r.CounterFunc("gridrm_history_corrupt_records_total", "Corrupt WAL tails and checkpoints detected and recovered.",
			func() int64 { return g.durable.Stats().CorruptRecords })
		r.CounterFunc("gridrm_history_checkpoints_total", "History checkpoints written.",
			func() int64 { return g.durable.Stats().Checkpoints })
		r.GaugeFunc("gridrm_history_disk_bytes", "Bytes the history WAL and checkpoints occupy on disk.",
			func() float64 { return float64(g.durable.Stats().DiskBytes) })
		r.GaugeFunc("gridrm_history_durable", "1 while history persistence is attached, 0 in memory-only degradation.",
			func() float64 {
				if g.durable.Stats().State == "durable" {
					return 1
				}
				return 0
			})
	}
}

// Metrics returns the gateway's metrics registry (served by GET /metrics).
func (g *Gateway) Metrics() *metrics.Registry { return g.registry }

// Tracer returns the gateway's distributed tracer and slow-query log
// (served by GET /traces and the /status slow section).
func (g *Gateway) Tracer() *trace.Tracer { return g.tracer }

// QueryStageLatencies summarises the per-stage query latency histogram for
// status reports.
func (g *Gateway) QueryStageLatencies() []metrics.HistogramSnapshot {
	return g.stageHist.Snapshot()
}

// observeStage records one stage latency, using the gateway clock so tests
// with fake clocks stay deterministic.
func (g *Gateway) observeStage(stage string, start time.Time) {
	g.stageHist.With(stage).Observe(g.clock().Sub(start).Seconds())
}

// acquireHarvestSlot blocks until a harvest slot is free (when
// MaxConcurrentHarvests bounds them) or ctx expires.
func (g *Gateway) acquireHarvestSlot(ctx context.Context) error {
	if g.harvestSem == nil {
		return ctx.Err()
	}
	select {
	case g.harvestSem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gateway) releaseHarvestSlot() {
	if g.harvestSem != nil {
		<-g.harvestSem
	}
}

// Name returns the gateway's site name.
func (g *Gateway) Name() string { return g.name }

// healthGauge returns a metric reader counting sources in one probed state.
func (g *Gateway) healthGauge(s health.State) func() float64 {
	return func() float64 {
		n := 0
		for _, h := range g.prober.Snapshot() {
			if h.State == s {
				n++
			}
		}
		return float64(n)
	}
}

// beginQuery admits a query into the in-flight set, refusing once the
// gateway is shut down. The WaitGroup Add happens under the same lock that
// Shutdown uses to set closed, so Add never races Shutdown's Wait.
func (g *Gateway) beginQuery() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return ErrGatewayClosed
	}
	g.inflight.Add(1)
	return nil
}

func (g *Gateway) endQuery() { g.inflight.Done() }

// Shutdown stops the gateway in order: the health prober first, then new
// queries are refused and in-flight ones drained until ctx expires, then
// the Event Manager is flushed and the connection pool closed. It returns
// ctx.Err() when the drain was abandoned at the deadline — events and pool
// are still closed in that case. Safe to call more than once.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()

	g.prober.Stop()
	if g.pruneStop != nil {
		close(g.pruneStop)
		<-g.pruneDone
	}

	drained := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Drain the push router after the query drain (so final harvests still
	// reach subscribers) and before durable close: intake stops, queued
	// rows flush to sinks until ctx's deadline, then sinks close. A dead
	// sink cannot extend the shutdown past ctx.
	if perr := g.push.Close(ctx); err == nil {
		err = perr
	}

	// After the drain no more Records arrive; a final checkpoint makes the
	// full retained state durable before the process goes away.
	if g.durable != nil {
		_ = g.durable.Close()
	}

	g.events.Publish(event.Event{
		Source:   "gateway:" + g.name,
		Name:     "gateway-shutdown",
		Severity: event.SeverityStatus,
		Time:     g.clock(),
	})
	g.events.Close()
	g.pool.CloseAll()
	return err
}

// Close shuts the gateway down immediately: pooled connections are closed
// and the Event Manager drained, without waiting for in-flight queries. Use
// Shutdown for a graceful drain.
func (g *Gateway) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = g.Shutdown(ctx)
}

// RegisterDriver installs a data-source driver and its GLUE schema mapping.
// Drivers can be added at runtime without affecting normal operation.
func (g *Gateway) RegisterDriver(d driver.Driver, ds *schema.DriverSchema) error {
	if ds == nil || d == nil {
		return fmt.Errorf("core: driver and schema are both required")
	}
	if ds.Driver != d.Name() {
		return fmt.Errorf("core: schema names driver %q, driver is %q", ds.Driver, d.Name())
	}
	if err := g.schemas.Register(ds); err != nil {
		return err
	}
	if err := g.drivers.RegisterDriver(d); err != nil {
		g.schemas.Deregister(ds.Driver)
		return err
	}
	g.events.Publish(event.Event{
		Source:   "gateway:" + g.name,
		Name:     "driver-registered",
		Severity: event.SeverityStatus,
		Time:     g.clock(),
		Detail:   d.Name(),
	})
	return nil
}

// DeregisterDriver removes a driver and its schema at runtime.
func (g *Gateway) DeregisterDriver(name string) error {
	if err := g.drivers.DeregisterDriver(name); err != nil {
		return err
	}
	g.schemas.Deregister(name)
	g.events.Publish(event.Event{
		Source:   "gateway:" + g.name,
		Name:     "driver-deregistered",
		Severity: event.SeverityStatus,
		Time:     g.clock(),
		Detail:   name,
	})
	return nil
}

// Drivers lists registered drivers for the management view.
func (g *Gateway) Drivers() []DriverInfo {
	var out []DriverInfo
	for _, name := range g.drivers.Drivers() {
		info := DriverInfo{Name: name}
		if d, ok := g.drivers.Driver(name); ok {
			if v, ok := d.(driver.Versioned); ok {
				info.Version = v.Version()
			}
		}
		if ds, _, ok := g.schemas.Lookup(name); ok {
			info.Groups = ds.GroupNames()
		}
		out = append(out, info)
	}
	return out
}

// AddSource registers a data source. Static driver preferences, when given,
// are installed with the DriverManager.
func (g *Gateway) AddSource(cfg SourceConfig) error {
	if _, err := driver.ParseURL(cfg.URL); err != nil {
		return err
	}
	for _, name := range cfg.Drivers {
		if _, ok := g.drivers.Driver(name); !ok {
			return fmt.Errorf("core: source %s prefers unregistered driver %q", cfg.URL, name)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.sources[cfg.URL]; dup {
		return fmt.Errorf("core: source %s already registered", cfg.URL)
	}
	g.sources[cfg.URL] = &SourceInfo{SourceConfig: cfg}
	g.breakers[cfg.URL] = newBreaker(g.breakerOpts)
	g.drivers.SetPreferences(cfg.URL, cfg.Drivers)
	return nil
}

// RemoveSource unregisters a data source and drops its cached results.
func (g *Gateway) RemoveSource(url string) error {
	g.mu.Lock()
	_, ok := g.sources[url]
	if ok {
		delete(g.sources, url)
		delete(g.breakers, url)
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: source %s not registered", url)
	}
	g.drivers.SetPreferences(url, nil)
	g.cache.InvalidateSource(url)
	return nil
}

// Sources lists registered data sources with health, sorted by URL.
func (g *Gateway) Sources() []SourceInfo {
	now := g.clock()
	g.mu.RLock()
	out := make([]SourceInfo, 0, len(g.sources))
	for url, s := range g.sources {
		info := *s
		if br := g.breakers[url]; br != nil {
			info.Breaker = string(br.State(now))
		}
		if h, probed := g.prober.Health(url); probed {
			info.Health = string(h.State)
			info.LastProbe = h.LastProbe
			info.ProbeFailures = h.ConsecutiveFailures
		}
		out = append(out, info)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Source returns one registered source's info.
func (g *Gateway) Source(url string) (SourceInfo, bool) {
	now := g.clock()
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok := g.sources[url]
	if !ok {
		return SourceInfo{}, false
	}
	info := *s
	if br := g.breakers[url]; br != nil {
		info.Breaker = string(br.State(now))
	}
	if h, probed := g.prober.Health(url); probed {
		info.Health = string(h.State)
		info.LastProbe = h.LastProbe
		info.ProbeFailures = h.ConsecutiveFailures
	}
	return info, true
}

// breaker returns the source's circuit breaker, if the source is
// registered.
func (g *Gateway) breaker(url string) *breaker {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.breakers[url]
}

// SetGlobalRouter wires the gateway to the Global layer.
func (g *Gateway) SetGlobalRouter(r GlobalRouter) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.router = r
}

// Prober returns the gateway's source health prober.
func (g *Gateway) Prober() *health.Prober { return g.prober }

// ProbeTargets implements health.Pinger: every registered source URL.
func (g *Gateway) ProbeTargets() []string {
	g.mu.RLock()
	urls := make([]string, 0, len(g.sources))
	for url := range g.sources {
		urls = append(urls, url)
	}
	g.mu.RUnlock()
	sort.Strings(urls)
	return urls
}

// ProbeSource implements health.Pinger: a cheap liveness check of one
// source via a pooled connection (idle connections are validated with Ping;
// a fresh connect proves liveness by itself). A probe respects the circuit
// breaker — when the breaker is open mid-cooldown it reports
// health.ErrSkipped rather than hammering a known-bad source (and rather
// than noting a failure, which would extend the cooldown forever). Once the
// cooldown elapses the probe claims the half-open slot itself, so breakers
// recover proactively instead of waiting for user traffic.
func (g *Gateway) ProbeSource(ctx context.Context, url string) error {
	g.mu.RLock()
	src, ok := g.sources[url]
	var props driver.Properties
	if ok {
		props = src.Props
	}
	g.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: source %s not registered", url)
	}
	if br := g.breaker(url); br != nil && !br.Allow(g.clock()) {
		return health.ErrSkipped
	}
	conn, err := g.pool.GetContext(ctx, url, props)
	if err != nil {
		g.noteFailure(url, err, g.clock())
		return err
	}
	driverName := conn.Driver()
	conn.Release()
	g.noteSuccess(url, driverName, g.clock())
	return nil
}

// onHealthTransition publishes a source's probed state change: an Alert
// when it degrades or goes down, a Status event when it recovers.
func (g *Gateway) onHealthTransition(h health.SourceHealth, from health.State) {
	sev := event.SeverityAlert
	if h.State == health.StateHealthy {
		sev = event.SeverityStatus
	}
	prev := string(from)
	if prev == "" {
		prev = "unknown"
	}
	detail := fmt.Sprintf("source health %s -> %s", prev, h.State)
	if h.LastError != "" {
		detail += ": " + h.LastError
	}
	g.events.Publish(event.Event{
		Source:   h.URL,
		Name:     "source-health",
		Severity: sev,
		Time:     h.LastProbe,
		Detail:   detail,
	})
}

// Events returns the gateway's Event Manager.
func (g *Gateway) Events() *event.Manager { return g.events }

// HistoryStore returns the gateway's historical store.
func (g *Gateway) HistoryStore() *history.Store { return g.history }

// DurableHistory returns the history persistence layer, or nil when the
// gateway runs memory-only (Durable.Dir unset).
func (g *Gateway) DurableHistory() *tsdb.Store { return g.durable }

// HistoryStatus summarises the historical store for status reports.
type HistoryStatus struct {
	Keys    int   `json:"keys"`
	Samples int   `json:"samples"`
	Pruned  int64 `json:"pruned_total"`
	// Durability is nil when the gateway runs without a history dir.
	Durability *tsdb.Stats `json:"durability,omitempty"`
}

// HistoryStatus reports history retention and durability state.
func (g *Gateway) HistoryStatus() HistoryStatus {
	st := HistoryStatus{
		Keys:    g.history.Keys(),
		Samples: g.history.TotalSamples(),
		Pruned:  g.historyPrunes.Load(),
	}
	if g.durable != nil {
		ds := g.durable.Stats()
		st.Durability = &ds
	}
	return st
}

// Cache returns the gateway's query cache.
func (g *Gateway) Cache() *qcache.Cache { return g.cache }

// Pool returns the gateway's ConnectionManager.
func (g *Gateway) Pool() *pool.Manager { return g.pool }

// DriverManager returns the gateway's GridRMDriverManager.
func (g *Gateway) DriverManager() *driver.Manager { return g.drivers }

// SchemaManager returns the gateway's SchemaManager.
func (g *Gateway) SchemaManager() *schema.Manager { return g.schemas }

// CoarsePolicy returns the CGSL policy.
func (g *Gateway) CoarsePolicy() *security.CoarsePolicy { return g.coarse }

// FinePolicy returns the FGSL policy.
func (g *Gateway) FinePolicy() *security.FinePolicy { return g.fine }

// Stats returns gateway counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		Queries:        g.queries.Load(),
		QueryErrors:    g.queryErrors.Load(),
		Harvests:       g.harvests.Load(),
		HarvestErrors:  g.harvestErrors.Load(),
		CacheServed:    g.cacheServed.Load(),
		Coalesced:      g.coalesced.Load(),
		Routed:         g.routed.Load(),
		Denied:         g.denied.Load(),
		Timeouts:       g.timeouts.Load(),
		Retries:        g.retries.Load(),
		BreakerSkipped: g.breakerSkipped.Load(),
		BreakerOpens:   g.breakerOpens.Load(),

		StaleServes:      g.staleServes.Load(),
		HistoryFallbacks: g.historyFallbacks.Load(),
		DriverPanics:     g.driverPanics.Load(),

		PlanCacheHits:   int64(g.plans.Stats().Hits),
		PlanCacheMisses: int64(g.plans.Stats().Misses),

		RowsPublished:       g.push.Stats().Published,
		RowsDropped:         g.push.Stats().Dropped,
		SubscriberEvictions: g.push.Stats().Evicted,
		SinkDelivered:       g.push.Stats().SinkDelivered,
		SinkDropped:         g.push.Stats().SinkDropped,
		SinkBreakerOpens:    g.push.Stats().SinkBreakerOpens,
		EventsDropped:       g.events.Stats().Dropped + g.events.Stats().ListenerDropped,
		Fanouts:             g.fanouts.Load(),
		FanoutLegs:          g.fanoutLegs.Load(),
	}
}

func (g *Gateway) noteSuccess(url, driverName string, at time.Time) {
	g.mu.Lock()
	br := g.breakers[url]
	if s, ok := g.sources[url]; ok {
		s.LastDriver = driverName
		s.LastSuccess = at
		s.LastError = ""
	}
	g.mu.Unlock()
	if br != nil {
		br.OnSuccess()
	}
}

func (g *Gateway) noteFailure(url string, err error, at time.Time) {
	g.mu.Lock()
	br := g.breakers[url]
	if s, ok := g.sources[url]; ok {
		s.LastError = err.Error()
		s.LastErrorAt = at
	}
	g.mu.Unlock()
	var pe *driver.PanicError
	if errors.As(err, &pe) {
		// A contained driver panic: count it and alert with the captured
		// stack, then let it feed the breaker like any other failure.
		g.driverPanics.Add(1)
		g.events.Publish(event.Event{
			Source:   url,
			Name:     "driver-panic",
			Severity: event.SeverityAlert,
			Time:     at,
			Detail:   fmt.Sprintf("%v\n%s", pe.Value, pe.Stack),
		})
	}
	g.events.Publish(event.Event{
		Source:   url,
		Name:     "poll-failed",
		Severity: event.SeverityStatus,
		Time:     at,
		Detail:   err.Error(),
	})
	if br != nil && br.OnFailure(at) {
		g.breakerOpens.Add(1)
		g.events.Publish(event.Event{
			Source:   url,
			Name:     "breaker-open",
			Severity: event.SeverityAlert,
			Time:     at,
			Detail:   fmt.Sprintf("circuit opened after %d consecutive failures", g.breakerOpts.Threshold),
		})
	}
}
