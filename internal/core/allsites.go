package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"gridrm/internal/resultset"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
	"gridrm/internal/trace"
)

// queryAllSites executes one SQL statement across the whole virtual
// organisation: locally, plus at every remote site the Global layer can
// reach, consolidating the answers into one ResultSet. ORDER BY and LIMIT
// are stripped from the fan-out sub-queries and re-applied over the merged
// rows, so "the 3 busiest hosts anywhere" means exactly that. Aggregate
// queries are pushed down: each site answers the partial-aggregate rewrite
// (sum+count for avg, and so on) and only those partial rows cross the
// wire; the entry gateway merges them (sum of sums, min of mins) and
// finalizes the answer. The fan-out is bounded by ctx: a site that has not
// answered when the deadline passes is reported as timed out and the
// consolidated rows of the sites that did answer are returned.
func (g *Gateway) queryAllSites(ctx context.Context, req QueryOptions, start time.Time) (*Response, error) {
	if g.coarse.Check(req.Principal, security.OpGlobalQuery) != security.Allow {
		g.denied.Add(1)
		return nil, &PermissionError{Principal: req.Principal.Name, What: "global query"}
	}
	q, err := g.plans.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	subReq := req
	subReq.Sources = nil // source URLs are site-local knowledge
	if q.Aggregate() {
		// Per-site sub-query: the partial-aggregate rewrite, still plain
		// SQL in the same grammar.
		subReq.SQL = q.PartialQuery().String()
	} else {
		// Per-site sub-query: same projection and WHERE, no ORDER/LIMIT —
		// those only make sense over the consolidated rows.
		sub := *q
		sub.OrderBy = ""
		sub.Desc = false
		sub.Limit = -1
		subReq.SQL = sub.String()
	}

	g.mu.RLock()
	router := g.router
	g.mu.RUnlock()
	sites := []string{g.name}
	if router != nil {
		sites = append(sites, router.Sites()...)
	}

	type siteResult struct {
		i    int
		site string
		resp *Response
		err  error
	}
	// Buffered so site legs finishing after the deadline park their result
	// in the channel instead of blocking or racing the collection below.
	fanoutStart := g.clock()
	fctx, fsp := trace.StartSpan(ctx, "fanout")
	fsp.SetAttr("sites", strconv.Itoa(len(sites)))
	ch := make(chan siteResult, len(sites))
	for i, site := range sites {
		go func(i int, site string) {
			lctx, lsp := trace.StartSpan(fctx, "site")
			lsp.SetAttr("site", site)
			r := subReq
			r.Site = site
			resp, err := g.QueryContext(markSubQuery(lctx), r)
			lsp.SetError(err)
			lsp.End()
			ch <- siteResult{i: i, site: site, resp: resp, err: err}
		}(i, site)
	}
	results := make([]siteResult, len(sites))
	answeredLeg := make([]bool, len(sites))
	remaining := len(sites)
collect:
	for remaining > 0 {
		select {
		case r := <-ch:
			results[r.i] = r
			answeredLeg[r.i] = true
			remaining--
		case <-ctx.Done():
			for i, site := range sites {
				if !answeredLeg[i] {
					g.timeouts.Add(1)
					results[i] = siteResult{i: i, site: site, err: fmt.Errorf("%s: %w", ErrTimedOut, ctx.Err())}
				}
			}
			break collect
		}
	}
	fsp.End()
	g.observeStage(StageFanout, fanoutStart)

	var merged *resultset.ResultSet
	var statuses []SourceStatus
	answered := 0
	for _, sr := range results {
		if sr.err != nil {
			// A failed site is a per-site diagnostic, not a query
			// failure — consistent with per-source behaviour.
			statuses = append(statuses, SourceStatus{
				Source: "site:" + sr.site,
				Err:    sr.err.Error(),
			})
			continue
		}
		answered++
		for _, st := range sr.resp.Sources {
			st.Source = "site:" + sr.site + " " + st.Source
			statuses = append(statuses, st)
		}
		if merged == nil {
			merged = resultset.New(sr.resp.ResultSet.Metadata())
		}
		if err := merged.Merge(sr.resp.ResultSet); err != nil {
			statuses = append(statuses, SourceStatus{
				Source: "site:" + sr.site,
				Err:    err.Error(),
			})
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("core: no site answered the all-sites query")
	}
	if q.Aggregate() {
		// merged holds the concatenated per-site partial rows; combine
		// them into the final aggregate before ordering and limiting.
		final, err := sqlparse.FinalizeAggregate(q, merged)
		if err != nil {
			return nil, err
		}
		merged = final
	}
	if q.OrderBy != "" && merged.Metadata().ColumnIndex(q.OrderBy) >= 0 {
		if err := merged.SortBy(q.OrderBy, q.Desc); err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 {
		merged = merged.Limit(q.Limit)
	}
	return &Response{
		Site:      AllSites,
		SQL:       q.String(),
		Mode:      req.Mode,
		ResultSet: merged,
		Sources:   statuses,
		Elapsed:   g.clock().Sub(start),
	}, nil
}
