package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gridrm/internal/resultset"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
	"gridrm/internal/trace"
)

// FanoutLeg is one branch of an all-sites fan-out plan. A direct leg
// targets a site gateway; a republisher leg targets an intermediate
// gateway that answers for every site in Covers from its merged region
// view, collapsing N site round trips into one.
type FanoutLeg struct {
	// Target is the member to query (a site name, or a republisher name
	// for republisher legs); it goes into the sub-request's Site field.
	Target string
	// Republisher marks a region leg.
	Republisher bool
	// Covers lists the sites a republisher leg answers for. When the leg
	// fails, the fan-out degrades to direct legs for these sites.
	Covers []string
}

// FanoutPlanner is implemented by routers that can turn the flat
// all-sites fan-out into a tree (gma.Router with republishers
// registered). queryAllSites consults it when present and falls back to
// GlobalRouter.Sites otherwise.
type FanoutPlanner interface {
	FanoutPlan(ctx context.Context) ([]FanoutLeg, error)
}

// legLabel names a leg in source statuses and timeout diagnostics.
func legLabel(leg FanoutLeg) string {
	if leg.Republisher {
		return "repub:" + leg.Target
	}
	return "site:" + leg.Target
}

// queryAllSites executes one SQL statement across the whole virtual
// organisation: locally, plus at every remote site the Global layer can
// reach, consolidating the answers into one ResultSet. ORDER BY and LIMIT
// are stripped from the fan-out sub-queries and re-applied over the merged
// rows, so "the 3 busiest hosts anywhere" means exactly that. Aggregate
// queries are pushed down: each site answers the partial-aggregate rewrite
// (sum+count for avg, and so on) and only those partial rows cross the
// wire; the entry gateway merges them (sum of sums, min of mins) and
// finalizes the answer.
//
// When the router plans a hierarchical fan-out (FanoutPlanner), sites
// owned by republishers are covered by one region leg each: the entry's
// fan-out degree is the number of republishers, not the number of sites,
// and the partial-aggregate sub-query is answered from the republisher's
// merged view. A failed region leg degrades to direct legs for the sites
// it covered, so a dead republisher costs latency, not answers.
//
// The fan-out is bounded by ctx: a leg that has not answered when the
// deadline passes is reported as timed out and the consolidated rows of
// the legs that did answer are returned.
func (g *Gateway) queryAllSites(ctx context.Context, req QueryOptions, start time.Time) (*Response, error) {
	if g.coarse.Check(req.Principal, security.OpGlobalQuery) != security.Allow {
		g.denied.Add(1)
		return nil, &PermissionError{Principal: req.Principal.Name, What: "global query"}
	}
	q, err := g.plans.Parse(req.SQL)
	if err != nil {
		return nil, err
	}
	subReq := req
	subReq.Sources = nil // source URLs are site-local knowledge
	if q.Aggregate() {
		// Per-site sub-query: the partial-aggregate rewrite, still plain
		// SQL in the same grammar.
		subReq.SQL = q.PartialQuery().String()
	} else {
		// Per-site sub-query: same projection and WHERE, no ORDER/LIMIT —
		// those only make sense over the consolidated rows.
		sub := *q
		sub.OrderBy = ""
		sub.Desc = false
		sub.Limit = -1
		subReq.SQL = sub.String()
	}

	g.mu.RLock()
	router := g.router
	g.mu.RUnlock()
	legs := []FanoutLeg{{Target: g.name}}
	siteCount := 1
	if router != nil {
		var planned []FanoutLeg
		if fp, ok := router.(FanoutPlanner); ok {
			planned, err = fp.FanoutPlan(ctx)
			if err != nil {
				planned = nil
			}
		}
		if planned == nil {
			for _, site := range router.Sites() {
				planned = append(planned, FanoutLeg{Target: site})
			}
		}
		for _, leg := range planned {
			if leg.Republisher {
				siteCount += len(leg.Covers)
			} else {
				siteCount++
			}
		}
		legs = append(legs, planned...)
	}

	// querySite runs one direct sub-query against a site (local or
	// remote) under its own span.
	querySite := func(ctx context.Context, site string) (*Response, error) {
		lctx, lsp := trace.StartSpan(ctx, "site")
		lsp.SetAttr("site", site)
		r := subReq
		r.Site = site
		resp, err := g.QueryContext(markSubQuery(lctx), r)
		lsp.SetError(err)
		lsp.End()
		return resp, err
	}

	type legResult struct {
		i        int
		statuses []SourceStatus
		results  []*resultset.ResultSet
		answered int
	}
	// Buffered so legs finishing after the deadline park their result in
	// the channel instead of blocking or racing the collection below.
	fanoutStart := g.clock()
	g.fanouts.Add(1)
	g.fanoutLegs.Add(int64(len(legs) - 1)) // legs[0] is the local leg
	fctx, fsp := trace.StartSpan(ctx, "fanout")
	fsp.SetAttr("sites", strconv.Itoa(siteCount))
	fsp.SetAttr("legs", strconv.Itoa(len(legs)))
	ch := make(chan legResult, len(legs))
	for i, leg := range legs {
		go func(i int, leg FanoutLeg) {
			out := legResult{i: i}
			if leg.Republisher {
				lctx, lsp := trace.StartSpan(fctx, "region")
				lsp.SetAttr("republisher", leg.Target)
				lsp.SetAttr("covers", strconv.Itoa(len(leg.Covers)))
				r := subReq
				r.Site = leg.Target
				// Pin the region answer to exactly the planned coverage: a
				// republisher that also mirrors this entry's site must not
				// re-count it, and one whose shard drifted must refuse so we
				// degrade to direct legs below.
				r.Region = leg.Covers
				resp, err := g.QueryContext(markSubQuery(lctx), r)
				lsp.SetError(err)
				lsp.End()
				if err == nil {
					out.answered++
					out.results = append(out.results, resp.ResultSet)
					out.statuses = append(out.statuses, SourceStatus{
						Source: legLabel(leg) + " sites:" + strconv.Itoa(len(leg.Covers)),
					})
					ch <- out
					return
				}
				// Degrade: the republisher is down or no longer owns these
				// sites — fan out directly to everything it covered.
				out.statuses = append(out.statuses, SourceStatus{
					Source: legLabel(leg),
					Err:    err.Error(),
				})
				var mu sync.Mutex
				var wg sync.WaitGroup
				for _, site := range leg.Covers {
					wg.Add(1)
					go func(site string) {
						defer wg.Done()
						resp, err := querySite(fctx, site)
						mu.Lock()
						defer mu.Unlock()
						if err != nil {
							out.statuses = append(out.statuses, SourceStatus{
								Source: "site:" + site,
								Err:    err.Error(),
							})
							return
						}
						out.answered++
						out.results = append(out.results, resp.ResultSet)
						for _, st := range resp.Sources {
							st.Source = "site:" + site + " " + st.Source
							out.statuses = append(out.statuses, st)
						}
					}(site)
				}
				wg.Wait()
				ch <- out
				return
			}
			resp, err := querySite(fctx, leg.Target)
			if err != nil {
				// A failed site is a per-site diagnostic, not a query
				// failure — consistent with per-source behaviour.
				out.statuses = append(out.statuses, SourceStatus{
					Source: legLabel(leg),
					Err:    err.Error(),
				})
				ch <- out
				return
			}
			out.answered++
			out.results = append(out.results, resp.ResultSet)
			for _, st := range resp.Sources {
				st.Source = legLabel(leg) + " " + st.Source
				out.statuses = append(out.statuses, st)
			}
			ch <- out
		}(i, leg)
	}
	results := make([]legResult, len(legs))
	answeredLeg := make([]bool, len(legs))
	remaining := len(legs)
collect:
	for remaining > 0 {
		select {
		case r := <-ch:
			results[r.i] = r
			answeredLeg[r.i] = true
			remaining--
		case <-ctx.Done():
			for i, leg := range legs {
				if !answeredLeg[i] {
					g.timeouts.Add(1)
					results[i] = legResult{i: i, statuses: []SourceStatus{{
						Source: legLabel(leg),
						Err:    fmt.Errorf("%s: %w", ErrTimedOut, ctx.Err()).Error(),
					}}}
				}
			}
			break collect
		}
	}
	fsp.End()
	g.observeStage(StageFanout, fanoutStart)

	var merged *resultset.ResultSet
	var statuses []SourceStatus
	answered := 0
	for _, lr := range results {
		answered += lr.answered
		statuses = append(statuses, lr.statuses...)
		for _, rs := range lr.results {
			if merged == nil {
				merged = resultset.New(rs.Metadata())
			}
			if err := merged.Merge(rs); err != nil {
				statuses = append(statuses, SourceStatus{
					Source: "merge",
					Err:    err.Error(),
				})
			}
		}
	}
	if answered == 0 {
		return nil, fmt.Errorf("core: no site answered the all-sites query")
	}
	if q.Aggregate() {
		// merged holds the concatenated per-site partial rows; combine
		// them into the final aggregate before ordering and limiting.
		final, err := sqlparse.FinalizeAggregate(q, merged)
		if err != nil {
			return nil, err
		}
		merged = final
	}
	if q.OrderBy != "" && merged.Metadata().ColumnIndex(q.OrderBy) >= 0 {
		if err := merged.SortBy(q.OrderBy, q.Desc); err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 {
		merged = merged.Limit(q.Limit)
	}
	return &Response{
		Site:      AllSites,
		SQL:       q.String(),
		Mode:      req.Mode,
		ResultSet: merged,
		Sources:   statuses,
		Elapsed:   g.clock().Sub(start),
	}, nil
}
