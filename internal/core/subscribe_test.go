package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"gridrm/internal/router"
	"gridrm/internal/security"
)

// recvRows drains n metrics from sub within a real-time deadline.
func recvRows(t *testing.T, sub *router.Subscription, n int) []router.Metric {
	t.Helper()
	out := make([]router.Metric, 0, n)
	for len(out) < n {
		select {
		case m := <-sub.C():
			out = append(out, m)
		case <-time.After(2 * time.Second):
			t.Fatalf("received %d/%d rows before timeout", len(out), n)
		}
	}
	return out
}

func TestSubscribeReceivesHarvestRows(t *testing.T) {
	f := newFixture(t)
	sub, err := f.g.Subscribe(context.Background(), QueryOptions{
		Principal: f.admin, SQL: "SELECT * FROM Processor",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	rows := recvRows(t, sub, 3) // 2 hosts from A, 1 from B
	seen := map[string]bool{}
	for _, m := range rows {
		if m.Group != "Processor" {
			t.Fatalf("group = %q", m.Group)
		}
		if m.Seq == 0 {
			t.Fatal("row missing sequence number")
		}
		host, _ := m.Row[columnIndex(m.Columns, "HostName")].(string)
		seen[host] = true
	}
	for _, h := range []string{"a1", "a2", "b1"} {
		if !seen[h] {
			t.Fatalf("host %s never pushed; got %v", h, seen)
		}
	}
	if st := f.g.Stats(); st.RowsPublished != 3 {
		t.Fatalf("RowsPublished = %d, want 3", st.RowsPublished)
	}
}

func TestSubscribeWhereAndProjection(t *testing.T) {
	f := newFixture(t)
	sub, err := f.g.Subscribe(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName FROM Processor WHERE LoadLast1Min > 2",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	rows := recvRows(t, sub, 1) // only b1 (load 5.0) passes the WHERE
	m := rows[0]
	if len(m.Columns) != 1 || m.Columns[0] != "HostName" {
		t.Fatalf("projection not applied: columns = %v", m.Columns)
	}
	if host, _ := m.Row[0].(string); host != "b1" {
		t.Fatalf("host = %q, want b1", host)
	}
	select {
	case extra := <-sub.C():
		t.Fatalf("unexpected extra row: %+v", extra)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSubscribeSourceFilter(t *testing.T) {
	f := newFixture(t)
	sub, err := f.g.Subscribe(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT * FROM Processor",
		Sources:   []string{f.urlB},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	rows := recvRows(t, sub, 1)
	if rows[0].Source != f.urlB {
		t.Fatalf("source = %q, want %q", rows[0].Source, f.urlB)
	}
}

func TestSubscribeFineSecurityPerMetric(t *testing.T) {
	f := newFixture(t)
	// Deny the admin principal source B at the fine layer; harvests still
	// run, but the subscriber must never see B's rows.
	f.g.FinePolicy().Add(security.FineRule{
		Principal: "admin", Source: f.urlB, Decision: security.Deny,
	})
	sub, err := f.g.Subscribe(context.Background(), QueryOptions{
		Principal: f.admin, SQL: "SELECT * FROM Processor",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// The query itself would also be filtered; use a different principal
	// path: harvest with a principal allowed everywhere.
	other := security.Principal{Name: "operator2", Roles: []string{"operator"}}
	if _, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: other, SQL: "SELECT * FROM Processor", Mode: ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	rows := recvRows(t, sub, 2)
	for _, m := range rows {
		if m.Source == f.urlB {
			t.Fatalf("fine-denied source leaked to subscriber: %+v", m)
		}
	}
}

func TestSubscribeValidation(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		name string
		opts QueryOptions
	}{
		{"aggregate", QueryOptions{Principal: f.admin, SQL: "SELECT count(*) FROM Processor"}},
		{"unknown group", QueryOptions{Principal: f.admin, SQL: "SELECT * FROM NoSuchGroup"}},
		{"bad column", QueryOptions{Principal: f.admin, SQL: "SELECT NoSuchColumn FROM Processor"}},
		{"historical", QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Mode: ModeHistorical}},
		{"remote site", QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Site: "siteB"}},
		{"bad sql", QueryOptions{Principal: f.admin, SQL: "SELEKT"}},
	}
	for _, tc := range cases {
		if _, err := f.g.Subscribe(context.Background(), tc.opts); err == nil {
			t.Errorf("%s: Subscribe accepted invalid options", tc.name)
		}
	}
}

func TestSubscribeCoarseDenied(t *testing.T) {
	f := newFixture(t)
	f.g.CoarsePolicy().Add(security.CoarseRule{
		Principal: "nobody", Op: security.OpQueryRealTime, Decision: security.Deny,
	})
	_, err := f.g.Subscribe(context.Background(), QueryOptions{
		Principal: security.Principal{Name: "nobody"},
		SQL:       "SELECT * FROM Processor",
	})
	var pe *PermissionError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PermissionError", err)
	}
}

func TestSubscribeContextCancel(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := f.g.Subscribe(ctx, QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor"})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-sub.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("context cancel did not end the subscription")
	}
	if f.g.PushRouter().Stats().Subscribers != 0 {
		t.Fatal("subscription still registered after cancel")
	}
}

func TestShutdownEndsSubscriptions(t *testing.T) {
	f := newFixture(t)
	sub, err := f.g.Subscribe(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelT := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelT()
	if err := f.g.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown did not end the subscription")
	}
	if _, err := f.g.Subscribe(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor"}); !errors.Is(err, ErrGatewayClosed) {
		t.Fatalf("Subscribe after shutdown: err = %v, want ErrGatewayClosed", err)
	}
}

// TestStuckSubscriberDoesNotSlowQueries is the gateway-level half of the
// backpressure invariant: a subscriber that never reads must not affect
// the query path.
func TestStuckSubscriberDoesNotSlowQueries(t *testing.T) {
	f := newFixture(t)
	sub, err := f.g.Subscribe(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Never read from sub.C(); hammer queries (cache busted each round so
	// every one harvests) and require them all to succeed. 200 rounds x 3
	// rows overflows the default 256-slot queue well past the stall
	// threshold, so this also drives the eviction path.
	for i := 0; i < 200; i++ {
		*f.now = f.now.Add(time.Hour) // bust the query cache each round
		f.query(t, "SELECT * FROM Processor", ModeRealTime)
	}
	st := f.g.Stats()
	if st.RowsPublished == 0 {
		t.Fatal("no rows were published")
	}
	if st.RowsDropped == 0 {
		t.Fatal("stuck subscriber's overflow was not accounted")
	}
}
