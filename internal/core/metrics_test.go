package core

import (
	"testing"
	"time"

	"gridrm/internal/event"
	"gridrm/internal/glue"
)

func TestWatchMetricValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.g.WatchMetric("Nope", "X"); err == nil {
		t.Error("unknown group accepted")
	}
	if err := f.g.WatchMetric(glue.GroupProcessor, "Nope"); err == nil {
		t.Error("unknown field accepted")
	}
	if err := f.g.WatchMetric(glue.GroupProcessor, "HostName"); err == nil {
		t.Error("non-numeric field accepted")
	}
	if err := f.g.WatchMetric(glue.GroupProcessor, "LoadLast1Min"); err != nil {
		t.Fatal(err)
	}
	if err := f.g.WatchMetric(glue.GroupProcessor, "LoadLast1Min"); err == nil {
		t.Error("duplicate watch accepted")
	}
	if got := f.g.WatchedMetrics(); len(got) != 1 || got[0] != "Processor.LoadLast1Min" {
		t.Errorf("WatchedMetrics = %v", got)
	}
}

func TestHarvestPublishesWatchedMetrics(t *testing.T) {
	f := newFixture(t)
	if err := f.g.WatchMetric(glue.GroupProcessor, "LoadLast1Min"); err != nil {
		t.Fatal(err)
	}
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	f.g.Events().Drain()
	evs := f.g.Events().History(event.Filter{Name: "Processor.LoadLast1Min"}, time.Time{})
	// 2 hosts from source A + 1 from source B.
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	byHost := map[string]float64{}
	for _, ev := range evs {
		if ev.Severity != event.SeverityUsage {
			t.Errorf("severity %q", ev.Severity)
		}
		byHost[ev.Host] = ev.Value
	}
	if byHost["a1"] != 1.0 || byHost["b1"] != 5.0 {
		t.Errorf("values %v", byHost)
	}
	// Cached queries do not re-publish (no new harvest).
	before := len(f.g.Events().History(event.Filter{Name: "Processor.%"}, time.Time{}))
	f.query(t, "SELECT * FROM Processor", ModeCached)
	f.g.Events().Drain()
	after := len(f.g.Events().History(event.Filter{Name: "Processor.%"}, time.Time{}))
	if after != before {
		t.Errorf("cached query published %d new events", after-before)
	}
}

func TestHarvestToAlertPath(t *testing.T) {
	// Fig 3 end to end: a real-time query harvests rows, the watched
	// metric flows into the Event Manager, the threshold rule fires, and
	// an alert is delivered — no separate polling loop.
	f := newFixture(t)
	if err := f.g.WatchMetric(glue.GroupProcessor, "LoadLast1Min"); err != nil {
		t.Fatal(err)
	}
	if err := f.g.Events().AddRule(event.ThresholdRule{
		Name:      "overload",
		Match:     event.Filter{Name: "Processor.LoadLast1Min"},
		Op:        event.Above,
		Threshold: 4.0,
	}); err != nil {
		t.Fatal(err)
	}
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	f.g.Events().Drain()
	alerts := f.g.Events().History(event.Filter{Name: "overload"}, time.Time{})
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	// Only the 5.0-load host from driver 2 crossed.
	if alerts[0].Host != "b1" || alerts[0].Value != 5.0 {
		t.Errorf("alert %+v", alerts[0])
	}
}

func TestNullWatchedFieldSkipped(t *testing.T) {
	f := newFixture(t)
	// Utilization is unmapped in the memDriver's schema → NULL on every
	// row → no events.
	if err := f.g.WatchMetric(glue.GroupProcessor, "Utilization"); err != nil {
		t.Fatal(err)
	}
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	f.g.Events().Drain()
	if evs := f.g.Events().History(event.Filter{Name: "Processor.Utilization"}, time.Time{}); len(evs) != 0 {
		t.Errorf("NULL field published %d events", len(evs))
	}
}
