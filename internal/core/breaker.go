package core

import (
	"sync"
	"time"
)

// BreakerOptions configures the per-source circuit breaker that sits in
// front of harvests. A source that fails Threshold times in a row is
// "open": harvests are skipped cheaply (status "circuit open") for Cooldown,
// after which a single half-open probe is allowed through; a successful
// probe closes the breaker, a failed one re-opens it for another Cooldown.
type BreakerOptions struct {
	// Threshold is how many consecutive harvest failures open the breaker
	// (default 5; negative disables the breaker entirely).
	Threshold int
	// Cooldown is how long an open breaker rejects harvests before
	// allowing a half-open probe (default 30s).
	Cooldown time.Duration
}

func (o BreakerOptions) fill() BreakerOptions {
	if o.Threshold == 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	return o
}

// breakerState is the management-view name for a breaker's current state.
type breakerState string

const (
	breakerClosed   breakerState = "closed"
	breakerOpen     breakerState = "open"
	breakerHalfOpen breakerState = "half-open"
)

// breaker is one source's circuit-breaker state. The zero value (with
// opts filled) is a closed breaker.
type breaker struct {
	opts BreakerOptions

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool
}

func newBreaker(opts BreakerOptions) *breaker { return &breaker{opts: opts.fill()} }

// disabled reports whether the breaker is configured off.
func (b *breaker) disabled() bool { return b.opts.Threshold < 0 }

// allow reports whether a harvest may proceed now. In the half-open state
// exactly one caller wins the probe slot until onSuccess/onFailure resolves
// it; concurrent callers are rejected as if the breaker were still open.
func (b *breaker) allow(now time.Time) bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.opts.Threshold {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true
	return true
}

// onSuccess records a successful harvest: the breaker closes.
func (b *breaker) onSuccess() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a failed harvest and reports whether this failure
// transitioned the breaker from closed to open.
func (b *breaker) onFailure(now time.Time) (opened bool) {
	if b.disabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.probing
	b.probing = false
	b.consecutive++
	if b.consecutive < b.opts.Threshold {
		return false
	}
	b.openUntil = now.Add(b.opts.Cooldown)
	// Only the closed→open edge counts as an "open"; a failed half-open
	// probe re-arms the cooldown without recounting.
	return !wasProbe && b.consecutive == b.opts.Threshold
}

// state reports the breaker's state for the management view.
func (b *breaker) state(now time.Time) breakerState {
	if b.disabled() {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.consecutive < b.opts.Threshold:
		return breakerClosed
	case b.probing || !now.Before(b.openUntil):
		return breakerHalfOpen
	default:
		return breakerOpen
	}
}
