package core

import (
	cb "gridrm/internal/breaker"
)

// BreakerOptions configures the per-source circuit breaker that sits in
// front of harvests. A source that fails Threshold times in a row is
// "open": harvests are skipped cheaply (status "circuit open") for Cooldown,
// after which a single half-open probe is allowed through; a successful
// probe closes the breaker, a failed one re-opens it for another Cooldown.
//
// The implementation lives in internal/breaker, shared with the gma
// Router's per-remote-endpoint breakers.
type BreakerOptions = cb.Options

// breaker is the shared circuit breaker specialised here to one source.
type breaker = cb.Breaker

func newBreaker(opts BreakerOptions) *breaker { return cb.New(opts) }
