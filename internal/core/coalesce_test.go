package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/qcache"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/security"
)

// gateDriver serves one Processor row per host; each harvest can block on
// the gate channel (released by closing it) and optionally sleep, and the
// driver tracks how many harvests ran and the deepest concurrency seen.
type gateDriver struct {
	name, proto string
	hosts       []string
	gate        chan struct{}
	delay       time.Duration

	calls       atomic.Int64
	inflight    atomic.Int64
	maxInflight atomic.Int64
}

func (d *gateDriver) Name() string { return d.name }

func (d *gateDriver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	return err == nil && u.Protocol == d.proto
}

func (d *gateDriver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	return &gateConn{d: d, url: url}, nil
}

func (d *gateDriver) schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: d.name,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "LoadLast1Min", Native: "load"},
			}},
		},
	}
}

type gateConn struct {
	driver.UnimplementedConn
	d   *gateDriver
	url string
}

func (c *gateConn) URL() string                           { return c.url }
func (c *gateConn) Driver() string                        { return c.d.name }
func (c *gateConn) Ping() error                           { return nil }
func (c *gateConn) CreateStatement() (driver.Stmt, error) { return &gateStmt{c: c}, nil }

type gateStmt struct {
	driver.UnimplementedStmt
	c *gateConn
}

func (s *gateStmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	d := s.c.d
	d.calls.Add(1)
	cur := d.inflight.Add(1)
	defer d.inflight.Add(-1)
	for {
		max := d.maxInflight.Load()
		if cur <= max || d.maxInflight.CompareAndSwap(max, cur) {
			break
		}
	}
	if d.gate != nil {
		<-d.gate
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	g := glue.MustLookup(glue.GroupProcessor)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, h := range d.hosts {
		row := make([]any, len(g.Fields))
		row[g.FieldIndex("HostName")] = h
		row[g.FieldIndex("LoadLast1Min")] = 1.0
		b.Append(row...)
	}
	return b.Build()
}

var coalescePrincipal = security.Principal{Name: "admin", Roles: []string{"operator"}}

func newGateFixture(t testing.TB, d *gateDriver, cfg Config, sources int) *Gateway {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "siteA"
	}
	g := New(cfg)
	t.Cleanup(g.Close)
	if err := g.RegisterDriver(d, d.schema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sources; i++ {
		url := fmt.Sprintf("gridrm:%s://h%d:1", d.proto, i)
		if err := g.AddSource(SourceConfig{URL: url, Drivers: []string{d.name}}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedHarvestSingleFlight is the acceptance test: 16 concurrent
// clients querying one cold source cost the driver exactly one harvest.
func TestCoalescedHarvestSingleFlight(t *testing.T) {
	d := &gateDriver{name: "gate", proto: "gate", hosts: []string{"h"}, gate: make(chan struct{})}
	g := newGateFixture(t, d, Config{}, 1)

	const clients = 16
	var wg sync.WaitGroup
	responses := make([]*Response, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = g.QueryContext(context.Background(), QueryOptions{
				Principal: coalescePrincipal,
				SQL:       "SELECT * FROM Processor",
				Mode:      ModeCached,
			})
		}(i)
	}
	// Let the leader enter the driver and every follower join the flight,
	// then open the gate. Joining is observed through the flight group's
	// waiter count, so no scheduling assumptions are needed.
	waitFor(t, "leader harvest", func() bool { return d.calls.Load() == 1 })
	waitFor(t, "followers joined flight", func() bool {
		return g.flights.totalWaiters() == clients-1
	})
	close(d.gate)
	wg.Wait()

	if n := d.calls.Load(); n != 1 {
		t.Fatalf("driver observed %d harvests, want exactly 1", n)
	}
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if responses[i].ResultSet.Len() != 1 {
			t.Errorf("client %d rows = %d", i, responses[i].ResultSet.Len())
		}
		if e := responses[i].Sources[0].Err; e != "" {
			t.Errorf("client %d source error %q", i, e)
		}
	}
	st := g.Stats()
	if st.Harvests != 1 {
		t.Errorf("Stats.Harvests = %d, want 1", st.Harvests)
	}
	if st.Coalesced == 0 {
		t.Error("Stats.Coalesced = 0, want > 0")
	}
	// Every non-leader client either joined the flight or (arriving after
	// the leader filled the cache) was served from it.
	if st.Coalesced+st.CacheServed != clients-1 {
		t.Errorf("Coalesced (%d) + CacheServed (%d) = %d, want %d",
			st.Coalesced, st.CacheServed, st.Coalesced+st.CacheServed, clients-1)
	}
}

// TestCoalescedWaiterHonoursOwnDeadline: a follower with a short deadline
// gets its partial (timed out) response while the shared harvest continues,
// and the leader still completes.
func TestCoalescedWaiterHonoursOwnDeadline(t *testing.T) {
	d := &gateDriver{name: "gate", proto: "gate", hosts: []string{"h"}, gate: make(chan struct{})}
	g := newGateFixture(t, d, Config{}, 1)

	leaderDone := make(chan *Response, 1)
	go func() {
		resp, err := g.QueryContext(context.Background(), QueryOptions{Principal: coalescePrincipal, SQL: "SELECT * FROM Processor", Mode: ModeCached})
		if err != nil {
			t.Error(err)
		}
		leaderDone <- resp
	}()
	waitFor(t, "leader harvest", func() bool { return d.calls.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := g.QueryContext(ctx, QueryOptions{Principal: coalescePrincipal, SQL: "SELECT * FROM Processor", Mode: ModeCached})
	if err != nil {
		t.Fatalf("waiter: %v (want partial response)", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("waiter blocked %v past its deadline", took)
	}
	if e := resp.Sources[0].Err; e != ErrTimedOut {
		t.Fatalf("waiter source err = %q, want %q", e, ErrTimedOut)
	}

	close(d.gate)
	leader := <-leaderDone
	if leader.ResultSet.Len() != 1 {
		t.Errorf("leader rows = %d after waiter gave up", leader.ResultSet.Len())
	}
	if n := d.calls.Load(); n != 1 {
		t.Errorf("driver observed %d harvests", n)
	}
}

func TestDisableCoalescingHarvestsPerClient(t *testing.T) {
	d := &gateDriver{name: "gate", proto: "gate", hosts: []string{"h"}, gate: make(chan struct{})}
	g := newGateFixture(t, d, Config{DisableCoalescing: true}, 1)

	const clients = 3
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.QueryContext(context.Background(), QueryOptions{Principal: coalescePrincipal, SQL: "SELECT * FROM Processor", Mode: ModeRealTime}); err != nil {
				t.Error(err)
			}
		}()
	}
	waitFor(t, "all harvests in flight", func() bool { return d.calls.Load() == clients })
	close(d.gate)
	wg.Wait()
	st := g.Stats()
	if st.Harvests != clients || st.Coalesced != 0 {
		t.Errorf("Harvests = %d Coalesced = %d, want %d and 0", st.Harvests, st.Coalesced, clients)
	}
}

// TestMaxConcurrentHarvests: the semaphore bounds the fan-out of a single
// query across many sources.
func TestMaxConcurrentHarvests(t *testing.T) {
	d := &gateDriver{name: "gate", proto: "gate", hosts: []string{"h"}, delay: 20 * time.Millisecond}
	g := newGateFixture(t, d, Config{MaxConcurrentHarvests: 2}, 6)

	resp, err := g.QueryContext(context.Background(), QueryOptions{Principal: coalescePrincipal, SQL: "SELECT * FROM Processor", Mode: ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 6 {
		t.Fatalf("rows = %d, want 6", resp.ResultSet.Len())
	}
	if max := d.maxInflight.Load(); max > 2 {
		t.Errorf("max concurrent harvests = %d, want <= 2", max)
	}
	if n := d.calls.Load(); n != 6 {
		t.Errorf("harvests = %d, want 6", n)
	}
}

func benchFanout(b *testing.B, disable bool) {
	d := &gateDriver{name: "gate", proto: "gate", hosts: []string{"h1", "h2", "h3", "h4"},
		delay: 200 * time.Microsecond}
	g := newGateFixture(b, d, Config{
		DisableCoalescing: disable,
		// A one-nanosecond TTL keeps every query a cache miss, so the
		// benchmark measures harvest fan-out, not cache hits.
		Cache: qcache.Options{TTL: time.Nanosecond},
	}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := g.QueryContext(context.Background(), QueryOptions{Principal: coalescePrincipal, SQL: "SELECT * FROM Processor", Mode: ModeCached}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkHarvestFanoutCoalesced vs BenchmarkHarvestFanoutUncoalesced
// quantify what single-flight saves when concurrent cache-missing clients
// hammer one source.
func BenchmarkHarvestFanoutCoalesced(b *testing.B)   { benchFanout(b, false) }
func BenchmarkHarvestFanoutUncoalesced(b *testing.B) { benchFanout(b, true) }
