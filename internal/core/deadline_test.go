package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"gridrm/internal/drivers/faultdrv"
	"gridrm/internal/security"
)

// faultFixture is a gateway over three single-host sources, each served by
// its own faultdrv-wrapped in-memory driver so tests can inject latency,
// errors and hangs per source.
type faultFixture struct {
	g      *Gateway
	faults []*faultdrv.Faults
	urls   []string
	admin  security.Principal
}

func newFaultFixture(t *testing.T, cfg Config) *faultFixture {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "faultsite"
	}
	fx := &faultFixture{
		g:     New(cfg),
		admin: security.Principal{Name: "admin", Roles: []string{"operator"}},
	}
	t.Cleanup(fx.g.Close)
	for i, proto := range []string{"fa", "fb", "fc"} {
		inner := &memDriver{name: "fault-" + proto, proto: proto,
			hosts: []string{proto + "1"}, load: float64(i + 1)}
		faults := faultdrv.NewFaults()
		wrapped := faultdrv.New(inner.name, inner, faults)
		if err := fx.g.RegisterDriver(wrapped, inner.schema()); err != nil {
			t.Fatal(err)
		}
		url := "gridrm:" + proto + "://agent:1"
		if err := fx.g.AddSource(SourceConfig{URL: url}); err != nil {
			t.Fatal(err)
		}
		fx.faults = append(fx.faults, faults)
		fx.urls = append(fx.urls, url)
	}
	return fx
}

func (fx *faultFixture) status(t *testing.T, resp *Response, url string) SourceStatus {
	t.Helper()
	for _, s := range resp.Sources {
		if s.Source == url {
			return s
		}
	}
	t.Fatalf("no status for %s in %+v", url, resp.Sources)
	return SourceStatus{}
}

// TestHungSourceYieldsPartialResponse is the acceptance scenario: three
// sources, one hung, and the query still answers within the configured
// deadline with the two live sources' rows, the hung one marked timed out.
// Every deadline layer is exercised — the per-source harvest timeout, a
// caller-supplied context deadline, and the gateway's own query timeout —
// against both a context-aware driver and a legacy driver behind the
// goroutine shim.
func TestHungSourceYieldsPartialResponse(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		ctxAware bool
		reqCtx   func() (context.Context, context.CancelFunc)
	}{
		{
			name:     "harvest timeout, context-aware driver",
			cfg:      Config{HarvestTimeout: 80 * time.Millisecond},
			ctxAware: true,
		},
		{
			name:     "harvest timeout, legacy driver via shim",
			cfg:      Config{HarvestTimeout: 80 * time.Millisecond},
			ctxAware: false,
		},
		{
			name:     "caller deadline, harvest timeout off",
			cfg:      Config{HarvestTimeout: -1},
			ctxAware: true,
			reqCtx: func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 80*time.Millisecond)
			},
		},
		{
			name:     "gateway query timeout, harvest timeout off",
			cfg:      Config{HarvestTimeout: -1, QueryTimeout: 80 * time.Millisecond},
			ctxAware: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := newFaultFixture(t, tc.cfg)
			hung := fx.faults[2]
			hung.ContextAware(tc.ctxAware)
			hung.SetHangQuery(true)
			t.Cleanup(hung.Release)

			ctx := context.Background()
			if tc.reqCtx != nil {
				c, cancel := tc.reqCtx()
				defer cancel()
				ctx = c
			}
			start := time.Now()
			resp, err := fx.g.QueryContext(ctx, QueryOptions{Principal: fx.admin,
				SQL: "SELECT HostName FROM Processor ORDER BY HostName", Mode: ModeRealTime})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("partial failure escalated: %v", err)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("query took %s, deadline not enforced", elapsed)
			}
			if resp.ResultSet.Len() != 2 {
				t.Errorf("rows = %d, want 2 from the live sources", resp.ResultSet.Len())
			}
			for _, url := range fx.urls[:2] {
				if s := fx.status(t, resp, url); s.Err != "" {
					t.Errorf("live source %s reported %q", url, s.Err)
				}
			}
			if s := fx.status(t, resp, fx.urls[2]); s.Err != ErrTimedOut {
				t.Errorf("hung source Err = %q, want %q", s.Err, ErrTimedOut)
			}
			if n := fx.g.Stats().Timeouts; n < 1 {
				t.Errorf("Stats.Timeouts = %d, want >= 1", n)
			}
		})
	}
}

// TestBreakerOpensAndRecovers drives one source's breaker around the full
// closed -> open -> half-open -> closed cycle, and through a failed
// half-open probe that re-opens without recounting the open transition.
func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(90000, 0)
	g := New(Config{Name: "breaksite",
		Clock:   func() time.Time { return now },
		Breaker: BreakerOptions{Threshold: 2, Cooldown: 30 * time.Second}})
	defer g.Close()
	drv := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"h1"}, load: 1}
	if err := g.RegisterDriver(drv, drv.schema()); err != nil {
		t.Fatal(err)
	}
	url := "gridrm:mem://agent:1"
	if err := g.AddSource(SourceConfig{URL: url}); err != nil {
		t.Fatal(err)
	}
	admin := security.Principal{Name: "admin", Roles: []string{"operator"}}
	query := func() SourceStatus {
		t.Helper()
		resp, err := g.QueryContext(context.Background(), QueryOptions{Principal: admin, SQL: "SELECT * FROM Processor", Mode: ModeRealTime})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Sources) != 1 {
			t.Fatalf("statuses = %+v", resp.Sources)
		}
		return resp.Sources[0]
	}
	breakerState := func() string {
		t.Helper()
		info, ok := g.Source(url)
		if !ok {
			t.Fatal("source vanished")
		}
		return info.Breaker
	}

	drv.fail.Store(true)
	query() // failure 1 of 2: breaker still closed
	if s := breakerState(); s != "closed" {
		t.Fatalf("after 1 failure breaker = %q", s)
	}
	query() // failure 2: breaker opens
	if s := breakerState(); s != "open" {
		t.Fatalf("after %d failures breaker = %q, want open", 2, s)
	}
	if n := g.Stats().BreakerOpens; n != 1 {
		t.Errorf("BreakerOpens = %d, want 1", n)
	}

	// While open, harvests are skipped without touching the source.
	errsBefore := g.Stats().HarvestErrors
	if s := query(); s.Err != ErrCircuitOpen {
		t.Fatalf("open-breaker status = %q, want %q", s.Err, ErrCircuitOpen)
	}
	if n := g.Stats().BreakerSkipped; n != 1 {
		t.Errorf("BreakerSkipped = %d, want 1", n)
	}
	if got := g.Stats().HarvestErrors; got != errsBefore {
		t.Errorf("skipped harvest still reached the source (errors %d -> %d)", errsBefore, got)
	}

	// Cooldown elapses and the agent recovers: the half-open probe closes it.
	now = now.Add(31 * time.Second)
	if s := breakerState(); s != "half-open" {
		t.Fatalf("after cooldown breaker = %q, want half-open", s)
	}
	drv.fail.Store(false)
	if s := query(); s.Err != "" || s.Rows != 1 {
		t.Fatalf("half-open probe status = %+v", s)
	}
	if s := breakerState(); s != "closed" {
		t.Errorf("after successful probe breaker = %q", s)
	}

	// A failed half-open probe re-opens for another cooldown, and the
	// re-open is not counted as a fresh closed->open transition.
	drv.fail.Store(true)
	query()
	query()
	if n := g.Stats().BreakerOpens; n != 2 {
		t.Fatalf("BreakerOpens = %d, want 2", n)
	}
	now = now.Add(31 * time.Second)
	if s := query(); s.Err == ErrCircuitOpen {
		t.Fatal("half-open probe was not admitted")
	}
	if s := breakerState(); s != "open" {
		t.Errorf("after failed probe breaker = %q, want open", s)
	}
	if n := g.Stats().BreakerOpens; n != 2 {
		t.Errorf("failed probe recounted opens: %d", n)
	}
	if s := query(); s.Err != ErrCircuitOpen {
		t.Errorf("re-opened breaker admitted a harvest: %+v", s)
	}
}

// TestCancellationReleasesResources proves abandoned queries do not leak:
// after repeated timed-out queries against a hung legacy (shim-path) source,
// releasing the hang returns the goroutine count to its baseline and the
// pool keeps serving all three sources.
func TestCancellationReleasesResources(t *testing.T) {
	// Breaker off: five consecutive timeouts would otherwise open it and
	// the post-release query would be skipped rather than served.
	fx := newFaultFixture(t, Config{HarvestTimeout: 60 * time.Millisecond,
		Breaker: BreakerOptions{Threshold: -1}})
	req := QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor", Mode: ModeRealTime}

	// Warm the pool with one clean pass.
	if resp, err := fx.g.QueryContext(context.Background(), req); err != nil || resp.ResultSet.Len() != 3 {
		t.Fatalf("warm-up: %v, %v", resp, err)
	}
	baseline := runtime.NumGoroutine()

	hung := fx.faults[2]
	hung.ContextAware(false) // legacy path: each timeout parks a shim goroutine
	hung.SetHangQuery(true)
	for i := 0; i < 5; i++ {
		resp, err := fx.g.QueryContext(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if s := fx.status(t, resp, fx.urls[2]); s.Err != ErrTimedOut {
			t.Fatalf("round %d: hung source status %q", i, s.Err)
		}
	}
	if served := hung.HangsServed(); served < 5 {
		t.Fatalf("hangs served = %d, want >= 5", served)
	}

	// Releasing the hang must let every parked goroutine unwind.
	hung.SetHangQuery(false)
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: timed-out harvests leaked",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The gateway is fully serviceable again.
	hung.ContextAware(true)
	resp, err := fx.g.QueryContext(context.Background(), req)
	if err != nil || resp.ResultSet.Len() != 3 {
		t.Fatalf("post-release query: %v, %v", resp, err)
	}
	for _, s := range resp.Sources {
		if s.Err != "" {
			t.Errorf("post-release status %+v", s)
		}
	}
}

// TestLateConnectionAdoptedByPool: when a connect outlives the caller's
// deadline the dial is not abandoned to leak — the eventual connection is
// adopted into the idle pool and serves the next query.
func TestLateConnectionAdoptedByPool(t *testing.T) {
	fx := newFaultFixture(t, Config{HarvestTimeout: 50 * time.Millisecond})
	slow := fx.faults[0]
	slow.SetConnectLatency(250 * time.Millisecond)
	req := QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{fx.urls[0]}, Mode: ModeRealTime}

	resp, err := fx.g.QueryContext(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s := fx.status(t, resp, fx.urls[0]); s.Err != ErrTimedOut {
		t.Fatalf("slow connect status = %q, want %q", s.Err, ErrTimedOut)
	}

	// The dial finishes after the deadline; the pool adopts the connection.
	deadline := time.Now().Add(2 * time.Second)
	for fx.g.Pool().IdleCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("late connection was not adopted (idle = %d)", fx.g.Pool().IdleCount())
		}
		time.Sleep(10 * time.Millisecond)
	}

	slow.SetConnectLatency(0)
	hitsBefore := fx.g.Pool().Stats().Hits
	resp, err = fx.g.QueryContext(context.Background(), req)
	if err != nil || resp.ResultSet.Len() != 1 {
		t.Fatalf("follow-up query: %v, %v", resp, err)
	}
	if hits := fx.g.Pool().Stats().Hits; hits <= hitsBefore {
		t.Errorf("adopted connection not reused (hits %d -> %d)", hitsBefore, hits)
	}
}

// TestRetryRecoversTransientFailure: with one retry configured, an
// every-other-query fault is invisible to clients and surfaces only in the
// Retries counter.
func TestRetryRecoversTransientFailure(t *testing.T) {
	fx := newFaultFixture(t, Config{Retry: RetryOptions{Attempts: 1, Backoff: time.Millisecond}})
	fx.faults[0].SetErrorEvery(2) // inner queries 2, 4, 6... fail
	req := QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{fx.urls[0]}, Mode: ModeRealTime}

	for round := 1; round <= 2; round++ {
		resp, err := fx.g.QueryContext(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if s := fx.status(t, resp, fx.urls[0]); s.Err != "" || s.Rows != 1 {
			t.Fatalf("round %d status = %+v", round, s)
		}
	}
	// Round 2's first attempt failed (query #2) and the retry (query #3)
	// answered, so the client saw two clean responses.
	if n := fx.g.Stats().Retries; n != 1 {
		t.Errorf("Stats.Retries = %d, want 1", n)
	}
	if n := fx.g.Stats().HarvestErrors; n != 0 {
		t.Errorf("Stats.HarvestErrors = %d, want 0 (retry recovered)", n)
	}
}

// hangingRouter is a Global layer whose remote queries block until released,
// modelling an unreachable peer gateway behind a context-free router.
type hangingRouter struct {
	release chan struct{}
}

func (r *hangingRouter) RemoteQuery(site string, req QueryOptions) (*Response, error) {
	<-r.release
	return nil, errors.New("released late")
}

func (r *hangingRouter) Sites() []string { return []string{"siteSlow"} }

// TestAllSitesStragglerTimesOut: an all-sites fan-out with one unreachable
// site still returns the local rows at the deadline, with the straggler site
// reported timed out.
func TestAllSitesStragglerTimesOut(t *testing.T) {
	fx := newFaultFixture(t, Config{})
	router := &hangingRouter{release: make(chan struct{})}
	fx.g.SetGlobalRouter(router)
	t.Cleanup(func() { close(router.release) })

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	resp, err := fx.g.QueryContext(ctx, QueryOptions{Principal: fx.admin,
		SQL: "SELECT * FROM Processor", Site: AllSites, Mode: ModeRealTime})
	if err != nil {
		t.Fatalf("all-sites query failed outright: %v", err)
	}
	if resp.ResultSet.Len() != 3 {
		t.Errorf("rows = %d, want 3 local rows", resp.ResultSet.Len())
	}
	var slow *SourceStatus
	for i := range resp.Sources {
		if resp.Sources[i].Source == "site:siteSlow" {
			slow = &resp.Sources[i]
		}
	}
	if slow == nil {
		t.Fatalf("no status for the hung site: %+v", resp.Sources)
	}
	if !strings.HasPrefix(slow.Err, ErrTimedOut) {
		t.Errorf("hung site Err = %q, want %q prefix", slow.Err, ErrTimedOut)
	}
	if n := fx.g.Stats().Timeouts; n < 1 {
		t.Errorf("Stats.Timeouts = %d, want >= 1", n)
	}
}
