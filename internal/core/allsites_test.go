package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"gridrm/internal/security"
)

// multiRouter serves RemoteQuery from a map of in-process gateways.
type multiRouter struct {
	gateways map[string]*Gateway
}

func (r *multiRouter) RemoteQuery(site string, req QueryOptions) (*Response, error) {
	gw, ok := r.gateways[site]
	if !ok {
		return nil, fmt.Errorf("no such site %q", site)
	}
	return gw.QueryContext(context.Background(), req)
}

func (r *multiRouter) Sites() []string {
	var out []string
	for s := range r.gateways {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func buildVO(t *testing.T) (*fixture, *memDriver) {
	t.Helper()
	f := newFixture(t) // siteA: hosts a1, a2 (load 1.0) and b1 (load 5.0)
	remote := New(Config{Name: "siteZ"})
	t.Cleanup(remote.Close)
	zdrv := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"z1", "z2"}, load: 9.0}
	if err := remote.RegisterDriver(zdrv, zdrv.schema()); err != nil {
		t.Fatal(err)
	}
	if err := remote.AddSource(SourceConfig{URL: "gridrm:mem://z:1"}); err != nil {
		t.Fatal(err)
	}
	f.g.SetGlobalRouter(&multiRouter{gateways: map[string]*Gateway{"siteZ": remote}})
	return f, zdrv
}

func TestAllSitesConsolidation(t *testing.T) {
	f, _ := buildVO(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != AllSites {
		t.Errorf("site = %q", resp.Site)
	}
	// siteA: a1, a2, b1; siteZ: z1, z2.
	if resp.ResultSet.Len() != 5 {
		t.Fatalf("rows = %d; %+v", resp.ResultSet.Len(), resp.Sources)
	}
	var hosts []string
	for resp.ResultSet.Next() {
		h, _ := resp.ResultSet.GetString("HostName")
		hosts = append(hosts, h)
	}
	if strings.Join(hosts, ",") != "a1,a2,b1,z1,z2" {
		t.Errorf("hosts = %v (ORDER BY must apply across sites)", hosts)
	}
	// Source statuses carry their site.
	siteTags := map[string]bool{}
	for _, s := range resp.Sources {
		if !strings.HasPrefix(s.Source, "site:") {
			t.Errorf("status source %q not site-tagged", s.Source)
		}
		siteTags[strings.Fields(s.Source)[0]] = true
	}
	if !siteTags["site:siteA"] || !siteTags["site:siteZ"] {
		t.Errorf("site tags %v", siteTags)
	}
}

func TestAllSitesLimitIsGlobal(t *testing.T) {
	f, _ := buildVO(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName, LoadLast1Min FROM Processor ORDER BY LoadLast1Min DESC LIMIT 2",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 2 {
		t.Fatalf("rows = %d", resp.ResultSet.Len())
	}
	// The two busiest hosts in the whole VO are both at siteZ (load 9).
	for resp.ResultSet.Next() {
		h, _ := resp.ResultSet.GetString("HostName")
		if !strings.HasPrefix(h, "z") {
			t.Errorf("global top-2 includes %q", h)
		}
	}
}

func TestAllSitesSurvivesSiteFailure(t *testing.T) {
	f, zdrv := buildVO(t)
	zdrv.fail.Store(true) // siteZ's agent dies; the site still answers with a failed source
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{
		Principal: f.admin,
		SQL:       "SELECT HostName FROM Processor",
		Site:      AllSites,
		Mode:      ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 3 {
		t.Errorf("rows = %d, want siteA's 3", resp.ResultSet.Len())
	}
	// And if the whole router target vanishes, the site is reported.
	f.g.SetGlobalRouter(&multiRouter{gateways: map[string]*Gateway{}})
	resp, err = f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT HostName FROM Processor",
		Site: AllSites, Mode: ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 3 {
		t.Errorf("local-only rows = %d", resp.ResultSet.Len())
	}
}

func TestAllSitesWithoutRouterIsLocal(t *testing.T) {
	f := newFixture(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin,
		SQL: "SELECT HostName FROM Processor", Site: AllSites, Mode: ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 3 {
		t.Errorf("rows = %d", resp.ResultSet.Len())
	}
}

func TestAllSitesSecurity(t *testing.T) {
	coarse := security.NewCoarsePolicy(security.Deny)
	coarse.Add(security.CoarseRule{Principal: "admin", Op: security.OpQueryRealTime, Decision: security.Allow})
	// No OpGlobalQuery grant: all-sites queries must be refused.
	g := New(Config{Name: "locked", Coarse: coarse})
	defer g.Close()
	_, err := g.QueryContext(context.Background(), QueryOptions{Principal: security.Principal{Name: "admin"},
		SQL: "SELECT * FROM Processor", Site: AllSites})
	if err == nil {
		t.Error("all-sites query without global grant succeeded")
	}
}

func TestAllSitesBadSQL(t *testing.T) {
	f, _ := buildVO(t)
	if _, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "junk", Site: AllSites}); err == nil {
		t.Error("bad SQL accepted")
	}
}
