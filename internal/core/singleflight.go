package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/resultset"
)

// flightResult is the outcome one coalesced harvest shares with its
// followers.
type flightResult struct {
	rs         *resultset.ResultSet
	driverName string
	at         time.Time
	err        error
}

// flight is one in-progress harvest; done is closed once res is final.
type flight struct {
	done    chan struct{}
	res     flightResult
	waiters atomic.Int64
}

// flightGroup coalesces concurrent harvests of the same key — (source URL,
// canonical harvest SQL) — so N cache-missing queries cost the data source
// one harvest, the intrusion limit the paper's cache exists for (§4).
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]*flight)}
}

// do executes fn once per key among concurrent callers. The first caller
// (the leader) runs fn; every other caller waits for the leader's result —
// receiving an independent-cursor clone — or its own ctx deadline,
// whichever comes first. A waiter whose leader failed with a context error
// while the waiter's own deadline still allows a harvest starts over,
// possibly as the new leader, so one client giving up cannot fail the
// others. shared reports whether the caller received another caller's
// harvest.
func (fg *flightGroup) do(ctx context.Context, key string, fn func() flightResult) (res flightResult, shared bool) {
	for {
		fg.mu.Lock()
		if f, ok := fg.inflight[key]; ok {
			f.waiters.Add(1)
			fg.mu.Unlock()
			select {
			case <-f.done:
				r := f.res
				if r.err != nil {
					if (errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded)) && ctx.Err() == nil {
						continue
					}
					return flightResult{driverName: r.driverName, at: r.at, err: r.err}, true
				}
				return flightResult{rs: r.rs.Clone(), driverName: r.driverName, at: r.at}, true
			case <-ctx.Done():
				return flightResult{err: ctx.Err()}, false
			}
		}
		f := &flight{done: make(chan struct{})}
		fg.inflight[key] = f
		fg.mu.Unlock()

		f.res = fn()

		fg.mu.Lock()
		delete(fg.inflight, key)
		fg.mu.Unlock()
		close(f.done)
		return f.res, false
	}
}

// totalWaiters reports how many followers are currently blocked on
// in-flight harvests, across all keys. It exists so coalescing tests can
// synchronise on "the followers have joined the flight" instead of
// sleeping and hoping the scheduler ran them.
func (fg *flightGroup) totalWaiters() int64 {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	var n int64
	for _, f := range fg.inflight {
		n += f.waiters.Load()
	}
	return n
}
