package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/resultset"
	"gridrm/internal/security"
)

// TestAllSourcesFailing: a query where every source errors still returns a
// well-formed (empty) consolidated response with per-source diagnostics —
// partial failure must never become total failure.
func TestAllSourcesFailing(t *testing.T) {
	f := newFixture(t)
	f.drv.fail.Store(true)
	f.drv2.fail.Store(true)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Mode: ModeRealTime})
	if err != nil {
		t.Fatalf("total failure escalated: %v", err)
	}
	if resp.ResultSet.Len() != 0 {
		t.Errorf("rows = %d", resp.ResultSet.Len())
	}
	for _, s := range resp.Sources {
		if s.Err == "" {
			t.Errorf("source %s silent about failure", s.Source)
		}
	}
	if f.g.Stats().HarvestErrors != 2 {
		t.Errorf("harvest errors = %d", f.g.Stats().HarvestErrors)
	}
}

// TestRecoveryAfterFailure: once the agent recovers, the same source works
// again without gateway intervention (the pool discarded the dead conn).
func TestRecoveryAfterFailure(t *testing.T) {
	f := newFixture(t)
	f.drv.fail.Store(true)
	_ = mustQuery(t, f, ModeRealTime)
	f.drv.fail.Store(false)
	resp := mustQuery(t, f, ModeRealTime)
	for _, s := range resp.Sources {
		if s.Source == f.urlA && s.Err != "" {
			t.Errorf("recovered source still failing: %s", s.Err)
		}
	}
	info, _ := f.g.Source(f.urlA)
	if info.LastError != "" {
		t.Errorf("health not cleared after recovery: %q", info.LastError)
	}
}

func mustQuery(t *testing.T, f *fixture, mode Mode) *Response {
	t.Helper()
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// malformedDriver returns ResultSets whose shape does not match the GLUE
// group — a buggy third-party plug-in.
type malformedDriver struct{}

func (malformedDriver) Name() string { return "jdbc-broken" }
func (malformedDriver) AcceptsURL(u string) bool {
	parsed, err := driver.ParseURL(u)
	return err == nil && parsed.Protocol == "broken"
}
func (malformedDriver) Connect(url string, _ driver.Properties) (driver.Conn, error) {
	return &malformedConn{url: url}, nil
}

type malformedConn struct {
	driver.UnimplementedConn
	url string
}

func (c *malformedConn) URL() string                           { return c.url }
func (c *malformedConn) Driver() string                        { return "jdbc-broken" }
func (c *malformedConn) Ping() error                           { return nil }
func (c *malformedConn) CreateStatement() (driver.Stmt, error) { return malformedStmt{}, nil }

type malformedStmt struct{ driver.UnimplementedStmt }

func (malformedStmt) ExecuteQuery(string) (*resultset.ResultSet, error) {
	meta, _ := resultset.NewMetadata([]resultset.Column{{Name: "Wrong"}})
	return resultset.NewBuilder(meta).Append("shape").Build()
}

// TestMalformedDriverIsolated: a driver that returns a non-canonical shape
// is reported against its source; other sources still answer.
func TestMalformedDriverIsolated(t *testing.T) {
	f := newFixture(t)
	broken := malformedDriver{}
	if err := f.g.RegisterDriver(broken, f.drv.schema()); err == nil {
		t.Fatal("schema name mismatch accepted")
	}
	ds := f.drv.schema()
	ds.Driver = "jdbc-broken"
	if err := f.g.RegisterDriver(broken, ds); err != nil {
		t.Fatal(err)
	}
	if err := f.g.AddSource(SourceConfig{URL: "gridrm:broken://x:1"}); err != nil {
		t.Fatal(err)
	}
	resp := mustQuery(t, f, ModeRealTime)
	if resp.ResultSet.Len() != 3 {
		t.Errorf("healthy rows = %d", resp.ResultSet.Len())
	}
	var brokenStatus *SourceStatus
	for i := range resp.Sources {
		if resp.Sources[i].Source == "gridrm:broken://x:1" {
			brokenStatus = &resp.Sources[i]
		}
	}
	if brokenStatus == nil || !strings.Contains(brokenStatus.Err, "merge") {
		t.Errorf("broken driver not isolated: %+v", brokenStatus)
	}
}

// TestConcurrentQueriesAndManagement: queries race driver/source
// management without corruption (runtime mutability claim of §2).
func TestConcurrentQueriesAndManagement(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			url := "gridrm:mem://extra:1"
			_ = f.g.AddSource(SourceConfig{URL: url})
			_ = f.g.RemoveSource(url)
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin,
			SQL: "SELECT * FROM Processor", Mode: ModeRealTime}); err != nil {
			t.Errorf("query %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestCloseIsIdempotentAndFinal: Close twice, then queries fail cleanly —
// no panics, no goroutine leaks.
func TestCloseIsIdempotentAndFinal(t *testing.T) {
	now := time.Unix(0, 0)
	g := New(Config{Name: "closing", Clock: func() time.Time { return now }})
	d := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"h"}}
	_ = g.RegisterDriver(d, d.schema())
	_ = g.AddSource(SourceConfig{URL: "gridrm:mem://a:1"})
	if _, err := g.QueryContext(context.Background(), QueryOptions{Principal: security.Principal{Name: "x"},
		SQL: "SELECT * FROM Processor", Mode: ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close()
}
