package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
)

// memDriver is an in-memory driver serving Processor and Memory rows for a
// fixed host list; per-URL failure can be injected.
type memDriver struct {
	name     string
	proto    string
	hosts    []string
	load     float64
	fail     atomic.Bool
	harvests atomic.Int64
}

func (d *memDriver) Name() string { return d.name }

func (d *memDriver) Version() string { return "1.0-test" }

func (d *memDriver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == d.proto
}

func (d *memDriver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	if d.fail.Load() {
		return nil, fmt.Errorf("%s: unreachable", d.name)
	}
	return &memConn{d: d, url: url}, nil
}

func (d *memDriver) schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: d.name,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "LoadLast1Min", Native: "load"},
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "RAMSize", Native: "ram"},
			}},
		},
	}
}

type memConn struct {
	driver.UnimplementedConn
	d   *memDriver
	url string
}

func (c *memConn) URL() string    { return c.url }
func (c *memConn) Driver() string { return c.d.name }
func (c *memConn) Ping() error {
	if c.d.fail.Load() {
		return errors.New("gone")
	}
	return nil
}
func (c *memConn) CreateStatement() (driver.Stmt, error) { return &memStmt{c: c}, nil }

type memStmt struct {
	driver.UnimplementedStmt
	c *memConn
}

func (s *memStmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.c.d.fail.Load() {
		return nil, errors.New("agent died mid-query")
	}
	s.c.d.harvests.Add(1)
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("memdrv: unsupported table %q", q.Table)
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, h := range s.c.d.hosts {
		row := make([]any, len(g.Fields))
		switch g.Name {
		case glue.GroupProcessor:
			row[g.FieldIndex("HostName")] = h
			row[g.FieldIndex("LoadLast1Min")] = s.c.d.load
		case glue.GroupMemory:
			row[g.FieldIndex("HostName")] = h
			row[g.FieldIndex("RAMSize")] = int64(1024)
		default:
			return nil, fmt.Errorf("memdrv: unsupported table %q", q.Table)
		}
		b.Append(row...)
	}
	full, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}

type fixture struct {
	g     *Gateway
	drv   *memDriver
	drv2  *memDriver
	now   *time.Time
	urlA  string
	urlB  string
	admin security.Principal
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	now := time.Unix(50000, 0)
	f := &fixture{
		now:   &now,
		urlA:  "gridrm:mem://a:1",
		urlB:  "gridrm:mem2://b:1",
		admin: security.Principal{Name: "admin", Roles: []string{"operator"}},
	}
	f.g = New(Config{Name: "siteA", Clock: func() time.Time { return *f.now }})
	t.Cleanup(f.g.Close)
	f.drv = &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"a1", "a2"}, load: 1.0}
	f.drv2 = &memDriver{name: "jdbc-mem2", proto: "mem2", hosts: []string{"b1"}, load: 5.0}
	if err := f.g.RegisterDriver(f.drv, f.drv.schema()); err != nil {
		t.Fatal(err)
	}
	if err := f.g.RegisterDriver(f.drv2, f.drv2.schema()); err != nil {
		t.Fatal(err)
	}
	if err := f.g.AddSource(SourceConfig{URL: f.urlA, Description: "site A agent"}); err != nil {
		t.Fatal(err)
	}
	if err := f.g.AddSource(SourceConfig{URL: f.urlB}); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) query(t *testing.T, sql string, mode Mode) *Response {
	t.Helper()
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: sql, Mode: mode})
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return resp
}

func TestQueryConsolidatesSources(t *testing.T) {
	f := newFixture(t)
	resp := f.query(t, "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName", ModeRealTime)
	rs := resp.ResultSet
	if rs.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (2 from A, 1 from B)", rs.Len())
	}
	var hosts []string
	for rs.Next() {
		h, _ := rs.GetString("HostName")
		hosts = append(hosts, h)
	}
	if strings.Join(hosts, ",") != "a1,a2,b1" {
		t.Errorf("hosts = %v", hosts)
	}
	if len(resp.Sources) != 2 {
		t.Fatalf("source statuses = %d", len(resp.Sources))
	}
	for _, s := range resp.Sources {
		if s.Err != "" || s.Cached {
			t.Errorf("status %+v", s)
		}
	}
}

func TestQueryAppliesWhereOrderLimit(t *testing.T) {
	f := newFixture(t)
	resp := f.query(t, "SELECT HostName FROM Processor WHERE LoadLast1Min > 2 LIMIT 1", ModeRealTime)
	if resp.ResultSet.Len() != 1 {
		t.Fatalf("rows = %d", resp.ResultSet.Len())
	}
	resp.ResultSet.Next()
	if h, _ := resp.ResultSet.GetString("HostName"); h != "b1" {
		t.Errorf("host = %q", h)
	}
	// NULL rule: unmapped Model column is NULL on every row.
	resp = f.query(t, "SELECT HostName FROM Processor WHERE Model IS NULL", ModeRealTime)
	if resp.ResultSet.Len() != 3 {
		t.Errorf("NULL-model rows = %d", resp.ResultSet.Len())
	}
}

func TestCachedModeLimitsIntrusion(t *testing.T) {
	f := newFixture(t)
	f.query(t, "SELECT * FROM Processor", ModeCached)
	if f.drv.harvests.Load() != 1 {
		t.Fatalf("first query harvests = %d", f.drv.harvests.Load())
	}
	// Different client SQL on the same group shares the harvest cache.
	f.query(t, "SELECT HostName FROM Processor WHERE LoadLast1Min < 99", ModeCached)
	if f.drv.harvests.Load() != 1 {
		t.Errorf("cached query re-harvested (%d)", f.drv.harvests.Load())
	}
	if f.g.Stats().CacheServed != 2 { // both sources served from cache
		t.Errorf("cache served = %d", f.g.Stats().CacheServed)
	}
	// Real-time forces a refresh.
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	if f.drv.harvests.Load() != 2 {
		t.Errorf("real-time did not re-harvest (%d)", f.drv.harvests.Load())
	}
	// Cache expiry forces a refresh.
	*f.now = f.now.Add(time.Minute)
	f.query(t, "SELECT * FROM Processor", ModeCached)
	if f.drv.harvests.Load() != 3 {
		t.Errorf("expired cache not refreshed (%d)", f.drv.harvests.Load())
	}
}

func TestCachedStatusReportsAge(t *testing.T) {
	f := newFixture(t)
	f.query(t, "SELECT * FROM Memory", ModeRealTime)
	harvestTime := *f.now
	*f.now = f.now.Add(time.Second)
	resp := f.query(t, "SELECT * FROM Memory", ModeCached)
	for _, s := range resp.Sources {
		if !s.Cached {
			t.Errorf("source %s not served from cache", s.Source)
		}
		if !s.HarvestedAt.Equal(harvestTime) {
			t.Errorf("harvested at %v, want %v", s.HarvestedAt, harvestTime)
		}
		if s.Driver == "" {
			t.Errorf("cached status lost driver name")
		}
	}
}

func TestSourceFailureIsPartial(t *testing.T) {
	f := newFixture(t)
	f.drv2.fail.Store(true)
	resp := f.query(t, "SELECT * FROM Processor", ModeRealTime)
	if resp.ResultSet.Len() != 2 {
		t.Errorf("rows = %d, want 2 from healthy source", resp.ResultSet.Len())
	}
	var failed *SourceStatus
	for i := range resp.Sources {
		if resp.Sources[i].Source == f.urlB {
			failed = &resp.Sources[i]
		}
	}
	if failed == nil || failed.Err == "" {
		t.Fatalf("failing source not reported: %+v", resp.Sources)
	}
	// Health is visible in the management view.
	info, _ := f.g.Source(f.urlB)
	if info.LastError == "" {
		t.Error("source info missing LastError")
	}
	// A poll-failed status event was published.
	f.g.Events().Drain()
	evs := f.g.Events().History(event.Filter{Name: "poll-failed"}, time.Time{})
	if len(evs) != 1 || evs[0].Source != f.urlB {
		t.Errorf("poll-failed events = %v", evs)
	}
	if f.g.Stats().HarvestErrors != 1 {
		t.Errorf("harvest errors = %d", f.g.Stats().HarvestErrors)
	}
}

func TestExplicitSourcesAndUnknownSource(t *testing.T) {
	f := newFixture(t)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{f.urlA}, Mode: ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 2 {
		t.Errorf("restricted rows = %d", resp.ResultSet.Len())
	}
	_, err = f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{"gridrm:mem://ghost:1"}})
	if err == nil {
		t.Error("unknown source accepted")
	}
}

func TestUnknownGroupAndBadSQL(t *testing.T) {
	f := newFixture(t)
	if _, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Nope"}); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELEC nonsense"}); err == nil {
		t.Error("bad SQL accepted")
	}
	if f.g.Stats().QueryErrors != 2 {
		t.Errorf("query errors = %d", f.g.Stats().QueryErrors)
	}
}

func TestNoSourceSupportsGroup(t *testing.T) {
	f := newFixture(t)
	_, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM NetworkElement"})
	if err == nil {
		t.Error("group with no sources accepted")
	}
}

func TestHistoricalQuery(t *testing.T) {
	f := newFixture(t)
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	*f.now = f.now.Add(10 * time.Second)
	f.query(t, "SELECT * FROM Processor", ModeRealTime)
	resp := f.query(t, "SELECT * FROM Processor", ModeHistorical)
	// 2 harvests × 3 rows.
	if resp.ResultSet.Len() != 6 {
		t.Fatalf("historical rows = %d", resp.ResultSet.Len())
	}
	meta := resp.ResultSet.Metadata()
	if meta.ColumnIndex("SourceURL") < 0 || meta.ColumnIndex("SampledAt") < 0 {
		t.Error("provenance columns missing")
	}
	// Window filtering via Since.
	resp2, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor",
		Mode: ModeHistorical, Since: f.now.Add(-5 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ResultSet.Len() != 3 {
		t.Errorf("windowed rows = %d", resp2.ResultSet.Len())
	}
	// Source-filtered history.
	resp3, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor",
		Mode: ModeHistorical, Sources: []string{f.urlA}})
	if err != nil {
		t.Fatal(err)
	}
	if resp3.ResultSet.Len() != 4 {
		t.Errorf("source history rows = %d", resp3.ResultSet.Len())
	}
}

func TestHistoryDisabled(t *testing.T) {
	now := time.Unix(1000, 0)
	g := New(Config{Name: "x", DisableHistory: true, Clock: func() time.Time { return now }})
	defer g.Close()
	d := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"h"}}
	_ = g.RegisterDriver(d, d.schema())
	_ = g.AddSource(SourceConfig{URL: "gridrm:mem://a:1"})
	if _, err := g.QueryContext(context.Background(), QueryOptions{SQL: "SELECT * FROM Processor", Mode: ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	resp, err := g.QueryContext(context.Background(), QueryOptions{SQL: "SELECT * FROM Processor", Mode: ModeHistorical})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 0 {
		t.Error("history recorded despite DisableHistory")
	}
}

func TestCoarseSecurity(t *testing.T) {
	coarse := security.NewCoarsePolicy(security.Deny)
	coarse.Add(security.CoarseRule{Principal: "admin", Decision: security.Allow})
	now := time.Unix(1000, 0)
	g := New(Config{Name: "x", Coarse: coarse, Clock: func() time.Time { return now }})
	defer g.Close()
	d := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"h"}}
	_ = g.RegisterDriver(d, d.schema())
	_ = g.AddSource(SourceConfig{URL: "gridrm:mem://a:1"})
	_, err := g.QueryContext(context.Background(), QueryOptions{Principal: security.Principal{Name: "mallory"}, SQL: "SELECT * FROM Processor"})
	var pe *PermissionError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PermissionError", err)
	}
	if _, err := g.QueryContext(context.Background(), QueryOptions{Principal: security.Principal{Name: "admin"}, SQL: "SELECT * FROM Processor"}); err != nil {
		t.Errorf("admin denied: %v", err)
	}
	if g.Stats().Denied != 1 {
		t.Errorf("denied = %d", g.Stats().Denied)
	}
}

func TestFineSecurityPerSource(t *testing.T) {
	fine := security.NewFinePolicy(security.Allow)
	fine.Add(security.FineRule{Principal: "guest", Source: "gridrm:mem2://%", Decision: security.Deny})
	now := time.Unix(1000, 0)
	f := &fixture{now: &now, urlA: "gridrm:mem://a:1", urlB: "gridrm:mem2://b:1",
		admin: security.Principal{Name: "admin"}}
	f.g = New(Config{Name: "x", Fine: fine, Clock: func() time.Time { return *f.now }})
	defer f.g.Close()
	f.drv = &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"a1"}}
	f.drv2 = &memDriver{name: "jdbc-mem2", proto: "mem2", hosts: []string{"b1"}}
	_ = f.g.RegisterDriver(f.drv, f.drv.schema())
	_ = f.g.RegisterDriver(f.drv2, f.drv2.schema())
	_ = f.g.AddSource(SourceConfig{URL: f.urlA})
	_ = f.g.AddSource(SourceConfig{URL: f.urlB})

	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: security.Principal{Name: "guest"},
		SQL: "SELECT * FROM Processor", Mode: ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 1 {
		t.Errorf("guest rows = %d, want only source A", resp.ResultSet.Len())
	}
	denied := 0
	for _, s := range resp.Sources {
		if strings.Contains(s.Err, "denied") {
			denied++
		}
	}
	if denied != 1 {
		t.Errorf("denied statuses = %d", denied)
	}
}

func TestDriverManagement(t *testing.T) {
	f := newFixture(t)
	infos := f.g.Drivers()
	if len(infos) != 2 {
		t.Fatalf("drivers = %v", infos)
	}
	if infos[0].Name != "jdbc-mem" || infos[0].Version != "1.0-test" {
		t.Errorf("info %+v", infos[0])
	}
	if len(infos[0].Groups) != 2 {
		t.Errorf("groups %v", infos[0].Groups)
	}
	if err := f.g.DeregisterDriver("jdbc-mem2"); err != nil {
		t.Fatal(err)
	}
	if err := f.g.DeregisterDriver("jdbc-mem2"); err == nil {
		t.Error("double deregister succeeded")
	}
	// Source B is now unservable; queries still work against A.
	resp := f.query(t, "SELECT * FROM Processor", ModeRealTime)
	if resp.ResultSet.Len() != 2 {
		t.Errorf("rows after deregistration = %d", resp.ResultSet.Len())
	}
	// Registration events were published.
	f.g.Events().Drain()
	if evs := f.g.Events().History(event.Filter{Name: "driver-%"}, time.Time{}); len(evs) != 3 {
		t.Errorf("driver events = %d", len(evs))
	}
}

func TestRegisterDriverValidation(t *testing.T) {
	f := newFixture(t)
	d := &memDriver{name: "jdbc-x", proto: "x", hosts: []string{"h"}}
	if err := f.g.RegisterDriver(d, nil); err == nil {
		t.Error("nil schema accepted")
	}
	wrong := d.schema()
	wrong.Driver = "other-name"
	if err := f.g.RegisterDriver(d, wrong); err == nil {
		t.Error("mismatched schema accepted")
	}
	// Duplicate driver registration must roll the schema back.
	dup := &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"h"}}
	if err := f.g.RegisterDriver(dup, dup.schema()); err == nil {
		t.Error("duplicate driver accepted")
	}
}

func TestSourceManagement(t *testing.T) {
	f := newFixture(t)
	if err := f.g.AddSource(SourceConfig{URL: f.urlA}); err == nil {
		t.Error("duplicate source accepted")
	}
	if err := f.g.AddSource(SourceConfig{URL: "junk"}); err == nil {
		t.Error("bad URL accepted")
	}
	if err := f.g.AddSource(SourceConfig{URL: "gridrm:mem://c:1", Drivers: []string{"ghost"}}); err == nil {
		t.Error("unknown preferred driver accepted")
	}
	srcs := f.g.Sources()
	// Sorted by URL: "gridrm:mem2://..." < "gridrm:mem://..." ('2' < ':').
	if len(srcs) != 2 || srcs[0].URL != f.urlB || srcs[1].URL != f.urlA {
		t.Errorf("sources %v", srcs)
	}
	if err := f.g.RemoveSource(f.urlB); err != nil {
		t.Fatal(err)
	}
	if err := f.g.RemoveSource(f.urlB); err == nil {
		t.Error("double remove accepted")
	}
	if _, ok := f.g.Source(f.urlB); ok {
		t.Error("removed source still visible")
	}
}

func TestStaticPreferenceUsed(t *testing.T) {
	f := newFixture(t)
	// Register a source whose URL has no protocol hint; prefer drv2.
	url := "gridrm://any:1"
	if err := f.g.AddSource(SourceConfig{URL: url, Drivers: []string{"jdbc-mem2"}}); err != nil {
		t.Fatal(err)
	}
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{url}, Mode: ModeRealTime})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sources[0].Driver != "jdbc-mem2" {
		t.Errorf("driver = %q", resp.Sources[0].Driver)
	}
}

func TestPoll(t *testing.T) {
	f := newFixture(t)
	resp, err := f.g.PollContext(context.Background(), f.admin, f.urlA, glue.GroupMemory)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 2 || resp.Sources[0].Cached {
		t.Errorf("poll resp %+v", resp.Sources)
	}
	if f.drv.harvests.Load() != 1 {
		t.Errorf("poll harvests = %d", f.drv.harvests.Load())
	}
}

type fakeRouter struct {
	lastSite string
	resp     *Response
}

func (r *fakeRouter) RemoteQuery(site string, req QueryOptions) (*Response, error) {
	r.lastSite = site
	return r.resp, nil
}

func (r *fakeRouter) Sites() []string { return []string{"siteB"} }

func TestRemoteRouting(t *testing.T) {
	f := newFixture(t)
	if _, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Site: "siteB"}); err == nil {
		t.Error("remote query without router succeeded")
	}
	router := &fakeRouter{resp: &Response{Site: "siteB"}}
	f.g.SetGlobalRouter(router)
	resp, err := f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Site: "siteB"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != "siteB" || router.lastSite != "siteB" {
		t.Errorf("routed to %q, resp site %q", router.lastSite, resp.Site)
	}
	// Local site name short-circuits routing.
	resp, err = f.g.QueryContext(context.Background(), QueryOptions{Principal: f.admin, SQL: "SELECT * FROM Processor", Site: "siteA"})
	if err != nil || resp.Site != "siteA" {
		t.Errorf("local-site query: %v, %v", resp, err)
	}
	if f.g.Stats().Routed != 1 {
		t.Errorf("routed = %d", f.g.Stats().Routed)
	}
}

func TestModeString(t *testing.T) {
	if ModeCached.String() != "cached" || ModeRealTime.String() != "real-time" ||
		ModeHistorical.String() != "historical" || Mode(9).String() != "mode(9)" {
		t.Error("mode names")
	}
}

func TestResponseElapsedAndSQLCanonical(t *testing.T) {
	f := newFixture(t)
	resp := f.query(t, "select   HostName from Processor", ModeRealTime)
	if resp.SQL != "SELECT HostName FROM Processor" {
		t.Errorf("canonical SQL = %q", resp.SQL)
	}
	if resp.Mode != ModeRealTime || resp.Site != "siteA" {
		t.Errorf("resp %+v", resp)
	}
}
