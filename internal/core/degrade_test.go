package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gridrm/internal/event"
	"gridrm/internal/health"
	"gridrm/internal/qcache"
	"gridrm/internal/security"
)

// degradeFixture is a one-source gateway on a fake clock with a short cache
// TTL, so tests can expire the cache and fail the source at will.
type degradeFixture struct {
	g     *Gateway
	drv   *memDriver
	url   string
	now   *time.Time
	admin security.Principal
}

func newDegradeFixture(t *testing.T, cfg Config) *degradeFixture {
	t.Helper()
	now := time.Unix(200000, 0)
	fx := &degradeFixture{now: &now,
		admin: security.Principal{Name: "admin", Roles: []string{"operator"}}}
	cfg.Name = "degradesite"
	cfg.Clock = func() time.Time { return now }
	if cfg.Cache.TTL == 0 {
		cfg.Cache.TTL = 10 * time.Second
	}
	fx.g = New(cfg)
	t.Cleanup(fx.g.Close)
	fx.drv = &memDriver{name: "jdbc-mem", proto: "mem", hosts: []string{"h1"}, load: 1}
	if err := fx.g.RegisterDriver(fx.drv, fx.drv.schema()); err != nil {
		t.Fatal(err)
	}
	fx.url = "gridrm:mem://agent:1"
	if err := fx.g.AddSource(SourceConfig{URL: fx.url}); err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx *degradeFixture) query(t *testing.T, mode Mode) SourceStatus {
	t.Helper()
	resp, err := fx.g.QueryContext(context.Background(), QueryOptions{Principal: fx.admin,
		SQL: "SELECT * FROM Processor", Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Sources) != 1 {
		t.Fatalf("statuses = %+v", resp.Sources)
	}
	return resp.Sources[0]
}

// TestStaleCacheServedOnHarvestFailure is the first degradation tier: the
// cache entry has expired, the live harvest fails, and the gateway serves
// the expired-but-within-grace rows, annotated.
func TestStaleCacheServedOnHarvestFailure(t *testing.T) {
	fx := newDegradeFixture(t, Config{StaleGrace: 10 * time.Minute})

	if s := fx.query(t, ModeCached); s.Err != "" || s.Rows != 1 {
		t.Fatalf("priming query status %+v", s)
	}
	*fx.now = fx.now.Add(30 * time.Second) // past TTL, well within grace
	fx.drv.fail.Store(true)

	s := fx.query(t, ModeCached)
	if s.Degraded != DegradedStaleCache {
		t.Fatalf("Degraded = %q, want %q (status %+v)", s.Degraded, DegradedStaleCache, s)
	}
	if s.Err == "" {
		t.Error("degraded status hides the underlying failure")
	}
	if s.Rows != 1 {
		t.Errorf("degraded rows = %d, want 1", s.Rows)
	}
	if s.Age != 30*time.Second {
		t.Errorf("Age = %s, want 30s", s.Age)
	}
	if n := fx.g.Stats().StaleServes; n != 1 {
		t.Errorf("Stats.StaleServes = %d, want 1", n)
	}

	// Beyond TTL+grace the ladder is dry: unavailable, no rows.
	*fx.now = fx.now.Add(time.Hour)
	fx.g.HistoryStore().Prune() // the priming harvest's history sample ages out
	s = fx.query(t, ModeCached)
	if s.Degraded != "" || s.Rows != 0 {
		t.Errorf("exhausted ladder still served rows: %+v", s)
	}
}

// TestHistoryFallbackWhenCacheDry is the second tier: stale grace disabled,
// so the only fallback is the latest historical sample.
func TestHistoryFallbackWhenCacheDry(t *testing.T) {
	fx := newDegradeFixture(t, Config{StaleGrace: -1})

	if s := fx.query(t, ModeCached); s.Err != "" {
		t.Fatalf("priming query status %+v", s)
	}
	*fx.now = fx.now.Add(30 * time.Second) // cache expired; history MaxAge is 1h
	fx.drv.fail.Store(true)

	s := fx.query(t, ModeCached)
	if s.Degraded != DegradedHistory {
		t.Fatalf("Degraded = %q, want %q (status %+v)", s.Degraded, DegradedHistory, s)
	}
	if s.Rows != 1 || s.Age != 30*time.Second {
		t.Errorf("history fallback rows=%d age=%s", s.Rows, s.Age)
	}
	if n := fx.g.Stats().HistoryFallbacks; n != 1 {
		t.Errorf("Stats.HistoryFallbacks = %d, want 1", n)
	}
}

// TestRealTimeModeFailsHonestly: an explicit real-time poll promised fresh
// rows; it must not serve stale ones.
func TestRealTimeModeFailsHonestly(t *testing.T) {
	fx := newDegradeFixture(t, Config{StaleGrace: 10 * time.Minute})
	fx.query(t, ModeCached)
	*fx.now = fx.now.Add(30 * time.Second)
	fx.drv.fail.Store(true)

	s := fx.query(t, ModeRealTime)
	if s.Degraded != "" || s.Rows != 0 {
		t.Errorf("real-time query degraded: %+v", s)
	}
	if s.Err == "" {
		t.Error("failure not reported")
	}
}

// TestBreakerSkipServesDegraded: an open breaker skips the harvest but the
// client still gets the stale rows.
func TestBreakerSkipServesDegraded(t *testing.T) {
	fx := newDegradeFixture(t, Config{
		StaleGrace: 10 * time.Minute,
		Breaker:    BreakerOptions{Threshold: 1, Cooldown: time.Minute},
	})
	fx.query(t, ModeCached)
	*fx.now = fx.now.Add(30 * time.Second)
	fx.drv.fail.Store(true)
	fx.query(t, ModeCached) // failure opens the breaker (threshold 1)

	s := fx.query(t, ModeCached)
	if s.Err != ErrCircuitOpen {
		t.Fatalf("Err = %q, want %q", s.Err, ErrCircuitOpen)
	}
	if s.Degraded != DegradedStaleCache || s.Rows != 1 {
		t.Errorf("breaker-skipped status %+v, want stale rows", s)
	}
}

// TestPanicContainmentMidQuery is the acceptance scenario: a driver that
// panics mid-query produces a degraded result row and an Alert event, the
// gateway survives, and subsequent queries succeed.
func TestPanicContainmentMidQuery(t *testing.T) {
	for _, ctxAware := range []bool{true, false} {
		name := "legacy shim"
		if ctxAware {
			name = "context-aware"
		}
		t.Run(name, func(t *testing.T) {
			now := time.Unix(300000, 0)
			fx := newFaultFixture(t, Config{
				Clock:          func() time.Time { return now },
				HarvestTimeout: 2 * time.Second, // a deadline forces the legacy shim path
				StaleGrace:     10 * time.Minute,
				Cache:          qcache.Options{TTL: 10 * time.Second},
			})
			faults := fx.faults[0]
			faults.ContextAware(ctxAware)
			req := QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
				Sources: []string{fx.urls[0]}, Mode: ModeCached}

			if resp, err := fx.g.QueryContext(context.Background(), req); err != nil || resp.ResultSet.Len() != 1 {
				t.Fatalf("priming query: %v, %v", resp, err)
			}
			now = now.Add(30 * time.Second)
			faults.SetPanicEveryQuery(1)

			resp, err := fx.g.QueryContext(context.Background(), req)
			if err != nil {
				t.Fatalf("panicking driver escalated to a query error: %v", err)
			}
			s := fx.status(t, resp, fx.urls[0])
			if !strings.Contains(s.Err, "panic") {
				t.Errorf("Err = %q, want a contained panic", s.Err)
			}
			if s.Degraded != DegradedStaleCache || s.Rows != 1 {
				t.Errorf("degraded status %+v, want stale rows", s)
			}
			if resp.ResultSet.Len() != 1 {
				t.Errorf("rows = %d, want the stale row", resp.ResultSet.Len())
			}
			if n := fx.g.Stats().DriverPanics; n != 1 {
				t.Errorf("Stats.DriverPanics = %d, want 1", n)
			}

			fx.g.Events().Drain()
			evs := fx.g.Events().History(event.Filter{Name: "driver-panic"}, time.Time{})
			if len(evs) != 1 {
				t.Fatalf("driver-panic events = %+v, want 1", evs)
			}
			if evs[0].Severity != event.SeverityAlert {
				t.Errorf("severity = %q, want alert", evs[0].Severity)
			}
			if !strings.Contains(evs[0].Detail, "injected panic") ||
				!strings.Contains(evs[0].Detail, "goroutine") {
				t.Errorf("event detail missing panic value or stack:\n%s", evs[0].Detail)
			}

			// The gateway survives and serves fresh rows once the fault clears.
			faults.SetPanicEveryQuery(0)
			now = now.Add(time.Minute)
			resp, err = fx.g.QueryContext(context.Background(), QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
				Sources: []string{fx.urls[0]}, Mode: ModeRealTime})
			if err != nil {
				t.Fatal(err)
			}
			if s := fx.status(t, resp, fx.urls[0]); s.Err != "" || s.Rows != 1 {
				t.Errorf("post-panic query status %+v", s)
			}
		})
	}
}

// TestPanicOnConnectContained: a panic in Driver.Connect is contained at the
// pool's dial boundary and reported like any connect failure.
func TestPanicOnConnectContained(t *testing.T) {
	fx := newFaultFixture(t, Config{})
	fx.faults[0].SetPanicEveryConnect(1)

	resp, err := fx.g.QueryContext(context.Background(), QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{fx.urls[0]}, Mode: ModeRealTime})
	if err != nil {
		t.Fatalf("connect panic escalated: %v", err)
	}
	if s := fx.status(t, resp, fx.urls[0]); !strings.Contains(s.Err, "panic") {
		t.Errorf("Err = %q, want a contained panic", s.Err)
	}
	if n := fx.g.Stats().DriverPanics; n < 1 {
		t.Errorf("Stats.DriverPanics = %d, want >= 1", n)
	}
}

// TestShutdownDrainsInflightQueries: Shutdown waits for running queries,
// then refuses new ones with ErrGatewayClosed.
func TestShutdownDrainsInflightQueries(t *testing.T) {
	fx := newFaultFixture(t, Config{})
	fx.faults[0].SetQueryLatency(150 * time.Millisecond)
	req := QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{fx.urls[0]}, Mode: ModeRealTime}

	type result struct {
		resp *Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := fx.g.QueryContext(context.Background(), req)
		done <- result{resp, err}
	}()
	// Wait for the query to reach the driver before shutting down.
	deadline := time.Now().Add(2 * time.Second)
	for fx.faults[0].Queries() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never reached the driver")
		}
		time.Sleep(time.Millisecond)
	}

	if err := fx.g.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil || r.resp.ResultSet.Len() != 1 {
		t.Fatalf("in-flight query was not drained: %v, %v", r.resp, r.err)
	}

	if _, err := fx.g.QueryContext(context.Background(), req); !errors.Is(err, ErrGatewayClosed) {
		t.Errorf("post-shutdown query err = %v, want ErrGatewayClosed", err)
	}
}

// TestShutdownHonoursDeadline: a query that refuses to finish bounds the
// drain at the caller's deadline.
func TestShutdownHonoursDeadline(t *testing.T) {
	fx := newFaultFixture(t, Config{HarvestTimeout: -1})
	hung := fx.faults[0]
	hung.SetHangQuery(true)
	t.Cleanup(hung.Release)
	req := QueryOptions{Principal: fx.admin, SQL: "SELECT * FROM Processor",
		Sources: []string{fx.urls[0]}, Mode: ModeRealTime}

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = fx.g.QueryContext(context.Background(), req)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for hung.HangsServed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never hung")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := fx.g.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want deadline exceeded", err)
	}
	hung.Release()
	<-done
}

// TestProberRecoversOpenBreaker: the background prober, not user traffic,
// takes a recovered source's breaker through half-open back to closed — and
// respects the cooldown while the breaker is open.
func TestProberRecoversOpenBreaker(t *testing.T) {
	fx := newDegradeFixture(t, Config{
		Breaker: BreakerOptions{Threshold: 1, Cooldown: 30 * time.Second},
	})
	fx.drv.fail.Store(true)
	fx.query(t, ModeRealTime) // failure opens the breaker

	breakerState := func() string {
		t.Helper()
		info, ok := fx.g.Source(fx.url)
		if !ok {
			t.Fatal("source vanished")
		}
		return info.Breaker
	}
	if s := breakerState(); s != "open" {
		t.Fatalf("breaker = %q, want open", s)
	}

	prober := fx.g.Prober()
	// Cooldown not elapsed: the probe is skipped, not counted as a failure
	// (a failure would extend the cooldown forever).
	prober.ProbeAll(context.Background())
	if st := prober.Stats(); st.Skipped != 1 || st.Probes != 0 {
		t.Fatalf("prober stats after skipped sweep = %+v", st)
	}
	if _, ok := prober.Health(fx.url); ok {
		t.Error("skipped probe invented health state")
	}

	// The agent recovers and the cooldown elapses: the next sweep claims the
	// half-open slot and closes the breaker with no client in the loop.
	fx.drv.fail.Store(false)
	*fx.now = fx.now.Add(31 * time.Second)
	prober.ProbeAll(context.Background())
	if s := breakerState(); s != "closed" {
		t.Errorf("breaker after probe = %q, want closed", s)
	}
	h, ok := prober.Health(fx.url)
	if !ok || h.State != "healthy" {
		t.Errorf("health = %+v", h)
	}
	info, _ := fx.g.Source(fx.url)
	if info.Health != "healthy" {
		t.Errorf("SourceInfo.Health = %q", info.Health)
	}

	// The transition surfaced as an event.
	fx.g.Events().Drain()
	evs := fx.g.Events().History(event.Filter{Name: "source-health"}, time.Time{})
	if len(evs) != 1 || !strings.Contains(evs[0].Detail, "healthy") {
		t.Errorf("source-health events = %+v", evs)
	}

	// And a query now reaches the source directly.
	if s := fx.query(t, ModeRealTime); s.Err != "" || s.Rows != 1 {
		t.Errorf("post-recovery query status %+v", s)
	}
}

// TestProberMarksDownSource: consecutive probe failures degrade then down a
// source, with Alert events on each transition.
func TestProberMarksDownSource(t *testing.T) {
	fx := newDegradeFixture(t, Config{
		Breaker: BreakerOptions{Threshold: -1}, // keep probing the dead agent
		Probe:   health.Options{DownAfter: 2},
	})
	fx.query(t, ModeRealTime) // a clean pass: healthy
	prober := fx.g.Prober()
	prober.ProbeAll(context.Background())
	if h, _ := prober.Health(fx.url); h.State != "healthy" {
		t.Fatalf("health = %+v", h)
	}

	fx.drv.fail.Store(true)
	fx.g.Pool().CloseAll() // drop the idle conn so probes must redial
	prober.ProbeAll(context.Background())
	if h, _ := prober.Health(fx.url); h.State != "degraded" {
		t.Fatalf("after 1 failure health = %+v", h)
	}
	prober.ProbeAll(context.Background())
	if h, _ := prober.Health(fx.url); h.State != "down" {
		t.Fatalf("after 2 failures health = %+v", h)
	}

	fx.g.Events().Drain()
	var alerts int
	for _, ev := range fx.g.Events().History(event.Filter{Name: "source-health"}, time.Time{}) {
		if ev.Severity == event.SeverityAlert {
			alerts++
		}
	}
	if alerts != 2 {
		t.Errorf("alert transitions = %d, want 2 (degraded, down)", alerts)
	}
}
