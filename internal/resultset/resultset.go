// Package resultset provides the tabular result model GridRM drivers
// populate and clients consume — the Go analogue of javax.sql.ResultSet and
// ResultSetMetaData in the paper's JDBC-based design ("String queries in,
// ResultSets out", §3).
//
// A ResultSet carries typed column metadata and a row cursor. Typed getters
// coerce between compatible kinds the way JDBC getters do and record
// whether the last value read was NULL (WasNull). ResultSets are built with
// a Builder, which validates each appended row against the column metadata.
package resultset

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"gridrm/internal/glue"
)

// ErrNoRow is returned by getters when the cursor is not positioned on a row.
var ErrNoRow = errors.New("resultset: cursor not on a row")

// ErrNoColumn is returned when a requested column does not exist.
var ErrNoColumn = errors.New("resultset: no such column")

// Column describes one result column.
type Column struct {
	// Name is the column label.
	Name string
	// Kind is the column's value type.
	Kind glue.Kind
	// Unit is the unit of measure, if any.
	Unit string
	// Group is the GLUE group the column originated from, if any.
	Group string
}

// Metadata describes the shape of a ResultSet, in the spirit of JDBC's
// ResultSetMetaData.
type Metadata struct {
	cols  []Column
	index map[string]int
}

// NewMetadata builds Metadata from a column list. Column names must be
// non-empty and unique (case-insensitively).
func NewMetadata(cols []Column) (*Metadata, error) {
	m := &Metadata{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("resultset: column %d has empty name", i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := m.index[key]; dup {
			return nil, fmt.Errorf("resultset: duplicate column %q", c.Name)
		}
		m.index[key] = i
	}
	return m, nil
}

// MetadataForGroup derives Metadata covering the named fields of a GLUE
// group; fields is nil or empty for all fields in canonical order.
func MetadataForGroup(g *glue.Group, fields []string) (*Metadata, error) {
	if len(fields) == 0 {
		fields = g.FieldNames()
	}
	cols := make([]Column, 0, len(fields))
	for _, name := range fields {
		f, ok := g.Field(name)
		if !ok {
			return nil, fmt.Errorf("resultset: group %s has no field %q", g.Name, name)
		}
		cols = append(cols, Column{Name: f.Name, Kind: f.Kind, Unit: f.Unit, Group: g.Name})
	}
	return NewMetadata(cols)
}

// ColumnCount returns the number of columns.
func (m *Metadata) ColumnCount() int { return len(m.cols) }

// Column returns the i-th (0-based) column description.
func (m *Metadata) Column(i int) Column { return m.cols[i] }

// Columns returns a copy of all column descriptions.
func (m *Metadata) Columns() []Column { return append([]Column(nil), m.cols...) }

// ColumnIndex returns the 0-based index of the named column
// (case-insensitive), or -1 if absent.
func (m *Metadata) ColumnIndex(name string) int {
	i, ok := m.index[strings.ToLower(name)]
	if !ok {
		return -1
	}
	return i
}

// ColumnNames returns the column labels in order.
func (m *Metadata) ColumnNames() []string {
	names := make([]string, len(m.cols))
	for i, c := range m.cols {
		names[i] = c.Name
	}
	return names
}

// ResultSet is an in-memory table with a cursor, mirroring the subset of the
// JDBC ResultSet contract GridRM drivers implement.
type ResultSet struct {
	meta    *Metadata
	rows    [][]any
	cursor  int
	wasNull bool
	// Source optionally records the data-source URL the rows came from.
	Source string
	// Fetched optionally records when the rows were harvested.
	Fetched time.Time
}

// New creates an empty ResultSet with the given metadata.
func New(meta *Metadata) *ResultSet {
	return &ResultSet{meta: meta, cursor: -1}
}

// Metadata returns the result's column metadata.
func (rs *ResultSet) Metadata() *Metadata { return rs.meta }

// Len returns the number of rows.
func (rs *ResultSet) Len() int { return len(rs.rows) }

// Next advances the cursor to the next row, returning false past the end.
func (rs *ResultSet) Next() bool {
	if rs.cursor+1 >= len(rs.rows) {
		rs.cursor = len(rs.rows)
		return false
	}
	rs.cursor++
	return true
}

// Reset rewinds the cursor to before the first row.
func (rs *ResultSet) Reset() { rs.cursor = -1; rs.wasNull = false }

// WasNull reports whether the last getter call read a NULL value.
func (rs *ResultSet) WasNull() bool { return rs.wasNull }

// Row returns the current row's raw values (shared, do not mutate).
func (rs *ResultSet) Row() ([]any, error) {
	if rs.cursor < 0 || rs.cursor >= len(rs.rows) {
		return nil, ErrNoRow
	}
	return rs.rows[rs.cursor], nil
}

// RowAt returns the i-th row's raw values without moving the cursor.
func (rs *ResultSet) RowAt(i int) []any { return rs.rows[i] }

func (rs *ResultSet) value(col string) (any, error) {
	row, err := rs.Row()
	if err != nil {
		return nil, err
	}
	i := rs.meta.ColumnIndex(col)
	if i < 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	v := row[i]
	rs.wasNull = v == nil
	return v, nil
}

// GetString returns the named column of the current row as a string.
// Non-string values are formatted; NULL yields "".
func (rs *ResultSet) GetString(col string) (string, error) {
	v, err := rs.value(col)
	if err != nil {
		return "", err
	}
	switch x := v.(type) {
	case nil:
		return "", nil
	case string:
		return x, nil
	case int64:
		return strconv.FormatInt(x, 10), nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case bool:
		return strconv.FormatBool(x), nil
	case time.Time:
		return x.Format(time.RFC3339), nil
	}
	return fmt.Sprint(v), nil
}

// GetInt returns the named column of the current row as an int64.
// Floats are truncated; numeric strings are parsed; NULL yields 0.
func (rs *ResultSet) GetInt(col string) (int64, error) {
	v, err := rs.value(col)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case nil:
		return 0, nil
	case int64:
		return x, nil
	case float64:
		return int64(x), nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	case string:
		n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("resultset: column %q: %w", col, err)
		}
		return n, nil
	}
	return 0, fmt.Errorf("resultset: column %q: cannot convert %T to int", col, v)
}

// GetFloat returns the named column of the current row as a float64.
// Ints widen; numeric strings are parsed; NULL yields 0.
func (rs *ResultSet) GetFloat(col string) (float64, error) {
	v, err := rs.value(col)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case nil:
		return 0, nil
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("resultset: column %q: %w", col, err)
		}
		return f, nil
	}
	return 0, fmt.Errorf("resultset: column %q: cannot convert %T to float", col, v)
}

// GetBool returns the named column of the current row as a bool.
// Nonzero numbers are true; strings are parsed; NULL yields false.
func (rs *ResultSet) GetBool(col string) (bool, error) {
	v, err := rs.value(col)
	if err != nil {
		return false, err
	}
	switch x := v.(type) {
	case nil:
		return false, nil
	case bool:
		return x, nil
	case int64:
		return x != 0, nil
	case float64:
		return x != 0, nil
	case string:
		b, err := strconv.ParseBool(strings.TrimSpace(x))
		if err != nil {
			return false, fmt.Errorf("resultset: column %q: %w", col, err)
		}
		return b, nil
	}
	return false, fmt.Errorf("resultset: column %q: cannot convert %T to bool", col, v)
}

// GetTime returns the named column of the current row as a time.Time.
// RFC 3339 strings are parsed; NULL yields the zero time.
func (rs *ResultSet) GetTime(col string) (time.Time, error) {
	v, err := rs.value(col)
	if err != nil {
		return time.Time{}, err
	}
	switch x := v.(type) {
	case nil:
		return time.Time{}, nil
	case time.Time:
		return x, nil
	case string:
		t, err := time.Parse(time.RFC3339, x)
		if err != nil {
			return time.Time{}, fmt.Errorf("resultset: column %q: %w", col, err)
		}
		return t, nil
	}
	return time.Time{}, fmt.Errorf("resultset: column %q: cannot convert %T to time", col, v)
}

// Builder accumulates validated rows for a ResultSet.
type Builder struct {
	rs  *ResultSet
	err error
}

// NewBuilder creates a Builder producing a ResultSet with the given metadata.
func NewBuilder(meta *Metadata) *Builder {
	return &Builder{rs: New(meta)}
}

// Append adds a row; the value count must match the column count and each
// value's dynamic type must match its column kind (nil is NULL). The first
// error sticks and is reported by Build.
func (b *Builder) Append(row ...any) *Builder {
	if b.err != nil {
		return b
	}
	m := b.rs.meta
	if len(row) != m.ColumnCount() {
		b.err = fmt.Errorf("resultset: row has %d values, want %d", len(row), m.ColumnCount())
		return b
	}
	for i, v := range row {
		c := m.Column(i)
		if err := glue.CheckValue(glue.Field{Name: c.Name, Kind: c.Kind}, v); err != nil {
			b.err = err
			return b
		}
	}
	b.rs.rows = append(b.rs.rows, append([]any(nil), row...))
	return b
}

// Build returns the accumulated ResultSet or the first append error.
func (b *Builder) Build() (*ResultSet, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.rs, nil
}

// Clone returns a ResultSet sharing this one's (immutable) rows with an
// independent, reset cursor. Caches hand out clones so concurrent readers
// do not fight over cursor state.
func (rs *ResultSet) Clone() *ResultSet {
	clone := *rs
	clone.cursor = -1
	clone.wasNull = false
	return &clone
}

// Project returns a new ResultSet containing only the named columns, in the
// given order. The cursor of the result is reset.
func (rs *ResultSet) Project(cols []string) (*ResultSet, error) {
	idx := make([]int, len(cols))
	newCols := make([]Column, len(cols))
	for i, name := range cols {
		j := rs.meta.ColumnIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("%w: %q", ErrNoColumn, name)
		}
		idx[i] = j
		newCols[i] = rs.meta.Column(j)
	}
	meta, err := NewMetadata(newCols)
	if err != nil {
		return nil, err
	}
	out := New(meta)
	out.Source = rs.Source
	out.Fetched = rs.Fetched
	for _, row := range rs.rows {
		nr := make([]any, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.rows = append(out.rows, nr)
	}
	return out, nil
}

// Filter returns a new ResultSet containing the rows for which keep returns
// true. The predicate receives raw row values in column order.
func (rs *ResultSet) Filter(keep func(row []any) bool) *ResultSet {
	out := New(rs.meta)
	out.Source = rs.Source
	out.Fetched = rs.Fetched
	for _, row := range rs.rows {
		if keep(row) {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// Limit returns a new ResultSet with at most n rows (n < 0 means no limit).
func (rs *ResultSet) Limit(n int) *ResultSet {
	if n < 0 || n >= len(rs.rows) {
		clone := *rs
		clone.cursor = -1
		return &clone
	}
	out := New(rs.meta)
	out.Source = rs.Source
	out.Fetched = rs.Fetched
	// Full slice expression: the limited set must not share spare capacity
	// with the parent, or a later Merge into it would clobber parent rows.
	out.rows = rs.rows[:n:n]
	return out
}

// SortBy sorts rows (stably) by the named column; desc reverses the order.
// NULLs sort first ascending, last descending.
func (rs *ResultSet) SortBy(col string, desc bool) error {
	i := rs.meta.ColumnIndex(col)
	if i < 0 {
		return fmt.Errorf("%w: %q", ErrNoColumn, col)
	}
	sort.SliceStable(rs.rows, func(a, b int) bool {
		less := CompareValues(rs.rows[a][i], rs.rows[b][i]) < 0
		if desc {
			return CompareValues(rs.rows[b][i], rs.rows[a][i]) < 0
		}
		return less
	})
	rs.Reset()
	return nil
}

// SortedBy returns a new ResultSet with the rows sorted by the named
// column, leaving rs untouched. Only the outer row slice is copied; the
// rows themselves are shared, so this is the copy-on-write companion to
// SortBy for result sets whose rows other readers may still hold.
func (rs *ResultSet) SortedBy(col string, desc bool) (*ResultSet, error) {
	out := New(rs.meta)
	out.Source = rs.Source
	out.Fetched = rs.Fetched
	out.rows = append(make([][]any, 0, len(rs.rows)), rs.rows...)
	if err := out.SortBy(col, desc); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge appends the rows of other, which must have the same column names
// and kinds in the same order, into rs.
func (rs *ResultSet) Merge(other *ResultSet) error {
	if other.meta.ColumnCount() != rs.meta.ColumnCount() {
		return fmt.Errorf("resultset: merge column count mismatch: %d vs %d",
			other.meta.ColumnCount(), rs.meta.ColumnCount())
	}
	for i := 0; i < rs.meta.ColumnCount(); i++ {
		if !strings.EqualFold(rs.meta.Column(i).Name, other.meta.Column(i).Name) {
			return fmt.Errorf("resultset: merge column %d mismatch: %q vs %q",
				i, rs.meta.Column(i).Name, other.meta.Column(i).Name)
		}
		if rs.meta.Column(i).Kind != other.meta.Column(i).Kind {
			return fmt.Errorf("resultset: merge column %q kind mismatch: %s vs %s",
				rs.meta.Column(i).Name, rs.meta.Column(i).Kind, other.meta.Column(i).Kind)
		}
	}
	rs.rows = append(rs.rows, other.rows...)
	return nil
}

// GroupKey encodes the values of row at the given column indexes into a
// string usable as a grouping map key. Values are tagged by type so that,
// say, int64(1) and "1" produce distinct keys, and joined with a separator
// that cannot occur inside the encoded forms.
func GroupKey(row []any, cols []int) string {
	var b strings.Builder
	for _, i := range cols {
		switch v := row[i].(type) {
		case nil:
			b.WriteString("n\x00")
		case string:
			b.WriteString("s")
			b.WriteString(strconv.Itoa(len(v)))
			b.WriteString(":")
			b.WriteString(v)
			b.WriteString("\x00")
		case int64:
			b.WriteString("i")
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteString("\x00")
		case float64:
			b.WriteString("f")
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteString("\x00")
		case bool:
			b.WriteString("b")
			b.WriteString(strconv.FormatBool(v))
			b.WriteString("\x00")
		case time.Time:
			b.WriteString("t")
			b.WriteString(strconv.FormatInt(v.UnixNano(), 10))
			b.WriteString("\x00")
		default:
			b.WriteString("?")
			fmt.Fprintf(&b, "%v", v)
			b.WriteString("\x00")
		}
	}
	return b.String()
}

// CompareValues orders two raw values. NULL (nil) sorts before everything;
// numbers compare numerically across int64/float64; strings, bools and
// times compare naturally; mismatched kinds fall back to formatted strings.
func CompareValues(a, b any) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	if fa, ok := toFloat(a); ok {
		if fb, ok := toFloat(b); ok {
			switch {
			case fa < fb:
				return -1
			case fa > fb:
				return 1
			}
			return 0
		}
	}
	switch x := a.(type) {
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case !x && y:
				return -1
			case x && !y:
				return 1
			}
			return 0
		}
	case time.Time:
		if y, ok := b.(time.Time); ok {
			switch {
			case x.Before(y):
				return -1
			case x.After(y):
				return 1
			}
			return 0
		}
	}
	return strings.Compare(fmt.Sprint(a), fmt.Sprint(b))
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// String renders the ResultSet as a compact aligned table, for logs and CLI
// output. The cursor is not moved.
func (rs *ResultSet) String() string {
	names := rs.meta.ColumnNames()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(rs.rows))
	for r, row := range rs.rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := "NULL"
			if v != nil {
				switch x := v.(type) {
				case float64:
					s = strconv.FormatFloat(x, 'f', 2, 64)
				case time.Time:
					s = x.Format(time.RFC3339)
				default:
					s = fmt.Sprint(v)
				}
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], n)
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
