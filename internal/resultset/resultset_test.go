package resultset

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridrm/internal/glue"
)

func mustMeta(t *testing.T, cols []Column) *Metadata {
	t.Helper()
	m, err := NewMetadata(cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampleRS(t *testing.T) *ResultSet {
	t.Helper()
	m := mustMeta(t, []Column{
		{Name: "HostName", Kind: glue.String},
		{Name: "Load", Kind: glue.Float},
		{Name: "CPUs", Kind: glue.Int},
	})
	rs, err := NewBuilder(m).
		Append("alpha", 0.5, int64(4)).
		Append("beta", 1.5, int64(8)).
		Append("gamma", nil, int64(2)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestMetadataValidation(t *testing.T) {
	if _, err := NewMetadata([]Column{{Name: ""}}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewMetadata([]Column{{Name: "A"}, {Name: "a"}}); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	m := mustMeta(t, []Column{{Name: "X", Kind: glue.Int, Unit: "MB"}})
	if m.ColumnCount() != 1 || m.Column(0).Unit != "MB" {
		t.Errorf("metadata misbuilt: %+v", m.Columns())
	}
	if m.ColumnIndex("x") != 0 || m.ColumnIndex("y") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestMetadataForGroup(t *testing.T) {
	g := glue.MustLookup(glue.GroupProcessor)
	m, err := MetadataForGroup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ColumnCount() != len(g.Fields) {
		t.Errorf("all-field metadata has %d cols, want %d", m.ColumnCount(), len(g.Fields))
	}
	if m.Column(0).Group != g.Name {
		t.Errorf("column group = %q", m.Column(0).Group)
	}
	m2, err := MetadataForGroup(g, []string{"loadlast1min", "HostName"})
	if err != nil {
		t.Fatal(err)
	}
	// Canonical names are restored regardless of request case.
	if m2.Column(0).Name != "LoadLast1Min" || m2.Column(1).Name != "HostName" {
		t.Errorf("canonicalisation failed: %v", m2.ColumnNames())
	}
	if _, err := MetadataForGroup(g, []string{"Bogus"}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestCursorProtocol(t *testing.T) {
	rs := sampleRS(t)
	if _, err := rs.Row(); !errors.Is(err, ErrNoRow) {
		t.Errorf("Row before Next: %v", err)
	}
	count := 0
	for rs.Next() {
		count++
		if _, err := rs.Row(); err != nil {
			t.Errorf("Row on row %d: %v", count, err)
		}
	}
	if count != 3 {
		t.Errorf("iterated %d rows, want 3", count)
	}
	if rs.Next() {
		t.Error("Next past end returned true")
	}
	if _, err := rs.Row(); !errors.Is(err, ErrNoRow) {
		t.Error("Row past end should fail")
	}
	rs.Reset()
	if !rs.Next() {
		t.Error("Next after Reset failed")
	}
}

func TestTypedGettersAndCoercion(t *testing.T) {
	rs := sampleRS(t)
	rs.Next() // alpha, 0.5, 4
	if s, _ := rs.GetString("HostName"); s != "alpha" {
		t.Errorf("GetString = %q", s)
	}
	if f, _ := rs.GetFloat("Load"); f != 0.5 {
		t.Errorf("GetFloat = %v", f)
	}
	if n, _ := rs.GetInt("CPUs"); n != 4 {
		t.Errorf("GetInt = %d", n)
	}
	// Cross-kind coercions.
	if s, _ := rs.GetString("CPUs"); s != "4" {
		t.Errorf("int as string = %q", s)
	}
	if f, _ := rs.GetFloat("CPUs"); f != 4.0 {
		t.Errorf("int as float = %v", f)
	}
	if n, _ := rs.GetInt("Load"); n != 0 {
		t.Errorf("0.5 truncated = %d", n)
	}
	if b, _ := rs.GetBool("CPUs"); !b {
		t.Error("nonzero int as bool should be true")
	}
	if _, err := rs.GetInt("HostName"); err == nil {
		t.Error("parsing 'alpha' as int should fail")
	}
	if _, err := rs.GetString("Missing"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing column error = %v", err)
	}
}

func TestWasNull(t *testing.T) {
	rs := sampleRS(t)
	rs.Next()
	rs.Next()
	rs.Next() // gamma, NULL load
	f, err := rs.GetFloat("Load")
	if err != nil || f != 0 {
		t.Errorf("NULL float = %v, %v", f, err)
	}
	if !rs.WasNull() {
		t.Error("WasNull false after reading NULL")
	}
	if _, err := rs.GetString("HostName"); err != nil {
		t.Fatal(err)
	}
	if rs.WasNull() {
		t.Error("WasNull true after reading non-NULL")
	}
}

func TestBuilderValidation(t *testing.T) {
	m := mustMeta(t, []Column{{Name: "N", Kind: glue.Int}})
	if _, err := NewBuilder(m).Append(int64(1), int64(2)).Build(); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := NewBuilder(m).Append("one").Build(); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := NewBuilder(m).Append(nil).Build(); err != nil {
		t.Errorf("NULL rejected: %v", err)
	}
	// First error sticks.
	b := NewBuilder(m).Append("bad").Append(int64(1))
	if _, err := b.Build(); err == nil {
		t.Error("sticky error lost")
	}
}

func TestBuilderCopiesRows(t *testing.T) {
	m := mustMeta(t, []Column{{Name: "N", Kind: glue.Int}})
	row := []any{int64(1)}
	rs, err := NewBuilder(m).Append(row...).Build()
	if err != nil {
		t.Fatal(err)
	}
	row[0] = int64(99)
	rs.Next()
	if n, _ := rs.GetInt("N"); n != 1 {
		t.Error("builder aliased caller's row slice")
	}
}

func TestProject(t *testing.T) {
	rs := sampleRS(t)
	p, err := rs.Project([]string{"CPUs", "HostName"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metadata().ColumnNames(); got[0] != "CPUs" || got[1] != "HostName" {
		t.Errorf("projected columns %v", got)
	}
	p.Next()
	if n, _ := p.GetInt("CPUs"); n != 4 {
		t.Errorf("projected value %d", n)
	}
	if _, err := rs.Project([]string{"Nope"}); err == nil {
		t.Error("projecting unknown column succeeded")
	}
}

func TestFilterAndLimit(t *testing.T) {
	rs := sampleRS(t)
	idx := rs.Metadata().ColumnIndex("CPUs")
	f := rs.Filter(func(row []any) bool { return row[idx].(int64) >= 4 })
	if f.Len() != 2 {
		t.Errorf("filtered %d rows, want 2", f.Len())
	}
	if l := rs.Limit(1); l.Len() != 1 {
		t.Errorf("Limit(1) -> %d rows", l.Len())
	}
	if l := rs.Limit(-1); l.Len() != 3 {
		t.Errorf("Limit(-1) -> %d rows", l.Len())
	}
	if l := rs.Limit(10); l.Len() != 3 {
		t.Errorf("Limit(10) -> %d rows", l.Len())
	}
}

func TestSortBy(t *testing.T) {
	rs := sampleRS(t)
	if err := rs.SortBy("Load", false); err != nil {
		t.Fatal(err)
	}
	rs.Next()
	// NULL sorts first ascending.
	if s, _ := rs.GetString("HostName"); s != "gamma" {
		t.Errorf("first asc = %q, want gamma (NULL load)", s)
	}
	if err := rs.SortBy("Load", true); err != nil {
		t.Fatal(err)
	}
	rs.Next()
	if s, _ := rs.GetString("HostName"); s != "beta" {
		t.Errorf("first desc = %q, want beta", s)
	}
	if err := rs.SortBy("Nope", false); err == nil {
		t.Error("sorting unknown column succeeded")
	}
}

func TestMerge(t *testing.T) {
	a := sampleRS(t)
	b := sampleRS(t)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 6 {
		t.Errorf("merged len %d", a.Len())
	}
	other := mustMeta(t, []Column{{Name: "X", Kind: glue.Int}})
	c := New(other)
	if err := a.Merge(c); err == nil {
		t.Error("column-count mismatch merge succeeded")
	}
	d := New(mustMeta(t, []Column{
		{Name: "HostName", Kind: glue.String},
		{Name: "Different", Kind: glue.Float},
		{Name: "CPUs", Kind: glue.Int},
	}))
	if err := a.Merge(d); err == nil {
		t.Error("column-name mismatch merge succeeded")
	}
}

func TestCompareValues(t *testing.T) {
	now := time.Now()
	cases := []struct {
		a, b any
		want int
	}{
		{nil, nil, 0},
		{nil, int64(1), -1},
		{int64(1), nil, 1},
		{int64(1), int64(2), -1},
		{int64(2), 1.5, 1},
		{1.5, int64(2), -1},
		{"a", "b", -1},
		{"b", "a", 1},
		{"a", "a", 0},
		{false, true, -1},
		{true, true, 0},
		{now, now.Add(time.Second), -1},
		{now, now, 0},
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); sign(got) != c.want {
			t.Errorf("CompareValues(%v,%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestCompareValuesProperties(t *testing.T) {
	// Antisymmetry and reflexivity over int64/float64 pairs.
	f := func(a, b int64, x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		ok := sign(CompareValues(a, b)) == -sign(CompareValues(b, a))
		ok = ok && CompareValues(a, a) == 0
		ok = ok && sign(CompareValues(x, y)) == -sign(CompareValues(y, x))
		ok = ok && CompareValues(float64(a), a) == 0
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGetTime(t *testing.T) {
	ts := time.Date(2003, 6, 1, 12, 0, 0, 0, time.UTC)
	m := mustMeta(t, []Column{{Name: "T", Kind: glue.Time}, {Name: "S", Kind: glue.String}})
	rs, err := NewBuilder(m).Append(ts, ts.Format(time.RFC3339)).Append(nil, "not a time").Build()
	if err != nil {
		t.Fatal(err)
	}
	rs.Next()
	if got, _ := rs.GetTime("T"); !got.Equal(ts) {
		t.Errorf("GetTime = %v", got)
	}
	if got, _ := rs.GetTime("S"); !got.Equal(ts) {
		t.Errorf("GetTime from string = %v", got)
	}
	rs.Next()
	if got, err := rs.GetTime("T"); err != nil || !got.IsZero() {
		t.Errorf("NULL time = %v, %v", got, err)
	}
	if !rs.WasNull() {
		t.Error("WasNull after NULL time")
	}
	if _, err := rs.GetTime("S"); err == nil {
		t.Error("parsing junk as time succeeded")
	}
}

func TestStringRendering(t *testing.T) {
	rs := sampleRS(t)
	out := rs.String()
	for _, want := range []string{"HostName", "Load", "CPUs", "alpha", "NULL", "1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + 3 rows
		t.Errorf("String() has %d lines, want 4", lines)
	}
}

// TestLimitDoesNotAliasParent is the backing-array regression: a Merge into
// a limited set used to clobber the parent's next row because the limited
// slice shared the parent's spare capacity.
func TestLimitDoesNotAliasParent(t *testing.T) {
	parent := sampleRS(t)
	limited := parent.Limit(1)

	extra, err := NewBuilder(parent.Metadata()).Append("delta", 9.0, int64(1)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := limited.Merge(extra); err != nil {
		t.Fatal(err)
	}
	// Parent row 1 must still be beta, not delta.
	if got := parent.RowAt(1)[0]; got != "beta" {
		t.Fatalf("parent row 1 clobbered by Merge into limited child: %v", got)
	}
	if limited.Len() != 2 {
		t.Errorf("limited set has %d rows, want 2", limited.Len())
	}
}

// TestMergeRejectsKindMismatch: same column names with different kinds must
// not silently merge into a mixed-kind column.
func TestMergeRejectsKindMismatch(t *testing.T) {
	a, err := NewBuilder(mustMeta(t, []Column{{Name: "Load", Kind: glue.Float}})).
		Append(0.5).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(mustMeta(t, []Column{{Name: "Load", Kind: glue.Int}})).
		Append(int64(2)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("kind-mismatched merge accepted")
	} else if !strings.Contains(err.Error(), "kind") {
		t.Errorf("error %q does not mention the kind mismatch", err)
	}
	if a.Len() != 1 {
		t.Errorf("failed merge still appended rows: %d", a.Len())
	}
}

func TestSortedByLeavesInputAlone(t *testing.T) {
	rs := sampleRS(t)
	sorted, err := rs.SortedBy("Load", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.RowAt(0)[0]; got != "alpha" {
		t.Fatalf("SortedBy reordered its receiver: row 0 = %v", got)
	}
	if got := sorted.RowAt(0)[0]; got != "beta" {
		t.Errorf("sorted row 0 = %v, want beta (desc: NULL last)", got)
	}
	if _, err := rs.SortedBy("Bogus", false); err == nil {
		t.Error("SortedBy accepted an unknown column")
	}
}

func TestGroupKey(t *testing.T) {
	rows := [][]any{
		{int64(1), "a"},
		{float64(1), "a"}, // same numeric value, different type
		{nil, "a"},
		{int64(1), "ab"},
		{"1", "a"},
		{int64(1), "a"}, // duplicate of the first
	}
	keys := make(map[string]int)
	for i, row := range rows {
		keys[GroupKey(row, []int{0, 1})] = i
	}
	if len(keys) != 5 {
		t.Errorf("got %d distinct keys, want 5: %v", len(keys), keys)
	}
	// Boundary confusion: ("ab","c") must differ from ("a","bc").
	if GroupKey([]any{"ab", "c"}, []int{0, 1}) == GroupKey([]any{"a", "bc"}, []int{0, 1}) {
		t.Error("string boundaries not preserved in group keys")
	}
}
