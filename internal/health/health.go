// Package health implements the gateway's background source prober: a
// periodic, cheap liveness check of every registered data source that keeps
// per-source health state (healthy/degraded/down), drives circuit-breaker
// half-open recovery proactively instead of waiting for user traffic, and
// reports state transitions so the gateway can publish Alert events.
//
// The paper's Gateway is the always-available front door to a site's flaky
// monitoring fabric; the prober is what lets it notice a source recovering
// (or dying) while no client happens to be querying it.
package health

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a source's probed health.
type State string

const (
	// StateHealthy means the last probe succeeded.
	StateHealthy State = "healthy"
	// StateDegraded means recent probes failed but fewer than
	// Options.DownAfter in a row.
	StateDegraded State = "degraded"
	// StateDown means Options.DownAfter or more consecutive probe
	// failures.
	StateDown State = "down"
)

// ErrSkipped is returned by a Pinger that intentionally declined to probe a
// source this round (typically: its circuit breaker is open and the
// cooldown has not elapsed, so a probe would only hammer a known-bad
// source). Skipped probes carry no information and do not change state.
var ErrSkipped = errors.New("health: probe skipped")

// Pinger is the surface the prober checks sources through; implemented by
// the core Gateway.
type Pinger interface {
	// ProbeTargets lists the source URLs to probe.
	ProbeTargets() []string
	// ProbeSource cheaply verifies one source is alive (e.g. a pooled
	// connection ping). It may return ErrSkipped (wrapped or not) when
	// probing is pointless this round.
	ProbeSource(ctx context.Context, url string) error
}

// Options configures a Prober.
type Options struct {
	// Interval between background probe sweeps. Zero or negative means no
	// background loop: Start is a no-op and sweeps happen only via
	// ProbeAll (tests, or operators hitting an admin endpoint).
	Interval time.Duration
	// Timeout bounds each individual source probe (default 2s).
	Timeout time.Duration
	// DownAfter is how many consecutive failures turn a degraded source
	// into a down one (default 3).
	DownAfter int
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

// SourceHealth is the probed state of one source.
type SourceHealth struct {
	// URL is the data-source URL.
	URL string `json:"url"`
	// State is the current health classification.
	State State `json:"state"`
	// LastProbe is when the source was last actually probed (skipped
	// rounds do not count).
	LastProbe time.Time `json:"last_probe"`
	// LastChange is when State last changed.
	LastChange time.Time `json:"last_change"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastError is the most recent probe error, empty after a success.
	LastError string `json:"last_error,omitempty"`
}

// Stats counts prober activity.
type Stats struct {
	// Probes counts individual source probes attempted (not skipped).
	Probes int64 `json:"probes"`
	// Failures counts probes that returned an error.
	Failures int64 `json:"failures"`
	// Skipped counts probes the Pinger declined (ErrSkipped).
	Skipped int64 `json:"skipped"`
	// Transitions counts state changes across all sources.
	Transitions int64 `json:"transitions"`
}

// TransitionFunc observes a source changing state; from is the previous
// state ("" for a source seen for the first time). Called outside the
// prober's lock, sequentially per sweep.
type TransitionFunc func(h SourceHealth, from State)

// Prober periodically probes every target and tracks per-source health.
type Prober struct {
	pinger       Pinger
	opts         Options
	onTransition TransitionFunc

	mu      sync.Mutex
	state   map[string]*SourceHealth
	started bool
	stopped bool

	stop chan struct{}
	done chan struct{}

	probes, failures, skipped, transitions atomic.Int64
}

// New creates a Prober. onTransition may be nil.
func New(pinger Pinger, opts Options, onTransition TransitionFunc) *Prober {
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.DownAfter <= 0 {
		opts.DownAfter = 3
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Prober{
		pinger:       pinger,
		opts:         opts,
		onTransition: onTransition,
		state:        make(map[string]*SourceHealth),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

// Start launches the background sweep loop; a no-op when Options.Interval
// is zero or the prober was already started.
func (p *Prober) Start() {
	if p.opts.Interval <= 0 {
		return
	}
	p.mu.Lock()
	if p.started || p.stopped {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go p.loop()
}

// Stop halts the background loop and waits for an in-flight sweep to
// finish. Idempotent; safe to call whether or not Start ran.
func (p *Prober) Stop() {
	p.mu.Lock()
	if p.stopped {
		started := p.started
		p.mu.Unlock()
		if started {
			<-p.done
		}
		return
	}
	p.stopped = true
	started := p.started
	p.mu.Unlock()
	close(p.stop)
	if started {
		<-p.done
	}
}

func (p *Prober) loop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithCancel(context.Background())
			sweepDone := make(chan struct{})
			go func() {
				select {
				case <-p.stop:
					cancel()
				case <-sweepDone:
				}
			}()
			p.ProbeAll(ctx)
			close(sweepDone)
			cancel()
		}
	}
}

// ProbeAll sweeps every current target once, sequentially, honouring ctx.
// Sources that disappeared from the target list are forgotten.
func (p *Prober) ProbeAll(ctx context.Context) {
	targets := p.pinger.ProbeTargets()
	alive := make(map[string]bool, len(targets))
	for _, url := range targets {
		alive[url] = true
		if ctx.Err() != nil {
			return
		}
		p.probeOne(ctx, url)
	}
	p.mu.Lock()
	for url := range p.state {
		if !alive[url] {
			delete(p.state, url)
		}
	}
	p.mu.Unlock()
}

func (p *Prober) probeOne(ctx context.Context, url string) {
	pctx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
	err := p.pinger.ProbeSource(pctx, url)
	cancel()
	if errors.Is(err, ErrSkipped) {
		p.skipped.Add(1)
		return
	}
	now := p.opts.Clock()
	p.probes.Add(1)
	if err != nil {
		p.failures.Add(1)
	}

	p.mu.Lock()
	h, ok := p.state[url]
	if !ok {
		h = &SourceHealth{URL: url}
		p.state[url] = h
	}
	from := h.State
	h.LastProbe = now
	if err == nil {
		h.ConsecutiveFailures = 0
		h.LastError = ""
		h.State = StateHealthy
	} else {
		h.ConsecutiveFailures++
		h.LastError = err.Error()
		if h.ConsecutiveFailures >= p.opts.DownAfter {
			h.State = StateDown
		} else {
			h.State = StateDegraded
		}
	}
	changed := h.State != from
	if changed {
		h.LastChange = now
		p.transitions.Add(1)
	}
	snapshot := *h
	p.mu.Unlock()

	if changed && p.onTransition != nil {
		p.onTransition(snapshot, from)
	}
}

// Health returns the probed state of one source.
func (p *Prober) Health(url string) (SourceHealth, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.state[url]
	if !ok {
		return SourceHealth{}, false
	}
	return *h, true
}

// Snapshot returns every source's health, sorted by URL.
func (p *Prober) Snapshot() []SourceHealth {
	p.mu.Lock()
	out := make([]SourceHealth, 0, len(p.state))
	for _, h := range p.state {
		out = append(out, *h)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Stats returns a snapshot of prober counters.
func (p *Prober) Stats() Stats {
	return Stats{
		Probes:      p.probes.Load(),
		Failures:    p.failures.Load(),
		Skipped:     p.skipped.Load(),
		Transitions: p.transitions.Load(),
	}
}

// Interval reports the configured sweep interval (zero when background
// probing is disabled).
func (p *Prober) Interval() time.Duration { return p.opts.Interval }
