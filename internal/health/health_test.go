package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakePinger scripts per-URL probe outcomes.
type fakePinger struct {
	mu      sync.Mutex
	targets []string
	errs    map[string]error
	calls   map[string]int
}

func newFakePinger(targets ...string) *fakePinger {
	return &fakePinger{
		targets: targets,
		errs:    make(map[string]error),
		calls:   make(map[string]int),
	}
}

func (f *fakePinger) set(url string, err error) {
	f.mu.Lock()
	f.errs[url] = err
	f.mu.Unlock()
}

func (f *fakePinger) ProbeTargets() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.targets...)
}

func (f *fakePinger) ProbeSource(ctx context.Context, url string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[url]++
	return f.errs[url]
}

type transition struct {
	url  string
	from State
	to   State
}

func TestProbeAllTracksStates(t *testing.T) {
	now := time.Unix(50000, 0)
	pinger := newFakePinger("src-a", "src-b")
	var seen []transition
	p := New(pinger, Options{DownAfter: 3, Clock: func() time.Time { return now }},
		func(h SourceHealth, from State) {
			seen = append(seen, transition{h.URL, from, h.State})
		})

	pinger.set("src-b", errors.New("agent gone"))
	p.ProbeAll(context.Background())

	if h, _ := p.Health("src-a"); h.State != StateHealthy {
		t.Errorf("src-a state = %q", h.State)
	}
	h, ok := p.Health("src-b")
	if !ok || h.State != StateDegraded || h.ConsecutiveFailures != 1 {
		t.Fatalf("src-b health = %+v", h)
	}
	if h.LastError != "agent gone" {
		t.Errorf("LastError = %q", h.LastError)
	}

	// Two more failures cross DownAfter.
	p.ProbeAll(context.Background())
	p.ProbeAll(context.Background())
	if h, _ := p.Health("src-b"); h.State != StateDown || h.ConsecutiveFailures != 3 {
		t.Fatalf("src-b after 3 failures = %+v", h)
	}

	// Recovery resets everything in one sweep.
	pinger.set("src-b", nil)
	p.ProbeAll(context.Background())
	if h, _ := p.Health("src-b"); h.State != StateHealthy || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("src-b after recovery = %+v", h)
	}

	want := []transition{
		{"src-a", "", StateHealthy},
		{"src-b", "", StateDegraded},
		{"src-b", StateDegraded, StateDown},
		{"src-b", StateDown, StateHealthy},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("transition[%d] = %+v, want %+v", i, seen[i], want[i])
		}
	}
	st := p.Stats()
	if st.Probes != 8 || st.Failures != 3 || st.Transitions != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSkippedProbesCarryNoInformation(t *testing.T) {
	pinger := newFakePinger("src-a")
	p := New(pinger, Options{}, nil)

	pinger.set("src-a", errors.New("boom"))
	p.ProbeAll(context.Background())
	before, _ := p.Health("src-a")

	// A wrapped ErrSkipped must neither advance failure counts nor touch
	// state — an open breaker's cooldown shouldn't read as a new failure.
	pinger.set("src-a", fmt.Errorf("breaker open: %w", ErrSkipped))
	p.ProbeAll(context.Background())
	after, _ := p.Health("src-a")
	if after != before {
		t.Errorf("skipped probe changed state: %+v -> %+v", before, after)
	}
	st := p.Stats()
	if st.Skipped != 1 || st.Probes != 1 || st.Failures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRemovedTargetsAreForgotten(t *testing.T) {
	pinger := newFakePinger("src-a", "src-b")
	p := New(pinger, Options{}, nil)
	p.ProbeAll(context.Background())
	if got := len(p.Snapshot()); got != 2 {
		t.Fatalf("snapshot size = %d", got)
	}

	pinger.mu.Lock()
	pinger.targets = []string{"src-a"}
	pinger.mu.Unlock()
	p.ProbeAll(context.Background())
	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].URL != "src-a" {
		t.Errorf("snapshot after removal = %+v", snap)
	}
}

func TestSnapshotSortedByURL(t *testing.T) {
	pinger := newFakePinger("zeta", "alpha", "mid")
	p := New(pinger, Options{}, nil)
	p.ProbeAll(context.Background())
	snap := p.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].URL > snap[i].URL {
			t.Fatalf("snapshot not sorted: %+v", snap)
		}
	}
}

func TestStartStopLifecycle(t *testing.T) {
	pinger := newFakePinger("src-a")
	p := New(pinger, Options{Interval: time.Millisecond}, nil)
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		pinger.mu.Lock()
		n := pinger.calls["src-a"]
		pinger.mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never probed")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent

	// Stop joins the background loop, so by the time it returns no further
	// probe can ever run: the count is final the moment Stop comes back.
	pinger.mu.Lock()
	n := pinger.calls["src-a"]
	pinger.mu.Unlock()
	p.ProbeAll(context.Background()) // manual sweeps still work after Stop
	pinger.mu.Lock()
	after := pinger.calls["src-a"]
	pinger.mu.Unlock()
	if after != n+1 {
		t.Errorf("manual probe after Stop: calls %d -> %d, want exactly one more", n, after)
	}
}

func TestStartIsNoOpWithoutInterval(t *testing.T) {
	p := New(newFakePinger("src-a"), Options{}, nil)
	p.Start() // must not launch a loop
	p.Stop()  // and Stop must not block on one
}
