package breaker

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := New(Options{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		if opened := b.OnFailure(now); opened {
			t.Fatalf("opened after %d failures", i+1)
		}
		if !b.Allow(now) {
			t.Fatalf("rejected while closed after %d failures", i+1)
		}
	}
	if !b.OnFailure(now) {
		t.Error("third failure did not report the closed→open edge")
	}
	if b.State(now) != Open {
		t.Errorf("state = %s, want open", b.State(now))
	}
	if b.Allow(now) {
		t.Error("open breaker allowed a call mid-cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := New(Options{Threshold: 1, Cooldown: 10 * time.Second})
	b.OnFailure(now)

	now = now.Add(11 * time.Second)
	if !b.Allow(now) {
		t.Fatal("post-cooldown probe rejected")
	}
	if b.Allow(now) {
		t.Error("second concurrent probe allowed")
	}
	if b.State(now) != HalfOpen {
		t.Errorf("state = %s, want half-open", b.State(now))
	}

	// A failed probe re-arms the cooldown without counting a new open.
	if opened := b.OnFailure(now); opened {
		t.Error("failed probe recounted as an open")
	}
	if b.Allow(now) {
		t.Error("allowed immediately after failed probe")
	}

	// A successful probe closes the breaker.
	now = now.Add(11 * time.Second)
	if !b.Allow(now) {
		t.Fatal("second probe rejected")
	}
	b.OnSuccess()
	if b.State(now) != Closed || !b.Allow(now) {
		t.Error("breaker did not close after successful probe")
	}
}

func TestBreakerDisabled(t *testing.T) {
	now := time.Unix(1000, 0)
	b := New(Options{Threshold: -1})
	for i := 0; i < 10; i++ {
		if b.OnFailure(now) {
			t.Fatal("disabled breaker opened")
		}
	}
	if !b.Allow(now) || b.State(now) != Closed {
		t.Error("disabled breaker rejected a call")
	}
}

func TestBreakerDefaults(t *testing.T) {
	o := Options{}.Fill()
	if o.Threshold != 5 || o.Cooldown != 30*time.Second {
		t.Errorf("defaults = %+v", o)
	}
}
