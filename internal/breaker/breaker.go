// Package breaker is the shared circuit breaker used by both layers of the
// gateway: internal/core puts one in front of every data-source harvest and
// internal/gma puts one in front of every remote gateway endpoint. A target
// that fails Threshold times in a row is "open": calls are skipped cheaply
// for Cooldown, after which a single half-open probe is allowed through; a
// successful probe closes the breaker, a failed one re-opens it for another
// Cooldown.
package breaker

import (
	"sync"
	"time"
)

// Options configures a circuit breaker.
type Options struct {
	// Threshold is how many consecutive failures open the breaker
	// (default 5; negative disables the breaker entirely).
	Threshold int
	// Cooldown is how long an open breaker rejects calls before allowing a
	// half-open probe (default 30s).
	Cooldown time.Duration
}

// Fill returns o with defaults applied.
func (o Options) Fill() Options {
	if o.Threshold == 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 30 * time.Second
	}
	return o
}

// State is the management-view name for a breaker's current state.
type State string

const (
	Closed   State = "closed"
	Open     State = "open"
	HalfOpen State = "half-open"
)

// Breaker is one target's circuit-breaker state.
type Breaker struct {
	opts Options

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool
}

// New creates a closed breaker with opts (defaults applied).
func New(opts Options) *Breaker { return &Breaker{opts: opts.Fill()} }

// Disabled reports whether the breaker is configured off.
func (b *Breaker) Disabled() bool { return b.opts.Threshold < 0 }

// Allow reports whether a call may proceed now. In the half-open state
// exactly one caller wins the probe slot until OnSuccess/OnFailure resolves
// it; concurrent callers are rejected as if the breaker were still open.
func (b *Breaker) Allow(now time.Time) bool {
	if b.Disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.opts.Threshold {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true
	return true
}

// OnSuccess records a successful call: the breaker closes.
func (b *Breaker) OnSuccess() {
	if b.Disabled() {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.probing = false
	b.mu.Unlock()
}

// OnFailure records a failed call and reports whether this failure
// transitioned the breaker from closed to open.
func (b *Breaker) OnFailure(now time.Time) (opened bool) {
	if b.Disabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.probing
	b.probing = false
	b.consecutive++
	if b.consecutive < b.opts.Threshold {
		return false
	}
	b.openUntil = now.Add(b.opts.Cooldown)
	// Only the closed→open edge counts as an "open"; a failed half-open
	// probe re-arms the cooldown without recounting.
	return !wasProbe && b.consecutive == b.opts.Threshold
}

// State reports the breaker's state for the management view.
func (b *Breaker) State(now time.Time) State {
	if b.Disabled() {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.consecutive < b.opts.Threshold:
		return Closed
	case b.probing || !now.Before(b.openUntil):
		return HalfOpen
	default:
		return Open
	}
}
