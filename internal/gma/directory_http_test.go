package gma

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestDirectoryClientEscaping: site names with URL metacharacters must
// round-trip through lookup and deregister — pre-fix, an unescaped site like
// "A&B" leaked into the query string and matched nothing.
func TestDirectoryClientEscaping(t *testing.T) {
	d := NewDirectory(0, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	c := &DirectoryClient{BaseURL: srv.URL}

	for _, site := range []string{"site A", "a&b=c", "x/y?z", "ü-site"} {
		if err := c.Register(Registration{Name: site, Endpoint: "http://e"}); err != nil {
			t.Fatalf("register %q: %v", site, err)
		}
		p, ok, err := c.Lookup(site)
		if err != nil || !ok || p.Name != site {
			t.Errorf("lookup %q = %+v, %v, %v", site, p, ok, err)
		}
		if err := c.Deregister(site); err != nil {
			t.Errorf("deregister %q: %v", site, err)
		}
		if _, ok, _ := c.Lookup(site); ok {
			t.Errorf("%q still registered after deregister", site)
		}
	}
}

// TestDirectoryHTTPTTLExpiry exercises record expiry through the HTTP
// handler, not just the in-process API: an expired record must 404 on
// lookup and vanish from the sites list.
func TestDirectoryHTTPTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDirectory(10*time.Second, func() time.Time { return now })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	c := &DirectoryClient{BaseURL: srv.URL}

	if err := c.Register(Registration{Name: "A", Endpoint: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Lookup("A"); err != nil || !ok {
		t.Fatalf("fresh lookup = %v, %v", ok, err)
	}
	now = now.Add(11 * time.Second)
	if _, ok, err := c.Lookup("A"); err != nil || ok {
		t.Errorf("expired lookup = %v, %v, want not-found without error", ok, err)
	}
	sites, err := c.Sites()
	if err != nil || len(sites) != 0 {
		t.Errorf("expired Sites = %v, %v", sites, err)
	}
	// Refreshing the registration revives it over HTTP too.
	if err := c.Register(Registration{Name: "A", Endpoint: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Lookup("A"); !ok {
		t.Error("refreshed record missing")
	}
}

// TestDirectoryPrune: Prune removes exactly the expired records and leaves
// live ones lookupable.
func TestDirectoryPrune(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDirectory(10*time.Second, func() time.Time { return now })
	_ = d.Register(Registration{Name: "old", Endpoint: "http://old"})
	now = now.Add(8 * time.Second)
	_ = d.Register(Registration{Name: "new", Endpoint: "http://new"})
	now = now.Add(4 * time.Second) // "old" is 12s old, "new" 4s

	if n := d.Prune(); n != 1 {
		t.Errorf("Prune = %d, want 1", n)
	}
	if _, ok, _ := d.Lookup("old"); ok {
		t.Error("pruned record still found")
	}
	if _, ok, _ := d.Lookup("new"); !ok {
		t.Error("live record pruned")
	}
	if n := d.Prune(); n != 0 {
		t.Errorf("second Prune = %d, want 0", n)
	}
	// A TTL of zero means no expiry: nothing is ever pruned.
	forever := NewDirectory(0, nil)
	_ = forever.Register(Registration{Name: "A", Endpoint: "http://a"})
	if n := forever.Prune(); n != 0 {
		t.Errorf("Prune with no TTL = %d, want 0", n)
	}
}
