package gma

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// flakyDir wraps an in-process Directory with a switchable failure mode, so
// tests can simulate a replica outage.
type flakyDir struct {
	*Directory
	mu   sync.Mutex
	down bool
}

func newFlakyDir() *flakyDir { return &flakyDir{Directory: NewDirectory(0, nil)} }

func (f *flakyDir) setDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

func (f *flakyDir) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return fmt.Errorf("replica down")
	}
	return nil
}

func (f *flakyDir) Register(p Registration) error {
	if err := f.err(); err != nil {
		return err
	}
	return f.Directory.Register(p)
}

func (f *flakyDir) Deregister(site string) error {
	if err := f.err(); err != nil {
		return err
	}
	return f.Directory.Deregister(site)
}

func (f *flakyDir) Lookup(site string) (Registration, bool, error) {
	if err := f.err(); err != nil {
		return Registration{}, false, err
	}
	return f.Directory.Lookup(site)
}

func (f *flakyDir) Sites() ([]string, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return f.Directory.Sites()
}

func (f *flakyDir) List() ([]Registration, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return f.Directory.List()
}

func TestMultiDirectoryRegisterFansOut(t *testing.T) {
	d1, d2 := newFlakyDir(), newFlakyDir()
	md := NewMultiDirectory(d1, d2)
	if err := md.Register(Registration{Name: "A", Endpoint: "http://a"}); err != nil {
		t.Fatal(err)
	}
	for i, d := range []*flakyDir{d1, d2} {
		if _, ok, _ := d.Directory.Lookup("A"); !ok {
			t.Errorf("replica %d missing the registration", i)
		}
	}
}

func TestMultiDirectoryRegisterPartialOutage(t *testing.T) {
	d1, d2 := newFlakyDir(), newFlakyDir()
	d1.setDown(true)
	md := NewMultiDirectory(d1, d2)
	if err := md.Register(Registration{Name: "A", Endpoint: "http://a"}); err != nil {
		t.Fatalf("register with one live replica: %v", err)
	}
	d2.setDown(true)
	err := md.Register(Registration{Name: "B", Endpoint: "http://b"})
	if err == nil || !strings.Contains(err.Error(), "every replica") {
		t.Errorf("register with all replicas down = %v", err)
	}
}

func TestMultiDirectoryLookupFailsOver(t *testing.T) {
	d1, d2 := newFlakyDir(), newFlakyDir()
	md := NewMultiDirectory(d1, d2)
	if err := md.Register(Registration{Name: "A", Endpoint: "http://a"}); err != nil {
		t.Fatal(err)
	}
	d1.setDown(true)
	p, ok, err := md.Lookup("A")
	if err != nil || !ok || p.Endpoint != "http://a" {
		t.Fatalf("failover lookup = %+v, %v, %v", p, ok, err)
	}
	// A replica that answers "not found" does not end the search: drop the
	// record from d2 only, revive d1, and the search must continue to d1.
	d1.setDown(false)
	_ = d2.Directory.Deregister("A")
	if _, ok, err := md.Lookup("A"); err != nil || !ok {
		t.Errorf("lookup past a not-found replica = %v, %v", ok, err)
	}
	d1.setDown(true)
	d2.setDown(true)
	if _, _, err := md.Lookup("A"); err == nil {
		t.Error("lookup with all replicas down succeeded")
	}
}

func TestMultiDirectoryHealthRanking(t *testing.T) {
	d1, d2 := newFlakyDir(), newFlakyDir()
	md := NewMultiDirectory(d1, d2)
	_ = md.Register(Registration{Name: "A", Endpoint: "http://a"})
	d1.setDown(true)
	// First lookup hits d1 (fails, failover to d2); after that d2 ranks
	// first and d1 is no longer consulted, so its failure count stays put.
	for i := 0; i < 3; i++ {
		if _, ok, err := md.Lookup("A"); err != nil || !ok {
			t.Fatalf("lookup %d: %v, %v", i, ok, err)
		}
	}
	hs := md.ReplicaHealth()
	if len(hs) != 2 {
		t.Fatalf("health entries = %d", len(hs))
	}
	if hs[0].Healthy || hs[0].ConsecutiveFailures != 1 || hs[0].LastError == "" {
		t.Errorf("failing replica health = %+v", hs[0])
	}
	if !hs[1].Healthy || hs[1].LastOK.IsZero() {
		t.Errorf("healthy replica health = %+v", hs[1])
	}
	// The healthy replica is now ranked first.
	if ranked := md.ranked(); ranked[0].name != "replica-1" {
		t.Errorf("ranked first = %s, want replica-1", ranked[0].name)
	}
	// Recovery resets the failure count.
	d1.setDown(false)
	_, _, _ = md.Lookup("A")
	// d2 is tried first now; make it fail once so d1 gets exercised too.
	d2.setDown(true)
	_, _, _ = md.Lookup("A")
	if hs := md.ReplicaHealth(); !hs[0].Healthy {
		t.Errorf("recovered replica still unhealthy: %+v", hs[0])
	}
}

func TestMultiDirectorySitesFailsOver(t *testing.T) {
	d1, d2 := newFlakyDir(), newFlakyDir()
	md := NewMultiDirectory(d1, d2)
	_ = md.Register(Registration{Name: "A", Endpoint: "http://a"})
	d1.setDown(true)
	sites, err := md.Sites()
	if err != nil || len(sites) != 1 || sites[0] != "A" {
		t.Errorf("failover Sites = %v, %v", sites, err)
	}
	d2.setDown(true)
	if _, err := md.Sites(); err == nil {
		t.Error("Sites with all replicas down succeeded")
	}
}

func TestMultiDirectoryDeregisterFansOut(t *testing.T) {
	d1, d2 := newFlakyDir(), newFlakyDir()
	md := NewMultiDirectory(d1, d2)
	_ = md.Register(Registration{Name: "A", Endpoint: "http://a"})
	if err := md.Deregister("A"); err != nil {
		t.Fatal(err)
	}
	for i, d := range []*flakyDir{d1, d2} {
		if _, ok, _ := d.Directory.Lookup("A"); ok {
			t.Errorf("replica %d still holds the record", i)
		}
	}
}

func TestMultiDirectoryNeedsReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty MultiDirectory did not panic")
		}
	}()
	NewMultiDirectory()
}
