package gma

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("site-%d", i)
	}
	return keys
}

func ringMembers(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("repub-%d", i)
	}
	return members
}

// Placement must be a pure function of the member set: every node that
// sees the same directory view computes identical ownership, with no
// coordination. Member order and duplicates must not matter.
func TestRingDeterministicPlacement(t *testing.T) {
	members := ringMembers(5)
	keys := ringKeys(200)
	base := NewRing(members, DefaultVNodes)
	shuffled := append([]string(nil), members...)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		withDups := append(append([]string(nil), shuffled...), shuffled[0], "", shuffled[1])
		r := NewRing(withDups, DefaultVNodes)
		for _, k := range keys {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("trial %d: Owner(%s) = %s, want %s", trial, k, got, want)
			}
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		r := NewRing(ringMembers(n), DefaultVNodes)
		counts := map[string]int{}
		for _, k := range ringKeys(1000) {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d members: only %d own keys: %v", n, len(counts), counts)
		}
		// Every member should hold a reasonable share; with 64 vnodes the
		// spread stays well inside 3x of fair.
		fair := 1000 / n
		for m, c := range counts {
			if c < fair/3 || c > fair*3 {
				t.Errorf("%d members: %s owns %d keys, fair share %d", n, m, c, fair)
			}
		}
	}
}

// When one member joins or leaves, only the keys whose nearest virtual
// node changed may move: consistent hashing's bounded-movement property.
// With a fair share of 1/N, anything under 2/N is the ring working.
func TestRingBoundedMovement(t *testing.T) {
	keys := ringKeys(1000)
	for _, n := range []int{3, 5, 8} {
		before := NewRing(ringMembers(n), DefaultVNodes)
		grown := NewRing(append(ringMembers(n), "joiner"), DefaultVNodes)
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != grown.Owner(k) {
				// A key may only move TO the joiner, never between
				// incumbents.
				if grown.Owner(k) != "joiner" {
					t.Fatalf("n=%d: %s moved between incumbents %s -> %s",
						n, k, before.Owner(k), grown.Owner(k))
				}
				moved++
			}
		}
		bound := 2 * len(keys) / (n + 1)
		if moved == 0 || moved > bound {
			t.Errorf("n=%d join: %d of %d keys moved, want (0, %d]", n, moved, len(keys), bound)
		}
		// Leave is the mirror image: keys move only FROM the departed.
		shrunk := NewRing(ringMembers(n-1), DefaultVNodes)
		departed := fmt.Sprintf("repub-%d", n-1)
		moved = 0
		for _, k := range keys {
			if before.Owner(k) != shrunk.Owner(k) {
				if before.Owner(k) != departed {
					t.Fatalf("n=%d: %s moved between survivors %s -> %s",
						n, k, before.Owner(k), shrunk.Owner(k))
				}
				moved++
			}
		}
		if bound = 2 * len(keys) / n; moved == 0 || moved > bound {
			t.Errorf("n=%d leave: %d of %d keys moved, want (0, %d]", n, moved, len(keys), bound)
		}
	}
}

func TestRingEmptyAndAssign(t *testing.T) {
	var nilRing *Ring
	if !nilRing.Empty() || nilRing.Owner("x") != "" || nilRing.Members() != nil {
		t.Error("nil ring must be empty and own nothing")
	}
	if r := NewRing(nil, 0); !r.Empty() {
		t.Error("memberless ring not empty")
	}
	r := NewRing([]string{"a", "b"}, 8)
	got := r.Assign([]string{"k1", "k2", "k3", "k4"})
	total := 0
	for m, ks := range got {
		if m != "a" && m != "b" {
			t.Errorf("assigned to unknown member %q", m)
		}
		total += len(ks)
	}
	if total != 4 {
		t.Errorf("assigned %d keys, want 4", total)
	}
}
