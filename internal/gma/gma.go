// Package gma implements GridRM's Global layer: the Grid Monitoring
// Architecture (GMA) interaction model of the paper's Fig 1. Gateways
// register with a GMA directory as producers of their site's resource
// data; a client may connect to any gateway, and requests for remote
// resource data are routed through the Global layer to the gateway that
// owns the data.
//
// The package provides the directory (in-process and over HTTP), a
// Registrar that keeps a gateway's producer record fresh, and the Router
// that plugs into core.Gateway as its GlobalRouter.
package gma

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// ProducerInfo is one gateway's registration record.
type ProducerInfo struct {
	// Site is the producer's site name (unique key).
	Site string `json:"site"`
	// Endpoint is the gateway's servlet base URL ("http://host:port").
	Endpoint string `json:"endpoint"`
	// Groups lists the GLUE groups the site can answer for.
	Groups []string `json:"groups,omitempty"`
	// RegisteredAt is when the record was last refreshed.
	RegisteredAt time.Time `json:"registeredAt"`
}

// DirectoryService is the GMA directory contract shared by the in-process
// directory and the HTTP client.
type DirectoryService interface {
	// Register adds or refreshes a producer record.
	Register(p ProducerInfo) error
	// Deregister removes a producer.
	Deregister(site string) error
	// Lookup finds a producer by site name.
	Lookup(site string) (ProducerInfo, bool, error)
	// Sites lists registered sites, sorted.
	Sites() ([]string, error)
}

// Directory is the in-process GMA directory with TTL-based expiry of stale
// producer records.
type Directory struct {
	ttl   time.Duration
	clock func() time.Time

	mu        sync.RWMutex
	producers map[string]ProducerInfo
}

// NewDirectory creates a directory; records older than ttl are treated as
// gone (ttl <= 0 means records never expire). The clock is injectable for
// tests; nil uses time.Now.
func NewDirectory(ttl time.Duration, clock func() time.Time) *Directory {
	if clock == nil {
		clock = time.Now
	}
	return &Directory{ttl: ttl, clock: clock, producers: make(map[string]ProducerInfo)}
}

// Register implements DirectoryService.
func (d *Directory) Register(p ProducerInfo) error {
	if p.Site == "" || p.Endpoint == "" {
		return fmt.Errorf("gma: producer needs site and endpoint")
	}
	p.RegisteredAt = d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.producers[p.Site] = p
	return nil
}

// Deregister implements DirectoryService.
func (d *Directory) Deregister(site string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.producers[site]; !ok {
		return fmt.Errorf("gma: site %q not registered", site)
	}
	delete(d.producers, site)
	return nil
}

func (d *Directory) fresh(p ProducerInfo) bool {
	return d.ttl <= 0 || d.clock().Sub(p.RegisteredAt) <= d.ttl
}

// Lookup implements DirectoryService.
func (d *Directory) Lookup(site string) (ProducerInfo, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.producers[site]
	if !ok || !d.fresh(p) {
		return ProducerInfo{}, false, nil
	}
	return p, true, nil
}

// Sites implements DirectoryService.
func (d *Directory) Sites() ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.producers))
	for site, p := range d.producers {
		if d.fresh(p) {
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Producers returns all fresh records, sorted by site.
func (d *Directory) Producers() []ProducerInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]ProducerInfo, 0, len(d.producers))
	for _, p := range d.producers {
		if d.fresh(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Prune drops expired records and reports how many were removed.
func (d *Directory) Prune() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for site, p := range d.producers {
		if !d.fresh(p) {
			delete(d.producers, site)
			n++
		}
	}
	return n
}

// Handler returns the directory's HTTP interface:
//
//	POST   /gma/register    body: ProducerInfo
//	DELETE /gma/register?site=
//	GET    /gma/lookup?site=
//	GET    /gma/sites
func (d *Directory) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/gma/register", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var p ProducerInfo
			if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.Register(p); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if err := d.Deregister(r.URL.Query().Get("site")); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/gma/lookup", func(w http.ResponseWriter, r *http.Request) {
		p, ok, err := d.Lookup(r.URL.Query().Get("site"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "unknown site", http.StatusNotFound)
			return
		}
		writeJSON(w, p)
	})
	mux.HandleFunc("/gma/sites", func(w http.ResponseWriter, r *http.Request) {
		sites, err := d.Sites()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, sites)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultClientTimeout bounds DirectoryClient requests when neither Timeout
// nor HTTPClient is configured.
const DefaultClientTimeout = 5 * time.Second

// DirectoryClient talks to a remote Directory over HTTP.
type DirectoryClient struct {
	// BaseURL is the directory host base, e.g. "http://127.0.0.1:9000".
	BaseURL string
	// Timeout bounds each directory request when HTTPClient is nil
	// (default DefaultClientTimeout; negative disables, leaving only the
	// caller's context to bound the request).
	Timeout time.Duration
	// HTTPClient is optional; nil uses a Timeout-bounded client.
	HTTPClient *http.Client
}

func (c *DirectoryClient) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultClientTimeout
	} else if timeout < 0 {
		timeout = 0
	}
	return &http.Client{Timeout: timeout}
}

func (c *DirectoryClient) roundTrip(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("gma: %w", err)
	}
	return resp, nil
}

// Register implements DirectoryService.
func (c *DirectoryClient) Register(p ProducerInfo) error {
	return c.RegisterContext(context.Background(), p)
}

// RegisterContext is Register bounded by ctx.
func (c *DirectoryClient) RegisterContext(ctx context.Context, p ProducerInfo) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	resp, err := c.roundTrip(ctx, http.MethodPost, "/gma/register", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("gma: register failed: %s", resp.Status)
	}
	return nil
}

// maxDirectoryBody bounds how much of a directory response the client will
// read before JSON decoding — a misbehaving (or impersonated) directory
// cannot make a gateway buffer an unbounded body.
const maxDirectoryBody = 1 << 20

// Deregister implements DirectoryService.
func (c *DirectoryClient) Deregister(site string) error {
	return c.DeregisterContext(context.Background(), site)
}

// DeregisterContext is Deregister bounded by ctx. The site name is
// query-escaped: sites with spaces or '&' deregister their own key, not a
// truncated one.
func (c *DirectoryClient) DeregisterContext(ctx context.Context, site string) error {
	resp, err := c.roundTrip(ctx, http.MethodDelete, "/gma/register?site="+url.QueryEscape(site), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("gma: deregister failed: %s", resp.Status)
	}
	return nil
}

// Lookup implements DirectoryService.
func (c *DirectoryClient) Lookup(site string) (ProducerInfo, bool, error) {
	return c.LookupContext(context.Background(), site)
}

// LookupContext implements ContextDirectory: the lookup request is
// cancelled when ctx expires.
func (c *DirectoryClient) LookupContext(ctx context.Context, site string) (ProducerInfo, bool, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/gma/lookup?site="+url.QueryEscape(site), nil)
	if err != nil {
		return ProducerInfo{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return ProducerInfo{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return ProducerInfo{}, false, fmt.Errorf("gma: lookup failed: %s", resp.Status)
	}
	var p ProducerInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxDirectoryBody)).Decode(&p); err != nil {
		return ProducerInfo{}, false, err
	}
	return p, true, nil
}

// Sites implements DirectoryService.
func (c *DirectoryClient) Sites() ([]string, error) {
	return c.SitesContext(context.Background())
}

// SitesContext is Sites bounded by ctx.
func (c *DirectoryClient) SitesContext(ctx context.Context) ([]string, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/gma/sites", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gma: sites failed: %s", resp.Status)
	}
	var out []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxDirectoryBody)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// ContextDirectory is implemented by directories whose lookups can be
// cancelled; DirectoryClient and MultiDirectory implement it.
type ContextDirectory interface {
	LookupContext(ctx context.Context, site string) (ProducerInfo, bool, error)
}

// ContextDeregisterer is implemented by directories whose deregistrations
// can be bounded by a context; the Registrar uses it so shutdown-time
// deregistration cannot hang the gateway.
type ContextDeregisterer interface {
	DeregisterContext(ctx context.Context, site string) error
}

var _ DirectoryService = (*Directory)(nil)
var _ DirectoryService = (*DirectoryClient)(nil)
var _ ContextDirectory = (*DirectoryClient)(nil)
var _ ContextDeregisterer = (*DirectoryClient)(nil)
