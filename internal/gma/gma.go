// Package gma implements GridRM's Global layer: the Grid Monitoring
// Architecture (GMA) interaction model of the paper's Fig 1. Gateways
// register with a GMA directory as producers of their site's resource
// data; a client may connect to any gateway, and requests for remote
// resource data are routed through the Global layer to the gateway that
// owns the data.
//
// The registration record is versioned (v1): every member of the
// federation — site gateways, republisher gateways, and entry gateways —
// registers a Registration carrying its Role and a monotonically
// increasing Generation. v0 records (the flat site/endpoint shape) are
// still accepted on the wire and map to Role "site"; v1 records marshal
// with both the "name" and legacy "site" JSON keys so v0 readers keep
// working. See DESIGN.md §7 for the compatibility rule.
//
// The package provides the directory (in-process and over HTTP), a
// Registrar that keeps a member's record fresh, the consistent-hash Ring
// that shards site ownership across republishers, and the Router that
// plugs into core.Gateway as its GlobalRouter.
package gma

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// Role classifies a federation member in the directory.
type Role string

const (
	// RoleSite is a leaf gateway producing one site's resource data.
	RoleSite Role = "site"
	// RoleRepublisher is an intermediate gateway re-serving merged views
	// of the child sites it owns on the ring (R-GMA's republisher).
	RoleRepublisher Role = "republisher"
	// RoleEntry is a client-facing gateway that plans fan-outs; it
	// registers so operators can see it, but is never a query target.
	RoleEntry Role = "entry"
)

// valid reports whether the role is one the directory accepts.
func (r Role) valid() bool {
	switch r {
	case RoleSite, RoleRepublisher, RoleEntry:
		return true
	}
	return false
}

// Registration is one federation member's directory record (v1).
type Registration struct {
	// Name is the member's unique name: the site name for Role "site",
	// the republisher name otherwise.
	Name string
	// Endpoint is the member's servlet base URL ("http://host:port").
	Endpoint string
	// Role classifies the member; empty normalises to RoleSite (the v0
	// shim: old register calls carry no role).
	Role Role
	// Groups lists the GLUE groups the member can answer for.
	Groups []string
	// Owns is advisory: the sites a republisher currently owns on the
	// ring. Routing recomputes ownership from the ring rather than trust
	// this field; it exists for operators and tests.
	Owns []string
	// Generation increases whenever the member's identity-relevant fields
	// (endpoint, role) change. The directory bumps it on change even when
	// the caller leaves it zero; routers use it to invalidate cached
	// lookups that predate a re-registration.
	Generation uint64
	// RegisteredAt is when the record was last refreshed.
	RegisteredAt time.Time
}

// wireRegistration is the JSON shape of a Registration. It carries both
// the v1 "name" key and the v0 "site" key: v1 writers populate both so v0
// readers keep resolving endpoints, and the decoder prefers "name" but
// falls back to "site" so v0 writers are still accepted.
type wireRegistration struct {
	Name         string    `json:"name,omitempty"`
	Site         string    `json:"site,omitempty"`
	Endpoint     string    `json:"endpoint"`
	Role         string    `json:"role,omitempty"`
	Groups       []string  `json:"groups,omitempty"`
	Owns         []string  `json:"owns,omitempty"`
	Generation   uint64    `json:"generation,omitempty"`
	RegisteredAt time.Time `json:"registeredAt"`
}

// MarshalJSON writes the v1 wire form, duplicating Name into the legacy
// "site" key for v0 readers.
func (r Registration) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireRegistration{
		Name: r.Name, Site: r.Name, Endpoint: r.Endpoint, Role: string(r.Role),
		Groups: r.Groups, Owns: r.Owns, Generation: r.Generation, RegisteredAt: r.RegisteredAt,
	})
}

// UnmarshalJSON accepts both v1 records and v0 ProducerInfo records: the
// name comes from "name" when present and "site" otherwise, and a missing
// role normalises to RoleSite.
func (r *Registration) UnmarshalJSON(b []byte) error {
	var w wireRegistration
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	name := w.Name
	if name == "" {
		name = w.Site
	}
	*r = Registration{
		Name: name, Endpoint: w.Endpoint, Role: Role(w.Role),
		Groups: w.Groups, Owns: w.Owns, Generation: w.Generation, RegisteredAt: w.RegisteredAt,
	}
	r.normalize()
	return nil
}

// normalize applies the v0 shim: an empty role is a site.
func (r *Registration) normalize() {
	if r.Role == "" {
		r.Role = RoleSite
	}
}

// ProducerInfo is the v0 registration record, kept one release as a
// deprecated shim for callers that predate roles.
//
// Deprecated: use Registration. A ProducerInfo converts with
// [ProducerInfo.Registration]; the directory wire format still accepts
// the v0 JSON shape directly.
type ProducerInfo struct {
	// Site is the producer's site name (unique key).
	Site string `json:"site"`
	// Endpoint is the gateway's servlet base URL ("http://host:port").
	Endpoint string `json:"endpoint"`
	// Groups lists the GLUE groups the site can answer for.
	Groups []string `json:"groups,omitempty"`
	// RegisteredAt is when the record was last refreshed.
	RegisteredAt time.Time `json:"registeredAt"`
}

// Registration converts the v0 record to its v1 form (Role "site").
func (p ProducerInfo) Registration() Registration {
	return Registration{Name: p.Site, Endpoint: p.Endpoint, Role: RoleSite,
		Groups: p.Groups, RegisteredAt: p.RegisteredAt}
}

// DirectoryService is the GMA directory contract shared by the in-process
// directory and the HTTP client.
type DirectoryService interface {
	// Register adds or refreshes a member record.
	Register(r Registration) error
	// Deregister removes a member by name.
	Deregister(name string) error
	// Lookup finds a member by name, whatever its role.
	Lookup(name string) (Registration, bool, error)
	// Sites lists registered members with Role "site", sorted — the
	// fan-out universe. Republishers and entries never appear here.
	Sites() ([]string, error)
	// List returns every fresh record, sorted by name.
	List() ([]Registration, error)
}

// Directory is the in-process GMA directory with TTL-based expiry of
// stale member records.
type Directory struct {
	ttl   time.Duration
	clock func() time.Time

	mu      sync.RWMutex
	members map[string]Registration
}

// NewDirectory creates a directory; records older than ttl are treated as
// gone (ttl <= 0 means records never expire). The clock is injectable for
// tests; nil uses time.Now.
func NewDirectory(ttl time.Duration, clock func() time.Time) *Directory {
	if clock == nil {
		clock = time.Now
	}
	return &Directory{ttl: ttl, clock: clock, members: make(map[string]Registration)}
}

// Register implements DirectoryService. The stored Generation is
// monotonic: a re-registration that changes the endpoint or role bumps it
// even when the caller left Generation zero, and a caller-supplied larger
// Generation always wins — so routers can detect a re-registered member
// without comparing endpoints themselves.
func (d *Directory) Register(r Registration) error {
	r.normalize()
	if r.Name == "" || r.Endpoint == "" {
		return fmt.Errorf("gma: registration needs name and endpoint")
	}
	if !r.Role.valid() {
		return fmt.Errorf("gma: unknown role %q", r.Role)
	}
	r.RegisteredAt = d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.members[r.Name]; ok {
		switch {
		case r.Generation > prev.Generation:
			// Caller-supplied bump wins.
		case r.Endpoint != prev.Endpoint || r.Role != prev.Role:
			r.Generation = prev.Generation + 1
		default:
			r.Generation = prev.Generation
		}
	} else if r.Generation == 0 {
		r.Generation = 1
	}
	d.members[r.Name] = r
	return nil
}

// Deregister implements DirectoryService.
func (d *Directory) Deregister(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.members[name]; !ok {
		return fmt.Errorf("gma: %q not registered", name)
	}
	delete(d.members, name)
	return nil
}

func (d *Directory) fresh(r Registration) bool {
	return d.ttl <= 0 || d.clock().Sub(r.RegisteredAt) <= d.ttl
}

// Lookup implements DirectoryService.
func (d *Directory) Lookup(name string) (Registration, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	r, ok := d.members[name]
	if !ok || !d.fresh(r) {
		return Registration{}, false, nil
	}
	return r, true, nil
}

// Sites implements DirectoryService.
func (d *Directory) Sites() ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.members))
	for name, r := range d.members {
		if r.Role == RoleSite && d.fresh(r) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// List implements DirectoryService.
func (d *Directory) List() ([]Registration, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Registration, 0, len(d.members))
	for _, r := range d.members {
		if d.fresh(r) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Producers returns all fresh site records in v0 form, sorted by site.
//
// Deprecated: use List, which includes republishers and entries and
// carries roles and generations.
func (d *Directory) Producers() []ProducerInfo {
	regs, _ := d.List()
	out := make([]ProducerInfo, 0, len(regs))
	for _, r := range regs {
		if r.Role != RoleSite {
			continue
		}
		out = append(out, ProducerInfo{Site: r.Name, Endpoint: r.Endpoint,
			Groups: r.Groups, RegisteredAt: r.RegisteredAt})
	}
	return out
}

// Prune drops expired records and reports how many were removed.
func (d *Directory) Prune() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for name, r := range d.members {
		if !d.fresh(r) {
			delete(d.members, name)
			n++
		}
	}
	return n
}

// Handler returns the directory's HTTP interface:
//
//	POST   /gma/register       body: Registration (v0 ProducerInfo accepted)
//	DELETE /gma/register?site=
//	GET    /gma/lookup?site=
//	GET    /gma/sites
//	GET    /gma/registrations
//
// The ?site= parameter names the member (any role); the v0 parameter name
// is kept for wire compatibility.
func (d *Directory) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/gma/register", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var reg Registration
			if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := d.Register(reg); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if err := d.Deregister(r.URL.Query().Get("site")); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/gma/lookup", func(w http.ResponseWriter, r *http.Request) {
		reg, ok, err := d.Lookup(r.URL.Query().Get("site"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "unknown member", http.StatusNotFound)
			return
		}
		writeJSON(w, reg)
	})
	mux.HandleFunc("/gma/sites", func(w http.ResponseWriter, r *http.Request) {
		sites, err := d.Sites()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, sites)
	})
	mux.HandleFunc("/gma/registrations", func(w http.ResponseWriter, r *http.Request) {
		regs, err := d.List()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, regs)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// DefaultClientTimeout bounds DirectoryClient requests when neither Timeout
// nor HTTPClient is configured.
const DefaultClientTimeout = 5 * time.Second

// DirectoryClient talks to a remote Directory over HTTP.
type DirectoryClient struct {
	// BaseURL is the directory host base, e.g. "http://127.0.0.1:9000".
	BaseURL string
	// Timeout bounds each directory request when HTTPClient is nil
	// (default DefaultClientTimeout; negative disables, leaving only the
	// caller's context to bound the request).
	Timeout time.Duration
	// HTTPClient is optional; nil uses a Timeout-bounded client.
	HTTPClient *http.Client
}

func (c *DirectoryClient) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultClientTimeout
	} else if timeout < 0 {
		timeout = 0
	}
	return &http.Client{Timeout: timeout}
}

func (c *DirectoryClient) roundTrip(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("gma: %w", err)
	}
	return resp, nil
}

// Register implements DirectoryService.
func (c *DirectoryClient) Register(r Registration) error {
	return c.RegisterContext(context.Background(), r)
}

// RegisterContext is Register bounded by ctx.
func (c *DirectoryClient) RegisterContext(ctx context.Context, r Registration) error {
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	resp, err := c.roundTrip(ctx, http.MethodPost, "/gma/register", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("gma: register failed: %s", resp.Status)
	}
	return nil
}

// maxDirectoryBody bounds how much of a directory response the client will
// read before JSON decoding — a misbehaving (or impersonated) directory
// cannot make a gateway buffer an unbounded body.
const maxDirectoryBody = 1 << 20

// Deregister implements DirectoryService.
func (c *DirectoryClient) Deregister(name string) error {
	return c.DeregisterContext(context.Background(), name)
}

// DeregisterContext is Deregister bounded by ctx. The member name is
// query-escaped: names with spaces or '&' deregister their own key, not a
// truncated one.
func (c *DirectoryClient) DeregisterContext(ctx context.Context, name string) error {
	resp, err := c.roundTrip(ctx, http.MethodDelete, "/gma/register?site="+url.QueryEscape(name), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("gma: deregister failed: %s", resp.Status)
	}
	return nil
}

// Lookup implements DirectoryService.
func (c *DirectoryClient) Lookup(name string) (Registration, bool, error) {
	return c.LookupContext(context.Background(), name)
}

// LookupContext implements ContextDirectory: the lookup request is
// cancelled when ctx expires.
func (c *DirectoryClient) LookupContext(ctx context.Context, name string) (Registration, bool, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/gma/lookup?site="+url.QueryEscape(name), nil)
	if err != nil {
		return Registration{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Registration{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return Registration{}, false, fmt.Errorf("gma: lookup failed: %s", resp.Status)
	}
	var r Registration
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxDirectoryBody)).Decode(&r); err != nil {
		return Registration{}, false, err
	}
	return r, true, nil
}

// Sites implements DirectoryService.
func (c *DirectoryClient) Sites() ([]string, error) {
	return c.SitesContext(context.Background())
}

// SitesContext is Sites bounded by ctx.
func (c *DirectoryClient) SitesContext(ctx context.Context) ([]string, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/gma/sites", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gma: sites failed: %s", resp.Status)
	}
	var out []string
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxDirectoryBody)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// List implements DirectoryService.
func (c *DirectoryClient) List() ([]Registration, error) {
	return c.ListContext(context.Background())
}

// ListContext is List bounded by ctx. Against a v0 directory (no
// /gma/registrations route) it degrades to Sites + Lookups so a v1 router
// can still plan against an un-upgraded directory.
func (c *DirectoryClient) ListContext(ctx context.Context) ([]Registration, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/gma/registrations", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return c.listViaLookups(ctx)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gma: registrations failed: %s", resp.Status)
	}
	var out []Registration
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxDirectoryBody)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// listViaLookups reconstructs the registration list from the v0 routes.
func (c *DirectoryClient) listViaLookups(ctx context.Context) ([]Registration, error) {
	sites, err := c.SitesContext(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]Registration, 0, len(sites))
	for _, s := range sites {
		r, ok, err := c.LookupContext(ctx, s)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// ContextDirectory is implemented by directories whose lookups can be
// cancelled; DirectoryClient and MultiDirectory implement it.
type ContextDirectory interface {
	LookupContext(ctx context.Context, name string) (Registration, bool, error)
}

// ContextLister is implemented by directories whose registration listings
// can be cancelled; the Router uses it when refreshing its fan-out plan.
type ContextLister interface {
	ListContext(ctx context.Context) ([]Registration, error)
}

// ContextRegistrar is implemented by directories whose registrations can
// be bounded by a context; republishers use it so a refresh cycle cannot
// hang on a slow directory.
type ContextRegistrar interface {
	RegisterContext(ctx context.Context, r Registration) error
}

// ContextDeregisterer is implemented by directories whose deregistrations
// can be bounded by a context; the Registrar uses it so shutdown-time
// deregistration cannot hang the gateway.
type ContextDeregisterer interface {
	DeregisterContext(ctx context.Context, name string) error
}

var _ DirectoryService = (*Directory)(nil)
var _ DirectoryService = (*DirectoryClient)(nil)
var _ ContextDirectory = (*DirectoryClient)(nil)
var _ ContextLister = (*DirectoryClient)(nil)
var _ ContextDeregisterer = (*DirectoryClient)(nil)
var _ ContextRegistrar = (*DirectoryClient)(nil)
