package gma

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"gridrm/internal/core"
)

func TestDirectoryRegisterLookup(t *testing.T) {
	d := NewDirectory(0, nil)
	if err := d.Register(Registration{Name: "A", Endpoint: "http://a"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Registration{}); err == nil {
		t.Error("empty producer accepted")
	}
	p, ok, err := d.Lookup("A")
	if err != nil || !ok || p.Endpoint != "http://a" {
		t.Errorf("Lookup = %+v, %v, %v", p, ok, err)
	}
	if p.RegisteredAt.IsZero() {
		t.Error("RegisteredAt not stamped")
	}
	if _, ok, _ := d.Lookup("B"); ok {
		t.Error("unknown site found")
	}
	sites, _ := d.Sites()
	if len(sites) != 1 || sites[0] != "A" {
		t.Errorf("Sites = %v", sites)
	}
	if err := d.Deregister("A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Deregister("A"); err == nil {
		t.Error("double deregister accepted")
	}
}

func TestDirectoryTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDirectory(10*time.Second, func() time.Time { return now })
	_ = d.Register(Registration{Name: "A", Endpoint: "http://a"})
	now = now.Add(5 * time.Second)
	if _, ok, _ := d.Lookup("A"); !ok {
		t.Error("fresh record expired")
	}
	now = now.Add(6 * time.Second)
	if _, ok, _ := d.Lookup("A"); ok {
		t.Error("stale record returned")
	}
	if sites, _ := d.Sites(); len(sites) != 0 {
		t.Errorf("stale sites = %v", sites)
	}
	if n := d.Prune(); n != 1 {
		t.Errorf("pruned %d", n)
	}
	// Re-registration refreshes.
	_ = d.Register(Registration{Name: "A", Endpoint: "http://a"})
	if _, ok, _ := d.Lookup("A"); !ok {
		t.Error("re-registered record missing")
	}
}

func TestDirectoryProducersSorted(t *testing.T) {
	d := NewDirectory(0, nil)
	_ = d.Register(Registration{Name: "B", Endpoint: "http://b"})
	_ = d.Register(Registration{Name: "A", Endpoint: "http://a"})
	ps := d.Producers()
	if len(ps) != 2 || ps[0].Site != "A" || ps[1].Site != "B" {
		t.Errorf("producers = %v", ps)
	}
}

func TestDirectoryHTTP(t *testing.T) {
	d := NewDirectory(0, nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	c := &DirectoryClient{BaseURL: srv.URL}
	if err := c.Register(Registration{Name: "A", Endpoint: "http://a", Groups: []string{"Processor"}}); err != nil {
		t.Fatal(err)
	}
	p, ok, err := c.Lookup("A")
	if err != nil || !ok || p.Endpoint != "http://a" || len(p.Groups) != 1 {
		t.Errorf("Lookup = %+v, %v, %v", p, ok, err)
	}
	if _, ok, err := c.Lookup("nope"); err != nil || ok {
		t.Errorf("missing lookup = %v, %v", ok, err)
	}
	sites, err := c.Sites()
	if err != nil || len(sites) != 1 {
		t.Errorf("Sites = %v, %v", sites, err)
	}
	if err := c.Deregister("A"); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister("A"); err == nil {
		t.Error("double deregister over HTTP accepted")
	}
	if err := c.Register(Registration{}); err == nil {
		t.Error("bad register over HTTP accepted")
	}
}

func TestDirectoryClientConnectionErrors(t *testing.T) {
	c := &DirectoryClient{BaseURL: "http://127.0.0.1:1"}
	if err := c.Register(Registration{Name: "A", Endpoint: "x"}); err == nil {
		t.Error("register to dead directory succeeded")
	}
	if _, _, err := c.Lookup("A"); err == nil {
		t.Error("lookup to dead directory succeeded")
	}
	if _, err := c.Sites(); err == nil {
		t.Error("sites to dead directory succeeded")
	}
}

func TestRegistrarLifecycle(t *testing.T) {
	d := NewDirectory(0, nil)
	r := NewRegistrar(d, Registration{Name: "A", Endpoint: "http://a"}, 10*time.Millisecond)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Lookup("A"); !ok {
		t.Fatal("not registered after Start")
	}
	first, _, _ := d.Lookup("A")
	deadline := time.Now().Add(2 * time.Second)
	refreshed := false
	for time.Now().Before(deadline) {
		p, _, _ := d.Lookup("A")
		if p.RegisteredAt.After(first.RegisteredAt) {
			refreshed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !refreshed {
		t.Error("record never refreshed")
	}
	r.Stop()
	if _, ok, _ := d.Lookup("A"); ok {
		t.Error("still registered after Stop")
	}
	r.Stop() // idempotent
}

func TestRegistrarStartFailure(t *testing.T) {
	d := NewDirectory(0, nil)
	r := NewRegistrar(d, Registration{}, time.Second)
	if err := r.Start(); err == nil {
		t.Error("start with bad info succeeded")
	}
}

func TestRouter(t *testing.T) {
	d := NewDirectory(0, nil)
	_ = d.Register(Registration{Name: "A", Endpoint: "http://a"})
	_ = d.Register(Registration{Name: "B", Endpoint: "http://b"})

	var gotEndpoint string
	exec := func(endpoint string, req core.QueryOptions) (*core.Response, error) {
		gotEndpoint = endpoint
		return &core.Response{Site: req.Site}, nil
	}
	r := NewRouter(d, exec, "A")
	resp, err := r.RemoteQuery("B", core.QueryOptions{Site: "B", SQL: "SELECT * FROM Processor"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != "B" || gotEndpoint != "http://b" {
		t.Errorf("routed to %q, resp %+v", gotEndpoint, resp)
	}
	if _, err := r.RemoteQuery("C", core.QueryOptions{}); err == nil {
		t.Error("unknown site routed")
	}
	sites := r.Sites()
	if len(sites) != 1 || sites[0] != "B" {
		t.Errorf("Sites = %v (must exclude local)", sites)
	}
}

func TestRouterExecError(t *testing.T) {
	d := NewDirectory(0, nil)
	_ = d.Register(Registration{Name: "B", Endpoint: "http://b"})
	exec := func(string, core.QueryOptions) (*core.Response, error) {
		return nil, fmt.Errorf("boom")
	}
	r := NewRouter(d, exec, "A")
	if _, err := r.RemoteQuery("B", core.QueryOptions{}); err == nil {
		t.Error("exec error swallowed")
	}
}
