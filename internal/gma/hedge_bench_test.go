package gma

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/core"
)

// stragglerExec simulates a remote gateway with a heavy latency tail: most
// calls answer fast, but every tailEvery-th call straggles — the regime
// where hedging pays (Dean/Barroso tail tolerance).
func stragglerExec(fast, slow time.Duration, tailEvery int64) ExecContext {
	var n atomic.Int64
	return func(ctx context.Context, _ string, req core.QueryOptions) (*core.Response, error) {
		d := fast
		if n.Add(1)%tailEvery == 0 {
			d = slow
		}
		select {
		case <-time.After(d):
			return &core.Response{Site: req.Site}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func benchRouterTail(b *testing.B, hedgeAfter time.Duration) {
	dir := NewDirectory(0, nil)
	_ = dir.Register(Registration{Name: "B", Endpoint: "http://b"})
	exec := stragglerExec(time.Millisecond, 30*time.Millisecond, 10)
	r := NewResilientRouter(dir, exec, "A", Config{
		LookupTTL:  time.Hour,
		HedgeAfter: hedgeAfter,
	})
	req := core.QueryOptions{Site: "B", SQL: "SELECT * FROM Processor"}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := r.RemoteQuery("B", req); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p := func(q float64) time.Duration { return lat[int(float64(len(lat)-1)*q)] }
	b.ReportMetric(float64(p(0.50))/1e6, "p50-ms")
	b.ReportMetric(float64(p(0.99))/1e6, "p99-ms")
	if h := r.Stats().Hedges; h > 0 {
		b.ReportMetric(float64(h), "hedges")
	}
}

// BenchmarkRemoteQueryUnhedged vs BenchmarkRemoteQueryHedged demonstrate
// the tail cut: with a 10% straggler rate, the unhedged p99 sits at the
// slow-path latency while the hedged p99 collapses toward fast+hedge delay.
func BenchmarkRemoteQueryUnhedged(b *testing.B) { benchRouterTail(b, 0) }

func BenchmarkRemoteQueryHedged(b *testing.B) { benchRouterTail(b, 3*time.Millisecond) }
