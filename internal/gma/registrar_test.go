package gma

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRegistrarRestart is the regression test for the closed-stop-channel
// bug: a Stop→Start cycle must yield a registrar that registers and keeps
// refreshing, instead of a refresh loop that exits immediately because it
// observes the previous run's closed stop channel.
func TestRegistrarRestart(t *testing.T) {
	d := NewDirectory(0, nil)
	r := NewRegistrar(d, Registration{Name: "A", Endpoint: "http://a"}, 10*time.Millisecond)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if _, ok, _ := d.Lookup("A"); ok {
		t.Fatal("still registered after Stop")
	}

	if err := r.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer r.Stop()
	first, ok, _ := d.Lookup("A")
	if !ok {
		t.Fatal("not registered after restart")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p, _, _ := d.Lookup("A"); p.RegisteredAt.After(first.RegisteredAt) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("restarted registrar never refreshed the record")
}

// TestRegistrarSurvivesDirectoryOutage: Start must not fail when the
// directory is down — registration lands via background retries once the
// directory comes back, and the state listener sees the flips.
func TestRegistrarSurvivesDirectoryOutage(t *testing.T) {
	dir := newFlakyDir()
	dir.setDown(true)
	r := NewRegistrar(dir, Registration{Name: "A", Endpoint: "http://a"}, 40*time.Millisecond)

	var mu sync.Mutex
	var flips []bool
	r.SetStateListener(func(reachable bool, err error) {
		if !reachable && err == nil {
			t.Error("unreachable flip without an error")
		}
		mu.Lock()
		flips = append(flips, reachable)
		mu.Unlock()
	})

	if err := r.Start(); err != nil {
		t.Fatalf("Start failed for a transient outage: %v", err)
	}
	defer r.Stop()
	if r.Registered() {
		t.Error("Registered() true while the directory is down")
	}
	mu.Lock()
	if len(flips) != 1 || flips[0] {
		t.Errorf("initial flips = %v, want [false]", flips)
	}
	mu.Unlock()

	// The directory recovers; the backoff loop must land the registration.
	dir.setDown(false)
	deadline := time.Now().Add(3 * time.Second)
	for !r.Registered() {
		if time.Now().After(deadline) {
			t.Fatal("registration never landed after recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok, _ := dir.Directory.Lookup("A"); !ok {
		t.Error("directory has no record despite Registered()")
	}
	mu.Lock()
	if len(flips) != 2 || !flips[1] {
		t.Errorf("flips after recovery = %v, want [false true]", flips)
	}
	mu.Unlock()
	if st := r.Stats(); st.Failures == 0 || st.Registrations == 0 {
		t.Errorf("stats = %+v, want both failures and registrations", st)
	}
}

// TestRegistrarReRegistrationFlips: a directory that goes down after a
// healthy start flips the listener to unreachable, and back on recovery.
func TestRegistrarReRegistrationFlips(t *testing.T) {
	dir := newFlakyDir()
	r := NewRegistrar(dir, Registration{Name: "A", Endpoint: "http://a"}, 20*time.Millisecond)
	var mu sync.Mutex
	var flips []bool
	r.SetStateListener(func(reachable bool, _ error) {
		mu.Lock()
		flips = append(flips, reachable)
		mu.Unlock()
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	dir.setDown(true)
	waitFlips := func(n int) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			mu.Lock()
			got := len(flips)
			mu.Unlock()
			if got >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d flips after waiting, want %d", got, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFlips(2) // [true, false]
	dir.setDown(false)
	waitFlips(3) // [true, false, true]
	mu.Lock()
	defer mu.Unlock()
	if !flips[0] || flips[1] || !flips[2] {
		t.Errorf("flips = %v, want [true false true]", flips)
	}
}

// TestRegistrarStopBounded: Stop against an unreachable directory must not
// hang on deregistration.
func TestRegistrarStopBounded(t *testing.T) {
	srv := httptest.NewServer(nil)
	base := srv.URL
	srv.Close() // nothing listens any more
	c := &DirectoryClient{BaseURL: base, Timeout: 100 * time.Millisecond}
	r := NewRegistrar(c, Registration{Name: "A", Endpoint: "http://a"}, time.Minute)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(deregisterTimeout + 2*time.Second):
		t.Fatal("Stop hung on an unreachable directory")
	}
}
