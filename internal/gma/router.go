package gma

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/breaker"
	"gridrm/internal/core"
	"gridrm/internal/metrics"
	"gridrm/internal/trace"
)

// Exec forwards a query to a remote gateway endpoint; internal/web's
// RemoteQuery is the HTTP implementation.
type Exec func(endpoint string, req core.QueryOptions) (*core.Response, error)

// ExecContext forwards a query to a remote gateway endpoint, bounded by ctx;
// internal/web's RemoteQueryContext is the HTTP implementation.
type ExecContext func(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error)

// Config configures the Router's resilience features. The zero value (used
// by NewRouter and NewContextRouter) keeps the seed behaviour: no lookup
// cache, no per-endpoint breaker, no retries, no hedging.
type Config struct {
	// LookupTTL is how long a directory lookup (and the remote-sites list)
	// is served from the router's cache without consulting the directory.
	// Expired entries are still kept and served stale when every directory
	// replica is unreachable — the Global-layer analogue of the local
	// stale-cache degradation tier (0 disables caching entirely).
	LookupTTL time.Duration
	// Breaker configures the per-remote-endpoint circuit breaker
	// (Threshold 0 = breaker defaults; negative disables).
	Breaker breaker.Options
	// RetryAttempts is how many additional attempts a failed remote query
	// gets, with exponential backoff, while the caller's ctx allows.
	RetryAttempts int
	// RetryBackoff is the wait before the first retry, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// HedgeAfter launches a second identical remote query when the first
	// has not answered after this long; the first response wins and the
	// loser is cancelled (0 disables hedging). Requires an ExecContext.
	HedgeAfter time.Duration
	// Clock is injectable for tests; nil uses time.Now.
	Clock func() time.Time
}

// Stats counts Router activity.
type Stats struct {
	// RemoteQueries counts remote queries attempted (before retries).
	RemoteQueries int64
	// RemoteFailures counts remote queries that failed after all retries.
	RemoteFailures int64
	// RemoteRetries counts retry attempts performed.
	RemoteRetries int64
	// RemoteBreakerOpens counts closed-to-open transitions of per-endpoint
	// breakers.
	RemoteBreakerOpens int64
	// RemoteBreakerSkipped counts remote queries rejected cheaply because
	// the endpoint's breaker was open.
	RemoteBreakerSkipped int64
	// Hedges counts hedge requests launched for straggling remote queries.
	Hedges int64
	// HedgeWins counts hedge requests that answered before the original.
	HedgeWins int64
	// LookupCacheHits counts directory lookups served fresh from the cache.
	LookupCacheHits int64
	// StaleLookups counts lookups (and site lists) served from an expired
	// cache entry because the directory was unreachable.
	StaleLookups int64
}

// cachedLookup is one site's cached producer record.
type cachedLookup struct {
	p  ProducerInfo
	at time.Time
}

// Router routes remote-site queries via the GMA directory; it implements
// core.GlobalRouter and core.ContextRouter. Built with NewResilientRouter
// it adds a TTL'd lookup cache with stale-on-error semantics, a circuit
// breaker per remote endpoint, retries with backoff, and optional hedging
// of straggling remote queries.
type Router struct {
	dir     DirectoryService
	exec    Exec
	execCtx ExecContext
	// local is the local site name, excluded from Sites().
	local string
	cfg   Config
	clock func() time.Time

	mu       sync.Mutex
	lookups  map[string]cachedLookup // by site
	sites    []string                // last known remote-sites list
	sitesAt  time.Time
	breakers map[string]*breaker.Breaker // by endpoint

	remoteQueries, remoteFailures, remoteRetries atomic.Int64
	breakerOpens, breakerSkipped                 atomic.Int64
	hedges, hedgeWins                            atomic.Int64
	lookupHits, staleLookups                     atomic.Int64
}

// NewRouter creates a plain Router for the gateway named local; remote
// queries run context-free and without resilience features.
func NewRouter(dir DirectoryService, exec Exec, local string) *Router {
	return newRouter(dir, exec, nil, local, Config{})
}

// NewContextRouter creates a Router whose remote queries honour contexts
// end-to-end: the directory lookup (when dir implements ContextDirectory)
// and the forwarded query are both cancelled at the caller's deadline.
func NewContextRouter(dir DirectoryService, exec ExecContext, local string) *Router {
	return newRouter(dir, nil, exec, local, Config{})
}

// NewResilientRouter creates a context-threading Router with the federation
// resilience layer enabled: cfg.LookupTTL defaults to 15s, cfg.Breaker to
// the shared breaker defaults (5 failures / 30s cooldown).
func NewResilientRouter(dir DirectoryService, exec ExecContext, local string, cfg Config) *Router {
	if cfg.LookupTTL == 0 {
		cfg.LookupTTL = 15 * time.Second
	}
	if cfg.LookupTTL < 0 {
		cfg.LookupTTL = 0
	}
	cfg.Breaker = cfg.Breaker.Fill()
	if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	return newRouter(dir, nil, exec, local, cfg)
}

func newRouter(dir DirectoryService, exec Exec, execCtx ExecContext, local string, cfg Config) *Router {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Router{
		dir: dir, exec: exec, execCtx: execCtx, local: local, cfg: cfg, clock: clock,
		lookups:  make(map[string]cachedLookup),
		breakers: make(map[string]*breaker.Breaker),
	}
}

// Stats returns the router's counters.
func (r *Router) Stats() Stats {
	return Stats{
		RemoteQueries:        r.remoteQueries.Load(),
		RemoteFailures:       r.remoteFailures.Load(),
		RemoteRetries:        r.remoteRetries.Load(),
		RemoteBreakerOpens:   r.breakerOpens.Load(),
		RemoteBreakerSkipped: r.breakerSkipped.Load(),
		Hedges:               r.hedges.Load(),
		HedgeWins:            r.hedgeWins.Load(),
		LookupCacheHits:      r.lookupHits.Load(),
		StaleLookups:         r.staleLookups.Load(),
	}
}

// RegisterMetrics exports the router's counters — and, when the directory
// is a MultiDirectory, replica health gauges — into a metrics registry
// (typically the gateway's, so they appear on GET /metrics).
func (r *Router) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("gridrm_remote_queries_total", "Remote gateway queries attempted.", r.remoteQueries.Load)
	reg.CounterFunc("gridrm_remote_failures_total", "Remote gateway queries that failed after retries.", r.remoteFailures.Load)
	reg.CounterFunc("gridrm_remote_retries_total", "Remote query retry attempts performed.", r.remoteRetries.Load)
	reg.CounterFunc("gridrm_remote_breaker_opens_total", "Per-endpoint breaker closed-to-open transitions.", r.breakerOpens.Load)
	reg.CounterFunc("gridrm_remote_breaker_skipped_total", "Remote queries rejected because the endpoint breaker was open.", r.breakerSkipped.Load)
	reg.CounterFunc("gridrm_remote_hedges_total", "Hedge requests launched for straggling remote queries.", r.hedges.Load)
	reg.CounterFunc("gridrm_remote_hedge_wins_total", "Hedge requests that answered before the original.", r.hedgeWins.Load)
	reg.CounterFunc("gridrm_lookup_cache_hits_total", "Directory lookups served fresh from the router cache.", r.lookupHits.Load)
	reg.CounterFunc("gridrm_stale_lookups_total", "Lookups served from an expired cache entry during a directory outage.", r.staleLookups.Load)
	if md, ok := r.dir.(*MultiDirectory); ok {
		reg.GaugeFunc("gridrm_directory_replicas_healthy", "Directory replicas whose last operation succeeded.",
			func() float64 {
				n := 0
				for _, h := range md.ReplicaHealth() {
					if h.Healthy {
						n++
					}
				}
				return float64(n)
			})
		reg.GaugeFunc("gridrm_directory_replicas", "Directory replicas configured.",
			func() float64 { return float64(len(md.ReplicaHealth())) })
	}
}

// endpointBreaker returns the breaker guarding one remote endpoint,
// creating it on first use (nil when breakers are not configured).
func (r *Router) endpointBreaker(endpoint string) *breaker.Breaker {
	if r.cfg.Breaker.Threshold == 0 { // zero Config: breakers off
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	br, ok := r.breakers[endpoint]
	if !ok {
		br = breaker.New(r.cfg.Breaker)
		r.breakers[endpoint] = br
	}
	return br
}

// EndpointBreakerState reports one endpoint's breaker state ("closed" when
// breakers are not configured), for tests and the management view.
func (r *Router) EndpointBreakerState(endpoint string) string {
	br := r.endpointBreaker(endpoint)
	if br == nil {
		return string(breaker.Closed)
	}
	return string(br.State(r.clock()))
}

// lookup resolves a site to its producer record: fresh cache entry first,
// then the directory, falling back to a stale cache entry when every
// directory replica is unreachable.
func (r *Router) lookup(ctx context.Context, site string) (ProducerInfo, error) {
	now := r.clock()
	caching := r.cfg.LookupTTL > 0
	if caching {
		r.mu.Lock()
		c, ok := r.lookups[site]
		r.mu.Unlock()
		if ok && now.Sub(c.at) <= r.cfg.LookupTTL {
			r.lookupHits.Add(1)
			return c.p, nil
		}
	}
	var (
		p   ProducerInfo
		ok  bool
		err error
	)
	if cd, isCtx := r.dir.(ContextDirectory); isCtx {
		p, ok, err = cd.LookupContext(ctx, site)
	} else {
		p, ok, err = r.dir.Lookup(site)
	}
	if err != nil {
		if caching {
			// Stale-on-error: a warm entry outlives a full directory
			// outage, like the local layer's stale-cache degradation tier.
			r.mu.Lock()
			c, cached := r.lookups[site]
			r.mu.Unlock()
			if cached {
				r.staleLookups.Add(1)
				return c.p, nil
			}
		}
		return ProducerInfo{}, fmt.Errorf("gma: directory lookup for %q: %w", site, err)
	}
	if !ok {
		// Authoritative not-found: drop any stale record so a deregistered
		// site stops being routable at the next TTL boundary.
		if caching {
			r.mu.Lock()
			delete(r.lookups, site)
			r.mu.Unlock()
		}
		return ProducerInfo{}, fmt.Errorf("gma: no producer registered for site %q", site)
	}
	if caching {
		r.mu.Lock()
		r.lookups[site] = cachedLookup{p: p, at: now}
		r.mu.Unlock()
	}
	return p, nil
}

// RemoteQuery implements core.GlobalRouter.
func (r *Router) RemoteQuery(site string, req core.QueryOptions) (*core.Response, error) {
	return r.RemoteQueryContext(context.Background(), site, req)
}

// RemoteQueryContext implements core.ContextRouter: directory lookup (with
// cache), per-endpoint breaker admission, the remote call with optional
// hedging, and retries with backoff — all bounded by ctx. When the request
// is being traced the hop is recorded as a "remote-query" span; the HTTP
// exec propagates the trace context to the remote gateway and stitches its
// returned spans into the local trace.
func (r *Router) RemoteQueryContext(ctx context.Context, site string, req core.QueryOptions) (*core.Response, error) {
	ctx, sp := trace.StartSpan(ctx, "remote-query")
	if sp != nil {
		sp.SetAttr("site", site)
		defer sp.End()
	}
	p, err := r.lookup(ctx, site)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttr("endpoint", p.Endpoint)
	r.remoteQueries.Add(1)

	br := r.endpointBreaker(p.Endpoint)
	backoff := r.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if br != nil && !br.Allow(r.clock()) {
			r.breakerSkipped.Add(1)
			if lastErr != nil {
				// The breaker opened mid-retry: surface the real failure.
				break
			}
			r.remoteFailures.Add(1)
			err := fmt.Errorf("gma: circuit open for site %q (%s)", site, p.Endpoint)
			sp.SetError(err)
			return nil, err
		}
		resp, err := r.execHedged(ctx, p.Endpoint, req)
		if err == nil {
			if br != nil {
				br.OnSuccess()
			}
			return resp, nil
		}
		lastErr = err
		if br != nil && br.OnFailure(r.clock()) {
			r.breakerOpens.Add(1)
		}
		if attempt >= r.cfg.RetryAttempts || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
			lastErr = ctx.Err()
		case <-time.After(backoff):
			r.remoteRetries.Add(1)
			backoff *= 2
			continue
		}
		break
	}
	r.remoteFailures.Add(1)
	err = fmt.Errorf("gma: remote query to %s (%s): %w", site, p.Endpoint, lastErr)
	sp.SetError(err)
	return nil, err
}

// execute performs one remote call, preferring the context-threading exec.
func (r *Router) execute(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error) {
	if r.execCtx != nil {
		return r.execCtx(ctx, endpoint, req)
	}
	return r.exec(endpoint, req)
}

// execHedged performs one remote call; when HedgeAfter is configured and
// the call has not answered in time, a second identical call is launched
// and the first response wins — the Dean/Barroso hedged-request pattern for
// tail tolerance. The loser is cancelled through the shared context.
func (r *Router) execHedged(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error) {
	if r.cfg.HedgeAfter <= 0 || r.execCtx == nil {
		return r.execute(ctx, endpoint, req)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp   *core.Response
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	launch := func(hedged bool) {
		go func() {
			resp, err := r.execCtx(hctx, endpoint, req)
			ch <- result{resp: resp, err: err, hedged: hedged}
		}()
	}
	launch(false)
	outstanding := 1
	hedgeLaunched := false
	timer := time.NewTimer(r.cfg.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				r.hedges.Add(1)
				launch(true)
				outstanding++
			}
		case res := <-ch:
			if res.err == nil {
				if res.hedged {
					r.hedgeWins.Add(1)
				}
				return res.resp, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			outstanding--
			if outstanding == 0 {
				// Nothing left in flight; if the hedge never launched it
				// never will (we return before the timer matters).
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Sites implements core.GlobalRouter. With caching enabled, the remote
// sites list is cached for LookupTTL and served stale when the directory
// is unreachable, so all-sites fan-out keeps working through an outage.
func (r *Router) Sites() []string {
	now := r.clock()
	caching := r.cfg.LookupTTL > 0
	if caching {
		r.mu.Lock()
		sites, at := r.sites, r.sitesAt
		r.mu.Unlock()
		if sites != nil && now.Sub(at) <= r.cfg.LookupTTL {
			return r.filterLocal(sites)
		}
	}
	sites, err := r.dir.Sites()
	if err != nil {
		if caching {
			r.mu.Lock()
			sites := r.sites
			r.mu.Unlock()
			if sites != nil {
				r.staleLookups.Add(1)
				return r.filterLocal(sites)
			}
		}
		return nil
	}
	if caching {
		r.mu.Lock()
		r.sites = append([]string(nil), sites...)
		r.sitesAt = now
		r.mu.Unlock()
	}
	return r.filterLocal(sites)
}

func (r *Router) filterLocal(sites []string) []string {
	out := make([]string, 0, len(sites))
	for _, s := range sites {
		if s != r.local {
			out = append(out, s)
		}
	}
	return out
}

var _ core.GlobalRouter = (*Router)(nil)
var _ core.ContextRouter = (*Router)(nil)
