package gma

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/breaker"
	"gridrm/internal/core"
	"gridrm/internal/metrics"
	"gridrm/internal/trace"
)

// Exec forwards a query to a remote gateway endpoint.
type Exec func(endpoint string, req core.QueryOptions) (*core.Response, error)

// ExecContext forwards a query to a remote gateway endpoint, bounded by ctx;
// internal/web's RemoteQueryContext is the HTTP implementation.
type ExecContext func(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error)

// Config configures the Router's resilience features. The zero value (used
// by NewRouter and NewContextRouter) keeps the seed behaviour: no lookup
// cache, no per-endpoint breaker, no retries, no hedging.
type Config struct {
	// LookupTTL is how long a directory lookup (and the registration
	// list) is served from the router's cache without consulting the
	// directory. Expired entries are still kept and served stale when
	// every directory replica is unreachable — the Global-layer analogue
	// of the local stale-cache degradation tier (0 disables caching
	// entirely).
	LookupTTL time.Duration
	// Breaker configures the per-remote-endpoint circuit breaker
	// (Threshold 0 = breaker defaults; negative disables).
	Breaker breaker.Options
	// RetryAttempts is how many additional attempts a failed remote query
	// gets, with exponential backoff, while the caller's ctx allows.
	RetryAttempts int
	// RetryBackoff is the wait before the first retry, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// HedgeAfter launches a second identical remote query when the first
	// has not answered after this long; the first response wins and the
	// loser is cancelled (0 disables hedging). Requires an ExecContext.
	HedgeAfter time.Duration
	// RingVNodes is the virtual-node count per republisher on the
	// ownership ring (0 uses DefaultVNodes).
	RingVNodes int
	// DisableRepublishers turns off republisher-first routing and
	// planning even when republishers are registered, for A/B runs.
	DisableRepublishers bool
	// Clock is injectable for tests; nil uses time.Now.
	Clock func() time.Time
}

// Stats counts Router activity.
type Stats struct {
	// RemoteQueries counts remote queries attempted (before retries).
	RemoteQueries int64
	// RemoteFailures counts remote queries that failed after all retries.
	RemoteFailures int64
	// RemoteRetries counts retry attempts performed.
	RemoteRetries int64
	// RemoteBreakerOpens counts closed-to-open transitions of per-endpoint
	// breakers.
	RemoteBreakerOpens int64
	// RemoteBreakerSkipped counts remote queries rejected cheaply because
	// the endpoint's breaker was open.
	RemoteBreakerSkipped int64
	// Hedges counts hedge requests launched for straggling remote queries.
	Hedges int64
	// HedgeWins counts hedge requests that answered before the original.
	HedgeWins int64
	// LookupCacheHits counts directory lookups served fresh from the cache.
	LookupCacheHits int64
	// StaleLookups counts lookups (and registration lists) served from an
	// expired cache entry because the directory was unreachable.
	StaleLookups int64
	// RepubRoutes counts site-scoped queries routed to the site's owning
	// republisher instead of the site itself.
	RepubRoutes int64
	// RepubFallthroughs counts republisher-routed queries that fell
	// through to the site's own gateway because the republisher failed.
	RepubFallthroughs int64
	// GenerationEvictions counts cached lookups evicted before their TTL
	// because the directory reported a newer registration Generation.
	GenerationEvictions int64
}

// cachedLookup is one member's cached registration record.
type cachedLookup struct {
	r  Registration
	at time.Time
}

// Router routes remote-site queries via the GMA directory; it implements
// core.GlobalRouter, core.ContextRouter and core.FanoutPlanner. Built with
// NewResilientRouter it adds a TTL'd lookup cache with stale-on-error
// semantics, a circuit breaker per remote endpoint, retries with backoff,
// optional hedging of straggling remote queries, and — when republishers
// are registered — consistent-hash routing of site queries through the
// owning republisher with fall-through to the site itself.
type Router struct {
	dir     DirectoryService
	exec    Exec
	execCtx ExecContext
	// local is the local site name, excluded from Sites().
	local string
	cfg   Config
	clock func() time.Time
	// dirKey identifies the directory set; cached lookups are keyed on
	// (dirKey, site) so routers sharing a cache implementation can never
	// serve an endpoint resolved against a different directory set.
	dirKey string

	mu      sync.Mutex
	lookups map[string]cachedLookup // by cacheKey(site)
	// regs is the last known registration list; ring and owners are
	// derived from it and rebuilt whenever the list is refreshed.
	regs   []Registration
	regsAt time.Time
	ring   *Ring
	// gens tracks the Generation the router last saw per member, for
	// early eviction of cached lookups on re-registration.
	gens     map[string]uint64
	breakers map[string]*breaker.Breaker // by endpoint

	remoteQueries, remoteFailures, remoteRetries atomic.Int64
	breakerOpens, breakerSkipped                 atomic.Int64
	hedges, hedgeWins                            atomic.Int64
	lookupHits, staleLookups                     atomic.Int64
	repubRoutes, repubFallthroughs               atomic.Int64
	genEvictions                                 atomic.Int64
}

// NewRouter creates a plain Router for the gateway named local; remote
// queries run context-free and without resilience features.
func NewRouter(dir DirectoryService, exec Exec, local string) *Router {
	return newRouter(dir, exec, nil, local, Config{})
}

// NewContextRouter creates a Router whose remote queries honour contexts
// end-to-end: the directory lookup (when dir implements ContextDirectory)
// and the forwarded query are both cancelled at the caller's deadline.
func NewContextRouter(dir DirectoryService, exec ExecContext, local string) *Router {
	return newRouter(dir, nil, exec, local, Config{})
}

// NewResilientRouter creates a context-threading Router with the federation
// resilience layer enabled: cfg.LookupTTL defaults to 15s, cfg.Breaker to
// the shared breaker defaults (5 failures / 30s cooldown).
func NewResilientRouter(dir DirectoryService, exec ExecContext, local string, cfg Config) *Router {
	if cfg.LookupTTL == 0 {
		cfg.LookupTTL = 15 * time.Second
	}
	if cfg.LookupTTL < 0 {
		cfg.LookupTTL = 0
	}
	cfg.Breaker = cfg.Breaker.Fill()
	if cfg.RetryAttempts < 0 {
		cfg.RetryAttempts = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	return newRouter(dir, nil, exec, local, cfg)
}

func newRouter(dir DirectoryService, exec Exec, execCtx ExecContext, local string, cfg Config) *Router {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Router{
		dir: dir, exec: exec, execCtx: execCtx, local: local, cfg: cfg, clock: clock,
		dirKey:   directoryKey(dir),
		lookups:  make(map[string]cachedLookup),
		gens:     make(map[string]uint64),
		breakers: make(map[string]*breaker.Breaker),
	}
}

// directoryKey derives a stable identity for a directory set: the replica
// URLs for a MultiDirectory, the base URL for a DirectoryClient, and the
// instance address otherwise.
func directoryKey(dir DirectoryService) string {
	switch d := dir.(type) {
	case *DirectoryClient:
		return d.BaseURL
	case *MultiDirectory:
		names := make([]string, 0, len(d.replicas))
		for _, r := range d.replicas {
			names = append(names, r.name)
		}
		sort.Strings(names)
		return strings.Join(names, ",")
	default:
		return fmt.Sprintf("%p", dir)
	}
}

// cacheKey scopes a member's cache entry to this router's directory set.
func (r *Router) cacheKey(name string) string { return r.dirKey + "\x00" + name }

// Stats returns the router's counters.
func (r *Router) Stats() Stats {
	return Stats{
		RemoteQueries:        r.remoteQueries.Load(),
		RemoteFailures:       r.remoteFailures.Load(),
		RemoteRetries:        r.remoteRetries.Load(),
		RemoteBreakerOpens:   r.breakerOpens.Load(),
		RemoteBreakerSkipped: r.breakerSkipped.Load(),
		Hedges:               r.hedges.Load(),
		HedgeWins:            r.hedgeWins.Load(),
		LookupCacheHits:      r.lookupHits.Load(),
		StaleLookups:         r.staleLookups.Load(),
		RepubRoutes:          r.repubRoutes.Load(),
		RepubFallthroughs:    r.repubFallthroughs.Load(),
		GenerationEvictions:  r.genEvictions.Load(),
	}
}

// RegisterMetrics exports the router's counters — and, when the directory
// is a MultiDirectory, replica health gauges — into a metrics registry
// (typically the gateway's, so they appear on GET /metrics).
func (r *Router) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("gridrm_remote_queries_total", "Remote gateway queries attempted.", r.remoteQueries.Load)
	reg.CounterFunc("gridrm_remote_failures_total", "Remote gateway queries that failed after retries.", r.remoteFailures.Load)
	reg.CounterFunc("gridrm_remote_retries_total", "Remote query retry attempts performed.", r.remoteRetries.Load)
	reg.CounterFunc("gridrm_remote_breaker_opens_total", "Per-endpoint breaker closed-to-open transitions.", r.breakerOpens.Load)
	reg.CounterFunc("gridrm_remote_breaker_skipped_total", "Remote queries rejected because the endpoint breaker was open.", r.breakerSkipped.Load)
	reg.CounterFunc("gridrm_remote_hedges_total", "Hedge requests launched for straggling remote queries.", r.hedges.Load)
	reg.CounterFunc("gridrm_remote_hedge_wins_total", "Hedge requests that answered before the original.", r.hedgeWins.Load)
	reg.CounterFunc("gridrm_lookup_cache_hits_total", "Directory lookups served fresh from the router cache.", r.lookupHits.Load)
	reg.CounterFunc("gridrm_stale_lookups_total", "Lookups served from an expired cache entry during a directory outage.", r.staleLookups.Load)
	reg.CounterFunc("gridrm_repub_routes_total", "Site queries routed via the owning republisher.", r.repubRoutes.Load)
	reg.CounterFunc("gridrm_repub_fallthroughs_total", "Republisher-routed queries that fell through to the site gateway.", r.repubFallthroughs.Load)
	reg.CounterFunc("gridrm_generation_evictions_total", "Cached lookups evicted early on registration generation change.", r.genEvictions.Load)
	if md, ok := r.dir.(*MultiDirectory); ok {
		reg.GaugeFunc("gridrm_directory_replicas_healthy", "Directory replicas whose last operation succeeded.",
			func() float64 {
				n := 0
				for _, h := range md.ReplicaHealth() {
					if h.Healthy {
						n++
					}
				}
				return float64(n)
			})
		reg.GaugeFunc("gridrm_directory_replicas", "Directory replicas configured.",
			func() float64 { return float64(len(md.ReplicaHealth())) })
	}
}

// endpointBreaker returns the breaker guarding one remote endpoint,
// creating it on first use (nil when breakers are not configured).
func (r *Router) endpointBreaker(endpoint string) *breaker.Breaker {
	if r.cfg.Breaker.Threshold == 0 { // zero Config: breakers off
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	br, ok := r.breakers[endpoint]
	if !ok {
		br = breaker.New(r.cfg.Breaker)
		r.breakers[endpoint] = br
	}
	return br
}

// EndpointBreakerState reports one endpoint's breaker state ("closed" when
// breakers are not configured), for tests and the management view.
func (r *Router) EndpointBreakerState(endpoint string) string {
	br := r.endpointBreaker(endpoint)
	if br == nil {
		return string(breaker.Closed)
	}
	return string(br.State(r.clock()))
}

// lookup resolves a member name to its registration: fresh cache entry
// first, then the directory, falling back to a stale cache entry when
// every directory replica is unreachable.
func (r *Router) lookup(ctx context.Context, name string) (Registration, error) {
	now := r.clock()
	caching := r.cfg.LookupTTL > 0
	key := r.cacheKey(name)
	if caching {
		r.mu.Lock()
		c, ok := r.lookups[key]
		r.mu.Unlock()
		if ok && now.Sub(c.at) <= r.cfg.LookupTTL {
			r.lookupHits.Add(1)
			return c.r, nil
		}
	}
	var (
		reg Registration
		ok  bool
		err error
	)
	if cd, isCtx := r.dir.(ContextDirectory); isCtx {
		reg, ok, err = cd.LookupContext(ctx, name)
	} else {
		reg, ok, err = r.dir.Lookup(name)
	}
	if err != nil {
		if caching {
			// Stale-on-error: a warm entry outlives a full directory
			// outage, like the local layer's stale-cache degradation tier.
			r.mu.Lock()
			c, cached := r.lookups[key]
			r.mu.Unlock()
			if cached {
				r.staleLookups.Add(1)
				return c.r, nil
			}
		}
		return Registration{}, fmt.Errorf("gma: directory lookup for %q: %w", name, err)
	}
	if !ok {
		// Authoritative not-found: drop any stale record so a deregistered
		// member stops being routable at the next TTL boundary.
		if caching {
			r.mu.Lock()
			delete(r.lookups, key)
			r.mu.Unlock()
		}
		return Registration{}, fmt.Errorf("gma: no producer registered for site %q", name)
	}
	if caching {
		r.mu.Lock()
		r.lookups[key] = cachedLookup{r: reg, at: now}
		if r.gens[name] != reg.Generation {
			r.gens[name] = reg.Generation
		}
		r.mu.Unlock()
	}
	return reg, nil
}

// invalidateLookup expires one member's cached lookup so the next attempt
// re-consults the directory. The entry is kept with a zero timestamp
// rather than deleted: stale-on-error still has a record to serve if the
// directory is down too.
func (r *Router) invalidateLookup(name string) {
	r.mu.Lock()
	key := r.cacheKey(name)
	if c, ok := r.lookups[key]; ok {
		c.at = time.Time{}
		r.lookups[key] = c
	}
	r.mu.Unlock()
}

// registrations returns the directory's registration list, cached for
// LookupTTL with stale-on-error fallback. Refreshing the list rebuilds
// the ownership ring and evicts cached lookups whose Generation changed —
// a re-registered member is re-resolved before its lookup TTL expires.
func (r *Router) registrations(ctx context.Context) ([]Registration, error) {
	now := r.clock()
	caching := r.cfg.LookupTTL > 0
	if caching {
		r.mu.Lock()
		regs, at := r.regs, r.regsAt
		r.mu.Unlock()
		if regs != nil && now.Sub(at) <= r.cfg.LookupTTL {
			return regs, nil
		}
	}
	var (
		regs []Registration
		err  error
	)
	if cl, isCtx := r.dir.(ContextLister); isCtx {
		regs, err = cl.ListContext(ctx)
	} else {
		regs, err = r.dir.List()
	}
	if err != nil {
		if caching {
			r.mu.Lock()
			regs := r.regs
			r.mu.Unlock()
			if regs != nil {
				r.staleLookups.Add(1)
				return regs, nil
			}
		}
		return nil, err
	}
	r.storeRegistrations(regs, now)
	return regs, nil
}

// storeRegistrations installs a freshly fetched registration list:
// caches it, rebuilds the republisher ring, and applies generation-based
// eviction to the lookup cache.
func (r *Router) storeRegistrations(regs []Registration, now time.Time) {
	var repubs []string
	for _, reg := range regs {
		if reg.Role == RoleRepublisher {
			repubs = append(repubs, reg.Name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.LookupTTL > 0 {
		r.regs = append([]Registration(nil), regs...)
		r.regsAt = now
	}
	r.ring = NewRing(repubs, r.cfg.RingVNodes)
	for _, reg := range regs {
		if prev, seen := r.gens[reg.Name]; seen && prev != reg.Generation {
			if _, cached := r.lookups[r.cacheKey(reg.Name)]; cached {
				delete(r.lookups, r.cacheKey(reg.Name))
				r.genEvictions.Add(1)
			}
		}
		r.gens[reg.Name] = reg.Generation
	}
}

// owner returns the republisher owning site on the current ring ("" when
// no republishers are registered or republisher routing is disabled).
func (r *Router) owner(site string) string {
	if r.cfg.DisableRepublishers {
		return ""
	}
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	if ring.Empty() {
		return ""
	}
	return ring.Owner(site)
}

// RemoteQuery implements core.GlobalRouter.
func (r *Router) RemoteQuery(site string, req core.QueryOptions) (*core.Response, error) {
	return r.RemoteQueryContext(context.Background(), site, req)
}

// routeViaRepublisher reports whether a query for target may be served by
// its owning republisher: cached-mode reads of a site's data. Real-time
// and historical queries always go to the site itself — a republisher
// serves its merged cached view, not the site's agents or history.
func routeViaRepublisher(target Registration, req core.QueryOptions) bool {
	return target.Role == RoleSite && req.Mode == core.ModeCached
}

// RemoteQueryContext implements core.ContextRouter: directory lookup (with
// cache), republisher-first routing for cached site reads, per-endpoint
// breaker admission, the remote call with optional hedging, and retries
// with backoff — all bounded by ctx. When the request is being traced the
// hop is recorded as a "remote-query" span; the HTTP exec propagates the
// trace context to the remote gateway and stitches its returned spans into
// the local trace.
//
// A failed attempt expires the target's cached lookup before the retry, so
// a site re-registered at a new endpoint is re-resolved immediately rather
// than being unroutable for a full lookup TTL.
func (r *Router) RemoteQueryContext(ctx context.Context, site string, req core.QueryOptions) (*core.Response, error) {
	ctx, sp := trace.StartSpan(ctx, "remote-query")
	if sp != nil {
		sp.SetAttr("site", site)
		defer sp.End()
	}
	p, err := r.lookup(ctx, site)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttr("endpoint", p.Endpoint)
	r.remoteQueries.Add(1)

	// Republisher-first: cached reads of an owned site are answered by
	// the owning republisher's merged view; any failure falls through to
	// the site's own gateway below, where breakers/retries/hedging apply.
	if routeViaRepublisher(p, req) {
		if owner := r.owner(site); owner != "" && owner != site {
			if resp, ok := r.tryRepublisher(ctx, owner, site, req, sp); ok {
				return resp, nil
			}
		}
	}

	backoff := r.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Re-resolve: the previous attempt invalidated the cached
			// lookup, so a re-registered endpoint is picked up here.
			if np, err := r.lookup(ctx, site); err == nil {
				if np.Endpoint != p.Endpoint {
					sp.SetAttr("endpoint", np.Endpoint)
				}
				p = np
			}
		}
		br := r.endpointBreaker(p.Endpoint)
		if br != nil && !br.Allow(r.clock()) {
			r.breakerSkipped.Add(1)
			if lastErr != nil {
				// The breaker opened mid-retry: surface the real failure.
				break
			}
			r.remoteFailures.Add(1)
			err := fmt.Errorf("gma: circuit open for site %q (%s)", site, p.Endpoint)
			sp.SetError(err)
			return nil, err
		}
		resp, err := r.execHedged(ctx, p.Endpoint, req)
		if err == nil {
			if br != nil {
				br.OnSuccess()
			}
			return resp, nil
		}
		lastErr = err
		if br != nil && br.OnFailure(r.clock()) {
			r.breakerOpens.Add(1)
		}
		r.invalidateLookup(site)
		if attempt >= r.cfg.RetryAttempts || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
			lastErr = ctx.Err()
		case <-time.After(backoff):
			r.remoteRetries.Add(1)
			backoff *= 2
			continue
		}
		break
	}
	r.remoteFailures.Add(1)
	err = fmt.Errorf("gma: remote query to %s (%s): %w", site, p.Endpoint, lastErr)
	sp.SetError(err)
	return nil, err
}

// tryRepublisher attempts one site-scoped query against the owning
// republisher. It is a single hedged attempt through the republisher
// endpoint's breaker: the direct-to-site path behind it provides the
// retry budget, so a dead republisher costs one failed round trip (and
// after its breaker opens, nothing).
func (r *Router) tryRepublisher(ctx context.Context, owner, site string, req core.QueryOptions, sp *trace.Span) (*core.Response, bool) {
	reg, err := r.lookup(ctx, owner)
	if err != nil || reg.Role != RoleRepublisher {
		return nil, false
	}
	br := r.endpointBreaker(reg.Endpoint)
	if br != nil && !br.Allow(r.clock()) {
		r.breakerSkipped.Add(1)
		r.repubFallthroughs.Add(1)
		return nil, false
	}
	r.repubRoutes.Add(1)
	sp.SetAttr("republisher", owner)
	resp, err := r.execHedged(ctx, reg.Endpoint, req)
	if err == nil {
		if br != nil {
			br.OnSuccess()
		}
		return resp, true
	}
	if br != nil && br.OnFailure(r.clock()) {
		r.breakerOpens.Add(1)
	}
	r.invalidateLookup(owner)
	r.repubFallthroughs.Add(1)
	return nil, false
}

// execute performs one remote call, preferring the context-threading exec.
func (r *Router) execute(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error) {
	if r.execCtx != nil {
		return r.execCtx(ctx, endpoint, req)
	}
	return r.exec(endpoint, req)
}

// execHedged performs one remote call; when HedgeAfter is configured and
// the call has not answered in time, a second identical call is launched
// and the first response wins — the Dean/Barroso hedged-request pattern for
// tail tolerance. The loser is cancelled through the shared context.
func (r *Router) execHedged(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error) {
	if r.cfg.HedgeAfter <= 0 || r.execCtx == nil {
		return r.execute(ctx, endpoint, req)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp   *core.Response
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	launch := func(hedged bool) {
		go func() {
			resp, err := r.execCtx(hctx, endpoint, req)
			ch <- result{resp: resp, err: err, hedged: hedged}
		}()
	}
	launch(false)
	outstanding := 1
	hedgeLaunched := false
	timer := time.NewTimer(r.cfg.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedgeLaunched {
				hedgeLaunched = true
				r.hedges.Add(1)
				launch(true)
				outstanding++
			}
		case res := <-ch:
			if res.err == nil {
				if res.hedged {
					r.hedgeWins.Add(1)
				}
				return res.resp, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			outstanding--
			if outstanding == 0 {
				// Nothing left in flight; if the hedge never launched it
				// never will (we return before the timer matters).
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Sites implements core.GlobalRouter: the names of registered site-role
// members, excluding the local site. The list rides the registration
// cache: cached for LookupTTL and served stale when the directory is
// unreachable, so all-sites fan-out keeps working through an outage.
func (r *Router) Sites() []string {
	regs, err := r.registrations(context.Background())
	if err != nil {
		return nil
	}
	sites := make([]string, 0, len(regs))
	for _, reg := range regs {
		if reg.Role == RoleSite && reg.Name != r.local {
			sites = append(sites, reg.Name)
		}
	}
	return sites
}

// FanoutPlan implements core.FanoutPlanner: it turns the all-sites
// fan-out into a tree. Sites owned by a registered republisher are
// covered by one leg targeting that republisher (the republisher answers
// from its merged region view); sites without an owner get direct legs.
// The entry gateway's fan-out degree becomes O(republishers), not
// O(sites); a failed republisher leg is re-expanded by the caller into
// direct legs for the sites it covered.
func (r *Router) FanoutPlan(ctx context.Context) ([]core.FanoutLeg, error) {
	regs, err := r.registrations(ctx)
	if err != nil {
		return nil, err
	}
	var sites []string
	repub := make(map[string]bool)
	for _, reg := range regs {
		switch reg.Role {
		case RoleSite:
			if reg.Name != r.local {
				sites = append(sites, reg.Name)
			}
		case RoleRepublisher:
			repub[reg.Name] = true
		}
	}
	sort.Strings(sites)
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	var legs []core.FanoutLeg
	if r.cfg.DisableRepublishers || ring.Empty() {
		for _, s := range sites {
			legs = append(legs, core.FanoutLeg{Target: s})
		}
		return legs, nil
	}
	assign := ring.Assign(sites)
	for _, owner := range ring.Members() {
		covered := assign[owner]
		// A ring member that is no longer registered (stale ring vs a
		// fresher list) gets no leg; its sites fan out directly below.
		if len(covered) == 0 || !repub[owner] {
			continue
		}
		legs = append(legs, core.FanoutLeg{Target: owner, Republisher: true, Covers: covered})
	}
	// Sites the ring could not place (no live owner) fan out directly.
	for _, s := range sites {
		if owner := ring.Owner(s); owner == "" || !repub[owner] {
			legs = append(legs, core.FanoutLeg{Target: s})
		}
	}
	return legs, nil
}

var _ core.GlobalRouter = (*Router)(nil)
var _ core.ContextRouter = (*Router)(nil)
var _ core.FanoutPlanner = (*Router)(nil)
