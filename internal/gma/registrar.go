package gma

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// deregisterTimeout bounds the best-effort deregistration performed by
// Registrar.Stop, so shutdown cannot hang on an unreachable directory.
const deregisterTimeout = 3 * time.Second

// RegistrarStats counts a Registrar's directory traffic.
type RegistrarStats struct {
	// Registrations counts successful Register calls.
	Registrations int64
	// Failures counts Register calls that failed.
	Failures int64
}

// Registrar keeps one federation member's record fresh in a directory.
//
// Start never fails for a transient directory outage: the initial
// registration is attempted synchronously, and on failure the background
// loop keeps retrying with jittered exponential backoff until the directory
// answers — a gateway boots and serves local queries even when its
// directory is down. Re-registration failures flip the registrar into the
// unreachable state (observable via Registered and the state listener);
// the next success flips it back. Stop→Start restart is supported.
type Registrar struct {
	dir      DirectoryService
	info     Registration
	interval time.Duration
	onState  func(reachable bool, err error)

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	done    chan struct{}

	// notifyMu serialises state-listener callbacks and guards the edge
	// detection, so flips are reported exactly once and in order.
	notifyMu      sync.Mutex
	reported      bool
	reportedOK    bool
	registered    atomic.Bool
	registrations atomic.Int64
	failures      atomic.Int64
}

// NewRegistrar creates a registrar that re-registers info every interval.
// An empty Role normalises to RoleSite (the v0 shim).
func NewRegistrar(dir DirectoryService, info Registration, interval time.Duration) *Registrar {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	info.normalize()
	return &Registrar{dir: dir, info: info, interval: interval}
}

// SetStateListener installs a callback invoked whenever directory
// reachability flips (and once with the initial outcome): reachable=false
// with the failing error when registration starts failing, reachable=true
// when it recovers. Callbacks are serialised; they must not call back into
// the Registrar. Call before Start.
func (r *Registrar) SetStateListener(fn func(reachable bool, err error)) {
	r.onState = fn
}

// Registered reports whether the producer record is currently registered
// (the last Register call succeeded). Backs the directory-reachable gauge.
func (r *Registrar) Registered() bool { return r.registered.Load() }

// Stats returns the registrar's counters.
func (r *Registrar) Stats() RegistrarStats {
	return RegistrarStats{
		Registrations: r.registrations.Load(),
		Failures:      r.failures.Load(),
	}
}

// register performs one Register call and reports reachability flips (and
// the very first outcome) to the state listener.
func (r *Registrar) register() error {
	err := r.dir.Register(r.info)
	ok := err == nil
	if ok {
		r.registrations.Add(1)
	} else {
		r.failures.Add(1)
	}
	r.registered.Store(ok)
	r.notifyMu.Lock()
	flip := !r.reported || r.reportedOK != ok
	r.reported, r.reportedOK = true, ok
	if flip && r.onState != nil {
		// Called under notifyMu so flips arrive in order; listeners must
		// not call back into the Registrar.
		r.onState(ok, err)
	}
	r.notifyMu.Unlock()
	return err
}

// backoff returns the jittered exponential retry delay for one failed
// attempt: base doubling per attempt, capped at the refresh interval, with
// ±50% jitter so a directory restart is not met by a thundering herd.
func (r *Registrar) backoff(attempt int) time.Duration {
	base := r.interval / 8
	if base < 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > r.interval || d <= 0 {
		d = r.interval
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Start begins keeping the record fresh until Stop. It returns an error
// only for invalid configuration (missing site or endpoint) — a directory
// that is down does not fail Start; registration is retried in the
// background with jittered exponential backoff until it lands.
func (r *Registrar) Start() error {
	if r.info.Name == "" || r.info.Endpoint == "" {
		return fmt.Errorf("gma: registration needs name and endpoint")
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return nil
	}
	r.started = true
	// Fresh channels per Start: a restarted registrar must not observe the
	// previous run's closed stop channel.
	stop := make(chan struct{})
	done := make(chan struct{})
	r.stop, r.done = stop, done
	r.mu.Unlock()

	// First attempt runs synchronously so a healthy directory sees the
	// record the moment Start returns; a failure only schedules retries.
	initialErr := r.register()

	go func() {
		defer close(done)
		retrying := initialErr != nil
		attempt := 0
		for {
			var wait time.Duration
			if retrying {
				wait = r.backoff(attempt)
				attempt++
			} else {
				wait = r.interval
				attempt = 0
			}
			select {
			case <-time.After(wait):
			case <-stop:
				return
			}
			retrying = r.register() != nil
		}
	}()
	return nil
}

// Stop halts refreshing and deregisters the producer, best-effort and
// bounded: an unreachable directory cannot hang shutdown. The registrar can
// be started again afterwards.
func (r *Registrar) Stop() {
	r.mu.Lock()
	started := r.started
	r.started = false
	stop, done := r.stop, r.done
	r.mu.Unlock()
	if !started {
		return
	}
	close(stop)
	<-done
	r.registered.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), deregisterTimeout)
	defer cancel()
	if cd, ok := r.dir.(ContextDeregisterer); ok {
		_ = cd.DeregisterContext(ctx, r.info.Name)
	} else {
		_ = r.dir.Deregister(r.info.Name)
	}
}
