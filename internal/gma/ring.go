package gma

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per ring member. 64 points per
// member keeps the ownership spread within a few percent of even for the
// republisher counts this system targets (single digits to tens) while
// keeping ring rebuilds cheap.
const DefaultVNodes = 64

// Ring is a consistent-hash ring assigning site names to republisher
// names. Placement is a pure function of the member set: every node that
// builds a ring from the same directory view computes the same ownership,
// so the ring needs no coordination channel beyond the (replicated)
// directory. When a member joins or leaves, only the sites whose
// clockwise-nearest virtual node belonged to the change move — bounded
// movement of about 1/N of the keys, proven by TestRingBoundedMovement.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given members with vnodes virtual nodes
// each (vnodes <= 0 uses DefaultVNodes). Member order does not matter;
// duplicate members are collapsed.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) tiebreak on name so the
		// ring stays deterministic across nodes.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// ringHash is 64-bit FNV-1a passed through a splitmix64 finalizer. Raw
// FNV-1a keeps short, similar keys ("site-0", "site-1", ...) clustered in
// a narrow band of the 64-bit space, which collapses them onto one ring
// arc; the mix step avalanches every input bit across the output so
// placement is uniform regardless of key shape.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Empty reports whether the ring has no members.
func (r *Ring) Empty() bool { return r == nil || len(r.points) == 0 }

// Members returns the distinct member names, sorted.
func (r *Ring) Members() []string {
	if r.Empty() {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key: the member of the first virtual
// node clockwise from the key's hash. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	if r.Empty() {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Assign partitions keys by owner, preserving the input order of keys
// within each owner's slice.
func (r *Ring) Assign(keys []string) map[string][]string {
	out := make(map[string][]string)
	for _, k := range keys {
		if owner := r.Owner(k); owner != "" {
			out[owner] = append(out[owner], k)
		}
	}
	return out
}
