package gma

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// MultiDirectory federates N directory replicas into one DirectoryService,
// mirroring R-GMA's replicated-registry design: registrations fan out to
// every replica (so any one of them can answer lookups), while lookups fail
// over through the replicas in health-ranked order — replicas that answered
// recently are tried before replicas that have been failing. One reachable
// replica is enough for the Global layer to keep working.
type MultiDirectory struct {
	replicas []*replica
}

// replica is one directory endpoint plus its observed health.
type replica struct {
	name string
	svc  DirectoryService

	mu          sync.Mutex
	consecutive int
	lastErr     string
	lastOK      time.Time
	lastFailure time.Time
}

func (r *replica) noteOK(at time.Time) {
	r.mu.Lock()
	r.consecutive = 0
	r.lastErr = ""
	r.lastOK = at
	r.mu.Unlock()
}

func (r *replica) noteErr(err error, at time.Time) {
	r.mu.Lock()
	r.consecutive++
	r.lastErr = err.Error()
	r.lastFailure = at
	r.mu.Unlock()
}

func (r *replica) failures() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.consecutive
}

// ReplicaHealth is one replica's observed health, for gauges and /status.
type ReplicaHealth struct {
	// Name identifies the replica (its BaseURL for DirectoryClient
	// replicas, "replica-<i>" otherwise).
	Name string `json:"name"`
	// Healthy reports whether the replica's last operation succeeded.
	Healthy bool `json:"healthy"`
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// LastError is the most recent failure ("" when healthy).
	LastError string `json:"lastError,omitempty"`
	// LastOK is when the replica last answered successfully.
	LastOK time.Time `json:"lastOK"`
}

// NewMultiDirectory builds a replicated directory over the given replicas
// (at least one). DirectoryClient replicas are named by their BaseURL.
func NewMultiDirectory(services ...DirectoryService) *MultiDirectory {
	if len(services) == 0 {
		panic("gma: MultiDirectory needs at least one replica")
	}
	md := &MultiDirectory{}
	for i, svc := range services {
		name := fmt.Sprintf("replica-%d", i)
		if dc, ok := svc.(*DirectoryClient); ok && dc.BaseURL != "" {
			name = dc.BaseURL
		}
		md.replicas = append(md.replicas, &replica{name: name, svc: svc})
	}
	return md
}

// ReplicaHealth snapshots every replica's health, in construction order.
func (m *MultiDirectory) ReplicaHealth() []ReplicaHealth {
	out := make([]ReplicaHealth, 0, len(m.replicas))
	for _, r := range m.replicas {
		r.mu.Lock()
		out = append(out, ReplicaHealth{
			Name:                r.name,
			Healthy:             r.consecutive == 0,
			ConsecutiveFailures: r.consecutive,
			LastError:           r.lastErr,
			LastOK:              r.lastOK,
		})
		r.mu.Unlock()
	}
	return out
}

// ranked returns the replicas ordered by health: fewest consecutive
// failures first, construction order as the tiebreak.
func (m *MultiDirectory) ranked() []*replica {
	out := append([]*replica(nil), m.replicas...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].failures() < out[j].failures() })
	return out
}

// Register implements DirectoryService: the record fans out to every
// replica concurrently and succeeds if at least one replica accepted it.
func (m *MultiDirectory) Register(p Registration) error {
	return m.RegisterContext(context.Background(), p)
}

// RegisterContext implements ContextRegistrar: fan-out like Register,
// bounded by ctx on replicas that support it.
func (m *MultiDirectory) RegisterContext(ctx context.Context, p Registration) error {
	errs := make([]error, len(m.replicas))
	var wg sync.WaitGroup
	for i, r := range m.replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			var err error
			if cr, ok := r.svc.(ContextRegistrar); ok {
				err = cr.RegisterContext(ctx, p)
			} else {
				err = r.svc.Register(p)
			}
			errs[i] = err
			if err != nil {
				r.noteErr(err, time.Now())
			} else {
				r.noteOK(time.Now())
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("gma: register failed on every replica: %w", errors.Join(errs...))
}

// Deregister implements DirectoryService, fanning out like Register.
func (m *MultiDirectory) Deregister(name string) error {
	return m.DeregisterContext(context.Background(), name)
}

// DeregisterContext implements ContextDeregisterer: best-effort fan-out,
// bounded by ctx on replicas that support it.
func (m *MultiDirectory) DeregisterContext(ctx context.Context, name string) error {
	errs := make([]error, len(m.replicas))
	var wg sync.WaitGroup
	for i, r := range m.replicas {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			if cd, ok := r.svc.(ContextDeregisterer); ok {
				errs[i] = cd.DeregisterContext(ctx, name)
			} else {
				errs[i] = r.svc.Deregister(name)
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("gma: deregister failed on every replica: %w", errors.Join(errs...))
}

// Lookup implements DirectoryService: replicas are tried in health-ranked
// order and the first positive answer wins. A replica that answers
// "not found" does not end the search — during a partial outage another
// replica may hold a registration this one missed.
func (m *MultiDirectory) Lookup(name string) (Registration, bool, error) {
	return m.LookupContext(context.Background(), name)
}

// LookupContext implements ContextDirectory.
func (m *MultiDirectory) LookupContext(ctx context.Context, name string) (Registration, bool, error) {
	var errs []error
	notFound := false
	for _, r := range m.ranked() {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		var (
			p   Registration
			ok  bool
			err error
		)
		if cd, isCtx := r.svc.(ContextDirectory); isCtx {
			p, ok, err = cd.LookupContext(ctx, name)
		} else {
			p, ok, err = r.svc.Lookup(name)
		}
		if err != nil {
			r.noteErr(err, time.Now())
			errs = append(errs, err)
			continue
		}
		r.noteOK(time.Now())
		if ok {
			return p, true, nil
		}
		notFound = true
	}
	if notFound {
		return Registration{}, false, nil
	}
	return Registration{}, false, fmt.Errorf("gma: lookup failed on every replica: %w", errors.Join(errs...))
}

// Sites implements DirectoryService: the first replica (health-ranked) that
// answers wins.
func (m *MultiDirectory) Sites() ([]string, error) {
	var errs []error
	for _, r := range m.ranked() {
		sites, err := r.svc.Sites()
		if err != nil {
			r.noteErr(err, time.Now())
			errs = append(errs, err)
			continue
		}
		r.noteOK(time.Now())
		return sites, nil
	}
	return nil, fmt.Errorf("gma: sites failed on every replica: %w", errors.Join(errs...))
}

// List implements DirectoryService: the first replica (health-ranked)
// that answers wins.
func (m *MultiDirectory) List() ([]Registration, error) {
	return m.ListContext(context.Background())
}

// ListContext implements ContextLister.
func (m *MultiDirectory) ListContext(ctx context.Context) ([]Registration, error) {
	var errs []error
	for _, r := range m.ranked() {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		var (
			regs []Registration
			err  error
		)
		if cl, isCtx := r.svc.(ContextLister); isCtx {
			regs, err = cl.ListContext(ctx)
		} else {
			regs, err = r.svc.List()
		}
		if err != nil {
			r.noteErr(err, time.Now())
			errs = append(errs, err)
			continue
		}
		r.noteOK(time.Now())
		return regs, nil
	}
	return nil, fmt.Errorf("gma: registrations failed on every replica: %w", errors.Join(errs...))
}

var _ DirectoryService = (*MultiDirectory)(nil)
var _ ContextDirectory = (*MultiDirectory)(nil)
var _ ContextLister = (*MultiDirectory)(nil)
var _ ContextDeregisterer = (*MultiDirectory)(nil)
var _ ContextRegistrar = (*MultiDirectory)(nil)
