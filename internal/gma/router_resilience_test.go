package gma

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/breaker"
	"gridrm/internal/core"
)

// countingDir wraps a flakyDir and counts Lookup traffic, so tests can
// assert the router's cache actually absorbed directory load.
type countingDir struct {
	*flakyDir
	lookups atomic.Int64
	sites   atomic.Int64
}

func newCountingDir() *countingDir { return &countingDir{flakyDir: newFlakyDir()} }

func (c *countingDir) Lookup(site string) (Registration, bool, error) {
	c.lookups.Add(1)
	return c.flakyDir.Lookup(site)
}

func (c *countingDir) Sites() ([]string, error) {
	c.sites.Add(1)
	return c.flakyDir.Sites()
}

func okExec(endpoint string, req core.QueryOptions) (*core.Response, error) {
	return &core.Response{Site: req.Site}, nil
}

func TestRouterLookupCache(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	now := time.Unix(1000, 0)
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		return okExec(e, q)
	}, "A", Config{LookupTTL: 10 * time.Second, Clock: func() time.Time { return now }})

	for i := 0; i < 3; i++ {
		if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
			t.Fatal(err)
		}
	}
	if n := dir.lookups.Load(); n != 1 {
		t.Errorf("directory lookups = %d, want 1 (cache must absorb repeats)", n)
	}
	if hits := r.Stats().LookupCacheHits; hits != 2 {
		t.Errorf("LookupCacheHits = %d, want 2", hits)
	}
	// Past the TTL the directory is consulted again.
	now = now.Add(11 * time.Second)
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatal(err)
	}
	if n := dir.lookups.Load(); n != 2 {
		t.Errorf("directory lookups after TTL = %d, want 2", n)
	}
}

func TestRouterStaleLookupSurvivesDirectoryOutage(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	_ = dir.Directory.Register(Registration{Name: "A", Endpoint: "http://a"})
	now := time.Unix(1000, 0)
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		return okExec(e, q)
	}, "A", Config{LookupTTL: 10 * time.Second, Clock: func() time.Time { return now }})

	// Warm the lookup and sites caches.
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatal(err)
	}
	if sites := r.Sites(); len(sites) != 1 || sites[0] != "B" {
		t.Fatalf("warm Sites = %v", sites)
	}

	// Full outage after the TTL: stale entries keep the Global layer alive.
	dir.setDown(true)
	now = now.Add(time.Minute)
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatalf("query during directory outage: %v", err)
	}
	if sites := r.Sites(); len(sites) != 1 || sites[0] != "B" {
		t.Errorf("stale Sites = %v", sites)
	}
	if st := r.Stats(); st.StaleLookups != 2 {
		t.Errorf("StaleLookups = %d, want 2 (lookup + sites)", st.StaleLookups)
	}
	// A site never seen before still fails — there is nothing to serve.
	if _, err := r.RemoteQuery("C", core.QueryOptions{Site: "C"}); err == nil {
		t.Error("cold lookup succeeded during outage")
	}
}

func TestRouterAuthoritativeNotFoundDropsCache(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	now := time.Unix(1000, 0)
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		return okExec(e, q)
	}, "A", Config{LookupTTL: 10 * time.Second, Clock: func() time.Time { return now }})
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatal(err)
	}
	// The site deregisters; a healthy directory's not-found is authoritative
	// and must evict the cached record, not serve it stale.
	_ = dir.Directory.Deregister("B")
	now = now.Add(time.Minute)
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err == nil {
		t.Fatal("deregistered site still routed")
	}
	// Even during a later outage the dropped entry stays gone.
	dir.setDown(true)
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err == nil {
		t.Error("evicted entry served stale")
	}
}

func TestRouterEndpointBreaker(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	_ = dir.Directory.Register(Registration{Name: "C", Endpoint: "http://c"})
	now := time.Unix(1000, 0)
	var calls atomic.Int64
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		calls.Add(1)
		if e == "http://b" {
			return nil, fmt.Errorf("connection refused")
		}
		return okExec(e, q)
	}, "A", Config{
		LookupTTL: time.Minute,
		Breaker:   breaker.Options{Threshold: 2, Cooldown: 30 * time.Second},
		Clock:     func() time.Time { return now },
	})

	for i := 0; i < 2; i++ {
		if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err == nil {
			t.Fatal("query to dead endpoint succeeded")
		}
	}
	st := r.Stats()
	if st.RemoteBreakerOpens != 1 {
		t.Errorf("RemoteBreakerOpens = %d, want 1", st.RemoteBreakerOpens)
	}
	if got := r.EndpointBreakerState("http://b"); got != "open" {
		t.Errorf("breaker state = %q, want open", got)
	}

	// Open breaker: the next query fast-fails without touching the endpoint.
	before := calls.Load()
	_, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"})
	if err == nil || !strings.Contains(err.Error(), "circuit open") {
		t.Errorf("open-breaker error = %v", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still called the endpoint")
	}
	if st := r.Stats(); st.RemoteBreakerSkipped != 1 {
		t.Errorf("RemoteBreakerSkipped = %d, want 1", st.RemoteBreakerSkipped)
	}

	// Breakers are per endpoint: site C is unaffected.
	if _, err := r.RemoteQuery("C", core.QueryOptions{Site: "C"}); err != nil {
		t.Errorf("healthy endpoint tripped by its neighbour: %v", err)
	}

	// After the cooldown a half-open probe goes through and closes it.
	now = now.Add(31 * time.Second)
	if got := r.EndpointBreakerState("http://b"); got != "half-open" {
		t.Errorf("post-cooldown state = %q, want half-open", got)
	}
}

func TestRouterRetries(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	var calls atomic.Int64
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient")
		}
		return okExec(e, q)
	}, "A", Config{RetryAttempts: 2, RetryBackoff: time.Millisecond})
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatalf("retry did not rescue the query: %v", err)
	}
	st := r.Stats()
	if st.RemoteRetries != 1 || st.RemoteFailures != 0 {
		t.Errorf("stats = %+v, want 1 retry and 0 failures", st)
	}
}

func TestRouterRetriesHonourContext(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	r := NewResilientRouter(dir, func(context.Context, string, core.QueryOptions) (*core.Response, error) {
		return nil, fmt.Errorf("always failing")
	}, "A", Config{RetryAttempts: 50, RetryBackoff: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := r.RemoteQueryContext(ctx, "B", core.QueryOptions{Site: "B"}); err == nil {
		t.Fatal("doomed query succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retries outlived the context: %s", elapsed)
	}
	if r.Stats().RemoteRetries >= 50 {
		t.Error("all retries ran despite the deadline")
	}
}

func TestRouterHedging(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	var calls atomic.Int64
	exec := func(ctx context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		if calls.Add(1) == 1 {
			// The original call straggles until cancelled.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return okExec(e, q)
			}
		}
		return okExec(e, q)
	}
	r := NewResilientRouter(dir, exec, "A", Config{HedgeAfter: 20 * time.Millisecond})
	start := time.Now()
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hedge did not rescue the straggler: %s", elapsed)
	}
	st := r.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("Hedges = %d HedgeWins = %d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

func TestRouterHedgeLoses(t *testing.T) {
	// A hedge that fires after the original already answered is still
	// counted, but the original's response wins and HedgeWins stays 0.
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	var calls atomic.Int64
	exec := func(ctx context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		if calls.Add(1) > 1 {
			// The hedge (if launched) never answers first.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
			}
		}
		time.Sleep(30 * time.Millisecond)
		return okExec(e, q)
	}
	r := NewResilientRouter(dir, exec, "A", Config{HedgeAfter: 5 * time.Millisecond})
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Hedges != 1 || st.HedgeWins != 0 {
		t.Errorf("Hedges = %d HedgeWins = %d, want 1/0", st.Hedges, st.HedgeWins)
	}
}

func TestRouterHedgeBothFail(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b"})
	r := NewResilientRouter(dir, func(context.Context, string, core.QueryOptions) (*core.Response, error) {
		return nil, fmt.Errorf("refused")
	}, "A", Config{HedgeAfter: time.Nanosecond})
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err == nil ||
		!strings.Contains(err.Error(), "refused") {
		t.Errorf("double-failure error = %v", err)
	}
}

func TestRouterGenerationChangeEvictsCachedLookup(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b1"})
	now := time.Unix(1000, 0)
	var endpoints []string
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		endpoints = append(endpoints, e)
		return okExec(e, q)
	}, "A", Config{LookupTTL: 15 * time.Second, Clock: func() time.Time { return now }})

	// t=0: the registration list (and B's generation) is cached.
	if sites := r.Sites(); len(sites) != 1 {
		t.Fatalf("Sites = %v", sites)
	}
	// t=10: B's lookup is cached, fresh until t=25.
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatal(err)
	}
	// B re-registers at a new endpoint: the directory bumps its
	// Generation.
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://b2"})
	// t=16: the registration list expires and is refetched; the changed
	// generation must evict B's still-fresh cached lookup.
	now = now.Add(16 * time.Second)
	_ = r.Sites()
	if n := r.Stats().GenerationEvictions; n != 1 {
		t.Fatalf("GenerationEvictions = %d, want 1", n)
	}
	if _, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"}); err != nil {
		t.Fatal(err)
	}
	want := []string{"http://b1", "http://b2"}
	if len(endpoints) != 2 || endpoints[0] != want[0] || endpoints[1] != want[1] {
		t.Errorf("exec endpoints = %v, want %v (eviction must re-resolve before TTL)", endpoints, want)
	}
	if n := dir.lookups.Load(); n != 2 {
		t.Errorf("directory lookups = %d, want 2", n)
	}
}

func TestRouterFailedAttemptReResolvesBeforeRetry(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://dead"})
	var calls atomic.Int64
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		calls.Add(1)
		if e == "http://dead" {
			// The site moves while the first attempt is failing: the
			// retry must consult the directory again, not the cache.
			_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://alive"})
			return nil, fmt.Errorf("connection refused")
		}
		return okExec(e, q)
	}, "A", Config{LookupTTL: time.Minute, RetryAttempts: 1, RetryBackoff: time.Millisecond})

	resp, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"})
	if err != nil || resp == nil {
		t.Fatalf("query after re-registration = %v, %v", resp, err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("exec calls = %d, want 2 (fail on dead, succeed on alive)", n)
	}
	if n := dir.lookups.Load(); n != 2 {
		t.Errorf("directory lookups = %d, want 2 (failure invalidates the cached lookup)", n)
	}
	if st := r.Stats(); st.RemoteRetries != 1 {
		t.Errorf("RemoteRetries = %d, want 1", st.RemoteRetries)
	}
}

func TestRouterRepublisherFirstWithFallthrough(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://site-b"})
	_ = dir.Directory.Register(Registration{Name: "R", Endpoint: "http://repub-r", Role: RoleRepublisher})
	var repubDown atomic.Bool
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		if e == "http://repub-r" {
			if repubDown.Load() {
				return nil, fmt.Errorf("republisher down")
			}
			return &core.Response{Site: "R"}, nil
		}
		return &core.Response{Site: q.Site}, nil
	}, "A", Config{LookupTTL: time.Minute})
	_ = r.Sites() // fetches the registration list, which builds the ring

	// Cached site reads route to the owning republisher.
	resp, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"})
	if err != nil || resp.Site != "R" {
		t.Fatalf("cached read = %v, %v, want republisher answer", resp, err)
	}
	// Real-time reads always go to the site itself.
	resp, err = r.RemoteQuery("B", core.QueryOptions{Site: "B", Mode: core.ModeRealTime})
	if err != nil || resp.Site != "B" {
		t.Fatalf("real-time read = %v, %v, want direct answer", resp, err)
	}
	// A dead republisher falls through to the site with zero caller-visible
	// errors.
	repubDown.Store(true)
	resp, err = r.RemoteQuery("B", core.QueryOptions{Site: "B"})
	if err != nil || resp.Site != "B" {
		t.Fatalf("fall-through read = %v, %v", resp, err)
	}
	st := r.Stats()
	if st.RepubRoutes != 2 || st.RepubFallthroughs != 1 {
		t.Errorf("RepubRoutes = %d, RepubFallthroughs = %d, want 2 and 1", st.RepubRoutes, st.RepubFallthroughs)
	}
}

func TestRouterDisableRepublishers(t *testing.T) {
	dir := newCountingDir()
	_ = dir.Directory.Register(Registration{Name: "B", Endpoint: "http://site-b"})
	_ = dir.Directory.Register(Registration{Name: "R", Endpoint: "http://repub-r", Role: RoleRepublisher})
	r := NewResilientRouter(dir, func(_ context.Context, e string, q core.QueryOptions) (*core.Response, error) {
		return &core.Response{Site: q.Site + "@" + e}, nil
	}, "A", Config{LookupTTL: time.Minute, DisableRepublishers: true})
	_ = r.Sites()
	resp, err := r.RemoteQuery("B", core.QueryOptions{Site: "B"})
	if err != nil || resp.Site != "B@http://site-b" {
		t.Fatalf("disabled routing = %v, %v, want direct", resp, err)
	}
	if plan, err := r.FanoutPlan(context.Background()); err != nil {
		t.Fatal(err)
	} else {
		for _, leg := range plan {
			if leg.Republisher {
				t.Errorf("disabled planner produced republisher leg %+v", leg)
			}
		}
	}
	if n := r.Stats().RepubRoutes; n != 0 {
		t.Errorf("RepubRoutes = %d, want 0", n)
	}
}
