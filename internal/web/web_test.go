package web

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/gma"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/security"
)

type fixture struct {
	gw      *core.Gateway
	backend *memdrv.Backend
	srv     *httptest.Server
	client  *Client
	url     string
}

func newFixture(t *testing.T, coarse *security.CoarsePolicy) *fixture {
	t.Helper()
	gw := core.New(core.Config{Name: "siteA", Coarse: coarse})
	t.Cleanup(gw.Close)
	backend := memdrv.NewBackend([]string{"a1", "a2"})
	d := memdrv.New("jdbc-mem", "mem", backend)
	if err := gw.RegisterDriver(d, d.Schema()); err != nil {
		t.Fatal(err)
	}
	url := "gridrm:mem://a:1"
	if err := gw.AddSource(core.SourceConfig{URL: url, Description: "test agent"}); err != nil {
		t.Fatal(err)
	}
	repo := map[string]DriverFactory{
		"jdbc-extra": func() (driver.Driver, *schema.DriverSchema) {
			ed := memdrv.New("jdbc-extra", "extra", backend)
			return ed, ed.Schema()
		},
	}
	server := NewServer(gw, repo, gma.NewDirectory(0, nil).Handler())
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	client := &Client{BaseURL: srv.URL,
		Principal: security.Principal{Name: "admin", Roles: []string{"operator"}}}
	return &fixture{gw: gw, backend: backend, srv: srv, client: client, url: url}
}

func TestWireResultRoundTrip(t *testing.T) {
	meta, err := resultset.NewMetadata([]resultset.Column{
		{Name: "S", Kind: glue.String, Unit: "", Group: "G"},
		{Name: "I", Kind: glue.Int},
		{Name: "F", Kind: glue.Float},
		{Name: "B", Kind: glue.Bool},
		{Name: "T", Kind: glue.Time},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2003, 6, 1, 10, 30, 0, 123456000, time.UTC)
	rs, err := resultset.NewBuilder(meta).
		Append("x", int64(42), 1.5, true, ts).
		Append(nil, nil, nil, nil, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResultSet(EncodeResultSet(rs))
	if err != nil {
		t.Fatal(err)
	}
	back.Next()
	if v, _ := back.GetInt("I"); v != 42 {
		t.Errorf("int = %d", v)
	}
	if v, _ := back.GetTime("T"); !v.Equal(ts) {
		t.Errorf("time = %v", v)
	}
	back.Next()
	back.GetString("S")
	if !back.WasNull() {
		t.Error("NULL lost on the wire")
	}
}

func TestDecodeRejectsBadWire(t *testing.T) {
	if _, err := DecodeResultSet(WireResult{Columns: []WireColumn{{Name: "X", Kind: "alien"}}}); err == nil {
		t.Error("unknown kind accepted")
	}
	wr := WireResult{
		Columns: []WireColumn{{Name: "X", Kind: "int"}},
		Rows:    [][]any{{"notanumber"}},
	}
	if _, err := DecodeResultSet(wr); err == nil {
		t.Error("mistyped cell accepted")
	}
	wr.Rows = [][]any{{1.0, 2.0}}
	if _, err := DecodeResultSet(wr); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]core.Mode{
		"": core.ModeCached, "cached": core.ModeCached,
		"real-time": core.ModeRealTime, "realtime": core.ModeRealTime,
		"historical": core.ModeHistorical, "history": core.ModeHistorical,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("warp"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestQueryOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL:  "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName",
		Mode: core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != "siteA" || resp.ResultSet.Len() != 2 {
		t.Fatalf("resp %+v", resp)
	}
	resp.ResultSet.Next()
	if h, _ := resp.ResultSet.GetString("HostName"); h != "a1" {
		t.Errorf("host = %q", h)
	}
	if v, _ := resp.ResultSet.GetFloat("LoadLast1Min"); v != 1.0 {
		t.Errorf("load = %v", v)
	}
	if len(resp.Sources) != 1 || resp.Sources[0].Driver != "jdbc-mem" {
		t.Errorf("sources %+v", resp.Sources)
	}
	// Bad SQL → 400 with message.
	if _, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "junk"}); err == nil {
		t.Error("bad SQL accepted over HTTP")
	}
}

func TestQueryForbiddenOverHTTP(t *testing.T) {
	coarse := security.NewCoarsePolicy(security.Deny)
	coarse.Add(security.CoarseRule{Principal: "admin", Decision: security.Allow})
	f := newFixture(t, coarse)
	evil := &Client{BaseURL: f.srv.URL, Principal: security.Principal{Name: "mallory"}}
	_, err := evil.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor"})
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("expected 403, got %v", err)
	}
}

func TestPollOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := f.client.Poll(context.Background(), f.url, glue.GroupMemory)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 2 {
		t.Errorf("rows = %d", resp.ResultSet.Len())
	}
	if f.backend.Queries() != 1 {
		t.Errorf("backend queries = %d", f.backend.Queries())
	}
}

func TestSourceManagementOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	srcs, err := f.client.Sources(context.Background())
	if err != nil || len(srcs) != 1 {
		t.Fatalf("sources %v, %v", srcs, err)
	}
	if err := f.client.AddSource(context.Background(), core.SourceConfig{URL: "gridrm:mem://b:1"}); err != nil {
		t.Fatal(err)
	}
	srcs, _ = f.client.Sources(context.Background())
	if len(srcs) != 2 {
		t.Errorf("sources after add = %d", len(srcs))
	}
	if err := f.client.RemoveSource(context.Background(), "gridrm:mem://b:1"); err != nil {
		t.Fatal(err)
	}
	if err := f.client.RemoveSource(context.Background(), "gridrm:mem://b:1"); err == nil {
		t.Error("double remove accepted")
	}
	if err := f.client.AddSource(context.Background(), core.SourceConfig{URL: "junk"}); err == nil {
		t.Error("bad URL accepted")
	}
}

func TestDriverManagementOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	list, err := f.client.Drivers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// jdbc-extra (inactive, from repository) + jdbc-mem (active).
	if len(list) != 2 {
		t.Fatalf("drivers = %v", list)
	}
	if list[0].Name != "jdbc-extra" || list[0].Active {
		t.Errorf("repo driver %+v", list[0])
	}
	if list[1].Name != "jdbc-mem" || !list[1].Active {
		t.Errorf("active driver %+v", list[1])
	}
	// Runtime activation from the repository (Fig 8).
	if err := f.client.ActivateDriver(context.Background(), "jdbc-extra"); err != nil {
		t.Fatal(err)
	}
	list, _ = f.client.Drivers(context.Background())
	if !list[0].Active {
		t.Error("activated driver not active")
	}
	if err := f.client.ActivateDriver(context.Background(), "jdbc-extra"); err == nil {
		t.Error("double activation accepted")
	}
	if err := f.client.ActivateDriver(context.Background(), "ghost"); err == nil {
		t.Error("unknown driver activated")
	}
	// Preferences.
	if err := f.client.SetPreferences(context.Background(), f.url, []string{"jdbc-extra", "jdbc-mem"}); err != nil {
		t.Fatal(err)
	}
	if got := f.gw.DriverManager().Preferences(f.url); len(got) != 2 || got[0] != "jdbc-extra" {
		t.Errorf("prefs = %v", got)
	}
	if err := f.client.SetPreferences(context.Background(), f.url, []string{"ghost"}); err == nil {
		t.Error("unknown preference accepted")
	}
	// Deactivation.
	if err := f.client.DeactivateDriver(context.Background(), "jdbc-extra"); err != nil {
		t.Fatal(err)
	}
	if err := f.client.DeactivateDriver(context.Background(), "jdbc-extra"); err == nil {
		t.Error("double deactivation accepted")
	}
}

func TestManagementRequiresPermission(t *testing.T) {
	coarse := security.NewCoarsePolicy(security.Deny)
	coarse.Add(security.CoarseRule{Principal: "admin", Decision: security.Allow})
	coarse.Add(security.CoarseRule{Op: security.OpQueryRealTime, Decision: security.Allow})
	f := newFixture(t, coarse)
	guest := &Client{BaseURL: f.srv.URL, Principal: security.Principal{Name: "guest"}}
	if err := guest.AddSource(context.Background(), core.SourceConfig{URL: "gridrm:mem://c:1"}); err == nil {
		t.Error("guest added source")
	}
	if err := guest.ActivateDriver(context.Background(), "jdbc-extra"); err == nil {
		t.Error("guest activated driver")
	}
	if err := guest.SetPreferences(context.Background(), f.url, nil); err == nil {
		t.Error("guest set preferences")
	}
	if _, err := guest.Events(context.Background(), event.Filter{}, time.Time{}); err == nil {
		t.Error("guest read events")
	}
}

func TestTreeOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	// Populate the cache with a query.
	if _, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeCached}); err != nil {
		t.Fatal(err)
	}
	tree, err := f.client.Tree(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 1 || tree[0].Source.URL != f.url {
		t.Fatalf("tree %+v", tree)
	}
	if len(tree[0].Cached) != 1 || tree[0].Cached[0].Rows != 2 {
		t.Errorf("cached entries %+v", tree[0].Cached)
	}
	if tree[0].Source.LastDriver != "jdbc-mem" {
		t.Errorf("health %+v", tree[0].Source)
	}
}

func TestEventsOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	f.gw.Events().Publish(event.Event{Name: "load-high", Host: "a1",
		Severity: event.SeverityAlert, Value: 9, Time: time.Now()})
	f.gw.Events().Publish(event.Event{Name: "cpu.util", Host: "a1",
		Severity: event.SeverityUsage, Value: 50, Time: time.Now()})
	f.gw.Events().Drain()
	evs, err := f.client.Events(context.Background(), event.Filter{Severity: event.SeverityAlert}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Name != "load-high" {
		t.Errorf("events %v", evs)
	}
}

func TestStatusOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	st, err := f.client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Site != "siteA" || st.Gateway.Queries != 1 || st.Gateway.Harvests != 1 {
		t.Errorf("status %+v", st)
	}
	if st.Pool.Opens != 1 {
		t.Errorf("pool %+v", st.Pool)
	}
}

func TestWatchesOverHTTP(t *testing.T) {
	f := newFixture(t, nil)
	if err := f.client.WatchMetric(context.Background(), glue.GroupProcessor, "LoadLast1Min"); err != nil {
		t.Fatal(err)
	}
	if err := f.client.WatchMetric(context.Background(), glue.GroupProcessor, "HostName"); err == nil {
		t.Error("non-numeric watch accepted")
	}
	got, err := f.client.WatchedMetrics(context.Background())
	if err != nil || len(got) != 1 || got[0] != "Processor.LoadLast1Min" {
		t.Errorf("watches %v, %v", got, err)
	}
	// Harvest → events over HTTP.
	if _, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor",
		Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	f.gw.Events().Drain()
	evs, err := f.client.Events(context.Background(), event.Filter{Name: "Processor.LoadLast1Min"}, time.Time{})
	if err != nil || len(evs) != 2 {
		t.Errorf("harvest events = %d, %v", len(evs), err)
	}
}

func TestSitesAndGMAMounted(t *testing.T) {
	f := newFixture(t, nil)
	sites, err := f.client.Sites(context.Background())
	if err != nil || len(sites) != 1 || sites[0] != "siteA" {
		t.Errorf("sites %v, %v", sites, err)
	}
	// The mounted directory answers under /gma/.
	dc := &gma.DirectoryClient{BaseURL: f.srv.URL}
	if err := dc.Register(gma.Registration{Name: "X", Endpoint: "http://x"}); err != nil {
		t.Fatal(err)
	}
	got, err := dc.Sites()
	if err != nil || len(got) != 1 {
		t.Errorf("gma sites %v, %v", got, err)
	}
}

func TestTwoGatewayFederation(t *testing.T) {
	// Full Fig 1 path over real HTTP: client → gateway A → GMA directory
	// → gateway B → B's local sources.
	dir := gma.NewDirectory(0, nil)

	// Gateway B with its own data.
	gwB := core.New(core.Config{Name: "siteB"})
	defer gwB.Close()
	backendB := memdrv.NewBackend([]string{"b1", "b2", "b3"})
	dB := memdrv.New("jdbc-mem", "mem", backendB)
	if err := gwB.RegisterDriver(dB, dB.Schema()); err != nil {
		t.Fatal(err)
	}
	_ = gwB.AddSource(core.SourceConfig{URL: "gridrm:mem://b:1"})
	srvB := httptest.NewServer(NewServer(gwB, nil, nil))
	defer srvB.Close()

	// Gateway A routes via the directory.
	f := newFixture(t, nil)
	_ = dir.Register(gma.Registration{Name: "siteB", Endpoint: srvB.URL})
	router := gma.NewContextRouter(dir, RemoteQueryContext, "siteA")
	f.gw.SetGlobalRouter(router)

	resp, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL:  "SELECT * FROM Processor",
		Site: "siteB",
		Mode: core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Site != "siteB" || resp.ResultSet.Len() != 3 {
		t.Errorf("federated resp: site %q, %d rows", resp.Site, resp.ResultSet.Len())
	}
	if backendB.Queries() != 1 {
		t.Errorf("remote backend queries = %d", backendB.Queries())
	}
	// Unknown remote site errors cleanly.
	if _, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor", Site: "siteC"}); err == nil {
		t.Error("unknown site accepted")
	}
}
