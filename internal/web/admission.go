package web

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// AdmissionOptions bounds concurrent query handling at the servlet, so a
// federated query storm sheds load with 429s instead of collapsing the
// gateway under unbounded goroutines.
type AdmissionOptions struct {
	// MaxInFlight is how many admitted requests may execute at once
	// (required; <= 0 disables the gate).
	MaxInFlight int
	// MaxQueue is how many requests may wait for a slot beyond MaxInFlight;
	// arrivals past the queue are shed immediately (default 0: no queue).
	MaxQueue int
	// RetryAfter is the Retry-After hint sent with 429 responses
	// (default 1s).
	RetryAfter time.Duration
}

// AdmissionStats snapshots the gate for /status.
type AdmissionStats struct {
	// MaxInFlight and MaxQueue echo the configuration.
	MaxInFlight int `json:"maxInFlight"`
	MaxQueue    int `json:"maxQueue"`
	// InFlight is how many admitted requests are executing now.
	InFlight int64 `json:"inFlight"`
	// Queued is how many requests are waiting for a slot now.
	Queued int64 `json:"queued"`
	// Admitted counts requests that got a slot.
	Admitted int64 `json:"admitted"`
	// Shed counts requests rejected with 429 (or abandoned while queued).
	Shed int64 `json:"shed"`
}

// admission is the load-shedding gate: a slot semaphore plus a bounded
// count of waiters.
type admission struct {
	opts  AdmissionOptions
	slots chan struct{}

	inflight atomic.Int64
	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

func newAdmission(opts AdmissionOptions) *admission {
	if opts.MaxQueue < 0 {
		opts.MaxQueue = 0
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	return &admission{opts: opts, slots: make(chan struct{}, opts.MaxInFlight)}
}

// acquire admits the request or reports it shed. The caller must invoke the
// returned release exactly once when ok.
func (a *admission) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case a.slots <- struct{}{}:
	default:
		// No free slot: join the bounded queue or shed.
		if a.queued.Add(1) > int64(a.opts.MaxQueue) {
			a.queued.Add(-1)
			a.shed.Add(1)
			return nil, false
		}
		select {
		case a.slots <- struct{}{}:
			a.queued.Add(-1)
		case <-ctx.Done():
			// The client gave up while queued; count it shed so saturation
			// is visible even when nobody sees the 429.
			a.queued.Add(-1)
			a.shed.Add(1)
			return nil, false
		}
	}
	a.admitted.Add(1)
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}, true
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxInFlight: a.opts.MaxInFlight,
		MaxQueue:    a.opts.MaxQueue,
		InFlight:    a.inflight.Load(),
		Queued:      a.queued.Load(),
		Admitted:    a.admitted.Load(),
		Shed:        a.shed.Load(),
	}
}

// SetAdmissionLimits installs a load-shedding gate in front of the query
// handlers (/query and /poll): at most maxInFlight requests execute at
// once, at most maxQueue more wait for a slot, and excess requests are shed
// with 429 + Retry-After. Gate occupancy and shed counts are exported on
// /status and /metrics. Call once, before serving; maxInFlight <= 0 leaves
// the server ungated.
func (s *Server) SetAdmissionLimits(maxInFlight, maxQueue int) {
	if maxInFlight <= 0 || s.admit != nil {
		return
	}
	s.admit = newAdmission(AdmissionOptions{MaxInFlight: maxInFlight, MaxQueue: maxQueue})
	reg := s.gw.Metrics()
	reg.CounterFunc("gridrm_http_shed_total", "Requests shed by the admission gate (429).", s.admit.shed.Load)
	reg.CounterFunc("gridrm_http_admitted_total", "Requests admitted by the admission gate.", s.admit.admitted.Load)
	reg.GaugeFunc("gridrm_http_inflight", "Admitted requests currently executing.",
		func() float64 { return float64(s.admit.inflight.Load()) })
	reg.GaugeFunc("gridrm_http_queued", "Requests waiting for an admission slot.",
		func() float64 { return float64(s.admit.queued.Load()) })
}

// admitRequest passes the request through the admission gate when one is
// installed. When the request is shed it writes the 429 itself and returns
// ok=false; otherwise the caller must defer release().
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.admit == nil {
		return func() {}, true
	}
	release, ok = s.admit.acquire(r.Context())
	if !ok {
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.admit.opts.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "gateway saturated, retry later", http.StatusTooManyRequests)
		return nil, false
	}
	return release, true
}
