package web

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

// TestWireRoundTripThroughJSON: arbitrary typed rows survive
// encode → JSON → decode with types and NULLs intact (the property every
// gateway-to-gateway hop depends on).
func TestWireRoundTripThroughJSON(t *testing.T) {
	meta, err := resultset.NewMetadata([]resultset.Column{
		{Name: "S", Kind: glue.String},
		{Name: "I", Kind: glue.Int},
		{Name: "F", Kind: glue.Float},
		{Name: "B", Kind: glue.Bool},
		{Name: "T", Kind: glue.Time},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(s string, i int32, fl float64, b bool, sec int32, nullMask uint8) bool {
		if math.IsNaN(fl) || math.IsInf(fl, 0) {
			return true // JSON numbers cannot carry these
		}
		row := []any{s, int64(i), fl, b, time.Unix(int64(sec), 0).UTC()}
		for bit := 0; bit < 5; bit++ {
			if nullMask&(1<<bit) != 0 {
				row[bit] = nil
			}
		}
		rs, err := resultset.NewBuilder(meta).Append(row...).Build()
		if err != nil {
			return false
		}
		buf, err := json.Marshal(EncodeResultSet(rs))
		if err != nil {
			return false
		}
		var wire WireResult
		if err := json.Unmarshal(buf, &wire); err != nil {
			return false
		}
		back, err := DecodeResultSet(wire)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		got := back.RowAt(0)
		for c := range row {
			if row[c] == nil {
				if got[c] != nil {
					return false
				}
				continue
			}
			if tv, ok := row[c].(time.Time); ok {
				if !got[c].(time.Time).Equal(tv) {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(got[c], row[c]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
