package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/security"
)

// Client is a GridRM client of a gateway's servlet interface.
type Client struct {
	// BaseURL is the gateway base, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Principal identifies the client; sent as headers.
	Principal security.Principal
	// HTTPClient is optional; nil uses a 10s-timeout client.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) doContext(ctx context.Context, method, path string, body any, out any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Principal.Name != "" {
		req.Header.Set(HeaderUser, c.Principal.Name)
	}
	if len(c.Principal.Roles) > 0 {
		req.Header.Set(HeaderRoles, strings.Join(c.Principal.Roles, ","))
	}
	if c.Principal.Site != "" {
		req.Header.Set(HeaderSite, c.Principal.Site)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("web: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("web: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("web: decoding %s response: %w", path, err)
		}
	}
	return nil
}

// Query executes a SQL query at the gateway.
func (c *Client) Query(req core.Request) (*core.Response, error) {
	return c.QueryContext(context.Background(), req)
}

// QueryContext executes a SQL query at the gateway, cancelling the HTTP
// request when ctx expires.
func (c *Client) QueryContext(ctx context.Context, req core.Request) (*core.Response, error) {
	var wr WireResponse
	if err := c.doContext(ctx, http.MethodPost, "/query", FromCoreRequest(req), &wr); err != nil {
		return nil, err
	}
	return DecodeResponse(wr)
}

// Poll forces a real-time refresh of one source/group (Fig 9's poll icon).
func (c *Client) Poll(sourceURL, group string) (*core.Response, error) {
	return c.PollContext(context.Background(), sourceURL, group)
}

// PollContext is Poll bounded by ctx.
func (c *Client) PollContext(ctx context.Context, sourceURL, group string) (*core.Response, error) {
	var wr WireResponse
	if err := c.doContext(ctx, http.MethodPost, "/poll", pollRequest{URL: sourceURL, Group: group}, &wr); err != nil {
		return nil, err
	}
	return DecodeResponse(wr)
}

// Sources lists the gateway's registered data sources.
func (c *Client) Sources() ([]core.SourceInfo, error) {
	return c.SourcesContext(context.Background())
}

// SourcesContext is Sources bounded by ctx.
func (c *Client) SourcesContext(ctx context.Context) ([]core.SourceInfo, error) {
	var out []core.SourceInfo
	err := c.doContext(ctx, http.MethodGet, "/sources", nil, &out)
	return out, err
}

// AddSource registers a data source (Fig 9's add icon).
func (c *Client) AddSource(cfg core.SourceConfig) error {
	return c.AddSourceContext(context.Background(), cfg)
}

// AddSourceContext is AddSource bounded by ctx.
func (c *Client) AddSourceContext(ctx context.Context, cfg core.SourceConfig) error {
	return c.doContext(ctx, http.MethodPost, "/sources", cfg, nil)
}

// RemoveSource unregisters a data source.
func (c *Client) RemoveSource(sourceURL string) error {
	return c.RemoveSourceContext(context.Background(), sourceURL)
}

// RemoveSourceContext is RemoveSource bounded by ctx.
func (c *Client) RemoveSourceContext(ctx context.Context, sourceURL string) error {
	return c.doContext(ctx, http.MethodDelete, "/sources?url="+url.QueryEscape(sourceURL), nil, nil)
}

// Drivers lists active and activatable drivers (Fig 8's panel).
func (c *Client) Drivers() ([]DriverListing, error) {
	return c.DriversContext(context.Background())
}

// DriversContext is Drivers bounded by ctx.
func (c *Client) DriversContext(ctx context.Context) ([]DriverListing, error) {
	var out []DriverListing
	err := c.doContext(ctx, http.MethodGet, "/drivers", nil, &out)
	return out, err
}

// ActivateDriver registers a repository driver at runtime.
func (c *Client) ActivateDriver(name string) error {
	return c.ActivateDriverContext(context.Background(), name)
}

// ActivateDriverContext is ActivateDriver bounded by ctx.
func (c *Client) ActivateDriverContext(ctx context.Context, name string) error {
	return c.doContext(ctx, http.MethodPost, "/drivers", driverActivation{Name: name}, nil)
}

// DeactivateDriver removes a driver at runtime.
func (c *Client) DeactivateDriver(name string) error {
	return c.DeactivateDriverContext(context.Background(), name)
}

// DeactivateDriverContext is DeactivateDriver bounded by ctx.
func (c *Client) DeactivateDriverContext(ctx context.Context, name string) error {
	return c.doContext(ctx, http.MethodDelete, "/drivers?name="+url.QueryEscape(name), nil, nil)
}

// SetPreferences installs a prioritised driver list for a source.
func (c *Client) SetPreferences(sourceURL string, drivers []string) error {
	return c.SetPreferencesContext(context.Background(), sourceURL, drivers)
}

// SetPreferencesContext is SetPreferences bounded by ctx.
func (c *Client) SetPreferencesContext(ctx context.Context, sourceURL string, drivers []string) error {
	return c.doContext(ctx, http.MethodPost, "/drivers/preferences",
		preferenceUpdate{URL: sourceURL, Drivers: drivers}, nil)
}

// Tree fetches the cached tree view (Fig 9).
func (c *Client) Tree() ([]TreeNode, error) {
	return c.TreeContext(context.Background())
}

// TreeContext is Tree bounded by ctx.
func (c *Client) TreeContext(ctx context.Context) ([]TreeNode, error) {
	var out []TreeNode
	err := c.doContext(ctx, http.MethodGet, "/tree", nil, &out)
	return out, err
}

// Events fetches event history matching the filter at or after since.
func (c *Client) Events(filter event.Filter, since time.Time) ([]event.Event, error) {
	return c.EventsContext(context.Background(), filter, since)
}

// EventsContext is Events bounded by ctx.
func (c *Client) EventsContext(ctx context.Context, filter event.Filter, since time.Time) ([]event.Event, error) {
	q := url.Values{}
	if filter.Source != "" {
		q.Set("source", filter.Source)
	}
	if filter.Host != "" {
		q.Set("host", filter.Host)
	}
	if filter.Name != "" {
		q.Set("name", filter.Name)
	}
	if filter.Severity != "" {
		q.Set("severity", filter.Severity)
	}
	if !since.IsZero() {
		q.Set("since", since.Format(time.RFC3339Nano))
	}
	path := "/events"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out []event.Event
	err := c.doContext(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// WatchMetric asks the gateway to publish group.field as events on every
// harvest.
func (c *Client) WatchMetric(group, field string) error {
	return c.WatchMetricContext(context.Background(), group, field)
}

// WatchMetricContext is WatchMetric bounded by ctx.
func (c *Client) WatchMetricContext(ctx context.Context, group, field string) error {
	return c.doContext(ctx, http.MethodPost, "/watches", watchRequest{Group: group, Field: field}, nil)
}

// WatchedMetrics lists active metric watches.
func (c *Client) WatchedMetrics() ([]string, error) {
	return c.WatchedMetricsContext(context.Background())
}

// WatchedMetricsContext is WatchedMetrics bounded by ctx.
func (c *Client) WatchedMetricsContext(ctx context.Context) ([]string, error) {
	var out []string
	err := c.doContext(ctx, http.MethodGet, "/watches", nil, &out)
	return out, err
}

// Status fetches the gateway's counters.
func (c *Client) Status() (*StatusReport, error) {
	return c.StatusContext(context.Background())
}

// StatusContext is Status bounded by ctx.
func (c *Client) StatusContext(ctx context.Context) (*StatusReport, error) {
	var out StatusReport
	if err := c.doContext(ctx, http.MethodGet, "/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sites lists the sites reachable from this gateway (itself first).
func (c *Client) Sites() ([]string, error) {
	return c.SitesContext(context.Background())
}

// SitesContext is Sites bounded by ctx.
func (c *Client) SitesContext(ctx context.Context) ([]string, error) {
	var out []string
	err := c.doContext(ctx, http.MethodGet, "/sites", nil, &out)
	return out, err
}

// RemoteQuery executes a core request against a remote gateway endpoint,
// forwarding the principal; it satisfies gma.Exec for the Global layer.
func RemoteQuery(endpoint string, req core.Request) (*core.Response, error) {
	return RemoteQueryContext(context.Background(), endpoint, req)
}

// RemoteQueryContext is RemoteQuery bounded by ctx; it satisfies
// gma.ExecContext so all-sites fan-outs can abandon a hung site at the
// deadline.
func RemoteQueryContext(ctx context.Context, endpoint string, req core.Request) (*core.Response, error) {
	c := &Client{BaseURL: endpoint, Principal: req.Principal}
	return c.QueryContext(ctx, req)
}
