package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/security"
	"gridrm/internal/trace"
)

// Client is a GridRM client of a gateway's servlet interface. Every method
// is context-first: the HTTP request is cancelled when ctx expires, and a
// trace context carried by ctx is propagated to the gateway in the
// X-GridRM-Trace header (with the gateway's spans stitched back into the
// local trace on Query).
type Client struct {
	// BaseURL is the gateway base, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Principal identifies the client; sent as headers.
	Principal security.Principal
	// HTTPClient is optional; nil uses a 10s-timeout client.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) doContext(ctx context.Context, method, path string, body any, out any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Principal.Name != "" {
		req.Header.Set(HeaderUser, c.Principal.Name)
	}
	if len(c.Principal.Roles) > 0 {
		req.Header.Set(HeaderRoles, strings.Join(c.Principal.Roles, ","))
	}
	if c.Principal.Site != "" {
		req.Header.Set(HeaderSite, c.Principal.Site)
	}
	if car, ok := trace.CarrierFromContext(ctx); ok {
		req.Header.Set(trace.HeaderName, car.Header())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("web: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("web: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("web: decoding %s response: %w", path, err)
		}
	}
	return nil
}

// Query executes a SQL query at the gateway. When ctx carries a trace, the
// spans the gateway recorded for this query are stitched into it.
func (c *Client) Query(ctx context.Context, req core.QueryOptions) (*core.Response, error) {
	var wr WireResponse
	if err := c.doContext(ctx, http.MethodPost, "/query", FromCoreRequest(req), &wr); err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(wr)
	if err != nil {
		return nil, err
	}
	trace.AttachRemote(ctx, resp.Trace)
	return resp, nil
}

// Poll forces a real-time refresh of one source/group (Fig 9's poll icon).
func (c *Client) Poll(ctx context.Context, sourceURL, group string) (*core.Response, error) {
	var wr WireResponse
	if err := c.doContext(ctx, http.MethodPost, "/poll", pollRequest{URL: sourceURL, Group: group}, &wr); err != nil {
		return nil, err
	}
	return DecodeResponse(wr)
}

// Sources lists the gateway's registered data sources.
func (c *Client) Sources(ctx context.Context) ([]core.SourceInfo, error) {
	var out []core.SourceInfo
	err := c.doContext(ctx, http.MethodGet, "/sources", nil, &out)
	return out, err
}

// AddSource registers a data source (Fig 9's add icon).
func (c *Client) AddSource(ctx context.Context, cfg core.SourceConfig) error {
	return c.doContext(ctx, http.MethodPost, "/sources", cfg, nil)
}

// RemoveSource unregisters a data source.
func (c *Client) RemoveSource(ctx context.Context, sourceURL string) error {
	return c.doContext(ctx, http.MethodDelete, "/sources?url="+url.QueryEscape(sourceURL), nil, nil)
}

// Drivers lists active and activatable drivers (Fig 8's panel).
func (c *Client) Drivers(ctx context.Context) ([]DriverListing, error) {
	var out []DriverListing
	err := c.doContext(ctx, http.MethodGet, "/drivers", nil, &out)
	return out, err
}

// ActivateDriver registers a repository driver at runtime.
func (c *Client) ActivateDriver(ctx context.Context, name string) error {
	return c.doContext(ctx, http.MethodPost, "/drivers", driverActivation{Name: name}, nil)
}

// DeactivateDriver removes a driver at runtime.
func (c *Client) DeactivateDriver(ctx context.Context, name string) error {
	return c.doContext(ctx, http.MethodDelete, "/drivers?name="+url.QueryEscape(name), nil, nil)
}

// SetPreferences installs a prioritised driver list for a source.
func (c *Client) SetPreferences(ctx context.Context, sourceURL string, drivers []string) error {
	return c.doContext(ctx, http.MethodPost, "/drivers/preferences",
		preferenceUpdate{URL: sourceURL, Drivers: drivers}, nil)
}

// Tree fetches the cached tree view (Fig 9).
func (c *Client) Tree(ctx context.Context) ([]TreeNode, error) {
	var out []TreeNode
	err := c.doContext(ctx, http.MethodGet, "/tree", nil, &out)
	return out, err
}

// Events fetches event history matching the filter at or after since.
func (c *Client) Events(ctx context.Context, filter event.Filter, since time.Time) ([]event.Event, error) {
	q := url.Values{}
	if filter.Source != "" {
		q.Set("source", filter.Source)
	}
	if filter.Host != "" {
		q.Set("host", filter.Host)
	}
	if filter.Name != "" {
		q.Set("name", filter.Name)
	}
	if filter.Severity != "" {
		q.Set("severity", filter.Severity)
	}
	if !since.IsZero() {
		q.Set("since", since.Format(time.RFC3339Nano))
	}
	path := "/events"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out []event.Event
	err := c.doContext(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// WatchMetric asks the gateway to publish group.field as events on every
// harvest.
func (c *Client) WatchMetric(ctx context.Context, group, field string) error {
	return c.doContext(ctx, http.MethodPost, "/watches", watchRequest{Group: group, Field: field}, nil)
}

// WatchedMetrics lists active metric watches.
func (c *Client) WatchedMetrics(ctx context.Context) ([]string, error) {
	var out []string
	err := c.doContext(ctx, http.MethodGet, "/watches", nil, &out)
	return out, err
}

// Status fetches the gateway's counters.
func (c *Client) Status(ctx context.Context) (*StatusReport, error) {
	var out StatusReport
	if err := c.doContext(ctx, http.MethodGet, "/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sites lists the sites reachable from this gateway (itself first).
func (c *Client) Sites(ctx context.Context) ([]string, error) {
	var out []string
	err := c.doContext(ctx, http.MethodGet, "/sites", nil, &out)
	return out, err
}

// Traces lists the gateway's stored query traces, newest first.
func (c *Client) Traces(ctx context.Context) ([]trace.Summary, error) {
	var out []trace.Summary
	err := c.doContext(ctx, http.MethodGet, "/traces", nil, &out)
	return out, err
}

// Trace fetches one stored query trace as a span tree.
func (c *Client) Trace(ctx context.Context, id string) (*trace.TraceData, error) {
	var out trace.TraceData
	if err := c.doContext(ctx, http.MethodGet, "/traces/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RemoteQueryContext executes a core request against a remote gateway
// endpoint, bounded by ctx and forwarding the principal; it satisfies
// gma.ExecContext so all-sites fan-outs can abandon a hung site at the
// deadline. A trace carried by ctx crosses the hop in the X-GridRM-Trace
// header and the remote gateway's spans are stitched back into it.
func RemoteQueryContext(ctx context.Context, endpoint string, req core.QueryOptions) (*core.Response, error) {
	c := &Client{BaseURL: endpoint, Principal: req.Principal}
	return c.Query(ctx, req)
}
