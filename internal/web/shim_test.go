package web

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/event"
	"gridrm/internal/glue"
)

// normalizeWireResponse zeroes the fields two sequential HTTP round-trips
// legitimately disagree on: server-side timing, trace identity and (for
// fresh harvests on the real clock) harvest timestamps and ages.
func normalizeWireResponse(r *core.Response) *core.Response {
	c := *r
	c.Elapsed = 0
	c.TraceID = ""
	c.Trace = nil
	c.Sources = append([]core.SourceStatus(nil), r.Sources...)
	for i := range c.Sources {
		c.Sources[i].HarvestedAt = time.Time{}
		c.Sources[i].Age = 0
	}
	return &c
}

// TestClientContextShimsMatch drives every deprecated *Context read shim and
// its context-first replacement against the same live server and requires
// identical answers — the wire path, encoding and semantics must not fork.
func TestClientContextShimsMatch(t *testing.T) {
	f := newFixture(t, nil)
	c := f.client
	ctx := context.Background()

	// Prime the cache so the query pair observes identical gateway state.
	if _, err := c.Query(ctx, core.QueryOptions{SQL: "SELECT * FROM Processor"}); err != nil {
		t.Fatal(err)
	}

	t.Run("Query", func(t *testing.T) {
		req := core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeCached}
		a, errA := c.Query(ctx, req)
		b, errB := c.QueryContext(ctx, req)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(normalizeWireResponse(a), normalizeWireResponse(b)) {
			t.Errorf("responses differ\n new: %+v\n shim: %+v", a, b)
		}
	})

	t.Run("Poll", func(t *testing.T) {
		a, errA := c.Poll(ctx, f.url, glue.GroupProcessor)
		b, errB := c.PollContext(ctx, f.url, glue.GroupProcessor)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if a.ResultSet.Len() != b.ResultSet.Len() || a.Site != b.Site {
			t.Errorf("poll differs: %d/%q vs %d/%q",
				a.ResultSet.Len(), a.Site, b.ResultSet.Len(), b.Site)
		}
	})

	t.Run("Sources", func(t *testing.T) {
		a, errA := c.Sources(ctx)
		b, errB := c.SourcesContext(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("sources differ: %+v vs %+v", a, b)
		}
	})

	t.Run("Drivers", func(t *testing.T) {
		a, errA := c.Drivers(ctx)
		b, errB := c.DriversContext(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("drivers differ: %+v vs %+v", a, b)
		}
	})

	t.Run("Tree", func(t *testing.T) {
		a, errA := c.Tree(ctx)
		b, errB := c.TreeContext(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		// Cache-entry ages are measured at call time; zero them out.
		for _, nodes := range [][]TreeNode{a, b} {
			for i := range nodes {
				for j := range nodes[i].Cached {
					nodes[i].Cached[j].Age = 0
				}
			}
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("trees differ: %+v vs %+v", a, b)
		}
	})

	t.Run("Events", func(t *testing.T) {
		f.gw.Events().Drain()
		a, errA := c.Events(ctx, event.Filter{}, time.Time{})
		b, errB := c.EventsContext(ctx, event.Filter{}, time.Time{})
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("events differ: %d vs %d entries", len(a), len(b))
		}
	})

	t.Run("WatchedMetrics", func(t *testing.T) {
		if err := c.WatchMetricContext(ctx, glue.GroupProcessor, "LoadLast1Min"); err != nil {
			t.Fatal(err)
		}
		a, errA := c.WatchedMetrics(ctx)
		b, errB := c.WatchedMetricsContext(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) || len(a) == 0 {
			t.Errorf("watched metrics differ: %v vs %v", a, b)
		}
	})

	t.Run("Status", func(t *testing.T) {
		a, errA := c.Status(ctx)
		b, errB := c.StatusContext(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		// Counters move between calls; the identity fields must agree.
		if a.Site != b.Site || len(a.Health) != len(b.Health) {
			t.Errorf("status differs: %q/%d vs %q/%d",
				a.Site, len(a.Health), b.Site, len(b.Health))
		}
	})

	t.Run("Sites", func(t *testing.T) {
		a, errA := c.Sites(ctx)
		b, errB := c.SitesContext(ctx)
		if errA != nil || errB != nil {
			t.Fatalf("errs: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("sites differ: %v vs %v", a, b)
		}
	})
}

// TestClientMutatingShimsMatch checks the deprecated mutating *Context shims
// perform the same state transitions as their replacements: each pair runs
// the same add/remove or activate/deactivate cycle and must leave identical
// observable state behind.
func TestClientMutatingShimsMatch(t *testing.T) {
	f := newFixture(t, nil)
	c := f.client
	ctx := context.Background()
	extra := core.SourceConfig{URL: "gridrm:mem://extra:1", Description: "shim test"}

	sourceCount := func() int {
		srcs, err := c.Sources(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return len(srcs)
	}
	base := sourceCount()

	// Add/remove through the deprecated shims...
	if err := c.AddSourceContext(ctx, extra); err != nil {
		t.Fatal(err)
	}
	if got := sourceCount(); got != base+1 {
		t.Fatalf("after AddSourceContext: %d sources, want %d", got, base+1)
	}
	if err := c.RemoveSourceContext(ctx, extra.URL); err != nil {
		t.Fatal(err)
	}
	// ...and through the context-first methods; the end states must match.
	if err := c.AddSource(ctx, extra); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveSource(ctx, extra.URL); err != nil {
		t.Fatal(err)
	}
	if got := sourceCount(); got != base {
		t.Fatalf("cycle left %d sources, want %d", got, base)
	}

	// Driver activation cycle through both paths.
	if err := c.ActivateDriverContext(ctx, "jdbc-extra"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeactivateDriverContext(ctx, "jdbc-extra"); err != nil {
		t.Fatal(err)
	}
	if err := c.ActivateDriver(ctx, "jdbc-extra"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeactivateDriver(ctx, "jdbc-extra"); err != nil {
		t.Fatal(err)
	}

	// Preference updates through both paths.
	if err := c.SetPreferencesContext(ctx, f.url, []string{"jdbc-mem"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPreferences(ctx, f.url, []string{"jdbc-mem"}); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteQueryShimMatchesContext checks the package-level federation hop:
// the deprecated context-free RemoteQuery must produce the same answer as
// RemoteQueryContext.
func TestRemoteQueryShimMatchesContext(t *testing.T) {
	f := newFixture(t, nil)
	req := core.QueryOptions{Principal: f.client.Principal,
		SQL: "SELECT * FROM Processor", Mode: core.ModeCached}
	// Prime so both observe a warm cache.
	if _, err := RemoteQueryContext(context.Background(), f.srv.URL, req); err != nil {
		t.Fatal(err)
	}
	a, errA := RemoteQuery(f.srv.URL, req)
	b, errB := RemoteQueryContext(context.Background(), f.srv.URL, req)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(normalizeWireResponse(a), normalizeWireResponse(b)) {
		t.Errorf("remote responses differ\n shim: %+v\n ctx:  %+v", a, b)
	}
}
