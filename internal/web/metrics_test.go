package web

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"gridrm/internal/core"
)

// sampleLine matches one Prometheus text-format sample:
// metric_name{optional="labels"} value
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEInfNa]+$`)

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t, nil)
	// Drive some traffic so the stage histograms have samples.
	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Mode: core.ModeRealTime,
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(f.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Every non-comment, non-blank line must parse as a sample.
	scanner := bufio.NewScanner(strings.NewReader(string(body)))
	samples := 0
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples exposed")
	}

	text := string(body)
	for _, want := range []string{
		"gridrm_coalesced_total",
		"gridrm_queries_total",
		"gridrm_query_stage_seconds_bucket",
		"gridrm_query_stage_seconds_sum",
		"gridrm_query_stage_seconds_count",
		`le="+Inf"`,
		"gridrm_pool_dial_seconds_count",
		"gridrm_event_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
	// The query above must have produced harvest-stage observations.
	if !strings.Contains(text, `gridrm_query_stage_seconds_count{stage="harvest"}`) {
		t.Error("no harvest-stage histogram in /metrics")
	}
}

func TestMetricsRejectsNonGET(t *testing.T) {
	f := newFixture(t, nil)
	resp, err := http.Post(f.srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}

func TestStatusIncludesStages(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT HostName FROM Processor", Mode: core.ModeRealTime,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := f.client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stages) == 0 {
		t.Fatal("status report has no stage latencies")
	}
	seen := map[string]bool{}
	for _, s := range st.Stages {
		seen[s.Label] = true
	}
	for _, want := range []string{core.StageParse, core.StageHarvest} {
		if !seen[want] {
			t.Errorf("status stages missing %q (have %v)", want, st.Stages)
		}
	}
}
