package web

import (
	"bufio"
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/router"
)

// sseWait polls cond for up to 5s.
func sseWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// recvSSE drains n metrics from the client subscription.
func recvSSE(t *testing.T, sub *ClientSubscription, n int) []router.Metric {
	t.Helper()
	out := make([]router.Metric, 0, n)
	for len(out) < n {
		select {
		case m := <-sub.C():
			out = append(out, m)
		case <-sub.Done():
			t.Fatalf("stream ended after %d/%d rows: %v", len(out), n, sub.Err())
		case <-time.After(3 * time.Second):
			t.Fatalf("received %d/%d rows before timeout", len(out), n)
		}
	}
	return out
}

func TestSubscribeOverSSE(t *testing.T) {
	f := newFixture(t, nil)
	sub, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
		Query: core.QueryOptions{SQL: "SELECT HostName, LoadLast1Min FROM Processor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	rows := recvSSE(t, sub, 2)
	hosts := map[string]bool{}
	for _, m := range rows {
		if m.Seq == 0 {
			t.Fatal("metric arrived without a sequence number")
		}
		if len(m.Columns) != 2 || m.Columns[0] != "HostName" {
			t.Fatalf("projection lost on the wire: %v", m.Columns)
		}
		host, _ := m.Row[0].(string)
		hosts[host] = true
	}
	if !hosts["a1"] || !hosts["a2"] {
		t.Fatalf("hosts = %v, want a1 and a2", hosts)
	}
	if sub.LastSeq() == 0 {
		t.Fatal("LastSeq not tracked from id: lines")
	}
}

func TestSubscribeSSEResumeFromSeq(t *testing.T) {
	f := newFixture(t, nil)
	// Hold a server-side subscription open so the push router stays
	// non-idle while the SSE client is disconnected (the harvest path
	// skips publishing entirely when nobody subscribes).
	keeper, err := f.gw.Subscribe(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Principal: f.client.Principal})
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()

	sub, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
		Query: core.QueryOptions{SQL: "SELECT * FROM Processor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	recvSSE(t, sub, 2)
	last := sub.LastSeq()
	sub.Close()

	// Rows produced while disconnected land in the replay ring.
	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	resumed, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
		Query: core.QueryOptions{SQL: "SELECT * FROM Processor", FromSeq: last},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	rows := recvSSE(t, resumed, 2)
	for _, m := range rows {
		if m.Seq <= last {
			t.Fatalf("replayed seq %d not after resume point %d", m.Seq, last)
		}
	}
	if resumed.Gaps() != 0 {
		t.Fatalf("clean resume reported %d gaps", resumed.Gaps())
	}
}

// TestSubscribeSSELastEventIDHeader exercises the standard EventSource
// reconnect path: the resume point travels in the Last-Event-ID header
// rather than ?from=.
func TestSubscribeSSELastEventIDHeader(t *testing.T) {
	f := newFixture(t, nil)
	keeper, err := f.gw.Subscribe(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Principal: f.client.Principal})
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()
	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.srv.URL+"/subscribe?sql="+strings.ReplaceAll("SELECT * FROM Processor", " ", "%20"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderUser, "admin")
	// The harvest above produced seqs 1 and 2; a client that saw event 1
	// reconnects with Last-Event-ID: 1 and must get 2 replayed without a
	// fresh harvest.
	req.Header.Set("Last-Event-ID", "1")
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var ids, datas int
	for datas < 1 && sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: 2") {
			ids++
		}
		if strings.HasPrefix(line, "data:") {
			datas++
		}
	}
	if ids != 1 || datas != 1 {
		t.Fatalf("replayed frames: ids=%d datas=%d, want 1 each", ids, datas)
	}
}

func TestSubscribeSSERejectsBadQueries(t *testing.T) {
	f := newFixture(t, nil)
	for _, sql := range []string{"", "SELECT count(*) FROM Processor", "SELEKT"} {
		if _, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
			Query: core.QueryOptions{SQL: sql},
		}); err == nil {
			t.Errorf("SQL %q accepted for subscription", sql)
		}
	}
}

// TestSSEHonorsClientDisconnect proves the server handler exits and
// unregisters the subscription promptly once the client goes away.
func TestSSEHonorsClientDisconnect(t *testing.T) {
	f := newFixture(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := f.client.SubscribeContext(ctx, SubscribeConfig{
		Query: core.QueryOptions{SQL: "SELECT * FROM Processor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sseWait(t, "subscriber registration", func() bool {
		return f.gw.PushRouter().Stats().Subscribers == 1
	})
	cancel()
	<-sub.Done()
	sseWait(t, "server-side unregistration after disconnect", func() bool {
		return f.gw.PushRouter().Stats().Subscribers == 0
	})
}

// TestSSEIdleTimeout: a stream with no rows and heartbeats slower than the
// watchdog is torn down with a descriptive error.
func TestSSEIdleTimeout(t *testing.T) {
	f := newFixture(t, nil)
	sub, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
		Query:       core.QueryOptions{SQL: "SELECT * FROM Processor"},
		IdleTimeout: 200 * time.Millisecond,
		Heartbeat:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Done():
	case <-time.After(3 * time.Second):
		t.Fatal("idle watchdog never fired")
	}
	if err := sub.Err(); err == nil || !strings.Contains(err.Error(), "idle") {
		t.Fatalf("err = %v, want idle-timeout error", err)
	}
}

// TestSSEHeartbeatKeepsStreamAlive: heartbeats faster than the watchdog
// keep a rowless stream open.
func TestSSEHeartbeatKeepsStreamAlive(t *testing.T) {
	f := newFixture(t, nil)
	sub, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
		Query:       core.QueryOptions{SQL: "SELECT * FROM Processor"},
		IdleTimeout: 600 * time.Millisecond,
		Heartbeat:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	select {
	case <-sub.Done():
		t.Fatalf("stream died despite heartbeats: %v", sub.Err())
	case <-time.After(1500 * time.Millisecond):
	}
}

// TestSSENoGoroutineLeak: repeated subscribe/stream/close cycles leave no
// goroutines behind on either side (both ends run in this process).
func TestSSENoGoroutineLeak(t *testing.T) {
	f := newFixture(t, nil)
	cycle := func() {
		sub, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
			Query: core.QueryOptions{SQL: "SELECT * FROM Processor"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.client.Query(context.Background(), core.QueryOptions{
			SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
			t.Fatal(err)
		}
		recvSSE(t, sub, 2)
		sub.Close()
	}
	cycle() // warm up connection pools and lazy singletons
	sseWait(t, "warm-up teardown", func() bool {
		return f.gw.PushRouter().Stats().Subscribers == 0
	})
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cycle()
	}
	sseWait(t, "all subscriptions gone", func() bool {
		return f.gw.PushRouter().Stats().Subscribers == 0
	})
	sseWait(t, "goroutine count back to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

func TestStatusReportsPushCounters(t *testing.T) {
	f := newFixture(t, nil)
	sub, err := f.client.SubscribeContext(context.Background(), SubscribeConfig{
		Query: core.QueryOptions{SQL: "SELECT * FROM Processor"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := f.client.Query(context.Background(), core.QueryOptions{
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
		t.Fatal(err)
	}
	recvSSE(t, sub, 2)
	st, err := f.client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Push.Published != 2 || st.Push.Subscribers != 1 {
		t.Fatalf("push stats over HTTP: %+v", st.Push)
	}
	if len(st.Subscribers) != 1 || st.Subscribers[0].Enqueued != 2 {
		t.Fatalf("subscriber stats over HTTP: %+v", st.Subscribers)
	}
}
