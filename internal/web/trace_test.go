package web

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/gma"
	"gridrm/internal/security"
	"gridrm/internal/trace"
)

// traceSite builds one gateway + servlet pair with a memdrv source.
func traceSite(t *testing.T, name string, hosts []string, cfg core.Config) (*core.Gateway, *httptest.Server) {
	t.Helper()
	cfg.Name = name
	gw := core.New(cfg)
	t.Cleanup(gw.Close)
	backend := memdrv.NewBackend(hosts)
	d := memdrv.New("jdbc-mem", "mem", backend)
	if err := gw.RegisterDriver(d, d.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := gw.AddSource(core.SourceConfig{URL: "gridrm:mem://" + name + ":1"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(gw, nil, nil))
	t.Cleanup(srv.Close)
	return gw, srv
}

func findSpans(n *trace.Node, name string, out *[]*trace.Node) {
	if n.Name == name {
		*out = append(*out, n)
	}
	for _, c := range n.Children {
		findSpans(c, name, out)
	}
}

// TestCrossGatewayTracePropagation drives a federated all-sites query over
// real HTTP and asserts that the entry gateway stores ONE stitched span
// tree covering both its own pipeline and the remote gateway's: the
// X-GridRM-Trace header carries the trace across the hop, and the child's
// spans return in the wire response for stitching.
func TestCrossGatewayTracePropagation(t *testing.T) {
	dir := gma.NewDirectory(0, nil)
	gwA, srvA := traceSite(t, "siteA", []string{"a1", "a2"}, core.Config{})
	gwB, srvB := traceSite(t, "siteB", []string{"b1"}, core.Config{})
	_ = gwB
	if err := dir.Register(gma.Registration{Name: "siteB", Endpoint: srvB.URL}); err != nil {
		t.Fatal(err)
	}
	gwA.SetGlobalRouter(gma.NewContextRouter(dir, RemoteQueryContext, "siteA"))

	client := &Client{BaseURL: srvA.URL,
		Principal: security.Principal{Name: "admin", Roles: []string{"operator"}}}
	ctx := context.Background()

	resp, err := client.Query(ctx, core.QueryOptions{
		SQL:   "SELECT * FROM Processor",
		Site:  core.AllSites,
		Mode:  core.ModeRealTime,
		Trace: trace.DecideOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("federated all-sites query returned no trace ID")
	}
	if resp.ResultSet.Len() != 3 {
		t.Fatalf("rows = %d, want 3", resp.ResultSet.Len())
	}

	td, err := client.Trace(ctx, resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Roots) != 1 {
		t.Fatalf("roots = %d, want one stitched tree", len(td.Roots))
	}
	root := td.Roots[0]
	if root.Name != "query" || root.Site != "siteA" {
		t.Errorf("root = %s@%s, want query@siteA", root.Name, root.Site)
	}

	// The local leg's full pipeline is present.
	for _, want := range []string{"parse", "fanout", "site", "harvest", "driver-execute", "pool-checkout", "consolidate", "remote-query"} {
		var got []*trace.Node
		findSpans(root, want, &got)
		if len(got) == 0 {
			t.Errorf("span %q missing from stitched tree", want)
		}
	}

	// The remote gateway's serving leg is stitched in under the
	// remote-query span: a "query" span recorded at siteB, marked remote.
	var remotes []*trace.Node
	findSpans(root, "remote-query", &remotes)
	if len(remotes) != 1 {
		t.Fatalf("remote-query spans = %d, want 1", len(remotes))
	}
	var remoteQuery *trace.Node
	for _, c := range remotes[0].Children {
		if c.Name == "query" && c.Site == "siteB" {
			remoteQuery = c
		}
	}
	if remoteQuery == nil {
		t.Fatal("siteB's query span not stitched under remote-query")
	}
	if !remoteQuery.Remote {
		t.Error("stitched span not marked remote")
	}
	// And the child's own pipeline came with it.
	var childHarvests []*trace.Node
	findSpans(remoteQuery, "driver-execute", &childHarvests)
	if len(childHarvests) == 0 {
		t.Error("remote gateway's driver-execute span missing")
	}

	// The child gateway also stored its own leg locally, findable by the
	// same trace ID through its own servlet.
	clientB := &Client{BaseURL: srvB.URL,
		Principal: security.Principal{Name: "admin", Roles: []string{"operator"}}}
	tdB, err := clientB.Trace(ctx, resp.TraceID)
	if err != nil {
		t.Fatalf("child gateway did not store its leg: %v", err)
	}
	if tdB.TraceID != resp.TraceID {
		t.Errorf("child trace ID = %s, want %s", tdB.TraceID, resp.TraceID)
	}
}

// TestTraceEndpoints exercises GET /traces and GET /traces/<id> plus the
// 404 path.
func TestTraceEndpoints(t *testing.T) {
	_, srv := traceSite(t, "siteA", []string{"a1"}, core.Config{})
	client := &Client{BaseURL: srv.URL,
		Principal: security.Principal{Name: "admin", Roles: []string{"operator"}}}
	ctx := context.Background()

	resp, err := client.Query(ctx, core.QueryOptions{
		SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime, Trace: trace.DecideOn})
	if err != nil {
		t.Fatal(err)
	}
	sums, err := client.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("no trace summaries")
	}
	if sums[0].TraceID != resp.TraceID {
		t.Errorf("newest summary = %s, want %s", sums[0].TraceID, resp.TraceID)
	}
	if sums[0].SQL == "" {
		t.Error("summary lost the SQL")
	}
	if _, err := client.Trace(ctx, "no-such-trace"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("missing trace = %v, want 404", err)
	}
}

// TestSlowQueryLogOverHTTP checks that slow queries surface in /status and
// that the ring buffer evicts oldest-first at capacity.
func TestSlowQueryLogOverHTTP(t *testing.T) {
	gw, srv := traceSite(t, "siteA", []string{"a1"}, core.Config{
		Trace: trace.Options{SlowThreshold: time.Nanosecond, SlowLog: 4},
	})
	client := &Client{BaseURL: srv.URL,
		Principal: security.Principal{Name: "admin", Roles: []string{"operator"}}}
	ctx := context.Background()

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := client.Query(ctx, core.QueryOptions{
			SQL: "SELECT * FROM Processor", Mode: core.ModeRealTime}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Traces.SlowQueries != n {
		t.Errorf("slow-query count = %d, want %d", st.Traces.SlowQueries, n)
	}
	if len(st.Slow) != 4 {
		t.Errorf("slow log kept %d entries, want capacity 4", len(st.Slow))
	}
	for _, sq := range st.Slow {
		if sq.SQL != "SELECT * FROM Processor" || sq.Site != "siteA" {
			t.Errorf("bad slow entry %+v", sq)
		}
	}
	if got := gw.Tracer().Stats().SlowQueries; got != n {
		t.Errorf("tracer stats slow queries = %d, want %d", got, n)
	}
}
