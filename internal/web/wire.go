// Package web implements the GridRM gateway's servlet interface: the HTTP
// face of the Abstract Client Interface Layer. The paper's gateways were
// Java servlets with a JSP management interface (Figs 6–9); here the same
// operations — issuing SQL queries, managing data sources and drivers,
// browsing the cached tree view, polling resources in real time, and
// reading the event log — are JSON endpoints, and gateways interact
// gateway-to-gateway over the same interface for the Global layer.
//
// One substitution is documented in DESIGN.md: the paper's clients upload
// driver JARs for runtime registration. Go cannot load code at runtime
// from a request body, so the server is configured with a repository of
// available driver constructors and clients activate them by name; the
// lifecycle (register/deregister at runtime, persisted activation, cached
// selection) is otherwise identical.
package web

import (
	"fmt"
	"strconv"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/trace"
)

// WireColumn describes one result column on the wire.
type WireColumn struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Unit  string `json:"unit,omitempty"`
	Group string `json:"group,omitempty"`
}

// WireResult is a ResultSet on the wire. Values are JSON-natural (numbers,
// strings, booleans, null); the column kind disambiguates int64 vs float64
// and identifies RFC 3339 time strings on decode.
type WireResult struct {
	Columns []WireColumn `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

// WireRequest is a query request on the wire.
type WireRequest struct {
	SQL     string   `json:"sql"`
	Site    string   `json:"site,omitempty"`
	Sources []string `json:"sources,omitempty"`
	Region  []string `json:"region,omitempty"`
	Mode    string   `json:"mode,omitempty"`
	Since   string   `json:"since,omitempty"`
	Until   string   `json:"until,omitempty"`
	// TimeoutNs bounds the request on the gateway side, overriding its
	// default query timeout (0 keeps the default).
	TimeoutNs int64 `json:"timeoutNs,omitempty"`
	// Trace selects tracing for this query: "on" forces a trace, "off"
	// suppresses one, empty follows the gateway's sample rate.
	Trace string `json:"trace,omitempty"`
}

// WireResponse is a query response on the wire.
type WireResponse struct {
	Site      string              `json:"site"`
	SQL       string              `json:"sql"`
	Mode      string              `json:"mode"`
	ElapsedNs int64               `json:"elapsedNs"`
	Sources   []core.SourceStatus `json:"sources,omitempty"`
	Result    WireResult          `json:"result"`
	// TraceID identifies the query's trace when it was sampled.
	TraceID string `json:"traceId,omitempty"`
	// Trace carries the serving gateway's finished spans when it served a
	// leg of a propagated remote trace, for stitching by the caller.
	Trace []trace.SpanData `json:"trace,omitempty"`
}

func kindName(k glue.Kind) string { return k.String() }

func kindFromName(name string) (glue.Kind, error) {
	switch name {
	case "string":
		return glue.String, nil
	case "int":
		return glue.Int, nil
	case "float":
		return glue.Float, nil
	case "bool":
		return glue.Bool, nil
	case "time":
		return glue.Time, nil
	}
	return 0, fmt.Errorf("web: unknown kind %q", name)
}

// ParseMode converts the wire mode string; empty means cached.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "", "cached":
		return core.ModeCached, nil
	case "real-time", "realtime":
		return core.ModeRealTime, nil
	case "historical", "history":
		return core.ModeHistorical, nil
	}
	return 0, fmt.Errorf("web: unknown mode %q", s)
}

// EncodeResultSet converts a ResultSet to its wire form.
func EncodeResultSet(rs *resultset.ResultSet) WireResult {
	meta := rs.Metadata()
	out := WireResult{Columns: make([]WireColumn, meta.ColumnCount())}
	for i := 0; i < meta.ColumnCount(); i++ {
		c := meta.Column(i)
		out.Columns[i] = WireColumn{Name: c.Name, Kind: kindName(c.Kind), Unit: c.Unit, Group: c.Group}
	}
	out.Rows = make([][]any, rs.Len())
	for r := 0; r < rs.Len(); r++ {
		src := rs.RowAt(r)
		row := make([]any, len(src))
		for i, v := range src {
			switch x := v.(type) {
			case time.Time:
				row[i] = x.Format(time.RFC3339Nano)
			default:
				row[i] = v
			}
		}
		out.Rows[r] = row
	}
	return out
}

// DecodeResultSet reconstructs a ResultSet from its wire form, restoring
// per-column Go types from the declared kinds.
func DecodeResultSet(wr WireResult) (*resultset.ResultSet, error) {
	cols := make([]resultset.Column, len(wr.Columns))
	kinds := make([]glue.Kind, len(wr.Columns))
	for i, c := range wr.Columns {
		k, err := kindFromName(c.Kind)
		if err != nil {
			return nil, err
		}
		kinds[i] = k
		cols[i] = resultset.Column{Name: c.Name, Kind: k, Unit: c.Unit, Group: c.Group}
	}
	meta, err := resultset.NewMetadata(cols)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, row := range wr.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("web: row has %d cells, want %d", len(row), len(cols))
		}
		decoded := make([]any, len(row))
		for i, v := range row {
			dv, err := decodeCell(v, kinds[i])
			if err != nil {
				return nil, fmt.Errorf("web: column %s: %w", cols[i].Name, err)
			}
			decoded[i] = dv
		}
		b.Append(decoded...)
	}
	return b.Build()
}

func decodeCell(v any, kind glue.Kind) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch kind {
	case glue.String:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("expected string, got %T", v)
		}
		return s, nil
	case glue.Int:
		switch x := v.(type) {
		case float64: // JSON numbers decode as float64
			return int64(x), nil
		case int64: // in-process round trips keep native types
			return x, nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, err
			}
			return n, nil
		}
		return nil, fmt.Errorf("expected number, got %T", v)
	case glue.Float:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
		return nil, fmt.Errorf("expected number, got %T", v)
	case glue.Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("expected bool, got %T", v)
		}
		return b, nil
	case glue.Time:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("expected time string, got %T", v)
		}
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("unknown kind %v", kind)
}

// EncodeResponse converts a core.Response to its wire form.
func EncodeResponse(resp *core.Response) WireResponse {
	return WireResponse{
		Site:      resp.Site,
		SQL:       resp.SQL,
		Mode:      resp.Mode.String(),
		ElapsedNs: int64(resp.Elapsed),
		Sources:   resp.Sources,
		Result:    EncodeResultSet(resp.ResultSet),
		TraceID:   resp.TraceID,
		Trace:     resp.Trace,
	}
}

// DecodeResponse reconstructs a core.Response from its wire form.
func DecodeResponse(wr WireResponse) (*core.Response, error) {
	mode, err := ParseMode(wr.Mode)
	if err != nil {
		return nil, err
	}
	rs, err := DecodeResultSet(wr.Result)
	if err != nil {
		return nil, err
	}
	return &core.Response{
		Site:      wr.Site,
		SQL:       wr.SQL,
		Mode:      mode,
		Elapsed:   time.Duration(wr.ElapsedNs),
		Sources:   wr.Sources,
		ResultSet: rs,
		TraceID:   wr.TraceID,
		Trace:     wr.Trace,
	}, nil
}

// ToCoreRequest converts a wire request (mode/window strings parsed).
func (wr WireRequest) ToCoreRequest() (core.QueryOptions, error) {
	mode, err := ParseMode(wr.Mode)
	if err != nil {
		return core.QueryOptions{}, err
	}
	req := core.QueryOptions{SQL: wr.SQL, Site: wr.Site, Sources: wr.Sources, Region: wr.Region, Mode: mode}
	if wr.Since != "" {
		t, err := time.Parse(time.RFC3339Nano, wr.Since)
		if err != nil {
			return core.QueryOptions{}, fmt.Errorf("web: bad since: %w", err)
		}
		req.Since = t
	}
	if wr.Until != "" {
		t, err := time.Parse(time.RFC3339Nano, wr.Until)
		if err != nil {
			return core.QueryOptions{}, fmt.Errorf("web: bad until: %w", err)
		}
		req.Until = t
	}
	if wr.TimeoutNs > 0 {
		req.Timeout = time.Duration(wr.TimeoutNs)
	}
	switch wr.Trace {
	case "":
	case "on":
		req.Trace = trace.DecideOn
	case "off":
		req.Trace = trace.DecideOff
	default:
		return core.QueryOptions{}, fmt.Errorf("web: bad trace %q (want on, off or empty)", wr.Trace)
	}
	return req, nil
}

// FromCoreRequest converts a core request to wire form.
func FromCoreRequest(req core.QueryOptions) WireRequest {
	wr := WireRequest{SQL: req.SQL, Site: req.Site, Sources: req.Sources, Region: req.Region, Mode: req.Mode.String()}
	if !req.Since.IsZero() {
		wr.Since = req.Since.Format(time.RFC3339Nano)
	}
	if !req.Until.IsZero() {
		wr.Until = req.Until.Format(time.RFC3339Nano)
	}
	if req.Timeout > 0 {
		wr.TimeoutNs = int64(req.Timeout)
	}
	switch req.Trace {
	case trace.DecideOn:
		wr.Trace = "on"
	case trace.DecideOff:
		wr.Trace = "off"
	}
	return wr
}
