package web

import (
	"context"
	"testing"
)

func TestStatusCarriesSourceHealth(t *testing.T) {
	f := newFixture(t, nil)
	f.gw.Prober().ProbeAll(context.Background())

	st, err := f.client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Health) != 1 {
		t.Fatalf("health entries = %+v, want 1", st.Health)
	}
	h := st.Health[0]
	if h.URL != f.url || h.State != "healthy" {
		t.Errorf("health = %+v", h)
	}
	if st.Probes.Probes != 1 || st.Probes.Failures != 0 {
		t.Errorf("probe stats = %+v", st.Probes)
	}

	// The degradation counters ride along even when zero.
	if st.Gateway.StaleServes != 0 || st.Gateway.DriverPanics != 0 {
		t.Errorf("unexpected degradation counters: %+v", st.Gateway)
	}
}
