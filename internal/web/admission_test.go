package web

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"gridrm/internal/core"
)

func TestAdmissionAcquireRelease(t *testing.T) {
	a := newAdmission(AdmissionOptions{MaxInFlight: 2})
	rel1, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	rel2, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("second acquire shed")
	}
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("third acquire admitted past MaxInFlight with no queue")
	}
	st := a.stats()
	if st.InFlight != 2 || st.Admitted != 2 || st.Shed != 1 {
		t.Errorf("stats = %+v", st)
	}
	rel1()
	if rel3, ok := a.acquire(context.Background()); !ok {
		t.Error("acquire after release shed")
	} else {
		rel3()
	}
	rel2()
	if got := a.stats().InFlight; got != 0 {
		t.Errorf("inflight after releases = %d, want 0", got)
	}
}

func TestAdmissionQueue(t *testing.T) {
	a := newAdmission(AdmissionOptions{MaxInFlight: 1, MaxQueue: 1})
	rel, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	admitted := make(chan func(), 1)
	go func() {
		r2, ok := a.acquire(context.Background())
		if !ok {
			close(admitted)
			return
		}
		admitted <- r2
	}()
	// Wait for the goroutine to be queued.
	deadline := time.Now().Add(2 * time.Second)
	for a.stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is full: an immediate third arrival is shed.
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("arrival past the queue bound admitted")
	}
	rel()
	select {
	case r2, ok := <-admitted:
		if !ok {
			t.Fatal("queued waiter was shed")
		}
		r2()
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never admitted after release")
	}
	st := a.stats()
	if st.Shed != 1 || st.Admitted != 2 || st.Queued != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmissionQueuedCtxCancel(t *testing.T) {
	a := newAdmission(AdmissionOptions{MaxInFlight: 1, MaxQueue: 1})
	rel, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire shed")
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := a.acquire(ctx)
		done <- ok
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled waiter was admitted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stuck")
	}
	st := a.stats()
	if st.Shed != 1 || st.Queued != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServerShedsWith429 exercises the gate over HTTP: with one slot held,
// a query is shed with 429 + Retry-After, the shed surfaces on /status and
// /metrics, and the server admits again once the slot frees.
func TestServerShedsWith429(t *testing.T) {
	f := newFixture(t, nil)
	srv := f.srv.Config.Handler.(*Server)
	srv.SetAdmissionLimits(1, 0)

	// Saturate the gate directly (whitebox): one slot, held by "a request".
	release, ok := srv.admit.acquire(context.Background())
	if !ok {
		t.Fatal("priming acquire shed")
	}

	_, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeCached})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("saturated query error = %v, want 429", err)
	}
	resp, herr := http.Post(f.srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"SELECT * FROM Processor"}`))
	if herr != nil {
		t.Fatal(herr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Poll is gated too.
	if _, err := f.client.Poll(context.Background(), f.url, "Processor"); err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("saturated poll error = %v, want 429", err)
	}

	st, err := f.client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil {
		t.Fatal("/status missing admission section")
	}
	if st.Admission.Shed != 3 || st.Admission.MaxInFlight != 1 {
		t.Errorf("admission stats = %+v", st.Admission)
	}
	metrics, err := http.Get(f.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := metrics.Body.Read(body)
	metrics.Body.Close()
	if !strings.Contains(string(body[:n]), "gridrm_http_shed_total 3") {
		t.Errorf("metrics missing shed count:\n%s", body[:n])
	}

	// Release the slot: queries flow again; management endpoints were never
	// gated at all.
	release()
	if _, err := f.client.Query(context.Background(), core.QueryOptions{SQL: "SELECT * FROM Processor", Mode: core.ModeCached}); err != nil {
		t.Errorf("query after release: %v", err)
	}
}

// TestClientContextVariants: a cancelled context must abort client calls.
func TestClientContextVariants(t *testing.T) {
	f := newFixture(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.client.Sources(ctx); err == nil {
		t.Error("Sources ignored a dead context")
	}
	if _, err := f.client.Status(ctx); err == nil {
		t.Error("Status ignored a dead context")
	}
	if _, err := f.client.Sites(ctx); err == nil {
		t.Error("Sites ignored a dead context")
	}
	// And the live path still works through the same code.
	if _, err := f.client.Sources(context.Background()); err != nil {
		t.Errorf("live Sources: %v", err)
	}
}
