package web

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/router"
	"gridrm/internal/trace"
)

// Server-sent-events transport for continuous queries (R-GMA's third query
// class). GET /subscribe?sql=... registers the SQL predicate at the gateway
// and streams every matching row as an SSE "metric" event whose id: field
// carries the router sequence number, so a reconnecting client resumes with
// the standard Last-Event-ID header (or an explicit ?from=). Heartbeat
// comments keep idle connections distinguishable from dead ones; "gap" and
// "evicted" events make backpressure losses visible instead of silent.

// defaultHeartbeat is the SSE comment interval when ?heartbeat= is absent.
const defaultHeartbeat = 15 * time.Second

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	sql := q.Get("sql")
	if sql == "" {
		http.Error(w, "missing sql parameter", http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	opts := core.QueryOptions{
		SQL:       sql,
		Mode:      core.ModeRealTime,
		Principal: principalFrom(r),
	}
	if srcs := q.Get("sources"); srcs != "" {
		for _, src := range strings.Split(srcs, ",") {
			if src = strings.TrimSpace(src); src != "" {
				opts.Sources = append(opts.Sources, src)
			}
		}
	}
	// Resume point: ?from= is the explicit form; the Last-Event-ID header
	// (set automatically by EventSource reconnects) wins when present. Both
	// carry the last sequence number the client saw.
	if v := q.Get("from"); v != "" {
		seq, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		opts.FromSeq = seq
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if seq, err := strconv.ParseUint(v, 10, 64); err == nil {
			opts.FromSeq = seq
		}
	}
	heartbeat := defaultHeartbeat
	if v := q.Get("heartbeat"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 100*time.Millisecond {
			http.Error(w, "bad heartbeat parameter", http.StatusBadRequest)
			return
		}
		heartbeat = d
	}

	ctx := r.Context()
	sub, err := s.gw.Subscribe(ctx, opts)
	if err != nil {
		httpError(w, err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// A replay gap is known at subscribe time: the ring no longer reaches
	// back to the requested sequence. Tell the client before any rows.
	if sub.Gapped() {
		writeSSEEvent(w, "gap", 0, gapData{From: opts.FromSeq, Oldest: s.gw.PushRouter().OldestBuffered()})
	}
	flusher.Flush()

	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	var drops int64
	for {
		select {
		case <-ctx.Done():
			// Client went away (or server is shutting the listener down);
			// sub.Close() via defer unregisters promptly.
			return
		case <-sub.Done():
			if sub.Evicted() {
				// Best effort: the subscription stalled so long the router
				// evicted it; tell the client to reconnect with backoff.
				writeSSEEvent(w, "evicted", sub.LastSeq(), gapData{Dropped: sub.Dropped()})
				flusher.Flush()
			}
			return
		case m := <-sub.C():
			// Drop-oldest overflow between reads surfaces as a gap event so
			// the client knows rows were lost (and how many), not skipped.
			if d := sub.Dropped(); d > drops {
				if err := writeSSEEvent(w, "gap", 0, gapData{Dropped: d - drops}); err != nil {
					return
				}
				drops = d
			}
			if err := writeSSEMetric(w, m); err != nil {
				return
			}
			flusher.Flush()
		case <-hb.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// gapData is the payload of gap and evicted events.
type gapData struct {
	// Dropped is how many rows were lost to drop-oldest overflow.
	Dropped int64 `json:"dropped,omitempty"`
	// From / Oldest describe a replay gap: the client asked to resume from
	// From but the ring's oldest retained sequence is Oldest.
	From   uint64 `json:"from,omitempty"`
	Oldest uint64 `json:"oldest,omitempty"`
}

func writeSSEMetric(w io.Writer, m router.Metric) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: metric\ndata: %s\n\n", m.Seq, data)
	return err
}

func writeSSEEvent(w io.Writer, event string, id uint64, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if id > 0 {
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
	} else {
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	}
	return err
}

// SubscribeConfig parameterises Client.SubscribeContext.
type SubscribeConfig struct {
	// Query is the continuous query: SQL (no aggregates), optional Sources
	// restriction, and FromSeq to resume after a reconnect. Mode and Site
	// are ignored (continuous queries are local real-time).
	Query core.QueryOptions
	// IdleTimeout tears the stream down when no bytes (rows or heartbeats)
	// arrive for this long — the liveness check that catches half-open TCP
	// connections. 0 means 45s; negative disables the watchdog.
	IdleTimeout time.Duration
	// Heartbeat asks the server for this comment interval. 0 uses the
	// server default (15s). Keep it well under IdleTimeout.
	Heartbeat time.Duration
	// Buffer is the local delivery channel's capacity (default 64).
	Buffer int
}

// ClientSubscription is the client half of a continuous query: rows arrive
// on C until the stream ends, which Done signals. After Done, Err reports
// why (nil for a clean close), Gaps how many server-side gap notices were
// seen, and LastSeq the resume point for a reconnect.
type ClientSubscription struct {
	ch     chan router.Metric
	done   chan struct{}
	cancel context.CancelFunc

	mu      sync.Mutex
	err     error
	gaps    atomic.Int64
	dropped atomic.Int64
	evicted atomic.Bool
	lastSeq atomic.Uint64
}

// C delivers matching rows. It is never closed; select on Done alongside.
func (cs *ClientSubscription) C() <-chan router.Metric { return cs.ch }

// Done is closed when the stream ends for any reason.
func (cs *ClientSubscription) Done() <-chan struct{} { return cs.done }

// Close tears the stream down and waits for the reader goroutine to exit,
// so a returned Close guarantees no goroutine leak.
func (cs *ClientSubscription) Close() {
	cs.cancel()
	<-cs.done
}

// Err reports why the stream ended; nil before Done and after clean closes.
func (cs *ClientSubscription) Err() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.err
}

// Gaps counts gap events received (replay gaps and overflow notices).
func (cs *ClientSubscription) Gaps() int64 { return cs.gaps.Load() }

// Dropped totals the rows the server reported lost to overflow.
func (cs *ClientSubscription) Dropped() int64 { return cs.dropped.Load() }

// Evicted reports whether the server evicted this subscriber for stalling.
func (cs *ClientSubscription) Evicted() bool { return cs.evicted.Load() }

// LastSeq is the highest sequence number received — pass it as FromSeq on
// reconnect to resume without loss (the server replays the ring from it).
func (cs *ClientSubscription) LastSeq() uint64 { return cs.lastSeq.Load() }

func (cs *ClientSubscription) setErr(err error) {
	cs.mu.Lock()
	if cs.err == nil {
		cs.err = err
	}
	cs.mu.Unlock()
}

// SubscribeContext opens a continuous query against the gateway's SSE
// endpoint. Unlike the other client methods it is long-lived: the default
// 10s-timeout HTTP client is deliberately bypassed (a caller-supplied
// HTTPClient is honoured as-is, so leave its Timeout zero for streaming).
// The stream ends when ctx is cancelled, Close is called, the idle watchdog
// fires, or the server closes it (shutdown or eviction).
func (c *Client) SubscribeContext(ctx context.Context, cfg SubscribeConfig) (*ClientSubscription, error) {
	q := url.Values{}
	q.Set("sql", cfg.Query.SQL)
	if len(cfg.Query.Sources) > 0 {
		q.Set("sources", strings.Join(cfg.Query.Sources, ","))
	}
	if cfg.Query.FromSeq > 0 {
		q.Set("from", strconv.FormatUint(cfg.Query.FromSeq, 10))
	}
	if cfg.Heartbeat > 0 {
		q.Set("heartbeat", cfg.Heartbeat.String())
	}
	idle := cfg.IdleTimeout
	if idle == 0 {
		idle = 45 * time.Second
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 64
	}

	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/subscribe?"+q.Encode(), nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.Principal.Name != "" {
		req.Header.Set(HeaderUser, c.Principal.Name)
	}
	if len(c.Principal.Roles) > 0 {
		req.Header.Set(HeaderRoles, strings.Join(c.Principal.Roles, ","))
	}
	if c.Principal.Site != "" {
		req.Header.Set(HeaderSite, c.Principal.Site)
	}
	if car, ok := trace.CarrierFromContext(ctx); ok {
		req.Header.Set(trace.HeaderName, car.Header())
	}
	// Streaming must not inherit the default client's 10s overall timeout.
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	resp, err := hc.Do(req)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("web: %w", err)
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("web: GET /subscribe: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("web: GET /subscribe: unexpected content type %q", ct)
	}

	cs := &ClientSubscription{
		ch:     make(chan router.Metric, buffer),
		done:   make(chan struct{}),
		cancel: cancel,
	}
	go cs.read(ctx, resp.Body, idle)
	return cs, nil
}

// read parses the SSE stream until it ends. The idle watchdog cancels the
// request context when no bytes arrive within idle, which unblocks the
// pending Read — heartbeats reset it, so only a genuinely silent (dead or
// wedged) connection trips it.
func (cs *ClientSubscription) read(ctx context.Context, body io.ReadCloser, idle time.Duration) {
	defer func() {
		body.Close()
		cs.cancel()
		close(cs.done)
	}()
	var idleTimer *time.Timer
	idleFired := make(chan struct{})
	if idle > 0 {
		var once sync.Once
		idleTimer = time.AfterFunc(idle, func() {
			once.Do(func() { close(idleFired) })
			cs.cancel()
		})
		defer idleTimer.Stop()
	}

	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	var data []byte
	for sc.Scan() {
		if idleTimer != nil {
			idleTimer.Reset(idle)
		}
		line := sc.Text()
		switch {
		case line == "":
			if len(data) > 0 && !cs.dispatch(ctx, event, data) {
				return
			}
			event, data = "", nil
		case strings.HasPrefix(line, ":"):
			// Heartbeat comment: liveness only (already reset the watchdog).
		case strings.HasPrefix(line, "id:"):
			if seq, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64); err == nil && seq > cs.lastSeq.Load() {
				cs.lastSeq.Store(seq)
			}
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[5:])...)
		}
	}
	err := sc.Err()
	select {
	case <-idleFired:
		cs.setErr(fmt.Errorf("web: subscribe stream idle for %s", idle))
	default:
		switch {
		case ctx.Err() != nil:
			// Deliberate Close / parent cancellation: a clean end.
		case err != nil:
			cs.setErr(fmt.Errorf("web: subscribe stream: %w", err))
		}
	}
}

// dispatch routes one parsed SSE frame; false ends the reader.
func (cs *ClientSubscription) dispatch(ctx context.Context, event string, data []byte) bool {
	switch event {
	case "metric", "":
		var m router.Metric
		if err := json.Unmarshal(data, &m); err != nil {
			cs.setErr(fmt.Errorf("web: bad metric frame: %w", err))
			return false
		}
		select {
		case cs.ch <- m:
		case <-ctx.Done():
			return false
		}
	case "gap":
		var g gapData
		_ = json.Unmarshal(data, &g)
		cs.gaps.Add(1)
		cs.dropped.Add(g.Dropped)
	case "evicted":
		var g gapData
		_ = json.Unmarshal(data, &g)
		cs.dropped.Add(g.Dropped)
		cs.evicted.Store(true)
		cs.setErr(fmt.Errorf("web: subscriber evicted by gateway (stalled too long)"))
		return false
	}
	return true
}
