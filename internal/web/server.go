package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/event"
	"gridrm/internal/health"
	"gridrm/internal/metrics"
	"gridrm/internal/qcache"
	"gridrm/internal/router"
	"gridrm/internal/schema"
	"gridrm/internal/security"
	"gridrm/internal/trace"
)

// DriverFactory constructs a driver and its GLUE schema; the server's
// driver repository maps activation names to factories (the JAR-upload
// substitution, see the package comment).
type DriverFactory func() (driver.Driver, *schema.DriverSchema)

// Server is the gateway servlet.
type Server struct {
	gw *core.Gateway
	// repository of activatable drivers.
	repo map[string]DriverFactory
	// optional GMA directory handler mounted at /gma/.
	dir http.Handler
	// sites optionally lists remote sites for /sites (wired to the
	// gateway's GlobalRouter by the deployment).
	sites func() []string
	// admit is the optional load-shedding gate in front of /query and
	// /poll (see SetAdmissionLimits).
	admit *admission
	mux   *http.ServeMux
}

// SetSiteLister wires /sites to the Global layer's view of remote sites.
func (s *Server) SetSiteLister(list func() []string) { s.sites = list }

// NewServer creates the servlet for a gateway. repo may be nil; dir, when
// non-nil, is mounted at /gma/ so this gateway also hosts the directory.
func NewServer(gw *core.Gateway, repo map[string]DriverFactory, dir http.Handler) *Server {
	s := &Server{gw: gw, repo: repo, dir: dir, mux: http.NewServeMux()}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Gateway returns the wrapped gateway.
func (s *Server) Gateway() *core.Gateway { return s.gw }

// Principal headers.
const (
	HeaderUser  = "X-GridRM-User"
	HeaderRoles = "X-GridRM-Roles"
	HeaderSite  = "X-GridRM-Site"
)

func principalFrom(r *http.Request) security.Principal {
	p := security.Principal{
		Name: r.Header.Get(HeaderUser),
		Site: r.Header.Get(HeaderSite),
	}
	if p.Name == "" {
		p.Name = "anonymous"
	}
	if roles := r.Header.Get(HeaderRoles); roles != "" {
		for _, role := range strings.Split(roles, ",") {
			role = strings.TrimSpace(role)
			if role != "" {
				p.Roles = append(p.Roles, role)
			}
		}
	}
	return p
}

func (s *Server) routes() {
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/poll", s.handlePoll)
	s.mux.HandleFunc("/sources", s.handleSources)
	s.mux.HandleFunc("/drivers", s.handleDrivers)
	s.mux.HandleFunc("/drivers/preferences", s.handlePreferences)
	s.mux.HandleFunc("/tree", s.handleTree)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("/watches", s.handleWatches)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/sites", s.handleSites)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/traces/", s.handleTrace)
	if s.dir != nil {
		s.mux.Handle("/gma/", s.dir)
	}
}

// EnablePprof mounts net/http/pprof's handlers at /debug/pprof/ on the
// servlet mux. Off by default; gated behind the gateway's -pprof flag
// because profiles expose internals and profiling costs CPU.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// traceContext extracts a propagated trace carrier from the request's
// X-GridRM-Trace header into the context, so the gateway continues the
// calling gateway's trace instead of starting its own.
func traceContext(r *http.Request) context.Context {
	ctx := r.Context()
	if car, ok := trace.ParseCarrier(r.Header.Get(trace.HeaderName)); ok {
		ctx = trace.ContextWithRemote(ctx, car)
	}
	return ctx
}

func httpError(w http.ResponseWriter, err error) {
	var pe *core.PermissionError
	switch {
	case errors.As(err, &pe):
		http.Error(w, err.Error(), http.StatusForbidden)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	var wr WireRequest
	if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := wr.ToCoreRequest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.Principal = principalFrom(r)
	// The client's connection context bounds the query: a caller that
	// gives up (or a parent gateway whose deadline expires) cancels the
	// fan-out here too. A propagated trace context continues here.
	resp, err := s.gw.QueryContext(traceContext(r), req)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, EncodeResponse(resp))
}

// pollRequest is the body of POST /poll (Fig 9's explicit real-time poll).
type pollRequest struct {
	URL   string `json:"url"`
	Group string `json:"group"`
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	var pr pollRequest
	if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.gw.PollContext(traceContext(r), principalFrom(r), pr.URL, pr.Group)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, EncodeResponse(resp))
}

func (s *Server) manageAllowed(r *http.Request, op security.Operation) bool {
	return s.gw.CoarsePolicy().Check(principalFrom(r), op) == security.Allow
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, s.gw.Sources())
	case http.MethodPost:
		if !s.manageAllowed(r, security.OpManageSources) {
			http.Error(w, "permission denied", http.StatusForbidden)
			return
		}
		var cfg core.SourceConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.gw.AddSource(cfg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if !s.manageAllowed(r, security.OpManageSources) {
			http.Error(w, "permission denied", http.StatusForbidden)
			return
		}
		if err := s.gw.RemoveSource(r.URL.Query().Get("url")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// driverActivation is the body of POST /drivers: activate a driver from
// the server's repository (Fig 8's registration panel).
type driverActivation struct {
	Name string `json:"name"`
}

// DriverListing is one row of GET /drivers.
type DriverListing struct {
	core.DriverInfo
	// Active reports whether the driver is currently registered.
	Active bool `json:"active"`
}

func (s *Server) handleDrivers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		active := s.gw.Drivers()
		listed := make(map[string]bool, len(active))
		var out []DriverListing
		for _, d := range active {
			out = append(out, DriverListing{DriverInfo: d, Active: true})
			listed[d.Name] = true
		}
		for name := range s.repo {
			if !listed[name] {
				out = append(out, DriverListing{DriverInfo: core.DriverInfo{Name: name}})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		writeJSON(w, out)
	case http.MethodPost:
		if !s.manageAllowed(r, security.OpManageDrivers) {
			http.Error(w, "permission denied", http.StatusForbidden)
			return
		}
		var act driverActivation
		if err := json.NewDecoder(r.Body).Decode(&act); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		factory, ok := s.repo[act.Name]
		if !ok {
			http.Error(w, fmt.Sprintf("driver %q not in repository", act.Name), http.StatusNotFound)
			return
		}
		d, ds := factory()
		if err := s.gw.RegisterDriver(d, ds); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if !s.manageAllowed(r, security.OpManageDrivers) {
			http.Error(w, "permission denied", http.StatusForbidden)
			return
		}
		if err := s.gw.DeregisterDriver(r.URL.Query().Get("name")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// preferenceUpdate is the body of POST /drivers/preferences.
type preferenceUpdate struct {
	URL     string   `json:"url"`
	Drivers []string `json:"drivers"`
}

func (s *Server) handlePreferences(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.manageAllowed(r, security.OpManageDrivers) {
		http.Error(w, "permission denied", http.StatusForbidden)
		return
	}
	var pu preferenceUpdate
	if err := json.NewDecoder(r.Body).Decode(&pu); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, name := range pu.Drivers {
		if _, ok := s.gw.DriverManager().Driver(name); !ok {
			http.Error(w, fmt.Sprintf("driver %q not registered", name), http.StatusNotFound)
			return
		}
	}
	s.gw.DriverManager().SetPreferences(pu.URL, pu.Drivers)
	w.WriteHeader(http.StatusNoContent)
}

// TreeNode is one data source in the cached tree view (Fig 9): its health
// and the cached query results under it.
type TreeNode struct {
	Source core.SourceInfo `json:"source"`
	Cached []qcache.Entry  `json:"cached,omitempty"`
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	entries := s.gw.Cache().Entries()
	bySource := make(map[string][]qcache.Entry)
	for _, e := range entries {
		bySource[e.Source] = append(bySource[e.Source], e)
	}
	var out []TreeNode
	for _, src := range s.gw.Sources() {
		out = append(out, TreeNode{Source: src, Cached: bySource[src.URL]})
	}
	writeJSON(w, out)
}

// watchRequest is the body of POST /watches: publish a GLUE metric as
// events on every harvest (the Fig 3 notification path).
type watchRequest struct {
	Group string `json:"group"`
	Field string `json:"field"`
}

func (s *Server) handleWatches(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, s.gw.WatchedMetrics())
	case http.MethodPost:
		if !s.manageAllowed(r, security.OpManageSources) {
			http.Error(w, "permission denied", http.StatusForbidden)
			return
		}
		var wr watchRequest
		if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.gw.WatchMetric(wr.Group, wr.Field); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.gw.CoarsePolicy().Check(principalFrom(r), security.OpEvents) != security.Allow {
		http.Error(w, "permission denied", http.StatusForbidden)
		return
	}
	q := r.URL.Query()
	filter := event.Filter{
		Source:   q.Get("source"),
		Host:     q.Get("host"),
		Name:     q.Get("name"),
		Severity: q.Get("severity"),
	}
	var since time.Time
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339Nano, v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		since = t
	}
	evs := s.gw.Events().History(filter, since)
	writeJSON(w, evs)
}

// StatusReport is the body of GET /status.
type StatusReport struct {
	Site    string         `json:"site"`
	Gateway core.Stats     `json:"gateway"`
	Drivers driver.Stats   `json:"drivers"`
	Pool    poolStatsJSON  `json:"pool"`
	Cache   qcache.Stats   `json:"cache"`
	Events  event.Stats    `json:"events"`
	Coarse  security.Stats `json:"coarse"`
	Fine    security.Stats `json:"fine"`
	// Stages summarises the per-stage query latency histogram (count and
	// total seconds per stage); the full distribution is on GET /metrics.
	Stages []metrics.HistogramSnapshot `json:"stages,omitempty"`
	// Health is the prober's per-source state (empty until sources have
	// been probed).
	Health []health.SourceHealth `json:"health,omitempty"`
	// Probes summarises prober activity.
	Probes health.Stats `json:"probes"`
	// Admission reports the load-shedding gate, when one is installed.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Traces summarises tracer activity (traces stored, slow queries,
	// dropped spans).
	Traces trace.Stats `json:"traces"`
	// Slow is the slow-query log, newest first.
	Slow []trace.SlowQuery `json:"slow,omitempty"`
	// History reports history retention and, when a history dir is
	// configured, WAL/checkpoint durability state.
	History core.HistoryStatus `json:"history"`
	// Push reports the continuous-query router: rows published, enqueued,
	// dropped, evictions, and sink delivery counters.
	Push router.Stats `json:"push"`
	// Subscribers lists live continuous-query subscribers with per-consumer
	// drop accounting.
	Subscribers []router.SubscriberStat `json:"subscribers,omitempty"`
	// Sinks lists configured push sinks with delivery/retry/breaker state.
	Sinks []router.SinkStat `json:"sinks,omitempty"`
	// Listeners reports per-listener event delivery and drop counters (only
	// populated when the event manager runs with async listener queues).
	Listeners []event.ListenerStat `json:"event_listeners,omitempty"`
}

type poolStatsJSON struct {
	Hits, Misses, Opens, Closes, PingFailures, Evictions int64
	Idle                                                 int
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ps := s.gw.Pool().Stats()
	var adm *AdmissionStats
	if s.admit != nil {
		st := s.admit.stats()
		adm = &st
	}
	writeJSON(w, StatusReport{
		Site:    s.gw.Name(),
		Gateway: s.gw.Stats(),
		Drivers: s.gw.DriverManager().Stats(),
		Pool: poolStatsJSON{Hits: ps.Hits, Misses: ps.Misses, Opens: ps.Opens,
			Closes: ps.Closes, PingFailures: ps.PingFailures, Evictions: ps.Evictions,
			Idle: s.gw.Pool().IdleCount()},
		Cache:       s.gw.Cache().Stats(),
		Events:      s.gw.Events().Stats(),
		Coarse:      s.gw.CoarsePolicy().Stats(),
		Fine:        s.gw.FinePolicy().Stats(),
		Stages:      s.gw.QueryStageLatencies(),
		Health:      s.gw.Prober().Snapshot(),
		Probes:      s.gw.Prober().Stats(),
		Admission:   adm,
		Traces:      s.gw.Tracer().Stats(),
		Slow:        s.gw.Tracer().SlowQueries(),
		History:     s.gw.HistoryStatus(),
		Push:        s.gw.PushRouter().Stats(),
		Subscribers: s.gw.PushRouter().Subscribers(),
		Sinks:       s.gw.PushRouter().SinkStats(),
		Listeners:   s.gw.Events().ListenerStats(),
	})
}

// handleTraces serves GET /traces: stored trace summaries, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	out := s.gw.Tracer().Traces()
	if out == nil {
		out = []trace.Summary{}
	}
	writeJSON(w, out)
}

// handleTrace serves GET /traces/<id>: one stored trace as a span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	td, ok := s.gw.Tracer().Trace(id)
	if !ok {
		http.Error(w, fmt.Sprintf("trace %q not found", id), http.StatusNotFound)
		return
	}
	writeJSON(w, td)
}

// handleMetrics serves the gateway's metrics registry in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.gw.Metrics().WritePrometheus(w)
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sites := []string{s.gw.Name()}
	if s.sites != nil {
		sites = append(sites, s.sites()...)
	}
	writeJSON(w, sites)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
