package web

import (
	"net/http"
	"strings"
	"testing"
)

// raw performs a raw HTTP request against the fixture server.
func raw(t *testing.T, f *fixture, method, path, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, f.srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderUser, "admin")
	req.Header.Set(HeaderRoles, "operator")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func TestMalformedBodiesRejected(t *testing.T) {
	f := newFixture(t, nil)
	cases := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/query", "{not json"},
		{http.MethodPost, "/query", `{"sql":"SELECT * FROM Processor","mode":"warp"}`},
		{http.MethodPost, "/query", `{"sql":"SELECT * FROM Processor","since":"notatime"}`},
		{http.MethodPost, "/poll", "junk"},
		{http.MethodPost, "/sources", "junk"},
		{http.MethodPost, "/drivers", "junk"},
		{http.MethodPost, "/drivers/preferences", "junk"},
	}
	for _, c := range cases {
		resp := raw(t, f, c.method, c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s %q -> %d, want 400", c.method, c.path, c.body, resp.StatusCode)
		}
	}
}

func TestWrongMethodsRejected(t *testing.T) {
	f := newFixture(t, nil)
	cases := []struct {
		method, path string
	}{
		{http.MethodGet, "/query"},
		{http.MethodGet, "/poll"},
		{http.MethodPut, "/sources"},
		{http.MethodPut, "/drivers"},
		{http.MethodGet, "/drivers/preferences"},
		{http.MethodPost, "/tree"},
		{http.MethodPost, "/events"},
		{http.MethodPost, "/status"},
		{http.MethodPost, "/sites"},
	}
	for _, c := range cases {
		resp := raw(t, f, c.method, c.path, "")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s -> %d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestEventsBadSince(t *testing.T) {
	f := newFixture(t, nil)
	resp := raw(t, f, http.MethodGet, "/events?since=yesterday", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since -> %d", resp.StatusCode)
	}
}

func TestAnonymousPrincipalDefaults(t *testing.T) {
	f := newFixture(t, nil)
	req, _ := http.NewRequest(http.MethodGet, f.srv.URL+"/status", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("anonymous status -> %d (open policy should allow)", resp.StatusCode)
	}
}

func TestUnknownPathIs404(t *testing.T) {
	f := newFixture(t, nil)
	resp := raw(t, f, http.MethodGet, "/nope", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path -> %d", resp.StatusCode)
	}
}
