package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/breaker"
)

// Sink receives routed metrics in batches. Deliver is called from the
// sink's own goroutine — never from the publish path — so a slow or dead
// sink only ever stalls itself.
type Sink interface {
	// Name identifies the sink (unique per router).
	Name() string
	// Deliver writes one batch; ctx is cancelled at router shutdown.
	Deliver(ctx context.Context, batch []Metric) error
	// Close releases the sink's resources after its last Deliver.
	Close() error
}

// SinkOptions configures one sink's queue and delivery policy.
type SinkOptions struct {
	// Queue bounds the sink's mailbox (default Options.QueueSize).
	Queue int
	// BatchSize caps metrics per Deliver call (default 64).
	BatchSize int
	// Retries is how many additional Deliver attempts a failed batch
	// gets (default 2).
	Retries int
	// Backoff is the wait before the first retry, doubled per attempt
	// and capped at 10x (default 50ms).
	Backoff time.Duration
	// Breaker configures the per-sink circuit breaker; while open,
	// batches are dropped (and counted) instead of attempted. The zero
	// value uses the breaker package defaults.
	Breaker breaker.Options
	// Match filters metrics bound for this sink; nil passes everything.
	Match func(Metric) (Metric, bool)
}

func (o SinkOptions) fill(r *Router) SinkOptions {
	if o.Queue <= 0 {
		o.Queue = r.opts.QueueSize
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// SinkStat is one sink's management view.
type SinkStat struct {
	Name         string `json:"name"`
	Delivered    int64  `json:"delivered"`
	Dropped      int64  `json:"dropped"`
	Retries      int64  `json:"retries"`
	Errors       int64  `json:"errors"`
	BreakerOpens int64  `json:"breaker_opens"`
	BreakerState string `json:"breaker_state"`
	Pending      int    `json:"pending"`
}

// sinkRunner drains one sink's bounded subscription on its own goroutine,
// applying retry-with-backoff and the per-sink breaker.
type sinkRunner struct {
	r    *Router
	sink Sink
	sub  *Subscription
	opts SinkOptions
	br   *breaker.Breaker

	ctx    context.Context // cancelled at shutdown to unblock Deliver
	cancel context.CancelFunc
	done   chan struct{} // closed when the runner goroutine exits

	delivered    atomic.Int64
	dropped      atomic.Int64
	retries      atomic.Int64
	errors       atomic.Int64
	breakerOpens atomic.Int64
	busy         atomic.Int64 // 1 while a batch is being delivered
}

// AddSink registers a sink behind its own bounded queue and delivery
// goroutine. The router owns the sink from here: Close(ctx) flushes and
// closes it.
func (r *Router) AddSink(sink Sink, opts SinkOptions) error {
	if sink == nil || sink.Name() == "" {
		return fmt.Errorf("router: sink must be non-nil and named")
	}
	o := opts.fill(r)
	match := o.Match
	if match == nil {
		match = func(m Metric) (Metric, bool) { return m, true }
	}
	s := &Subscription{
		r:     r,
		name:  "sink:" + sink.Name(),
		match: match,
		ch:    make(chan Metric, o.Queue),
		done:  make(chan struct{}),
		born:  r.opts.Clock(),
		sink:  true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	sr := &sinkRunner{
		r: r, sink: sink, sub: s, opts: o,
		br:  breaker.New(o.Breaker),
		ctx: ctx, cancel: cancel,
		done: make(chan struct{}),
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		cancel()
		return fmt.Errorf("router: closed")
	}
	if _, dup := r.sinks[sink.Name()]; dup {
		r.mu.Unlock()
		cancel()
		return fmt.Errorf("router: sink %q already registered", sink.Name())
	}
	r.nextID++
	s.id = r.nextID
	r.subs[s.id] = s
	r.sinks[sink.Name()] = sr
	r.mu.Unlock()
	r.active.Add(1)
	go sr.run()
	return nil
}

// run is the sink's delivery loop: dequeue a batch, deliver with breaker
// and retries, repeat. On Done it drains whatever is still queued, then
// closes the sink.
func (sr *sinkRunner) run() {
	defer close(sr.done)
	defer func() { _ = sr.sink.Close() }()
	for {
		select {
		case m := <-sr.sub.ch:
			sr.deliverBatch(sr.gather(m))
		case <-sr.sub.done:
			// Final drain: ship what is already queued, without blocking
			// shutdown on a dead sink — ctx is cancelled when the drain
			// deadline lapses.
			for {
				select {
				case m := <-sr.sub.ch:
					sr.deliverBatch(sr.gather(m))
				default:
					return
				}
				if sr.ctx.Err() != nil {
					return
				}
			}
		}
	}
}

// gather drains up to BatchSize-1 more queued metrics behind first.
func (sr *sinkRunner) gather(first Metric) []Metric {
	batch := append(make([]Metric, 0, sr.opts.BatchSize), first)
	for len(batch) < sr.opts.BatchSize {
		select {
		case m := <-sr.sub.ch:
			batch = append(batch, m)
		default:
			return batch
		}
	}
	return batch
}

// deliverBatch applies breaker gating, then retry-with-backoff. A batch
// that exhausts its retries (or finds the breaker open) is dropped and
// counted — the queue must keep moving.
func (sr *sinkRunner) deliverBatch(batch []Metric) {
	sr.busy.Store(1)
	defer sr.busy.Store(0)
	now := sr.r.opts.Clock()
	if !sr.br.Allow(now) {
		sr.dropped.Add(int64(len(batch)))
		sr.r.sinkDropped.Add(int64(len(batch)))
		return
	}
	backoff := sr.opts.Backoff
	for attempt := 0; ; attempt++ {
		err := sr.sink.Deliver(sr.ctx, batch)
		if err == nil {
			sr.br.OnSuccess()
			sr.delivered.Add(int64(len(batch)))
			sr.r.sinkDelivered.Add(int64(len(batch)))
			return
		}
		if attempt >= sr.opts.Retries || sr.ctx.Err() != nil {
			if sr.br.OnFailure(sr.r.opts.Clock()) {
				sr.breakerOpens.Add(1)
				sr.r.sinkBreakerOpens.Add(1)
			}
			sr.errors.Add(1)
			sr.r.sinkErrors.Add(1)
			sr.dropped.Add(int64(len(batch)))
			sr.r.sinkDropped.Add(int64(len(batch)))
			return
		}
		sr.retries.Add(1)
		sr.r.sinkRetries.Add(1)
		select {
		case <-time.After(backoff):
		case <-sr.ctx.Done():
		}
		if backoff < 10*sr.opts.Backoff {
			backoff *= 2
		}
	}
}

// idle reports whether the sink has nothing queued and nothing in flight.
func (sr *sinkRunner) idle() bool { return len(sr.sub.ch) == 0 && sr.busy.Load() == 0 }

// SinkStats lists current sinks for the management view, sorted by name.
func (r *Router) SinkStats() []SinkStat {
	now := r.opts.Clock()
	r.mu.RLock()
	out := make([]SinkStat, 0, len(r.sinks))
	for name, sr := range r.sinks {
		out = append(out, SinkStat{
			Name:         name,
			Delivered:    sr.delivered.Load(),
			Dropped:      sr.dropped.Load() + sr.sub.dropped.Load(),
			Retries:      sr.retries.Load(),
			Errors:       sr.errors.Load(),
			BreakerOpens: sr.breakerOpens.Load(),
			BreakerState: string(sr.br.State(now)),
			Pending:      len(sr.sub.ch),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close shuts the router down in order: stop intake, flush subscriber and
// sink queues until ctx's deadline, then close sinks and end every
// subscription. Publish becomes a no-op immediately; a dead sink or stuck
// subscriber cannot extend the shutdown past ctx.
func (r *Router) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	subs := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	sinks := make([]*sinkRunner, 0, len(r.sinks))
	for _, sr := range r.sinks {
		sinks = append(sinks, sr)
	}
	r.mu.Unlock()

	// Flush phase: give sinks until the deadline to ship queued batches.
	var err error
flush:
	for _, sr := range sinks {
		for !sr.idle() {
			if ctx.Err() != nil {
				err = ctx.Err()
				break flush
			}
			select {
			case <-ctx.Done():
				err = ctx.Err()
				break flush
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	// Close phase: end every subscription (subscribers see Done, sink
	// runners do a final non-blocking drain, then close their sinks).
	for _, s := range subs {
		s.close()
	}
	var wait sync.WaitGroup
	for _, sr := range sinks {
		wait.Add(1)
		go func(sr *sinkRunner) {
			defer wait.Done()
			select {
			case <-sr.done:
			case <-ctx.Done():
				// A Deliver wedged past the deadline: cancel it and let
				// the runner finish in the background.
				sr.cancel()
			}
		}(sr)
	}
	finished := make(chan struct{})
	go func() { wait.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	for _, sr := range sinks {
		sr.cancel()
	}
	r.active.Store(0)
	return err
}

// HTTPSink POSTs JSON batches to a collector endpoint. The body is a JSON
// array of Metric objects.
type HTTPSink struct {
	// URL is the collector endpoint.
	URL string
	// Client is optional; nil uses a 5s-timeout client.
	Client *http.Client
}

// Name identifies the sink as its URL.
func (h *HTTPSink) Name() string { return "http:" + h.URL }

// Deliver POSTs the batch.
func (h *HTTPSink) Deliver(ctx context.Context, batch []Metric) error {
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("router: sink POST %s: %s", h.URL, resp.Status)
	}
	return nil
}

// Close is a no-op; the HTTP client owns no resources here.
func (h *HTTPSink) Close() error { return nil }

// FileSink appends metrics to a file as JSON lines.
type FileSink struct {
	path string
	mu   sync.Mutex
	f    *os.File
}

// NewFileSink opens (creating or appending) the JSONL file.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("router: file sink: %w", err)
	}
	return &FileSink{path: path, f: f}, nil
}

// Name identifies the sink as its path.
func (fs *FileSink) Name() string { return "file:" + fs.path }

// Deliver appends one JSON line per metric.
func (fs *FileSink) Deliver(_ context.Context, batch []Metric) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, m := range batch {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return fmt.Errorf("router: file sink %s closed", fs.path)
	}
	_, err := fs.f.Write(buf.Bytes())
	return err
}

// Close closes the file.
func (fs *FileSink) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	err := fs.f.Close()
	fs.f = nil
	return err
}
