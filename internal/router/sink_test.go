package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/breaker"
)

// memSink is a controllable in-test sink.
type memSink struct {
	name string
	mu   sync.Mutex
	got  []Metric
	fail atomic.Bool
	errs atomic.Int64
	wake chan struct{} // signalled on every Deliver
}

func newMemSink(name string) *memSink {
	return &memSink{name: name, wake: make(chan struct{}, 64)}
}

func (m *memSink) Name() string { return m.name }

func (m *memSink) Deliver(_ context.Context, batch []Metric) error {
	defer func() {
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}()
	if m.fail.Load() {
		m.errs.Add(1)
		return errors.New("sink down")
	}
	m.mu.Lock()
	m.got = append(m.got, batch...)
	m.mu.Unlock()
	return nil
}

func (m *memSink) Close() error { return nil }

func (m *memSink) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSinkDelivery(t *testing.T) {
	r := New(Options{})
	sink := newMemSink("mem")
	if err := r.AddSink(sink, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(r, 50, "cpu")
	waitFor(t, "sink delivery", func() bool { return sink.count() == 50 })
	st := r.Stats()
	if st.SinkDelivered != 50 || st.Sinks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Subscribers != 0 {
		t.Fatalf("sink leaked into subscriber count: %+v", st)
	}
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSinkRetryThenSuccess(t *testing.T) {
	r := New(Options{})
	calls := atomic.Int64{}
	sink := newMemSink("flaky")
	flaky := &funcSink{name: "flaky", fn: func(ctx context.Context, batch []Metric) error {
		if calls.Add(1) == 1 {
			return errors.New("transient")
		}
		return sink.Deliver(ctx, batch)
	}}
	if err := r.AddSink(flaky, SinkOptions{Backoff: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	publishN(r, 1, "cpu")
	waitFor(t, "retried delivery", func() bool { return sink.count() == 1 })
	st := r.Stats()
	if st.SinkRetries < 1 {
		t.Fatalf("retries = %d, want >= 1", st.SinkRetries)
	}
	if st.SinkDropped != 0 {
		t.Fatalf("dropped = %d, want 0", st.SinkDropped)
	}
	_ = r.Close(context.Background())
}

type funcSink struct {
	name string
	fn   func(context.Context, []Metric) error
}

func (f *funcSink) Name() string                                      { return f.name }
func (f *funcSink) Deliver(ctx context.Context, batch []Metric) error { return f.fn(ctx, batch) }
func (f *funcSink) Close() error                                      { return nil }

// TestSinkBreakerRecovery proves the full breaker cycle: repeated failures
// open the breaker (batches drop instead of hammering the sink), the
// cooldown elapses, a half-open probe succeeds, and delivery resumes.
func TestSinkBreakerRecovery(t *testing.T) {
	clock := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time { clock.mu.Lock(); defer clock.mu.Unlock(); return clock.t }
	advance := func(d time.Duration) { clock.mu.Lock(); clock.t = clock.t.Add(d); clock.mu.Unlock() }

	r := New(Options{Clock: now})
	sink := newMemSink("recovering")
	sink.fail.Store(true)
	err := r.AddSink(sink, SinkOptions{
		Retries: 1,
		Backoff: time.Millisecond,
		Breaker: breaker.Options{Threshold: 2, Cooldown: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two failed batches (each retried once) open the breaker.
	publishN(r, 1, "cpu")
	waitFor(t, "first failure", func() bool { return r.Stats().SinkErrors >= 1 })
	publishN(r, 1, "cpu")
	waitFor(t, "breaker open", func() bool { return r.Stats().SinkBreakerOpens == 1 })

	// While open, batches are dropped without touching the sink.
	errsBefore := sink.errs.Load()
	publishN(r, 3, "cpu")
	waitFor(t, "open-state drops", func() bool { return r.Stats().SinkDropped >= 5 })
	if sink.errs.Load() != errsBefore {
		t.Fatal("open breaker still called the sink")
	}

	// Cooldown elapses, sink heals: half-open probe succeeds, flow resumes.
	sink.fail.Store(false)
	advance(2 * time.Minute)
	publishN(r, 2, "cpu")
	waitFor(t, "recovery", func() bool { return sink.count() == 2 })
	if st := r.Stats(); st.SinkDelivered != 2 {
		t.Fatalf("delivered = %d, want 2", st.SinkDelivered)
	}
	_ = r.Close(context.Background())
}

// TestDeadSinkNeverBlocksPublish: a sink that always fails (down
// collector) must not slow the publish path or grow memory without bound.
func TestDeadSinkNeverBlocksPublish(t *testing.T) {
	r := New(Options{QueueSize: 8})
	sink := newMemSink("dead")
	sink.fail.Store(true)
	if err := r.AddSink(sink, SinkOptions{Retries: 1, Backoff: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		publishN(r, 500, "cpu")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked behind a dead sink")
	}
	// Shutdown with a deadline completes even though the sink is down.
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = r.Close(ctx)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with a dead sink", elapsed)
	}
	st := r.Stats()
	if st.SinkDropped == 0 {
		t.Fatal("dead-sink drops were not accounted")
	}
}

// TestCloseFlushesSinks: rows published before Close are delivered before
// the sink closes when the sink is healthy.
func TestCloseFlushesSinks(t *testing.T) {
	r := New(Options{})
	sink := newMemSink("flush")
	if err := r.AddSink(sink, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(r, 100, "cpu")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != 100 {
		t.Fatalf("flushed %d rows, want 100", got)
	}
}

// TestCloseWithPreCancelledContext mirrors Gateway.Close(): the drain
// deadline is already gone, so Close must return promptly anyway.
func TestCloseWithPreCancelledContext(t *testing.T) {
	r := New(Options{})
	block := make(chan struct{})
	var once sync.Once
	slow := &funcSink{name: "wedged", fn: func(ctx context.Context, _ []Metric) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return ctx.Err()
	}}
	defer once.Do(func() { close(block) })
	if err := r.AddSink(slow, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(r, 10, "cpu")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() { _ = r.Close(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung under a pre-cancelled context")
	}
}

func TestDuplicateSinkRejected(t *testing.T) {
	r := New(Options{})
	if err := r.AddSink(newMemSink("a"), SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSink(newMemSink("a"), SinkOptions{}); err == nil {
		t.Fatal("duplicate sink name accepted")
	}
	_ = r.Close(context.Background())
}

func TestHTTPSink(t *testing.T) {
	var mu sync.Mutex
	var received []Metric
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var batch []Metric
		if err := json.NewDecoder(req.Body).Decode(&batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		received = append(received, batch...)
		mu.Unlock()
	}))
	defer srv.Close()

	r := New(Options{})
	if err := r.AddSink(&HTTPSink{URL: srv.URL}, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(r, 5, "cpu")
	waitFor(t, "http sink", func() bool { mu.Lock(); defer mu.Unlock(); return len(received) == 5 })
	mu.Lock()
	if received[0].Seq != 1 || received[0].Group != "cpu" {
		t.Fatalf("bad first metric: %+v", received[0])
	}
	mu.Unlock()
	_ = r.Close(context.Background())
}

func TestHTTPSinkErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	s := &HTTPSink{URL: srv.URL}
	if err := s.Deliver(context.Background(), []Metric{{Seq: 1}}); err == nil {
		t.Fatal("5xx response should be an error")
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	fs, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{})
	if err := r.AddSink(fs, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	publishN(r, 3, "cpu")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("file sink wrote %d lines, want 3", lines)
	}
	var m Metric
	if err := json.Unmarshal(data[:bytesIndex(data, '\n')], &m); err != nil {
		t.Fatalf("first line is not valid JSON: %v", err)
	}
	if m.Seq != 1 {
		t.Fatalf("first line seq = %d", m.Seq)
	}
}

func bytesIndex(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return len(b)
}
