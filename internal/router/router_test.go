package router

import (
	"context"
	"sync"
	"testing"
	"time"
)

func publishN(r *Router, n int, group string) {
	cols := []string{"host", "load"}
	for i := 0; i < n; i++ {
		r.Publish("http://src", group, cols, [][]any{{"h1", float64(i)}}, time.Unix(int64(i), 0))
	}
}

func TestPublishIdleIsFree(t *testing.T) {
	r := New(Options{})
	if !r.Idle() {
		t.Fatal("fresh router should be idle")
	}
	if n := r.Publish("s", "g", []string{"a"}, [][]any{{1}}, time.Now()); n != 0 {
		t.Fatalf("publish with no consumers accepted %d rows", n)
	}
	if got := r.Stats().Published; got != 0 {
		t.Fatalf("published = %d, want 0", got)
	}
}

func TestSubscribeReceivesRows(t *testing.T) {
	r := New(Options{})
	s, err := r.Subscribe(SubscribeOptions{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	publishN(r, 3, "cpu")
	for i := 0; i < 3; i++ {
		select {
		case m := <-s.C():
			if m.Seq != uint64(i+1) {
				t.Fatalf("seq = %d, want %d", m.Seq, i+1)
			}
			if m.Group != "cpu" {
				t.Fatalf("group = %q", m.Group)
			}
		case <-time.After(time.Second):
			t.Fatal("timed out waiting for metric")
		}
	}
}

func TestMatchFiltersAndTransforms(t *testing.T) {
	r := New(Options{})
	s, err := r.Subscribe(SubscribeOptions{
		Match: func(m Metric) (Metric, bool) {
			if m.Group != "cpu" {
				return Metric{}, false
			}
			m.Group = "cpu-only"
			return m, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r.Publish("s", "mem", []string{"a"}, [][]any{{1}}, time.Now())
	r.Publish("s", "cpu", []string{"a"}, [][]any{{2}}, time.Now())
	select {
	case m := <-s.C():
		if m.Group != "cpu-only" {
			t.Fatalf("group = %q, want transformed cpu-only", m.Group)
		}
	case <-time.After(time.Second):
		t.Fatal("no metric")
	}
	if len(s.ch) != 0 {
		t.Fatal("mem row should have been filtered out")
	}
}

// TestStuckSubscriberNeverBlocksPublish is the core invariant: a consumer
// that never reads cannot slow Publish down — rows drop oldest-first and
// are accounted.
func TestStuckSubscriberNeverBlocksPublish(t *testing.T) {
	r := New(Options{QueueSize: 4, Stall: -1})
	stuck, err := r.Subscribe(SubscribeOptions{Name: "stuck"})
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	live, err := r.Subscribe(SubscribeOptions{Name: "live", Queue: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		publishN(r, 1000, "cpu")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked behind a stuck subscriber")
	}

	if got := stuck.Dropped(); got != 1000-4 {
		t.Fatalf("stuck dropped = %d, want %d", got, 1000-4)
	}
	// Drop-oldest: the stuck queue holds the freshest rows.
	m := <-stuck.C()
	if m.Seq != 1000-4+1 {
		t.Fatalf("oldest surviving seq = %d, want %d", m.Seq, 1000-4+1)
	}
	if got := live.Enqueued(); got != 1000 {
		t.Fatalf("live enqueued = %d, want 1000", got)
	}
	st := r.Stats()
	if st.Published != 1000 || st.Dropped != 1000-4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStallEviction(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	r := New(Options{QueueSize: 1, Stall: 100 * time.Millisecond, Clock: now})
	s, err := r.Subscribe(SubscribeOptions{Name: "stall"})
	if err != nil {
		t.Fatal(err)
	}
	publishN(r, 2, "cpu") // fills the queue, starts the stall clock on row 2
	advance(200 * time.Millisecond)
	publishN(r, 1, "cpu") // past the stall: evict

	select {
	case <-s.Done():
	case <-time.After(time.Second):
		t.Fatal("stalled subscriber was not evicted")
	}
	if !s.Evicted() {
		t.Fatal("Evicted() = false")
	}
	st := r.Stats()
	if st.Evicted != 1 {
		t.Fatalf("router evicted = %d, want 1", st.Evicted)
	}
	if st.Subscribers != 0 {
		t.Fatalf("subscribers = %d after eviction", st.Subscribers)
	}
	// Discarded queue contents count as drops — nothing is silent.
	if s.Dropped() == 0 {
		t.Fatal("eviction left drops unaccounted")
	}
	// A fast consumer keeps working after the eviction pass.
	ok, err := r.Subscribe(SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	publishN(r, 1, "cpu")
	select {
	case <-ok.C():
	case <-time.After(time.Second):
		t.Fatal("router dead after eviction")
	}
}

func TestFromSeqResume(t *testing.T) {
	r := New(Options{ReplaySize: 16})
	probe, _ := r.Subscribe(SubscribeOptions{}) // keeps the router non-idle
	defer probe.Close()
	publishN(r, 10, "cpu")

	s, err := r.Subscribe(SubscribeOptions{FromSeq: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Gapped() {
		t.Fatal("resume within the ring should not be gapped")
	}
	for want := uint64(7); want <= 10; want++ {
		select {
		case m := <-s.C():
			if m.Seq != want {
				t.Fatalf("replayed seq = %d, want %d", m.Seq, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("replay stopped before seq %d", want)
		}
	}
	// Live rows continue after replay with no duplicates.
	publishN(r, 1, "cpu")
	if m := <-s.C(); m.Seq != 11 {
		t.Fatalf("live seq after replay = %d, want 11", m.Seq)
	}
}

func TestFromSeqGapDetection(t *testing.T) {
	r := New(Options{ReplaySize: 4})
	probe, _ := r.Subscribe(SubscribeOptions{})
	defer probe.Close()
	publishN(r, 20, "cpu") // ring holds seqs 17..20

	s, err := r.Subscribe(SubscribeOptions{FromSeq: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Gapped() {
		t.Fatal("resume past the ring must report a gap")
	}
	if m := <-s.C(); m.Seq != 17 {
		t.Fatalf("first replayed seq = %d, want 17 (ring oldest)", m.Seq)
	}
	if got := r.OldestBuffered(); got != 17 {
		t.Fatalf("OldestBuffered = %d, want 17", got)
	}
}

func TestSubscribeAfterCloseFails(t *testing.T) {
	r := New(Options{})
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe(SubscribeOptions{}); err == nil {
		t.Fatal("Subscribe after Close should fail")
	}
	if n := r.Publish("s", "g", []string{"a"}, [][]any{{1}}, time.Now()); n != 0 {
		t.Fatal("Publish after Close should be a no-op")
	}
}

func TestCloseSignalsSubscribers(t *testing.T) {
	r := New(Options{})
	s, _ := r.Subscribe(SubscribeOptions{})
	publishN(r, 2, "cpu")
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	case <-time.After(time.Second):
		t.Fatal("Close did not end the subscription")
	}
	// Buffered rows remain drainable after Done.
	if m := <-s.C(); m.Seq != 1 {
		t.Fatalf("post-close drain seq = %d", m.Seq)
	}
}

func TestConcurrentPublishSubscribeRace(t *testing.T) {
	r := New(Options{QueueSize: 8, Stall: time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					publishN(r, 10, "cpu")
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := r.Subscribe(SubscribeOptions{})
			if err != nil {
				return
			}
			if i%2 == 0 {
				// Fast consumers drain until unsubscribed.
				for {
					select {
					case <-s.C():
					case <-s.Done():
						return
					case <-stop:
						s.Close()
						return
					}
				}
			}
			// Slow consumers just wait to be evicted or stopped.
			select {
			case <-s.Done():
			case <-stop:
				s.Close()
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
