// Package router implements the metric router behind GridRM's continuous
// queries (R-GMA's third query class): harvested rows flow in through
// Publish and fan out to subscribers and sinks, each behind its own
// *bounded* queue. The invariant the whole package defends: a stuck
// subscriber or a dead sink can never block Publish — and therefore never
// the harvest path — and never block shutdown.
//
// Overflow policy is drop-oldest with per-subscriber drop accounting, so a
// slow consumer sees the freshest rows and an honest gap count instead of
// silently wedging the pipeline. A consumer whose queue stays full past a
// configurable stall is evicted outright. Every row carries a router-wide
// sequence number; a bounded replay ring lets reconnecting consumers
// (SSE's Last-Event-ID) resume from the last row they saw, or learn that
// the gap is unrecoverable.
package router

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metric is one routed row: a harvested GLUE-table row stamped with the
// router-wide sequence number assigned at publish.
type Metric struct {
	// Seq is the router-wide publish sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Source is the data-source URL the row was harvested from.
	Source string `json:"source"`
	// Group is the GLUE group (table) name.
	Group string `json:"group"`
	// Time is the harvest time.
	Time time.Time `json:"time"`
	// Columns names the row's columns. Shared, not copied: treat as
	// read-only.
	Columns []string `json:"columns"`
	// Row holds the column values, aligned with Columns.
	Row []any `json:"row"`
}

// Options configures a Router.
type Options struct {
	// QueueSize bounds each subscriber's queue (default 256). When full,
	// the oldest queued metric is dropped and counted against the
	// subscriber.
	QueueSize int
	// ReplaySize bounds the replay ring used for resume-after-reconnect
	// (default 1024; negative disables replay).
	ReplaySize int
	// Stall is how long a subscriber's queue may stay continuously full
	// before the subscriber is evicted (default 10s; negative disables
	// eviction).
	Stall time.Duration
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

func (o Options) fill() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 256
	}
	if o.ReplaySize == 0 {
		o.ReplaySize = 1024
	}
	if o.Stall == 0 {
		o.Stall = 10 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Stats is a snapshot of router activity.
type Stats struct {
	// Published counts metrics accepted by Publish.
	Published int64
	// Enqueued counts per-subscriber enqueues (one metric fanned out to
	// three subscribers counts three).
	Enqueued int64
	// Dropped counts metrics dropped from subscriber queues (overflow)
	// or discarded at eviction.
	Dropped int64
	// Evicted counts subscribers evicted for stalling.
	Evicted int64
	// Subscribers is the current subscriber count (sinks excluded).
	Subscribers int
	// Sinks is the current sink count.
	Sinks int
	// SinkDelivered, SinkDropped, SinkRetries, SinkErrors and
	// SinkBreakerOpens aggregate every sink's counters; see SinkStats for
	// the per-sink split.
	SinkDelivered    int64
	SinkDropped      int64
	SinkRetries      int64
	SinkErrors       int64
	SinkBreakerOpens int64
}

// SubscriberStat is one subscriber's management view.
type SubscriberStat struct {
	ID        uint64 `json:"id"`
	Name      string `json:"name,omitempty"`
	Enqueued  int64  `json:"enqueued"`
	Dropped   int64  `json:"dropped"`
	Pending   int    `json:"pending"`
	Evicted   bool   `json:"evicted,omitempty"`
	Gapped    bool   `json:"gapped,omitempty"`
	LastSeq   uint64 `json:"last_seq"`
	SinceSecs int64  `json:"age_secs"`
}

// Router fans published metrics out to subscribers and sinks.
type Router struct {
	opts Options

	mu     sync.RWMutex
	subs   map[uint64]*Subscription
	sinks  map[string]*sinkRunner
	nextID uint64
	closed bool // intake closed: Publish is a no-op
	active atomic.Int64

	replay replayRing

	published atomic.Int64
	enqueued  atomic.Int64
	dropped   atomic.Int64
	evicted   atomic.Int64

	// Sink counters live on the router so totals survive sink removal.
	sinkDelivered    atomic.Int64
	sinkDropped      atomic.Int64
	sinkRetries      atomic.Int64
	sinkErrors       atomic.Int64
	sinkBreakerOpens atomic.Int64
}

// New creates a Router.
func New(opts Options) *Router {
	o := opts.fill()
	r := &Router{
		opts:  o,
		subs:  make(map[uint64]*Subscription),
		sinks: make(map[string]*sinkRunner),
	}
	if o.ReplaySize > 0 {
		r.replay.buf = make([]Metric, o.ReplaySize)
	}
	return r
}

// Idle reports whether the router has no consumers at all; the harvest
// path uses it to skip row publication entirely when nothing listens.
func (r *Router) Idle() bool { return r.active.Load() == 0 }

// Publish fans a harvested result's rows out to every matching subscriber
// and sink. It never blocks: full queues drop their oldest entry, and
// consumers stalled past Options.Stall are evicted. Returns the number of
// rows accepted (0 after Close or with no consumers).
func (r *Router) Publish(source, group string, columns []string, rows [][]any, at time.Time) int {
	if r.Idle() || len(rows) == 0 {
		return 0
	}
	now := r.opts.Clock()
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return 0
	}
	var evict []*Subscription
	n := 0
	for _, row := range rows {
		m := Metric{Source: source, Group: group, Time: at, Columns: columns, Row: row}
		m.Seq = r.replay.append(m)
		r.published.Add(1)
		n++
		for _, s := range r.subs {
			out, ok := s.match(m)
			if !ok {
				continue
			}
			if s.offer(out, now) && !s.sink {
				evict = append(evict, s)
			}
		}
	}
	r.mu.RUnlock()
	for _, s := range evict {
		r.evict(s)
	}
	return n
}

// evict removes a stalled subscriber: its Done channel closes, queued
// metrics are discarded and counted as drops.
func (r *Router) evict(s *Subscription) {
	if !s.evicted.CompareAndSwap(false, true) {
		return
	}
	r.mu.Lock()
	delete(r.subs, s.id)
	r.mu.Unlock()
	r.active.Add(-1)
	r.evicted.Add(1)
	s.close()
	// Drain what the consumer never took so the drop count is honest.
	for {
		select {
		case <-s.ch:
			s.dropped.Add(1)
			r.dropped.Add(1)
		default:
			return
		}
	}
}

// SubscribeOptions configures one subscription.
type SubscribeOptions struct {
	// Name labels the subscriber in stats (optional).
	Name string
	// Match filters and optionally transforms each published metric; nil
	// passes everything through unchanged. It runs on the publish path
	// and must be fast and lock-free.
	Match func(Metric) (Metric, bool)
	// FromSeq, when non-zero, replays buffered metrics with Seq > FromSeq
	// before live delivery begins. If the replay ring no longer reaches
	// back that far the subscription is marked Gapped.
	FromSeq uint64
	// Queue overrides Options.QueueSize for this subscriber.
	Queue int
}

// Subscribe registers a consumer. The returned subscription's channel is
// closed never; consumers select on C() and Done().
func (r *Router) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	queue := opts.Queue
	if queue <= 0 {
		queue = r.opts.QueueSize
	}
	match := opts.Match
	if match == nil {
		match = func(m Metric) (Metric, bool) { return m, true }
	}
	s := &Subscription{
		r:     r,
		name:  opts.Name,
		match: match,
		ch:    make(chan Metric, queue),
		done:  make(chan struct{}),
		born:  r.opts.Clock(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("router: closed")
	}
	r.nextID++
	s.id = r.nextID
	if opts.FromSeq > 0 {
		replayed, gapped := r.replay.since(opts.FromSeq, func(m Metric) {
			if out, ok := s.match(m); ok {
				s.offer(out, s.born)
			}
		})
		s.gapped = gapped
		_ = replayed
	}
	r.subs[s.id] = s
	r.active.Add(1)
	return s, nil
}

// Subscription is one consumer's bounded mailbox.
type Subscription struct {
	r     *Router
	id    uint64
	name  string
	match func(Metric) (Metric, bool)
	ch    chan Metric
	done  chan struct{}
	once  sync.Once
	born  time.Time

	enqueued atomic.Int64
	dropped  atomic.Int64
	lastSeq  atomic.Uint64
	// fullSince is the unix-nano timestamp of the first overflow of the
	// current full stretch; 0 while the queue accepts sends.
	fullSince atomic.Int64
	evicted   atomic.Bool
	gapped    bool // set once at Subscribe, read-only afterwards
	sink      bool // owned by a sinkRunner: hidden from Subscribers, never evicted
}

// offer enqueues m with drop-oldest overflow, returning true when the
// subscriber has been continuously full past the stall threshold and
// should be evicted.
func (s *Subscription) offer(m Metric, now time.Time) (stalled bool) {
	if s.evicted.Load() {
		return false
	}
	select {
	case s.ch <- m:
		s.noteEnqueue(m.Seq)
		s.fullSince.Store(0)
		return false
	default:
	}
	// Full: start (or continue) the stall clock, then drop the oldest.
	if first := s.fullSince.Load(); first == 0 {
		s.fullSince.CompareAndSwap(0, now.UnixNano())
	} else if s.r.opts.Stall > 0 && now.Sub(time.Unix(0, first)) >= s.r.opts.Stall {
		stalled = true
	}
	select {
	case <-s.ch:
		s.dropped.Add(1)
		s.r.dropped.Add(1)
	default:
	}
	select {
	case s.ch <- m:
		s.noteEnqueue(m.Seq)
	default:
		s.dropped.Add(1)
		s.r.dropped.Add(1)
	}
	return stalled
}

func (s *Subscription) noteEnqueue(seq uint64) {
	s.enqueued.Add(1)
	s.r.enqueued.Add(1)
	for {
		last := s.lastSeq.Load()
		if seq <= last || s.lastSeq.CompareAndSwap(last, seq) {
			return
		}
	}
}

// C is the metric channel. It is never closed; select on Done too.
func (s *Subscription) C() <-chan Metric { return s.ch }

// Done closes when the subscription ends — Close, eviction, or router
// shutdown. Buffered metrics may still be drained from C afterwards.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Close unsubscribes. Idempotent, safe concurrently with Publish.
func (s *Subscription) Close() {
	s.r.mu.Lock()
	if _, ok := s.r.subs[s.id]; ok {
		delete(s.r.subs, s.id)
		s.r.active.Add(-1)
	}
	s.r.mu.Unlock()
	s.close()
}

func (s *Subscription) close() { s.once.Do(func() { close(s.done) }) }

// ID returns the subscription's router-local id.
func (s *Subscription) ID() uint64 { return s.id }

// Dropped counts metrics this subscriber lost to overflow or eviction.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Enqueued counts metrics enqueued for this subscriber.
func (s *Subscription) Enqueued() int64 { return s.enqueued.Load() }

// Evicted reports whether the router evicted this subscriber for
// stalling.
func (s *Subscription) Evicted() bool { return s.evicted.Load() }

// Gapped reports whether a FromSeq resume could not be fully served from
// the replay ring — rows between FromSeq and the ring's oldest entry are
// gone.
func (s *Subscription) Gapped() bool { return s.gapped }

// LastSeq is the highest sequence number enqueued so far.
func (s *Subscription) LastSeq() uint64 { return s.lastSeq.Load() }

// Stats returns a snapshot of router activity.
func (r *Router) Stats() Stats {
	r.mu.RLock()
	sinks := len(r.sinks)
	subs := 0
	for _, s := range r.subs {
		if !s.sink {
			subs++
		}
	}
	r.mu.RUnlock()
	return Stats{
		Published:        r.published.Load(),
		Enqueued:         r.enqueued.Load(),
		Dropped:          r.dropped.Load(),
		Evicted:          r.evicted.Load(),
		Subscribers:      subs,
		Sinks:            sinks,
		SinkDelivered:    r.sinkDelivered.Load(),
		SinkDropped:      r.sinkDropped.Load(),
		SinkRetries:      r.sinkRetries.Load(),
		SinkErrors:       r.sinkErrors.Load(),
		SinkBreakerOpens: r.sinkBreakerOpens.Load(),
	}
}

// Subscribers lists current subscribers for the management view, sorted
// by id.
func (r *Router) Subscribers() []SubscriberStat {
	now := r.opts.Clock()
	r.mu.RLock()
	out := make([]SubscriberStat, 0, len(r.subs))
	for _, s := range r.subs {
		if s.sink {
			continue
		}
		out = append(out, SubscriberStat{
			ID:        s.id,
			Name:      s.name,
			Enqueued:  s.enqueued.Load(),
			Dropped:   s.dropped.Load(),
			Pending:   len(s.ch),
			Evicted:   s.evicted.Load(),
			Gapped:    s.gapped,
			LastSeq:   s.lastSeq.Load(),
			SinceSecs: int64(now.Sub(s.born) / time.Second),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OldestBuffered returns the lowest sequence number still in the replay
// ring (0 when empty or replay is disabled).
func (r *Router) OldestBuffered() uint64 { return r.replay.oldest() }

// Seq returns the last sequence number assigned.
func (r *Router) Seq() uint64 { return r.replay.seq.Load() }

// replayRing is the bounded buffer of recent metrics serving
// resume-after-reconnect. A zero buf disables replay (seq numbers are
// still assigned).
type replayRing struct {
	mu   sync.Mutex
	buf  []Metric
	next int
	full bool
	seq  atomic.Uint64
}

// append stamps m with the next sequence number, stores it and returns
// the assigned seq.
func (rr *replayRing) append(m Metric) uint64 {
	seq := rr.seq.Add(1)
	if len(rr.buf) == 0 {
		return seq
	}
	m.Seq = seq
	rr.mu.Lock()
	rr.buf[rr.next] = m
	rr.next++
	if rr.next == len(rr.buf) {
		rr.next = 0
		rr.full = true
	}
	rr.mu.Unlock()
	return seq
}

// since feeds every buffered metric with Seq > after to fn in order,
// reporting how many were fed and whether rows between after and the
// oldest buffered entry are already gone.
func (rr *replayRing) since(after uint64, fn func(Metric)) (n int, gapped bool) {
	if len(rr.buf) == 0 {
		return 0, rr.seq.Load() > after
	}
	rr.mu.Lock()
	var ordered []Metric
	if rr.full {
		ordered = append(ordered, rr.buf[rr.next:]...)
	}
	ordered = append(ordered, rr.buf[:rr.next]...)
	rr.mu.Unlock()
	if len(ordered) > 0 && ordered[0].Seq > after+1 {
		gapped = true
	}
	if len(ordered) == 0 && rr.seq.Load() > after {
		gapped = true
	}
	for _, m := range ordered {
		if m.Seq > after {
			fn(m)
			n++
		}
	}
	return n, gapped
}

// oldest returns the lowest buffered seq (0 when empty).
func (rr *replayRing) oldest() uint64 {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if len(rr.buf) == 0 {
		return 0
	}
	if rr.full {
		return rr.buf[rr.next].Seq
	}
	if rr.next == 0 {
		return 0
	}
	return rr.buf[0].Seq
}
