package netloggerdrv

import (
	"sync/atomic"
	"testing"
	"time"

	"gridrm/internal/agents/netlogger"
	"gridrm/internal/agents/sim"
	"gridrm/internal/driver"
	"gridrm/internal/event"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
)

type fixture struct {
	site  *sim.Site
	agent *netlogger.Agent
	drv   *Driver
	url   string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	site := sim.New(sim.Config{Name: "nl", Hosts: 2, Seed: 31})
	site.StepN(3)
	agent, err := netlogger.NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	agent.Sample()
	sm := schema.NewManager()
	if err := sm.Register(Schema()); err != nil {
		t.Fatal(err)
	}
	return &fixture{site: site, agent: agent, drv: New(sm), url: "gridrm:netlogger://" + agent.Addr()}
}

func (f *fixture) query(t *testing.T, sql string) *resultset.ResultSet {
	t.Helper()
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rs, err := stmt.ExecuteQuery(sql)
	if err != nil {
		t.Fatalf("ExecuteQuery(%q): %v", sql, err)
	}
	return rs
}

func TestAcceptsAndConnect(t *testing.T) {
	f := newFixture(t)
	if !f.drv.AcceptsURL("gridrm:netlogger://h") || !f.drv.AcceptsURL("gridrm://h") ||
		f.drv.AcceptsURL("gridrm:scms://h") {
		t.Error("AcceptsURL wrong")
	}
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Errorf("ping: %v", err)
	}
	if _, err := f.drv.Connect("gridrm:netlogger://127.0.0.1:1", driver.Properties{"timeout": "150ms"}); err == nil {
		t.Error("dead port accepted")
	}
}

func TestFineGrainedRows(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM Processor ORDER BY HostName")
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	snap, _ := f.site.Snapshot(f.site.HostNames()[0])
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != snap.Name {
		t.Errorf("host = %q", h)
	}
	if v, _ := rs.GetFloat("LoadLast1Min"); v != snap.Load1 {
		t.Errorf("load = %v, want %v", v, snap.Load1)
	}
	if v, _ := rs.GetFloat("Utilization"); v != snap.UtilPct {
		t.Errorf("util = %v", v)
	}
	rs.GetString("Model")
	if !rs.WasNull() {
		t.Error("Model should be NULL via NetLogger")
	}
	rs = f.query(t, "SELECT * FROM Memory WHERE HostName = '"+snap.Name+"'")
	rs.Next()
	if v, _ := rs.GetInt("RAMSize"); v != snap.Mem.RAMMB {
		t.Errorf("RAMSize = %d", v)
	}
}

func TestStaleHostsStillServed(t *testing.T) {
	// NetLogger answers from its record store, so a host that went down
	// after sampling is still reported (with its last values).
	f := newFixture(t)
	_ = f.site.SetHostDown(f.site.HostNames()[0], true)
	rs := f.query(t, "SELECT * FROM Processor")
	if rs.Len() != 2 {
		t.Errorf("rows = %d (log data outlives the host)", rs.Len())
	}
}

func TestErrors(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Disk"); err == nil {
		t.Error("Disk accepted")
	}
	_ = conn.Close()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Memory"); err == nil {
		t.Error("query after close")
	}
}

func TestInboundEventsBridge(t *testing.T) {
	f := newFixture(t)
	mgr := event.NewManager(event.Options{})
	defer mgr.Close()
	inbound := &InboundEvents{URL: f.url}
	if err := mgr.AttachInbound(inbound); err != nil {
		t.Fatal(err)
	}
	received := make(chan event.Event, 64)
	mgr.Subscribe(event.Filter{Severity: event.SeverityAlert}, func(ev event.Event) {
		received <- ev
	})
	time.Sleep(50 * time.Millisecond) // let STREAM register
	// A simulator host-down event becomes a native Alert record, which the
	// inbound driver translates to a GridRM Alert event.
	_ = f.site.SetHostDown(f.site.HostNames()[1], true)
	select {
	case ev := <-received:
		if ev.Name != string(sim.EventHostDown) || ev.Host != f.site.HostNames()[1] {
			t.Errorf("event %+v", ev)
		}
		if ev.Source != f.url {
			t.Errorf("source = %q", ev.Source)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event received through the bridge")
	}
}

func TestOutboundEventsTransmit(t *testing.T) {
	f := newFixture(t)
	out := &OutboundEvents{URL: f.url}
	ev := event.Event{
		Host:     "external-host",
		Name:     "gridrm-alert",
		Severity: event.SeverityAlert,
		Value:    42,
		Time:     time.Date(2003, 6, 2, 0, 0, 0, 0, time.UTC),
	}
	if err := out.Transmit(ev); err != nil {
		t.Fatal(err)
	}
	// The transmitted event is now native NetLogger data.
	rec, ok := f.agent.Latest("external-host", "gridrm-alert")
	if !ok {
		t.Fatal("transmitted event not recorded by agent")
	}
	if rec.Value != 42 || rec.Prog != "gridrm" || rec.Level != event.SeverityAlert {
		t.Errorf("record %+v", rec)
	}
	// Transmit to a dead agent fails.
	dead := &OutboundEvents{URL: "gridrm:netlogger://127.0.0.1:1", Timeout: 150 * time.Millisecond}
	if err := dead.Transmit(ev); err == nil {
		t.Error("transmit to dead agent succeeded")
	}
}

func TestFullEventLoopThroughManager(t *testing.T) {
	// Fig 4 end-to-end: native usage records stream in, a threshold rule
	// fires, and the alert is transmitted back out to the same data
	// source natively.
	f := newFixture(t)
	mgr := event.NewManager(event.Options{})
	defer mgr.Close()
	_ = mgr.AddRule(event.ThresholdRule{
		Name:      "load-alarm",
		Match:     event.Filter{Name: netlogger.EvLoadOne},
		Op:        event.Above,
		Threshold: -1, // any load fires
	})
	mgr.AddOutbound(event.Filter{Severity: event.SeverityAlert}, &OutboundEvents{URL: f.url})
	if err := mgr.AttachInbound(&InboundEvents{URL: f.url}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	f.agent.Sample() // produces load.one usage records
	host := f.site.HostNames()[0]
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rec, ok := f.agent.Latest(host, "load-alarm"); ok {
			if rec.Prog != "gridrm" {
				t.Errorf("alert record %+v", rec)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("alert never arrived back at the data source")
}

func TestInboundDropsOwnTransmissions(t *testing.T) {
	// Loop prevention: an event transmitted outbound (PROG=gridrm) and
	// echoed by the agent's stream must NOT be re-ingested.
	f := newFixture(t)
	mgr := event.NewManager(event.Options{})
	defer mgr.Close()
	if err := mgr.AttachInbound(&InboundEvents{URL: f.url}); err != nil {
		t.Fatal(err)
	}
	var echoes atomic.Int64
	mgr.Subscribe(event.Filter{Name: "gridrm-alert"}, func(event.Event) { echoes.Add(1) })
	time.Sleep(50 * time.Millisecond)
	out := &OutboundEvents{URL: f.url}
	if err := out.Transmit(event.Event{Host: "h", Name: "gridrm-alert",
		Severity: event.SeverityAlert, Time: time.Date(2003, 6, 2, 0, 0, 0, 0, time.UTC)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	mgr.Drain()
	if echoes.Load() != 0 {
		t.Errorf("own transmission re-ingested %d times (echo loop)", echoes.Load())
	}
}

func TestSchemaValid(t *testing.T) {
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
}
