// Package netloggerdrv implements the JDBC-NetLogger driver plus the
// inbound and outbound event drivers that bridge NetLogger's ULM records
// and GridRM's Event Manager (paper Fig 4).
//
// NetLogger sits with SNMP in the paper's fine-grained camp (§3.2.3):
// "fine grained native requests for data are possible, with generally
// little or no parsing required" — the driver issues one GET per (host,
// event) and each answer is a single self-describing ULM line. No response
// cache is carried.
//
// URLs: gridrm:netlogger://host:port. Protocol-less URLs are verified by a
// HOSTS handshake at connect time.
package netloggerdrv

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"gridrm/internal/agents/netlogger"
	"gridrm/internal/driver"
	"gridrm/internal/event"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// DriverName is the registration name.
const DriverName = "jdbc-netlogger"

// DefaultPort is the NetLogger port assumed when the URL has none.
const DefaultPort = 14830

// Driver is the JDBC-NetLogger driver.
type Driver struct {
	schemas *schema.Manager
}

// New creates the driver; the SchemaManager may be nil.
func New(sm *schema.Manager) *Driver { return &Driver{schemas: sm} }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == "netlogger"
}

// Connect implements driver.Driver, verifying the agent with a HOSTS
// handshake.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	timeout := 2 * time.Second
	if t := props.Get("timeout", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("netloggerdrv: bad timeout %q", t)
		}
		timeout = parsed
	}
	tcp, err := net.DialTimeout("tcp", u.Address(DefaultPort), timeout)
	if err != nil {
		return nil, fmt.Errorf("netloggerdrv: %w", err)
	}
	conn := &Conn{drv: d, tcp: tcp, r: bufio.NewReader(tcp), url: url, timeout: timeout}
	conn.mapping, conn.gen = d.lookupSchema()
	if _, err := conn.hosts(); err != nil {
		_ = tcp.Close()
		return nil, fmt.Errorf("netloggerdrv: %s does not answer as a NetLogger agent: %w", url, err)
	}
	return conn, nil
}

func (d *Driver) lookupSchema() (*schema.DriverSchema, int64) {
	if d.schemas == nil {
		return Schema(), 0
	}
	if ds, gen, ok := d.schemas.Lookup(DriverName); ok {
		return ds, gen
	}
	return Schema(), 0
}

// Conn is a NetLogger driver connection.
type Conn struct {
	driver.UnimplementedConn
	drv     *Driver
	tcp     net.Conn
	r       *bufio.Reader
	url     string
	timeout time.Duration
	mapping *schema.DriverSchema
	gen     int64
	closed  bool
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// Close implements driver.Conn.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.tcp.Close()
}

// Ping implements driver.Conn with a HOSTS round trip.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	_, err := c.hosts()
	return err
}

// SourceInfo implements driver.MetadataProvider.
func (c *Conn) SourceInfo() driver.SourceInfo {
	return driver.SourceInfo{Protocol: "netlogger", Groups: c.mapping.GroupNames()}
}

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

func (c *Conn) send(cmd string) error {
	_ = c.tcp.SetDeadline(time.Now().Add(c.timeout))
	_, err := fmt.Fprintf(c.tcp, "%s\n", cmd)
	return err
}

func (c *Conn) readLine() (string, error) {
	_ = c.tcp.SetDeadline(time.Now().Add(c.timeout))
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func (c *Conn) hosts() ([]string, error) {
	if err := c.send("HOSTS"); err != nil {
		return nil, err
	}
	var out []string
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if strings.HasPrefix(line, "ERR") {
			return nil, fmt.Errorf("netloggerdrv: %s", line)
		}
		out = append(out, line)
	}
}

// get performs one fine-grained GET for the latest value of (host, event).
func (c *Conn) get(host, evt string) (float64, bool, error) {
	if err := c.send("GET " + host + " " + evt); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	if strings.HasPrefix(line, "ERR") {
		return 0, false, nil // no record for this event → NULL
	}
	rec, err := netlogger.ParseRecord(line)
	if err != nil {
		return 0, false, fmt.Errorf("netloggerdrv: %w", err)
	}
	return rec.Value, true, nil
}

// Stmt executes SQL via per-value GETs.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { s.closed = true; return nil }

// ExecuteQuery implements driver.Stmt.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	if s.conn.drv.schemas != nil && !s.conn.drv.schemas.Valid(DriverName, s.conn.gen) {
		s.conn.mapping, s.conn.gen = s.conn.drv.lookupSchema()
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("netloggerdrv: unknown group %q", q.Table)
	}
	gm, ok := s.conn.mapping.Groups[g.Name]
	if !ok {
		return nil, fmt.Errorf("netloggerdrv: group %s not supported by this driver", g.Name)
	}
	hosts, err := s.conn.hosts()
	if err != nil {
		return nil, err
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, host := range hosts {
		var resolveErr error
		row, err := schema.BuildRow(g, gm, func(native string) (any, bool) {
			if native == "hostname" {
				return host, true
			}
			name, conv, _ := strings.Cut(native, "|")
			v, ok, err := s.conn.get(host, name)
			if err != nil {
				resolveErr = err
				return nil, false
			}
			if !ok {
				return nil, false
			}
			if conv == "int" {
				return int64(v), true
			}
			return v, true
		})
		if resolveErr != nil {
			return nil, resolveErr
		}
		if err != nil {
			return nil, err
		}
		b.Append(row...)
	}
	full, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}

// Schema returns the driver's GLUE mapping. Native names are ULM NL.EVNT
// names, optionally suffixed "|int".
func Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: DriverName,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "LoadLast1Min", Native: netlogger.EvLoadOne},
				{GLUEField: "LoadLast5Min", Native: netlogger.EvLoadFive},
				{GLUEField: "LoadLast15Min", Native: netlogger.EvLoadFifteen},
				{GLUEField: "Utilization", Native: netlogger.EvCPUUtil},
				// NetLogger carries usage, not inventory → identity NULL.
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "RAMSize", Native: netlogger.EvMemTotal + "|int"},
				{GLUEField: "RAMAvailable", Native: netlogger.EvMemFree + "|int"},
			}},
		},
	}
}

// InboundEvents is the Event Manager's inbound driver for NetLogger: it
// opens a STREAM and translates every ULM record into a GridRM event via
// its Formatter — the "Consumer for Data Source X" of Fig 4.
type InboundEvents struct {
	// URL is the agent's data-source URL.
	URL string
	// Timeout bounds the dial (default 2s).
	Timeout time.Duration
	// Formatter translates one ULM record; nil uses DefaultFormatter.
	Formatter func(rec netlogger.Record, sourceURL string) (event.Event, bool)

	tcp    net.Conn
	done   chan struct{}
	closed bool
}

// DefaultFormatter is the stock ULM → GridRM event translation. Records
// whose PROG is "gridrm" are GridRM's own outbound transmissions echoed by
// the agent; re-ingesting them would loop alerts back into the Event
// Manager forever, so the formatter drops them.
func DefaultFormatter(rec netlogger.Record, sourceURL string) (event.Event, bool) {
	if rec.Prog == "gridrm" {
		return event.Event{}, false
	}
	sev := event.SeverityUsage
	if rec.Level == "Alert" {
		sev = event.SeverityAlert
	}
	return event.Event{
		Source:   sourceURL,
		Host:     rec.Host,
		Name:     rec.Event,
		Severity: sev,
		Value:    rec.Value,
		Time:     rec.Date,
		Detail:   "prog=" + rec.Prog,
	}, true
}

// Name implements event.InboundDriver.
func (d *InboundEvents) Name() string { return "netlogger-events:" + d.URL }

// Start implements event.InboundDriver.
func (d *InboundEvents) Start(sink func(event.Event)) error {
	u, err := driver.ParseURL(d.URL)
	if err != nil {
		return err
	}
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	tcp, err := net.DialTimeout("tcp", u.Address(DefaultPort), timeout)
	if err != nil {
		return fmt.Errorf("netloggerdrv: %w", err)
	}
	if _, err := fmt.Fprintf(tcp, "STREAM\n"); err != nil {
		_ = tcp.Close()
		return fmt.Errorf("netloggerdrv: %w", err)
	}
	d.tcp = tcp
	d.done = make(chan struct{})
	format := d.Formatter
	if format == nil {
		format = DefaultFormatter
	}
	go func() {
		defer close(d.done)
		sc := bufio.NewScanner(tcp)
		for sc.Scan() {
			rec, err := netlogger.ParseRecord(sc.Text())
			if err != nil {
				continue
			}
			if ev, ok := format(rec, d.URL); ok {
				sink(ev)
			}
		}
	}()
	return nil
}

// Close implements event.InboundDriver.
func (d *InboundEvents) Close() error {
	if d.closed || d.tcp == nil {
		return nil
	}
	d.closed = true
	err := d.tcp.Close()
	<-d.done
	return err
}

// OutboundEvents transmits GridRM events back to a NetLogger data source as
// ULM LOG records — Fig 4's Transmitter API ("format standard GridRM event
// into a native provider event ... transmit to data source").
type OutboundEvents struct {
	// URL is the agent's data-source URL.
	URL string
	// Timeout bounds each transmission (default 2s).
	Timeout time.Duration
}

// Name implements event.OutboundDriver.
func (d *OutboundEvents) Name() string { return "netlogger-transmit:" + d.URL }

// Transmit implements event.OutboundDriver.
func (d *OutboundEvents) Transmit(ev event.Event) error {
	u, err := driver.ParseURL(d.URL)
	if err != nil {
		return err
	}
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	tcp, err := net.DialTimeout("tcp", u.Address(DefaultPort), timeout)
	if err != nil {
		return fmt.Errorf("netloggerdrv: %w", err)
	}
	defer tcp.Close()
	rec := netlogger.Record{
		Date:  ev.Time,
		Host:  ev.Host,
		Prog:  "gridrm",
		Level: ev.Severity,
		Event: ev.Name,
		Value: ev.Value,
	}
	_ = tcp.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(tcp, "LOG %s\n", rec.Format()); err != nil {
		return fmt.Errorf("netloggerdrv: %w", err)
	}
	resp, err := bufio.NewReader(tcp).ReadString('\n')
	if err != nil {
		return fmt.Errorf("netloggerdrv: %w", err)
	}
	if !strings.HasPrefix(resp, "OK") {
		return fmt.Errorf("netloggerdrv: transmit rejected: %s", strings.TrimSpace(resp))
	}
	return nil
}
