// Package gangliadrv implements the JDBC-Ganglia driver (paper Fig 3).
//
// Ganglia is the paper's example of a coarse-grained data source (§3.2.3):
// any query costs a whole-cluster XML dump that must be parsed, so "a
// greater overhead is required to parse values from the response" and
// driver implementations "should address these issues by using caching
// policies within the plug-in". This driver therefore caches the parsed
// cluster document per connection for a TTL (property "cache_ttl",
// default 1s); every GLUE group served within the TTL reuses one dump.
//
// URLs: gridrm:ganglia://host:port. Protocol-less URLs are accepted and
// verified at connect time by fetching and parsing a dump.
package gangliadrv

import (
	"encoding/xml"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"

	"gridrm/internal/agents/ganglia"
	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// DriverName is the registration name.
const DriverName = "jdbc-ganglia"

// DefaultPort is the gmond port assumed when the URL has none.
const DefaultPort = 8649

// DefaultCacheTTL is the per-connection dump cache lifetime.
const DefaultCacheTTL = time.Second

// Driver is the JDBC-Ganglia driver.
type Driver struct {
	schemas *schema.Manager
	// clock is injectable for cache tests.
	clock func() time.Time
}

// New creates the driver; the SchemaManager may be nil.
func New(sm *schema.Manager) *Driver { return &Driver{schemas: sm, clock: time.Now} }

// SetClock injects a clock for tests.
func (d *Driver) SetClock(clock func() time.Time) { d.clock = clock }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == "ganglia"
}

// Connect implements driver.Driver, verifying the agent by fetching and
// parsing one dump.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	timeout := 2 * time.Second
	if t := props.Get("timeout", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("gangliadrv: bad timeout %q", t)
		}
		timeout = parsed
	}
	ttl := DefaultCacheTTL
	if t := props.Get("cache_ttl", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("gangliadrv: bad cache_ttl %q", t)
		}
		ttl = parsed
	}
	conn := &Conn{
		drv:     d,
		addr:    u.Address(DefaultPort),
		url:     url,
		timeout: timeout,
		ttl:     ttl,
	}
	conn.mapping, conn.gen = d.lookupSchema()
	if _, err := conn.fetch(); err != nil {
		return nil, fmt.Errorf("gangliadrv: %s does not answer as a gmond agent: %w", url, err)
	}
	return conn, nil
}

func (d *Driver) lookupSchema() (*schema.DriverSchema, int64) {
	if d.schemas == nil {
		return Schema(), 0
	}
	if ds, gen, ok := d.schemas.Lookup(DriverName); ok {
		return ds, gen
	}
	return Schema(), 0
}

// Conn is a Ganglia driver connection holding the per-plug-in dump cache.
type Conn struct {
	driver.UnimplementedConn
	drv     *Driver
	addr    string
	url     string
	timeout time.Duration
	ttl     time.Duration
	mapping *schema.DriverSchema
	gen     int64
	closed  bool

	doc       *ganglia.Document
	fetchedAt time.Time
	// Fetches counts real dumps retrieved (cache-miss cost, E4).
	Fetches int64
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// Close implements driver.Conn.
func (c *Conn) Close() error { c.closed = true; return nil }

// Ping implements driver.Conn by dialling the agent.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("gangliadrv: %w", err)
	}
	return conn.Close()
}

// SourceInfo implements driver.MetadataProvider.
func (c *Conn) SourceInfo() driver.SourceInfo {
	info := driver.SourceInfo{Protocol: "ganglia", Groups: c.mapping.GroupNames()}
	if c.doc != nil {
		info.AgentVersion = c.doc.Version
	}
	return info
}

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

// document returns the cluster dump, via the per-plug-in cache.
func (c *Conn) document() (*ganglia.Document, error) {
	now := c.drv.clock()
	if c.doc != nil && c.ttl > 0 && now.Sub(c.fetchedAt) <= c.ttl {
		return c.doc, nil
	}
	return c.fetch()
}

func (c *Conn) fetch() (*ganglia.Document, error) {
	tcp, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, err
	}
	defer tcp.Close()
	_ = tcp.SetReadDeadline(time.Now().Add(c.timeout))
	data, err := io.ReadAll(tcp)
	if err != nil {
		return nil, err
	}
	var doc ganglia.Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing gmond XML: %w", err)
	}
	c.doc = &doc
	c.fetchedAt = c.drv.clock()
	c.Fetches++
	return c.doc, nil
}

// Stmt executes SQL against the cluster dump.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { s.closed = true; return nil }

// ExecuteQuery implements driver.Stmt.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	if s.conn.drv.schemas != nil && !s.conn.drv.schemas.Valid(DriverName, s.conn.gen) {
		s.conn.mapping, s.conn.gen = s.conn.drv.lookupSchema()
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("gangliadrv: unknown group %q", q.Table)
	}
	gm, ok := s.conn.mapping.Groups[g.Name]
	if !ok {
		return nil, fmt.Errorf("gangliadrv: group %s not supported by this driver", g.Name)
	}
	doc, err := s.conn.document()
	if err != nil {
		return nil, err
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, host := range doc.Cluster.Hosts {
		row, err := schema.BuildRow(g, gm, hostResolver(g, host))
		if err != nil {
			return nil, err
		}
		b.Append(row...)
	}
	full, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}

// hostResolver translates gmond metric names (plus the pseudo-metrics
// "hostname" and "ip") into GLUE-typed values for one host, parsing the
// string VALs the coarse XML response carries.
func hostResolver(g *glue.Group, host ganglia.Host) func(string) (any, bool) {
	metrics := make(map[string]ganglia.Metric, len(host.Metrics))
	for _, m := range host.Metrics {
		metrics[m.Name] = m
	}
	return func(native string) (any, bool) {
		switch native {
		case "hostname":
			return host.Name, true
		case "ip":
			if host.IP == "" {
				return nil, false
			}
			return host.IP, true
		}
		if len(native) > 6 && native[:6] == "const:" {
			// Synthetic key values for gmond's cluster-wide aggregates.
			return native[6:], true
		}
		name, conv, hasConv := cutConv(native)
		m, ok := metrics[name]
		if !ok {
			return nil, false
		}
		f, err := strconv.ParseFloat(m.Val, 64)
		if m.Type == "string" || err != nil {
			if hasConv {
				return nil, false
			}
			return m.Val, true
		}
		if hasConv {
			switch conv {
			case "kb-to-mb":
				return int64(f) / 1024, true
			case "gb-to-mb":
				return int64(f * 1024), true
			case "idle-to-util":
				return 100 - f, true
			case "unix-to-time":
				return time.Unix(int64(f), 0).UTC(), true
			case "int":
				return int64(f), true
			}
			return nil, false
		}
		// Default numeric: kind decided by the GLUE field at BuildRow;
		// return float unless integral metric type.
		if m.Type == "uint32" {
			return int64(f), true
		}
		return f, true
	}
}

// cutConv splits "metric|conversion" natives.
func cutConv(native string) (name, conv string, ok bool) {
	for i := 0; i < len(native); i++ {
		if native[i] == '|' {
			return native[:i], native[i+1:], true
		}
	}
	return native, "", false
}
