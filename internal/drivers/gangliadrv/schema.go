package gangliadrv

import (
	"gridrm/internal/glue"
	"gridrm/internal/schema"
)

// Schema returns the driver's GLUE mapping. Native names are gmond metric
// names, optionally suffixed "|conversion". gmond reports cluster-wide
// aggregates for disk and network, so those groups carry synthetic key
// values ("total", "all") and many NULLs — the coarse agent simply does not
// expose per-device detail (§3.1.4's NULL rule again).
func Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: DriverName,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "ClockSpeed", Native: "cpu_speed|int"},
				{GLUEField: "CPUCount", Native: "cpu_num|int"},
				{GLUEField: "LoadLast1Min", Native: "load_one"},
				{GLUEField: "LoadLast5Min", Native: "load_five"},
				{GLUEField: "LoadLast15Min", Native: "load_fifteen"},
				{GLUEField: "Utilization", Native: "cpu_idle|idle-to-util"},
				// Model/Vendor/CacheSize are not gmond metrics → NULL.
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "RAMSize", Native: "mem_total|kb-to-mb"},
				{GLUEField: "RAMAvailable", Native: "mem_free|kb-to-mb"},
				{GLUEField: "VirtualSize", Native: "swap_total|kb-to-mb"},
				{GLUEField: "VirtualAvailable", Native: "swap_free|kb-to-mb"},
				// Swap rates are not gmond metrics → NULL.
			}},
			glue.GroupDisk: {Group: glue.GroupDisk, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "DeviceName", Native: "const:total", Note: "gmond aggregates all devices"},
				{GLUEField: "Size", Native: "disk_total|gb-to-mb"},
				{GLUEField: "Available", Native: "disk_free|gb-to-mb"},
				// Read/write rates are not gmond metrics → NULL.
			}},
			glue.GroupNetworkAdapter: {Group: glue.GroupNetworkAdapter, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "InterfaceName", Native: "const:all", Note: "gmond aggregates all interfaces"},
				{GLUEField: "IPAddress", Native: "ip"},
				{GLUEField: "BytesIn", Native: "bytes_in|int"},
				{GLUEField: "BytesOut", Native: "bytes_out|int"},
				{GLUEField: "PacketsIn", Native: "pkts_in|int"},
				{GLUEField: "PacketsOut", Native: "pkts_out|int"},
				// InterfaceName synthesised; MTU/Bandwidth/Latency → NULL.
			}},
			glue.GroupOperatingSystem: {Group: glue.GroupOperatingSystem, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "Name", Native: "os_name"},
				{GLUEField: "Release", Native: "os_release"},
				{GLUEField: "BootTime", Native: "boottime|unix-to-time"},
				// Version/Uptime are not gmond metrics → NULL.
			}},
		},
	}
}
