package gangliadrv

import (
	"testing"
	"time"

	"gridrm/internal/agents/ganglia"
	"gridrm/internal/agents/sim"
	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
)

type fixture struct {
	site  *sim.Site
	agent *ganglia.Agent
	drv   *Driver
	sm    *schema.Manager
	url   string
	now   *time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	site := sim.New(sim.Config{Name: "g", Hosts: 3, Seed: 17})
	site.StepN(4)
	agent, err := ganglia.NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	sm := schema.NewManager()
	if err := sm.Register(Schema()); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(99000, 0)
	drv := New(sm)
	drv.SetClock(func() time.Time { return now })
	return &fixture{site: site, agent: agent, drv: drv, sm: sm,
		url: "gridrm:ganglia://" + agent.Addr(), now: &now}
}

func (f *fixture) connect(t *testing.T) driver.Conn {
	t.Helper()
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func (f *fixture) query(t *testing.T, conn driver.Conn, sql string) *resultset.ResultSet {
	t.Helper()
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rs, err := stmt.ExecuteQuery(sql)
	if err != nil {
		t.Fatalf("ExecuteQuery(%q): %v", sql, err)
	}
	return rs
}

func TestAcceptsURL(t *testing.T) {
	d := New(nil)
	if !d.AcceptsURL("gridrm:ganglia://h") || !d.AcceptsURL("gridrm://h") {
		t.Error("accepts")
	}
	if d.AcceptsURL("gridrm:snmp://h") || d.AcceptsURL("junk") {
		t.Error("over-accepts")
	}
}

func TestConnectProbe(t *testing.T) {
	f := newFixture(t)
	if _, err := f.drv.Connect("gridrm:ganglia://127.0.0.1:1", driver.Properties{"timeout": "150ms"}); err == nil {
		t.Error("connect to dead port succeeded")
	}
	conn := f.connect(t)
	if err := conn.Ping(); err != nil {
		t.Errorf("ping: %v", err)
	}
	info := conn.(driver.MetadataProvider).SourceInfo()
	if info.Protocol != "ganglia" || info.AgentVersion != ganglia.AgentVersion {
		t.Errorf("source info %+v", info)
	}
}

func TestProcessorRowsAllHosts(t *testing.T) {
	f := newFixture(t)
	conn := f.connect(t)
	rs := f.query(t, conn, "SELECT * FROM Processor ORDER BY HostName")
	if rs.Len() != 3 {
		t.Fatalf("rows = %d (coarse dump covers the cluster)", rs.Len())
	}
	snap, _ := f.site.Snapshot(f.site.HostNames()[0])
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != snap.Name {
		t.Errorf("host = %q", h)
	}
	if l, _ := rs.GetFloat("LoadLast1Min"); l != snap.Load1 {
		t.Errorf("load = %v, want %v", l, snap.Load1)
	}
	if c, _ := rs.GetInt("ClockSpeed"); c != snap.CPU.ClockMHz {
		t.Errorf("clock = %d", c)
	}
	if n, _ := rs.GetInt("CPUCount"); n != snap.CPU.Count {
		t.Errorf("cpus = %d", n)
	}
	// gmond has no model string → NULL.
	rs.GetString("Model")
	if !rs.WasNull() {
		t.Error("Model should be NULL via Ganglia")
	}
}

func TestMemoryAndOS(t *testing.T) {
	f := newFixture(t)
	conn := f.connect(t)
	snap, _ := f.site.Snapshot(f.site.HostNames()[0])
	rs := f.query(t, conn, "SELECT * FROM Memory WHERE HostName = '"+snap.Name+"'")
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if v, _ := rs.GetInt("RAMSize"); v != snap.Mem.RAMMB {
		t.Errorf("RAMSize = %d", v)
	}
	if v, _ := rs.GetInt("VirtualAvailable"); v != snap.Mem.VirtAvailMB {
		t.Errorf("VirtualAvailable = %d", v)
	}
	rs = f.query(t, conn, "SELECT * FROM OperatingSystem WHERE HostName = '"+snap.Name+"'")
	rs.Next()
	if v, _ := rs.GetString("Name"); v != snap.OS.Name {
		t.Errorf("OS name = %q", v)
	}
	if v, _ := rs.GetTime("BootTime"); !v.Equal(snap.OS.BootTime) {
		t.Errorf("BootTime = %v, want %v", v, snap.OS.BootTime)
	}
	rs.GetInt("Uptime")
	if !rs.WasNull() {
		t.Error("Uptime should be NULL via Ganglia")
	}
}

func TestAggregateDiskAndNetwork(t *testing.T) {
	f := newFixture(t)
	conn := f.connect(t)
	snap, _ := f.site.Snapshot(f.site.HostNames()[0])
	rs := f.query(t, conn, "SELECT * FROM Disk WHERE HostName = '"+snap.Name+"'")
	if rs.Len() != 1 {
		t.Fatalf("disk rows = %d (aggregate)", rs.Len())
	}
	rs.Next()
	if d, _ := rs.GetString("DeviceName"); d != "total" {
		t.Errorf("device = %q", d)
	}
	var totalMB int64
	for _, d := range snap.Disks {
		totalMB += d.SizeMB
	}
	if v, _ := rs.GetInt("Size"); v != totalMB {
		t.Errorf("aggregate size = %d, want %d", v, totalMB)
	}
	rs = f.query(t, conn, "SELECT * FROM NetworkAdapter WHERE HostName = '"+snap.Name+"'")
	rs.Next()
	if i, _ := rs.GetString("InterfaceName"); i != "all" {
		t.Errorf("interface = %q", i)
	}
	if v, _ := rs.GetInt("BytesIn"); v != snap.Nics[0].BytesIn {
		t.Errorf("bytesIn = %d", v)
	}
	rs.GetFloat("Bandwidth")
	if !rs.WasNull() {
		t.Error("Bandwidth should be NULL via Ganglia")
	}
}

func TestDumpCachePolicy(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, driver.Properties{"cache_ttl": "1s"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := conn.(*Conn)
	if c.Fetches != 1 { // connect probe
		t.Fatalf("fetches after connect = %d", c.Fetches)
	}
	// Several groups within the TTL share one dump.
	f.query(t, conn, "SELECT * FROM Processor")
	f.query(t, conn, "SELECT * FROM Memory")
	f.query(t, conn, "SELECT * FROM Disk")
	if c.Fetches != 1 {
		t.Errorf("fetches within TTL = %d, want 1", c.Fetches)
	}
	// TTL expiry refetches.
	*f.now = f.now.Add(2 * time.Second)
	f.query(t, conn, "SELECT * FROM Processor")
	if c.Fetches != 2 {
		t.Errorf("fetches after expiry = %d, want 2", c.Fetches)
	}
}

func TestCacheDisabled(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, driver.Properties{"cache_ttl": "0s"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := conn.(*Conn)
	f.query(t, conn, "SELECT * FROM Processor")
	f.query(t, conn, "SELECT * FROM Processor")
	if c.Fetches != 3 { // probe + 2 queries
		t.Errorf("fetches with TTL 0 = %d, want 3", c.Fetches)
	}
}

func TestUnsupportedGroupAndErrors(t *testing.T) {
	f := newFixture(t)
	conn := f.connect(t)
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Process"); err == nil {
		t.Error("Process accepted (gmond has no process table)")
	}
	if _, err := stmt.ExecuteQuery("junk"); err == nil {
		t.Error("bad SQL accepted")
	}
	_ = conn.Close()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err == nil {
		t.Error("query on closed conn accepted")
	}
	if _, err := f.drv.Connect(f.url, driver.Properties{"timeout": "x"}); err == nil {
		t.Error("bad timeout accepted")
	}
	if _, err := f.drv.Connect(f.url, driver.Properties{"cache_ttl": "x"}); err == nil {
		t.Error("bad cache_ttl accepted")
	}
}

func TestDownHostsOmitted(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, driver.Properties{"cache_ttl": "0s"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = f.site.SetHostDown(f.site.HostNames()[1], true)
	rs := f.query(t, conn, "SELECT * FROM Processor")
	if rs.Len() != 2 {
		t.Errorf("rows with down host = %d", rs.Len())
	}
}

func TestSchemaValid(t *testing.T) {
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
	if _, ok := Schema().Groups[glue.GroupProcess]; ok {
		t.Error("ganglia driver must not claim Process")
	}
}
