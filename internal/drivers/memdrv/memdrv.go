// Package memdrv provides an in-memory GridRM driver for tests, examples
// and benchmarks. It serves Processor and Memory rows for a configurable
// host list from a shared Backend, with injectable connect/query latency
// and failure switches — the knobs the E1–E3 and E6 benchmarks turn to
// model "driver connections typically incur an overhead when a data source
// is first connected" (paper §3.1.2) without network noise.
package memdrv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// Backend is the shared in-memory data source state.
type Backend struct {
	mu    sync.RWMutex
	hosts []string
	load  float64
	ram   int64

	failConnect  atomic.Bool
	failQuery    atomic.Bool
	connectDelay atomic.Int64 // nanoseconds
	queryDelay   atomic.Int64 // nanoseconds

	connects atomic.Int64
	queries  atomic.Int64
}

// NewBackend creates a backend serving the given hosts with load 1.0 and
// 1024 MB of RAM per host.
func NewBackend(hosts []string) *Backend {
	return &Backend{hosts: append([]string(nil), hosts...), load: 1.0, ram: 1024}
}

// SetLoad sets every host's reported 1-minute load.
func (b *Backend) SetLoad(load float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.load = load
}

// SetFailConnect makes subsequent connects fail.
func (b *Backend) SetFailConnect(fail bool) { b.failConnect.Store(fail) }

// SetFailQuery makes subsequent queries fail.
func (b *Backend) SetFailQuery(fail bool) { b.failQuery.Store(fail) }

// SetConnectDelay injects per-connect latency.
func (b *Backend) SetConnectDelay(d time.Duration) { b.connectDelay.Store(int64(d)) }

// SetQueryDelay injects per-query latency.
func (b *Backend) SetQueryDelay(d time.Duration) { b.queryDelay.Store(int64(d)) }

// Connects returns how many connects the backend has served.
func (b *Backend) Connects() int64 { return b.connects.Load() }

// Queries returns how many queries the backend has served.
func (b *Backend) Queries() int64 { return b.queries.Load() }

// Driver is an in-memory GridRM driver over a Backend.
type Driver struct {
	name    string
	proto   string
	backend *Backend
}

// New creates a driver with registration name and URL protocol.
func New(name, proto string, backend *Backend) *Driver {
	return &Driver{name: name, proto: proto, backend: backend}
}

// Name implements driver.Driver.
func (d *Driver) Name() string { return d.name }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "mem" }

// AcceptsURL implements driver.Driver.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == d.proto
}

// Connect implements driver.Driver.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	if delay := d.backend.connectDelay.Load(); delay > 0 {
		time.Sleep(time.Duration(delay))
	}
	if d.backend.failConnect.Load() {
		return nil, fmt.Errorf("%s: connect refused", d.name)
	}
	d.backend.connects.Add(1)
	return &conn{d: d, url: url}, nil
}

// Schema returns the driver's GLUE mapping (Processor and Memory).
func (d *Driver) Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: d.name,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "LoadLast1Min", Native: "load"},
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "RAMSize", Native: "ram"},
				{GLUEField: "RAMAvailable", Native: "ram_free"},
			}},
		},
	}
}

type conn struct {
	driver.UnimplementedConn
	d      *Driver
	url    string
	closed atomic.Bool
}

func (c *conn) URL() string    { return c.url }
func (c *conn) Driver() string { return c.d.name }

func (c *conn) Ping() error {
	if c.closed.Load() {
		return driver.ErrClosed
	}
	if c.d.backend.failConnect.Load() {
		return fmt.Errorf("%s: agent gone", c.d.name)
	}
	return nil
}

func (c *conn) Close() error {
	c.closed.Store(true)
	return nil
}

func (c *conn) CreateStatement() (driver.Stmt, error) {
	if c.closed.Load() {
		return nil, driver.ErrClosed
	}
	return &stmt{c: c}, nil
}

type stmt struct {
	driver.UnimplementedStmt
	c *conn
}

var _ driver.StmtContext = (*stmt)(nil)

func (s *stmt) Close() error { return nil }

func (s *stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	return s.ExecuteQueryContext(context.Background(), sql)
}

// ExecuteQueryContext implements driver.StmtContext: injected query latency
// is interruptible, so cancelled queries return promptly with ctx.Err().
func (s *stmt) ExecuteQueryContext(ctx context.Context, sql string) (*resultset.ResultSet, error) {
	b := s.c.d.backend
	if delay := b.queryDelay.Load(); delay > 0 {
		t := time.NewTimer(time.Duration(delay))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b.failQuery.Load() {
		return nil, fmt.Errorf("%s: query failed", s.c.d.name)
	}
	b.queries.Add(1)
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("memdrv: unknown group %q", q.Table)
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b.mu.RLock()
	hosts := append([]string(nil), b.hosts...)
	load, ram := b.load, b.ram
	b.mu.RUnlock()
	rb := resultset.NewBuilder(meta)
	for _, h := range hosts {
		row := make([]any, len(g.Fields))
		switch g.Name {
		case glue.GroupProcessor:
			row[g.FieldIndex("HostName")] = h
			row[g.FieldIndex("LoadLast1Min")] = load
		case glue.GroupMemory:
			row[g.FieldIndex("HostName")] = h
			row[g.FieldIndex("RAMSize")] = ram
			row[g.FieldIndex("RAMAvailable")] = ram / 2
		default:
			return nil, fmt.Errorf("memdrv: unsupported group %q", g.Name)
		}
		rb.Append(row...)
	}
	full, err := rb.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}
