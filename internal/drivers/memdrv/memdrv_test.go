package memdrv

import (
	"testing"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/schema"
)

func TestBasicQuery(t *testing.T) {
	b := NewBackend([]string{"h1", "h2"})
	d := New("jdbc-mem", "mem", b)
	if err := schema.NewManager().Register(d.Schema()); err != nil {
		t.Fatal(err)
	}
	conn, err := d.Connect("gridrm:mem://x:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	rs, err := stmt.ExecuteQuery("SELECT * FROM Memory ORDER BY HostName DESC")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != "h2" {
		t.Errorf("host = %q", h)
	}
	if v, _ := rs.GetInt("RAMAvailable"); v != 512 {
		t.Errorf("ram_free = %d", v)
	}
	if b.Queries() != 1 || b.Connects() != 1 {
		t.Errorf("counters %d/%d", b.Queries(), b.Connects())
	}
}

func TestFailureInjection(t *testing.T) {
	b := NewBackend([]string{"h1"})
	d := New("jdbc-mem", "mem", b)
	b.SetFailConnect(true)
	if _, err := d.Connect("gridrm:mem://x:1", nil); err == nil {
		t.Error("failing connect succeeded")
	}
	b.SetFailConnect(false)
	conn, _ := d.Connect("gridrm:mem://x:1", nil)
	defer conn.Close()
	b.SetFailQuery(true)
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Memory"); err == nil {
		t.Error("failing query succeeded")
	}
	b.SetFailConnect(true)
	if err := conn.Ping(); err == nil {
		t.Error("ping with failing backend succeeded")
	}
}

func TestDelays(t *testing.T) {
	b := NewBackend([]string{"h1"})
	b.SetConnectDelay(30 * time.Millisecond)
	d := New("jdbc-mem", "mem", b)
	start := time.Now()
	conn, err := d.Connect("gridrm:mem://x:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if time.Since(start) < 25*time.Millisecond {
		t.Error("connect delay not applied")
	}
	b.SetQueryDelay(30 * time.Millisecond)
	stmt, _ := conn.CreateStatement()
	start = time.Now()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("query delay not applied")
	}
}

func TestSetLoadVisible(t *testing.T) {
	b := NewBackend([]string{"h1"})
	b.SetLoad(7.5)
	d := New("jdbc-mem", "mem", b)
	conn, _ := d.Connect("gridrm:mem://x:1", nil)
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	rs, err := stmt.ExecuteQuery("SELECT LoadLast1Min FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	rs.Next()
	if v, _ := rs.GetFloat("LoadLast1Min"); v != 7.5 {
		t.Errorf("load = %v", v)
	}
}

func TestAcceptsURLAndUnsupported(t *testing.T) {
	d := New("jdbc-mem", "mem", NewBackend([]string{"h"}))
	if !d.AcceptsURL("gridrm:mem://h") || !d.AcceptsURL("gridrm://h") || d.AcceptsURL("gridrm:x://h") {
		t.Error("AcceptsURL wrong")
	}
	conn, _ := d.Connect("gridrm:mem://h:1", nil)
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Disk"); err == nil {
		t.Error("unsupported group accepted")
	}
	var _ driver.Driver = d
}

// TestAggregateAtDriverBoundary: coarse-snapshot drivers finish query
// processing with sqlparse.ApplyToResultSet, so they answer aggregate SQL
// directly — no gateway involvement needed.
func TestAggregateAtDriverBoundary(t *testing.T) {
	b := NewBackend([]string{"h1", "h2", "h3"})
	b.SetLoad(2.5)
	d := New("jdbc-mem", "mem", b)
	conn, err := d.Connect("gridrm:mem://x:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	rs, err := stmt.ExecuteQuery("SELECT count(*), avg(LoadLast1Min), sum(LoadLast1Min) FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if n, _ := rs.GetInt("count(*)"); n != 3 {
		t.Errorf("count = %d", n)
	}
	if v, _ := rs.GetFloat("avg(LoadLast1Min)"); v != 2.5 {
		t.Errorf("avg = %v", v)
	}
	if v, _ := rs.GetFloat("sum(LoadLast1Min)"); v != 7.5 {
		t.Errorf("sum = %v", v)
	}
}
