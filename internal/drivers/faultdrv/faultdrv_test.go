package faultdrv

import (
	"context"
	"errors"
	"testing"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

// stubDriver is a minimal healthy backend for the wrapper to inject faults
// in front of.
type stubDriver struct{}

func (d *stubDriver) Name() string               { return "stub" }
func (d *stubDriver) AcceptsURL(url string) bool { return true }
func (d *stubDriver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	return &stubConn{url: url}, nil
}

type stubConn struct {
	driver.UnimplementedConn
	url string
}

func (c *stubConn) URL() string                           { return c.url }
func (c *stubConn) Driver() string                        { return "stub" }
func (c *stubConn) Ping() error                           { return nil }
func (c *stubConn) CreateStatement() (driver.Stmt, error) { return &stubStmt{}, nil }

type stubStmt struct {
	driver.UnimplementedStmt
}

func (s *stubStmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	g, _ := glue.Lookup(glue.GroupProcessor)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	row := make([]any, len(g.Fields))
	row[g.FieldIndex("HostName")] = "stub1"
	b.Append(row...)
	return b.Build()
}

func wrap(t *testing.T) (*Driver, *Faults, driver.Stmt) {
	t.Helper()
	f := NewFaults()
	d := New("fault-stub", &stubDriver{}, f)
	conn, err := d.Connect("gridrm:stub://h:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	return d, f, stmt
}

func TestPassThrough(t *testing.T) {
	d, f, stmt := wrap(t)
	if !d.AcceptsURL("anything") {
		t.Error("AcceptsURL not delegated")
	}
	rs, err := stmt.ExecuteQuery("SELECT * FROM Processor")
	if err != nil || rs.Len() != 1 {
		t.Fatalf("clean query: %v, %v", rs, err)
	}
	if f.Queries() != 1 || f.Connects() != 1 || f.HangsServed() != 0 {
		t.Errorf("counters: queries=%d connects=%d hangs=%d",
			f.Queries(), f.Connects(), f.HangsServed())
	}
}

func TestQueryLatencyAndInjectedErrors(t *testing.T) {
	_, f, stmt := wrap(t)
	f.SetQueryLatency(30 * time.Millisecond)
	start := time.Now()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency not injected: %s", d)
	}
	f.SetQueryLatency(0)

	f.SetErrorEvery(2) // queries 2, 4, ... fail
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err == nil {
		t.Error("query 2 should have failed")
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Errorf("query 3 failed: %v", err)
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err == nil {
		t.Error("query 4 should have failed")
	}
	if f.Queries() != 4 {
		t.Errorf("queries = %d", f.Queries())
	}
}

func TestHangQueryHonoursContext(t *testing.T) {
	_, f, stmt := wrap(t)
	f.SetHangQuery(true)
	sc, ok := stmt.(driver.StmtContext)
	if !ok {
		t.Fatal("context-aware wrapper hides StmtContext")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sc.ExecuteQueryContext(ctx, "SELECT * FROM Processor")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("hang outlived the context: %s", d)
	}
	if f.HangsServed() != 1 {
		t.Errorf("hangs served = %d", f.HangsServed())
	}

	// Clearing the hang releases blocked callers.
	done := make(chan error, 1)
	go func() {
		_, err := sc.ExecuteQueryContext(context.Background(), "SELECT * FROM Processor")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.SetHangQuery(false)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("released query failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("released query never returned")
	}
}

func TestLegacyModeHidesStmtContext(t *testing.T) {
	f := NewFaults()
	f.ContextAware(false)
	d := New("fault-legacy", &stubDriver{}, f)
	conn, err := d.Connect("gridrm:stub://h:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(driver.StmtContext); ok {
		t.Fatal("legacy statement still advertises StmtContext")
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Errorf("legacy query failed: %v", err)
	}
}

func TestHangConnectBlocksUntilRelease(t *testing.T) {
	f := NewFaults()
	d := New("fault-conn", &stubDriver{}, f)
	f.SetHangConnect(true)
	done := make(chan error, 1)
	go func() {
		_, err := d.Connect("gridrm:stub://h:1", nil)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("connect did not hang")
	case <-time.After(50 * time.Millisecond):
	}
	f.SetHangConnect(false)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("released connect failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("released connect never returned")
	}
}
