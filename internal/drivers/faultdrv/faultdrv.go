// Package faultdrv wraps any GridRM driver with fault-injection knobs —
// added connect/query latency, every-Nth-query errors, and hang-forever
// switches — the substrate the deadline, straggler and circuit-breaker
// tests build on. The wrapper is a full driver.Driver: it can be registered
// with a gateway under its own name, delegates AcceptsURL/Connect to the
// wrapped driver, and implements driver.StmtContext so a hung query can be
// abandoned by context cancellation (set ContextAware(false) to model a
// legacy driver that ignores contexts and exercises the goroutine shim).
package faultdrv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/resultset"
)

// Faults is the shared fault-injection state. One Faults instance can be
// shared by several wrapped drivers or owned by one; all knobs are safe for
// concurrent use while queries are in flight.
type Faults struct {
	connectLatency atomic.Int64 // nanoseconds
	queryLatency   atomic.Int64 // nanoseconds
	errEvery       atomic.Int64 // every Nth query fails; 0 = never
	panicEveryQ    atomic.Int64 // every Nth query panics; 0 = never
	panicEveryC    atomic.Int64 // every Nth connect panics; 0 = never
	hangConnect    atomic.Bool
	hangQuery      atomic.Bool
	ctxAware       atomic.Bool

	panicsThrown atomic.Int64

	queryCount   atomic.Int64
	connectCount atomic.Int64
	hangsServed  atomic.Int64

	mu      sync.Mutex
	release chan struct{}
}

// NewFaults returns a Faults with every fault disabled and context support
// enabled.
func NewFaults() *Faults {
	f := &Faults{release: make(chan struct{})}
	f.ctxAware.Store(true)
	return f
}

// SetConnectLatency injects per-connect latency.
func (f *Faults) SetConnectLatency(d time.Duration) { f.connectLatency.Store(int64(d)) }

// SetQueryLatency injects per-query latency (interruptible by ctx when the
// wrapper is context-aware).
func (f *Faults) SetQueryLatency(d time.Duration) { f.queryLatency.Store(int64(d)) }

// SetErrorEvery makes every nth query fail (n <= 0 disables).
func (f *Faults) SetErrorEvery(n int) { f.errEvery.Store(int64(n)) }

// SetPanicEveryQuery makes every nth query panic (n <= 0 disables; n == 1
// panics on every query). The deterministic every-Nth scheme is the
// testable analogue of probabilistic panic injection: it exercises the
// gateway's recover() boundaries on both the context-aware path and the
// legacy goroutine shim.
func (f *Faults) SetPanicEveryQuery(n int) { f.panicEveryQ.Store(int64(n)) }

// SetPanicEveryConnect makes every nth connect panic (n <= 0 disables).
func (f *Faults) SetPanicEveryConnect(n int) { f.panicEveryC.Store(int64(n)) }

// PanicsThrown returns how many injected panics the wrapper has raised.
func (f *Faults) PanicsThrown() int64 { return f.panicsThrown.Load() }

// SetHangConnect makes subsequent connects hang until Release (or, when
// context-aware, the caller's context expires — but driver.Driver.Connect
// carries no context, so only Release frees a hung connect).
func (f *Faults) SetHangConnect(hang bool) { f.setHang(&f.hangConnect, hang) }

// SetHangQuery makes subsequent queries hang until Release or, when the
// wrapper is context-aware, until the query's context expires.
func (f *Faults) SetHangQuery(hang bool) { f.setHang(&f.hangQuery, hang) }

func (f *Faults) setHang(flag *atomic.Bool, hang bool) {
	if flag.Swap(hang) && !hang {
		f.Release()
	}
}

// ContextAware controls whether wrapped statements implement context
// cancellation (default true). When false the wrapper hides its
// StmtContext implementation, modelling a legacy blocking driver.
func (f *Faults) ContextAware(on bool) { f.ctxAware.Store(on) }

// Release frees every currently hung connect and query.
func (f *Faults) Release() {
	f.mu.Lock()
	close(f.release)
	f.release = make(chan struct{})
	f.mu.Unlock()
}

// Queries returns how many queries reached the wrapper.
func (f *Faults) Queries() int64 { return f.queryCount.Load() }

// Connects returns how many connects reached the wrapper.
func (f *Faults) Connects() int64 { return f.connectCount.Load() }

// HangsServed returns how many calls entered a hang.
func (f *Faults) HangsServed() int64 { return f.hangsServed.Load() }

// hang blocks until Release or ctx expiry; ctx may be nil (hang until
// Release only).
func (f *Faults) hang(ctx context.Context) error {
	f.hangsServed.Add(1)
	f.mu.Lock()
	rel := f.release
	f.mu.Unlock()
	if ctx == nil {
		<-rel
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-rel:
		return nil
	}
}

func (f *Faults) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Driver wraps an inner driver with fault injection.
type Driver struct {
	name   string
	inner  driver.Driver
	faults *Faults
}

// New wraps inner under the registration name using the given faults.
func New(name string, inner driver.Driver, faults *Faults) *Driver {
	if faults == nil {
		faults = NewFaults()
	}
	return &Driver{name: name, inner: inner, faults: faults}
}

// Faults returns the wrapper's fault knobs.
func (d *Driver) Faults() *Faults { return d.faults }

// Name implements driver.Driver.
func (d *Driver) Name() string { return d.name }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "fault" }

// AcceptsURL implements driver.Driver by delegating to the wrapped driver.
func (d *Driver) AcceptsURL(url string) bool { return d.inner.AcceptsURL(url) }

// Connect implements driver.Driver: injected connect faults first, then the
// wrapped driver's Connect.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	n := d.faults.connectCount.Add(1)
	if d.faults.hangConnect.Load() {
		_ = d.faults.hang(nil)
	}
	if err := d.faults.sleep(nil, time.Duration(d.faults.connectLatency.Load())); err != nil {
		return nil, err
	}
	if every := d.faults.panicEveryC.Load(); every > 0 && n%every == 0 {
		d.faults.panicsThrown.Add(1)
		panic(fmt.Sprintf("%s: injected panic (connect %d)", d.name, n))
	}
	inner, err := d.inner.Connect(url, props)
	if err != nil {
		return nil, err
	}
	return &conn{d: d, inner: inner}, nil
}

type conn struct {
	d     *Driver
	inner driver.Conn
}

func (c *conn) URL() string    { return c.inner.URL() }
func (c *conn) Driver() string { return c.d.name }
func (c *conn) Ping() error    { return c.inner.Ping() }
func (c *conn) Close() error   { return c.inner.Close() }

func (c *conn) CreateStatement() (driver.Stmt, error) {
	inner, err := c.inner.CreateStatement()
	if err != nil {
		return nil, err
	}
	if c.d.faults.ctxAware.Load() {
		return &stmt{c: c, inner: inner}, nil
	}
	return &legacyStmt{stmt{c: c, inner: inner}}, nil
}

// stmt injects faults ahead of the wrapped statement and honours contexts.
type stmt struct {
	c     *conn
	inner driver.Stmt
}

func (s *stmt) Close() error { return s.inner.Close() }

func (s *stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	return s.execute(nil, sql)
}

// ExecuteQueryContext implements driver.StmtContext.
func (s *stmt) ExecuteQueryContext(ctx context.Context, sql string) (*resultset.ResultSet, error) {
	return s.execute(ctx, sql)
}

func (s *stmt) execute(ctx context.Context, sql string) (*resultset.ResultSet, error) {
	f := s.c.d.faults
	n := f.queryCount.Add(1)
	if f.hangQuery.Load() {
		if err := f.hang(ctx); err != nil {
			return nil, err
		}
	}
	if err := f.sleep(ctx, time.Duration(f.queryLatency.Load())); err != nil {
		return nil, err
	}
	if every := f.panicEveryQ.Load(); every > 0 && n%every == 0 {
		f.panicsThrown.Add(1)
		panic(fmt.Sprintf("%s: injected panic (query %d)", s.c.d.name, n))
	}
	if every := f.errEvery.Load(); every > 0 && n%every == 0 {
		return nil, fmt.Errorf("%s: injected fault (query %d)", s.c.d.name, n)
	}
	if ctx != nil {
		return driver.QueryContext(ctx, s.inner, sql)
	}
	return s.inner.ExecuteQuery(sql)
}

// legacyStmt hides the StmtContext implementation so the gateway must use
// its goroutine-with-timeout shim, as it would for a pre-context driver.
type legacyStmt struct{ s stmt }

func (l *legacyStmt) Close() error { return l.s.Close() }
func (l *legacyStmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	return l.s.ExecuteQuery(sql)
}

var (
	_ driver.Driver      = (*Driver)(nil)
	_ driver.Conn        = (*conn)(nil)
	_ driver.Stmt        = (*stmt)(nil)
	_ driver.StmtContext = (*stmt)(nil)
	_ driver.Stmt        = (*legacyStmt)(nil)
)
