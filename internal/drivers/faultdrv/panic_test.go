package faultdrv

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic raised")
		}
		if msg, _ := r.(string); !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want %q", r, want)
		}
	}()
	fn()
}

func TestPanicEveryQuery(t *testing.T) {
	_, f, stmt := wrap(t)
	f.SetPanicEveryQuery(2) // queries 2, 4, ... panic

	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Fatalf("query 1: %v", err)
	}
	mustPanic(t, "injected panic (query 2)", func() {
		_, _ = stmt.ExecuteQuery("SELECT * FROM Processor")
	})
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Fatalf("query 3: %v", err)
	}
	if n := f.PanicsThrown(); n != 1 {
		t.Errorf("PanicsThrown = %d, want 1", n)
	}

	f.SetPanicEveryQuery(0)
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Errorf("disarmed wrapper still faulty: %v", err)
	}
}

func TestPanicEveryConnect(t *testing.T) {
	f := NewFaults()
	d := New("fault-stub", &stubDriver{}, f)
	f.SetPanicEveryConnect(2)

	if _, err := d.Connect("gridrm:stub://h:1", nil); err != nil {
		t.Fatalf("connect 1: %v", err)
	}
	mustPanic(t, "injected panic (connect 2)", func() {
		_, _ = d.Connect("gridrm:stub://h:1", nil)
	})
	if n := f.PanicsThrown(); n != 1 {
		t.Errorf("PanicsThrown = %d, want 1", n)
	}
}

func TestPanicBeatsInjectedError(t *testing.T) {
	// When both knobs target the same query, the panic wins — the point of
	// the panic knob is to exercise recover() boundaries, not error paths.
	_, f, stmt := wrap(t)
	f.SetPanicEveryQuery(1)
	f.SetErrorEvery(1)
	mustPanic(t, "injected panic (query 1)", func() {
		_, _ = stmt.ExecuteQuery("SELECT * FROM Processor")
	})
}
