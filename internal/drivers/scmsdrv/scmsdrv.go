// Package scmsdrv implements the JDBC-SCMS driver: SQL queries against GLUE
// groups are answered from SCMS cluster-status lines. SCMS rounds out the
// paper's initial driver set (§3.2.3); its key=value lines parse trivially,
// so the driver carries no response cache, but like Ganglia a single STATUS
// answer covers the whole cluster.
//
// URLs: gridrm:scms://host:port. Protocol-less URLs are verified with a
// NODES handshake at connect time.
package scmsdrv

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"gridrm/internal/agents/scms"
	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// DriverName is the registration name.
const DriverName = "jdbc-scms"

// DefaultPort is the SCMS port assumed when the URL has none.
const DefaultPort = 2933

// Driver is the JDBC-SCMS driver.
type Driver struct {
	schemas *schema.Manager
}

// New creates the driver; the SchemaManager may be nil.
func New(sm *schema.Manager) *Driver { return &Driver{schemas: sm} }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == "scms"
}

// Connect implements driver.Driver, verifying the agent with a NODES
// handshake.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	timeout := 2 * time.Second
	if t := props.Get("timeout", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("scmsdrv: bad timeout %q", t)
		}
		timeout = parsed
	}
	tcp, err := net.DialTimeout("tcp", u.Address(DefaultPort), timeout)
	if err != nil {
		return nil, fmt.Errorf("scmsdrv: %w", err)
	}
	conn := &Conn{drv: d, tcp: tcp, r: bufio.NewReader(tcp), url: url, timeout: timeout}
	conn.mapping, conn.gen = d.lookupSchema()
	if _, err := conn.command("NODES"); err != nil {
		_ = tcp.Close()
		return nil, fmt.Errorf("scmsdrv: %s does not answer as an SCMS agent: %w", url, err)
	}
	return conn, nil
}

func (d *Driver) lookupSchema() (*schema.DriverSchema, int64) {
	if d.schemas == nil {
		return Schema(), 0
	}
	if ds, gen, ok := d.schemas.Lookup(DriverName); ok {
		return ds, gen
	}
	return Schema(), 0
}

// Conn is an SCMS driver connection.
type Conn struct {
	driver.UnimplementedConn
	drv     *Driver
	tcp     net.Conn
	r       *bufio.Reader
	url     string
	timeout time.Duration
	mapping *schema.DriverSchema
	gen     int64
	closed  bool
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// Close implements driver.Conn.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.tcp.Close()
}

// Ping implements driver.Conn with a NODES round trip.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	_, err := c.command("NODES")
	return err
}

// SourceInfo implements driver.MetadataProvider.
func (c *Conn) SourceInfo() driver.SourceInfo {
	return driver.SourceInfo{Protocol: "scms", Groups: c.mapping.GroupNames()}
}

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

// command sends one line and collects response lines up to END.
func (c *Conn) command(cmd string) ([]string, error) {
	_ = c.tcp.SetDeadline(time.Now().Add(c.timeout))
	if _, err := fmt.Fprintf(c.tcp, "%s\n", cmd); err != nil {
		return nil, err
	}
	var out []string
	for {
		_ = c.tcp.SetDeadline(time.Now().Add(c.timeout))
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return out, nil
		}
		if strings.HasPrefix(line, "ERR") {
			return nil, fmt.Errorf("scmsdrv: %s", line)
		}
		out = append(out, line)
	}
}

// Stmt executes SQL against SCMS status lines.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { s.closed = true; return nil }

// ExecuteQuery implements driver.Stmt.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	if s.conn.drv.schemas != nil && !s.conn.drv.schemas.Valid(DriverName, s.conn.gen) {
		s.conn.mapping, s.conn.gen = s.conn.drv.lookupSchema()
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("scmsdrv: unknown group %q", q.Table)
	}
	gm, ok := s.conn.mapping.Groups[g.Name]
	if !ok {
		return nil, fmt.Errorf("scmsdrv: group %s not supported by this driver", g.Name)
	}
	// Site-level element groups come from the CLUSTER command; per-host
	// groups from STATUS.
	kind := clusterKind(g.Name)
	cmd := "STATUS"
	if kind != "" {
		cmd = "CLUSTER"
	}
	lines, err := s.conn.command(cmd)
	if err != nil {
		return nil, err
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, line := range lines {
		var fields map[string]string
		if kind != "" {
			fields, err = scms.ParseFields(line)
			if err == nil && fields["kind"] != kind {
				continue
			}
		} else {
			fields, err = scms.ParseStatus(line)
		}
		if err != nil {
			return nil, fmt.Errorf("scmsdrv: %w", err)
		}
		row, err := schema.BuildRow(g, gm, func(native string) (any, bool) {
			return resolve(native, fields)
		})
		if err != nil {
			return nil, err
		}
		b.Append(row...)
	}
	full, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}

// clusterKind returns the CLUSTER line kind tag serving a GLUE group, or
// "" for per-host groups.
func clusterKind(group string) string {
	switch group {
	case glue.GroupComputeElement:
		return "ce"
	case glue.GroupStorageElement:
		return "se"
	case glue.GroupNetworkElement:
		return "ne"
	}
	return ""
}

// resolve maps "key", "key|int" or "key|float" natives onto parsed status
// fields.
func resolve(native string, fields map[string]string) (any, bool) {
	name, conv, _ := strings.Cut(native, "|")
	v, ok := fields[name]
	if !ok {
		return nil, false
	}
	switch conv {
	case "int":
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, false
		}
		return n, true
	case "float":
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, false
		}
		return f, true
	case "":
		return v, true
	}
	return nil, false
}

// Schema returns the driver's GLUE mapping. Native names are SCMS status
// keys, optionally suffixed "|int" or "|float". SCMS is the only bundled
// driver that fills the full CPU identity (model, vendor, clock, cache)
// AND OS version, but it knows nothing about disks or the network.
func Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: DriverName,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "Model", Native: "cpu_model"},
				{GLUEField: "Vendor", Native: "cpu_vendor"},
				{GLUEField: "ClockSpeed", Native: "cpu_mhz|int"},
				{GLUEField: "CacheSize", Native: "cpu_cache_kb|int"},
				{GLUEField: "CPUCount", Native: "ncpus|int"},
				{GLUEField: "LoadLast1Min", Native: "load1|float"},
				{GLUEField: "LoadLast5Min", Native: "load5|float"},
				{GLUEField: "LoadLast15Min", Native: "load15|float"},
				{GLUEField: "Utilization", Native: "util|float"},
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "RAMSize", Native: "mem_total_mb|int"},
				{GLUEField: "RAMAvailable", Native: "mem_free_mb|int"},
			}},
			glue.GroupOperatingSystem: {Group: glue.GroupOperatingSystem, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "Name", Native: "os_name"},
				{GLUEField: "Release", Native: "os_release"},
				{GLUEField: "Version", Native: "os_version"},
				{GLUEField: "Uptime", Native: "uptime_s|int"},
				// BootTime is not an SCMS field → NULL.
			}},
			glue.GroupComputeElement: {Group: glue.GroupComputeElement, Fields: []schema.FieldMapping{
				{GLUEField: "CEId", Native: "id"},
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "LRMSType", Native: "lrms"},
				{GLUEField: "TotalCPUs", Native: "total_cpus|int"},
				{GLUEField: "FreeCPUs", Native: "free_cpus|int"},
				{GLUEField: "RunningJobs", Native: "running|int"},
				{GLUEField: "WaitingJobs", Native: "waiting|int"},
				{GLUEField: "Status", Native: "status"},
			}},
			glue.GroupStorageElement: {Group: glue.GroupStorageElement, Fields: []schema.FieldMapping{
				{GLUEField: "SEId", Native: "id"},
				{GLUEField: "HostName", Native: "host"},
				{GLUEField: "Protocol", Native: "protocol"},
				{GLUEField: "TotalSize", Native: "total_gb|int"},
				{GLUEField: "UsedSize", Native: "used_gb|int"},
				{GLUEField: "Status", Native: "status"},
			}},
			glue.GroupNetworkElement: {Group: glue.GroupNetworkElement, Fields: []schema.FieldMapping{
				{GLUEField: "Name", Native: "name"},
				{GLUEField: "Type", Native: "type"},
				{GLUEField: "PortCount", Native: "ports|int"},
				{GLUEField: "Status", Native: "status"},
			}},
		},
	}
}
