package scmsdrv

import (
	"testing"

	"gridrm/internal/agents/scms"
	"gridrm/internal/agents/sim"
	"gridrm/internal/driver"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
)

type fixture struct {
	site  *sim.Site
	agent *scms.Agent
	drv   *Driver
	url   string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	site := sim.New(sim.Config{Name: "sc", Hosts: 3, Seed: 13})
	site.StepN(3)
	agent, err := scms.NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	sm := schema.NewManager()
	if err := sm.Register(Schema()); err != nil {
		t.Fatal(err)
	}
	return &fixture{site: site, agent: agent, drv: New(sm), url: "gridrm:scms://" + agent.Addr()}
}

func (f *fixture) query(t *testing.T, sql string) *resultset.ResultSet {
	t.Helper()
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rs, err := stmt.ExecuteQuery(sql)
	if err != nil {
		t.Fatalf("ExecuteQuery(%q): %v", sql, err)
	}
	return rs
}

func TestAcceptsAndConnect(t *testing.T) {
	f := newFixture(t)
	if !f.drv.AcceptsURL("gridrm:scms://h") || !f.drv.AcceptsURL("gridrm://h") ||
		f.drv.AcceptsURL("gridrm:nws://h") {
		t.Error("AcceptsURL wrong")
	}
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Errorf("ping: %v", err)
	}
	info := conn.(driver.MetadataProvider).SourceInfo()
	if info.Protocol != "scms" || len(info.Groups) != 6 {
		t.Errorf("info %+v", info)
	}
}

func TestProcessorIdentityComplete(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM Processor ORDER BY HostName")
	if rs.Len() != 3 {
		t.Fatalf("rows = %d", rs.Len())
	}
	snap, _ := f.site.Snapshot(f.site.HostNames()[0])
	rs.Next()
	if v, _ := rs.GetString("Model"); v != snap.CPU.Model {
		t.Errorf("Model = %q, want %q", v, snap.CPU.Model)
	}
	if v, _ := rs.GetString("Vendor"); v != snap.CPU.Vendor {
		t.Errorf("Vendor = %q", v)
	}
	if v, _ := rs.GetInt("ClockSpeed"); v != snap.CPU.ClockMHz {
		t.Errorf("ClockSpeed = %d", v)
	}
	if v, _ := rs.GetInt("CacheSize"); v != snap.CPU.CacheKB {
		t.Errorf("CacheSize = %d", v)
	}
	if v, _ := rs.GetInt("CPUCount"); v != snap.CPU.Count {
		t.Errorf("CPUCount = %d", v)
	}
	if v, _ := rs.GetFloat("LoadLast1Min"); v != snap.Load1 {
		t.Errorf("Load = %v, want %v", v, snap.Load1)
	}
}

func TestOSAndMemory(t *testing.T) {
	f := newFixture(t)
	snap, _ := f.site.Snapshot(f.site.HostNames()[1])
	rs := f.query(t, "SELECT * FROM OperatingSystem WHERE HostName = '"+snap.Name+"'")
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if v, _ := rs.GetString("Version"); v != snap.OS.Version {
		t.Errorf("Version = %q, want %q", v, snap.OS.Version)
	}
	if v, _ := rs.GetInt("Uptime"); v != snap.OS.UptimeS {
		t.Errorf("Uptime = %d", v)
	}
	rs.GetTime("BootTime")
	if !rs.WasNull() {
		t.Error("BootTime should be NULL via SCMS")
	}
	rs = f.query(t, "SELECT * FROM Memory WHERE HostName = '"+snap.Name+"'")
	rs.Next()
	if v, _ := rs.GetInt("RAMSize"); v != snap.Mem.RAMMB {
		t.Errorf("RAMSize = %d", v)
	}
}

func TestDownHostsOmitted(t *testing.T) {
	f := newFixture(t)
	_ = f.site.SetHostDown(f.site.HostNames()[0], true)
	rs := f.query(t, "SELECT * FROM Processor")
	if rs.Len() != 2 {
		t.Errorf("rows = %d", rs.Len())
	}
}

func TestErrors(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Disk"); err == nil {
		t.Error("Disk accepted (SCMS has no disk data)")
	}
	if _, err := stmt.ExecuteQuery("garbage"); err == nil {
		t.Error("bad SQL accepted")
	}
	_ = conn.Close()
	if _, err := conn.CreateStatement(); err == nil {
		t.Error("statement after close")
	}
	if _, err := f.drv.Connect("gridrm:scms://127.0.0.1:1", driver.Properties{"timeout": "150ms"}); err == nil {
		t.Error("dead port accepted")
	}
}

func TestClusterElementGroups(t *testing.T) {
	f := newFixture(t)
	ce := f.site.ComputeElement()
	rs := f.query(t, "SELECT * FROM ComputeElement")
	if rs.Len() != 1 {
		t.Fatalf("CE rows = %d", rs.Len())
	}
	rs.Next()
	if id, _ := rs.GetString("CEId"); id != ce.ID {
		t.Errorf("CEId = %q", id)
	}
	if v, _ := rs.GetInt("TotalCPUs"); v != ce.TotalCPUs {
		t.Errorf("TotalCPUs = %d, want %d", v, ce.TotalCPUs)
	}
	if s, _ := rs.GetString("LRMSType"); s != "pbs" {
		t.Errorf("LRMSType = %q", s)
	}

	rs = f.query(t, "SELECT * FROM StorageElement")
	if rs.Len() != 1 {
		t.Fatalf("SE rows = %d", rs.Len())
	}
	rs.Next()
	se := f.site.StorageElements()[0]
	if v, _ := rs.GetInt("TotalSize"); v != se.TotalGB {
		t.Errorf("TotalSize = %d", v)
	}

	rs = f.query(t, "SELECT * FROM NetworkElement ORDER BY Name")
	if rs.Len() != 2 {
		t.Fatalf("NE rows = %d", rs.Len())
	}
	rs.Next()
	if typ, _ := rs.GetString("Type"); typ != "router" {
		t.Errorf("Type = %q", typ)
	}
	if n, _ := rs.GetInt("PortCount"); n != 8 {
		t.Errorf("PortCount = %d", n)
	}
}

func TestParseFields(t *testing.T) {
	m, err := scms.ParseFields("kind=ne|name=r1|ports=8")
	if err != nil || m["kind"] != "ne" || m["ports"] != "8" {
		t.Errorf("ParseFields = %v, %v", m, err)
	}
	if _, err := scms.ParseFields("noequals"); err == nil {
		t.Error("bad line accepted")
	}
}

func TestSchemaValid(t *testing.T) {
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
	if got := len(Schema().Groups); got != 6 {
		t.Errorf("groups = %d, want 6", got)
	}
}
