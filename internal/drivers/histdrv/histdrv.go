// Package histdrv implements the JDBC driver over the gateway's internal
// historical database — the "SQL" plug-in of the paper's Fig 2 Abstract
// Data Layer. It lets clients treat the gateway's own history store as just
// another data source: SQL in, ResultSets out, with the same GLUE groups
// plus the SourceURL and SampledAt provenance columns.
//
// URLs: gridrm:hist://local[/source-filter]. The driver only answers for
// the explicit "hist" protocol; it never volunteers during dynamic
// selection of network agents.
package histdrv

import (
	"fmt"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/history"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// DriverName is the registration name.
const DriverName = "jdbc-hist"

// Driver is the historical-store driver.
type Driver struct {
	store *history.Store
}

// New creates the driver bound to a history store.
func New(store *history.Store) *Driver { return &Driver{store: store} }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver: explicit "hist" protocol only.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	return err == nil && u.Protocol == "hist"
}

// Connect implements driver.Driver.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	if u.Protocol != "hist" {
		return nil, fmt.Errorf("histdrv: URL %s is not a hist: URL", url)
	}
	if d.store == nil {
		return nil, fmt.Errorf("histdrv: no history store bound")
	}
	var since, until time.Time
	if v := props.Get("since", ""); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return nil, fmt.Errorf("histdrv: bad since %q", v)
		}
		since = t
	}
	if v := props.Get("until", ""); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return nil, fmt.Errorf("histdrv: bad until %q", v)
		}
		until = t
	}
	return &Conn{drv: d, url: url, sourceFilter: u.Path, since: since, until: until}, nil
}

// Conn is a historical-store connection. The URL path, when present,
// restricts results to one recorded source URL; "since"/"until" properties
// (RFC 3339) bound the window.
type Conn struct {
	driver.UnimplementedConn
	drv          *Driver
	url          string
	sourceFilter string
	since, until time.Time
	closed       bool
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// Ping implements driver.Conn; the store is always reachable.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	return nil
}

// Close implements driver.Conn.
func (c *Conn) Close() error { c.closed = true; return nil }

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

// Stmt executes SQL against the history store.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { s.closed = true; return nil }

// ExecuteQuery implements driver.Stmt.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := glue.Lookup(q.Table); !ok {
		return nil, fmt.Errorf("histdrv: unknown group %q", q.Table)
	}
	rs, err := s.conn.drv.store.Query(q.Table, s.conn.sourceFilter, s.conn.since, s.conn.until)
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, rs)
}

// Schema returns the driver's GLUE mapping: every group, every field — the
// store holds whatever the harvesting driver produced, NULLs included.
func Schema() *schema.DriverSchema {
	ds := &schema.DriverSchema{Driver: DriverName, Groups: make(map[string]*schema.GroupMapping)}
	for _, g := range glue.Groups() {
		gm := &schema.GroupMapping{Group: g.Name}
		for _, f := range g.Fields {
			gm.Fields = append(gm.Fields, schema.FieldMapping{GLUEField: f.Name, Native: "stored:" + f.Name})
		}
		ds.Groups[g.Name] = gm
	}
	return ds
}
