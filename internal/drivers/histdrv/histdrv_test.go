package histdrv

import (
	"testing"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/history"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
)

const srcA = "gridrm:snmp://a:1"
const srcB = "gridrm:snmp://b:1"

func seedStore(t *testing.T) *history.Store {
	t.Helper()
	// The store's retention clock must live in the same era as the
	// simulated sample times.
	clock := func() time.Time { return time.Date(2003, 6, 1, 0, 5, 0, 0, time.UTC) }
	store := history.New(history.Options{Clock: clock})
	g := glue.MustLookup(glue.GroupMemory)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(host string, ram int64) *resultset.ResultSet {
		rs, err := resultset.NewBuilder(meta).
			Append(host, ram, ram/2, nil, nil, nil, nil).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	t0 := time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := store.Record(srcA, glue.GroupMemory, mk("a", 1024), t0); err != nil {
		t.Fatal(err)
	}
	if err := store.Record(srcA, glue.GroupMemory, mk("a", 1024), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := store.Record(srcB, glue.GroupMemory, mk("b", 512), t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	return store
}

func query(t *testing.T, conn driver.Conn, sql string) *resultset.ResultSet {
	t.Helper()
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rs, err := stmt.ExecuteQuery(sql)
	if err != nil {
		t.Fatalf("ExecuteQuery(%q): %v", sql, err)
	}
	return rs
}

func TestAcceptsURL(t *testing.T) {
	d := New(nil)
	if !d.AcceptsURL("gridrm:hist://local") {
		t.Error("hist URL rejected")
	}
	// Must never volunteer during dynamic scans of network agents.
	if d.AcceptsURL("gridrm://h:1") || d.AcceptsURL("gridrm:snmp://h:1") {
		t.Error("histdrv over-accepts")
	}
}

func TestQueryAll(t *testing.T) {
	d := New(seedStore(t))
	conn, err := d.Connect("gridrm:hist://local", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rs := query(t, conn, "SELECT * FROM Memory")
	if rs.Len() != 3 {
		t.Fatalf("rows = %d", rs.Len())
	}
	if rs.Metadata().ColumnIndex(history.SourceColumn) < 0 {
		t.Error("provenance column missing")
	}
	// WHERE over provenance columns works.
	rs = query(t, conn, "SELECT HostName FROM Memory WHERE SourceURL LIKE '%//b%'")
	if rs.Len() != 1 {
		t.Errorf("filtered rows = %d", rs.Len())
	}
}

func TestSourceFilterPath(t *testing.T) {
	d := New(seedStore(t))
	conn, err := d.Connect("gridrm:hist://local/"+srcA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rs := query(t, conn, "SELECT * FROM Memory")
	if rs.Len() != 2 {
		t.Errorf("source-filtered rows = %d", rs.Len())
	}
}

func TestTimeWindowProps(t *testing.T) {
	d := New(seedStore(t))
	conn, err := d.Connect("gridrm:hist://local", driver.Properties{
		"since": "2003-06-01T00:00:30Z",
		"until": "2003-06-01T00:01:30Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rs := query(t, conn, "SELECT * FROM Memory")
	if rs.Len() != 1 {
		t.Errorf("windowed rows = %d", rs.Len())
	}
	if _, err := d.Connect("gridrm:hist://local", driver.Properties{"since": "junk"}); err == nil {
		t.Error("bad since accepted")
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil).Connect("gridrm:hist://local", nil); err == nil {
		t.Error("nil store accepted")
	}
	d := New(seedStore(t))
	if _, err := d.Connect("gridrm:snmp://x", nil); err == nil {
		t.Error("non-hist URL accepted")
	}
	conn, _ := d.Connect("gridrm:hist://local", nil)
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Nope"); err == nil {
		t.Error("unknown group accepted")
	}
	_ = conn.Close()
	if err := conn.Ping(); err == nil {
		t.Error("ping after close")
	}
	if _, err := conn.CreateStatement(); err == nil {
		t.Error("statement after close")
	}
}

func TestSchemaCoversEverything(t *testing.T) {
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
	ds := Schema()
	if len(ds.Groups) != len(glue.Groups()) {
		t.Errorf("groups = %d", len(ds.Groups))
	}
	for _, g := range glue.Groups() {
		mapped, total := ds.Coverage(g.Name)
		if mapped != total {
			t.Errorf("group %s coverage %d/%d", g.Name, mapped, total)
		}
	}
}
