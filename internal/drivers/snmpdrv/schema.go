package snmpdrv

import (
	"gridrm/internal/glue"
	"gridrm/internal/schema"
)

// Schema returns the driver's GLUE mapping for registration with the
// SchemaManager. Native names for scalar fields are dotted OIDs; table
// groups use symbolic column names resolved inside the driver. GLUE fields
// real MIBs cannot supply (disk throughput, network latency, process user,
// virtual memory size) are deliberately unmapped and therefore NULL,
// exercising the paper's §3.1.4 translation rule.
func Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: DriverName,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "1.3.6.1.2.1.1.5.0"},
				{GLUEField: "Model", Native: "1.3.6.1.2.1.25.3.2.1.3.1"},
				{GLUEField: "Vendor", Native: "1.3.6.1.4.1.9999.1.2"},
				{GLUEField: "ClockSpeed", Native: "1.3.6.1.4.1.9999.1.1", Note: "vendor extension"},
				{GLUEField: "CacheSize", Native: "1.3.6.1.4.1.9999.1.3", Note: "vendor extension"},
				{GLUEField: "LoadLast1Min", Native: "1.3.6.1.4.1.2021.10.1.3.1"},
				{GLUEField: "LoadLast5Min", Native: "1.3.6.1.4.1.2021.10.1.3.2"},
				{GLUEField: "LoadLast15Min", Native: "1.3.6.1.4.1.2021.10.1.3.3"},
				{GLUEField: "Utilization", Native: "1.3.6.1.2.1.25.3.3.1.2.1"},
				// CPUCount is unmapped: deriving it needs a table walk the
				// scalar path does not perform → NULL.
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "1.3.6.1.2.1.1.5.0"},
				{GLUEField: "RAMSize", Native: "1.3.6.1.2.1.25.2.2.0", Note: "kb-to-mb"},
				{GLUEField: "RAMAvailable", Native: "1.3.6.1.4.1.2021.4.6.0", Note: "kb-to-mb"},
				{GLUEField: "SwapInRate", Native: "1.3.6.1.4.1.9999.1.4"},
				{GLUEField: "SwapOutRate", Native: "1.3.6.1.4.1.9999.1.5"},
				// VirtualSize/VirtualAvailable are not in HOST-RESOURCES → NULL.
			}},
			glue.GroupOperatingSystem: {Group: glue.GroupOperatingSystem, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "1.3.6.1.2.1.1.5.0"},
				{GLUEField: "Name", Native: "1.3.6.1.2.1.1.1.0", Note: "sysdescr-field-0"},
				{GLUEField: "Release", Native: "1.3.6.1.2.1.1.1.0", Note: "sysdescr-field-1"},
				{GLUEField: "Uptime", Native: "1.3.6.1.2.1.1.3.0", Note: "ticks-to-seconds"},
				{GLUEField: "BootTime", Native: "1.3.6.1.4.1.9999.1.6", Note: "unix-to-time"},
				// Version is only partially recoverable from sysDescr → NULL.
			}},
			glue.GroupDisk: {Group: glue.GroupDisk, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "sysName"},
				{GLUEField: "DeviceName", Native: "hrStorageDescr"},
				{GLUEField: "Size", Native: "hrStorageSize"},
				{GLUEField: "Available", Native: "hrStorageFree"},
				// ReadRate/WriteRate are not in HOST-RESOURCES → NULL.
			}},
			glue.GroupNetworkAdapter: {Group: glue.GroupNetworkAdapter, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "sysName"},
				{GLUEField: "InterfaceName", Native: "ifDescr"},
				{GLUEField: "IPAddress", Native: "ifAddr"},
				{GLUEField: "MTU", Native: "ifMtu"},
				{GLUEField: "Bandwidth", Native: "ifSpeed", Note: "bps-to-mbps"},
				{GLUEField: "BytesIn", Native: "ifInOctets"},
				{GLUEField: "BytesOut", Native: "ifOutOctets"},
				{GLUEField: "PacketsIn", Native: "ifInUcastPkts"},
				{GLUEField: "PacketsOut", Native: "ifOutUcastPkts"},
				// Latency is not measurable via SNMP → NULL.
			}},
			glue.GroupProcess: {Group: glue.GroupProcess, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "sysName"},
				{GLUEField: "PID", Native: "hrSWRunIndex"},
				{GLUEField: "Name", Native: "hrSWRunName"},
				{GLUEField: "State", Native: "hrSWRunStatus"},
				{GLUEField: "CPUPercent", Native: "hrSWRunPerfCPU"},
				{GLUEField: "MemoryKB", Native: "hrSWRunPerfMem"},
				// User is not in HOST-RESOURCES → NULL.
			}},
		},
	}
}
