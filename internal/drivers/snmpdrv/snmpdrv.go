// Package snmpdrv implements the JDBC-SNMP driver of the paper (Fig 3):
// SQL queries against GLUE groups are translated into fine-grained SNMP
// Get/GetNext requests, and the returned varbinds are mapped onto GLUE
// fields through the SchemaManager.
//
// Interaction style (paper §3.2.3): requests are fine-grained — scalar
// groups cost one Get round trip over the exact OIDs needed, table groups
// cost one GetNext walk of the relevant subtree — and "generally little or
// no parsing [is] required to read the native data value into the GridRM
// driver", so the driver carries no response cache.
//
// URLs: gridrm:snmp://host:port[/community] — the path overrides the
// "community" property. Protocol-less URLs (gridrm://host:port) are
// accepted and verified by a sysName probe at connect time, which is what
// lets the GridRMDriverManager locate this driver dynamically.
package snmpdrv

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"gridrm/internal/agents/snmp"
	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// DriverName is the registration name.
const DriverName = "jdbc-snmp"

// DefaultPort is the agent port assumed when the URL has none.
const DefaultPort = 1161

// Driver is the JDBC-SNMP driver.
type Driver struct {
	schemas *schema.Manager
}

// New creates the driver. The SchemaManager may be nil, in which case the
// built-in mapping is used without revalidation.
func New(sm *schema.Manager) *Driver { return &Driver{schemas: sm} }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver: the URL must parse and either name
// the snmp protocol or leave the protocol open for dynamic selection.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == "snmp"
}

// Connect implements driver.Driver: it opens a UDP client and verifies the
// agent by fetching sysName, so that dynamic selection only succeeds when
// the data source really speaks this protocol.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	community := props.Get("community", snmp.DefaultCommunity)
	if u.Path != "" {
		community = u.Path
	}
	timeout := 2 * time.Second
	if t := props.Get("timeout", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("snmpdrv: bad timeout %q", t)
		}
		timeout = parsed
	}
	client, err := snmp.Dial(u.Address(DefaultPort), community, timeout)
	if err != nil {
		return nil, fmt.Errorf("snmpdrv: %w", err)
	}
	vbs, err := client.Get(snmp.OIDSysName)
	if err != nil || len(vbs) == 0 || vbs[0].Value.Type != snmp.TypeString {
		_ = client.Close()
		return nil, fmt.Errorf("snmpdrv: %s does not answer as an SNMP agent: %v", url, err)
	}
	conn := &Conn{drv: d, client: client, url: url, sysName: vbs[0].Value.Str}
	conn.mapping, conn.gen = d.lookupSchema()
	return conn, nil
}

func (d *Driver) lookupSchema() (*schema.DriverSchema, int64) {
	if d.schemas == nil {
		return Schema(), 0
	}
	if ds, gen, ok := d.schemas.Lookup(DriverName); ok {
		return ds, gen
	}
	return Schema(), 0
}

// Conn is an SNMP driver connection. Per Fig 5, the schema mapping is
// cached when the connection is created.
type Conn struct {
	driver.UnimplementedConn
	drv     *Driver
	client  *snmp.Client
	url     string
	sysName string
	mapping *schema.DriverSchema
	gen     int64
	closed  bool
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// Ping implements driver.Conn with a sysUpTime fetch.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	_, err := c.client.Get(snmp.OIDSysUpTime)
	return err
}

// Close implements driver.Conn.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.client.Close()
}

// SourceInfo implements driver.MetadataProvider.
func (c *Conn) SourceInfo() driver.SourceInfo {
	return driver.SourceInfo{
		Protocol:     "snmp",
		AgentVersion: fmt.Sprintf("v%d", snmp.Version),
		Groups:       c.mapping.GroupNames(),
	}
}

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

// Stmt executes SQL against the agent.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error {
	s.closed = true
	return nil
}

// ExecuteQuery implements driver.Stmt: it parses the SQL, performs the
// native SNMP retrieval for the target group, builds GLUE rows via the
// SchemaManager mapping, and finishes WHERE/ORDER/LIMIT/projection locally.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	// Check schema-cache consistency before using the cached instance
	// (Fig 5).
	if s.conn.drv.schemas != nil && !s.conn.drv.schemas.Valid(DriverName, s.conn.gen) {
		s.conn.mapping, s.conn.gen = s.conn.drv.lookupSchema()
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("snmpdrv: unknown group %q", q.Table)
	}
	gm, ok := s.conn.mapping.Groups[g.Name]
	if !ok {
		return nil, fmt.Errorf("snmpdrv: group %s not supported by this driver", g.Name)
	}
	full, err := s.fetchGroup(g, gm)
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}

func (s *Stmt) fetchGroup(g *glue.Group, gm *schema.GroupMapping) (*resultset.ResultSet, error) {
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	switch g.Name {
	case glue.GroupProcessor, glue.GroupMemory, glue.GroupOperatingSystem:
		row, err := s.fetchScalarRow(g, gm)
		if err != nil {
			return nil, err
		}
		b.Append(row...)
	case glue.GroupDisk:
		if err := s.appendStorageRows(g, gm, b); err != nil {
			return nil, err
		}
	case glue.GroupNetworkAdapter:
		if err := s.appendIfRows(g, gm, b); err != nil {
			return nil, err
		}
	case glue.GroupProcess:
		if err := s.appendProcessRows(g, gm, b); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("snmpdrv: group %s not supported by this driver", g.Name)
	}
	return b.Build()
}

// fetchScalarRow performs one Get over every scalar OID the mapping needs
// and assembles the GLUE row directly (two mappings may pull different
// fields out of the same OID, e.g. OS Name and Release from sysDescr, so
// translation is per field, not per OID).
func (s *Stmt) fetchScalarRow(g *glue.Group, gm *schema.GroupMapping) ([]any, error) {
	oids := make([]snmp.OID, len(gm.Fields))
	for i, f := range gm.Fields {
		oid, err := snmp.ParseOID(f.Native)
		if err != nil {
			return nil, fmt.Errorf("snmpdrv: mapping for %s is not an OID: %w", f.GLUEField, err)
		}
		oids[i] = oid
	}
	// One fine-grained round trip for the whole scalar group. An error
	// status with varbinds means some OIDs are absent on this agent:
	// refetch individually so present values still translate and absent
	// ones become NULL. An error with no varbinds is a transport failure
	// and propagates.
	vbs, err := s.conn.client.Get(oids...)
	if err != nil {
		if len(vbs) == 0 {
			return nil, fmt.Errorf("snmpdrv: %w", err)
		}
		vbs = vbs[:0]
		for _, oid := range oids {
			single, gerr := s.conn.client.Get(oid)
			if gerr != nil {
				if len(single) == 0 {
					return nil, fmt.Errorf("snmpdrv: %w", gerr)
				}
				vbs = append(vbs, snmp.Varbind{OID: oid, Value: snmp.NullValue})
				continue
			}
			vbs = append(vbs, single[0])
		}
	}
	if len(vbs) != len(gm.Fields) {
		return nil, fmt.Errorf("snmpdrv: agent answered %d of %d varbinds", len(vbs), len(gm.Fields))
	}
	row := make([]any, len(g.Fields))
	for i, fm := range gm.Fields {
		f, ok := g.Field(fm.GLUEField)
		if !ok {
			continue
		}
		if v, ok := translate(vbs[i].Value, f, fm.Note); ok {
			row[g.FieldIndex(fm.GLUEField)] = v
		}
	}
	return row, nil
}

// translate converts one SNMP value to the GLUE field's kind, applying the
// unit conversion named by the mapping note.
func translate(v snmp.Value, f glue.Field, note string) (any, bool) {
	if v.Type == snmp.TypeNull {
		return nil, false
	}
	var out any
	switch v.Type {
	case snmp.TypeInt:
		out = v.Int
	case snmp.TypeCounter, snmp.TypeTicks:
		out = int64(v.Uint)
	case snmp.TypeString:
		out = v.Str
	default:
		return nil, false
	}
	// Unit conversions recorded in the mapping notes.
	switch note {
	case "kb-to-mb":
		n, ok := out.(int64)
		if !ok {
			return nil, false
		}
		out = n / 1024
	case "ticks-to-seconds":
		n, ok := out.(int64)
		if !ok {
			return nil, false
		}
		out = n / 100
	case "bps-to-mbps":
		n, ok := out.(int64)
		if !ok {
			return nil, false
		}
		out = float64(n) / 1e6
	case "centi-percent":
		n, ok := out.(int64)
		if !ok {
			return nil, false
		}
		out = float64(n) / 100
	case "unix-to-time":
		n, ok := out.(int64)
		if !ok {
			return nil, false
		}
		out = time.Unix(n, 0).UTC()
	case "sysdescr-field-0", "sysdescr-field-1", "sysdescr-field-2":
		str, ok := out.(string)
		if !ok {
			return nil, false
		}
		idx := int(note[len(note)-1] - '0')
		parts := strings.SplitN(str, " ", 3)
		if idx >= len(parts) {
			return nil, false
		}
		out = parts[idx]
	case "swrun-state":
		n, ok := out.(int64)
		if !ok {
			return nil, false
		}
		out = swRunState(n)
	}
	// Coerce to the field kind where the wire type is close enough.
	switch f.Kind {
	case glue.Float:
		switch x := out.(type) {
		case int64:
			out = float64(x)
		case string:
			fv, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return nil, false
			}
			out = fv
		}
	case glue.Int:
		if x, ok := out.(string); ok {
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, false
			}
			out = n
		}
	}
	if glue.CheckValue(f, out) != nil {
		return nil, false
	}
	return out, true
}

func swRunState(n int64) string {
	switch n {
	case 1:
		return "R"
	case 2:
		return "S"
	case 3:
		return "D"
	}
	return "Z"
}

// tableValues walks one SNMP table subtree and returns column → index →
// value.
func (s *Stmt) tableValues(prefix snmp.OID) (map[uint32]map[uint32]snmp.Value, error) {
	vbs, err := s.conn.client.Walk(prefix)
	if err != nil {
		return nil, err
	}
	table := make(map[uint32]map[uint32]snmp.Value)
	for _, vb := range vbs {
		if len(vb.OID) != len(prefix)+2 {
			continue
		}
		col, idx := vb.OID[len(prefix)], vb.OID[len(prefix)+1]
		if table[col] == nil {
			table[col] = make(map[uint32]snmp.Value)
		}
		table[col][idx] = vb.Value
	}
	return table, nil
}

func sortedIndices(col map[uint32]snmp.Value) []uint32 {
	out := make([]uint32, 0, len(col))
	for idx := range col {
		out = append(out, idx)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// appendStorageRows renders hrStorageTable disk rows (index ≥ 2; index 1 is
// physical memory).
func (s *Stmt) appendStorageRows(g *glue.Group, gm *schema.GroupMapping, b *resultset.Builder) error {
	table, err := s.tableValues(snmp.OIDHrStorage)
	if err != nil {
		return err
	}
	descr := table[snmp.HrStorageColDescr]
	size := table[snmp.HrStorageColSize]
	used := table[snmp.HrStorageColUsed]
	for _, idx := range sortedIndices(descr) {
		if idx < 2 {
			continue
		}
		values := map[string]any{"sysName": s.conn.sysName}
		if v := descr[idx]; v.Type == snmp.TypeString {
			values["hrStorageDescr"] = strings.TrimPrefix(v.Str, "/dev/")
		}
		var sz, us int64
		var haveSize, haveUsed bool
		if v, ok := size[idx]; ok && v.Type == snmp.TypeInt {
			sz, haveSize = v.Int, true
			values["hrStorageSize"] = sz
		}
		if v, ok := used[idx]; ok && v.Type == snmp.TypeInt {
			us, haveUsed = v.Int, true
		}
		if haveSize && haveUsed {
			values["hrStorageFree"] = sz - us
		}
		row, err := schema.BuildRow(g, gm, func(native string) (any, bool) {
			v, ok := values[native]
			return v, ok
		})
		if err != nil {
			return err
		}
		b.Append(row...)
	}
	return nil
}

// appendIfRows renders ifTable rows.
func (s *Stmt) appendIfRows(g *glue.Group, gm *schema.GroupMapping, b *resultset.Builder) error {
	table, err := s.tableValues(snmp.OIDIfTable)
	if err != nil {
		return err
	}
	descr := table[snmp.IfColDescr]
	for _, idx := range sortedIndices(descr) {
		values := map[string]any{"sysName": s.conn.sysName}
		put := func(native string, col uint32, conv func(snmp.Value) (any, bool)) {
			if v, ok := table[col][idx]; ok {
				if out, ok := conv(v); ok {
					values[native] = out
				}
			}
		}
		asStr := func(v snmp.Value) (any, bool) { return v.Str, v.Type == snmp.TypeString }
		asInt := func(v snmp.Value) (any, bool) {
			switch v.Type {
			case snmp.TypeInt:
				return v.Int, true
			case snmp.TypeCounter, snmp.TypeTicks:
				return int64(v.Uint), true
			}
			return nil, false
		}
		put("ifDescr", snmp.IfColDescr, asStr)
		put("ifAddr", snmp.IfColAddr, asStr)
		put("ifMtu", snmp.IfColMTU, asInt)
		put("ifSpeed", snmp.IfColSpeed, func(v snmp.Value) (any, bool) {
			if v.Type != snmp.TypeCounter {
				return nil, false
			}
			return float64(v.Uint) / 1e6, true
		})
		put("ifInOctets", snmp.IfColInOctets, asInt)
		put("ifOutOctets", snmp.IfColOutOctets, asInt)
		put("ifInUcastPkts", snmp.IfColInPkts, asInt)
		put("ifOutUcastPkts", snmp.IfColOutPkts, asInt)
		row, err := schema.BuildRow(g, gm, func(native string) (any, bool) {
			v, ok := values[native]
			return v, ok
		})
		if err != nil {
			return err
		}
		b.Append(row...)
	}
	return nil
}

// appendProcessRows renders hrSWRun + hrSWRunPerf rows.
func (s *Stmt) appendProcessRows(g *glue.Group, gm *schema.GroupMapping, b *resultset.Builder) error {
	run, err := s.tableValues(snmp.OIDHrSWRun)
	if err != nil {
		return err
	}
	perf, err := s.tableValues(snmp.OIDHrSWRunPerf)
	if err != nil {
		return err
	}
	pids := run[snmp.HrSWRunColIndex]
	for _, idx := range sortedIndices(pids) {
		values := map[string]any{"sysName": s.conn.sysName}
		if v := pids[idx]; v.Type == snmp.TypeInt {
			values["hrSWRunIndex"] = v.Int
		}
		if v, ok := run[snmp.HrSWRunColName][idx]; ok && v.Type == snmp.TypeString {
			values["hrSWRunName"] = v.Str
		}
		if v, ok := run[snmp.HrSWRunColStatus][idx]; ok && v.Type == snmp.TypeInt {
			values["hrSWRunStatus"] = swRunState(v.Int)
		}
		if v, ok := perf[snmp.HrSWRunPerfColCPU][idx]; ok && v.Type == snmp.TypeInt {
			values["hrSWRunPerfCPU"] = float64(v.Int) / 100
		}
		if v, ok := perf[snmp.HrSWRunPerfColMem][idx]; ok && v.Type == snmp.TypeInt {
			values["hrSWRunPerfMem"] = v.Int
		}
		row, err := schema.BuildRow(g, gm, func(native string) (any, bool) {
			v, ok := values[native]
			return v, ok
		})
		if err != nil {
			return err
		}
		b.Append(row...)
	}
	return nil
}
