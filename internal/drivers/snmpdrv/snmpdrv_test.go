package snmpdrv

import (
	"strings"
	"testing"
	"time"

	"gridrm/internal/agents/sim"
	"gridrm/internal/agents/snmp"
	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
)

type fixture struct {
	site  *sim.Site
	agent *snmp.Agent
	drv   *Driver
	sm    *schema.Manager
	url   string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	site := sim.New(sim.Config{Name: "s", Hosts: 2, Seed: 21})
	site.StepN(5)
	agent, err := snmp.NewAgent(site, snmp.AgentConfig{Host: site.HostNames()[0]})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	sm := schema.NewManager()
	if err := sm.Register(Schema()); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		site:  site,
		agent: agent,
		drv:   New(sm),
		sm:    sm,
		url:   "gridrm:snmp://" + agent.Addr(),
	}
}

func (f *fixture) query(t *testing.T, sql string) *resultset.ResultSet {
	t.Helper()
	conn, err := f.drv.Connect(f.url, driver.Properties{"timeout": "2s"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rs, err := stmt.ExecuteQuery(sql)
	if err != nil {
		t.Fatalf("ExecuteQuery(%q): %v", sql, err)
	}
	return rs
}

func TestAcceptsURL(t *testing.T) {
	d := New(nil)
	cases := map[string]bool{
		"gridrm:snmp://h:1":    true,
		"gridrm://h:1":         true,
		"gridrm:ganglia://h:1": false,
		"nonsense":             false,
	}
	for url, want := range cases {
		if got := d.AcceptsURL(url); got != want {
			t.Errorf("AcceptsURL(%q) = %v", url, got)
		}
	}
	if d.Name() != DriverName || d.Version() == "" {
		t.Error("identity")
	}
}

func TestConnectProbeRejectsNonAgent(t *testing.T) {
	f := newFixture(t)
	// Nothing listens on this UDP port pairing with high probability.
	_, err := f.drv.Connect("gridrm:snmp://127.0.0.1:1", driver.Properties{"timeout": "150ms"})
	if err == nil {
		t.Error("connect to dead port succeeded")
	}
	if _, err := f.drv.Connect("gridrm:snmp://h:1", driver.Properties{"timeout": "junk"}); err == nil {
		t.Error("bad timeout accepted")
	}
}

func TestProcessorRow(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM Processor")
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	snap, _ := f.site.Snapshot(f.agent.Host())
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != snap.Name {
		t.Errorf("HostName = %q", h)
	}
	if m, _ := rs.GetString("Model"); m != snap.CPU.Model {
		t.Errorf("Model = %q", m)
	}
	if v, _ := rs.GetInt("ClockSpeed"); v != snap.CPU.ClockMHz {
		t.Errorf("ClockSpeed = %d", v)
	}
	if l, _ := rs.GetFloat("LoadLast1Min"); l != snap.Load1 {
		t.Errorf("Load1 = %v, want %v", l, snap.Load1)
	}
	if l, _ := rs.GetFloat("LoadLast15Min"); l != snap.Load15 {
		t.Errorf("Load15 = %v", l)
	}
	// CPUCount is deliberately unmapped → NULL.
	if _, err := rs.GetInt("CPUCount"); err != nil {
		t.Fatal(err)
	}
	if !rs.WasNull() {
		t.Error("CPUCount should be NULL for the SNMP driver")
	}
}

func TestMemoryRow(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM Memory")
	snap, _ := f.site.Snapshot(f.agent.Host())
	rs.Next()
	if v, _ := rs.GetInt("RAMSize"); v != snap.Mem.RAMMB {
		t.Errorf("RAMSize = %d, want %d", v, snap.Mem.RAMMB)
	}
	if v, _ := rs.GetInt("RAMAvailable"); v != snap.Mem.RAMAvailMB {
		t.Errorf("RAMAvailable = %d, want %d", v, snap.Mem.RAMAvailMB)
	}
	if v, _ := rs.GetFloat("SwapInRate"); v != snap.Mem.SwapInPerSec {
		t.Errorf("SwapInRate = %v", v)
	}
	if _, err := rs.GetInt("VirtualSize"); err != nil {
		t.Fatal(err)
	}
	if !rs.WasNull() {
		t.Error("VirtualSize should be NULL")
	}
}

func TestOperatingSystemRow(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM OperatingSystem")
	snap, _ := f.site.Snapshot(f.agent.Host())
	rs.Next()
	if v, _ := rs.GetString("Name"); v != snap.OS.Name {
		t.Errorf("Name = %q", v)
	}
	if v, _ := rs.GetString("Release"); v != snap.OS.Release {
		t.Errorf("Release = %q", v)
	}
	if v, _ := rs.GetInt("Uptime"); v != snap.OS.UptimeS {
		t.Errorf("Uptime = %d, want %d", v, snap.OS.UptimeS)
	}
	if v, _ := rs.GetTime("BootTime"); !v.Equal(snap.OS.BootTime) {
		t.Errorf("BootTime = %v, want %v", v, snap.OS.BootTime)
	}
}

func TestDiskRows(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM Disk ORDER BY DeviceName")
	snap, _ := f.site.Snapshot(f.agent.Host())
	if rs.Len() != len(snap.Disks) {
		t.Fatalf("rows = %d, want %d", rs.Len(), len(snap.Disks))
	}
	for i := 0; rs.Next(); i++ {
		if d, _ := rs.GetString("DeviceName"); d != snap.Disks[i].Device {
			t.Errorf("device = %q", d)
		}
		if v, _ := rs.GetInt("Size"); v != snap.Disks[i].SizeMB {
			t.Errorf("size = %d", v)
		}
		if v, _ := rs.GetInt("Available"); v != snap.Disks[i].AvailMB {
			t.Errorf("avail = %d", v)
		}
		rs.GetFloat("ReadRate")
		if !rs.WasNull() {
			t.Error("ReadRate should be NULL")
		}
	}
}

func TestNetworkAdapterRows(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM NetworkAdapter")
	snap, _ := f.site.Snapshot(f.agent.Host())
	if rs.Len() != len(snap.Nics) {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	nic := snap.Nics[0]
	if v, _ := rs.GetString("InterfaceName"); v != nic.Name {
		t.Errorf("interface = %q", v)
	}
	if v, _ := rs.GetString("IPAddress"); v != nic.IP {
		t.Errorf("ip = %q", v)
	}
	if v, _ := rs.GetFloat("Bandwidth"); v != nic.BandwidthMbps {
		t.Errorf("bandwidth = %v", v)
	}
	if v, _ := rs.GetInt("BytesIn"); v != nic.BytesIn {
		t.Errorf("bytesIn = %d, want %d", v, nic.BytesIn)
	}
	rs.GetFloat("Latency")
	if !rs.WasNull() {
		t.Error("Latency should be NULL")
	}
}

func TestProcessRows(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT * FROM Process ORDER BY PID")
	snap, _ := f.site.Snapshot(f.agent.Host())
	if rs.Len() != len(snap.Procs) {
		t.Fatalf("rows = %d, want %d", rs.Len(), len(snap.Procs))
	}
	rs.Next()
	if pid, _ := rs.GetInt("PID"); pid <= 0 {
		t.Errorf("pid = %d", pid)
	}
	if name, _ := rs.GetString("Name"); name == "" {
		t.Error("empty process name")
	}
	rs.GetString("User")
	if !rs.WasNull() {
		t.Error("User should be NULL")
	}
}

func TestWherePushedThroughDriver(t *testing.T) {
	f := newFixture(t)
	rs := f.query(t, "SELECT DeviceName FROM Disk WHERE DeviceName = 'sda'")
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	if rs.Metadata().ColumnCount() != 1 {
		t.Error("projection not applied")
	}
}

func TestUnsupportedGroup(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM ComputeElement"); err == nil {
		t.Error("unsupported group accepted")
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM NoSuchGroup"); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := stmt.ExecuteQuery("not sql"); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestPingAndClose(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Ping(); err != nil {
		t.Errorf("ping: %v", err)
	}
	if mp, ok := conn.(driver.MetadataProvider); !ok {
		t.Error("no metadata provider")
	} else if info := mp.SourceInfo(); info.Protocol != "snmp" || len(info.Groups) != 6 {
		t.Errorf("source info %+v", info)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Ping(); err == nil {
		t.Error("ping after close succeeded")
	}
	if _, err := conn.CreateStatement(); err == nil {
		t.Error("statement after close")
	}
	if err := conn.Close(); err != nil {
		t.Error("double close")
	}
}

func TestSchemaCacheRevalidation(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	rs, err := stmt.ExecuteQuery("SELECT * FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	rs.Next()
	if v, _ := rs.GetString("Vendor"); v == "" {
		t.Fatal("vendor missing before remap")
	}
	// Re-register a narrower mapping: the live statement must pick it up
	// (Fig 5 cache-consistency check).
	narrowed := Schema()
	fields := narrowed.Groups[glue.GroupProcessor].Fields
	kept := fields[:0]
	for _, fm := range fields {
		if fm.GLUEField != "Vendor" {
			kept = append(kept, fm)
		}
	}
	narrowed.Groups[glue.GroupProcessor].Fields = kept
	if err := f.sm.Register(narrowed); err != nil {
		t.Fatal(err)
	}
	rs, err = stmt.ExecuteQuery("SELECT * FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	rs.Next()
	rs.GetString("Vendor")
	if !rs.WasNull() {
		t.Error("stale schema used after re-registration")
	}
}

func TestHostDownTimesOut(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, driver.Properties{"timeout": "150ms"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = f.site.SetHostDown(f.agent.Host(), true)
	stmt, _ := conn.CreateStatement()
	start := time.Now()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err == nil {
		t.Error("query against down host succeeded")
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("failure was not a timeout")
	}
}

func TestSchemaRegistrationValid(t *testing.T) {
	// The shipped mapping must validate against GLUE.
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
	groups := Schema().GroupNames()
	want := []string{glue.GroupDisk, glue.GroupMemory, glue.GroupNetworkAdapter,
		glue.GroupOperatingSystem, glue.GroupProcess, glue.GroupProcessor}
	if strings.Join(groups, ",") != strings.Join(want, ",") {
		t.Errorf("groups = %v", groups)
	}
}
