package snmpdrv

import (
	"testing"
	"time"

	"gridrm/internal/agents/snmp"
	"gridrm/internal/glue"
)

func TestTranslateConversions(t *testing.T) {
	intField := glue.Field{Name: "i", Kind: glue.Int}
	floatField := glue.Field{Name: "f", Kind: glue.Float}
	strField := glue.Field{Name: "s", Kind: glue.String}
	timeField := glue.Field{Name: "t", Kind: glue.Time}

	cases := []struct {
		name string
		v    snmp.Value
		f    glue.Field
		note string
		want any
		ok   bool
	}{
		{"null is absent", snmp.NullValue, intField, "", nil, false},
		{"int passthrough", snmp.IntValue(42), intField, "", int64(42), true},
		{"counter to int", snmp.CounterValue(7), intField, "", int64(7), true},
		{"ticks to seconds", snmp.TicksValue(12345), intField, "ticks-to-seconds", int64(123), true},
		{"kb to mb", snmp.IntValue(2048), intField, "kb-to-mb", int64(2), true},
		{"bps to mbps", snmp.CounterValue(100_000_000), floatField, "bps-to-mbps", 100.0, true},
		{"centi percent", snmp.IntValue(250), floatField, "centi-percent", 2.5, true},
		{"string load to float", snmp.StringValue("1.25"), floatField, "", 1.25, true},
		{"junk string to float", snmp.StringValue("n/a"), floatField, "", nil, false},
		{"string to int", snmp.StringValue("17"), intField, "", int64(17), true},
		{"int widens to float", snmp.IntValue(3), floatField, "", 3.0, true},
		{"string passthrough", snmp.StringValue("x"), strField, "", "x", true},
		{"unix to time", snmp.IntValue(1054425600), timeField, "unix-to-time",
			time.Unix(1054425600, 0).UTC(), true},
		{"sysdescr field 0", snmp.StringValue("Linux 2.4.20 Red Hat 9"), strField,
			"sysdescr-field-0", "Linux", true},
		{"sysdescr field 1", snmp.StringValue("Linux 2.4.20 Red Hat 9"), strField,
			"sysdescr-field-1", "2.4.20", true},
		{"sysdescr out of range", snmp.StringValue("only"), strField,
			"sysdescr-field-2", nil, false},
		{"swrun state running", snmp.IntValue(1), strField, "swrun-state", "R", true},
		{"swrun state invalid", snmp.IntValue(4), strField, "swrun-state", "Z", true},
		{"kb-to-mb on string fails", snmp.StringValue("x"), intField, "kb-to-mb", nil, false},
		{"int into string field fails", snmp.IntValue(1), strField, "", nil, false},
	}
	for _, c := range cases {
		got, ok := translate(c.v, c.f, c.note)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if tv, isTime := c.want.(time.Time); isTime {
			if !got.(time.Time).Equal(tv) {
				t.Errorf("%s: got %v, want %v", c.name, got, tv)
			}
			continue
		}
		if got != c.want {
			t.Errorf("%s: got %#v, want %#v", c.name, got, c.want)
		}
	}
}

func TestSwRunStateMapping(t *testing.T) {
	want := map[int64]string{1: "R", 2: "S", 3: "D", 4: "Z", 99: "Z"}
	for in, out := range want {
		if got := swRunState(in); got != out {
			t.Errorf("swRunState(%d) = %q, want %q", in, got, out)
		}
	}
}
