package nwsdrv

import (
	"math"
	"testing"
	"time"

	"gridrm/internal/agents/nws"
	"gridrm/internal/agents/sim"
	"gridrm/internal/driver"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
)

type fixture struct {
	site  *sim.Site
	agent *nws.Agent
	drv   *Driver
	url   string
	now   *time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	site := sim.New(sim.Config{Name: "n", Hosts: 2, Seed: 8})
	site.StepN(3)
	agent, err := nws.NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	agent.Sample()
	sm := schema.NewManager()
	if err := sm.Register(Schema()); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0)
	drv := New(sm)
	drv.SetClock(func() time.Time { return now })
	return &fixture{site: site, agent: agent, drv: drv,
		url: "gridrm:nws://" + agent.Addr(), now: &now}
}

func (f *fixture) query(t *testing.T, conn driver.Conn, sql string) *resultset.ResultSet {
	t.Helper()
	stmt, err := conn.CreateStatement()
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rs, err := stmt.ExecuteQuery(sql)
	if err != nil {
		t.Fatalf("ExecuteQuery(%q): %v", sql, err)
	}
	return rs
}

func TestAcceptsAndConnect(t *testing.T) {
	f := newFixture(t)
	if !f.drv.AcceptsURL("gridrm:nws://h") || !f.drv.AcceptsURL("gridrm://h") ||
		f.drv.AcceptsURL("gridrm:snmp://h") {
		t.Error("AcceptsURL wrong")
	}
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Errorf("ping: %v", err)
	}
	if _, err := f.drv.Connect("gridrm:nws://127.0.0.1:1", driver.Properties{"timeout": "150ms"}); err == nil {
		t.Error("dead port accepted")
	}
}

func TestMeasurementRows(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	snap, _ := f.site.Snapshot(f.site.HostNames()[0])
	rs := f.query(t, conn, "SELECT * FROM Memory ORDER BY HostName")
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if v, _ := rs.GetInt("RAMAvailable"); v != snap.Mem.RAMAvailMB {
		t.Errorf("RAMAvailable = %d, want %d", v, snap.Mem.RAMAvailMB)
	}
	rs.GetInt("RAMSize")
	if !rs.WasNull() {
		t.Error("RAMSize should be NULL via NWS")
	}
	rs = f.query(t, conn, "SELECT * FROM NetworkAdapter WHERE HostName = '"+snap.Name+"'")
	rs.Next()
	if v, _ := rs.GetFloat("Latency"); v != snap.Nics[0].LatencyMs {
		t.Errorf("Latency = %v, want %v", v, snap.Nics[0].LatencyMs)
	}
	if v, _ := rs.GetFloat("Bandwidth"); v != 100 {
		t.Errorf("Bandwidth = %v", v)
	}
	rs = f.query(t, conn, "SELECT * FROM Processor WHERE HostName = '"+snap.Name+"'")
	rs.Next()
	util, _ := rs.GetFloat("Utilization")
	if math.Abs(util-snap.UtilPct) > 0.02 {
		t.Errorf("Utilization = %v, want ≈%v", util, snap.UtilPct)
	}
}

func TestStateCache(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, driver.Properties{"cache_ttl": "1s"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := conn.(*Conn)
	f.query(t, conn, "SELECT * FROM Memory")
	f.query(t, conn, "SELECT * FROM Processor")
	if c.Fetches != 1 {
		t.Errorf("fetches within TTL = %d", c.Fetches)
	}
	*f.now = f.now.Add(2 * time.Second)
	f.query(t, conn, "SELECT * FROM Memory")
	if c.Fetches != 2 {
		t.Errorf("fetches after expiry = %d", c.Fetches)
	}
}

func TestForecastMode(t *testing.T) {
	f := newFixture(t)
	// Build a history so forecast differs from the last raw value.
	for i := 0; i < 15; i++ {
		f.site.Step()
		f.agent.Sample()
	}
	conn, err := f.drv.Connect(f.url, driver.Properties{"use_forecast": "true"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	host := f.site.HostNames()[0]
	rs := f.query(t, conn, "SELECT * FROM NetworkAdapter WHERE HostName = '"+host+"'")
	rs.Next()
	got, _ := rs.GetFloat("Latency")
	want, _, _ := f.agent.Forecast(host, nws.ResLatency)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("forecast latency = %v, want %v", got, want)
	}
}

func TestUnsupportedGroupAndClosed(t *testing.T) {
	f := newFixture(t)
	conn, err := f.drv.Connect(f.url, nil)
	if err != nil {
		t.Fatal(err)
	}
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Process"); err == nil {
		t.Error("Process accepted")
	}
	_ = conn.Close()
	if err := conn.Ping(); err == nil {
		t.Error("ping after close")
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM Memory"); err == nil {
		t.Error("query after close")
	}
}

func TestSchemaValid(t *testing.T) {
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
}
