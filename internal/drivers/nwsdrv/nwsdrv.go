// Package nwsdrv implements the JDBC-NWS driver: SQL queries against GLUE
// groups are answered from Network Weather Service measurement series.
//
// NWS is in the paper's coarse-grained camp (§3.2.3): each SERIES command
// returns a whole plain-text measurement history that must be parsed to
// extract one current value, so the driver caches the parsed site state per
// connection (property "cache_ttl", default 1s). The property
// "use_forecast" ("true") answers from NWS forecasts instead of the latest
// raw measurement — the ablation knob for what a forecasting source buys.
//
// URLs: gridrm:nws://host:port. Protocol-less URLs are accepted and
// verified by a LIST handshake at connect time.
package nwsdrv

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/sqlparse"
)

// DriverName is the registration name.
const DriverName = "jdbc-nws"

// DefaultPort is the NWS port assumed when the URL has none.
const DefaultPort = 8090

// DefaultCacheTTL is the per-connection state cache lifetime.
const DefaultCacheTTL = time.Second

// Driver is the JDBC-NWS driver.
type Driver struct {
	schemas *schema.Manager
	clock   func() time.Time
}

// New creates the driver; the SchemaManager may be nil.
func New(sm *schema.Manager) *Driver { return &Driver{schemas: sm, clock: time.Now} }

// SetClock injects a clock for cache tests.
func (d *Driver) SetClock(clock func() time.Time) { d.clock = clock }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	if err != nil {
		return false
	}
	return u.Protocol == "" || u.Protocol == "nws"
}

// Connect implements driver.Driver, verifying the agent with a LIST
// handshake.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	timeout := 2 * time.Second
	if t := props.Get("timeout", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("nwsdrv: bad timeout %q", t)
		}
		timeout = parsed
	}
	ttl := DefaultCacheTTL
	if t := props.Get("cache_ttl", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("nwsdrv: bad cache_ttl %q", t)
		}
		ttl = parsed
	}
	tcp, err := net.DialTimeout("tcp", u.Address(DefaultPort), timeout)
	if err != nil {
		return nil, fmt.Errorf("nwsdrv: %w", err)
	}
	conn := &Conn{
		drv:      d,
		tcp:      tcp,
		r:        bufio.NewReader(tcp),
		url:      url,
		timeout:  timeout,
		ttl:      ttl,
		forecast: props.Get("use_forecast", "") == "true",
	}
	conn.mapping, conn.gen = d.lookupSchema()
	if _, err := conn.listSeries(); err != nil {
		_ = tcp.Close()
		return nil, fmt.Errorf("nwsdrv: %s does not answer as an NWS agent: %w", url, err)
	}
	return conn, nil
}

func (d *Driver) lookupSchema() (*schema.DriverSchema, int64) {
	if d.schemas == nil {
		return Schema(), 0
	}
	if ds, gen, ok := d.schemas.Lookup(DriverName); ok {
		return ds, gen
	}
	return Schema(), 0
}

// Conn is an NWS driver connection holding the per-plug-in state cache.
type Conn struct {
	driver.UnimplementedConn
	drv      *Driver
	tcp      net.Conn
	r        *bufio.Reader
	url      string
	timeout  time.Duration
	ttl      time.Duration
	forecast bool
	mapping  *schema.DriverSchema
	gen      int64
	closed   bool

	state     map[string]map[string]float64 // host → resource → value
	fetchedAt time.Time
	// Fetches counts full state refreshes (E4's cache-miss cost).
	Fetches int64
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// Close implements driver.Conn.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.tcp.Close()
}

// Ping implements driver.Conn with a LIST round trip.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	_, err := c.listSeries()
	return err
}

// SourceInfo implements driver.MetadataProvider.
func (c *Conn) SourceInfo() driver.SourceInfo {
	return driver.SourceInfo{Protocol: "nws", Groups: c.mapping.GroupNames()}
}

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

func (c *Conn) send(cmd string) error {
	_ = c.tcp.SetDeadline(time.Now().Add(c.timeout))
	_, err := fmt.Fprintf(c.tcp, "%s\n", cmd)
	return err
}

func (c *Conn) readLine() (string, error) {
	_ = c.tcp.SetDeadline(time.Now().Add(c.timeout))
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// listSeries runs LIST and returns host → resources.
func (c *Conn) listSeries() (map[string][]string, error) {
	if err := c.send("LIST"); err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if strings.HasPrefix(line, "ERR") {
			return nil, fmt.Errorf("nwsdrv: %s", line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("nwsdrv: bad LIST line %q", line)
		}
		out[fields[0]] = append(out[fields[0]], fields[1])
	}
}

// latest fetches the most recent measurement of one series by reading (and
// parsing) the whole series response — the coarse path.
func (c *Conn) latest(host, resource string) (float64, bool, error) {
	if err := c.send("SERIES " + host + " " + resource); err != nil {
		return 0, false, err
	}
	header, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	var n int
	if _, err := fmt.Sscanf(header, "OK %d", &n); err != nil {
		return 0, false, fmt.Errorf("nwsdrv: bad SERIES header %q", header)
	}
	var last float64
	have := false
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return 0, false, err
		}
		var ts int64
		var v float64
		if _, err := fmt.Sscanf(line, "%d %g", &ts, &v); err != nil {
			return 0, false, fmt.Errorf("nwsdrv: bad series line %q", line)
		}
		last, have = v, true
	}
	if end, err := c.readLine(); err != nil || end != "END" {
		return 0, false, fmt.Errorf("nwsdrv: missing END (got %q, %v)", end, err)
	}
	return last, have, nil
}

// forecastValue fetches the NWS forecast of one series.
func (c *Conn) forecastValue(host, resource string) (float64, bool, error) {
	if err := c.send("FORECAST " + host + " " + resource); err != nil {
		return 0, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, false, err
	}
	if strings.HasPrefix(line, "ERR") {
		return 0, false, nil
	}
	var v, mse float64
	if _, err := fmt.Sscanf(line, "FORECAST %g %g", &v, &mse); err != nil {
		return 0, false, fmt.Errorf("nwsdrv: bad FORECAST line %q", line)
	}
	return v, true, nil
}

// siteState returns host → resource → value, through the TTL cache.
func (c *Conn) siteState() (map[string]map[string]float64, error) {
	now := c.drv.clock()
	if c.state != nil && c.ttl > 0 && now.Sub(c.fetchedAt) <= c.ttl {
		return c.state, nil
	}
	series, err := c.listSeries()
	if err != nil {
		return nil, err
	}
	state := make(map[string]map[string]float64, len(series))
	for host, resources := range series {
		state[host] = make(map[string]float64, len(resources))
		for _, res := range resources {
			var v float64
			var ok bool
			if c.forecast {
				v, ok, err = c.forecastValue(host, res)
			} else {
				v, ok, err = c.latest(host, res)
			}
			if err != nil {
				return nil, err
			}
			if ok {
				state[host][res] = v
			}
		}
	}
	c.state = state
	c.fetchedAt = c.drv.clock()
	c.Fetches++
	return state, nil
}

// Stmt executes SQL against NWS series.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { s.closed = true; return nil }

// ExecuteQuery implements driver.Stmt.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	if s.conn.drv.schemas != nil && !s.conn.drv.schemas.Valid(DriverName, s.conn.gen) {
		s.conn.mapping, s.conn.gen = s.conn.drv.lookupSchema()
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	g, ok := glue.Lookup(q.Table)
	if !ok {
		return nil, fmt.Errorf("nwsdrv: unknown group %q", q.Table)
	}
	gm, ok := s.conn.mapping.Groups[g.Name]
	if !ok {
		return nil, fmt.Errorf("nwsdrv: group %s not supported by this driver", g.Name)
	}
	state, err := s.conn.siteState()
	if err != nil {
		return nil, err
	}
	hosts := make([]string, 0, len(state))
	for h := range state {
		hosts = append(hosts, h)
	}
	for i := 1; i < len(hosts); i++ {
		for j := i; j > 0 && hosts[j] < hosts[j-1]; j-- {
			hosts[j], hosts[j-1] = hosts[j-1], hosts[j]
		}
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, host := range hosts {
		values := state[host]
		row, err := schema.BuildRow(g, gm, func(native string) (any, bool) {
			return resolve(native, host, values, g)
		})
		if err != nil {
			return nil, err
		}
		b.Append(row...)
	}
	full, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sqlparse.ApplyToResultSet(q, full)
}

// resolve maps natives ("hostname", "const:x", "<resource>" or
// "<resource>|conv") onto values for one host.
func resolve(native, host string, values map[string]float64, g *glue.Group) (any, bool) {
	if native == "hostname" {
		return host, true
	}
	if strings.HasPrefix(native, "const:") {
		return strings.TrimPrefix(native, "const:"), true
	}
	name, conv, _ := strings.Cut(native, "|")
	v, ok := values[name]
	if !ok {
		return nil, false
	}
	switch conv {
	case "avail-to-util":
		return (1 - v) * 100, true
	case "mb-int":
		return int64(v), true
	case "":
		return v, true
	}
	return nil, false
}
