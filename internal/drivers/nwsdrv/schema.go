package nwsdrv

import (
	"gridrm/internal/glue"
	"gridrm/internal/schema"
)

// Schema returns the driver's GLUE mapping. Native names are NWS resource
// series ("availableCpu", "bandwidthTcp", ...), optionally suffixed
// "|conversion". NWS measures conditions, not inventory, so identity
// fields beyond the host name are NULL — the sparsest mapping of the
// bundled drivers, and the only one that can fill NetworkAdapter.Latency.
func Schema() *schema.DriverSchema {
	return &schema.DriverSchema{
		Driver: DriverName,
		Groups: map[string]*schema.GroupMapping{
			glue.GroupProcessor: {Group: glue.GroupProcessor, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "Utilization", Native: "availableCpu|avail-to-util"},
				// Everything else is inventory NWS does not measure → NULL.
			}},
			glue.GroupMemory: {Group: glue.GroupMemory, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "RAMAvailable", Native: "freeMemory|mb-int"},
			}},
			glue.GroupDisk: {Group: glue.GroupDisk, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "DeviceName", Native: "const:total", Note: "NWS measures aggregate free space"},
				{GLUEField: "Available", Native: "freeDisk|mb-int"},
			}},
			glue.GroupNetworkAdapter: {Group: glue.GroupNetworkAdapter, Fields: []schema.FieldMapping{
				{GLUEField: "HostName", Native: "hostname"},
				{GLUEField: "InterfaceName", Native: "const:path", Note: "NWS measures the network path"},
				{GLUEField: "Bandwidth", Native: "bandwidthTcp"},
				{GLUEField: "Latency", Native: "latencyTcp"},
			}},
		},
	}
}
