package gatewaydrv

import (
	"context"
	"strings"
	"testing"

	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/drivers/memdrv"
	"gridrm/internal/glue"
	"gridrm/internal/schema"
	"gridrm/internal/security"
	"gridrm/internal/web"

	"net/http/httptest"
)

// childGateway builds a gateway with an in-memory source and serves it.
func childGateway(t *testing.T, name string, hosts []string) (*core.Gateway, string) {
	t.Helper()
	gw := core.New(core.Config{Name: name})
	t.Cleanup(gw.Close)
	backend := memdrv.NewBackend(hosts)
	d := memdrv.New("jdbc-mem", "mem", backend)
	if err := gw.RegisterDriver(d, d.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := gw.AddSource(core.SourceConfig{URL: "gridrm:mem://" + name + ":1"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(web.NewServer(gw, nil, nil))
	t.Cleanup(srv.Close)
	return gw, "gridrm:gridrm://" + strings.TrimPrefix(srv.URL, "http://")
}

func TestAcceptsURL(t *testing.T) {
	d := New(nil)
	if !d.AcceptsURL("gridrm:gridrm://h:1") {
		t.Error("gridrm URL rejected")
	}
	// Never volunteers for plain agent URLs.
	if d.AcceptsURL("gridrm://h:1") || d.AcceptsURL("gridrm:snmp://h:1") {
		t.Error("over-accepts")
	}
}

func TestChildQuery(t *testing.T) {
	_, url := childGateway(t, "child", []string{"c1", "c2"})
	d := New(nil)
	conn, err := d.Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Errorf("ping: %v", err)
	}
	if got := conn.(*Conn).ChildSite(); got != "child" {
		t.Errorf("child site %q", got)
	}
	stmt, _ := conn.CreateStatement()
	rs, err := stmt.ExecuteQuery("SELECT HostName FROM Processor ORDER BY HostName")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != "c1" {
		t.Errorf("host = %q", h)
	}
}

func TestHierarchy(t *testing.T) {
	// Parent gateway whose only data sources are two child gateways: the
	// "hierarchy of GridRM Gateways" of §2.
	_, urlA := childGateway(t, "childA", []string{"a1", "a2"})
	_, urlB := childGateway(t, "childB", []string{"b1"})

	parent := core.New(core.Config{Name: "parent"})
	defer parent.Close()
	if err := parent.RegisterDriver(New(parent.SchemaManager()), Schema()); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{urlA, urlB} {
		if err := parent.AddSource(core.SourceConfig{URL: u}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := parent.QueryContext(context.Background(), core.QueryOptions{
		Principal: security.Principal{Name: "top"},
		SQL:       "SELECT HostName, LoadLast1Min FROM Processor ORDER BY HostName",
		Mode:      core.ModeRealTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ResultSet.Len() != 3 {
		t.Fatalf("aggregated rows = %d; %+v", resp.ResultSet.Len(), resp.Sources)
	}
	var hosts []string
	for resp.ResultSet.Next() {
		h, _ := resp.ResultSet.GetString("HostName")
		hosts = append(hosts, h)
	}
	if strings.Join(hosts, ",") != "a1,a2,b1" {
		t.Errorf("hosts %v", hosts)
	}
	for _, s := range resp.Sources {
		if s.Driver != DriverName || s.Err != "" {
			t.Errorf("status %+v", s)
		}
	}
}

func TestDeferredSecurity(t *testing.T) {
	// The child's own CGSL decides: the parent forwards the principal it
	// was configured with, and the child denies it.
	coarse := security.NewCoarsePolicy(security.Deny)
	coarse.Add(security.CoarseRule{Principal: "trusted", Decision: security.Allow})
	gw := core.New(core.Config{Name: "locked", Coarse: coarse})
	t.Cleanup(gw.Close)
	backend := memdrv.NewBackend([]string{"x"})
	d := memdrv.New("jdbc-mem", "mem", backend)
	_ = gw.RegisterDriver(d, d.Schema())
	_ = gw.AddSource(core.SourceConfig{URL: "gridrm:mem://locked:1"})
	srv := httptest.NewServer(web.NewServer(gw, nil, nil))
	t.Cleanup(srv.Close)
	url := "gridrm:gridrm://" + strings.TrimPrefix(srv.URL, "http://")

	drv := New(nil)
	conn, err := drv.Connect(url, driver.Properties{"user": "stranger"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("SELECT * FROM Processor"); err == nil {
		t.Error("child CGSL did not deny the stranger")
	}
	conn2, err := drv.Connect(url, driver.Properties{"user": "trusted"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	stmt2, _ := conn2.CreateStatement()
	if _, err := stmt2.ExecuteQuery("SELECT * FROM Processor"); err != nil {
		t.Errorf("trusted principal denied: %v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	d := New(nil)
	if _, err := d.Connect("gridrm:gridrm://127.0.0.1:1", driver.Properties{"timeout": "150ms"}); err == nil {
		t.Error("dead endpoint accepted")
	}
	if _, err := d.Connect("gridrm:gridrm://host", nil); err == nil {
		t.Error("portless URL accepted")
	}
	if _, err := d.Connect("gridrm:snmp://h:1", nil); err == nil {
		t.Error("wrong protocol accepted")
	}
	if _, err := d.Connect("gridrm:gridrm://h:1", driver.Properties{"timeout": "x"}); err == nil {
		t.Error("bad timeout accepted")
	}
}

func TestBadSQLLocallyValidated(t *testing.T) {
	_, url := childGateway(t, "childv", []string{"v1"})
	conn, err := New(nil).Connect(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stmt, _ := conn.CreateStatement()
	if _, err := stmt.ExecuteQuery("garbage"); err == nil {
		t.Error("bad SQL forwarded")
	}
	if _, err := stmt.ExecuteQuery("SELECT * FROM Nope"); err == nil {
		t.Error("unknown group forwarded")
	}
}

func TestSchemaValid(t *testing.T) {
	if err := schema.NewManager().Register(Schema()); err != nil {
		t.Fatal(err)
	}
	if len(Schema().Groups) != len(glue.Groups()) {
		t.Error("schema must cover all groups")
	}
}
