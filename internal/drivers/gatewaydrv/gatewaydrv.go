// Package gatewaydrv implements the JDBC-GridRM driver: a plug-in that
// treats a *remote GridRM gateway* as just another data source. The paper
// anticipates hierarchies of gateways (§2: "in a hierarchy of GridRM
// Gateways, security decisions can be deferred to the local Gateway
// responsible for a given resource") and lists further drivers as near
// future work (§5.1); this driver realises both: a parent gateway
// aggregates child sites through the same SQL-in/ResultSet-out contract it
// uses for SNMP or Ganglia, so consolidation, caching, history and events
// compose recursively.
//
// URLs: gridrm:gridrm://host:port — the child gateway's servlet endpoint.
// The driver forwards queries over the servlet interface with a principal
// from the connection properties ("user", "roles"), so the child's own
// CGSL/FGSL make the final call (deferred security).
package gatewaydrv

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"gridrm/internal/core"
	"gridrm/internal/driver"
	"gridrm/internal/glue"
	"gridrm/internal/resultset"
	"gridrm/internal/schema"
	"gridrm/internal/security"
	"gridrm/internal/sqlparse"
	"gridrm/internal/web"
)

// DriverName is the registration name.
const DriverName = "jdbc-gridrm"

// Driver is the gateway-of-gateways driver.
type Driver struct {
	schemas *schema.Manager
}

// New creates the driver; the SchemaManager may be nil.
func New(sm *schema.Manager) *Driver { return &Driver{schemas: sm} }

// Name implements driver.Driver.
func (d *Driver) Name() string { return DriverName }

// Version implements driver.Versioned.
func (d *Driver) Version() string { return "1.0" }

// AcceptsURL implements driver.Driver: explicit "gridrm" protocol only —
// a child gateway is never guessed during dynamic scans of plain agents.
func (d *Driver) AcceptsURL(url string) bool {
	u, err := driver.ParseURL(url)
	return err == nil && u.Protocol == "gridrm"
}

// Connect implements driver.Driver, verifying the endpoint by fetching the
// child gateway's status.
func (d *Driver) Connect(url string, props driver.Properties) (driver.Conn, error) {
	u, err := driver.ParseURL(url)
	if err != nil {
		return nil, err
	}
	if u.Protocol != "gridrm" {
		return nil, fmt.Errorf("gatewaydrv: URL %s is not a gridrm: URL", url)
	}
	if u.Port == 0 {
		return nil, fmt.Errorf("gatewaydrv: URL %s needs an explicit port", url)
	}
	principal := security.Principal{Name: props.Get("user", "gateway")}
	if roles := props.Get("roles", ""); roles != "" {
		principal.Roles = strings.Split(roles, ",")
	}
	timeout := 5 * time.Second
	if t := props.Get("timeout", ""); t != "" {
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("gatewaydrv: bad timeout %q", t)
		}
		timeout = parsed
	}
	client := &web.Client{
		BaseURL:    "http://" + u.Address(0),
		Principal:  principal,
		HTTPClient: &http.Client{Timeout: timeout},
	}
	status, err := client.Status(context.Background())
	if err != nil {
		return nil, fmt.Errorf("gatewaydrv: %s does not answer as a GridRM gateway: %w", url, err)
	}
	return &Conn{drv: d, client: client, url: url, childSite: status.Site}, nil
}

// Conn is a connection to a child gateway.
type Conn struct {
	driver.UnimplementedConn
	drv       *Driver
	client    *web.Client
	url       string
	childSite string
	closed    bool
}

// URL implements driver.Conn.
func (c *Conn) URL() string { return c.url }

// Driver implements driver.Conn.
func (c *Conn) Driver() string { return DriverName }

// ChildSite returns the child gateway's site name.
func (c *Conn) ChildSite() string { return c.childSite }

// Ping implements driver.Conn with a status fetch.
func (c *Conn) Ping() error {
	if c.closed {
		return driver.ErrClosed
	}
	_, err := c.client.Status(context.Background())
	return err
}

// Close implements driver.Conn.
func (c *Conn) Close() error { c.closed = true; return nil }

// SourceInfo implements driver.MetadataProvider.
func (c *Conn) SourceInfo() driver.SourceInfo {
	return driver.SourceInfo{Protocol: "gridrm", AgentVersion: c.childSite,
		Groups: glue.GroupNames()}
}

// CreateStatement implements driver.Conn.
func (c *Conn) CreateStatement() (driver.Stmt, error) {
	if c.closed {
		return nil, driver.ErrClosed
	}
	return &Stmt{conn: c}, nil
}

// Stmt forwards SQL to the child gateway.
type Stmt struct {
	driver.UnimplementedStmt
	conn   *Conn
	closed bool
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { s.closed = true; return nil }

// ExecuteQuery implements driver.Stmt: the SQL is validated locally, then
// forwarded verbatim — the child gateway consolidates its own sources and
// applies its own security before answering.
func (s *Stmt) ExecuteQuery(sql string) (*resultset.ResultSet, error) {
	return s.ExecuteQueryContext(context.Background(), sql)
}

// ExecuteQueryContext implements driver.StmtContext: the forwarded HTTP
// request is cancelled with ctx, so a hung child gateway cannot stall the
// parent past its deadline.
func (s *Stmt) ExecuteQueryContext(ctx context.Context, sql string) (*resultset.ResultSet, error) {
	if s.closed || s.conn.closed {
		return nil, driver.ErrClosed
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := glue.Lookup(q.Table); !ok {
		return nil, fmt.Errorf("gatewaydrv: unknown group %q", q.Table)
	}
	resp, err := s.conn.client.Query(ctx, core.QueryOptions{SQL: sql, Mode: core.ModeCached})
	if err != nil {
		return nil, fmt.Errorf("gatewaydrv: child %s: %w", s.conn.childSite, err)
	}
	return resp.ResultSet, nil
}

var _ driver.StmtContext = (*Stmt)(nil)

// Schema returns the driver's GLUE mapping: a child gateway can answer for
// every group (whatever its own drivers cover; groups its sources cannot
// serve fail at query time like any other driver error).
func Schema() *schema.DriverSchema {
	ds := &schema.DriverSchema{Driver: DriverName, Groups: make(map[string]*schema.GroupMapping)}
	for _, g := range glue.Groups() {
		gm := &schema.GroupMapping{Group: g.Name}
		for _, f := range g.Fields {
			gm.Fields = append(gm.Fields, schema.FieldMapping{GLUEField: f.Name, Native: "child:" + f.Name})
		}
		ds.Groups[g.Name] = gm
	}
	return ds
}
