// Package history implements the gateway's internal historical store
// (paper §3.1.1: "historical data is retrieved from the Gateway's internal
// database"; Fig 3's "Historical Data & Information Schemas").
//
// Every real-time harvest can be recorded: rows are stored per (source,
// GLUE group) with the sample time, and historical queries read them back
// as ResultSets extended with two provenance columns, SourceURL and
// SampledAt. Retention is bounded both by age and by sample count.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

// SourceColumn and SampledColumn are the provenance columns historical
// results carry in addition to the group's GLUE fields.
const (
	SourceColumn  = "SourceURL"
	SampledColumn = "SampledAt"
)

// Options configures a Store.
type Options struct {
	// MaxAge drops samples older than this (default 1h).
	MaxAge time.Duration
	// MaxSamplesPerKey bounds samples kept per (source, group)
	// (default 1024).
	MaxSamplesPerKey int
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
}

// sample is one recorded harvest: the rows of one ResultSet at one time.
type sample struct {
	at   time.Time
	rows [][]any
}

// Store is the historical database.
type Store struct {
	opts Options

	mu   sync.RWMutex
	data map[string][]sample // source+"\x00"+group → samples in time order
}

// New creates a Store.
func New(opts Options) *Store {
	if opts.MaxAge <= 0 {
		opts.MaxAge = time.Hour
	}
	if opts.MaxSamplesPerKey <= 0 {
		opts.MaxSamplesPerKey = 1024
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Store{opts: opts, data: make(map[string][]sample)}
}

func storeKey(source, group string) string { return source + "\x00" + group }

// Record stores the rows of a harvested ResultSet for (source, group) at
// time at. The ResultSet must carry the group's full canonical column set;
// results that were projected by a query should not be recorded.
func (s *Store) Record(source, group string, rs *resultset.ResultSet, at time.Time) error {
	g, ok := glue.Lookup(group)
	if !ok {
		return fmt.Errorf("history: unknown group %q", group)
	}
	meta := rs.Metadata()
	if meta.ColumnCount() != len(g.Fields) {
		return fmt.Errorf("history: result has %d columns, group %s has %d",
			meta.ColumnCount(), g.Name, len(g.Fields))
	}
	for i, f := range g.Fields {
		if meta.ColumnIndex(f.Name) != i {
			return fmt.Errorf("history: result column %d is %q, want %q",
				i, meta.Column(i).Name, f.Name)
		}
	}
	// Deep-copy each row: RowAt returns the ResultSet's own slice, and a
	// caller mutating its harvested rows must not corrupt stored history.
	rows := make([][]any, rs.Len())
	for i := 0; i < rs.Len(); i++ {
		rows[i] = append([]any(nil), rs.RowAt(i)...)
	}
	k := storeKey(source, g.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	samples := append(s.data[k], sample{at: at, rows: rows})
	samples = s.retainLocked(samples)
	s.data[k] = samples
	return nil
}

func (s *Store) retainLocked(samples []sample) []sample {
	cutoff := s.opts.Clock().Add(-s.opts.MaxAge)
	start := 0
	for start < len(samples) && samples[start].at.Before(cutoff) {
		start++
	}
	if len(samples)-start > s.opts.MaxSamplesPerKey {
		start = len(samples) - s.opts.MaxSamplesPerKey
	}
	if start == 0 {
		return samples
	}
	// Copy the retained window instead of re-slicing: samples[start:] keeps
	// the dropped prefix (and all its row data) reachable through the shared
	// backing array for as long as the key lives, which under source churn
	// is a leak — a key that stops receiving records would pin its pruned
	// samples forever.
	kept := make([]sample, len(samples)-start)
	copy(kept, samples[start:])
	return kept
}

// Query reads back history for a GLUE group across sources. Empty source
// means all sources; zero since/until mean unbounded. Rows are ordered by
// sample time, then source. The result's columns are the group's fields
// plus SourceURL and SampledAt.
func (s *Store) Query(group, source string, since, until time.Time) (*resultset.ResultSet, error) {
	g, ok := glue.Lookup(group)
	if !ok {
		return nil, fmt.Errorf("history: unknown group %q", group)
	}
	meta, err := s.Metadata(g)
	if err != nil {
		return nil, err
	}
	type hit struct {
		at     time.Time
		source string
		rows   [][]any
	}
	var hits []hit
	s.mu.RLock()
	for k, samples := range s.data {
		src, grp, ok := strings.Cut(k, "\x00")
		if !ok || grp != g.Name {
			continue
		}
		if source != "" && src != source {
			continue
		}
		for _, sm := range samples {
			if !since.IsZero() && sm.at.Before(since) {
				continue
			}
			if !until.IsZero() && sm.at.After(until) {
				continue
			}
			hits = append(hits, hit{at: sm.at, source: src, rows: sm.rows})
		}
	}
	s.mu.RUnlock()
	// Stable order: time, then source.
	sort.Slice(hits, func(i, j int) bool {
		if !hits[i].at.Equal(hits[j].at) {
			return hits[i].at.Before(hits[j].at)
		}
		return hits[i].source < hits[j].source
	})
	b := resultset.NewBuilder(meta)
	for _, h := range hits {
		for _, row := range h.rows {
			full := make([]any, 0, len(row)+2)
			full = append(full, row...)
			full = append(full, h.source, h.at)
			b.Append(full...)
		}
	}
	return b.Build()
}

// Latest returns the most recent recorded sample for (source, group) as a
// ResultSet in the group's canonical shape (no provenance columns), plus its
// sample time. Samples older than MaxAge are not served. It backs the
// history tier of the gateway's degradation ladder: when a harvest fails
// and no cache entry survives, the last known-good rows are better than
// nothing.
func (s *Store) Latest(source, group string) (*resultset.ResultSet, time.Time, bool) {
	g, ok := glue.Lookup(group)
	if !ok {
		return nil, time.Time{}, false
	}
	s.mu.RLock()
	samples := s.data[storeKey(source, g.Name)]
	var last sample
	if n := len(samples); n > 0 {
		last = samples[n-1]
	}
	s.mu.RUnlock()
	if last.at.IsZero() {
		return nil, time.Time{}, false
	}
	if s.opts.Clock().Sub(last.at) > s.opts.MaxAge {
		return nil, time.Time{}, false
	}
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, time.Time{}, false
	}
	b := resultset.NewBuilder(meta)
	for _, row := range last.rows {
		// Copy each row: the builder must not alias stored history.
		b.Append(append([]any(nil), row...)...)
	}
	rs, err := b.Build()
	if err != nil {
		return nil, time.Time{}, false
	}
	return rs, last.at, true
}

// Metadata returns the result shape historical queries produce for a group.
func (s *Store) Metadata(g *glue.Group) (*resultset.Metadata, error) {
	base, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		return nil, err
	}
	cols := base.Columns()
	cols = append(cols,
		resultset.Column{Name: SourceColumn, Kind: glue.String},
		resultset.Column{Name: SampledColumn, Kind: glue.Time},
	)
	return resultset.NewMetadata(cols)
}

// Sources returns the distinct source URLs with history for a group.
func (s *Store) Sources(group string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	suffix := "\x00" + group
	for k := range s.data {
		if len(k) > len(suffix) && k[len(k)-len(suffix):] == suffix {
			out = append(out, k[:len(k)-len(suffix)])
		}
	}
	sort.Strings(out) // deterministic order
	return out
}

// SampleCount returns how many samples are held for (source, group).
func (s *Store) SampleCount(source, group string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[storeKey(source, group)])
}

// SampleRecord is one recorded sample in flat form — the exchange shape
// between the store and a durability layer (internal/tsdb) that journals
// records and snapshots retained state.
type SampleRecord struct {
	Source string
	Group  string
	At     time.Time
	Rows   [][]any
}

// Snapshot returns every retained sample in stable (key, time) order. Row
// slices are shared with the store — stored rows are immutable once recorded
// (Record deep-copies in, readers copy out) — so callers may read but must
// not mutate them.
func (s *Store) Snapshot() []SampleRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []SampleRecord
	for _, k := range keys {
		src, grp, ok := strings.Cut(k, "\x00")
		if !ok {
			continue
		}
		for _, sm := range s.data[k] {
			out = append(out, SampleRecord{Source: src, Group: grp, At: sm.at, Rows: sm.rows})
		}
	}
	return out
}

// Load inserts a restored sample without Record's shape validation (the
// durability layer only journals records that already passed it). Samples
// are inserted in time order; a sample whose time exactly matches an
// existing one for the key is dropped, so replaying a WAL that overlaps a
// checkpoint is idempotent. Retention applies as usual. The store takes
// ownership of rec.Rows. It reports whether the sample was kept.
func (s *Store) Load(rec SampleRecord) bool {
	g, ok := glue.Lookup(rec.Group)
	if !ok {
		return false
	}
	k := storeKey(rec.Source, g.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	samples := s.data[k]
	sm := sample{at: rec.At, rows: rec.Rows}
	n := len(samples)
	if n == 0 || rec.At.After(samples[n-1].at) {
		samples = append(samples, sm)
	} else {
		i := sort.Search(n, func(i int) bool { return !samples[i].at.Before(rec.At) })
		if i < n && samples[i].at.Equal(rec.At) {
			return false // checkpoint/WAL overlap: already restored
		}
		samples = append(samples, sample{})
		copy(samples[i+1:], samples[i:])
		samples[i] = sm
	}
	kept := s.retainLocked(samples)
	if len(kept) == 0 {
		delete(s.data, k)
		return false
	}
	s.data[k] = kept
	// The loaded sample survived retention iff it is newer than the
	// retained window's start.
	return !sm.at.Before(kept[0].at)
}

// Keys returns how many (source, group) keys currently hold samples.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// TotalSamples returns the total retained sample count across all keys.
func (s *Store) TotalSamples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, samples := range s.data {
		n += len(samples)
	}
	return n
}

// Prune applies retention to every key immediately and reports how many
// samples were dropped.
func (s *Store) Prune() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for k, samples := range s.data {
		kept := s.retainLocked(samples)
		dropped += len(samples) - len(kept)
		if len(kept) == 0 {
			delete(s.data, k)
		} else {
			s.data[k] = kept
		}
	}
	return dropped
}
