package history

import (
	"testing"
	"time"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

func memRS(t *testing.T, host string, ram int64) *resultset.ResultSet {
	t.Helper()
	g := glue.MustLookup(glue.GroupMemory)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := resultset.NewBuilder(meta).
		Append(host, ram, ram/2, ram*2, ram, 0.0, 0.0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func newStore(opts Options) (*Store, *time.Time) {
	now := time.Unix(10000, 0)
	opts.Clock = func() time.Time { return now }
	return New(opts), &now
}

const srcA = "gridrm:snmp://a:1"
const srcB = "gridrm:ganglia://b:1"

func TestRecordAndQuery(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	if err := s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(srcB, glue.GroupMemory, memRS(t, "b", 512), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	rs, err := s.Query(glue.GroupMemory, "", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != "a" {
		t.Errorf("first row host %q (time order)", h)
	}
	if src, _ := rs.GetString(SourceColumn); src != srcA {
		t.Errorf("source = %q", src)
	}
	if at, _ := rs.GetTime(SampledColumn); !at.Equal(t0) {
		t.Errorf("sampled at %v", at)
	}
}

func TestQueryFilters(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), t0)
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), t0.Add(10*time.Second))
	_ = s.Record(srcB, glue.GroupMemory, memRS(t, "b", 512), t0.Add(20*time.Second))

	rs, err := s.Query(glue.GroupMemory, srcA, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Errorf("source filter rows = %d", rs.Len())
	}
	rs, err = s.Query(glue.GroupMemory, "", t0.Add(5*time.Second), t0.Add(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Errorf("window rows = %d", rs.Len())
	}
	rs, err = s.Query(glue.GroupProcessor, "", time.Time{}, time.Time{})
	if err != nil || rs.Len() != 0 {
		t.Errorf("empty group rows = %d, err %v", rs.Len(), err)
	}
	if _, err := s.Query("Nope", "", time.Time{}, time.Time{}); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestRecordValidation(t *testing.T) {
	s, now := newStore(Options{})
	if err := s.Record(srcA, "Nope", memRS(t, "a", 1), *now); err == nil {
		t.Error("unknown group accepted")
	}
	// Projected result (wrong shape) is rejected.
	rs := memRS(t, "a", 1)
	proj, _ := rs.Project([]string{"HostName"})
	if err := s.Record(srcA, glue.GroupMemory, proj, *now); err == nil {
		t.Error("projected result accepted")
	}
}

func TestRetentionByAge(t *testing.T) {
	s, now := newStore(Options{MaxAge: time.Minute})
	t0 := *now
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1), t0.Add(-2*time.Minute))
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 2), t0)
	// Recording applies retention to the touched key.
	if n := s.SampleCount(srcA, glue.GroupMemory); n != 1 {
		t.Errorf("samples = %d, want 1 (old one dropped)", n)
	}
	*now = now.Add(2 * time.Minute)
	if dropped := s.Prune(); dropped != 1 {
		t.Errorf("pruned %d, want 1", dropped)
	}
	if n := s.SampleCount(srcA, glue.GroupMemory); n != 0 {
		t.Errorf("samples after prune = %d", n)
	}
}

func TestRetentionByCount(t *testing.T) {
	s, now := newStore(Options{MaxSamplesPerKey: 5})
	for i := 0; i < 12; i++ {
		_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", int64(i+1)), now.Add(time.Duration(i)*time.Second))
	}
	if n := s.SampleCount(srcA, glue.GroupMemory); n != 5 {
		t.Errorf("samples = %d, want 5", n)
	}
	rs, _ := s.Query(glue.GroupMemory, srcA, time.Time{}, time.Time{})
	rs.Next()
	if ram, _ := rs.GetInt("RAMSize"); ram != 8 { // oldest kept is the 8th
		t.Errorf("oldest kept RAMSize = %d, want 8", ram)
	}
}

func TestSources(t *testing.T) {
	s, now := newStore(Options{})
	_ = s.Record(srcB, glue.GroupMemory, memRS(t, "b", 1), *now)
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1), *now)
	got := s.Sources(glue.GroupMemory)
	if len(got) != 2 || got[0] != srcB || got[1] != srcA {
		// sorted: ganglia... < snmp...
		t.Errorf("sources = %v", got)
	}
	if got := s.Sources(glue.GroupDisk); len(got) != 0 {
		t.Errorf("disk sources = %v", got)
	}
}

func TestMetadataShape(t *testing.T) {
	s, _ := newStore(Options{})
	g := glue.MustLookup(glue.GroupMemory)
	meta, err := s.Metadata(g)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ColumnCount() != len(g.Fields)+2 {
		t.Errorf("columns = %d", meta.ColumnCount())
	}
	if meta.ColumnIndex(SourceColumn) < 0 || meta.ColumnIndex(SampledColumn) < 0 {
		t.Error("provenance columns missing")
	}
}

// TestRecordCopiesRows guards against callers mutating a harvested
// ResultSet after recording it: stored history must be unaffected.
func TestRecordCopiesRows(t *testing.T) {
	s, now := newStore(Options{})
	rs := memRS(t, "a", 1024)
	if err := s.Record(srcA, glue.GroupMemory, rs, *now); err != nil {
		t.Fatal(err)
	}
	// Mutate the recorded ResultSet's backing row in place.
	rs.RowAt(0)[0] = "CORRUPTED"
	got, err := s.Query(glue.GroupMemory, srcA, time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	got.Next()
	if h, _ := got.GetString("HostName"); h != "a" {
		t.Errorf("stored host = %q; caller mutation leaked into history", h)
	}
}

func TestQueryOrderManySamples(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	// Record out of source order at identical and distinct times.
	for i := 9; i >= 0; i-- {
		src := srcB
		if i%2 == 0 {
			src = srcA
		}
		if err := s.Record(src, glue.GroupMemory, memRS(t, "h", 64), t0.Add(time.Duration(i/2)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := s.Query(glue.GroupMemory, "", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	var prevSrc string
	for rs.Next() {
		at, _ := rs.GetTime(SampledColumn)
		src, _ := rs.GetString(SourceColumn)
		if at.Before(prev) {
			t.Fatalf("rows out of time order: %v after %v", at, prev)
		}
		if at.Equal(prev) && src < prevSrc {
			t.Fatalf("rows out of source order at %v: %q after %q", at, src, prevSrc)
		}
		prev, prevSrc = at, src
	}
}

func benchStore(b *testing.B, samples int) *Store {
	b.Helper()
	now := time.Unix(10000, 0)
	s := New(Options{MaxAge: 24 * time.Hour, MaxSamplesPerKey: samples + 1,
		Clock: func() time.Time { return now }})
	g := glue.MustLookup(glue.GroupMemory)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := resultset.NewBuilder(meta).
		Append("h", int64(64), int64(32), int64(128), int64(64), 0.0, 0.0).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < samples; i++ {
		src := srcA
		if i%2 == 1 {
			src = srcB
		}
		if err := s.Record(src, glue.GroupMemory, rs, now.Add(time.Duration(-i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkQuerySorted measures the read path that previously used an
// O(n²) insertion sort over the collected samples.
func BenchmarkQuerySorted(b *testing.B) {
	s := benchStore(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(glue.GroupMemory, "", time.Time{}, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	s := benchStore(b, 0)
	g := glue.MustLookup(glue.GroupMemory)
	meta, _ := resultset.MetadataForGroup(g, nil)
	rs, _ := resultset.NewBuilder(meta).
		Append("h", int64(64), int64(32), int64(128), int64(64), 0.0, 0.0).
		Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Record(srcA, glue.GroupMemory, rs, time.Unix(10000, 0)); err != nil {
			b.Fatal(err)
		}
	}
}
