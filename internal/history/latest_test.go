package history

import (
	"testing"
	"time"

	"gridrm/internal/glue"
)

func TestLatestReturnsNewestSample(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	if err := s.Record(srcA, glue.GroupMemory, memRS(t, "old", 256), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(srcA, glue.GroupMemory, memRS(t, "new", 1024), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}

	rs, at, ok := s.Latest(srcA, glue.GroupMemory)
	if !ok {
		t.Fatal("no latest sample")
	}
	if !at.Equal(t0.Add(time.Minute)) {
		t.Errorf("sampled at %v, want %v", at, t0.Add(time.Minute))
	}
	rs.Next()
	if h, _ := rs.GetString("HostName"); h != "new" {
		t.Errorf("host = %q, want the newest sample", h)
	}
}

func TestLatestRejectsExpiredSamples(t *testing.T) {
	s, now := newStore(Options{MaxAge: time.Minute})
	if err := s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), *now); err != nil {
		t.Fatal(err)
	}
	*now = now.Add(2 * time.Minute)
	if _, _, ok := s.Latest(srcA, glue.GroupMemory); ok {
		t.Error("Latest served a sample older than MaxAge")
	}
}

func TestLatestMissesUnknownKeys(t *testing.T) {
	s, _ := newStore(Options{})
	if _, _, ok := s.Latest(srcA, glue.GroupMemory); ok {
		t.Error("hit on an empty store")
	}
	if _, _, ok := s.Latest(srcA, "NoSuchGroup"); ok {
		t.Error("hit on an unknown group")
	}
}

func TestLatestCopiesRows(t *testing.T) {
	s, now := newStore(Options{})
	if err := s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), *now); err != nil {
		t.Fatal(err)
	}
	a, _, _ := s.Latest(srcA, glue.GroupMemory)
	a.Next()
	b, _, _ := s.Latest(srcA, glue.GroupMemory)
	if !b.Next() {
		t.Fatal("second Latest exhausted by the first cursor")
	}
}
