package history

import (
	"testing"
	"time"

	"gridrm/internal/glue"
)

func TestSnapshotLoadRoundTrip(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), t0)
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 2048), t0.Add(time.Second))
	_ = s.Record(srcB, glue.GroupMemory, memRS(t, "b", 512), t0.Add(2*time.Second))

	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot records = %d", len(snap))
	}
	// Stable order: keys sorted, then time ascending within a key.
	if snap[0].Source != srcB { // "gridrm:ganglia" sorts before "gridrm:snmp"
		t.Errorf("first key = %q", snap[0].Source)
	}
	if !snap[1].At.Equal(t0) || !snap[2].At.Equal(t0.Add(time.Second)) {
		t.Errorf("time order within key: %v, %v", snap[1].At, snap[2].At)
	}

	restored, _ := newStore(Options{})
	for _, rec := range snap {
		if !restored.Load(rec) {
			t.Errorf("Load(%v) dropped", rec.At)
		}
	}
	if restored.Keys() != 2 || restored.TotalSamples() != 3 {
		t.Fatalf("restored keys=%d samples=%d", restored.Keys(), restored.TotalSamples())
	}
	rs, at, ok := restored.Latest(srcA, glue.GroupMemory)
	if !ok || !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("Latest ok=%v at=%v", ok, at)
	}
	rs.Next()
	if ram, _ := rs.GetInt("RAMSize"); ram != 2048 {
		t.Errorf("restored RAMSize = %d", ram)
	}
}

func TestLoadDedupesExactTimes(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	rec := SampleRecord{Source: srcA, Group: glue.GroupMemory, At: t0,
		Rows: [][]any{{"a", int64(1), int64(1), int64(1), int64(1), 0.0, 0.0}}}
	if !s.Load(rec) {
		t.Fatal("first load dropped")
	}
	if s.Load(rec) {
		t.Fatal("duplicate time accepted")
	}
	if s.TotalSamples() != 1 {
		t.Fatalf("samples = %d", s.TotalSamples())
	}
}

func TestLoadOutOfOrderInserts(t *testing.T) {
	s, now := newStore(Options{})
	t0 := *now
	mk := func(at time.Time) SampleRecord {
		return SampleRecord{Source: srcA, Group: glue.GroupMemory, At: at,
			Rows: [][]any{{"a", int64(1), int64(1), int64(1), int64(1), 0.0, 0.0}}}
	}
	_ = s.Load(mk(t0.Add(2 * time.Second)))
	_ = s.Load(mk(t0)) // older sample arrives second (WAL after checkpoint)
	_ = s.Load(mk(t0.Add(time.Second)))
	rs, err := s.Query(glue.GroupMemory, srcA, time.Time{}, time.Time{})
	if err != nil || rs.Len() != 3 {
		t.Fatalf("rows=%d err=%v", rs.Len(), err)
	}
	var prev time.Time
	for rs.Next() {
		at, _ := rs.GetTime(SampledColumn)
		if at.Before(prev) {
			t.Fatalf("out of order: %v after %v", at, prev)
		}
		prev = at
	}
}

func TestLoadRespectsRetention(t *testing.T) {
	s, now := newStore(Options{MaxAge: time.Minute})
	old := SampleRecord{Source: srcA, Group: glue.GroupMemory,
		At:   now.Add(-time.Hour),
		Rows: [][]any{{"a", int64(1), int64(1), int64(1), int64(1), 0.0, 0.0}}}
	if s.Load(old) {
		t.Fatal("expired sample reported kept")
	}
	if s.Keys() != 0 {
		t.Fatalf("expired-only key retained: keys=%d", s.Keys())
	}
	if s.Load(SampleRecord{Source: srcA, Group: "NoSuchGroup", At: *now}) {
		t.Fatal("unknown group accepted")
	}
}

func TestKeysAndTotalSamplesTrackPrune(t *testing.T) {
	s, now := newStore(Options{MaxAge: time.Minute})
	t0 := *now
	_ = s.Record(srcA, glue.GroupMemory, memRS(t, "a", 1024), t0)
	_ = s.Record(srcB, glue.GroupMemory, memRS(t, "b", 512), t0)
	if s.Keys() != 2 || s.TotalSamples() != 2 {
		t.Fatalf("keys=%d samples=%d", s.Keys(), s.TotalSamples())
	}
	*now = now.Add(2 * time.Minute)
	if dropped := s.Prune(); dropped != 2 {
		t.Fatalf("pruned = %d", dropped)
	}
	if s.Keys() != 0 || s.TotalSamples() != 0 {
		t.Fatalf("after prune keys=%d samples=%d", s.Keys(), s.TotalSamples())
	}
}
