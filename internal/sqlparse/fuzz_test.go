package sqlparse

import "testing"

// FuzzParse fuzzes the SQL parser with the corpus of queries the unit tests
// exercise. Invariants: Parse never panics, and any query it accepts
// canonicalises stably — the String() form re-parses to the same String().
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM Processor",
		"SELECT HostName FROM Processor WHERE LoadLast1Min > 2.5 ORDER BY HostName LIMIT 5",
		"SELECT * FROM Disk WHERE (HostName = 'n1' AND Available < 100) OR DeviceName LIKE 'sd%'",
		"SELECT * FROM T WHERE A = 'it''s' AND B = 1.5 AND C = TRUE AND D = FALSE AND E = -3",
		"SELECT a, b FROM t WHERE x = 'y' AND z >= 1.5 ORDER BY a DESC LIMIT 3",
		"SELECT HostName, RAMSize FROM Memory WHERE RAMSize <> 0",
		"SELECT * FROM Processor WHERE Model IS NULL",
		"SELECT * FROM Processor WHERE Model IS NOT NULL ORDER BY HostName ASC",
		"select hostname from processor where loadlast1min <= 4",
		"SELECT COUNT(*) FROM Processor",
		"SELECT * FROM",
		"DROP TABLE Processor",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T WHERE A = 'unterminated",
		"SELECT * FROM T LIMIT -1",
		"",
		"   ",
		"SELECT * FROM T WHERE A IN ('x', 'y')",
		"SELECT * FROM T WHERE NOT (A = 1)",
		"SELECT count(*) FROM Processor",
		"SELECT HostName, avg(LoadLast1Min) FROM Processor GROUP BY HostName",
		"SELECT min(RAMSize), max(RAMSize), sum(RAMSize) FROM Memory WHERE HostName LIKE 'n%'",
		"SELECT Model, count(HostName) FROM Processor GROUP BY Model ORDER BY count(HostName) DESC LIMIT 3",
		"SELECT count FROM t",
		"SELECT avg(*) FROM Processor",
		"SELECT HostName FROM Processor GROUP BY Model",
		"SELECT * FROM Processor GROUP BY HostName",
		"SELECT sum(Load FROM t",
		"SELECT a, b, avg(c) FROM t GROUP BY a, b ORDER BY avg(c)",
		"SELECT * FROM T WHERE A = 99999999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return // rejected input: only the no-panic invariant applies
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, sql, err)
		}
		if again := q2.String(); again != canon {
			t.Fatalf("canonicalisation unstable: %q -> %q -> %q", sql, canon, again)
		}
	})
}
