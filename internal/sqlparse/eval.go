package sqlparse

import (
	"fmt"
	"strings"

	"gridrm/internal/resultset"
)

// RowResolver maps a column name to the value it holds in the current row.
// The boolean result reports whether the column exists at all.
type RowResolver func(column string) (any, bool)

// Eval evaluates a WHERE expression against one row. A nil expression is
// true. Comparisons involving NULL are false (use IS NULL to test for
// NULL), matching common SQL behaviour. Referencing a column the row does
// not have is an error.
func Eval(e Expr, resolve RowResolver) (bool, error) {
	if e == nil {
		return true, nil
	}
	switch x := e.(type) {
	case *NullCheck:
		v, ok := resolve(x.Column)
		if !ok {
			return false, fmt.Errorf("sqlparse: unknown column %q", x.Column)
		}
		isNull := v == nil
		if x.Negate {
			return !isNull, nil
		}
		return isNull, nil
	case *Comparison:
		v, ok := resolve(x.Column)
		if !ok {
			return false, fmt.Errorf("sqlparse: unknown column %q", x.Column)
		}
		if v == nil || x.Value == nil {
			return false, nil
		}
		if x.Op == OpLike {
			s, ok := v.(string)
			if !ok {
				s = fmt.Sprint(v)
			}
			pat, ok := x.Value.(string)
			if !ok {
				return false, fmt.Errorf("sqlparse: LIKE pattern must be a string")
			}
			return MatchLike(pat, s), nil
		}
		cmp := resultset.CompareValues(v, x.Value)
		switch x.Op {
		case OpEq:
			return cmp == 0, nil
		case OpNe:
			return cmp != 0, nil
		case OpLt:
			return cmp < 0, nil
		case OpLe:
			return cmp <= 0, nil
		case OpGt:
			return cmp > 0, nil
		case OpGe:
			return cmp >= 0, nil
		}
		return false, fmt.Errorf("sqlparse: unknown operator %v", x.Op)
	case *Logical:
		left, err := Eval(x.Left, resolve)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case OpNot:
			return !left, nil
		case OpAnd:
			if !left {
				return false, nil
			}
			return Eval(x.Right, resolve)
		case OpOr:
			if left {
				return true, nil
			}
			return Eval(x.Right, resolve)
		}
	}
	return false, fmt.Errorf("sqlparse: unknown expression %T", e)
}

// MatchLike implements SQL LIKE matching: '%' matches any run (including
// empty), '_' matches exactly one character. Matching is case-insensitive,
// which suits GridRM's case-insensitive schema names.
func MatchLike(pattern, s string) bool {
	return likeMatch(strings.ToLower(pattern), strings.ToLower(s))
}

func likeMatch(p, s string) bool {
	// Iterative two-pointer match with backtracking on the last '%'.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// ApplyToResultSet applies the query's WHERE, GROUP BY/aggregates, ORDER
// BY, LIMIT and column projection to a full-table ResultSet (one whose
// columns cover everything the query references). Drivers that fetch
// coarse-grained native snapshots use this to finish query processing; it
// is part of the driver development API the paper describes in §3.2.1.
//
// The input rs is never mutated: stages that reorder rows work on a copy
// of the row slice, so drivers and caches may keep serving rs to
// concurrent queries.
func ApplyToResultSet(q *Query, rs *resultset.ResultSet) (*resultset.ResultSet, error) {
	meta := rs.Metadata()
	// Validate referenced columns up front for a clear error.
	for _, c := range q.ColumnsReferenced() {
		if meta.ColumnIndex(c) < 0 {
			return nil, fmt.Errorf("sqlparse: unknown column %q in table %s", c, q.Table)
		}
	}
	out := rs
	if q.Where != nil {
		var evalErr error
		out = out.Filter(func(row []any) bool {
			ok, err := Eval(q.Where, func(col string) (any, bool) {
				i := meta.ColumnIndex(col)
				if i < 0 {
					return nil, false
				}
				return row[i], true
			})
			if err != nil && evalErr == nil {
				evalErr = err
			}
			return ok
		})
		if evalErr != nil {
			return nil, evalErr
		}
	}
	if q.Aggregate() {
		agg, err := aggregateResultSet(q, out)
		if err != nil {
			return nil, err
		}
		out = agg // freshly built: safe to sort in place below
	}
	if q.OrderBy != "" {
		if out == rs {
			// Copy-on-write: sorting the caller's set in place would
			// reorder rows shared with other readers.
			sorted, err := out.SortedBy(q.OrderBy, q.Desc)
			if err != nil {
				return nil, err
			}
			out = sorted
		} else if err := out.SortBy(q.OrderBy, q.Desc); err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 {
		out = out.Limit(q.Limit)
	}
	if !q.Star() && !q.Aggregate() {
		projected, err := out.Project(q.Columns)
		if err != nil {
			return nil, err
		}
		out = projected
	}
	return out, nil
}
