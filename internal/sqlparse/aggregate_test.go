package sqlparse

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

func TestParseAggregates(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical form
	}{
		{"SELECT count(*) FROM Processor", "SELECT count(*) FROM Processor"},
		{"SELECT COUNT(*) FROM Processor", "SELECT count(*) FROM Processor"},
		{"select avg(LoadLast1Min) from Processor", "SELECT avg(LoadLast1Min) FROM Processor"},
		{
			"SELECT HostName, avg(LoadLast1Min) FROM Processor GROUP BY HostName",
			"SELECT HostName, avg(LoadLast1Min) FROM Processor GROUP BY HostName",
		},
		{
			"SELECT Model, min(ClockSpeed), max(ClockSpeed), sum(CPUCount) FROM Processor WHERE Vendor = 'acme' GROUP BY Model",
			"SELECT Model, min(ClockSpeed), max(ClockSpeed), sum(CPUCount) FROM Processor WHERE Vendor = 'acme' GROUP BY Model",
		},
		{
			"SELECT Model, count(HostName) FROM Processor GROUP BY Model ORDER BY count(HostName) DESC LIMIT 3",
			"SELECT Model, count(HostName) FROM Processor GROUP BY Model ORDER BY count(HostName) DESC LIMIT 3",
		},
		// Aggregate names are contextual keywords: a column called count
		// still works.
		{"SELECT count FROM t", "SELECT count FROM t"},
		{"SELECT a, b FROM t GROUP BY a, b", "SELECT a, b FROM t GROUP BY a, b"},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form must re-parse to itself.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("canonical %q does not re-parse: %v", q.String(), err)
		} else if q2.String() != q.String() {
			t.Errorf("unstable canonicalisation: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestParseAggregateErrors(t *testing.T) {
	cases := []string{
		"SELECT avg(*) FROM t",                               // * only inside count
		"SELECT sum(*) FROM t",                               //
		"SELECT * FROM t GROUP BY a",                         // star with GROUP BY
		"SELECT a, count(*) FROM t",                          // bare column not grouped
		"SELECT a FROM t GROUP BY b",                         // selected column not in GROUP BY
		"SELECT count(*), count(*) FROM t",                   // duplicate output name
		"SELECT count( FROM t",                               // unclosed call
		"SELECT count(a FROM t",                              //
		"SELECT a FROM t ORDER BY count(*)",                  // aggregate ORDER BY on plain query
		"SELECT count(*) FROM t ORDER BY sum(a)",             // ORDER BY not in select list
		"SELECT a, sum(b) FROM t GROUP BY a ORDER BY avg(b)", //
		"SELECT count(*) FROM t GROUP BY",                    // missing group columns
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted, want error", sql)
		}
	}
}

func TestParseIntOverflowRejected(t *testing.T) {
	// Regression: integers overflowing int64 used to silently demote to
	// float64, losing precision for large-ID comparisons.
	_, err := Parse("SELECT * FROM t WHERE id = 99999999999999999999999")
	if err == nil {
		t.Fatal("overflowing integer literal accepted")
	}
	if !strings.Contains(err.Error(), "overflows") {
		t.Errorf("error %q does not mention overflow", err)
	}
	// In-range integers and genuine floats still parse.
	q, err := Parse("SELECT * FROM t WHERE id = 9223372036854775807 AND x = 1e30")
	if err != nil {
		t.Fatalf("valid literals rejected: %v", err)
	}
	_ = q
}

// buildLoad builds a Processor-shaped set with a NULL load on one host.
func buildLoad(t *testing.T) *resultset.ResultSet {
	t.Helper()
	g := glue.MustLookup(glue.GroupProcessor)
	meta, err := resultset.MetadataForGroup(g, []string{"HostName", "Model", "CPUCount", "LoadLast1Min"})
	if err != nil {
		t.Fatal(err)
	}
	b := resultset.NewBuilder(meta)
	b.Append("n1", "alpha", int64(4), 1.0)
	b.Append("n2", "alpha", int64(8), 3.0)
	b.Append("n3", "beta", int64(2), nil) // NULL load: skipped by aggregates
	b.Append("n4", "beta", int64(2), 6.0)
	b.Append("n5", nil, int64(16), 2.0) // NULL group key forms its own group
	rs, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestAggregateGroupBy(t *testing.T) {
	rs := buildLoad(t)
	q := mustParse(t, "SELECT Model, count(*), count(LoadLast1Min), avg(LoadLast1Min), min(LoadLast1Min), max(LoadLast1Min), sum(CPUCount) FROM Processor GROUP BY Model")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("got %d groups, want 3", out.Len())
	}
	type row struct {
		stars, loads, cpus int64
		avg, min, max      float64
	}
	got := map[string]row{}
	for out.Next() {
		model, _ := out.GetString("Model")
		if out.WasNull() {
			model = "<null>"
		}
		stars, _ := out.GetInt("count(*)")
		loads, _ := out.GetInt("count(LoadLast1Min)")
		avg, _ := out.GetFloat("avg(LoadLast1Min)")
		min, _ := out.GetFloat("min(LoadLast1Min)")
		max, _ := out.GetFloat("max(LoadLast1Min)")
		cpus, _ := out.GetInt("sum(CPUCount)")
		got[model] = row{stars, loads, cpus, avg, min, max}
	}
	want := map[string]row{
		"alpha":  {2, 2, 12, 2.0, 1.0, 3.0},
		"beta":   {2, 1, 4, 6.0, 6.0, 6.0}, // NULL load skipped everywhere but count(*)
		"<null>": {1, 1, 16, 2.0, 2.0, 2.0},
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing group %q (got %v)", k, got)
			continue
		}
		if g != w {
			t.Errorf("group %q = %+v, want %+v", k, g, w)
		}
	}
}

func TestAggregateGlobalAndZeroRows(t *testing.T) {
	rs := buildLoad(t)
	q := mustParse(t, "SELECT count(*), avg(LoadLast1Min), sum(CPUCount) FROM Processor WHERE CPUCount > 100")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("global aggregate over zero rows: got %d rows, want 1", out.Len())
	}
	out.Next()
	if n, _ := out.GetInt("count(*)"); n != 0 {
		t.Errorf("count(*) = %d, want 0", n)
	}
	out.GetFloat("avg(LoadLast1Min)")
	if !out.WasNull() {
		t.Error("avg over zero rows should be NULL")
	}
	out.GetInt("sum(CPUCount)")
	if !out.WasNull() {
		t.Error("sum over zero rows should be NULL")
	}
}

func TestAggregateKindValidation(t *testing.T) {
	rs := buildLoad(t)
	for _, sql := range []string{
		"SELECT sum(Model) FROM Processor",
		"SELECT avg(HostName) FROM Processor",
	} {
		q := mustParse(t, sql)
		if _, err := ApplyToResultSet(q, rs); err == nil {
			t.Errorf("%s accepted over a string column", sql)
		}
	}
	// min/max are fine on strings (lexicographic).
	q := mustParse(t, "SELECT min(HostName), max(HostName) FROM Processor")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	out.Next()
	if s, _ := out.GetString("min(HostName)"); s != "n1" {
		t.Errorf("min(HostName) = %q", s)
	}
	if s, _ := out.GetString("max(HostName)"); s != "n5" {
		t.Errorf("max(HostName) = %q", s)
	}
}

func TestAggregateOrderByLimit(t *testing.T) {
	rs := buildLoad(t)
	q := mustParse(t, "SELECT Model, sum(CPUCount) FROM Processor GROUP BY Model ORDER BY sum(CPUCount) DESC LIMIT 1")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("got %d rows", out.Len())
	}
	out.Next()
	if n, _ := out.GetInt("sum(CPUCount)"); n != 16 {
		t.Errorf("top sum = %d, want 16", n)
	}
}

func TestPartialQueryRewrite(t *testing.T) {
	q := mustParse(t, "SELECT Model, avg(LoadLast1Min), count(*) FROM Processor GROUP BY Model ORDER BY avg(LoadLast1Min) LIMIT 2")
	pq := q.PartialQuery()
	want := "SELECT Model, sum(LoadLast1Min), count(LoadLast1Min), count(*) FROM Processor GROUP BY Model"
	if got := pq.String(); got != want {
		t.Errorf("partial = %q, want %q", got, want)
	}
	// avg + sum over the same column must not produce duplicate items.
	q = mustParse(t, "SELECT avg(CPUCount), sum(CPUCount) FROM Processor")
	pq = q.PartialQuery()
	if got := pq.String(); got != "SELECT sum(CPUCount), count(CPUCount) FROM Processor" {
		t.Errorf("partial = %q", got)
	}
}

// TestFinalizeAggregateEquivalence is the avg-merge contract: splitting the
// rows over "sites", aggregating each part with the partial query, and
// merging the partials must equal aggregating all rows directly.
func TestFinalizeAggregateEquivalence(t *testing.T) {
	rs := buildLoad(t)
	q := mustParse(t, "SELECT Model, count(*), avg(LoadLast1Min), min(LoadLast1Min), max(LoadLast1Min), sum(CPUCount) FROM Processor GROUP BY Model")

	direct, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}

	// Partition rows into 3 "sites" (one gets a single row, one gets none
	// for some groups) and run the partial query per site.
	pq := q.PartialQuery()
	parts := []*resultset.ResultSet{
		rs.Filter(func(row []any) bool { return row[0] == "n1" }),
		rs.Filter(func(row []any) bool { return row[0] == "n2" || row[0] == "n3" }),
		rs.Filter(func(row []any) bool { row0, _ := row[0].(string); return row0 > "n3" }),
	}
	var merged *resultset.ResultSet
	for _, part := range parts {
		partial, err := ApplyToResultSet(pq, part)
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = resultset.New(partial.Metadata())
		}
		if err := merged.Merge(partial); err != nil {
			t.Fatal(err)
		}
	}
	final, err := FinalizeAggregate(q, merged)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := rowsByGroup(t, final, "Model"), rowsByGroup(t, direct, "Model"); !equalGroupRows(got, want) {
		t.Errorf("finalized partials != direct aggregate:\n  got  %v\n  want %v", got, want)
	}
}

// rowsByGroup indexes a grouped aggregate result by its group column value.
func rowsByGroup(t *testing.T, rs *resultset.ResultSet, groupCol string) map[string][]any {
	t.Helper()
	gi := rs.Metadata().ColumnIndex(groupCol)
	if gi < 0 {
		t.Fatalf("no %s column", groupCol)
	}
	out := make(map[string][]any, rs.Len())
	for i := 0; i < rs.Len(); i++ {
		row := rs.RowAt(i)
		out[fmt.Sprint(row[gi])] = row
	}
	return out
}

func equalGroupRows(a, b map[string][]any) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ra := range a {
		rb, ok := b[k]
		if !ok || len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			fa, aok := ra[i].(float64)
			fb, bok := rb[i].(float64)
			if aok && bok {
				if math.Abs(fa-fb) > 1e-9 {
					return false
				}
				continue
			}
			if resultset.CompareValues(ra[i], rb[i]) != 0 {
				return false
			}
		}
	}
	return true
}

// TestApplyToResultSetDoesNotMutateInput is the copy-on-write regression:
// ORDER BY with no WHERE used to sort the caller's shared rows in place.
func TestApplyToResultSetDoesNotMutateInput(t *testing.T) {
	rs := buildLoad(t)
	before := make([]string, rs.Len())
	for i := 0; i < rs.Len(); i++ {
		before[i] = fmt.Sprint(rs.RowAt(i)[0])
	}
	q := mustParse(t, "SELECT * FROM Processor ORDER BY LoadLast1Min DESC")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out == rs {
		t.Fatal("ApplyToResultSet returned its input for an ORDER BY query")
	}
	for i := 0; i < rs.Len(); i++ {
		if got := fmt.Sprint(rs.RowAt(i)[0]); got != before[i] {
			t.Fatalf("input row %d reordered: %q -> %q", i, before[i], got)
		}
	}
}

// TestApplyToResultSetConcurrentOrderBy runs concurrent ORDER BY queries in
// both directions against one shared snapshot; under -race the old in-place
// sort reports a data race, and either way the final row order must be the
// original one.
func TestApplyToResultSetConcurrentOrderBy(t *testing.T) {
	rs := buildLoad(t)
	before := make([]string, rs.Len())
	for i := 0; i < rs.Len(); i++ {
		before[i] = fmt.Sprint(rs.RowAt(i)[0])
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		desc := i%2 == 0
		wg.Add(1)
		go func(desc bool) {
			defer wg.Done()
			sql := "SELECT HostName FROM Processor ORDER BY HostName"
			if desc {
				sql += " DESC"
			}
			q, err := Parse(sql)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := ApplyToResultSet(q, rs); err != nil {
					t.Error(err)
					return
				}
			}
		}(desc)
	}
	wg.Wait()
	for i := 0; i < rs.Len(); i++ {
		if got := fmt.Sprint(rs.RowAt(i)[0]); got != before[i] {
			t.Fatalf("shared snapshot row %d reordered: %q -> %q", i, before[i], got)
		}
	}
}

func TestPlanCache(t *testing.T) {
	c := NewPlanCache(2)
	q1, err := c.Parse("SELECT * FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Parse("SELECT * FROM Processor")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("repeated parse did not return the cached plan")
	}
	if _, err := c.Parse("SELECT * FROM Memory"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Parse("SELECT * FROM Disk"); err != nil {
		t.Fatal(err) // evicts the LRU entry (Processor was touched last)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want hits=1 misses=3 evictions=1 entries=2", st)
	}
	// Errors are not cached.
	if _, err := c.Parse("SELECT FROM"); err == nil {
		t.Fatal("bad SQL accepted")
	}
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("error cached: entries = %d", got)
	}
	// Disabled and nil caches degrade to plain Parse.
	var nilCache *PlanCache
	if _, err := nilCache.Parse("SELECT * FROM t"); err != nil {
		t.Errorf("nil cache: %v", err)
	}
	if _, err := NewPlanCache(0).Parse("SELECT * FROM t"); err != nil {
		t.Errorf("zero-cap cache: %v", err)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sql := fmt.Sprintf("SELECT * FROM t%d", (i+j)%6)
				if _, err := c.Parse(sql); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
	if st.Entries > 4 {
		t.Errorf("entries = %d exceeds capacity", st.Entries)
	}
}
