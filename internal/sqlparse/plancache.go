package sqlparse

import (
	"container/list"
	"sync"
)

// PlanCache is a bounded LRU cache of parsed queries keyed by query text.
// Gateways parse every request on the hot path; real workloads repeat a
// small set of query strings (harvest SQL is always the canonical
// `SELECT * FROM <group>`), so caching the parse pays for itself quickly.
//
// Cached *Query values are shared between callers and MUST be treated as
// immutable — copy the struct (`sub := *q`) before modifying, as the
// federated sub-query rewrite does.
//
// A nil or zero-capacity PlanCache is valid and degrades to plain Parse.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	hits, misses, evictions uint64
}

type planEntry struct {
	sql string
	q   *Query
}

// NewPlanCache creates a PlanCache holding at most capacity plans.
// capacity <= 0 yields a disabled cache (still safe to use).
func NewPlanCache(capacity int) *PlanCache {
	c := &PlanCache{capacity: capacity}
	if capacity > 0 {
		c.entries = make(map[string]*list.Element, capacity)
		c.order = list.New()
	}
	return c
}

// Parse returns the parsed form of sql, consulting the cache first. Only
// successful parses are cached; errors are recomputed each time (they are
// not hot-path material).
func (c *PlanCache) Parse(sql string) (*Query, error) {
	if c == nil || c.capacity <= 0 {
		return Parse(sql)
	}
	c.mu.Lock()
	if el, ok := c.entries[sql]; ok {
		c.order.MoveToFront(el)
		c.hits++
		q := el.Value.(*planEntry).q
		c.mu.Unlock()
		return q, nil
	}
	c.misses++
	c.mu.Unlock()

	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.entries[sql]; !ok {
		c.entries[sql] = c.order.PushFront(&planEntry{sql: sql, q: q})
		if c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*planEntry).sql)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return q, nil
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Stats returns current counters. Safe on a nil cache.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil || c.capacity <= 0 {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.order.Len(),
	}
}
