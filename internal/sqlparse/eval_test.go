package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

func resolver(m map[string]any) RowResolver {
	return func(col string) (any, bool) {
		v, ok := m[strings.ToLower(col)]
		return v, ok
	}
}

func evalWhere(t *testing.T, where string, row map[string]any) bool {
	t.Helper()
	q := mustParse(t, "SELECT * FROM T WHERE "+where)
	ok, err := Eval(q.Where, resolver(row))
	if err != nil {
		t.Fatalf("Eval(%q): %v", where, err)
	}
	return ok
}

func TestEvalComparisons(t *testing.T) {
	row := map[string]any{"a": int64(5), "f": 2.5, "s": "hello", "b": true, "n": nil}
	cases := []struct {
		where string
		want  bool
	}{
		{"a = 5", true},
		{"a != 5", false},
		{"a < 6", true},
		{"a <= 5", true},
		{"a > 5", false},
		{"a >= 5", true},
		{"f = 2.5", true},
		{"f > 2", true},
		{"a > 4.5", true}, // int vs float comparison
		{"s = 'hello'", true},
		{"s != 'world'", true},
		{"b = TRUE", true},
		{"b = FALSE", false},
		{"n = 1", false},  // NULL comparisons are false
		{"n != 1", false}, // even inequality
		{"n IS NULL", true},
		{"n IS NOT NULL", false},
		{"a IS NULL", false},
		{"a IS NOT NULL", true},
	}
	for _, c := range cases {
		if got := evalWhere(t, c.where, row); got != c.want {
			t.Errorf("WHERE %s = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestEvalLogic(t *testing.T) {
	row := map[string]any{"a": int64(1), "b": int64(2)}
	cases := []struct {
		where string
		want  bool
	}{
		{"a = 1 AND b = 2", true},
		{"a = 1 AND b = 3", false},
		{"a = 0 OR b = 2", true},
		{"a = 0 OR b = 0", false},
		{"NOT a = 0", true},
		{"NOT (a = 1 AND b = 2)", false},
		{"a = 0 AND b = 2 OR a = 1", true}, // precedence
	}
	for _, c := range cases {
		if got := evalWhere(t, c.where, row); got != c.want {
			t.Errorf("WHERE %s = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestEvalUnknownColumn(t *testing.T) {
	q := mustParse(t, "SELECT * FROM T WHERE nope = 1")
	if _, err := Eval(q.Where, resolver(map[string]any{})); err == nil {
		t.Error("unknown column evaluated")
	}
}

func TestEvalNilExpr(t *testing.T) {
	ok, err := Eval(nil, resolver(nil))
	if err != nil || !ok {
		t.Errorf("nil expr = %v, %v", ok, err)
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"node%", "node01", true},
		{"node%", "anode", false},
		{"%01", "node01", true},
		{"%de%", "node01", true},
		{"n_de01", "node01", true},
		{"n_de01", "nde01", false},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "acb", false},
		{"NODE%", "node01", true}, // case-insensitive
		{"_", "", false},
		{"_", "x", true},
		{"%%", "x", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.pat, c.s); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// s LIKE s for any metacharacter-free string; '%'+s+'%' matches any
	// superstring.
	f := func(s, pre, post string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, s)
		if !MatchLike(clean, clean) {
			return false
		}
		return MatchLike("%"+clean+"%", pre+clean+post)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func buildHosts(t *testing.T) *resultset.ResultSet {
	t.Helper()
	g := glue.MustLookup(glue.GroupMemory)
	meta, err := resultset.MetadataForGroup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := resultset.NewBuilder(meta)
	// HostName, RAMSize, RAMAvailable, VirtualSize, VirtualAvailable, SwapInRate, SwapOutRate
	b.Append("n1", int64(1024), int64(512), int64(2048), int64(1024), 0.0, 0.0)
	b.Append("n2", int64(2048), int64(128), int64(4096), int64(2048), 1.5, 0.5)
	b.Append("n3", int64(512), nil, int64(1024), int64(512), 0.0, 0.0)
	rs, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestApplyToResultSet(t *testing.T) {
	rs := buildHosts(t)
	q := mustParse(t, "SELECT HostName, RAMAvailable FROM Memory WHERE RAMSize >= 1024 ORDER BY RAMSize DESC LIMIT 1")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("got %d rows", out.Len())
	}
	out.Next()
	if s, _ := out.GetString("HostName"); s != "n2" {
		t.Errorf("winner = %q", s)
	}
	if out.Metadata().ColumnCount() != 2 {
		t.Errorf("projected to %d columns", out.Metadata().ColumnCount())
	}
}

func TestApplyToResultSetNullFilter(t *testing.T) {
	rs := buildHosts(t)
	q := mustParse(t, "SELECT HostName FROM Memory WHERE RAMAvailable IS NULL")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("got %d rows", out.Len())
	}
	out.Next()
	if s, _ := out.GetString("HostName"); s != "n3" {
		t.Errorf("NULL host = %q", s)
	}
}

func TestApplyToResultSetUnknownColumn(t *testing.T) {
	rs := buildHosts(t)
	q := mustParse(t, "SELECT Bogus FROM Memory")
	if _, err := ApplyToResultSet(q, rs); err == nil {
		t.Error("unknown select column accepted")
	}
	q = mustParse(t, "SELECT * FROM Memory WHERE Bogus = 1")
	if _, err := ApplyToResultSet(q, rs); err == nil {
		t.Error("unknown where column accepted")
	}
	q = mustParse(t, "SELECT * FROM Memory ORDER BY Bogus")
	if _, err := ApplyToResultSet(q, rs); err == nil {
		t.Error("unknown order column accepted")
	}
}

func TestApplyToResultSetStarPassthrough(t *testing.T) {
	rs := buildHosts(t)
	q := mustParse(t, "SELECT * FROM Memory")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != rs.Len() || out.Metadata().ColumnCount() != rs.Metadata().ColumnCount() {
		t.Error("star query altered shape")
	}
}

func TestApplyLikeOnResultSet(t *testing.T) {
	rs := buildHosts(t)
	q := mustParse(t, "SELECT HostName FROM Memory WHERE HostName LIKE 'n_'")
	out, err := ApplyToResultSet(q, rs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("LIKE matched %d rows, want 3", out.Len())
	}
}
