package sqlparse

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseSelectStar(t *testing.T) {
	q := mustParse(t, "SELECT * FROM Processor")
	if !q.Star() || q.Table != "Processor" || q.Where != nil || q.Limit != -1 {
		t.Errorf("unexpected query %+v", q)
	}
}

func TestParseColumns(t *testing.T) {
	q := mustParse(t, "select HostName, LoadLast1Min from Processor")
	if q.Star() {
		t.Fatal("Star on explicit columns")
	}
	if len(q.Columns) != 2 || q.Columns[0] != "HostName" || q.Columns[1] != "LoadLast1Min" {
		t.Errorf("columns %v", q.Columns)
	}
}

func TestParseWhereOperators(t *testing.T) {
	ops := map[string]CompareOp{
		"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for text, want := range ops {
		q := mustParse(t, "SELECT * FROM Memory WHERE RAMSize "+text+" 512")
		c, ok := q.Where.(*Comparison)
		if !ok {
			t.Fatalf("%s: not a Comparison: %T", text, q.Where)
		}
		if c.Op != want {
			t.Errorf("%s parsed as %v", text, c.Op)
		}
		if v, ok := c.Value.(int64); !ok || v != 512 {
			t.Errorf("%s literal = %#v", text, c.Value)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT * FROM T WHERE A = 'it''s' AND B = 1.5 AND C = TRUE AND D = FALSE AND E = -3")
	var lits []any
	walkColumns(q.Where, func(string) {})
	var collect func(e Expr)
	collect = func(e Expr) {
		switch x := e.(type) {
		case *Comparison:
			lits = append(lits, x.Value)
		case *Logical:
			collect(x.Left)
			if x.Right != nil {
				collect(x.Right)
			}
		}
	}
	collect(q.Where)
	if len(lits) != 5 {
		t.Fatalf("got %d literals", len(lits))
	}
	if lits[0] != "it's" {
		t.Errorf("string literal %#v", lits[0])
	}
	if lits[1] != 1.5 {
		t.Errorf("float literal %#v", lits[1])
	}
	if lits[2] != true || lits[3] != false {
		t.Errorf("bool literals %#v %#v", lits[2], lits[3])
	}
	if lits[4] != int64(-3) {
		t.Errorf("negative int literal %#v", lits[4])
	}
}

func TestParsePrecedence(t *testing.T) {
	// A=1 OR B=2 AND C=3 must parse as A=1 OR (B=2 AND C=3).
	q := mustParse(t, "SELECT * FROM T WHERE A = 1 OR B = 2 AND C = 3")
	or, ok := q.Where.(*Logical)
	if !ok || or.Op != OpOr {
		t.Fatalf("top is %v", q.Where)
	}
	and, ok := or.Right.(*Logical)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR is %v", or.Right)
	}
}

func TestParseParensAndNot(t *testing.T) {
	q := mustParse(t, "SELECT * FROM T WHERE NOT (A = 1 OR B = 2)")
	not, ok := q.Where.(*Logical)
	if !ok || not.Op != OpNot {
		t.Fatalf("top is %v", q.Where)
	}
	if _, ok := not.Left.(*Logical); !ok {
		t.Fatalf("inner is %T", not.Left)
	}
}

func TestParseLikeAndNull(t *testing.T) {
	q := mustParse(t, "SELECT * FROM T WHERE Name LIKE 'node%' AND X IS NULL AND Y IS NOT NULL")
	s := q.Where.String()
	if !strings.Contains(s, "LIKE 'node%'") || !strings.Contains(s, "X IS NULL") || !strings.Contains(s, "Y IS NOT NULL") {
		t.Errorf("rendered %q", s)
	}
}

func TestParseOrderLimit(t *testing.T) {
	q := mustParse(t, "SELECT * FROM T ORDER BY Load DESC LIMIT 10")
	if q.OrderBy != "Load" || !q.Desc || q.Limit != 10 {
		t.Errorf("query %+v", q)
	}
	q = mustParse(t, "SELECT * FROM T ORDER BY Load ASC")
	if q.Desc {
		t.Error("ASC parsed as Desc")
	}
	q = mustParse(t, "SELECT * FROM T ORDER BY Load")
	if q.Desc || q.OrderBy != "Load" {
		t.Error("bare ORDER BY")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM T",
		"SELECT FROM T",
		"SELECT * T",
		"SELECT * FROM",
		"SELECT * FROM T WHERE",
		"SELECT * FROM T WHERE A",
		"SELECT * FROM T WHERE A =",
		"SELECT * FROM T WHERE A = 'unterminated",
		"SELECT * FROM T WHERE A = 1 trailing",
		"SELECT * FROM T LIMIT -1",
		"SELECT * FROM T LIMIT many",
		"SELECT * FROM T WHERE A LIKE 5",
		"SELECT * FROM T WHERE (A = 1",
		"SELECT * FROM T WHERE A ! 1",
		"SELECT * FROM T WHERE SELECT = 1",
		"SELECT * FROM T ORDER Load",
		"SELECT * FROM T WHERE A IS 5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error type %T", src, err)
			}
		}
	}
}

func TestRoundTripString(t *testing.T) {
	srcs := []string{
		"SELECT * FROM Processor",
		"SELECT HostName FROM Processor WHERE LoadLast1Min > 2.5 ORDER BY HostName LIMIT 5",
		"SELECT * FROM Disk WHERE (HostName = 'n1' AND Available < 100) OR DeviceName LIKE 'sd%'",
		"SELECT * FROM Memory WHERE RAMAvailable IS NOT NULL",
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestColumnsReferenced(t *testing.T) {
	q := mustParse(t, "SELECT A, B FROM T WHERE C = 1 AND a > 2 ORDER BY D")
	got := q.ColumnsReferenced()
	want := []string{"A", "B", "C", "D"}
	if len(got) != len(want) {
		t.Fatalf("referenced %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("referenced[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseIdentifierQuirks(t *testing.T) {
	q := mustParse(t, "SELECT * FROM T WHERE e = 1") // 'e' must not lex as exponent
	c := q.Where.(*Comparison)
	if c.Column != "e" {
		t.Errorf("column %q", c.Column)
	}
	q = mustParse(t, "SELECT * FROM T WHERE A = 1e3")
	if v := q.Where.(*Comparison).Value; v != 1000.0 {
		t.Errorf("exponent literal %#v", v)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Also fuzz-ish mutations of a valid query.
	base := "SELECT a, b FROM t WHERE x = 'y' AND z >= 1.5 ORDER BY a DESC LIMIT 3"
	for i := 0; i < len(base); i++ {
		_, _ = Parse(base[:i])
		_, _ = Parse(base[:i] + "(" + base[i:])
	}
}
