// Package sqlparse implements the SQL dialect GridRM uses for resource
// queries (§3 of the paper: "Queries for resource data are submitted as SQL
// statements and pass down to the data source drivers in the same format").
//
// The dialect covers single-table SELECT statements over GLUE groups:
//
//	SELECT * | col [, col ...]
//	FROM group
//	[WHERE predicate]           =, !=, <>, <, <=, >, >=, LIKE,
//	                            IS [NOT] NULL, AND, OR, NOT, parentheses
//	[ORDER BY col [ASC|DESC]]
//	[LIMIT n]
//
// A query-string parser of this shape is what the paper says is "supplied as
// part of a GridRM driver development API" (§3.2.1); every driver in
// internal/drivers uses this package.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = != <> < <= > >=
	tokComma
	tokLParen
	tokRParen
	tokStar
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError describes a lexical or grammatical error with its byte offset
// in the query string.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlparse: %s (at offset %d)", e.Msg, e.Pos)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == ',':
			l.pos++
			l.emit(tokComma, ",", start)
		case c == '(':
			l.pos++
			l.emit(tokLParen, "(", start)
		case c == ')':
			l.pos++
			l.emit(tokRParen, ")", start)
		case c == '*':
			l.pos++
			l.emit(tokStar, "*", start)
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s, start)
		case c == '=':
			l.pos++
			l.emit(tokOp, "=", start)
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.emit(tokOp, "!=", start)
			} else {
				return nil, errAt(start, "unexpected %q", "!")
			}
		case c == '<':
			switch {
			case l.peek(1) == '=':
				l.pos += 2
				l.emit(tokOp, "<=", start)
			case l.peek(1) == '>':
				l.pos += 2
				l.emit(tokOp, "!=", start)
			default:
				l.pos++
				l.emit(tokOp, "<", start)
			}
		case c == '>':
			if l.peek(1) == '=' {
				l.pos += 2
				l.emit(tokOp, ">=", start)
			} else {
				l.pos++
				l.emit(tokOp, ">", start)
			}
		case c == '-' || c == '.' || unicode.IsDigit(rune(c)):
			n, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			l.emit(tokNumber, n, start)
		case isIdentStart(rune(c)):
			l.emit(tokIdent, l.lexIdent(), start)
		default:
			return nil, errAt(start, "unexpected character %q", string(c))
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.peek(1) == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", errAt(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (string, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := false
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
		digits = true
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			digits = true
		}
	}
	if !digits {
		return "", errAt(start, "malformed number")
	}
	// Exponent.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		expDigits := false
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			expDigits = true
		}
		if !expDigits {
			l.pos = mark // 'e' was an identifier start, not an exponent
		}
	}
	return l.src[start:l.pos], nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}
