package sqlparse

import (
	"errors"
	"strconv"
	"strings"
)

// Parse parses a GridRM SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, errAt(t.pos, "unexpected trailing input %q", t.text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) keyword(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return errAt(p.cur().pos, "expected %s, got %q", word, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", errAt(t.pos, "expected identifier, got %q", t.text)
	}
	if isReserved(t.text) {
		return "", errAt(t.pos, "unexpected keyword %q", t.text)
	}
	p.advance()
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "order": true, "by": true,
	"group": true, "limit": true, "and": true, "or": true, "not": true,
	"like": true, "is": true, "null": true, "asc": true, "desc": true,
	"true": true, "false": true,
}

func isReserved(word string) bool { return reserved[strings.ToLower(word)] }

// aggFuncs maps aggregate function names (lowercase) to their AggFunc.
// The names are contextual, not reserved: `SELECT count FROM t` still
// selects a column called count — only `count(` is a function call.
var aggFuncs = map[string]AggFunc{
	"count": AggCount, "min": AggMin, "max": AggMax,
	"avg": AggAvg, "sum": AggSum,
}

// peekAggFunc reports the aggregate function at the cursor, if the cursor
// is on a function-call head (`name` immediately followed by `(`).
func (p *parser) peekAggFunc() (AggFunc, bool) {
	t := p.cur()
	if t.kind != tokIdent {
		return AggNone, false
	}
	fn, ok := aggFuncs[strings.ToLower(t.text)]
	if !ok || p.toks[p.i+1].kind != tokLParen {
		return AggNone, false
	}
	return fn, true
}

// parseAggItem parses one `fn ( column | * )` call. The cursor must be on
// a function-call head (see peekAggFunc).
func (p *parser) parseAggItem() (SelectItem, error) {
	fn, _ := p.peekAggFunc()
	fnTok := p.advance() // function name
	p.advance()          // '('
	it := SelectItem{Agg: fn}
	if p.cur().kind == tokStar {
		if fn != AggCount {
			return it, errAt(p.cur().pos, "%s(*) is not valid; only count(*) may use *", fn)
		}
		it.Star = true
		p.advance()
	} else {
		col, err := p.expectIdent()
		if err != nil {
			return it, err
		}
		it.Column = col
	}
	if p.cur().kind != tokRParen {
		return it, errAt(p.cur().pos, "expected ')' to close %s(, got %q", fnTok.text, p.cur().text)
	}
	p.advance()
	return it, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	star := false
	var items []SelectItem
	hasAgg := false
	if p.cur().kind == tokStar {
		star = true
		p.advance()
	} else {
		for {
			if _, ok := p.peekAggFunc(); ok {
				it, err := p.parseAggItem()
				if err != nil {
					return nil, err
				}
				items = append(items, it)
				hasAgg = true
			} else {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				items = append(items, SelectItem{Column: col})
			}
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.Table = table

	if p.keyword("WHERE") {
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		groupPos := p.cur().pos
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
		if star {
			return nil, errAt(groupPos, "SELECT * cannot be combined with GROUP BY")
		}
	}
	// A query aggregates when the select list has aggregate calls or a
	// GROUP BY clause is present; otherwise the items are plain columns.
	if hasAgg || len(q.GroupBy) > 0 {
		q.Items = items
		if err := validateAggregateQuery(q); err != nil {
			return nil, err
		}
	} else {
		for _, it := range items {
			q.Columns = append(q.Columns, it.Column)
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		orderPos := p.cur().pos
		var orderBy string
		if _, ok := p.peekAggFunc(); ok {
			it, err := p.parseAggItem()
			if err != nil {
				return nil, err
			}
			orderBy = it.Name()
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			orderBy = col
		}
		if q.Aggregate() {
			// ORDER BY addresses the aggregate output, so it must name
			// one of the produced columns.
			found := false
			for _, it := range q.Items {
				if strings.EqualFold(it.Name(), orderBy) {
					found = true
					break
				}
			}
			if !found {
				return nil, errAt(orderPos, "ORDER BY %s does not match any select list entry", orderBy)
			}
		} else if strings.ContainsRune(orderBy, '(') {
			return nil, errAt(orderPos, "ORDER BY aggregate requires an aggregate query")
		}
		q.OrderBy = orderBy
		if p.keyword("DESC") {
			q.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "invalid LIMIT %q", t.text)
		}
		p.advance()
		q.Limit = n
	}
	return q, nil
}

// validateAggregateQuery enforces the GROUP BY contract: every bare select
// item must be a grouping column, and duplicate output names are rejected
// (they would collide in the result metadata).
func validateAggregateQuery(q *Query) error {
	grouped := make(map[string]bool, len(q.GroupBy))
	for _, g := range q.GroupBy {
		grouped[strings.ToLower(g)] = true
	}
	names := make(map[string]bool, len(q.Items))
	for _, it := range q.Items {
		if it.Agg == AggNone && !grouped[strings.ToLower(it.Column)] {
			return &SyntaxError{Msg: "column " + it.Column + " must appear in GROUP BY or inside an aggregate"}
		}
		key := strings.ToLower(it.Name())
		if names[key] {
			return &SyntaxError{Msg: "duplicate select list entry " + it.Name()}
		}
		names[key] = true
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Logical{Op: OpNot, Left: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.cur().kind == tokLParen {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, errAt(p.cur().pos, "expected ')', got %q", p.cur().text)
		}
		p.advance()
		return e, nil
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.keyword("IS") {
		negate := p.keyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &NullCheck{Column: col, Negate: negate}, nil
	}
	if p.keyword("LIKE") {
		t := p.cur()
		if t.kind != tokString {
			return nil, errAt(t.pos, "LIKE requires a string pattern, got %q", t.text)
		}
		p.advance()
		return &Comparison{Column: col, Op: OpLike, Value: t.text}, nil
	}
	t := p.cur()
	if t.kind != tokOp {
		return nil, errAt(t.pos, "expected comparison operator, got %q", t.text)
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, errAt(t.pos, "unknown operator %q", t.text)
	}
	p.advance()
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &Comparison{Column: col, Op: op, Value: val}, nil
}

func (p *parser) parseLiteral() (any, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return t.text, nil
	case tokNumber:
		p.advance()
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return n, nil
			}
			if errors.Is(err, strconv.ErrRange) {
				// Silently demoting to float64 would lose precision and
				// make large-ID equality comparisons lie; refuse instead.
				return nil, errAt(t.pos, "integer literal %q overflows int64", t.text)
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t.pos, "invalid number %q", t.text)
		}
		return f, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return true, nil
		case "false":
			p.advance()
			return false, nil
		case "null":
			p.advance()
			return nil, nil
		}
	}
	return nil, errAt(t.pos, "expected literal, got %q", t.text)
}
