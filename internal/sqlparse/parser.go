package sqlparse

import (
	"strconv"
	"strings"
)

// Parse parses a GridRM SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, errAt(t.pos, "unexpected trailing input %q", t.text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) keyword(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return errAt(p.cur().pos, "expected %s, got %q", word, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", errAt(t.pos, "expected identifier, got %q", t.text)
	}
	if isReserved(t.text) {
		return "", errAt(t.pos, "unexpected keyword %q", t.text)
	}
	p.advance()
	return t.text, nil
}

var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "order": true, "by": true,
	"limit": true, "and": true, "or": true, "not": true, "like": true,
	"is": true, "null": true, "asc": true, "desc": true, "true": true,
	"false": true,
}

func isReserved(word string) bool { return reserved[strings.ToLower(word)] }

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.cur().kind == tokStar {
		p.advance()
	} else {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.Columns = append(q.Columns, col)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.Table = table

	if p.keyword("WHERE") {
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.OrderBy = col
		if p.keyword("DESC") {
			q.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "invalid LIMIT %q", t.text)
		}
		p.advance()
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Logical{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Logical{Op: OpNot, Left: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.cur().kind == tokLParen {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, errAt(p.cur().pos, "expected ')', got %q", p.cur().text)
		}
		p.advance()
		return e, nil
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.keyword("IS") {
		negate := p.keyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &NullCheck{Column: col, Negate: negate}, nil
	}
	if p.keyword("LIKE") {
		t := p.cur()
		if t.kind != tokString {
			return nil, errAt(t.pos, "LIKE requires a string pattern, got %q", t.text)
		}
		p.advance()
		return &Comparison{Column: col, Op: OpLike, Value: t.text}, nil
	}
	t := p.cur()
	if t.kind != tokOp {
		return nil, errAt(t.pos, "expected comparison operator, got %q", t.text)
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, errAt(t.pos, "unknown operator %q", t.text)
	}
	p.advance()
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &Comparison{Column: col, Op: op, Value: val}, nil
}

func (p *parser) parseLiteral() (any, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return t.text, nil
	case tokNumber:
		p.advance()
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return n, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t.pos, "invalid number %q", t.text)
		}
		return f, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return true, nil
		case "false":
			p.advance()
			return false, nil
		case "null":
			p.advance()
			return nil, nil
		}
	}
	return nil, errAt(t.pos, "expected literal, got %q", t.text)
}
