package sqlparse

import (
	"strconv"
	"strings"
)

// AggFunc enumerates the aggregate functions the grammar supports.
type AggFunc int

// Aggregate functions. AggNone marks a bare (grouping) column in an
// aggregate select list.
const (
	AggNone AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
	AggSum
)

// String returns the SQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	}
	return ""
}

// SelectItem is one entry of an aggregate select list: either a bare
// grouping column (Agg == AggNone) or an aggregate over a column. Star is
// set only for count(*).
type SelectItem struct {
	// Column is the input column name; empty for count(*).
	Column string
	// Agg is the aggregate applied, or AggNone for a grouping column.
	Agg AggFunc
	// Star marks count(*).
	Star bool
}

// Name returns the canonical output column label for the item, e.g.
// "HostName", "avg(LoadLast1Min)" or "count(*)".
func (it SelectItem) Name() string {
	if it.Agg == AggNone {
		return it.Column
	}
	if it.Star {
		return it.Agg.String() + "(*)"
	}
	return it.Agg.String() + "(" + it.Column + ")"
}

// Query is the parsed form of a GridRM SELECT statement.
type Query struct {
	// Columns lists the selected column names; empty means SELECT *.
	// Unused (nil) when the query aggregates — see Items.
	Columns []string
	// Items is the select list of an aggregate query (any aggregate
	// function or GROUP BY present); empty for plain queries.
	Items []SelectItem
	// GroupBy lists the grouping columns; empty for a global aggregate
	// or a plain query.
	GroupBy []string
	// Table is the FROM target — a GLUE group name.
	Table string
	// Where is the optional predicate; nil when absent.
	Where Expr
	// OrderBy is the optional ordering column; empty when absent. In an
	// aggregate query it names an output column, e.g. "avg(Load)".
	OrderBy string
	// Desc reverses the ordering when OrderBy is set.
	Desc bool
	// Limit caps the row count; -1 means no limit.
	Limit int
}

// Star reports whether the query selects all columns.
func (q *Query) Star() bool { return len(q.Columns) == 0 && len(q.Items) == 0 }

// Aggregate reports whether the query computes aggregates (has aggregate
// functions and/or GROUP BY).
func (q *Query) Aggregate() bool { return len(q.Items) > 0 }

// String renders the query back to SQL text (canonical form).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	switch {
	case q.Aggregate():
		for i, it := range q.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(it.Name())
		}
	case q.Star():
		sb.WriteByte('*')
	default:
		sb.WriteString(strings.Join(q.Columns, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.Table)
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(q.GroupBy, ", "))
	}
	if q.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(q.OrderBy)
		if q.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(q.Limit))
	}
	return sb.String()
}

// ColumnsReferenced returns every input column name the query needs
// (select list, aggregate arguments, WHERE, GROUP BY, ORDER BY),
// deduplicated, preserving first-seen order. Drivers use this to fetch
// only the native values a query needs. For aggregate queries ORDER BY is
// excluded: there it names an output column such as "avg(Load)", not an
// input.
func (q *Query) ColumnsReferenced() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		key := strings.ToLower(name)
		if !seen[key] {
			seen[key] = true
			out = append(out, name)
		}
	}
	for _, c := range q.Columns {
		add(c)
	}
	for _, it := range q.Items {
		if it.Column != "" {
			add(it.Column)
		}
	}
	if q.Where != nil {
		walkColumns(q.Where, add)
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	if q.OrderBy != "" && !q.Aggregate() {
		add(q.OrderBy)
	}
	return out
}

// PartialQuery rewrites an aggregate query into the per-site sub-query of
// a federated execution: grouping columns plus the partial aggregates
// needed to reconstruct the final answer (avg becomes sum + count; count,
// sum, min and max are already mergeable). ORDER BY and LIMIT are dropped
// — they only make sense over the combined result. The rewrite is plain
// SQL in the same grammar, so any driver or remote gateway that can answer
// an aggregate query can answer the partial form. Panics if q is not an
// aggregate query.
func (q *Query) PartialQuery() *Query {
	if !q.Aggregate() {
		panic("sqlparse: PartialQuery on non-aggregate query")
	}
	pq := &Query{
		Table:   q.Table,
		Where:   q.Where,
		GroupBy: append([]string(nil), q.GroupBy...),
		Limit:   -1,
	}
	seen := make(map[string]bool)
	addItem := func(it SelectItem) {
		key := strings.ToLower(it.Name())
		if !seen[key] {
			seen[key] = true
			pq.Items = append(pq.Items, it)
		}
	}
	for _, g := range q.GroupBy {
		addItem(SelectItem{Column: g})
	}
	for _, it := range q.Items {
		switch it.Agg {
		case AggNone:
			addItem(it)
		case AggAvg:
			addItem(SelectItem{Column: it.Column, Agg: AggSum})
			addItem(SelectItem{Column: it.Column, Agg: AggCount})
		default:
			addItem(it)
		}
	}
	return pq
}

func walkColumns(e Expr, add func(string)) {
	switch x := e.(type) {
	case *Comparison:
		add(x.Column)
	case *NullCheck:
		add(x.Column)
	case *Logical:
		walkColumns(x.Left, add)
		if x.Right != nil {
			walkColumns(x.Right, add)
		}
	}
}

// Expr is a WHERE-clause expression node.
type Expr interface {
	// String renders the expression as SQL text.
	String() string
}

// CompareOp enumerates comparison operators.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	}
	return "?"
}

// Comparison is `Column op Literal`.
type Comparison struct {
	Column string
	Op     CompareOp
	// Value is the literal operand: string, int64, float64 or bool.
	Value any
}

// String implements Expr.
func (c *Comparison) String() string {
	return c.Column + " " + c.Op.String() + " " + formatLiteral(c.Value)
}

// NullCheck is `Column IS [NOT] NULL`.
type NullCheck struct {
	Column string
	Negate bool
}

// String implements Expr.
func (n *NullCheck) String() string {
	if n.Negate {
		return n.Column + " IS NOT NULL"
	}
	return n.Column + " IS NULL"
}

// LogicalOp enumerates boolean connectives.
type LogicalOp int

// Boolean connectives.
const (
	OpAnd LogicalOp = iota
	OpOr
	OpNot
)

// Logical combines sub-expressions with AND/OR/NOT. For OpNot, only Left is
// set.
type Logical struct {
	Op    LogicalOp
	Left  Expr
	Right Expr
}

// String implements Expr.
func (l *Logical) String() string {
	switch l.Op {
	case OpNot:
		return "NOT (" + l.Left.String() + ")"
	case OpAnd:
		return "(" + l.Left.String() + " AND " + l.Right.String() + ")"
	default:
		return "(" + l.Left.String() + " OR " + l.Right.String() + ")"
	}
}

func formatLiteral(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}
