package sqlparse

import (
	"strconv"
	"strings"
)

// Query is the parsed form of a GridRM SELECT statement.
type Query struct {
	// Columns lists the selected column names; empty means SELECT *.
	Columns []string
	// Table is the FROM target — a GLUE group name.
	Table string
	// Where is the optional predicate; nil when absent.
	Where Expr
	// OrderBy is the optional ordering column; empty when absent.
	OrderBy string
	// Desc reverses the ordering when OrderBy is set.
	Desc bool
	// Limit caps the row count; -1 means no limit.
	Limit int
}

// Star reports whether the query selects all columns.
func (q *Query) Star() bool { return len(q.Columns) == 0 }

// String renders the query back to SQL text (canonical form).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Star() {
		sb.WriteByte('*')
	} else {
		sb.WriteString(strings.Join(q.Columns, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.Table)
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if q.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(q.OrderBy)
		if q.Desc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(q.Limit))
	}
	return sb.String()
}

// ColumnsReferenced returns every column name mentioned anywhere in the
// query (select list, WHERE, ORDER BY), deduplicated, preserving first-seen
// order. Drivers use this to fetch only the native values a query needs.
func (q *Query) ColumnsReferenced() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		key := strings.ToLower(name)
		if !seen[key] {
			seen[key] = true
			out = append(out, name)
		}
	}
	for _, c := range q.Columns {
		add(c)
	}
	if q.Where != nil {
		walkColumns(q.Where, add)
	}
	if q.OrderBy != "" {
		add(q.OrderBy)
	}
	return out
}

func walkColumns(e Expr, add func(string)) {
	switch x := e.(type) {
	case *Comparison:
		add(x.Column)
	case *NullCheck:
		add(x.Column)
	case *Logical:
		walkColumns(x.Left, add)
		if x.Right != nil {
			walkColumns(x.Right, add)
		}
	}
}

// Expr is a WHERE-clause expression node.
type Expr interface {
	// String renders the expression as SQL text.
	String() string
}

// CompareOp enumerates comparison operators.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	}
	return "?"
}

// Comparison is `Column op Literal`.
type Comparison struct {
	Column string
	Op     CompareOp
	// Value is the literal operand: string, int64, float64 or bool.
	Value any
}

// String implements Expr.
func (c *Comparison) String() string {
	return c.Column + " " + c.Op.String() + " " + formatLiteral(c.Value)
}

// NullCheck is `Column IS [NOT] NULL`.
type NullCheck struct {
	Column string
	Negate bool
}

// String implements Expr.
func (n *NullCheck) String() string {
	if n.Negate {
		return n.Column + " IS NOT NULL"
	}
	return n.Column + " IS NULL"
}

// LogicalOp enumerates boolean connectives.
type LogicalOp int

// Boolean connectives.
const (
	OpAnd LogicalOp = iota
	OpOr
	OpNot
)

// Logical combines sub-expressions with AND/OR/NOT. For OpNot, only Left is
// set.
type Logical struct {
	Op    LogicalOp
	Left  Expr
	Right Expr
}

// String implements Expr.
func (l *Logical) String() string {
	switch l.Op {
	case OpNot:
		return "NOT (" + l.Left.String() + ")"
	case OpAnd:
		return "(" + l.Left.String() + " AND " + l.Right.String() + ")"
	default:
		return "(" + l.Left.String() + " OR " + l.Right.String() + ")"
	}
}

func formatLiteral(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}
