package sqlparse

import (
	"fmt"
	"strings"

	"gridrm/internal/glue"
	"gridrm/internal/resultset"
)

// This file implements the aggregation evaluator behind ApplyToResultSet
// and the partial-aggregate merge used by federated (all-sites) queries.
// Aggregates follow SQL NULL semantics: NULL inputs are skipped, count(*)
// counts every row, count(col) counts non-NULL values, and sum/min/max/avg
// of zero non-NULL inputs yield NULL. A global aggregate (no GROUP BY)
// over zero rows still produces one row (count = 0, the rest NULL).

// aggItemPlan binds one select-list item to the input result set.
type aggItemPlan struct {
	item SelectItem
	in   int       // input column index; -1 for count(*)
	kind glue.Kind // input column kind; glue.Int for count(*)
}

// aggPlan is a compiled aggregate select list over a concrete input shape.
type aggPlan struct {
	items    []aggItemPlan
	groupIdx []int // input column indexes of the GROUP BY columns
	meta     *resultset.Metadata
}

func numericKind(k glue.Kind) bool { return k == glue.Int || k == glue.Float }

// buildAggPlan resolves q's items against the input metadata and derives
// the output metadata.
func buildAggPlan(q *Query, in *resultset.Metadata) (*aggPlan, error) {
	plan := &aggPlan{}
	for _, g := range q.GroupBy {
		i := in.ColumnIndex(g)
		if i < 0 {
			return nil, fmt.Errorf("sqlparse: unknown column %q in table %s", g, q.Table)
		}
		plan.groupIdx = append(plan.groupIdx, i)
	}
	cols := make([]resultset.Column, 0, len(q.Items))
	for _, it := range q.Items {
		ip := aggItemPlan{item: it, in: -1, kind: glue.Int}
		var inCol resultset.Column
		if !it.Star {
			i := in.ColumnIndex(it.Column)
			if i < 0 {
				return nil, fmt.Errorf("sqlparse: unknown column %q in table %s", it.Column, q.Table)
			}
			ip.in = i
			inCol = in.Column(i)
			ip.kind = inCol.Kind
		}
		var out resultset.Column
		switch it.Agg {
		case AggNone:
			out = inCol
		case AggCount:
			out = resultset.Column{Name: it.Name(), Kind: glue.Int, Group: inCol.Group}
		case AggSum:
			if !numericKind(ip.kind) {
				return nil, fmt.Errorf("sqlparse: sum(%s) requires a numeric column, %s is %s",
					it.Column, it.Column, ip.kind)
			}
			out = resultset.Column{Name: it.Name(), Kind: ip.kind, Unit: inCol.Unit, Group: inCol.Group}
		case AggAvg:
			if !numericKind(ip.kind) {
				return nil, fmt.Errorf("sqlparse: avg(%s) requires a numeric column, %s is %s",
					it.Column, it.Column, ip.kind)
			}
			out = resultset.Column{Name: it.Name(), Kind: glue.Float, Unit: inCol.Unit, Group: inCol.Group}
		case AggMin, AggMax:
			out = resultset.Column{Name: it.Name(), Kind: ip.kind, Unit: inCol.Unit, Group: inCol.Group}
		}
		cols = append(cols, out)
		plan.items = append(plan.items, ip)
	}
	meta, err := resultset.NewMetadata(cols)
	if err != nil {
		return nil, err
	}
	plan.meta = meta
	return plan, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	n    int64 // rows observed (non-NULL for everything but count(*))
	sumI int64
	sumF float64
	cmp  any // current min/max
}

func (s *aggState) observe(ip aggItemPlan, v any) {
	switch ip.item.Agg {
	case AggCount:
		if ip.item.Star || v != nil {
			s.n++
		}
	case AggSum:
		if v == nil {
			return
		}
		if ip.kind == glue.Int {
			s.sumI += v.(int64)
		} else {
			s.sumF += asFloat(v)
		}
		s.n++
	case AggAvg:
		if v == nil {
			return
		}
		s.sumF += asFloat(v)
		s.n++
	case AggMin:
		if v == nil {
			return
		}
		if s.n == 0 || resultset.CompareValues(v, s.cmp) < 0 {
			s.cmp = v
		}
		s.n++
	case AggMax:
		if v == nil {
			return
		}
		if s.n == 0 || resultset.CompareValues(v, s.cmp) > 0 {
			s.cmp = v
		}
		s.n++
	}
}

func (s *aggState) value(ip aggItemPlan) any {
	switch ip.item.Agg {
	case AggCount:
		return s.n
	case AggSum:
		if s.n == 0 {
			return nil
		}
		if ip.kind == glue.Int {
			return s.sumI
		}
		return s.sumF
	case AggAvg:
		if s.n == 0 {
			return nil
		}
		return s.sumF / float64(s.n)
	default: // min/max
		if s.n == 0 {
			return nil
		}
		return s.cmp
	}
}

// normName canonicalizes an output column label for case-insensitive
// lookup, matching resultset's case-insensitive column index.
func normName(name string) string { return strings.ToLower(name) }

func asFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

// aggGroup is the accumulator row for one grouping key.
type aggGroup struct {
	rep    []any // first row seen — source of the group-by column values
	states []aggState
}

// aggregateResultSet evaluates q's aggregate select list over the (already
// WHERE-filtered) rows of rs, grouping by q.GroupBy. Groups are emitted in
// first-seen row order.
func aggregateResultSet(q *Query, rs *resultset.ResultSet) (*resultset.ResultSet, error) {
	plan, err := buildAggPlan(q, rs.Metadata())
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*aggGroup)
	var order []string
	for i := 0; i < rs.Len(); i++ {
		row := rs.RowAt(i)
		key := resultset.GroupKey(row, plan.groupIdx)
		g := groups[key]
		if g == nil {
			g = &aggGroup{rep: row, states: make([]aggState, len(plan.items))}
			groups[key] = g
			order = append(order, key)
		}
		for j, ip := range plan.items {
			var v any
			if ip.in >= 0 {
				v = row[ip.in]
			}
			g.states[j].observe(ip, v)
		}
	}
	if len(q.GroupBy) == 0 && len(order) == 0 {
		// Global aggregate over zero rows: one row of empty accumulators.
		groups[""] = &aggGroup{states: make([]aggState, len(plan.items))}
		order = append(order, "")
	}
	b := resultset.NewBuilder(plan.meta)
	for _, key := range order {
		g := groups[key]
		row := make([]any, len(plan.items))
		for j, ip := range plan.items {
			if ip.item.Agg == AggNone {
				row[j] = g.rep[ip.in]
			} else {
				row[j] = g.states[j].value(ip)
			}
		}
		b.Append(row...)
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.Source = rs.Source
	out.Fetched = rs.Fetched
	return out, nil
}

// FinalizeAggregate combines partial aggregate rows — the concatenated
// per-site results of q.PartialQuery() — into q's final answer: counts and
// sums add up, min-of-mins, max-of-maxes, and avg is finalized as
// sum/count. ORDER BY and LIMIT are left to the caller. The shape of
// partial must match q.PartialQuery()'s select list (one column per
// partial item, canonical names).
func FinalizeAggregate(q *Query, partial *resultset.ResultSet) (*resultset.ResultSet, error) {
	if !q.Aggregate() {
		return nil, fmt.Errorf("sqlparse: FinalizeAggregate on non-aggregate query")
	}
	pq := q.PartialQuery()
	pmeta := partial.Metadata()
	// Resolve every partial item and GROUP BY column in the partial shape.
	pIdx := make([]int, len(pq.Items))
	for i, it := range pq.Items {
		j := pmeta.ColumnIndex(it.Name())
		if j < 0 {
			return nil, fmt.Errorf("sqlparse: partial result missing column %q", it.Name())
		}
		pIdx[i] = j
	}
	var groupIdx []int
	for _, g := range q.GroupBy {
		j := pmeta.ColumnIndex(g)
		if j < 0 {
			return nil, fmt.Errorf("sqlparse: partial result missing group column %q", g)
		}
		groupIdx = append(groupIdx, j)
	}

	// Merge partial rows group by group. The merge semantics per partial
	// aggregate: count → sum of counts, sum → sum of sums, min → min of
	// mins, max → max of maxes; NULL partials (a site with no matching
	// non-NULL values) are skipped.
	groups := make(map[string]*aggGroup)
	var order []string
	for i := 0; i < partial.Len(); i++ {
		row := partial.RowAt(i)
		key := resultset.GroupKey(row, groupIdx)
		g := groups[key]
		if g == nil {
			g = &aggGroup{rep: row, states: make([]aggState, len(pq.Items))}
			groups[key] = g
			order = append(order, key)
		}
		for j, it := range pq.Items {
			v := row[pIdx[j]]
			st := &g.states[j]
			switch it.Agg {
			case AggCount:
				if v != nil {
					st.n += v.(int64)
				}
			case AggSum:
				if v == nil {
					continue
				}
				if pmeta.Column(pIdx[j]).Kind == glue.Int {
					st.sumI += v.(int64)
				} else {
					st.sumF += asFloat(v)
				}
				st.n++
			case AggMin:
				if v == nil {
					continue
				}
				if st.n == 0 || resultset.CompareValues(v, st.cmp) < 0 {
					st.cmp = v
				}
				st.n++
			case AggMax:
				if v == nil {
					continue
				}
				if st.n == 0 || resultset.CompareValues(v, st.cmp) > 0 {
					st.cmp = v
				}
				st.n++
			}
		}
	}
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &aggGroup{states: make([]aggState, len(pq.Items))}
		order = append(order, "")
	}

	// Partial item lookup by canonical name, for finalizing avg and for
	// mapping q.Items back onto merged states.
	stateOf := make(map[string]int, len(pq.Items))
	for i, it := range pq.Items {
		stateOf[normName(it.Name())] = i
	}

	// Final output metadata mirrors the single-site aggregate shape.
	cols := make([]resultset.Column, 0, len(q.Items))
	for _, it := range q.Items {
		switch it.Agg {
		case AggAvg:
			sumCol := pmeta.Column(pIdx[stateOf[normName(SelectItem{Column: it.Column, Agg: AggSum}.Name())]])
			cols = append(cols, resultset.Column{Name: it.Name(), Kind: glue.Float, Unit: sumCol.Unit, Group: sumCol.Group})
		default:
			src := pmeta.Column(pIdx[stateOf[normName(it.Name())]])
			cols = append(cols, resultset.Column{Name: it.Name(), Kind: src.Kind, Unit: src.Unit, Group: src.Group})
		}
	}
	meta, err := resultset.NewMetadata(cols)
	if err != nil {
		return nil, err
	}
	b := resultset.NewBuilder(meta)
	for _, key := range order {
		g := groups[key]
		row := make([]any, len(q.Items))
		for i, it := range q.Items {
			switch it.Agg {
			case AggNone:
				row[i] = g.rep[pIdx[stateOf[normName(it.Name())]]]
			case AggCount:
				row[i] = g.states[stateOf[normName(it.Name())]].n
			case AggAvg:
				sumSt := g.states[stateOf[normName(SelectItem{Column: it.Column, Agg: AggSum}.Name())]]
				cntSt := g.states[stateOf[normName(SelectItem{Column: it.Column, Agg: AggCount}.Name())]]
				if cntSt.n == 0 {
					row[i] = nil
					continue
				}
				si := stateOf[normName(SelectItem{Column: it.Column, Agg: AggSum}.Name())]
				if pmeta.Column(pIdx[si]).Kind == glue.Int {
					row[i] = float64(sumSt.sumI) / float64(cntSt.n)
				} else {
					row[i] = sumSt.sumF / float64(cntSt.n)
				}
			case AggSum:
				si := stateOf[normName(it.Name())]
				st := g.states[si]
				if st.n == 0 {
					row[i] = nil
				} else if pmeta.Column(pIdx[si]).Kind == glue.Int {
					row[i] = st.sumI
				} else {
					row[i] = st.sumF
				}
			case AggMin, AggMax:
				st := g.states[stateOf[normName(it.Name())]]
				if st.n == 0 {
					row[i] = nil
				} else {
					row[i] = st.cmp
				}
			}
		}
		b.Append(row...)
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	out.Source = partial.Source
	out.Fetched = partial.Fetched
	return out, nil
}
