package scms

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"gridrm/internal/agents/sim"
)

func newAgent(t *testing.T) (*sim.Site, *Agent) {
	t.Helper()
	site := sim.New(sim.Config{Name: "sc", Hosts: 3, Seed: 6})
	site.StepN(2)
	a, err := NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return site, a
}

func TestFormatParseRoundTrip(t *testing.T) {
	site, _ := newAgent(t)
	snap, _ := site.Snapshot(site.HostNames()[0])
	line := FormatStatus(snap)
	m, err := ParseStatus(line)
	if err != nil {
		t.Fatal(err)
	}
	if m["host"] != snap.Name {
		t.Errorf("host = %q", m["host"])
	}
	if m["cpu_model"] != snap.CPU.Model {
		t.Errorf("cpu_model = %q (model with spaces must survive)", m["cpu_model"])
	}
	if got, _ := strconv.ParseFloat(m["load1"], 64); got != snap.Load1 {
		t.Errorf("load1 = %v, want %v", got, snap.Load1)
	}
	if got, _ := strconv.ParseInt(m["mem_free_mb"], 10, 64); got != snap.Mem.RAMAvailMB {
		t.Errorf("mem_free_mb = %v", got)
	}
	if got, _ := strconv.ParseInt(m["uptime_s"], 10, 64); got != snap.OS.UptimeS {
		t.Errorf("uptime_s = %v", got)
	}
}

func TestParseStatusErrors(t *testing.T) {
	for _, bad := range []string{"", "novalue", "a=1|bad", "x=1"} {
		if _, err := ParseStatus(bad); err == nil {
			t.Errorf("ParseStatus(%q) succeeded", bad)
		}
	}
}

type tc struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *tc {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return &tc{conn: conn, r: bufio.NewReader(conn)}
}

func (c *tc) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatal(err)
	}
}

func (c *tc) readUntilEnd(t *testing.T) []string {
	t.Helper()
	var lines []string
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l = strings.TrimSpace(l)
		if l == "END" {
			return lines
		}
		lines = append(lines, l)
	}
}

func TestProtocolNodes(t *testing.T) {
	site, a := newAgent(t)
	c := dial(t, a.Addr())
	c.send(t, "NODES")
	lines := c.readUntilEnd(t)
	if len(lines) != 3 {
		t.Fatalf("NODES -> %v", lines)
	}
	for i, name := range site.HostNames() {
		if lines[i] != name {
			t.Errorf("node %d = %q, want %q", i, lines[i], name)
		}
	}
	_ = site.SetHostDown(site.HostNames()[0], true)
	c.send(t, "NODES")
	if lines := c.readUntilEnd(t); len(lines) != 2 {
		t.Errorf("NODES with down host -> %d", len(lines))
	}
}

func TestProtocolStatus(t *testing.T) {
	site, a := newAgent(t)
	c := dial(t, a.Addr())
	c.send(t, "STATUS")
	lines := c.readUntilEnd(t)
	if len(lines) != 3 {
		t.Fatalf("STATUS rows = %d", len(lines))
	}
	for _, l := range lines {
		if _, err := ParseStatus(l); err != nil {
			t.Errorf("bad status line %q: %v", l, err)
		}
	}
	host := site.HostNames()[1]
	c.send(t, "STATUS "+host)
	lines = c.readUntilEnd(t)
	if len(lines) != 1 {
		t.Fatalf("single STATUS rows = %d", len(lines))
	}
	m, err := ParseStatus(lines[0])
	if err != nil || m["host"] != host {
		t.Errorf("status host = %v, %v", m["host"], err)
	}
	if a.Requests() != 2 {
		t.Errorf("requests = %d", a.Requests())
	}
}

func TestProtocolErrors(t *testing.T) {
	site, a := newAgent(t)
	c := dial(t, a.Addr())
	c.send(t, "STATUS ghost")
	if l, _ := c.r.ReadString('\n'); !strings.HasPrefix(l, "ERR") {
		t.Errorf("STATUS ghost -> %q", l)
	}
	_ = site.SetHostDown(site.HostNames()[0], true)
	c.send(t, "STATUS "+site.HostNames()[0])
	if l, _ := c.r.ReadString('\n'); !strings.HasPrefix(l, "ERR") {
		t.Errorf("STATUS of down host -> %q", l)
	}
	c.send(t, "WHAT")
	if l, _ := c.r.ReadString('\n'); !strings.HasPrefix(l, "ERR") {
		t.Errorf("unknown command -> %q", l)
	}
	c.send(t, "STATUS a b c")
	if l, _ := c.r.ReadString('\n'); !strings.HasPrefix(l, "ERR") {
		t.Errorf("overlong STATUS -> %q", l)
	}
}
