// Package scms implements an SCMS-style (Scalable Cluster Management
// System) agent: a cluster-status daemon answering whole-cluster queries
// with one line of "key=value" fields per node. It is the fifth
// heterogeneous data source from the paper's initial driver set (§3.2.3)
// and rounds out the protocol spectrum: line-oriented like NWS but keyed
// like SNMP.
//
// Line protocol:
//
//	NODES          → one host name per line, END
//	STATUS         → one status line per host, END
//	STATUS <host>  → that host's status line, END (ERR if unknown/down)
//	CLUSTER        → site-level element lines (kind=ce|se|ne), END
//
// A status line is '|'-separated "key=value" fields; values may contain
// spaces but not '|' or newlines:
//
//	host=siteA-node00|cpu_model=Pentium III (Coppermine)|ncpus=1|load1=0.52|...
package scms

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"gridrm/internal/agents/sim"
)

// FormatStatus renders one host snapshot as an SCMS status line.
func FormatStatus(snap sim.HostSnapshot) string {
	fields := []string{
		"host=" + snap.Name,
		"cpu_model=" + snap.CPU.Model,
		"cpu_vendor=" + snap.CPU.Vendor,
		fmt.Sprintf("cpu_mhz=%d", snap.CPU.ClockMHz),
		fmt.Sprintf("cpu_cache_kb=%d", snap.CPU.CacheKB),
		fmt.Sprintf("ncpus=%d", snap.CPU.Count),
		fmt.Sprintf("load1=%.2f", snap.Load1),
		fmt.Sprintf("load5=%.2f", snap.Load5),
		fmt.Sprintf("load15=%.2f", snap.Load15),
		fmt.Sprintf("util=%.2f", snap.UtilPct),
		fmt.Sprintf("mem_total_mb=%d", snap.Mem.RAMMB),
		fmt.Sprintf("mem_free_mb=%d", snap.Mem.RAMAvailMB),
		"os_name=" + snap.OS.Name,
		"os_release=" + snap.OS.Release,
		"os_version=" + snap.OS.Version,
		fmt.Sprintf("uptime_s=%d", snap.OS.UptimeS),
	}
	return strings.Join(fields, "|")
}

// FormatCluster renders the site-level compute/storage/network elements as
// CLUSTER response lines, one element per line, tagged by kind.
func FormatCluster(site *sim.Site) []string {
	var out []string
	ce := site.ComputeElement()
	out = append(out, strings.Join([]string{
		"kind=ce",
		"id=" + ce.ID,
		"host=" + ce.HostName,
		"lrms=" + ce.LRMSType,
		fmt.Sprintf("total_cpus=%d", ce.TotalCPUs),
		fmt.Sprintf("free_cpus=%d", ce.FreeCPUs),
		fmt.Sprintf("running=%d", ce.RunningJobs),
		fmt.Sprintf("waiting=%d", ce.WaitingJobs),
		"status=" + ce.Status,
	}, "|"))
	for _, se := range site.StorageElements() {
		out = append(out, strings.Join([]string{
			"kind=se",
			"id=" + se.ID,
			"host=" + se.HostName,
			"protocol=" + se.Protocol,
			fmt.Sprintf("total_gb=%d", se.TotalGB),
			fmt.Sprintf("used_gb=%d", se.UsedGB),
			"status=" + se.Status,
		}, "|"))
	}
	for _, ne := range site.NetworkElements() {
		out = append(out, strings.Join([]string{
			"kind=ne",
			"name=" + ne.Name,
			"type=" + ne.Type,
			fmt.Sprintf("ports=%d", ne.PortCount),
			"status=" + ne.Status,
		}, "|"))
	}
	return out
}

// ParseFields parses any '|'-separated "key=value" SCMS line into a map.
func ParseFields(line string) (map[string]string, error) {
	out := make(map[string]string)
	for _, field := range strings.Split(line, "|") {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("scms: bad field %q", field)
		}
		out[key] = val
	}
	return out, nil
}

// ParseStatus parses an SCMS host-status line into a field map.
func ParseStatus(line string) (map[string]string, error) {
	out, err := ParseFields(line)
	if err != nil {
		return nil, err
	}
	if out["host"] == "" {
		return nil, fmt.Errorf("scms: status line missing host")
	}
	return out, nil
}

// Agent serves SCMS cluster status over TCP.
type Agent struct {
	site     *sim.Site
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	requests atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewAgent starts an SCMS agent for the site; addr may be empty for an
// ephemeral localhost port.
func NewAgent(site *sim.Site, addr string) (*Agent, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("scms: %w", err)
	}
	a := &Agent{site: site, ln: ln, conns: make(map[net.Conn]struct{})}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the agent's TCP address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Requests returns the number of protocol commands served.
func (a *Agent) Requests() int64 { return a.requests.Load() }

// Close stops the agent, dropping any connections still open.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	err := a.ln.Close()
	a.mu.Lock()
	for conn := range a.conns {
		_ = conn.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
	return err
}

func (a *Agent) serve() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer func() {
				a.mu.Lock()
				delete(a.conns, conn)
				a.mu.Unlock()
				_ = conn.Close()
			}()
			a.handle(conn)
		}()
	}
}

func (a *Agent) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		a.requests.Add(1)
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprintf(w, "ERR empty command\n")
			_ = w.Flush()
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "NODES":
			for _, name := range a.site.HostNames() {
				if !a.site.HostDown(name) {
					fmt.Fprintf(w, "%s\n", name)
				}
			}
			fmt.Fprintf(w, "END\n")
		case "STATUS":
			if len(fields) > 2 {
				fmt.Fprintf(w, "ERR usage: STATUS [host]\n")
				break
			}
			if len(fields) == 2 {
				snap, ok := a.site.Snapshot(fields[1])
				if !ok {
					fmt.Fprintf(w, "ERR unknown or unreachable host %q\n", fields[1])
					break
				}
				fmt.Fprintf(w, "%s\nEND\n", FormatStatus(snap))
				break
			}
			for _, snap := range a.site.Snapshots() {
				fmt.Fprintf(w, "%s\n", FormatStatus(snap))
			}
			fmt.Fprintf(w, "END\n")
		case "CLUSTER":
			for _, line := range FormatCluster(a.site) {
				fmt.Fprintf(w, "%s\n", line)
			}
			fmt.Fprintf(w, "END\n")
		case "QUIT":
			_ = w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
