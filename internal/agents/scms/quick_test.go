package scms

import (
	"strings"
	"testing"
	"testing/quick"

	"gridrm/internal/agents/sim"
)

// TestFormatParsePropertyAcrossSeeds: every status line a simulated host
// can ever produce must parse back with host, numeric loads, and memory
// intact.
func TestFormatParsePropertyAcrossSeeds(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		site := sim.New(sim.Config{Name: "q", Hosts: 2, Seed: seed})
		site.StepN(int(steps % 50))
		for _, snap := range site.Snapshots() {
			line := FormatStatus(snap)
			if strings.ContainsAny(line, "\n") {
				return false
			}
			m, err := ParseStatus(line)
			if err != nil {
				return false
			}
			if m["host"] != snap.Name || m["cpu_model"] != snap.CPU.Model ||
				m["os_version"] != snap.OS.Version {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestClusterLinesAlwaysParse: CLUSTER output parses as fields with a kind
// tag for every simulated configuration.
func TestClusterLinesAlwaysParse(t *testing.T) {
	f := func(seed int64, hosts uint8) bool {
		site := sim.New(sim.Config{Name: "q", Hosts: int(hosts%6) + 1, Seed: seed})
		site.StepN(3)
		lines := FormatCluster(site)
		if len(lines) < 3 { // ce + ≥1 se + ≥1 ne
			return false
		}
		kinds := map[string]int{}
		for _, line := range lines {
			m, err := ParseFields(line)
			if err != nil {
				return false
			}
			kinds[m["kind"]]++
		}
		return kinds["ce"] == 1 && kinds["se"] >= 1 && kinds["ne"] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
