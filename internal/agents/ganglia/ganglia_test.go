package ganglia

import (
	"encoding/xml"
	"io"
	"net"
	"strconv"
	"testing"
	"time"

	"gridrm/internal/agents/sim"
)

func newSite(t *testing.T) *sim.Site {
	t.Helper()
	site := sim.New(sim.Config{Name: "g", Hosts: 3, Seed: 9})
	site.StepN(4)
	return site
}

func metricVal(t *testing.T, h Host, name string) string {
	t.Helper()
	for _, m := range h.Metrics {
		if m.Name == name {
			return m.Val
		}
	}
	t.Fatalf("host %s missing metric %s", h.Name, name)
	return ""
}

func TestBuildDocument(t *testing.T) {
	site := newSite(t)
	doc := BuildDocument(site)
	if doc.Version != AgentVersion || doc.Source != "gmond" {
		t.Errorf("header %+v", doc)
	}
	if doc.Cluster.Name != "g" {
		t.Errorf("cluster name %q", doc.Cluster.Name)
	}
	if len(doc.Cluster.Hosts) != 3 {
		t.Fatalf("hosts = %d", len(doc.Cluster.Hosts))
	}
	snap, _ := site.Snapshot(site.HostNames()[0])
	h := doc.Cluster.Hosts[0]
	if h.Name != snap.Name || h.IP != snap.Nics[0].IP {
		t.Errorf("host identity %+v", h)
	}
	if got := metricVal(t, h, "load_one"); got != strconv.FormatFloat(snap.Load1, 'f', 2, 64) {
		t.Errorf("load_one = %q, want %.2f", got, snap.Load1)
	}
	if got := metricVal(t, h, "mem_total"); got != strconv.FormatInt(snap.Mem.RAMMB*1024, 10) {
		t.Errorf("mem_total = %q", got)
	}
	if got := metricVal(t, h, "cpu_speed"); got != strconv.FormatInt(snap.CPU.ClockMHz, 10) {
		t.Errorf("cpu_speed = %q", got)
	}
	if got := metricVal(t, h, "os_name"); got != snap.OS.Name {
		t.Errorf("os_name = %q", got)
	}
	if got := metricVal(t, h, "boottime"); got != strconv.FormatInt(snap.OS.BootTime.Unix(), 10) {
		t.Errorf("boottime = %q", got)
	}
}

func TestBuildDocumentSkipsDownHosts(t *testing.T) {
	site := newSite(t)
	_ = site.SetHostDown(site.HostNames()[1], true)
	doc := BuildDocument(site)
	if len(doc.Cluster.Hosts) != 2 {
		t.Errorf("hosts = %d, want 2", len(doc.Cluster.Hosts))
	}
}

func fetch(t *testing.T, addr string) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAgentServesXML(t *testing.T) {
	site := newSite(t)
	a, err := NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	data := fetch(t, a.Addr())
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(doc.Cluster.Hosts) != 3 {
		t.Errorf("hosts over wire = %d", len(doc.Cluster.Hosts))
	}
	if a.Requests() != 1 {
		t.Errorf("requests = %d", a.Requests())
	}
	// Each connection gets a fresh dump reflecting current state.
	site.StepN(1)
	data2 := fetch(t, a.Addr())
	if string(data) == string(data2) {
		t.Error("two dumps across a Step are identical")
	}
	if a.Requests() != 2 {
		t.Errorf("requests = %d", a.Requests())
	}
}

func TestAgentCloseIdempotent(t *testing.T) {
	site := newSite(t)
	a, err := NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", a.Addr(), 200*time.Millisecond); err == nil {
		t.Error("agent still accepting after Close")
	}
}
