// Package ganglia implements a Ganglia gmond-style agent: connecting to its
// TCP port yields one XML document describing the whole cluster, then the
// connection closes. This is the coarse-grained, parse-heavy interaction
// style the paper contrasts with SNMP (§3.2.3): a driver wanting one value
// for one host still receives, and must parse, the full cluster dump —
// which is why the Ganglia driver carries a response cache.
//
// The document shape follows gmond 2.5-era output:
//
//	<GANGLIA_XML VERSION=... SOURCE="gmond">
//	  <CLUSTER NAME=... LOCALTIME=...>
//	    <HOST NAME=... IP=... REPORTED=...>
//	      <METRIC NAME="load_one" VAL="0.52" TYPE="float" UNITS=""/>
//	      ...
//	    </HOST>
//	  </CLUSTER>
//	</GANGLIA_XML>
package ganglia

import (
	"encoding/xml"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"gridrm/internal/agents/sim"
)

// AgentVersion is the version string the agent reports.
const AgentVersion = "2.5.7"

// Metric is one <METRIC> element.
type Metric struct {
	XMLName xml.Name `xml:"METRIC"`
	Name    string   `xml:"NAME,attr"`
	Val     string   `xml:"VAL,attr"`
	Type    string   `xml:"TYPE,attr"`
	Units   string   `xml:"UNITS,attr"`
}

// Host is one <HOST> element.
type Host struct {
	XMLName  xml.Name `xml:"HOST"`
	Name     string   `xml:"NAME,attr"`
	IP       string   `xml:"IP,attr"`
	Reported int64    `xml:"REPORTED,attr"`
	Metrics  []Metric `xml:"METRIC"`
}

// Cluster is the <CLUSTER> element.
type Cluster struct {
	XMLName   xml.Name `xml:"CLUSTER"`
	Name      string   `xml:"NAME,attr"`
	LocalTime int64    `xml:"LOCALTIME,attr"`
	Hosts     []Host   `xml:"HOST"`
}

// Document is the root <GANGLIA_XML> element.
type Document struct {
	XMLName xml.Name `xml:"GANGLIA_XML"`
	Version string   `xml:"VERSION,attr"`
	Source  string   `xml:"SOURCE,attr"`
	Cluster Cluster  `xml:"CLUSTER"`
}

// BuildDocument renders the reachable hosts of a site as a gmond document.
func BuildDocument(site *sim.Site) *Document {
	doc := &Document{
		Version: AgentVersion,
		Source:  "gmond",
		Cluster: Cluster{Name: site.Name(), LocalTime: site.Now().Unix()},
	}
	for _, snap := range site.Snapshots() {
		doc.Cluster.Hosts = append(doc.Cluster.Hosts, buildHost(snap))
	}
	return doc
}

func buildHost(snap sim.HostSnapshot) Host {
	h := Host{Name: snap.Name, Reported: snap.Time.Unix()}
	if len(snap.Nics) > 0 {
		h.IP = snap.Nics[0].IP
	}
	addF := func(name string, v float64, units string) {
		h.Metrics = append(h.Metrics, Metric{Name: name, Val: strconv.FormatFloat(v, 'f', 2, 64), Type: "float", Units: units})
	}
	addI := func(name string, v int64, units string) {
		h.Metrics = append(h.Metrics, Metric{Name: name, Val: strconv.FormatInt(v, 10), Type: "uint32", Units: units})
	}
	addS := func(name, v string) {
		h.Metrics = append(h.Metrics, Metric{Name: name, Val: v, Type: "string"})
	}
	addF("load_one", snap.Load1, "")
	addF("load_five", snap.Load5, "")
	addF("load_fifteen", snap.Load15, "")
	addI("cpu_num", snap.CPU.Count, "CPUs")
	addI("cpu_speed", snap.CPU.ClockMHz, "MHz")
	addF("cpu_idle", 100-snap.UtilPct, "%")
	addI("mem_total", snap.Mem.RAMMB*1024, "KB")
	addI("mem_free", snap.Mem.RAMAvailMB*1024, "KB")
	addI("swap_total", snap.Mem.VirtMB*1024, "KB")
	addI("swap_free", snap.Mem.VirtAvailMB*1024, "KB")
	var diskTotalMB, diskFreeMB int64
	for _, d := range snap.Disks {
		diskTotalMB += d.SizeMB
		diskFreeMB += d.AvailMB
	}
	addF("disk_total", float64(diskTotalMB)/1024, "GB")
	addF("disk_free", float64(diskFreeMB)/1024, "GB")
	var bytesIn, bytesOut, pktsIn, pktsOut int64
	for _, n := range snap.Nics {
		bytesIn += n.BytesIn
		bytesOut += n.BytesOut
		pktsIn += n.PacketsIn
		pktsOut += n.PacketsOut
	}
	addI("bytes_in", bytesIn, "bytes")
	addI("bytes_out", bytesOut, "bytes")
	addI("pkts_in", pktsIn, "packets")
	addI("pkts_out", pktsOut, "packets")
	addS("os_name", snap.OS.Name)
	addS("os_release", snap.OS.Release)
	addI("boottime", snap.OS.BootTime.Unix(), "s")
	addI("proc_total", int64(len(snap.Procs)), "")
	var running int64
	for _, p := range snap.Procs {
		if p.State == "R" {
			running++
		}
	}
	addI("proc_run", running, "")
	return h
}

// Agent serves gmond XML dumps over TCP.
type Agent struct {
	site     *sim.Site
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	requests atomic.Int64
}

// NewAgent starts a gmond-style agent for the whole site. addr may be empty
// for an ephemeral localhost port.
func NewAgent(site *sim.Site, addr string) (*Agent, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ganglia: %w", err)
	}
	a := &Agent{site: site, ln: ln}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the agent's TCP address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Requests returns the number of dumps served (E6's intrusion measure).
func (a *Agent) Requests() int64 { return a.requests.Load() }

// Close stops the agent.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) serve() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.requests.Add(1)
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer conn.Close()
			doc := BuildDocument(a.site)
			out, err := xml.Marshal(doc)
			if err != nil {
				return
			}
			_, _ = conn.Write([]byte(xml.Header))
			_, _ = conn.Write(out)
			_, _ = conn.Write([]byte("\n"))
		}()
	}
}
