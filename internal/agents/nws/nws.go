// Package nws implements a Network Weather Service-style agent. NWS sensors
// record periodic measurements of resource conditions (CPU availability,
// free memory, network bandwidth/latency) and its forecasters produce
// short-term predictions; clients retrieve whole measurement series in a
// plain-text response and parse what they need — the coarse-grained, text-
// parsing interaction style the paper groups with Ganglia (§3.2.3).
//
// Line protocol (requests and responses are '\n'-terminated):
//
//	SERIES <host> <resource>   → OK <n>, then n × "<unix-time> <value>", END
//	FORECAST <host> <resource> → FORECAST <value> <mse>
//	LIST                       → "<host> <resource>" lines, END
//	anything else              → ERR <message>
package nws

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gridrm/internal/agents/sim"
)

// Resource names the agent measures.
const (
	// ResAvailableCPU is the fraction of CPU available (0..1).
	ResAvailableCPU = "availableCpu"
	// ResFreeMemory is free physical memory in MB.
	ResFreeMemory = "freeMemory"
	// ResFreeDisk is free disk space in MB, summed over devices.
	ResFreeDisk = "freeDisk"
	// ResBandwidth is TCP bandwidth to the host in Mb/s.
	ResBandwidth = "bandwidthTcp"
	// ResLatency is TCP round-trip latency to the host in ms.
	ResLatency = "latencyTcp"
)

// Resources lists all series resources in stable order.
var Resources = []string{ResAvailableCPU, ResFreeMemory, ResFreeDisk, ResBandwidth, ResLatency}

// Measurement is one recorded sample.
type Measurement struct {
	// Unix is the sample's simulated wall-clock time.
	Unix int64
	// Value is the measured value.
	Value float64
}

// maxHistory bounds each series' ring buffer.
const maxHistory = 256

// forecastWindow is how many trailing samples the forecaster averages.
const forecastWindow = 10

// Agent is a site-wide NWS memory+forecaster+sensor bundle.
type Agent struct {
	site     *sim.Site
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	requests atomic.Int64

	mu     sync.RWMutex
	series map[string][]Measurement // "host/resource" → ring
	conns  map[net.Conn]struct{}
}

// NewAgent starts an NWS agent for the site; addr may be empty for an
// ephemeral localhost port. The agent has no samples until Sample is
// called (or a deployment drives it from a ticker).
func NewAgent(site *sim.Site, addr string) (*Agent, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nws: %w", err)
	}
	a := &Agent{site: site, ln: ln, series: make(map[string][]Measurement), conns: make(map[net.Conn]struct{})}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the agent's TCP address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Requests returns the number of protocol commands served.
func (a *Agent) Requests() int64 { return a.requests.Load() }

// Close stops the agent, dropping any connections still open.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	err := a.ln.Close()
	a.mu.Lock()
	for conn := range a.conns {
		_ = conn.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
	return err
}

// Sample records one measurement per (reachable host, resource) from the
// simulator's current state.
func (a *Agent) Sample() {
	snaps := a.site.Snapshots()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, snap := range snaps {
		unix := snap.Time.Unix()
		rec := func(resource string, v float64) {
			key := snap.Name + "/" + resource
			s := append(a.series[key], Measurement{Unix: unix, Value: v})
			if len(s) > maxHistory {
				s = s[len(s)-maxHistory:]
			}
			a.series[key] = s
		}
		rec(ResAvailableCPU, roundTo(1-snap.UtilPct/100, 4))
		rec(ResFreeMemory, float64(snap.Mem.RAMAvailMB))
		var free int64
		for _, d := range snap.Disks {
			free += d.AvailMB
		}
		rec(ResFreeDisk, float64(free))
		if len(snap.Nics) > 0 {
			rec(ResBandwidth, snap.Nics[0].BandwidthMbps)
			rec(ResLatency, snap.Nics[0].LatencyMs)
		}
	}
}

func roundTo(f float64, digits int) float64 {
	pow := 1.0
	for i := 0; i < digits; i++ {
		pow *= 10
	}
	return float64(int64(f*pow+0.5)) / pow
}

// Series returns a copy of the recorded series for host/resource.
func (a *Agent) Series(host, resource string) []Measurement {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]Measurement(nil), a.series[host+"/"+resource]...)
}

// Forecast returns the running-mean forecast and mean squared error over
// the trailing window, or false when the series is empty.
func (a *Agent) Forecast(host, resource string) (value, mse float64, ok bool) {
	s := a.Series(host, resource)
	if len(s) == 0 {
		return 0, 0, false
	}
	start := len(s) - forecastWindow
	if start < 0 {
		start = 0
	}
	window := s[start:]
	var sum float64
	for _, m := range window {
		sum += m.Value
	}
	mean := sum / float64(len(window))
	var sq float64
	for _, m := range window {
		d := m.Value - mean
		sq += d * d
	}
	return mean, sq / float64(len(window)), true
}

func (a *Agent) serve() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer func() {
				a.mu.Lock()
				delete(a.conns, conn)
				a.mu.Unlock()
				_ = conn.Close()
			}()
			a.handle(conn)
		}()
	}
}

func (a *Agent) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		a.requests.Add(1)
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprintf(w, "ERR empty command\n")
			_ = w.Flush()
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "SERIES":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR usage: SERIES <host> <resource>\n")
				break
			}
			s := a.Series(fields[1], fields[2])
			fmt.Fprintf(w, "OK %d\n", len(s))
			for _, m := range s {
				fmt.Fprintf(w, "%d %g\n", m.Unix, m.Value)
			}
			fmt.Fprintf(w, "END\n")
		case "FORECAST":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR usage: FORECAST <host> <resource>\n")
				break
			}
			v, mse, ok := a.Forecast(fields[1], fields[2])
			if !ok {
				fmt.Fprintf(w, "ERR no data for %s/%s\n", fields[1], fields[2])
				break
			}
			fmt.Fprintf(w, "FORECAST %g %g\n", v, mse)
		case "LIST":
			a.mu.RLock()
			keys := make([]string, 0, len(a.series))
			for k := range a.series {
				keys = append(keys, k)
			}
			a.mu.RUnlock()
			sort.Strings(keys)
			for _, k := range keys {
				host, resource, _ := strings.Cut(k, "/")
				fmt.Fprintf(w, "%s %s\n", host, resource)
			}
			fmt.Fprintf(w, "END\n")
		case "QUIT":
			_ = w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
