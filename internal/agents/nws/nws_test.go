package nws

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"gridrm/internal/agents/sim"
)

func newAgent(t *testing.T) (*sim.Site, *Agent) {
	t.Helper()
	site := sim.New(sim.Config{Name: "n", Hosts: 2, Seed: 3})
	site.StepN(2)
	a, err := NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return site, a
}

func TestSampleAndSeries(t *testing.T) {
	site, a := newAgent(t)
	host := site.HostNames()[0]
	if got := a.Series(host, ResAvailableCPU); len(got) != 0 {
		t.Fatalf("series before sampling = %d", len(got))
	}
	a.Sample()
	site.Step()
	a.Sample()
	s := a.Series(host, ResAvailableCPU)
	if len(s) != 2 {
		t.Fatalf("series = %d, want 2", len(s))
	}
	if s[0].Unix >= s[1].Unix {
		t.Error("timestamps not increasing")
	}
	for _, res := range Resources {
		if len(a.Series(host, res)) != 2 {
			t.Errorf("resource %s series = %d", res, len(a.Series(host, res)))
		}
	}
	snap, _ := site.Snapshot(host)
	if got := s[1].Value; got != roundTo(1-snap.UtilPct/100, 4) {
		t.Errorf("availableCpu = %v", got)
	}
}

func TestSeriesBounded(t *testing.T) {
	site, a := newAgent(t)
	for i := 0; i < maxHistory+20; i++ {
		site.Step()
		a.Sample()
	}
	if got := len(a.Series(site.HostNames()[0], ResFreeMemory)); got != maxHistory {
		t.Errorf("series length = %d, want %d", got, maxHistory)
	}
}

func TestForecast(t *testing.T) {
	site, a := newAgent(t)
	host := site.HostNames()[0]
	if _, _, ok := a.Forecast(host, ResLatency); ok {
		t.Error("forecast with no data succeeded")
	}
	for i := 0; i < 20; i++ {
		site.Step()
		a.Sample()
	}
	v, mse, ok := a.Forecast(host, ResLatency)
	if !ok {
		t.Fatal("forecast failed")
	}
	if v <= 0 || mse < 0 {
		t.Errorf("forecast = %v, mse = %v", v, mse)
	}
	// Forecast of a constant series is the constant with zero error.
	v2, mse2, _ := a.Forecast(host, ResBandwidth)
	if v2 != 100 || mse2 != 0 {
		t.Errorf("constant forecast = %v ± %v", v2, mse2)
	}
}

type tc struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *tc {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return &tc{conn: conn, r: bufio.NewReader(conn)}
}

func (c *tc) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatal(err)
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

func (c *tc) readUntilEnd(t *testing.T) []string {
	t.Helper()
	var lines []string
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l = strings.TrimSpace(l)
		if l == "END" {
			return lines
		}
		lines = append(lines, l)
	}
}

func TestProtocolSeries(t *testing.T) {
	site, a := newAgent(t)
	a.Sample()
	site.Step()
	a.Sample()
	host := site.HostNames()[0]
	c := dial(t, a.Addr())
	first := c.cmd(t, "SERIES "+host+" "+ResFreeMemory)
	if first != "OK 2" {
		t.Fatalf("SERIES header = %q", first)
	}
	lines := c.readUntilEnd(t)
	if len(lines) != 2 {
		t.Fatalf("series body = %v", lines)
	}
	var ts int64
	var val float64
	if _, err := fmt.Sscanf(lines[1], "%d %g", &ts, &val); err != nil {
		t.Fatalf("bad series line %q", lines[1])
	}
	snap, _ := site.Snapshot(host)
	if val != float64(snap.Mem.RAMAvailMB) {
		t.Errorf("freeMemory over wire = %v, want %d", val, snap.Mem.RAMAvailMB)
	}
}

func TestProtocolForecastAndList(t *testing.T) {
	site, a := newAgent(t)
	for i := 0; i < 5; i++ {
		site.Step()
		a.Sample()
	}
	host := site.HostNames()[0]
	c := dial(t, a.Addr())
	resp := c.cmd(t, "FORECAST "+host+" "+ResBandwidth)
	var v, mse float64
	if _, err := fmt.Sscanf(resp, "FORECAST %g %g", &v, &mse); err != nil {
		t.Fatalf("FORECAST resp %q", resp)
	}
	if v != 100 {
		t.Errorf("forecast %v", v)
	}
	if got := c.cmd(t, "LIST"); !strings.Contains(got, host) {
		t.Errorf("LIST first line %q", got)
	}
	lines := c.readUntilEnd(t)
	want := len(site.HostNames())*len(Resources) - 1 // minus the already-read first line
	if len(lines) != want {
		t.Errorf("LIST rows = %d, want %d", len(lines), want)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, a := newAgent(t)
	c := dial(t, a.Addr())
	for _, cmd := range []string{
		"SERIES onlyhost",
		"FORECAST x " + ResLatency, // no data yet
		"BOGUS",
		"FORECAST",
	} {
		if resp := c.cmd(t, cmd); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q, want ERR", cmd, resp)
		}
	}
	// Unknown series is empty, not an error.
	if resp := c.cmd(t, "SERIES nohost nores"); resp != "OK 0" {
		t.Errorf("empty series header %q", resp)
	}
	c.readUntilEnd(t)
	if a.Requests() == 0 {
		t.Error("requests not counted")
	}
}

func TestMultipleCommandsPerConnection(t *testing.T) {
	site, a := newAgent(t)
	a.Sample()
	host := site.HostNames()[0]
	c := dial(t, a.Addr())
	for i := 0; i < 3; i++ {
		if resp := c.cmd(t, "SERIES "+host+" "+ResFreeDisk); resp != "OK 1" {
			t.Fatalf("iteration %d: %q", i, resp)
		}
		c.readUntilEnd(t)
	}
}
