package snmp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/agents/sim"
)

// DefaultCommunity is accepted when an agent is created without one.
const DefaultCommunity = "public"

// Agent is a per-host SNMP agent serving the simulator's view of one host
// over UDP. Real deployments run one agent per machine; tests and examples
// start one Agent per sim host.
type Agent struct {
	site      *Site
	host      string
	community string
	conn      *net.UDPConn
	wg        sync.WaitGroup
	closed    atomic.Bool
	requests  atomic.Int64
}

// Site is a small alias-free handle pairing a simulator with agents.
type Site = sim.Site

// AgentConfig configures an Agent.
type AgentConfig struct {
	// Host selects which simulator host the agent serves.
	Host string
	// Community is the required community string (DefaultCommunity when
	// empty).
	Community string
	// Addr is the UDP listen address; "127.0.0.1:0" when empty.
	Addr string
}

// NewAgent starts an SNMP agent for one simulator host.
func NewAgent(site *sim.Site, cfg AgentConfig) (*Agent, error) {
	if cfg.Community == "" {
		cfg.Community = DefaultCommunity
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	found := false
	for _, n := range site.HostNames() {
		if n == cfg.Host {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("snmp: site has no host %q", cfg.Host)
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	a := &Agent{site: site, host: cfg.Host, community: cfg.Community, conn: conn}
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the agent's UDP address.
func (a *Agent) Addr() string { return a.conn.LocalAddr().String() }

// Host returns the simulator host the agent serves.
func (a *Agent) Host() string { return a.host }

// Requests returns how many well-formed requests the agent has served;
// E6 uses this as the "resource intrusion" measure.
func (a *Agent) Requests() int64 { return a.requests.Load() }

// Close stops the agent.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) serve() {
	defer a.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := a.conn.ReadFromUDP(buf)
		if err != nil {
			if a.closed.Load() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // silently drop malformed datagrams, as real agents do
		}
		resp := a.handle(req)
		if resp == nil {
			continue
		}
		out, err := resp.Marshal()
		if err != nil {
			continue
		}
		_, _ = a.conn.WriteToUDP(out, peer)
	}
}

func (a *Agent) handle(req *Message) *Message {
	if req.Community != a.community {
		return nil // wrong community: drop, like SNMPv1
	}
	if req.PDUType != PDUGet && req.PDUType != PDUGetNext {
		return nil
	}
	a.requests.Add(1)
	resp := &Message{
		Community: req.Community,
		PDUType:   PDUResponse,
		RequestID: req.RequestID,
	}
	snap, ok := a.site.Snapshot(a.host)
	if !ok {
		// Host down: a real agent would just not answer; timeouts are the
		// failure mode the DriverManager policies must handle.
		return nil
	}
	mib := BuildMIB(snap)
	for i, vb := range req.Varbinds {
		switch req.PDUType {
		case PDUGet:
			v, ok := mib.Get(vb.OID)
			if !ok {
				resp.ErrorStatus = ErrStatusNoSuchName
				resp.ErrorIndex = uint8(i + 1)
				resp.Varbinds = append(resp.Varbinds, Varbind{OID: vb.OID, Value: NullValue})
				continue
			}
			resp.Varbinds = append(resp.Varbinds, Varbind{OID: vb.OID, Value: v})
		case PDUGetNext:
			nvb, ok := mib.Next(vb.OID)
			if !ok {
				resp.ErrorStatus = ErrStatusNoSuchName
				resp.ErrorIndex = uint8(i + 1)
				resp.Varbinds = append(resp.Varbinds, Varbind{OID: vb.OID, Value: NullValue})
				continue
			}
			resp.Varbinds = append(resp.Varbinds, nvb)
		}
	}
	return resp
}

// Client is a minimal SNMP manager used by the GridRM SNMP driver. Each
// request is one UDP round trip with a deadline — the fine-grained
// interaction style the paper contrasts with Ganglia/NWS (§3.2.3).
type Client struct {
	conn      *net.UDPConn
	community string
	timeout   time.Duration
	mu        sync.Mutex
	reqID     uint32
}

// Dial creates a client for the agent at addr.
func Dial(addr, community string, timeout time.Duration) (*Client, error) {
	if community == "" {
		community = DefaultCommunity
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	return &Client{conn: conn, community: community, timeout: timeout}, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(pduType uint8, oids []OID) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqID++
	req := &Message{Community: c.community, PDUType: pduType, RequestID: c.reqID}
	for _, oid := range oids {
		req.Varbinds = append(req.Varbinds, Varbind{OID: oid, Value: NullValue})
	}
	out, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	if _, err := c.conn.Write(out); err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("snmp: %w", err)
		}
		resp, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if resp.RequestID != c.reqID || resp.PDUType != PDUResponse {
			continue // stale datagram
		}
		return resp, nil
	}
}

// Get fetches exact OIDs in one round trip. Missing OIDs yield an error
// with status ErrStatusNoSuchName.
func (c *Client) Get(oids ...OID) ([]Varbind, error) {
	resp, err := c.roundTrip(PDUGet, oids)
	if err != nil {
		return nil, err
	}
	if resp.ErrorStatus != ErrStatusOK {
		return resp.Varbinds, fmt.Errorf("snmp: error status %d at index %d", resp.ErrorStatus, resp.ErrorIndex)
	}
	return resp.Varbinds, nil
}

// GetNext fetches the lexicographic successors of the given OIDs. Like
// Get, an agent-reported error status returns the response varbinds
// alongside the error, so callers can tell "agent says no such name" apart
// from a transport failure (which returns no varbinds).
func (c *Client) GetNext(oids ...OID) ([]Varbind, error) {
	resp, err := c.roundTrip(PDUGetNext, oids)
	if err != nil {
		return nil, err
	}
	if resp.ErrorStatus != ErrStatusOK {
		return resp.Varbinds, fmt.Errorf("snmp: error status %d at index %d", resp.ErrorStatus, resp.ErrorIndex)
	}
	return resp.Varbinds, nil
}

// Walk retrieves every varbind under prefix, one GetNext round trip per
// entry (the classic SNMP walk cost model). End-of-MIB (the agent
// answering noSuchName) terminates the walk cleanly; transport failures
// are errors.
func (c *Client) Walk(prefix OID) ([]Varbind, error) {
	var out []Varbind
	cur := prefix
	for {
		vbs, err := c.GetNext(cur)
		if err != nil {
			if len(vbs) > 0 {
				// End of MIB view: the agent answered with noSuchName.
				return out, nil
			}
			return nil, err
		}
		vb := vbs[0]
		if !vb.OID.HasPrefix(prefix) {
			return out, nil
		}
		out = append(out, vb)
		cur = vb.OID
	}
}
