package snmp

import (
	"fmt"

	"gridrm/internal/agents/sim"
)

// Well-known OID prefixes served by the agent. They follow MIB-2 and
// HOST-RESOURCES-MIB numbering, with a private enterprise arc
// (1.3.6.1.4.1.9999) for the handful of attributes real MIBs lack.
var (
	// OIDSysDescr is sysDescr.0.
	OIDSysDescr = MustOID("1.3.6.1.2.1.1.1.0")
	// OIDSysUpTime is sysUpTime.0, in TimeTicks (centiseconds).
	OIDSysUpTime = MustOID("1.3.6.1.2.1.1.3.0")
	// OIDSysName is sysName.0.
	OIDSysName = MustOID("1.3.6.1.2.1.1.5.0")

	// OIDIfTable is the ifTable entry prefix (columns below).
	OIDIfTable = MustOID("1.3.6.1.2.1.2.2.1")

	// OIDHrMemorySize is hrMemorySize.0 in KB.
	OIDHrMemorySize = MustOID("1.3.6.1.2.1.25.2.2.0")
	// OIDHrStorage is the hrStorageTable entry prefix.
	OIDHrStorage = MustOID("1.3.6.1.2.1.25.2.3.1")
	// OIDHrDeviceDescr is the hrDeviceDescr column prefix.
	OIDHrDeviceDescr = MustOID("1.3.6.1.2.1.25.3.2.1.3")
	// OIDHrProcessorLoad is the hrProcessorLoad column prefix.
	OIDHrProcessorLoad = MustOID("1.3.6.1.2.1.25.3.3.1.2")
	// OIDHrSWRun is the hrSWRunTable entry prefix.
	OIDHrSWRun = MustOID("1.3.6.1.2.1.25.4.2.1")
	// OIDHrSWRunPerf is the hrSWRunPerfTable entry prefix.
	OIDHrSWRunPerf = MustOID("1.3.6.1.2.1.25.5.1.1")

	// OIDLoad is the UCD laLoad column prefix; .1/.2/.3 are the 1/5/15
	// minute load averages rendered as strings, as ucd-snmp does.
	OIDLoad = MustOID("1.3.6.1.4.1.2021.10.1.3")
	// OIDMemTotalReal is UCD memTotalReal.0 in KB.
	OIDMemTotalReal = MustOID("1.3.6.1.4.1.2021.4.5.0")
	// OIDMemAvailReal is UCD memAvailReal.0 in KB.
	OIDMemAvailReal = MustOID("1.3.6.1.4.1.2021.4.6.0")

	// OIDVendor is the private GridRM test-enterprise prefix for values
	// stock MIBs do not expose (CPU clock, vendor, cache, swap rates).
	OIDVendor = MustOID("1.3.6.1.4.1.9999.1")
)

// ifTable column arcs.
const (
	IfColDescr     = 2
	IfColMTU       = 4
	IfColSpeed     = 5
	IfColInOctets  = 10
	IfColInPkts    = 11
	IfColOutOctets = 16
	IfColOutPkts   = 17
	// IfColAddr is a private column carrying the interface IPv4 address
	// as a string (a simplification of the ipAddrTable join real SNMP
	// managers perform).
	IfColAddr = 99
)

// hrStorageTable column arcs.
const (
	HrStorageColDescr = 2
	HrStorageColUnit  = 4
	HrStorageColSize  = 5
	HrStorageColUsed  = 6
)

// hrSWRunTable column arcs.
const (
	HrSWRunColIndex  = 1
	HrSWRunColName   = 2
	HrSWRunColStatus = 7
)

// hrSWRunPerfTable column arcs.
const (
	HrSWRunPerfColCPU = 1
	HrSWRunPerfColMem = 2
)

// Vendor column arcs under OIDVendor.
const (
	VendorColClockMHz = 1
	VendorColVendor   = 2
	VendorColCacheKB  = 3
	VendorColSwapIn   = 4
	VendorColSwapOut  = 5
	VendorColBootTime = 6
)

// hrSWRunStatus values for process states.
var swRunStatus = map[string]int64{
	"R": 1, // running
	"S": 2, // runnable
	"D": 3, // notRunnable
	"Z": 4, // invalid
}

// BuildMIB renders a host snapshot as a MIB tree. The mapping mirrors how a
// real agent would expose the same machine, so the SNMP driver's
// GLUE translation exercises realistic OID layouts.
func BuildMIB(snap sim.HostSnapshot) *MIB {
	var vbs []Varbind
	add := func(oid OID, v Value) { vbs = append(vbs, Varbind{OID: oid, Value: v}) }

	// system group
	add(OIDSysDescr, StringValue(fmt.Sprintf("%s %s %s", snap.OS.Name, snap.OS.Release, snap.OS.Version)))
	add(OIDSysUpTime, TicksValue(uint64(snap.OS.UptimeS)*100))
	add(OIDSysName, StringValue(snap.Name))

	// ifTable
	for i, nic := range snap.Nics {
		idx := uint32(i + 1)
		add(OIDIfTable.Append(IfColDescr, idx), StringValue(nic.Name))
		add(OIDIfTable.Append(IfColMTU, idx), IntValue(nic.MTU))
		add(OIDIfTable.Append(IfColSpeed, idx), CounterValue(uint64(nic.BandwidthMbps*1e6)))
		add(OIDIfTable.Append(IfColInOctets, idx), CounterValue(uint64(nic.BytesIn)))
		add(OIDIfTable.Append(IfColInPkts, idx), CounterValue(uint64(nic.PacketsIn)))
		add(OIDIfTable.Append(IfColOutOctets, idx), CounterValue(uint64(nic.BytesOut)))
		add(OIDIfTable.Append(IfColOutPkts, idx), CounterValue(uint64(nic.PacketsOut)))
		add(OIDIfTable.Append(IfColAddr, idx), StringValue(nic.IP))
	}

	// host resources: memory
	add(OIDHrMemorySize, IntValue(snap.Mem.RAMMB*1024))
	// hrStorage index 1 = physical memory, 2.. = disks. Units are 1 MB.
	add(OIDHrStorage.Append(HrStorageColDescr, 1), StringValue("Physical memory"))
	add(OIDHrStorage.Append(HrStorageColUnit, 1), IntValue(1048576))
	add(OIDHrStorage.Append(HrStorageColSize, 1), IntValue(snap.Mem.RAMMB))
	add(OIDHrStorage.Append(HrStorageColUsed, 1), IntValue(snap.Mem.RAMMB-snap.Mem.RAMAvailMB))
	for i, d := range snap.Disks {
		idx := uint32(i + 2)
		add(OIDHrStorage.Append(HrStorageColDescr, idx), StringValue("/dev/"+d.Device))
		add(OIDHrStorage.Append(HrStorageColUnit, idx), IntValue(1048576))
		add(OIDHrStorage.Append(HrStorageColSize, idx), IntValue(d.SizeMB))
		add(OIDHrStorage.Append(HrStorageColUsed, idx), IntValue(d.SizeMB-d.AvailMB))
	}

	// host resources: processors
	for i := int64(0); i < snap.CPU.Count; i++ {
		idx := uint32(i + 1)
		add(OIDHrDeviceDescr.Append(idx), StringValue(snap.CPU.Model))
		add(OIDHrProcessorLoad.Append(idx), IntValue(int64(snap.UtilPct)))
	}

	// host resources: processes
	for _, p := range snap.Procs {
		idx := uint32(p.PID)
		add(OIDHrSWRun.Append(HrSWRunColIndex, idx), IntValue(p.PID))
		add(OIDHrSWRun.Append(HrSWRunColName, idx), StringValue(p.Name))
		status := swRunStatus[p.State]
		if status == 0 {
			status = 2
		}
		add(OIDHrSWRun.Append(HrSWRunColStatus, idx), IntValue(status))
		add(OIDHrSWRunPerf.Append(HrSWRunPerfColCPU, idx), IntValue(int64(p.CPUPct*100)))
		add(OIDHrSWRunPerf.Append(HrSWRunPerfColMem, idx), IntValue(p.MemKB))
	}

	// UCD memory group.
	add(OIDMemTotalReal, IntValue(snap.Mem.RAMMB*1024))
	add(OIDMemAvailReal, IntValue(snap.Mem.RAMAvailMB*1024))

	// UCD load averages, rendered as strings like ucd-snmp's laLoad.
	add(OIDLoad.Append(1), StringValue(fmt.Sprintf("%.2f", snap.Load1)))
	add(OIDLoad.Append(2), StringValue(fmt.Sprintf("%.2f", snap.Load5)))
	add(OIDLoad.Append(3), StringValue(fmt.Sprintf("%.2f", snap.Load15)))

	// private vendor arc
	add(OIDVendor.Append(VendorColClockMHz), IntValue(snap.CPU.ClockMHz))
	add(OIDVendor.Append(VendorColVendor), StringValue(snap.CPU.Vendor))
	add(OIDVendor.Append(VendorColCacheKB), IntValue(snap.CPU.CacheKB))
	add(OIDVendor.Append(VendorColSwapIn), StringValue(fmt.Sprintf("%.2f", snap.Mem.SwapInPerSec)))
	add(OIDVendor.Append(VendorColSwapOut), StringValue(fmt.Sprintf("%.2f", snap.Mem.SwapOutPerSec)))
	add(OIDVendor.Append(VendorColBootTime), IntValue(snap.OS.BootTime.Unix()))

	return NewMIB(vbs)
}
