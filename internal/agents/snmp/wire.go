// Package snmp implements a simplified SNMP agent and its wire protocol.
//
// The real paper's SNMP driver spoke SNMPv1/v2 BER to stock agents. Here the
// protocol is a compact binary TLV encoding ("BER-lite") that preserves the
// properties GridRM's driver layer cares about (paper §3.2.3): requests are
// fine-grained (Get/GetNext of individual OIDs, one UDP round trip each),
// values arrive already scalar so the driver does "little or no parsing",
// and tables are discovered by walking with GetNext.
//
// Message layout (all integers big-endian):
//
//	magic    [2]byte  "SN"
//	version  uint8    (1)
//	communityLen uint8, community []byte
//	pduType  uint8    (PDUGet, PDUGetNext, PDUResponse)
//	requestID uint32
//	errorStatus uint8 (0 ok, 2 noSuchName, 5 genErr)
//	errorIndex  uint8
//	varbindCount uint16
//	varbinds ...
//
// Varbind layout:
//
//	oidLen uint8, oid [oidLen]uint32
//	valueType uint8 (TypeNull, TypeInt, TypeString, TypeCounter, TypeTicks)
//	value     (none | int64 | uint16 len + bytes | uint64 | uint64)
package snmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PDU types.
const (
	PDUGet      = 0xA0
	PDUGetNext  = 0xA1
	PDUResponse = 0xA2
)

// Error statuses.
const (
	ErrStatusOK         = 0
	ErrStatusNoSuchName = 2
	ErrStatusGenErr     = 5
)

// Value types.
const (
	TypeNull    = 0
	TypeInt     = 2
	TypeString  = 4
	TypeCounter = 0x41
	TypeTicks   = 0x43
)

// Version is the protocol version this package speaks.
const Version = 1

var magic = [2]byte{'S', 'N'}

// ErrTruncated reports a message shorter than its own encoding claims.
var ErrTruncated = errors.New("snmp: truncated message")

// OID is an object identifier as a sequence of arcs.
type OID []uint32

// String renders the OID in dotted form.
func (o OID) String() string {
	out := ""
	for i, arc := range o {
		if i > 0 {
			out += "."
		}
		out += fmt.Sprint(arc)
	}
	return out
}

// ParseOID parses a dotted OID string.
func ParseOID(s string) (OID, error) {
	var o OID
	var cur uint64
	digits := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 {
				return nil, fmt.Errorf("snmp: bad OID %q", s)
			}
			o = append(o, uint32(cur))
			cur, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("snmp: bad OID %q", s)
		}
		cur = cur*10 + uint64(c-'0')
		if cur > 0xFFFFFFFF {
			return nil, fmt.Errorf("snmp: OID arc overflow in %q", s)
		}
		digits++
	}
	return o, nil
}

// MustOID parses a dotted OID, panicking on error (for literals).
func MustOID(s string) OID {
	o, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return o
}

// Compare orders OIDs lexicographically by arc.
func (o OID) Compare(other OID) int {
	n := len(o)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// HasPrefix reports whether o starts with prefix.
func (o OID) HasPrefix(prefix OID) bool {
	if len(o) < len(prefix) {
		return false
	}
	return o[:len(prefix)].Compare(prefix) == 0
}

// Append returns a new OID with extra arcs appended.
func (o OID) Append(arcs ...uint32) OID {
	out := make(OID, 0, len(o)+len(arcs))
	out = append(out, o...)
	return append(out, arcs...)
}

// Value is a typed SNMP value.
type Value struct {
	// Type is one of the Type* constants.
	Type uint8
	// Int holds TypeInt values.
	Int int64
	// Str holds TypeString values.
	Str string
	// Uint holds TypeCounter and TypeTicks values.
	Uint uint64
}

// NullValue is the TypeNull value.
var NullValue = Value{Type: TypeNull}

// IntValue builds a TypeInt value.
func IntValue(n int64) Value { return Value{Type: TypeInt, Int: n} }

// StringValue builds a TypeString value.
func StringValue(s string) Value { return Value{Type: TypeString, Str: s} }

// CounterValue builds a TypeCounter value.
func CounterValue(n uint64) Value { return Value{Type: TypeCounter, Uint: n} }

// TicksValue builds a TypeTicks value (hundredths of a second, as SNMP's
// TimeTicks).
func TicksValue(n uint64) Value { return Value{Type: TypeTicks, Uint: n} }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return fmt.Sprintf("INTEGER: %d", v.Int)
	case TypeString:
		return fmt.Sprintf("STRING: %q", v.Str)
	case TypeCounter:
		return fmt.Sprintf("Counter: %d", v.Uint)
	case TypeTicks:
		return fmt.Sprintf("Timeticks: %d", v.Uint)
	}
	return fmt.Sprintf("type(%d)", v.Type)
}

// Varbind pairs an OID with a value.
type Varbind struct {
	OID   OID
	Value Value
}

// Message is a full protocol message.
type Message struct {
	Community   string
	PDUType     uint8
	RequestID   uint32
	ErrorStatus uint8
	ErrorIndex  uint8
	Varbinds    []Varbind
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Community) > 255 {
		return nil, fmt.Errorf("snmp: community too long")
	}
	if len(m.Varbinds) > 0xFFFF {
		return nil, fmt.Errorf("snmp: too many varbinds")
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, magic[0], magic[1], Version)
	buf = append(buf, byte(len(m.Community)))
	buf = append(buf, m.Community...)
	buf = append(buf, m.PDUType)
	buf = binary.BigEndian.AppendUint32(buf, m.RequestID)
	buf = append(buf, m.ErrorStatus, m.ErrorIndex)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Varbinds)))
	for _, vb := range m.Varbinds {
		if len(vb.OID) > 255 {
			return nil, fmt.Errorf("snmp: OID too long")
		}
		buf = append(buf, byte(len(vb.OID)))
		for _, arc := range vb.OID {
			buf = binary.BigEndian.AppendUint32(buf, arc)
		}
		buf = append(buf, vb.Value.Type)
		switch vb.Value.Type {
		case TypeNull:
		case TypeInt:
			buf = binary.BigEndian.AppendUint64(buf, uint64(vb.Value.Int))
		case TypeString:
			if len(vb.Value.Str) > 0xFFFF {
				return nil, fmt.Errorf("snmp: string too long")
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(vb.Value.Str)))
			buf = append(buf, vb.Value.Str...)
		case TypeCounter, TypeTicks:
			buf = binary.BigEndian.AppendUint64(buf, vb.Value.Uint)
		default:
			return nil, fmt.Errorf("snmp: unknown value type %d", vb.Value.Type)
		}
	}
	return buf, nil
}

// Unmarshal decodes a message.
func Unmarshal(buf []byte) (*Message, error) {
	r := reader{buf: buf}
	var mg [2]byte
	mg[0], mg[1] = r.byte(), r.byte()
	if r.err == nil && mg != magic {
		return nil, fmt.Errorf("snmp: bad magic %q", mg[:])
	}
	if v := r.byte(); r.err == nil && v != Version {
		return nil, fmt.Errorf("snmp: unsupported version %d", v)
	}
	m := &Message{}
	clen := int(r.byte())
	m.Community = string(r.bytes(clen))
	m.PDUType = r.byte()
	m.RequestID = r.uint32()
	m.ErrorStatus = r.byte()
	m.ErrorIndex = r.byte()
	count := int(r.uint16())
	for i := 0; i < count && r.err == nil; i++ {
		olen := int(r.byte())
		oid := make(OID, olen)
		for j := 0; j < olen; j++ {
			oid[j] = r.uint32()
		}
		var v Value
		v.Type = r.byte()
		switch v.Type {
		case TypeNull:
		case TypeInt:
			v.Int = int64(r.uint64())
		case TypeString:
			slen := int(r.uint16())
			v.Str = string(r.bytes(slen))
		case TypeCounter, TypeTicks:
			v.Uint = r.uint64()
		default:
			if r.err == nil {
				return nil, fmt.Errorf("snmp: unknown value type %d", v.Type)
			}
		}
		m.Varbinds = append(m.Varbinds, Varbind{OID: oid, Value: v})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("snmp: %d trailing bytes", len(buf)-r.pos)
	}
	return m, nil
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) byte() byte {
	if !r.need(1) {
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *reader) bytes(n int) []byte {
	if !r.need(n) {
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) uint16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) uint32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) uint64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// MIB is a sorted OID → value table supporting Get and GetNext.
type MIB struct {
	entries []Varbind
}

// NewMIB builds a MIB from varbinds, sorting them by OID.
func NewMIB(entries []Varbind) *MIB {
	sorted := append([]Varbind(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].OID.Compare(sorted[j].OID) < 0
	})
	return &MIB{entries: sorted}
}

// Len returns the number of MIB entries.
func (m *MIB) Len() int { return len(m.entries) }

// Get returns the value bound to an exact OID.
func (m *MIB) Get(oid OID) (Value, bool) {
	i := sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].OID.Compare(oid) >= 0
	})
	if i < len(m.entries) && m.entries[i].OID.Compare(oid) == 0 {
		return m.entries[i].Value, true
	}
	return Value{}, false
}

// Next returns the first varbind with OID strictly greater than oid
// (GetNext semantics).
func (m *MIB) Next(oid OID) (Varbind, bool) {
	i := sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].OID.Compare(oid) > 0
	})
	if i < len(m.entries) {
		return m.entries[i], true
	}
	return Varbind{}, false
}

// Walk returns all varbinds under a prefix, in order.
func (m *MIB) Walk(prefix OID) []Varbind {
	var out []Varbind
	cur := prefix
	for {
		vb, ok := m.Next(cur)
		if !ok || !vb.OID.HasPrefix(prefix) {
			return out
		}
		out = append(out, vb)
		cur = vb.OID
	}
}
