package snmp

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridrm/internal/agents/sim"
)

func TestOIDParseAndString(t *testing.T) {
	o, err := ParseOID("1.3.6.1.2.1.1.1.0")
	if err != nil {
		t.Fatal(err)
	}
	if o.String() != "1.3.6.1.2.1.1.1.0" {
		t.Errorf("round trip %q", o.String())
	}
	for _, bad := range []string{"", ".", "1..2", "1.x", "1.", "99999999999"} {
		if _, err := ParseOID(bad); err == nil {
			t.Errorf("ParseOID(%q) succeeded", bad)
		}
	}
}

func TestOIDCompare(t *testing.T) {
	a := MustOID("1.3.6")
	b := MustOID("1.3.6.1")
	c := MustOID("1.3.7")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("prefix ordering wrong")
	}
	if b.Compare(c) >= 0 {
		t.Error("arc ordering wrong")
	}
	if a.Compare(a) != 0 {
		t.Error("self compare nonzero")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) || c.HasPrefix(a) {
		t.Error("HasPrefix wrong")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Community: "public",
		PDUType:   PDUGet,
		RequestID: 42,
		Varbinds: []Varbind{
			{OID: MustOID("1.3.6.1"), Value: NullValue},
			{OID: MustOID("1.3.6.1.2"), Value: IntValue(-7)},
			{OID: MustOID("1.3"), Value: StringValue("héllo")},
			{OID: MustOID("1.4"), Value: CounterValue(1 << 40)},
			{OID: MustOID("1.5"), Value: TicksValue(360000)},
		},
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip:\n%+v\n%+v", m, got)
	}
}

func TestUnmarshalRejectsJunk(t *testing.T) {
	cases := [][]byte{
		nil,
		{'S'},
		{'X', 'N', 1},
		{'S', 'N', 9},
		[]byte("GET /index.html HTTP/1.0\r\n"),
	}
	for _, buf := range cases {
		if _, err := Unmarshal(buf); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", buf)
		}
	}
	// Truncations of a valid message must error, never panic.
	m := &Message{Community: "c", PDUType: PDUGet, RequestID: 1,
		Varbinds: []Varbind{{OID: MustOID("1.2.3"), Value: StringValue("v")}}}
	buf, _ := m.Marshal()
	for i := 0; i < len(buf); i++ {
		if _, err := Unmarshal(buf[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage is rejected.
	if _, err := Unmarshal(append(buf, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestMarshalUnmarshalProperty(t *testing.T) {
	f := func(community string, reqID uint32, n int64, s string, u uint64) bool {
		if len(community) > 255 {
			community = community[:255]
		}
		m := &Message{Community: community, PDUType: PDUGetNext, RequestID: reqID,
			Varbinds: []Varbind{
				{OID: OID{1, 3, uint32(u % 100)}, Value: IntValue(n)},
				{OID: OID{1, 4}, Value: StringValue(s)},
				{OID: OID{1, 5}, Value: CounterValue(u)},
			}}
		buf, err := m.Marshal()
		if err != nil {
			return len(s) > 0xFFFF
		}
		got, err := Unmarshal(buf)
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMIBGetNextWalk(t *testing.T) {
	mib := NewMIB([]Varbind{
		{OID: MustOID("1.2.1"), Value: IntValue(1)},
		{OID: MustOID("1.2.3"), Value: IntValue(3)},
		{OID: MustOID("1.2.2"), Value: IntValue(2)},
		{OID: MustOID("1.3.1"), Value: IntValue(4)},
	})
	if v, ok := mib.Get(MustOID("1.2.2")); !ok || v.Int != 2 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := mib.Get(MustOID("1.2.4")); ok {
		t.Error("Get of absent OID succeeded")
	}
	vb, ok := mib.Next(MustOID("1.2"))
	if !ok || vb.OID.String() != "1.2.1" {
		t.Errorf("Next(1.2) = %v", vb.OID)
	}
	vb, ok = mib.Next(MustOID("1.2.3"))
	if !ok || vb.OID.String() != "1.3.1" {
		t.Errorf("Next(1.2.3) = %v", vb.OID)
	}
	if _, ok := mib.Next(MustOID("1.3.1")); ok {
		t.Error("Next past end succeeded")
	}
	walked := mib.Walk(MustOID("1.2"))
	if len(walked) != 3 || walked[0].Value.Int != 1 || walked[2].Value.Int != 3 {
		t.Errorf("Walk = %v", walked)
	}
}

func TestBuildMIBShape(t *testing.T) {
	site := sim.New(sim.Config{Name: "s", Hosts: 1, Seed: 1})
	site.StepN(3)
	snap, _ := site.Snapshot(site.HostNames()[0])
	mib := BuildMIB(snap)
	if v, ok := mib.Get(OIDSysName); !ok || v.Str != snap.Name {
		t.Errorf("sysName = %v", v)
	}
	if v, ok := mib.Get(OIDSysUpTime); !ok || v.Uint != uint64(snap.OS.UptimeS)*100 {
		t.Errorf("sysUpTime = %v", v)
	}
	if v, ok := mib.Get(OIDLoad.Append(1)); !ok || !strings.Contains(v.Str, ".") {
		t.Errorf("laLoad.1 = %v", v)
	}
	// One storage row per disk plus physical memory.
	descrs := mib.Walk(OIDHrStorage.Append(HrStorageColDescr))
	if len(descrs) != len(snap.Disks)+1 {
		t.Errorf("storage rows = %d, want %d", len(descrs), len(snap.Disks)+1)
	}
	// Process table sized by processes.
	names := mib.Walk(OIDHrSWRun.Append(HrSWRunColName))
	if len(names) != len(snap.Procs) {
		t.Errorf("process rows = %d, want %d", len(names), len(snap.Procs))
	}
}

func startAgent(t *testing.T) (*sim.Site, *Agent) {
	t.Helper()
	site := sim.New(sim.Config{Name: "s", Hosts: 2, Seed: 5})
	site.StepN(5)
	a, err := NewAgent(site, AgentConfig{Host: site.HostNames()[0]})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return site, a
}

func TestAgentGet(t *testing.T) {
	site, a := startAgent(t)
	c, err := Dial(a.Addr(), "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vbs, err := c.Get(OIDSysName, OIDHrMemorySize)
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Str != site.HostNames()[0] {
		t.Errorf("sysName over wire = %v", vbs[0].Value)
	}
	snap, _ := site.Snapshot(site.HostNames()[0])
	if vbs[1].Value.Int != snap.Mem.RAMMB*1024 {
		t.Errorf("hrMemorySize = %v, want %d", vbs[1].Value, snap.Mem.RAMMB*1024)
	}
	if a.Requests() != 1 {
		t.Errorf("requests = %d", a.Requests())
	}
}

func TestAgentGetMissing(t *testing.T) {
	_, a := startAgent(t)
	c, _ := Dial(a.Addr(), "", time.Second)
	defer c.Close()
	if _, err := c.Get(MustOID("1.9.9.9")); err == nil {
		t.Error("Get of absent OID succeeded")
	}
}

func TestAgentWrongCommunity(t *testing.T) {
	_, a := startAgent(t)
	c, _ := Dial(a.Addr(), "wrong", 150*time.Millisecond)
	defer c.Close()
	if _, err := c.Get(OIDSysName); err == nil {
		t.Error("wrong community answered")
	}
	if a.Requests() != 0 {
		t.Error("wrong community counted as request")
	}
}

func TestAgentWalk(t *testing.T) {
	site, a := startAgent(t)
	c, _ := Dial(a.Addr(), "", time.Second)
	defer c.Close()
	vbs, err := c.Walk(OIDLoad)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 3 {
		t.Fatalf("load walk = %d entries", len(vbs))
	}
	snap, _ := site.Snapshot(site.HostNames()[0])
	want := []float64{snap.Load1, snap.Load5, snap.Load15}
	for i, vb := range vbs {
		f, err := strconv.ParseFloat(vb.Value.Str, 64)
		if err != nil {
			t.Fatalf("laLoad %d = %q", i, vb.Value.Str)
		}
		if f != want[i] {
			t.Errorf("laLoad %d = %v, want %v", i, f, want[i])
		}
	}
}

func TestAgentHostDownTimesOut(t *testing.T) {
	site, a := startAgent(t)
	_ = site.SetHostDown(a.Host(), true)
	c, _ := Dial(a.Addr(), "", 150*time.Millisecond)
	defer c.Close()
	start := time.Now()
	if _, err := c.Get(OIDSysName); err == nil {
		t.Error("down host answered")
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("failure was not a timeout")
	}
}

func TestAgentUnknownHost(t *testing.T) {
	site := sim.New(sim.Config{Hosts: 1, Seed: 1})
	if _, err := NewAgent(site, AgentConfig{Host: "nope"}); err == nil {
		t.Error("agent for unknown host created")
	}
}

func TestAgentCloseIdempotent(t *testing.T) {
	_, a := startAgent(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestAgentIgnoresJunkDatagrams(t *testing.T) {
	_, a := startAgent(t)
	c, _ := Dial(a.Addr(), "", time.Second)
	defer c.Close()
	// Raw junk must not wedge the agent.
	junk, _ := Dial(a.Addr(), "", 100*time.Millisecond)
	_, _ = junk.conn.Write([]byte("garbage"))
	junk.Close()
	if _, err := c.Get(OIDSysName); err != nil {
		t.Errorf("agent wedged after junk: %v", err)
	}
}
