package snmp

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestOIDCompareIsTotalOrder checks the Compare relation used by the MIB's
// binary searches: antisymmetry, reflexivity-as-equality, transitivity on
// random triples, and consistency with sort.
func TestOIDCompareIsTotalOrder(t *testing.T) {
	gen := func(arcs []uint8) OID {
		o := make(OID, 0, len(arcs)%8+1)
		for i := 0; i < len(arcs) && i < 8; i++ {
			o = append(o, uint32(arcs[i]%10))
		}
		if len(o) == 0 {
			o = OID{0}
		}
		return o
	}
	f := func(a, b, c []uint8) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if x.Compare(y) != -y.Compare(x) {
			return false
		}
		if x.Compare(x) != 0 {
			return false
		}
		// transitivity: x<=y && y<=z ⇒ x<=z
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 && x.Compare(z) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMIBNextMatchesLinearScan cross-checks the binary-search GetNext
// against a brute-force reference on random MIBs.
func TestMIBNextMatchesLinearScan(t *testing.T) {
	f := func(entries [][3]uint8, probe [3]uint8) bool {
		var vbs []Varbind
		for _, e := range entries {
			vbs = append(vbs, Varbind{
				OID:   OID{uint32(e[0] % 4), uint32(e[1] % 4), uint32(e[2] % 4)},
				Value: IntValue(int64(e[0])),
			})
		}
		mib := NewMIB(vbs)
		p := OID{uint32(probe[0] % 4), uint32(probe[1] % 4), uint32(probe[2] % 4)}

		// Reference: smallest OID strictly greater than p.
		var want *Varbind
		sorted := append([]Varbind(nil), vbs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].OID.Compare(sorted[j].OID) < 0 })
		for i := range sorted {
			if sorted[i].OID.Compare(p) > 0 {
				want = &sorted[i]
				break
			}
		}
		got, ok := mib.Next(p)
		if want == nil {
			return !ok
		}
		return ok && got.OID.Compare(want.OID) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestWalkCoversPrefixExactly checks Walk returns exactly the entries under
// the prefix, in order.
func TestWalkCoversPrefixExactly(t *testing.T) {
	f := func(entries [][3]uint8, p0, p1 uint8) bool {
		seen := map[string]bool{}
		var vbs []Varbind
		for _, e := range entries {
			oid := OID{uint32(e[0] % 3), uint32(e[1] % 3), uint32(e[2] % 3)}
			if seen[oid.String()] {
				continue
			}
			seen[oid.String()] = true
			vbs = append(vbs, Varbind{OID: oid, Value: IntValue(1)})
		}
		mib := NewMIB(vbs)
		prefix := OID{uint32(p0 % 3), uint32(p1 % 3)}
		walked := mib.Walk(prefix)
		count := 0
		for _, vb := range vbs {
			if vb.OID.HasPrefix(prefix) && len(vb.OID) > len(prefix) {
				count++
			}
		}
		// Entries equal to the prefix itself are NOT returned by a walk
		// (GetNext is strictly-greater), matching net-snmp semantics.
		for i := 1; i < len(walked); i++ {
			if walked[i-1].OID.Compare(walked[i].OID) >= 0 {
				return false
			}
		}
		return len(walked) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
