package sim

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(Config{Name: "s", Hosts: 4, Seed: 42})
	b := New(Config{Name: "s", Hosts: 4, Seed: 42})
	a.StepN(50)
	b.StepN(50)
	sa := a.Snapshots()
	sb := b.Snapshots()
	if !reflect.DeepEqual(sa, sb) {
		t.Error("same seed produced different histories")
	}
	c := New(Config{Name: "s", Hosts: 4, Seed: 43})
	c.StepN(50)
	if reflect.DeepEqual(sa, c.Snapshots()) {
		t.Error("different seeds produced identical histories")
	}
}

func TestDefaults(t *testing.T) {
	s := New(Config{})
	if len(s.HostNames()) != 8 {
		t.Errorf("default hosts = %d", len(s.HostNames()))
	}
	snap, ok := s.Snapshot(s.HostNames()[0])
	if !ok {
		t.Fatal("snapshot failed")
	}
	if len(snap.Disks) != 2 || len(snap.Nics) != 1 || len(snap.Procs) != 6 {
		t.Errorf("default shape: %d disks, %d nics, %d procs", len(snap.Disks), len(snap.Nics), len(snap.Procs))
	}
}

func TestSnapshotUnknownHost(t *testing.T) {
	s := New(Config{Hosts: 1})
	if _, ok := s.Snapshot("nope"); ok {
		t.Error("snapshot of unknown host succeeded")
	}
}

func TestHostDown(t *testing.T) {
	s := New(Config{Hosts: 3, Seed: 1})
	name := s.HostNames()[1]
	if err := s.SetHostDown(name, true); err != nil {
		t.Fatal(err)
	}
	if !s.HostDown(name) {
		t.Error("HostDown false after SetHostDown")
	}
	if _, ok := s.Snapshot(name); ok {
		t.Error("snapshot of down host succeeded")
	}
	if got := len(s.Snapshots()); got != 2 {
		t.Errorf("Snapshots() = %d hosts, want 2", got)
	}
	if err := s.SetHostDown(name, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Snapshot(name); !ok {
		t.Error("snapshot failed after host back up")
	}
	if err := s.SetHostDown("nope", true); err == nil {
		t.Error("SetHostDown on unknown host succeeded")
	}
}

func TestHostDownEvents(t *testing.T) {
	s := New(Config{Hosts: 1, Seed: 1})
	var events []Event
	s.Subscribe(func(e Event) { events = append(events, e) })
	name := s.HostNames()[0]
	_ = s.SetHostDown(name, true)
	_ = s.SetHostDown(name, true) // no repeat event
	_ = s.SetHostDown(name, false)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Type != EventHostDown || events[1].Type != EventHostUp {
		t.Errorf("event types %v %v", events[0].Type, events[1].Type)
	}
}

func TestDynamicsInvariants(t *testing.T) {
	s := New(Config{Hosts: 6, Seed: 7})
	prev := map[string]HostSnapshot{}
	for _, snap := range s.Snapshots() {
		prev[snap.Name] = snap
	}
	for step := 0; step < 200; step++ {
		s.Step()
		for _, snap := range s.Snapshots() {
			if snap.Load1 < 0 || snap.Load5 < 0 || snap.Load15 < 0 {
				t.Fatalf("negative load at step %d: %+v", step, snap)
			}
			if snap.UtilPct < 0 || snap.UtilPct > 100 {
				t.Fatalf("util out of range: %v", snap.UtilPct)
			}
			if snap.Mem.RAMAvailMB < 0 || snap.Mem.RAMAvailMB > snap.Mem.RAMMB {
				t.Fatalf("memory out of range: %+v", snap.Mem)
			}
			for _, d := range snap.Disks {
				if d.AvailMB < 0 || d.AvailMB > d.SizeMB {
					t.Fatalf("disk out of range: %+v", d)
				}
			}
			p := prev[snap.Name]
			for i, n := range snap.Nics {
				if n.BytesIn < p.Nics[i].BytesIn || n.BytesOut < p.Nics[i].BytesOut {
					t.Fatalf("counters went backwards: %+v -> %+v", p.Nics[i], n)
				}
			}
			if snap.OS.UptimeS <= p.OS.UptimeS {
				t.Fatalf("uptime not increasing")
			}
			prev[snap.Name] = snap
		}
	}
}

func TestTickAndNow(t *testing.T) {
	s := New(Config{Hosts: 1, Seed: 1})
	if s.Tick() != 0 {
		t.Errorf("initial tick %d", s.Tick())
	}
	s.StepN(10)
	if s.Tick() != 10 {
		t.Errorf("tick after 10 steps = %d", s.Tick())
	}
	want := Epoch.Add(10 * TickDuration)
	if !s.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestLoadEventsEdgeTriggered(t *testing.T) {
	s := New(Config{Hosts: 8, Seed: 3, LoadAlarm: 1.0})
	var mu sync.Mutex
	counts := map[string]int{} // host -> running high-low balance
	var bad bool
	s.Subscribe(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.Type {
		case EventLoadHigh:
			counts[e.Host]++
			if counts[e.Host] > 1 {
				bad = true
			}
		case EventLoadNormal:
			counts[e.Host]--
			if counts[e.Host] < 0 {
				bad = true
			}
		}
	})
	s.StepN(500)
	mu.Lock()
	defer mu.Unlock()
	if bad {
		t.Error("load events not strictly alternating per host")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(counts) == 0 {
		t.Error("no load events with alarm=1.0 over 500 steps")
	}
}

func TestSiteElements(t *testing.T) {
	s := New(Config{Name: "pool", Hosts: 4, Seed: 5})
	ce := s.ComputeElement()
	if ce.ID != "pool-ce" || ce.TotalCPUs <= 0 || ce.FreeCPUs > ce.TotalCPUs {
		t.Errorf("compute element %+v", ce)
	}
	s.StepN(100)
	ce = s.ComputeElement()
	if ce.FreeCPUs < 0 || ce.RunningJobs < 0 || ce.WaitingJobs < 0 {
		t.Errorf("negative CE numbers: %+v", ce)
	}
	ses := s.StorageElements()
	if len(ses) != 1 || ses[0].UsedGB > ses[0].TotalGB {
		t.Errorf("storage elements %+v", ses)
	}
	nes := s.NetworkElements()
	if len(nes) != 2 {
		t.Errorf("network elements %+v", nes)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New(Config{Hosts: 1, Seed: 9})
	name := s.HostNames()[0]
	a, _ := s.Snapshot(name)
	a.Disks[0].AvailMB = -999
	a.Procs[0].Name = "mutated"
	b, _ := s.Snapshot(name)
	if b.Disks[0].AvailMB == -999 || b.Procs[0].Name == "mutated" {
		t.Error("snapshot shares state with site")
	}
}

func TestConcurrentStepAndSnapshot(t *testing.T) {
	s := New(Config{Hosts: 4, Seed: 11})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.StepN(200)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = s.Snapshots()
			_, _ = s.Snapshot(s.HostNames()[0])
		}
	}()
	wg.Wait()
}

func TestConfigFillProperty(t *testing.T) {
	f := func(hosts, disks int8) bool {
		cfg := Config{Hosts: int(hosts), DisksPerHost: int(disks), Seed: 1}
		s := New(cfg)
		names := s.HostNames()
		if len(names) == 0 {
			return false
		}
		snap, ok := s.Snapshot(names[0])
		return ok && len(snap.Disks) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
