// Package sim provides the deterministic Grid-site simulator that stands in
// for the real machines, clusters and network devices the paper monitored.
//
// The paper's evaluation harvested data from live SNMP, Ganglia, NWS,
// NetLogger and SCMS agents running on departmental resources; this repo has
// no such testbed, so sim models a site — hosts with processors, memory,
// disks, network interfaces, an operating system and processes, plus
// site-level compute/storage/network elements — and every protocol agent in
// internal/agents serves views of the *same* sim.Site. That is the property
// the substitution must preserve: one underlying heterogeneous-looking
// reality, observable through several native protocols, that GridRM must
// normalise into a single GLUE view (paper §1.1, §3.2.3).
//
// Dynamics are a pure function of (seed, tick): load follows a mean-
// reverting random walk, counters increase monotonically, processes come
// and go. Advancing time is explicit (Step/StepN), so tests are exactly
// reproducible; long-running deployments can drive Step from a ticker.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Epoch is the simulated start of time: 1 June 2003, matching the paper's
// writing date. BootTime and event timestamps derive from it.
var Epoch = time.Date(2003, time.June, 1, 0, 0, 0, 0, time.UTC)

// TickDuration is the simulated wall-clock length of one Step.
const TickDuration = time.Second

// CPUInfo is static processor identity.
type CPUInfo struct {
	Model    string
	Vendor   string
	ClockMHz int64
	CacheKB  int64
	Count    int64
}

// MemInfo is the memory state of a host at a tick.
type MemInfo struct {
	RAMMB         int64
	RAMAvailMB    int64
	VirtMB        int64
	VirtAvailMB   int64
	SwapInPerSec  float64
	SwapOutPerSec float64
}

// DiskInfo is the state of one disk device at a tick.
type DiskInfo struct {
	Device    string
	SizeMB    int64
	AvailMB   int64
	ReadMBps  float64
	WriteMBps float64
}

// NicInfo is the state of one network interface at a tick.
type NicInfo struct {
	Name          string
	IP            string
	MTU           int64
	BandwidthMbps float64
	LatencyMs     float64
	BytesIn       int64
	BytesOut      int64
	PacketsIn     int64
	PacketsOut    int64
}

// OSInfo is operating-system identity plus uptime at a tick.
type OSInfo struct {
	Name     string
	Release  string
	Version  string
	UptimeS  int64
	BootTime time.Time
}

// ProcInfo is the state of one process at a tick.
type ProcInfo struct {
	PID    int64
	Name   string
	State  string
	User   string
	CPUPct float64
	MemKB  int64
}

// HostSnapshot is a consistent copy of one host's state at a tick. Agents
// take snapshots and render them in their native formats.
type HostSnapshot struct {
	Name   string
	CPU    CPUInfo
	Load1  float64
	Load5  float64
	Load15 float64
	// UtilPct is instantaneous CPU utilisation in percent.
	UtilPct float64
	Mem     MemInfo
	Disks   []DiskInfo
	Nics    []NicInfo
	OS      OSInfo
	Procs   []ProcInfo
	// Tick is the simulator tick the snapshot was taken at.
	Tick int64
	// Time is the simulated wall-clock time of the snapshot.
	Time time.Time
}

// ComputeElementState is site-level batch system state.
type ComputeElementState struct {
	ID          string
	HostName    string
	LRMSType    string
	TotalCPUs   int64
	FreeCPUs    int64
	RunningJobs int64
	WaitingJobs int64
	Status      string
}

// StorageElementState is site-level storage service state.
type StorageElementState struct {
	ID       string
	HostName string
	Protocol string
	TotalGB  int64
	UsedGB   int64
	Status   string
}

// NetworkElementState is one piece of network infrastructure.
type NetworkElementState struct {
	Name      string
	Type      string
	PortCount int64
	Status    string
}

// EventType classifies simulator-originated native events.
type EventType string

// Event types the simulator raises.
const (
	// EventLoadHigh fires when a host's 1-minute load crosses above its
	// alarm threshold.
	EventLoadHigh EventType = "load-high"
	// EventLoadNormal fires when load falls back below threshold.
	EventLoadNormal EventType = "load-normal"
	// EventHostDown fires when a host is marked unreachable.
	EventHostDown EventType = "host-down"
	// EventHostUp fires when a host returns.
	EventHostUp EventType = "host-up"
	// EventDiskFull fires when a disk falls under 5% free.
	EventDiskFull EventType = "disk-full"
)

// Event is a native event raised by the simulated site, before any GridRM
// formatting (the Event Manager's drivers translate these, Fig 4).
type Event struct {
	Host  string
	Type  EventType
	Value float64
	Tick  int64
	Time  time.Time
}

// Listener receives simulator events synchronously during Step.
type Listener func(Event)

// Config parameterises a simulated site.
type Config struct {
	// Name is the site name, used in host names ("siteA-node03").
	Name string
	// Hosts is the number of hosts (default 8).
	Hosts int
	// Seed seeds all dynamics; equal seeds give equal histories.
	Seed int64
	// DisksPerHost (default 2), NicsPerHost (default 1), ProcsPerHost
	// (default 6) size each host.
	DisksPerHost int
	NicsPerHost  int
	ProcsPerHost int
	// LoadAlarm is the 1-minute load threshold for EventLoadHigh
	// (default 4.0).
	LoadAlarm float64
}

func (c *Config) fill() {
	if c.Name == "" {
		c.Name = "site"
	}
	if c.Hosts <= 0 {
		c.Hosts = 8
	}
	if c.DisksPerHost <= 0 {
		c.DisksPerHost = 2
	}
	if c.NicsPerHost <= 0 {
		c.NicsPerHost = 1
	}
	if c.ProcsPerHost <= 0 {
		c.ProcsPerHost = 6
	}
	if c.LoadAlarm <= 0 {
		c.LoadAlarm = 4.0
	}
}

// Site is a simulated Grid site.
type Site struct {
	mu        sync.RWMutex
	cfg       Config
	hosts     []*Host
	byName    map[string]*Host
	tick      int64
	ce        ComputeElementState
	ses       []StorageElementState
	nes       []NetworkElementState
	listeners []Listener
	rng       *rand.Rand
}

// Host is one simulated machine. All access goes through its Site's lock;
// callers use Snapshot for a consistent copy.
type Host struct {
	name       string
	cpu        CPUInfo
	targetLoad float64
	load1      float64
	load5      float64
	load15     float64
	util       float64
	mem        MemInfo
	memFrac    float64
	disks      []DiskInfo
	nics       []NicInfo
	os         OSInfo
	procs      []ProcInfo
	down       bool
	alarmed    bool
	rng        *rand.Rand
	bootTick   int64
}

var cpuModels = []struct {
	model  string
	vendor string
	clock  int64
	cache  int64
}{
	{"Pentium III (Coppermine)", "GenuineIntel", 866, 256},
	{"Pentium 4", "GenuineIntel", 2400, 512},
	{"Athlon XP 2000+", "AuthenticAMD", 1667, 256},
	{"UltraSPARC-III", "Sun", 900, 8192},
	{"POWER4", "IBM", 1300, 1440},
}

var osFlavours = []struct {
	name    string
	release string
	version string
}{
	{"Linux", "2.4.20", "Red Hat Linux 9"},
	{"Linux", "2.4.18", "Debian Woody"},
	{"SunOS", "5.8", "Solaris 8"},
	{"AIX", "5.1", "AIX 5L"},
}

var procNames = []string{"httpd", "sshd", "gmond", "nwsd", "java", "sendmail", "crond", "nfsd", "mpirun", "lmgrd"}
var userNames = []string{"root", "daemon", "mab", "gus", "grid"}
var procStates = []string{"R", "S", "S", "S", "D"}

// New creates a simulated site.
func New(cfg Config) *Site {
	cfg.fill()
	s := &Site{
		cfg:    cfg,
		byName: make(map[string]*Host, cfg.Hosts),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Hosts; i++ {
		h := s.newHost(i)
		s.hosts = append(s.hosts, h)
		s.byName[h.name] = h
	}
	s.ce = ComputeElementState{
		ID:        cfg.Name + "-ce",
		HostName:  s.hosts[0].name,
		LRMSType:  "pbs",
		TotalCPUs: 0,
		Status:    "production",
	}
	for _, h := range s.hosts {
		s.ce.TotalCPUs += h.cpu.Count
	}
	s.ce.FreeCPUs = s.ce.TotalCPUs
	s.ses = []StorageElementState{{
		ID:       cfg.Name + "-se",
		HostName: s.hosts[len(s.hosts)-1].name,
		Protocol: "gridftp",
		TotalGB:  1024,
		UsedGB:   128,
		Status:   "production",
	}}
	s.nes = []NetworkElementState{
		{Name: cfg.Name + "-router", Type: "router", PortCount: 8, Status: "up"},
		{Name: cfg.Name + "-switch", Type: "switch", PortCount: 48, Status: "up"},
	}
	return s
}

func (s *Site) newHost(i int) *Host {
	rng := rand.New(rand.NewSource(s.cfg.Seed*1000003 + int64(i)))
	cm := cpuModels[rng.Intn(len(cpuModels))]
	osf := osFlavours[rng.Intn(len(osFlavours))]
	ramMB := int64(256 << rng.Intn(4)) // 256..2048
	h := &Host{
		name:       fmt.Sprintf("%s-node%02d", s.cfg.Name, i),
		cpu:        CPUInfo{Model: cm.model, Vendor: cm.vendor, ClockMHz: cm.clock, CacheKB: cm.cache, Count: int64(1 << rng.Intn(2))},
		targetLoad: 0.3 + 2.5*rng.Float64(),
		memFrac:    0.3 + 0.4*rng.Float64(),
		rng:        rng,
		bootTick:   -int64(rng.Intn(86400 * 30)), // up for up to 30 simulated days
	}
	h.load1 = h.targetLoad
	h.load5 = h.targetLoad
	h.load15 = h.targetLoad
	h.mem = MemInfo{RAMMB: ramMB, VirtMB: ramMB * 2}
	h.mem.RAMAvailMB = int64(float64(ramMB) * (1 - h.memFrac))
	h.mem.VirtAvailMB = h.mem.VirtMB - (ramMB - h.mem.RAMAvailMB)
	for d := 0; d < s.cfg.DisksPerHost; d++ {
		size := int64(8192 << rng.Intn(3))
		h.disks = append(h.disks, DiskInfo{
			Device:  fmt.Sprintf("sd%c", 'a'+d),
			SizeMB:  size,
			AvailMB: int64(float64(size) * (0.2 + 0.6*rng.Float64())),
		})
	}
	for n := 0; n < s.cfg.NicsPerHost; n++ {
		h.nics = append(h.nics, NicInfo{
			Name:          fmt.Sprintf("eth%d", n),
			IP:            fmt.Sprintf("10.%d.0.%d", n, i+1),
			MTU:           1500,
			BandwidthMbps: 100,
			LatencyMs:     0.2 + rng.Float64(),
		})
	}
	h.os = OSInfo{
		Name:     osf.name,
		Release:  osf.release,
		Version:  osf.version,
		BootTime: Epoch.Add(time.Duration(h.bootTick) * TickDuration),
	}
	for p := 0; p < s.cfg.ProcsPerHost; p++ {
		h.procs = append(h.procs, ProcInfo{
			PID:    int64(100 + rng.Intn(30000)),
			Name:   procNames[rng.Intn(len(procNames))],
			State:  procStates[rng.Intn(len(procStates))],
			User:   userNames[rng.Intn(len(userNames))],
			CPUPct: rng.Float64() * 10,
			MemKB:  int64(500 + rng.Intn(100000)),
		})
	}
	return h
}

// Name returns the site name.
func (s *Site) Name() string { return s.cfg.Name }

// Tick returns the current simulator tick.
func (s *Site) Tick() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tick
}

// Now returns the simulated wall-clock time.
func (s *Site) Now() time.Time {
	return Epoch.Add(time.Duration(s.Tick()) * TickDuration)
}

// HostNames lists host names in stable order.
func (s *Site) HostNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, len(s.hosts))
	for i, h := range s.hosts {
		names[i] = h.name
	}
	return names
}

// Subscribe registers a listener for simulator events; listeners run
// synchronously inside Step and must be fast.
func (s *Site) Subscribe(l Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, l)
}

// SetHostDown marks a host (un)reachable; agents refuse to serve data for a
// down host, which exercises the DriverManager's failure policies.
func (s *Site) SetHostDown(name string, down bool) error {
	s.mu.Lock()
	h, ok := s.byName[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("sim: unknown host %q", name)
	}
	changed := h.down != down
	h.down = down
	tick, now := s.tick, Epoch.Add(time.Duration(s.tick)*TickDuration)
	listeners := append([]Listener(nil), s.listeners...)
	s.mu.Unlock()
	if changed {
		typ := EventHostUp
		if down {
			typ = EventHostDown
		}
		ev := Event{Host: name, Type: typ, Tick: tick, Time: now}
		for _, l := range listeners {
			l(ev)
		}
	}
	return nil
}

// HostDown reports whether the named host is marked unreachable.
func (s *Site) HostDown(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.byName[name]
	return ok && h.down
}

// Step advances the simulation by one tick, updating all dynamics and
// firing any threshold events.
func (s *Site) Step() { s.StepN(1) }

// StepN advances the simulation by n ticks.
func (s *Site) StepN(n int) {
	for i := 0; i < n; i++ {
		s.stepOnce()
	}
}

func (s *Site) stepOnce() {
	s.mu.Lock()
	s.tick++
	now := Epoch.Add(time.Duration(s.tick) * TickDuration)
	var events []Event
	var busy int64
	for _, h := range s.hosts {
		h.step()
		if h.load1 >= 1 {
			busy += min64(h.cpu.Count, int64(h.load1))
		}
		// Threshold events (edge-triggered).
		if !h.alarmed && h.load1 > s.cfg.LoadAlarm {
			h.alarmed = true
			events = append(events, Event{Host: h.name, Type: EventLoadHigh, Value: h.load1, Tick: s.tick, Time: now})
		} else if h.alarmed && h.load1 < s.cfg.LoadAlarm*0.75 {
			h.alarmed = false
			events = append(events, Event{Host: h.name, Type: EventLoadNormal, Value: h.load1, Tick: s.tick, Time: now})
		}
		for _, d := range h.disks {
			if d.AvailMB*20 < d.SizeMB { // <5% free
				events = append(events, Event{Host: h.name, Type: EventDiskFull, Value: float64(d.AvailMB), Tick: s.tick, Time: now})
			}
		}
	}
	// Batch system dynamics.
	s.ce.FreeCPUs = max64(0, s.ce.TotalCPUs-busy)
	s.ce.RunningJobs = max64(0, s.ce.RunningJobs+int64(s.rng.Intn(3))-1)
	s.ce.WaitingJobs = max64(0, s.ce.WaitingJobs+int64(s.rng.Intn(3))-1)
	s.ses[0].UsedGB = min64(s.ses[0].TotalGB, max64(0, s.ses[0].UsedGB+int64(s.rng.Intn(3))-1))
	listeners := append([]Listener(nil), s.listeners...)
	s.mu.Unlock()
	for _, ev := range events {
		for _, l := range listeners {
			l(ev)
		}
	}
}

func (h *Host) step() {
	// Mean-reverting random walk for 1-minute load; occasional bursts.
	noise := h.rng.NormFloat64() * 0.15
	if h.rng.Float64() < 0.01 {
		noise += 2 + 3*h.rng.Float64() // burst
	}
	h.load1 += 0.1*(h.targetLoad-h.load1) + noise
	if h.load1 < 0 {
		h.load1 = 0
	}
	h.load5 += (h.load1 - h.load5) / 5
	h.load15 += (h.load1 - h.load15) / 15
	h.util = 100 * math.Min(1, h.load1/float64(h.cpu.Count))

	// Memory wiggles around its fraction.
	h.memFrac += h.rng.NormFloat64() * 0.01
	h.memFrac = math.Max(0.05, math.Min(0.95, h.memFrac))
	h.mem.RAMAvailMB = int64(float64(h.mem.RAMMB) * (1 - h.memFrac))
	h.mem.VirtAvailMB = h.mem.VirtMB - (h.mem.RAMMB - h.mem.RAMAvailMB)
	h.mem.SwapInPerSec = math.Max(0, h.rng.NormFloat64()*0.5+float64(int64(h.load1))*0.2)
	h.mem.SwapOutPerSec = math.Max(0, h.rng.NormFloat64()*0.5)

	for i := range h.disks {
		d := &h.disks[i]
		d.ReadMBps = math.Max(0, h.rng.NormFloat64()*2+1)
		d.WriteMBps = math.Max(0, h.rng.NormFloat64()*1+0.5)
		drift := int64(h.rng.Intn(11)) - 5
		d.AvailMB = min64(d.SizeMB, max64(0, d.AvailMB+drift))
	}
	for i := range h.nics {
		n := &h.nics[i]
		inB := int64(h.rng.Intn(200000))
		outB := int64(h.rng.Intn(120000))
		n.BytesIn += inB
		n.BytesOut += outB
		n.PacketsIn += inB / 400
		n.PacketsOut += outB / 400
		n.LatencyMs = math.Max(0.05, n.LatencyMs+h.rng.NormFloat64()*0.02)
	}
	for i := range h.procs {
		p := &h.procs[i]
		p.CPUPct = math.Max(0, p.CPUPct+h.rng.NormFloat64()*1.5)
		p.MemKB = max64(100, p.MemKB+int64(h.rng.Intn(401))-200)
		p.State = procStates[h.rng.Intn(len(procStates))]
		// Processes occasionally exit and are replaced.
		if h.rng.Float64() < 0.005 {
			p.PID = int64(100 + h.rng.Intn(30000))
			p.Name = procNames[h.rng.Intn(len(procNames))]
			p.User = userNames[h.rng.Intn(len(userNames))]
			p.CPUPct = h.rng.Float64() * 5
			p.MemKB = int64(500 + h.rng.Intn(100000))
		}
	}
}

// Snapshot returns a consistent copy of the named host's state, or false if
// the host does not exist or is down.
func (s *Site) Snapshot(name string) (HostSnapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.byName[name]
	if !ok || h.down {
		return HostSnapshot{}, false
	}
	return s.snapshotLocked(h), true
}

// Snapshots returns consistent copies of all reachable hosts.
func (s *Site) Snapshots() []HostSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]HostSnapshot, 0, len(s.hosts))
	for _, h := range s.hosts {
		if h.down {
			continue
		}
		out = append(out, s.snapshotLocked(h))
	}
	return out
}

func (s *Site) snapshotLocked(h *Host) HostSnapshot {
	now := Epoch.Add(time.Duration(s.tick) * TickDuration)
	snap := HostSnapshot{
		Name:    h.name,
		CPU:     h.cpu,
		Load1:   round2(h.load1),
		Load5:   round2(h.load5),
		Load15:  round2(h.load15),
		UtilPct: round2(h.util),
		Mem:     h.mem,
		OS:      h.os,
		Tick:    s.tick,
		Time:    now,
	}
	snap.Mem.SwapInPerSec = round2(snap.Mem.SwapInPerSec)
	snap.Mem.SwapOutPerSec = round2(snap.Mem.SwapOutPerSec)
	snap.OS.UptimeS = s.tick - h.bootTick
	snap.Disks = append([]DiskInfo(nil), h.disks...)
	for i := range snap.Disks {
		snap.Disks[i].ReadMBps = round2(snap.Disks[i].ReadMBps)
		snap.Disks[i].WriteMBps = round2(snap.Disks[i].WriteMBps)
	}
	snap.Nics = append([]NicInfo(nil), h.nics...)
	for i := range snap.Nics {
		snap.Nics[i].LatencyMs = round2(snap.Nics[i].LatencyMs)
	}
	snap.Procs = append([]ProcInfo(nil), h.procs...)
	for i := range snap.Procs {
		snap.Procs[i].CPUPct = round2(snap.Procs[i].CPUPct)
	}
	return snap
}

// ComputeElement returns the site's batch-system state.
func (s *Site) ComputeElement() ComputeElementState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ce
}

// StorageElements returns the site's storage services.
func (s *Site) StorageElements() []StorageElementState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]StorageElementState(nil), s.ses...)
}

// NetworkElements returns the site's network infrastructure.
func (s *Site) NetworkElements() []NetworkElementState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]NetworkElementState(nil), s.nes...)
}

// round2 keeps snapshots tidy and makes cross-agent value comparison exact:
// every agent renders from the same rounded snapshot values.
func round2(f float64) float64 { return math.Round(f*100) / 100 }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
