// Package netlogger implements a NetLogger-style agent. NetLogger produces
// timestamped ULM (Universal Logger Message) records — "FIELD=value"
// pairs on one line — and GridRM's NetLogger driver issues fine-grained
// requests that need "little or no parsing" (paper §3.2.3).
//
// Record format:
//
//	DATE=20030601120000.000000 HOST=site-node00 PROG=sensor LVL=Usage NL.EVNT=load.one VAL=0.52
//
// Line protocol:
//
//	GET <host> <event>  → one ULM record (the latest), or ERR
//	HOSTS               → host names with records, END
//	EVENTS <host>       → latest record per event for host, END
//	LOG <ulm-record>    → accept a record from a remote producer (OK/ERR)
//	TAIL <n>            → last n records, END
//	STREAM              → all future records pushed as they are recorded
//	                      (the Event Manager's inbound native event feed)
package netlogger

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gridrm/internal/agents/sim"
)

// Event names recorded per host on every Sample.
const (
	EvLoadOne     = "load.one"
	EvLoadFive    = "load.five"
	EvLoadFifteen = "load.fifteen"
	EvCPUUtil     = "cpu.util"
	EvMemFree     = "mem.free"
	EvMemTotal    = "mem.total"
	EvProcCount   = "proc.count"
)

// UsageEvents lists the per-sample usage events in stable order.
var UsageEvents = []string{EvLoadOne, EvLoadFive, EvLoadFifteen, EvCPUUtil, EvMemFree, EvMemTotal, EvProcCount}

// Record is one parsed ULM record.
type Record struct {
	// Date is the record timestamp.
	Date time.Time
	// Host is the subject host.
	Host string
	// Prog is the producing program.
	Prog string
	// Level is "Usage" for samples and "Alert" for simulator events.
	Level string
	// Event is the NL.EVNT name.
	Event string
	// Value is the numeric value.
	Value float64
}

// ulmDate is NetLogger's DATE layout.
const ulmDate = "20060102150405.000000"

// Format renders the record as a ULM line.
func (r Record) Format() string {
	return fmt.Sprintf("DATE=%s HOST=%s PROG=%s LVL=%s NL.EVNT=%s VAL=%g",
		r.Date.UTC().Format(ulmDate), r.Host, r.Prog, r.Level, r.Event, r.Value)
}

// ParseRecord parses a ULM line.
func ParseRecord(line string) (Record, error) {
	var r Record
	seen := 0
	for _, field := range strings.Fields(line) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return r, fmt.Errorf("netlogger: bad field %q", field)
		}
		switch key {
		case "DATE":
			t, err := time.Parse(ulmDate, val)
			if err != nil {
				return r, fmt.Errorf("netlogger: bad DATE %q", val)
			}
			r.Date = t.UTC()
			seen++
		case "HOST":
			r.Host = val
			seen++
		case "PROG":
			r.Prog = val
		case "LVL":
			r.Level = val
		case "NL.EVNT":
			r.Event = val
			seen++
		case "VAL":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return r, fmt.Errorf("netlogger: bad VAL %q", val)
			}
			r.Value = f
			seen++
		}
	}
	if seen < 4 {
		return r, fmt.Errorf("netlogger: incomplete record %q", line)
	}
	return r, nil
}

// maxBuffer bounds the in-memory record ring.
const maxBuffer = 8192

// Agent is a site-wide NetLogger collector.
type Agent struct {
	site     *sim.Site
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	requests atomic.Int64

	mu      sync.RWMutex
	buf     []Record
	latest  map[string]Record // host+"/"+event → latest
	streams map[int64]chan Record
	conns   map[net.Conn]struct{}
	nextID  int64
}

// NewAgent starts a NetLogger agent for the site and subscribes it to the
// simulator's native events, which it records as LVL=Alert.
func NewAgent(site *sim.Site, addr string) (*Agent, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netlogger: %w", err)
	}
	a := &Agent{site: site, ln: ln, latest: make(map[string]Record),
		streams: make(map[int64]chan Record), conns: make(map[net.Conn]struct{})}
	site.Subscribe(func(ev sim.Event) {
		a.record(Record{
			Date:  ev.Time,
			Host:  ev.Host,
			Prog:  "simd",
			Level: "Alert",
			Event: string(ev.Type),
			Value: ev.Value,
		})
	})
	a.wg.Add(1)
	go a.serve()
	return a, nil
}

// Addr returns the agent's TCP address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Requests returns the number of protocol commands served.
func (a *Agent) Requests() int64 { return a.requests.Load() }

// Close stops the agent, terminating streams and dropping any connections
// still open.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	err := a.ln.Close()
	a.mu.Lock()
	for id, ch := range a.streams {
		close(ch)
		delete(a.streams, id)
	}
	for conn := range a.conns {
		_ = conn.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
	return err
}

// Sample records one Usage record per (reachable host, usage event).
func (a *Agent) Sample() {
	for _, snap := range a.site.Snapshots() {
		base := Record{Date: snap.Time, Host: snap.Name, Prog: "sensor", Level: "Usage"}
		rec := func(event string, v float64) {
			r := base
			r.Event, r.Value = event, v
			a.record(r)
		}
		rec(EvLoadOne, snap.Load1)
		rec(EvLoadFive, snap.Load5)
		rec(EvLoadFifteen, snap.Load15)
		rec(EvCPUUtil, snap.UtilPct)
		rec(EvMemFree, float64(snap.Mem.RAMAvailMB))
		rec(EvMemTotal, float64(snap.Mem.RAMMB))
		rec(EvProcCount, float64(len(snap.Procs)))
	}
}

func (a *Agent) record(r Record) {
	a.mu.Lock()
	a.buf = append(a.buf, r)
	if len(a.buf) > maxBuffer {
		a.buf = a.buf[len(a.buf)-maxBuffer:]
	}
	a.latest[r.Host+"/"+r.Event] = r
	for _, ch := range a.streams {
		select {
		case ch <- r:
		default: // slow stream consumers lose records rather than block
		}
	}
	a.mu.Unlock()
}

// Latest returns the most recent record for host/event.
func (a *Agent) Latest(host, event string) (Record, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.latest[host+"/"+event]
	return r, ok
}

// Tail returns the last n records.
func (a *Agent) Tail(n int) []Record {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if n > len(a.buf) {
		n = len(a.buf)
	}
	return append([]Record(nil), a.buf[len(a.buf)-n:]...)
}

func (a *Agent) serve() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer func() {
				a.mu.Lock()
				delete(a.conns, conn)
				a.mu.Unlock()
				_ = conn.Close()
			}()
			a.handle(conn)
		}()
	}
}

func (a *Agent) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		a.requests.Add(1)
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprintf(w, "ERR empty command\n")
			_ = w.Flush()
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "GET":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR usage: GET <host> <event>\n")
				break
			}
			r, ok := a.Latest(fields[1], fields[2])
			if !ok {
				fmt.Fprintf(w, "ERR no record for %s/%s\n", fields[1], fields[2])
				break
			}
			fmt.Fprintf(w, "%s\n", r.Format())
		case "HOSTS":
			a.mu.RLock()
			hosts := make(map[string]bool)
			for key := range a.latest {
				if h, _, ok := strings.Cut(key, "/"); ok {
					hosts[h] = true
				}
			}
			a.mu.RUnlock()
			names := make([]string, 0, len(hosts))
			for h := range hosts {
				names = append(names, h)
			}
			sort.Strings(names)
			for _, h := range names {
				fmt.Fprintf(w, "%s\n", h)
			}
			fmt.Fprintf(w, "END\n")
		case "EVENTS":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR usage: EVENTS <host>\n")
				break
			}
			a.mu.RLock()
			var recs []Record
			for key, r := range a.latest {
				if strings.HasPrefix(key, fields[1]+"/") {
					recs = append(recs, r)
				}
			}
			a.mu.RUnlock()
			sort.Slice(recs, func(i, j int) bool { return recs[i].Event < recs[j].Event })
			for _, r := range recs {
				fmt.Fprintf(w, "%s\n", r.Format())
			}
			fmt.Fprintf(w, "END\n")
		case "TAIL":
			n := 10
			if len(fields) == 2 {
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 0 {
					fmt.Fprintf(w, "ERR bad count %q\n", fields[1])
					break
				}
				n = v
			}
			for _, r := range a.Tail(n) {
				fmt.Fprintf(w, "%s\n", r.Format())
			}
			fmt.Fprintf(w, "END\n")
		case "LOG":
			// Accept a ULM record from a remote producer (the outbound
			// path of GridRM's Event Manager transmits alerts this way).
			raw := strings.TrimSpace(strings.TrimPrefix(sc.Text(), fields[0]))
			rec, err := ParseRecord(raw)
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			a.record(rec)
			fmt.Fprintf(w, "OK\n")
		case "STREAM":
			_ = w.Flush()
			a.stream(conn, w)
			return
		case "QUIT":
			_ = w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (a *Agent) stream(conn net.Conn, w *bufio.Writer) {
	ch := make(chan Record, 512)
	a.mu.Lock()
	a.nextID++
	id := a.nextID
	a.streams[id] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		if _, ok := a.streams[id]; ok {
			delete(a.streams, id)
			close(ch)
		}
		a.mu.Unlock()
	}()
	for r := range ch {
		if _, err := fmt.Fprintf(w, "%s\n", r.Format()); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}
