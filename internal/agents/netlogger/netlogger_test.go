package netlogger

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"gridrm/internal/agents/sim"
)

func newAgent(t *testing.T) (*sim.Site, *Agent) {
	t.Helper()
	site := sim.New(sim.Config{Name: "nl", Hosts: 2, Seed: 4})
	site.StepN(2)
	a, err := NewAgent(site, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return site, a
}

func TestRecordFormatParseRoundTrip(t *testing.T) {
	r := Record{
		Date:  time.Date(2003, 6, 1, 12, 0, 0, 500000000, time.UTC),
		Host:  "nl-node00",
		Prog:  "sensor",
		Level: "Usage",
		Event: EvLoadOne,
		Value: 1.25,
	}
	line := r.Format()
	if !strings.Contains(line, "DATE=20030601120000.500000") ||
		!strings.Contains(line, "NL.EVNT=load.one") ||
		!strings.Contains(line, "VAL=1.25") {
		t.Errorf("format: %q", line)
	}
	got, err := ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip:\n%+v\n%+v", r, got)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"HOST=x",
		"DATE=notadate HOST=x NL.EVNT=e VAL=1",
		"DATE=20030601120000.000000 HOST=x NL.EVNT=e VAL=abc",
		"DATE=20030601120000.000000 HOST=x NL.EVNT=e", // no VAL
		"no-equals-here",
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) succeeded", line)
		}
	}
}

func TestSampleAndLatest(t *testing.T) {
	site, a := newAgent(t)
	a.Sample()
	host := site.HostNames()[0]
	snap, _ := site.Snapshot(host)
	r, ok := a.Latest(host, EvLoadOne)
	if !ok {
		t.Fatal("no latest record")
	}
	if r.Value != snap.Load1 || r.Level != "Usage" {
		t.Errorf("record %+v, want load %v", r, snap.Load1)
	}
	for _, ev := range UsageEvents {
		if _, ok := a.Latest(host, ev); !ok {
			t.Errorf("missing usage event %s", ev)
		}
	}
	if _, ok := a.Latest("ghost", EvLoadOne); ok {
		t.Error("latest for unknown host")
	}
}

func TestTail(t *testing.T) {
	site, a := newAgent(t)
	a.Sample()
	total := len(site.HostNames()) * len(UsageEvents)
	if got := len(a.Tail(1000)); got != total {
		t.Errorf("tail = %d, want %d", got, total)
	}
	if got := len(a.Tail(3)); got != 3 {
		t.Errorf("tail(3) = %d", got)
	}
}

func TestAlertsFromSimEvents(t *testing.T) {
	site, a := newAgent(t)
	host := site.HostNames()[0]
	_ = site.SetHostDown(host, true)
	r, ok := a.Latest(host, string(sim.EventHostDown))
	if !ok {
		t.Fatal("host-down alert not recorded")
	}
	if r.Level != "Alert" || r.Prog != "simd" {
		t.Errorf("alert record %+v", r)
	}
}

type tc struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *tc {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return &tc{conn: conn, r: bufio.NewReader(conn)}
}

func (c *tc) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatal(err)
	}
}

func (c *tc) line(t *testing.T) string {
	t.Helper()
	l, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(l)
}

func TestProtocolGetAndEvents(t *testing.T) {
	site, a := newAgent(t)
	a.Sample()
	host := site.HostNames()[0]
	c := dial(t, a.Addr())
	c.send(t, "GET "+host+" "+EvMemTotal)
	rec, err := ParseRecord(c.line(t))
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := site.Snapshot(host)
	if rec.Value != float64(snap.Mem.RAMMB) {
		t.Errorf("mem.total over wire = %v", rec.Value)
	}
	c.send(t, "EVENTS "+host)
	n := 0
	for {
		l := c.line(t)
		if l == "END" {
			break
		}
		if _, err := ParseRecord(l); err != nil {
			t.Errorf("bad record %q", l)
		}
		n++
	}
	if n != len(UsageEvents) {
		t.Errorf("EVENTS returned %d records, want %d", n, len(UsageEvents))
	}
	c.send(t, "GET "+host+" no.such.event")
	if l := c.line(t); !strings.HasPrefix(l, "ERR") {
		t.Errorf("missing event -> %q", l)
	}
}

func TestProtocolTailAndErrors(t *testing.T) {
	_, a := newAgent(t)
	a.Sample()
	c := dial(t, a.Addr())
	c.send(t, "TAIL 2")
	var lines []string
	for {
		l := c.line(t)
		if l == "END" {
			break
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Errorf("TAIL 2 -> %d lines", len(lines))
	}
	for _, cmd := range []string{"TAIL x", "GET onlyhost", "NOPE", "EVENTS"} {
		c.send(t, cmd)
		if l := c.line(t); !strings.HasPrefix(l, "ERR") {
			t.Errorf("%q -> %q", cmd, l)
		}
	}
}

func TestProtocolStream(t *testing.T) {
	site, a := newAgent(t)
	c := dial(t, a.Addr())
	c.send(t, "STREAM")
	// Give the server a moment to register the stream before recording.
	time.Sleep(50 * time.Millisecond)
	a.Sample()
	rec, err := ParseRecord(c.line(t))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Level != "Usage" {
		t.Errorf("streamed %+v", rec)
	}
	// Alerts stream too.
	_ = site.SetHostDown(site.HostNames()[0], true)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r2, err := ParseRecord(c.line(t))
		if err != nil {
			t.Fatal(err)
		}
		if r2.Level == "Alert" && r2.Event == string(sim.EventHostDown) {
			return
		}
	}
	t.Error("alert never streamed")
}

func TestBufferBounded(t *testing.T) {
	site, a := newAgent(t)
	per := len(site.HostNames()) * len(UsageEvents)
	for i := 0; i < maxBuffer/per+10; i++ {
		a.Sample()
	}
	if got := len(a.Tail(maxBuffer * 2)); got > maxBuffer {
		t.Errorf("buffer grew to %d", got)
	}
}
