package tsdb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gridrm/internal/history"
	"gridrm/internal/resultset"
)

// Options configures a durable Store.
type Options struct {
	// Dir is the durability directory (WAL segments + checkpoints).
	Dir string
	// Fsync is the WAL fsync policy: FsyncAlways, FsyncInterval (default)
	// or FsyncOff.
	Fsync string
	// FsyncEvery bounds how stale unsynced WAL data may get under
	// FsyncInterval (default 100ms).
	FsyncEvery time.Duration
	// SegmentMaxBytes rotates the live WAL segment once it grows past this
	// (default 4 MiB).
	SegmentMaxBytes int64
	// CheckpointInterval is the period of the background checkpoint loop
	// (default 1m; negative disables the loop, checkpoints then happen only
	// at Close and after a re-attach).
	CheckpointInterval time.Duration
	// MaxDiskBytes budgets the directory's total size; when exceeded the
	// oldest sealed segments are dropped first. 0 means unlimited.
	MaxDiskBytes int64
	// ReattachBackoff is the initial backoff before retrying disk access
	// after a fault (default 2s, doubled with jitter up to 1m).
	ReattachBackoff time.Duration
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
	// Alert, if set, receives durability alerts (corruption detected, disk
	// fault, budget dropping unsynced data).
	Alert func(kind, detail string)
	// Status, if set, receives non-alert state transitions (restore summary,
	// re-attach).
	Status func(kind, detail string)
}

// AlertKind is the event name durability alerts are published under.
const AlertKind = "history-durability"

// ValidFsync reports whether s names a known fsync policy.
func ValidFsync(s string) bool {
	return s == FsyncAlways || s == FsyncInterval || s == FsyncOff
}

func (o Options) withDefaults() Options {
	if !ValidFsync(o.Fsync) {
		o.Fsync = FsyncInterval
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 4 << 20
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = time.Minute
	}
	if o.ReattachBackoff <= 0 {
		o.ReattachBackoff = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Store journals history records to a segmented WAL and periodically
// checkpoints the in-memory store's retained state. It wraps (not replaces)
// a history.Store: reads keep going straight to memory, writes are
// journaled before they return. Every disk failure degrades the store to
// memory-only mode — identical to running without durability — and a
// background loop re-attaches with jittered backoff. Nothing here is ever
// fatal to the gateway.
type Store struct {
	mem  *history.Store
	opts Options

	mu          sync.Mutex
	w           *segmentWriter
	attached    bool
	closed      bool
	reattaching bool
	restored    bool
	lastSeq     uint64 // highest WAL segment sequence ever used
	ckptSeq     uint64 // sequence of the newest good checkpoint file
	ckptWALSeq  uint64 // WAL sequence that checkpoint's replay resumes from
	sealed      []segmentInfo
	ckpts       []checkpointInfo
	encBuf      []byte
	failWrites  error // test hook: injected append error

	// Counters, all guarded by mu (every writer-path touch holds it).
	walAppends       int64
	fsyncs           int64
	replayed         int64
	corrupt          int64
	checkpoints      int64
	checkpointErrors int64
	walErrors        int64
	reattaches       int64
	segmentsDropped  int64
	lastCheckpoint   time.Time

	ckptMu    sync.Mutex // serializes checkpoint writes
	stopCh    chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// Stats is a point-in-time snapshot of durability state and counters.
type Stats struct {
	State            string    `json:"state"` // durable | memory-only | closed
	Dir              string    `json:"dir"`
	WALAppends       int64     `json:"wal_appends"`
	Fsyncs           int64     `json:"fsyncs"`
	ReplayedRecords  int64     `json:"replayed_records"`
	CorruptRecords   int64     `json:"corrupt_records"`
	Checkpoints      int64     `json:"checkpoints"`
	CheckpointErrors int64     `json:"checkpoint_errors"`
	WALErrors        int64     `json:"wal_errors"`
	Reattaches       int64     `json:"reattaches"`
	SegmentsDropped  int64     `json:"segments_dropped"`
	DiskBytes        int64     `json:"disk_bytes"`
	WALSegments      int       `json:"wal_segments"`
	LastCheckpoint   time.Time `json:"last_checkpoint,omitempty"`
}

// Open attaches durability to mem. It never fails: if the directory cannot
// be used the store starts in memory-only mode, alerts, and keeps retrying
// in the background. On success the in-memory store is restored from the
// newest valid checkpoint plus the WAL tail before Open returns, so the
// degradation ladder's history tier serves pre-restart samples immediately.
func Open(opts Options, mem *history.Store) *Store {
	s := &Store{mem: mem, opts: opts.withDefaults(), stopCh: make(chan struct{})}
	s.mu.Lock()
	if err := s.attachLocked(); err != nil {
		s.alert(fmt.Sprintf("history dir unusable, running memory-only: %v", err))
		s.startReattachLocked()
	}
	s.mu.Unlock()
	if s.opts.CheckpointInterval > 0 {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s
}

func (s *Store) alert(detail string) {
	if s.opts.Alert != nil {
		s.opts.Alert(AlertKind, detail)
	}
}

func (s *Store) status(detail string) {
	if s.opts.Status != nil {
		s.opts.Status(AlertKind, detail)
	}
}

// attachLocked (re)establishes disk access: it restores state on the first
// attach and opens a fresh live segment. Callers hold s.mu.
func (s *Store) attachLocked() error {
	if err := os.MkdirAll(s.opts.Dir, 0o755); err != nil {
		return err
	}
	if !s.restored {
		if err := s.restoreLocked(); err != nil {
			return err
		}
		s.restored = true
	}
	segs, err := listSegments(s.opts.Dir)
	if err != nil {
		return err
	}
	cps, err := listCheckpoints(s.opts.Dir)
	if err != nil {
		return err
	}
	next := s.lastSeq + 1
	if n := len(segs); n > 0 && segs[n-1].seq >= next {
		next = segs[n-1].seq + 1
	}
	w, err := createSegment(s.opts.Dir, next, s.opts.Fsync, s.opts.FsyncEvery,
		s.opts.Clock, func() { s.fsyncs++ })
	if err != nil {
		return err
	}
	s.w = w
	s.lastSeq = next
	s.sealed = segs
	s.ckpts = cps
	s.attached = true
	return nil
}

// restoreLocked loads the newest valid checkpoint (falling back past
// corrupt ones) and replays the WAL tail into the in-memory store.
// Corruption is counted, alerted, and truncated away — never an error.
func (s *Store) restoreLocked() error {
	cps, err := listCheckpoints(s.opts.Dir)
	if err != nil {
		return err
	}
	var restored int64
	for i := len(cps) - 1; i >= 0; i-- {
		recs, walSeq, err := loadCheckpoint(cps[i].path)
		if err != nil {
			s.corrupt++
			s.alert(fmt.Sprintf("corrupt checkpoint dropped, falling back to previous: %v", err))
			_ = os.Remove(cps[i].path)
			continue
		}
		for _, rec := range recs {
			s.mem.Load(rec)
		}
		restored += int64(len(recs))
		s.ckptSeq = cps[i].seq
		s.ckptWALSeq = walSeq
		break
	}
	segs, err := listSegments(s.opts.Dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.seq < s.ckptWALSeq {
			continue // fully covered by the checkpoint
		}
		frames, truncated, err := replaySegment(seg.path, func(payload []byte) error {
			rec, err := decodeSample(payload)
			if err != nil {
				return err
			}
			s.mem.Load(rec)
			return nil
		})
		restored += int64(frames)
		if err != nil {
			s.alert(fmt.Sprintf("cannot replay WAL segment %s: %v", seg.path, err))
			continue
		}
		if truncated {
			s.corrupt++
			s.alert(fmt.Sprintf("torn or corrupt WAL tail in %s truncated after %d valid records", seg.path, frames))
		}
	}
	s.replayed += restored
	if restored > 0 || s.ckptSeq > 0 {
		s.status(fmt.Sprintf("restored %d records from %s", restored, s.opts.Dir))
	}
	return nil
}

// Record stores a harvested ResultSet in memory and journals it to the WAL.
// The in-memory write always happens; a WAL failure degrades the store to
// memory-only mode instead of surfacing an error to the harvest path.
func (s *Store) Record(source, group string, rs *resultset.ResultSet, at time.Time) error {
	if err := s.mem.Record(source, group, rs, at); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.attached {
		return nil
	}
	// Rows are only read during encoding, so aliasing the ResultSet's own
	// slices is safe here.
	rows := make([][]any, rs.Len())
	for i := range rows {
		rows[i] = rs.RowAt(i)
	}
	s.encBuf = encodeSample(s.encBuf[:0], history.SampleRecord{
		Source: source, Group: group, At: at, Rows: rows,
	})
	err := s.failWrites
	if err == nil {
		err = s.w.append(s.encBuf)
	}
	if err != nil {
		s.walErrors++
		s.detachLocked(fmt.Sprintf("WAL append failed: %v", err))
		return nil
	}
	s.walAppends++
	if s.w.size >= s.opts.SegmentMaxBytes {
		s.rotateLocked()
	}
	return nil
}

// rotateLocked seals the live segment and opens the next one. Callers hold
// s.mu. It returns the sealed segment's sequence (the new live sequence on
// success is that plus one).
func (s *Store) rotateLocked() {
	old := s.w
	info := segmentInfo{seq: old.seq, path: old.path, size: old.size}
	if err := old.close(); err != nil {
		s.walErrors++
		s.w = nil
		s.detachLocked(fmt.Sprintf("sealing WAL segment failed: %v", err))
		return
	}
	s.sealed = append(s.sealed, info)
	next := s.lastSeq + 1
	w, err := createSegment(s.opts.Dir, next, s.opts.Fsync, s.opts.FsyncEvery,
		s.opts.Clock, func() { s.fsyncs++ })
	if err != nil {
		s.w = nil
		s.detachLocked(fmt.Sprintf("creating WAL segment failed: %v", err))
		return
	}
	s.w = w
	s.lastSeq = next
	s.enforceBudgetLocked()
}

// detachLocked degrades to memory-only mode after a disk fault and starts
// the re-attach loop. Callers hold s.mu.
func (s *Store) detachLocked(detail string) {
	if s.w != nil {
		s.w.abandon() // sync would likely fail too; just release the fd
		s.w = nil
	}
	if !s.attached && s.reattaching {
		return
	}
	s.attached = false
	s.alert("degraded to memory-only: " + detail)
	s.startReattachLocked()
}

func (s *Store) startReattachLocked() {
	if s.reattaching || s.closed {
		return
	}
	s.reattaching = true
	s.wg.Add(1)
	go s.reattachLoop()
}

// reattachLoop retries disk access with jittered exponential backoff. On
// success it immediately checkpoints so the records collected while
// memory-only become durable.
func (s *Store) reattachLoop() {
	defer s.wg.Done()
	backoff := s.opts.ReattachBackoff
	const maxBackoff = time.Minute
	for {
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)))
		timer := time.NewTimer(delay)
		select {
		case <-s.stopCh:
			timer.Stop()
			return
		case <-timer.C:
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		err := s.attachLocked()
		if err == nil {
			s.reattaching = false
			s.reattaches++
			s.mu.Unlock()
			s.status("re-attached to history dir, durable again")
			_ = s.Checkpoint() // capture the memory-only window
			return
		}
		s.mu.Unlock()
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Checkpoint snapshots the in-memory store to disk and garbage-collects
// WAL segments the snapshot covers. Memory-only or closed stores skip it.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.mu.Lock()
	if s.closed || !s.attached {
		s.mu.Unlock()
		return nil
	}
	// Rotate so the snapshot boundary coincides exactly with the start of
	// the new live segment: the checkpoint then covers every sealed
	// segment below walSeq and replay resumes from walSeq.
	s.rotateLocked()
	if !s.attached { // rotation itself hit a disk fault
		s.mu.Unlock()
		return nil
	}
	walSeq := s.w.seq
	snap := s.mem.Snapshot()
	seq := s.ckptSeq + 1
	dir := s.opts.Dir
	s.mu.Unlock()

	err := writeCheckpoint(dir, seq, walSeq, snap)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.checkpointErrors++
		if !s.closed && s.attached {
			s.detachLocked(fmt.Sprintf("checkpoint failed: %v", err))
		}
		return err
	}
	s.checkpoints++
	s.ckptSeq = seq
	s.ckptWALSeq = walSeq
	s.lastCheckpoint = s.opts.Clock()
	s.ckpts = append(s.ckpts, checkpointInfo{
		seq: seq, path: filepath.Join(dir, checkpointName(seq)), walSeq: walSeq,
	})
	if fi, statErr := os.Stat(s.ckpts[len(s.ckpts)-1].path); statErr == nil {
		s.ckpts[len(s.ckpts)-1].size = fi.Size()
	}
	// Keep the two newest checkpoints (the older is the fallback if the
	// newer turns out corrupt), and only GC WAL segments the OLDEST kept
	// checkpoint covers: if the newest checkpoint is unreadable at restore,
	// the fallback plus the surviving segments still reconstruct everything.
	for len(s.ckpts) > 2 {
		_ = os.Remove(s.ckpts[0].path)
		s.ckpts = s.ckpts[1:]
	}
	gcSeq := s.ckpts[0].walSeq
	kept := s.sealed[:0]
	for _, seg := range s.sealed {
		if seg.seq < gcSeq {
			_ = os.Remove(seg.path)
		} else {
			kept = append(kept, seg)
		}
	}
	s.sealed = kept
	s.enforceBudgetLocked()
	return nil
}

func (s *Store) checkpointLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.CheckpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			_ = s.Checkpoint()
		}
	}
}

// enforceBudgetLocked drops the oldest sealed segments while the directory
// exceeds MaxDiskBytes. Callers hold s.mu.
func (s *Store) enforceBudgetLocked() {
	if s.opts.MaxDiskBytes <= 0 {
		return
	}
	for s.diskBytesLocked() > s.opts.MaxDiskBytes && len(s.sealed) > 0 {
		seg := s.sealed[0]
		if err := os.Remove(seg.path); err != nil {
			return
		}
		s.sealed = s.sealed[1:]
		s.segmentsDropped++
		if seg.seq >= s.ckptWALSeq {
			// This segment was not yet covered by a checkpoint: its
			// records just lost durability. The budget wins, but loudly.
			s.alert(fmt.Sprintf("disk budget dropped un-checkpointed WAL segment %s", seg.path))
		} else {
			s.status(fmt.Sprintf("disk budget dropped WAL segment %s", seg.path))
		}
	}
}

func (s *Store) diskBytesLocked() int64 {
	var n int64
	for _, seg := range s.sealed {
		n += seg.size
	}
	for _, cp := range s.ckpts {
		n += cp.size
	}
	if s.w != nil {
		n += s.w.size
	}
	return n
}

// Stats returns a snapshot of durability state and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		State:            "memory-only",
		Dir:              s.opts.Dir,
		WALAppends:       s.walAppends,
		Fsyncs:           s.fsyncs,
		ReplayedRecords:  s.replayed,
		CorruptRecords:   s.corrupt,
		Checkpoints:      s.checkpoints,
		CheckpointErrors: s.checkpointErrors,
		WALErrors:        s.walErrors,
		Reattaches:       s.reattaches,
		SegmentsDropped:  s.segmentsDropped,
		DiskBytes:        s.diskBytesLocked(),
		WALSegments:      len(s.sealed),
		LastCheckpoint:   s.lastCheckpoint,
	}
	if s.attached {
		st.State = "durable"
		st.WALSegments++ // the live segment
	}
	if s.closed {
		st.State = "closed"
	}
	return st
}

// setFailWrites injects an append error (test hook for the disk-fault path).
func (s *Store) setFailWrites(err error) {
	s.mu.Lock()
	s.failWrites = err
	s.mu.Unlock()
}

// Close takes a final checkpoint, seals the live segment and stops the
// background loops. Safe to call more than once.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stopCh)
		err = s.Checkpoint()
		s.mu.Lock()
		s.closed = true
		if s.w != nil {
			if e := s.w.close(); err == nil {
				err = e
			}
			s.w = nil
		}
		s.attached = false
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

// CrashClose releases file descriptors without syncing or checkpointing —
// the simulator's kill switch. Whatever reached the page cache survives;
// whatever did not models a torn tail for recovery to deal with.
func (s *Store) CrashClose() {
	s.closeOnce.Do(func() {
		close(s.stopCh)
		s.mu.Lock()
		s.closed = true
		if s.w != nil {
			s.w.abandon()
			s.w = nil
		}
		s.attached = false
		s.mu.Unlock()
		s.wg.Wait()
	})
}
